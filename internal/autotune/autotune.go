// Package autotune searches for the best tile size nb for a matrix of size
// N on a modelled platform — the knob the paper fixes to 960 because
// "previous work" (Agullo et al., GPU Computing Gems'10; IPDPS'11) found it
// optimal on Mirage. The trade-off it automates:
//
//   - large tiles: efficient kernels and little runtime overhead, but few
//     tasks, so the heterogeneous machine starves for parallelism;
//   - small tiles: abundant parallelism, but per-task runtime overhead and
//     lower kernel efficiency dominate.
//
// The model scales per-kernel times from a reference calibration at nb₀
// by the flop ratio, damped by an efficiency factor for small tiles
// (kernels below ≈256 run at reduced sustained throughput, as on real
// BLAS), and charges the platform's per-task overhead in simulation.
package autotune

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Efficiency models the sustained-throughput penalty of small tiles. The
// curve now lives in platform.Efficiency (shared with the ScaledModel cost
// model); this delegate remains for the package's historical API.
func Efficiency(nb, refNB int) float64 { return platform.Efficiency(nb, refNB) }

// ScalePlatform derives a platform model for tile size nb from a reference
// model calibrated at refNB: each kernel time is scaled by its flop ratio
// divided by the efficiency factor; tile bytes shrink quadratically. It is a
// materialized view of platform.ScaledModel — the per-kernel times equal
// ScaledModel.Time(class, kind, nb) bit-for-bit — kept because the sweep
// wants a standalone fixed-nb platform per candidate.
func ScalePlatform(ref *platform.Platform, refNB, nb int) *platform.Platform {
	p := ref.Clone()
	p.Name = fmt.Sprintf("%s-nb%d", ref.Name, nb)
	m := platform.NewScaledModel(ref, refNB)
	isCholesky := map[graph.Kind]bool{graph.POTRF: true, graph.TRSM: true, graph.SYRK: true, graph.GEMM: true}
	for ci := range p.Classes {
		times := map[graph.Kind]float64{}
		for k := range p.Classes[ci].Times {
			if !isCholesky[k] {
				continue // non-Cholesky kernels are not retuned
			}
			times[k] = m.Time(ci, k, nb)
		}
		p.Classes[ci].Times = times
		p.Classes[ci].TimesByNB = nil
	}
	p.TileBytes = float64(nb) * float64(nb) * 8
	p.RefNB = nb
	return p
}

// Point is one sweep sample. GFlops and Makespan are means over the swept
// seeds (a single value for one seed); Sigma is the GFLOP/s standard
// deviation, zero for single-seed sweeps.
type Point struct {
	NB       int
	Tiles    int // matrix partitioned into Tiles×Tiles
	GFlops   float64
	Sigma    float64
	Makespan float64
}

// Sweep simulates the Cholesky factorization of an N×N matrix for each
// candidate tile size (N must be divisible by each) under dmdas with the
// runtime-overhead model on, and returns the samples sorted by nb.
func Sweep(n int, candidates []int, ref *platform.Platform, refNB int, seed int64) ([]Point, error) {
	return SweepSeeds(context.Background(), n, candidates, ref, refNB, []int64{seed}, false)
}

// SweepSeeds is Sweep over several jitter seeds: each candidate's GFlops,
// Makespan and Sigma are the mean ± σ (of GFLOP/s) across the seeds. With
// batch set, the per-candidate seed replications run through the batched
// replay engine — shared DAG/platform preparation, pooled arenas, and a
// single simulation when the seed provably cannot matter — with per-seed
// Results bit-identical to the serial loop either way.
func SweepSeeds(ctx context.Context, n int, candidates []int, ref *platform.Platform,
	refNB int, seeds []int64, batch bool) ([]Point, error) {
	return SweepSeedsProbed(ctx, n, candidates, ref, refNB, seeds, batch, nil)
}

// SweepSeedsProbed is SweepSeeds with a live progress probe: one sweep
// frame per evaluated candidate (Done/Total in candidates) plus a Final
// frame, feeding choltune -progress and the cholserved live stream.
func SweepSeedsProbed(ctx context.Context, n int, candidates []int, ref *platform.Platform,
	refNB int, seeds []int64, batch bool, probe *obs.Probe) ([]Point, error) {

	if len(seeds) == 0 {
		return nil, fmt.Errorf("autotune: no seeds")
	}
	pool := &replay.Pool{}
	var out []Point
	for ci, nb := range candidates {
		if nb <= 0 || n%nb != 0 {
			continue
		}
		tiles := n / nb
		p := ScalePlatform(ref, refNB, nb)
		d := graph.Cholesky(tiles)
		opt := simulator.Options{Overhead: true}
		var results []*simulator.Result
		if batch {
			rs, err := replay.Seeds(ctx, d, p,
				func() sched.Scheduler { return sched.NewDMDAS() }, seeds, opt, 0, pool)
			if err != nil {
				return nil, fmt.Errorf("autotune nb=%d: %w", nb, err)
			}
			results = rs
		} else {
			for _, seed := range seeds {
				o := opt
				o.Seed = seed
				r, err := simulator.RunContext(ctx, d, p, sched.NewDMDAS(), o)
				if err != nil {
					return nil, fmt.Errorf("autotune nb=%d: %w", nb, err)
				}
				results = append(results, r)
			}
		}
		gf := make([]float64, len(results))
		ms := make([]float64, len(results))
		for i, r := range results {
			gf[i] = platform.GFlops(kernels.CholeskyFlops(n), r.MakespanSec)
			ms[i] = r.MakespanSec
		}
		out = append(out, Point{
			NB:       nb,
			Tiles:    tiles,
			GFlops:   stats.Mean(gf),
			Sigma:    stats.StdDev(gf),
			Makespan: stats.Mean(ms),
		})
		if probe != nil {
			probe.Emit(obs.Frame{Source: obs.SourceSweep,
				Done: int64(ci + 1), Total: int64(len(candidates))})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("autotune: no candidate tile size divides N=%d", n)
	}
	if probe != nil {
		probe.Emit(obs.Frame{Source: obs.SourceSweep, Final: true,
			Done: int64(len(candidates)), Total: int64(len(candidates))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NB < out[j].NB })
	return out, nil
}

// SplitPoint is one mixed-tile sweep sample: the N×N matrix at coarse tile
// size NB with the trailing panels from FromK on refined Factor× per side
// (graph.CholeskySplit).
type SplitPoint struct {
	NB       int
	Tiles    int
	Factor   int
	FromK    int
	GFlops   float64
	Makespan float64
}

// SweepSplits evaluates mixed-tile candidates under the same conditions as
// Sweep (dmdas, runtime-overhead model on): for each (factor, fromK) spec the
// coarse grid runs at tile size nb and the trailing submatrix is refined.
// Specs whose factor does not divide nb or whose panel exceeds the tile
// count are skipped. Samples return in the input spec order.
func SweepSplits(n, nb int, specs [][2]int, ref *platform.Platform, refNB int, seed int64) ([]SplitPoint, error) {
	if nb <= 0 || n%nb != 0 {
		return nil, fmt.Errorf("autotune: coarse tile size %d does not divide N=%d", nb, n)
	}
	tiles := n / nb
	p := ScalePlatform(ref, refNB, nb)
	p.Model = platform.ModelScaled // price the fine tiles by scaling
	var out []SplitPoint
	for _, spec := range specs {
		factor, fromK := spec[0], spec[1]
		if factor < 2 || nb%factor != 0 || fromK < 0 || fromK > tiles {
			continue
		}
		d := graph.CholeskySplit(tiles, fromK, factor, nb)
		r, err := simulator.Run(d, p, sched.NewDMDAS(),
			simulator.Options{Seed: seed, Overhead: true})
		if err != nil {
			return nil, fmt.Errorf("autotune split %d@%d: %w", factor, fromK, err)
		}
		out = append(out, SplitPoint{
			NB:       nb,
			Tiles:    tiles,
			Factor:   factor,
			FromK:    fromK,
			GFlops:   platform.GFlops(kernels.CholeskyFlops(n), r.MakespanSec),
			Makespan: r.MakespanSec,
		})
	}
	return out, nil
}

// Best returns the highest-GFLOP/s sample of a sweep.
func Best(points []Point) Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.GFlops > best.GFlops {
			best = p
		}
	}
	return best
}

// Divisors returns the divisors of n within [lo, hi] — candidate tile sizes.
func Divisors(n, lo, hi int) []int {
	var out []int
	for d := lo; d <= hi && d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}
