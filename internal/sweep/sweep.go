// Package sweep runs independent simulation jobs concurrently — the
// workflow the paper describes for its SimGrid setup: "The Simgrid
// simulator itself is not parallel, so the whole execution gets serialized,
// but several simulations can be run in parallel for e.g. various matrix
// sizes or schedulers, and one then gets all the results in parallel."
//
// Jobs must be independent and deterministic; results come back in job
// order, so a parallel sweep is bit-identical to a sequential one.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job computes one independent result.
type Job[T any] func() (T, error)

// Run executes the jobs on a bounded worker pool (workers ≤ 0 means
// GOMAXPROCS) and returns results in job order. The first error (by job
// index) is returned; later jobs still run to completion.
func Run[T any](jobs []Job[T], workers int) ([]T, error) {
	return RunContext(context.Background(), jobs, workers)
}

// RunContext is Run with cancellation: once ctx is done no further job is
// dispatched and ctx's error is returned after in-flight jobs drain. A ctx
// already cancelled on entry deterministically runs zero jobs. Zero jobs
// complete trivially — an empty result slice, no error, no workers spawned.
// Jobs wanting mid-job cancellation should close over ctx themselves.
func RunContext[T any](ctx context.Context, jobs []Job[T], workers int) ([]T, error) {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("sweep: cancelled after dispatching 0 of %d jobs: %w", len(jobs), err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = jobs[i]()
			}
		}()
	}
	dispatched := len(jobs)
	for i := range jobs {
		// The explicit poll keeps cancellation deterministic: a done ctx
		// always wins, where the select alone would race an idle worker's
		// ready receive against ctx.Done and sometimes dispatch anyway.
		if ctx.Err() != nil {
			dispatched = i
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			dispatched = i
		}
		if dispatched != len(jobs) {
			break
		}
	}
	close(next)
	wg.Wait()
	if dispatched != len(jobs) {
		return results, fmt.Errorf("sweep: cancelled after dispatching %d of %d jobs: %w",
			dispatched, len(jobs), ctx.Err())
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return results, nil
}

// Map runs fn over the inputs concurrently, preserving order.
func Map[In, Out any](inputs []In, workers int, fn func(In) (Out, error)) ([]Out, error) {
	return MapContext(context.Background(), inputs, workers, fn)
}

// MapContext is Map with cancellation, with RunContext's semantics.
func MapContext[In, Out any](ctx context.Context, inputs []In, workers int, fn func(In) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(inputs))
	for i, in := range inputs {
		in := in
		jobs[i] = func() (Out, error) { return fn(in) }
	}
	return RunContext(ctx, jobs, workers)
}

// Grid evaluates fn over the cross product rows × cols concurrently and
// returns a row-major matrix of results — the "various matrix sizes ×
// schedulers" sweep shape.
func Grid[R, C, Out any](rows []R, cols []C, workers int, fn func(R, C) (Out, error)) ([][]Out, error) {
	type cell struct{ r, c int }
	var cells []cell
	for r := range rows {
		for c := range cols {
			cells = append(cells, cell{r, c})
		}
	}
	flat, err := Map(cells, workers, func(cl cell) (Out, error) {
		return fn(rows[cl.r], cols[cl.c])
	})
	out := make([][]Out, len(rows))
	for r := range rows {
		out[r] = make([]Out, len(cols))
		for c := range cols {
			out[r][c] = flat[r*len(cols)+c]
		}
	}
	return out, err
}
