package trace

import (
	"math"
	"testing"

	"repro/internal/sched"
)

// TestReadyProfileSingleSample is the regression for the samples==1 case:
// the timestamp formula divides by samples−1, which used to produce 0/0 →
// NaN timestamps. The count is clamped to two points instead.
func TestReadyProfileSingleSample(t *testing.T) {
	d, _, r := simulate(t, sched.NewDMDA())
	pr := ReadyProfile(d, r, 1)
	if len(pr) != 2 {
		t.Fatalf("samples=1 returned %d points, want clamp to 2", len(pr))
	}
	for i, p := range pr {
		if math.IsNaN(p.Time) || math.IsInf(p.Time, 0) {
			t.Fatalf("point %d has non-finite time %v", i, p.Time)
		}
	}
	if pr[0].Time != 0 || pr[1].Time != r.MakespanSec {
		t.Fatalf("clamped profile spans [%v, %v], want [0, %v]", pr[0].Time, pr[1].Time, r.MakespanSec)
	}
}
