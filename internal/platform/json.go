package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"repro/internal/graph"
)

// JSON serialization of platform models, so custom machines can be described
// in files and passed to the CLIs (the SimGrid-platform-file analogue: the
// paper modifies "the platform file of our machine" to remove communication
// costs, change bandwidths, etc.).
//
// Format example:
//
//	{
//	  "name": "my-node",
//	  "classes": [
//	    {"name": "cpu", "count": 16,
//	     "times": {"POTRF": 0.05, "TRSM": 0.1, "SYRK": 0.1, "GEMM": 0.18}},
//	    {"name": "gpu", "count": 2,
//	     "times": {"POTRF": 0.026, "TRSM": 0.009, "SYRK": 0.004, "GEMM": 0.006}}
//	  ],
//	  "bus": {"enabled": true, "bandwidth_bps": 6e9, "latency_sec": 1.5e-5},
//	  "tile_bytes": 7372800,
//	  "overhead": {"per_task_sec": 2e-5, "jitter_frac": 0.03}
//	}
//
// Kernel times are keyed by kernel name (POTRF, TRSM, SYRK, GEMM, GETRF,
// GEQRT, ORMQR, TSQRT, TSMQR).
//
// Schema v2 ("version": 2) adds the size-parametrised cost model: a top-level
// "ref_nb" (tile size the "times" tables were calibrated at) and "cost_model"
// ("table" or "scaled"), plus optional per-class "times_by_nb" tables keyed
// by tile size:
//
//	{
//	  "version": 2,
//	  "name": "my-node",
//	  "ref_nb": 960,
//	  "cost_model": "scaled",
//	  "classes": [
//	    {"name": "cpu", "count": 16,
//	     "times": {"GEMM": 0.18},
//	     "times_by_nb": {"480": {"GEMM": 0.024}}},
//	    ...
//	  ],
//	  ...
//	}
//
// Unversioned (v1) files are the fixed-nb format above and load with the
// TableModel defaults; v1 platforms also marshal back to the exact v1 bytes.

type jsonClass struct {
	Name        string                        `json:"name"`
	Count       int                           `json:"count"`
	Times       map[string]float64            `json:"times"`
	TimesByNB   map[string]map[string]float64 `json:"times_by_nb,omitempty"`
	MemoryBytes float64                       `json:"memory_bytes,omitempty"`
}

type jsonBus struct {
	Enabled      bool    `json:"enabled"`
	BandwidthBps float64 `json:"bandwidth_bps"`
	LatencySec   float64 `json:"latency_sec"`
}

type jsonOverhead struct {
	PerTaskSec float64 `json:"per_task_sec"`
	JitterFrac float64 `json:"jitter_frac"`
}

type jsonPlatform struct {
	Version   int          `json:"version,omitempty"`
	Name      string       `json:"name"`
	Classes   []jsonClass  `json:"classes"`
	Bus       jsonBus      `json:"bus"`
	TileBytes float64      `json:"tile_bytes"`
	Overhead  jsonOverhead `json:"overhead"`
	RefNB     int          `json:"ref_nb,omitempty"`
	CostModel string       `json:"cost_model,omitempty"`
}

// isV2 reports whether the platform uses any schema-v2 feature.
func (p *Platform) isV2() bool {
	if p.RefNB != 0 || p.Model != "" {
		return true
	}
	for i := range p.Classes {
		if len(p.Classes[i].TimesByNB) > 0 {
			return true
		}
	}
	return false
}

// kindByName maps kernel names to kinds.
func kindByName(name string) (graph.Kind, bool) {
	for k := graph.Kind(0); k < graph.NumKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the platform in the documented file format.
func (p *Platform) MarshalJSON() ([]byte, error) {
	jp := jsonPlatform{
		Name:      p.Name,
		Bus:       jsonBus{p.Bus.Enabled, p.Bus.BandwidthBps, p.Bus.LatencySec},
		TileBytes: p.TileBytes,
		Overhead:  jsonOverhead{p.Overhead.PerTaskSec, p.Overhead.JitterFrac},
	}
	if p.isV2() {
		jp.Version = 2
		jp.RefNB = p.RefNB
		jp.CostModel = p.Model
	}
	for _, c := range p.Classes {
		jc := jsonClass{Name: c.Name, Count: c.Count, Times: map[string]float64{}, MemoryBytes: c.MemoryBytes}
		for k, t := range c.Times {
			jc.Times[k.String()] = t
		}
		for nb, times := range c.TimesByNB {
			if jc.TimesByNB == nil {
				jc.TimesByNB = map[string]map[string]float64{}
			}
			m := map[string]float64{}
			for k, t := range times {
				m[k.String()] = t
			}
			jc.TimesByNB[strconv.Itoa(nb)] = m
		}
		jp.Classes = append(jp.Classes, jc)
	}
	return json.MarshalIndent(jp, "", "  ")
}

// UnmarshalJSON decodes the documented file format.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var jp jsonPlatform
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	switch jp.Version {
	case 0, 1: // unversioned/v1: fixed-nb tables only
		if jp.RefNB != 0 || jp.CostModel != "" {
			return fmt.Errorf("platform: ref_nb/cost_model require \"version\": 2")
		}
	case 2:
	default:
		return fmt.Errorf("platform: unsupported schema version %d", jp.Version)
	}
	switch jp.CostModel {
	case "", ModelTable, ModelScaled:
	default:
		return fmt.Errorf("platform: unknown cost_model %q", jp.CostModel)
	}
	p.Name = jp.Name
	p.Bus = Bus{Enabled: jp.Bus.Enabled, BandwidthBps: jp.Bus.BandwidthBps, LatencySec: jp.Bus.LatencySec}
	p.TileBytes = jp.TileBytes
	p.Overhead = Overhead{PerTaskSec: jp.Overhead.PerTaskSec, JitterFrac: jp.Overhead.JitterFrac}
	p.RefNB = jp.RefNB
	p.Model = jp.CostModel
	p.Classes = nil
	for _, jc := range jp.Classes {
		c := Class{Name: jc.Name, Count: jc.Count, Times: map[graph.Kind]float64{}, MemoryBytes: jc.MemoryBytes}
		for name, t := range jc.Times {
			k, ok := kindByName(name)
			if !ok {
				return fmt.Errorf("platform: unknown kernel %q in class %q", name, jc.Name)
			}
			c.Times[k] = t
		}
		if len(jc.TimesByNB) > 0 && jp.Version < 2 {
			return fmt.Errorf("platform: times_by_nb in class %q requires \"version\": 2", jc.Name)
		}
		for nbStr, times := range jc.TimesByNB {
			nb, err := strconv.Atoi(nbStr)
			if err != nil || nb <= 0 {
				return fmt.Errorf("platform: bad tile size %q in class %q", nbStr, jc.Name)
			}
			m := map[graph.Kind]float64{}
			for name, t := range times {
				k, ok := kindByName(name)
				if !ok {
					return fmt.Errorf("platform: unknown kernel %q in class %q", name, jc.Name)
				}
				m[k] = t
			}
			if c.TimesByNB == nil {
				c.TimesByNB = map[int]map[graph.Kind]float64{}
			}
			c.TimesByNB[nb] = m
		}
		p.Classes = append(p.Classes, c)
	}
	return nil
}

// LoadFile reads a platform description from a JSON file.
func LoadFile(path string) (*Platform, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p := &Platform{}
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("platform: %s: %w", path, err)
	}
	return p, nil
}

// SaveFile writes the platform description to a JSON file.
func (p *Platform) SaveFile(path string) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
