// Package use exercises recnil: *obs.Recorder uses must sit behind the nil
// fast-path check.
package use

import "repro/internal/analysis/testdata/src/recnil/obs"

type state struct {
	rec *obs.Recorder
	now float64
}

func unguardedField(st *state) {
	st.rec.Marks = nil // want `field st.rec.Marks used without the recorder nil fast-path`
}

func unguardedAppend(st *state) {
	st.rec.Marks = append(st.rec.Marks, st.now) // want `field st.rec.Marks used` `field st.rec.Marks used`
}

func unguardedMethod(st *state) {
	st.rec.Mark(st.now) // want `method st.rec.Mark used without the recorder nil fast-path`
}

func nilSafeMethodFine(st *state) int {
	return st.rec.Events() // Events carries its own nil fast path
}

func guarded(st *state) {
	if st.rec != nil {
		st.rec.Marks = nil
		st.rec.Mark(st.now)
	}
}

func guardedConjoined(st *state) {
	if st.rec != nil && st.now > 0 {
		st.rec.Mark(st.now)
	}
}

func elseBranchNotGuarded(st *state) {
	if st.rec != nil {
		st.rec.Mark(st.now)
	} else {
		st.rec.Marks = nil // want `field st.rec.Marks used without the recorder nil fast-path`
	}
}

func earlyReturnGuard(st *state) {
	rec := st.rec
	if rec == nil {
		return
	}
	rec.Mark(st.now)
	rec.Marks = nil
}

func locallyConstructed(now float64) int {
	rec := obs.NewRecorder() // provably non-nil
	rec.Mark(now)
	return rec.Events()
}

func locallyConstructedLiteral(now float64) *obs.Recorder {
	rec := &obs.Recorder{}
	rec.Mark(now)
	return rec
}

func knownNonNilElsewhere(st *state) {
	st.rec.Mark(st.now) //chollint:unguarded caller checked; see run() precondition
}
