// Package report renders experiment tables (stats.Table) as a standalone
// HTML report with SVG line charts — the shareable artifact form of the
// paper's figures.
//
// Chart anatomy follows a fixed spec: 2px round-joined lines, ≥8px endpoint
// markers with a 2px surface ring, hairline solid gridlines, a legend for
// two or more series plus direct labels at line ends, native hover tooltips
// on every marker, and a data-table view under each chart (which also
// serves as the contrast relief for the lighter palette slots). Categorical
// hues are assigned in a fixed validated order (never cycled); series
// beyond the eighth fold into the table only. One y-axis per chart, always.
package report

import (
	"fmt"
	"html"
	"math"
	"strings"

	"repro/internal/stats"
)

// Fixed categorical order (validated palette; see the data-viz reference):
// light-mode steps, dark handled by CSS custom properties in the page.
var seriesLight = []string{
	"#2a78d6", "#1baf7a", "#eda100", "#008300",
	"#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
}
var seriesDark = []string{
	"#3987e5", "#199e70", "#c98500", "#008300",
	"#9085e9", "#e66767", "#d55181", "#d95926",
}

const (
	chartW  = 760
	chartH  = 340
	marginL = 64
	marginR = 150 // room for direct labels at line ends
	marginT = 16
	marginB = 36
)

// niceCeil rounds up to a clean axis maximum (1/2/5 × 10^k).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// LineChartSVG renders one table as an SVG line chart. Only the first eight
// series get lines (fixed hue order); all series appear in the table view.
func LineChartSVG(t *stats.Table) string {
	maxV := 0.0
	for _, s := range t.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	yMax := niceCeil(maxV)
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, x := range t.Xs {
		minX = math.Min(minX, x)
		maxX = math.Max(maxX, x)
	}
	// Degenerate single-point range: both sides are the same stored value,
	// so exact equality is the intended test.
	if minX == maxX { //chollint:floateq
		maxX = minX + 1
	}
	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	xpos := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	ypos := func(v float64) float64 { return marginT + (1-v/yMax)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="%s">`+"\n",
		chartW, chartH, chartW, chartH, html.EscapeString(t.Title))

	// Hairline gridlines + y ticks at 5 clean divisions.
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := ypos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" class="grid"/>`+"\n",
			marginL, y, chartW-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" class="tick" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, formatTick(v))
	}
	// X ticks at each data point.
	for _, x := range t.Xs {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="tick" text-anchor="middle">%g</text>`+"\n",
			xpos(x), chartH-marginB+16, x)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="axis-label" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, chartH-4, html.EscapeString(t.XLabel))

	nSeries := len(t.Series)
	if nSeries > len(seriesLight) {
		nSeries = len(seriesLight)
	}
	for si := 0; si < nSeries; si++ {
		s := t.Series[si]
		cls := fmt.Sprintf("s%d", si+1)
		// Polyline segments, broken at NaN gaps.
		var seg []string
		flush := func() {
			if len(seg) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" class="line %s"/>`+"\n",
					strings.Join(seg, " "), cls)
			}
			seg = seg[:0]
		}
		for i, v := range s.Values {
			if math.IsNaN(v) {
				flush()
				continue
			}
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", xpos(t.Xs[i]), ypos(v)))
		}
		flush()
		// Markers: r=4 with a 2px surface ring; native hover tooltips.
		lastIdx := -1
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" class="dot %s"><title>%s — %s=%g: %.2f %s</title></circle>`+"\n",
				xpos(t.Xs[i]), ypos(v), cls,
				html.EscapeString(s.Name), html.EscapeString(t.XLabel), t.Xs[i], v, html.EscapeString(t.YLabel))
			lastIdx = i
		}
		// Direct label at the line end, in text ink with a color key dot.
		if lastIdx >= 0 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" class="dlabel">%s</text>`+"\n",
				xpos(t.Xs[lastIdx])+10, ypos(s.Values[lastIdx])+4, html.EscapeString(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func formatTick(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.0f,%03.0f", math.Floor(v/1000), math.Mod(v, 1000))
	}
	// Exact integrality test: Trunc(v) is bit-equal to v iff v is integral.
	if v == math.Trunc(v) { //chollint:floateq
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// tableHTML renders the data-table view (the always-available identity and
// relief channel).
func tableHTML(t *stats.Table) string {
	var b strings.Builder
	b.WriteString(`<details><summary>Data table</summary><table><thead><tr>`)
	fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(t.XLabel))
	for _, s := range t.Series {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(s.Name))
	}
	b.WriteString("</tr></thead><tbody>\n")
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "<tr><td>%g</td>", x)
		for _, s := range t.Series {
			if math.IsNaN(s.Values[i]) {
				b.WriteString("<td>—</td>")
			} else if s.Sigmas != nil && i < len(s.Sigmas) && s.Sigmas[i] > 0 {
				fmt.Fprintf(&b, "<td>%.2f ± %.2f</td>", s.Values[i], s.Sigmas[i])
			} else {
				fmt.Fprintf(&b, "<td>%.2f</td>", s.Values[i])
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</tbody></table></details>\n")
	return b.String()
}

// legendHTML renders the legend row (only for ≥ 2 series).
func legendHTML(t *stats.Table) string {
	if len(t.Series) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteString(`<div class="legend">`)
	for si, s := range t.Series {
		if si >= len(seriesLight) {
			break
		}
		fmt.Fprintf(&b, `<span class="key"><span class="swatch s%dbg"></span>%s</span>`,
			si+1, html.EscapeString(s.Name))
	}
	b.WriteString("</div>\n")
	return b.String()
}

// HTML builds a standalone report page from a set of tables.
func HTML(title string, tables []*stats.Table) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n<style>\n", html.EscapeString(title))
	b.WriteString(`:root {
  --surface-1: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e7e6e2;`)
	for i, c := range seriesLight {
		fmt.Fprintf(&b, " --series-%d: %s;", i+1, c)
	}
	b.WriteString(`
}
@media (prefers-color-scheme: dark) {
  :root { --surface-1: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #33322f;`)
	for i, c := range seriesDark {
		fmt.Fprintf(&b, " --series-%d: %s;", i+1, c)
	}
	b.WriteString(`
  }
}
body { background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif; max-width: 880px; margin: 2rem auto; padding: 0 1rem; }
h1, h2 { font-weight: 600; }
.grid { stroke: var(--grid); stroke-width: 1; }
.tick, .axis-label { fill: var(--text-secondary); font-size: 11px; }
.dlabel { fill: var(--text-primary); font-size: 12px; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.dot { stroke: var(--surface-1); stroke-width: 2; }
`)
	for i := 1; i <= len(seriesLight); i++ {
		fmt.Fprintf(&b, ".s%d { stroke: var(--series-%d); }\n.dot.s%d { fill: var(--series-%d); }\n.s%dbg { background: var(--series-%d); }\n.s%dbar { fill: var(--series-%d); }\n",
			i, i, i, i, i, i, i, i)
	}
	b.WriteString(`.legend { display: flex; gap: 1rem; flex-wrap: wrap; margin: .25rem 0 1rem; color: var(--text-secondary); }
.key { display: inline-flex; align-items: center; gap: .4rem; }
.swatch { width: 12px; height: 12px; border-radius: 3px; display: inline-block; }
table { border-collapse: collapse; margin: .5rem 0 1.5rem; }
th, td { padding: .25rem .7rem; text-align: right; border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
details { margin-bottom: 2rem; color: var(--text-secondary); }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	for _, t := range tables {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(t.Title))
		b.WriteString(ChartSVG(t))
		b.WriteString(legendHTML(t))
		b.WriteString(tableHTML(t))
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// BarChartSVG renders a categorical table as grouped bars: ≤24px bars with
// 4px rounded data-ends square at the baseline, a 2px surface gap between
// neighbors, values labeled on the caps in text ink.
func BarChartSVG(t *stats.Table) string {
	maxV := 0.0
	for _, s := range t.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	yMax := niceCeil(maxV)
	plotW := float64(chartW - marginL - 24)
	plotH := float64(chartH - marginT - marginB)
	nCats := len(t.Xs)
	nSeries := len(t.Series)
	if nSeries > len(seriesLight) {
		nSeries = len(seriesLight)
	}
	ypos := func(v float64) float64 { return marginT + (1-v/yMax)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img" aria-label="%s">`+"\n",
		chartW, chartH, chartW, chartH, html.EscapeString(t.Title))
	for i := 0; i <= 5; i++ {
		v := yMax * float64(i) / 5
		y := ypos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" class="grid"/>`+"\n",
			marginL, y, chartW-24, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" class="tick" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, formatTick(v))
	}
	slot := plotW / float64(nCats)
	// Bar width: ≤24px, with a 2px surface gap between series neighbors.
	barW := math.Min(24, (slot-8)/float64(nSeries)-2)
	if barW < 3 {
		barW = 3
	}
	base := ypos(0)
	for ci := 0; ci < nCats; ci++ {
		groupW := float64(nSeries)*(barW+2) - 2
		x0 := marginL + slot*float64(ci) + (slot-groupW)/2
		label := fmt.Sprintf("%g", t.Xs[ci])
		if ci < len(t.XNames) {
			label = t.XNames[ci]
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="tick" text-anchor="middle">%s</text>`+"\n",
			x0+groupW/2, chartH-marginB+16, html.EscapeString(label))
		for si := 0; si < nSeries; si++ {
			v := t.Series[si].Values[ci]
			if math.IsNaN(v) {
				continue
			}
			x := x0 + float64(si)*(barW+2)
			y := ypos(v)
			h := base - y
			if h < 1 {
				h = 1
			}
			// Rounded data-end, square baseline: a clip-free approximation —
			// round the top corners only via a path.
			r := math.Min(4, barW/2)
			fmt.Fprintf(&b,
				`<path d="M%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z" class="bar s%dbar"><title>%s — %s: %.2f %s</title></path>`+"\n",
				x, base, x, y+r, x, y, x+r, y, x+barW-r, y, x+barW, y, x+barW, y+r, x+barW, base,
				si+1, html.EscapeString(t.Series[si].Name), html.EscapeString(label), v, html.EscapeString(t.YLabel))
			// Value on the cap, in text ink.
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" class="dlabel" text-anchor="middle" font-size="10">%s</text>`+"\n",
				x+barW/2, y-4, formatTick(v))
		}
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" class="axis-label" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, chartH-4, html.EscapeString(t.XLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

// ChartSVG picks the form by the data's job: bars for categorical identity,
// lines for continuous sweeps.
func ChartSVG(t *stats.Table) string {
	if t.Categorical {
		return BarChartSVG(t)
	}
	return LineChartSVG(t)
}
