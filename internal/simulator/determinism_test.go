package simulator

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sweep"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current behaviour")

// detConfig is one cell of the determinism grid.
type detConfig struct {
	name  string
	p     int
	pf    func() *platform.Platform
	sched func() sched.Scheduler
	opt   Options
}

// memCapped is Mirage with GPU memory squeezed to 6 tiles so the LRU
// eviction and write-back paths are exercised by the grid.
func memCapped() *platform.Platform {
	pf := platform.Mirage().Clone()
	pf.Name = "mirage-mem6"
	pf.Classes[1].MemoryBytes = 6 * pf.TileBytes
	return pf
}

func detGrid() []detConfig {
	platforms := []struct {
		name string
		mk   func() *platform.Platform
	}{
		{"mirage", platform.Mirage},
		{"mirage-nocomm", func() *platform.Platform { return platform.WithoutCommunication(platform.Mirage()) }},
		{"homogeneous4", func() *platform.Platform { return platform.Homogeneous(4) }},
		{"related20", func() *platform.Platform { return platform.Related(platform.Mirage(), 20) }},
		{"mirage-mem6", memCapped},
	}
	schedulers := []struct {
		name string
		mk   func() sched.Scheduler
	}{
		{"dmda", sched.NewDMDA},
		{"dmdas", sched.NewDMDAS},
		{"dmdar", sched.NewDMDAR},
		{"random", sched.NewRandom},
		{"greedy", sched.NewGreedy},
	}
	var grid []detConfig
	for _, pf := range platforms {
		for _, s := range schedulers {
			for _, p := range []int{4, 8, 16} {
				for _, seed := range []int64{1, 7} {
					grid = append(grid, detConfig{
						name:  fmt.Sprintf("%s/%s/P=%d/seed=%d", pf.name, s.name, p, seed),
						p:     p,
						pf:    pf.mk,
						sched: s.mk,
						opt:   Options{Seed: seed},
					})
				}
			}
		}
	}
	// A few option variants on top of the cross product.
	grid = append(grid,
		detConfig{name: "mirage/dmdas/P=12/overhead", p: 12, pf: platform.Mirage,
			sched: sched.NewDMDAS, opt: Options{Seed: 3, Overhead: true}},
		detConfig{name: "mirage/dmda/P=12/stealing", p: 12, pf: platform.Mirage,
			sched: sched.NewDMDA, opt: Options{Seed: 3, WorkStealing: true}},
	)
	return grid
}

// TestDeterminismGrid runs every grid cell twice and requires bit-identical
// results — the package doc's "fully deterministic for a given (DAG,
// platform, scheduler, seed) tuple" promise, enforced field by field.
func TestDeterminismGrid(t *testing.T) {
	for _, cfg := range detGrid() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			d := graph.Cholesky(cfg.p)
			r1, err := Run(d, cfg.pf(), cfg.sched(), cfg.opt)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(d, cfg.pf(), cfg.sched(), cfg.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("two identical runs diverged:\nfirst:  %+v\nsecond: %+v", r1, r2)
			}
		})
	}
}

// resultHash folds every observable field of a Result into one FNV-64a
// digest. Any bit-level change to the schedule — a reordered event, a
// different worker choice, a perturbed float — changes the digest.
func resultHash(r *Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	i := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	f(r.MakespanSec)
	f(r.TransferSec)
	i(r.TransferCount)
	i(r.Evictions)
	i(r.Writebacks)
	f(r.StallSec)
	for id := range r.Start {
		f(r.Start[id])
		f(r.End[id])
		i(r.Worker[id])
	}
	for w := range r.BusySec {
		f(r.BusySec[w])
		f(r.IdleSec[w])
	}
	return h.Sum64()
}

const goldenPath = "testdata/golden_results.json"

// TestGoldenResults pins the exact schedules the simulator produces: the
// per-config digests were recorded before the large-N performance pass, so
// any observable behaviour change — however plausible-looking — fails here
// until the golden file is consciously regenerated with -update.
func TestGoldenResults(t *testing.T) {
	grid := detGrid()
	got := make(map[string]string, len(grid))
	for _, cfg := range grid {
		r, err := Run(graph.Cholesky(cfg.p), cfg.pf(), cfg.sched(), cfg.opt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		got[cfg.name] = fmt.Sprintf("%016x", resultHash(r))
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: schedule digest %s != golden %s — simulator behaviour changed", name, got[name], w)
		}
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, grid has %d", len(want), len(got))
	}
}

// TestSweepParallelBitIdentical checks the sweep package's ordering promise
// end to end: a parallel sweep of simulations is bit-identical to the same
// sweep on a single worker.
func TestSweepParallelBitIdentical(t *testing.T) {
	type cell struct {
		p    int
		mk   func() sched.Scheduler
		seed int64
	}
	var cells []cell
	for _, p := range []int{4, 6, 8, 10, 12} {
		for _, mk := range []func() sched.Scheduler{sched.NewDMDA, sched.NewDMDAS, sched.NewRandom} {
			cells = append(cells, cell{p: p, mk: mk, seed: int64(p)})
		}
	}
	run := func(workers int) []*Result {
		out, err := sweep.Map(cells, workers, func(c cell) (*Result, error) {
			return Run(graph.Cholesky(c.p), platform.Mirage(), c.mk(), Options{Seed: c.seed})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range cells {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("cell %d: parallel sweep result differs from workers=1", i)
		}
	}
}
