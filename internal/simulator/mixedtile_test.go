package simulator

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestMixedTileRun drives a HeSP-style mixed-tile DAG end to end: the run
// must be deterministic, produce a Validate-clean schedule, and place every
// SPLIT/MERGE conversion on a host (class 0) worker — the only class the
// cost model prices them on.
func TestMixedTileRun(t *testing.T) {
	p := platform.MirageExtended()
	p.Model = platform.ModelScaled
	d := graph.CholeskySplit(8, 4, 2, p.DefaultNB())

	run := func() *Result {
		r, err := Run(d, p, sched.NewDMDAS(), Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if resultHash(r1) != resultHash(r2) {
		t.Fatal("mixed-tile run is not deterministic")
	}
	if r1.MakespanSec <= 0 {
		t.Fatalf("makespan %g", r1.MakespanSec)
	}
	if err := Validate(d, p, r1); err != nil {
		t.Fatal(err)
	}
	hostWorkers := p.Classes[0].Count
	for id, task := range d.Tasks {
		if task.Kind.IsConversion() && r1.Worker[id] >= hostWorkers {
			t.Fatalf("%s on worker %d (class %d): conversions are host-only",
				task.Name(), r1.Worker[id], p.WorkerClass(r1.Worker[id]))
		}
	}
}

// TestMixedTileFasterFineKernels sanity-checks the scaled pricing inside the
// event loop: the same scheduler on the same platform must finish the fine
// trailing submatrix DAG (more, cheaper tasks) with a different makespan
// than the uniform one — i.e. the size attribute actually reaches the
// simulator rather than being dropped on the floor.
func TestMixedTileDiffersFromUniform(t *testing.T) {
	p := platform.MirageExtended()
	p.Model = platform.ModelScaled
	uni, err := Run(graph.Cholesky(8), p, sched.NewDMDAS(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(graph.CholeskySplit(8, 4, 2, p.DefaultNB()), p, sched.NewDMDAS(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if uni.MakespanSec == mixed.MakespanSec {
		t.Fatal("mixed-tile DAG scheduled identically to uniform: tile sizes ignored")
	}
}
