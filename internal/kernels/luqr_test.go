package kernels

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// --- LU ---------------------------------------------------------------------

func TestGetrfKnown2x2(t *testing.T) {
	// A = [[4, 3], [6, 3]] ⇒ L21 = 1.5, U = [[4, 3], [0, −1.5]].
	a := matrix.NewTile(2)
	copy(a.Data, []float64{4, 3, 6, 3})
	if err := Getrf(a); err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 1.5, -1.5}
	for i, w := range want {
		if math.Abs(a.Data[i]-w) > 1e-15 {
			t.Fatalf("lu[%d] = %g, want %g", i, a.Data[i], w)
		}
	}
}

func TestGetrfZeroPivot(t *testing.T) {
	a := matrix.NewTile(2)
	copy(a.Data, []float64{0, 1, 1, 0})
	if err := Getrf(a); !errors.Is(err, ErrZeroPivot) {
		t.Fatalf("expected ErrZeroPivot, got %v", err)
	}
}

func tileFromDense(d *matrix.Dense) *matrix.Tile {
	t := matrix.NewTile(d.N)
	copy(t.Data, d.Data)
	return t
}

func TestGetrfReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		nb := 8
		a := matrix.DiagDominant(nb, seed)
		lu := tileFromDense(a)
		if err := Getrf(lu); err != nil {
			return false
		}
		// L·U == A.
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				s := 0.0
				for k := 0; k <= min(i, j); k++ {
					l := lu.At(i, k)
					if k == i {
						l = 1
					}
					s += l * lu.At(k, j)
				}
				if math.Abs(s-a.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTrsmLowerLeftUnit(t *testing.T) {
	nb := 6
	l := tileFromDense(matrix.DiagDominant(nb, 3))
	if err := Getrf(l); err != nil {
		t.Fatal(err)
	}
	a := tileFromDense(matrix.RandSymmetric(nb, 4))
	orig := a.Clone()
	TrsmLowerLeftUnit(l, a)
	// L·X == original A (unit lower L).
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			s := a.At(i, j)
			for k := 0; k < i; k++ {
				s += l.At(i, k) * a.At(k, j)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-10 {
				t.Fatalf("L·X != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestTrsmUpperRight(t *testing.T) {
	nb := 6
	u := tileFromDense(matrix.DiagDominant(nb, 5))
	if err := Getrf(u); err != nil {
		t.Fatal(err)
	}
	a := tileFromDense(matrix.RandSymmetric(nb, 6))
	orig := a.Clone()
	TrsmUpperRight(u, a)
	// X·U == original A (upper U from the GETRF result).
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a.At(i, k) * u.At(k, j)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-10 {
				t.Fatalf("X·U != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmNN(t *testing.T) {
	a := tileFromDense(matrix.RandSymmetric(4, 7))
	b := tileFromDense(matrix.RandSymmetric(4, 8))
	c := tileFromDense(matrix.RandSymmetric(4, 9))
	orig := c.Clone()
	GemmNN(a, b, c)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			if math.Abs((orig.At(i, j)-c.At(i, j))-s) > 1e-12 {
				t.Fatal("GemmNN wrong")
			}
		}
	}
}

func TestTiledLUMatchesDense(t *testing.T) {
	for _, tc := range []struct{ p, nb int }{{1, 6}, {2, 4}, {4, 4}, {3, 8}} {
		n := tc.p * tc.nb
		a := matrix.DiagDominant(n, int64(n))
		tf, err := matrix.FromDenseFull(a, tc.nb)
		if err != nil {
			t.Fatal(err)
		}
		if err := TiledLU(tf); err != nil {
			t.Fatalf("p=%d nb=%d: %v", tc.p, tc.nb, err)
		}
		if res := LUResidual(a, tf); res > 1e-11 {
			t.Fatalf("p=%d nb=%d: residual %g", tc.p, tc.nb, res)
		}
	}
}

func TestLUFlopsConsistency(t *testing.T) {
	if GetrfFlops(10) != 2000.0/3 {
		t.Fatal("GetrfFlops")
	}
	if LUFlops(30) != 18000 {
		t.Fatal("LUFlops")
	}
}

// --- QR ---------------------------------------------------------------------

func TestHouseholderAnnihilates(t *testing.T) {
	f := func(seed int64) bool {
		d := matrix.RandSymmetric(5, seed)
		alpha := d.At(0, 0)
		x := []float64{d.At(1, 0), d.At(2, 0), d.At(3, 0)}
		orig := append([]float64{alpha}, x...)
		beta, tau := householder(alpha, x)
		if tau == 0 {
			return true
		}
		// H·orig should equal (beta, 0, 0, 0) with H = I − τ·v·vᵀ, v = (1, x).
		v := append([]float64{1}, x...)
		dot := 0.0
		for i := range v {
			dot += v[i] * orig[i]
		}
		for i := range v {
			orig[i] -= tau * v[i] * dot
		}
		if math.Abs(orig[0]-beta) > 1e-10*(1+math.Abs(beta)) {
			return false
		}
		for _, z := range orig[1:] {
			if math.Abs(z) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHouseholderZeroTail(t *testing.T) {
	beta, tau := householder(3, []float64{0, 0})
	if tau != 0 || beta != 3 {
		t.Fatalf("beta=%g tau=%g", beta, tau)
	}
}

func TestGeqrtQTransposeAGivesR(t *testing.T) {
	// Factor a copy; applying Ormqr (Qᵀ·) to the original must reproduce R.
	nb := 8
	a := matrix.RandSymmetric(nb, 11)
	fac := tileFromDense(a)
	tau := make([]float64, nb)
	Geqrt(fac, tau)
	c := tileFromDense(a)
	Ormqr(fac, tau, c)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if j >= i {
				if math.Abs(c.At(i, j)-fac.At(i, j)) > 1e-10 {
					t.Fatalf("R mismatch at (%d,%d): %g vs %g", i, j, c.At(i, j), fac.At(i, j))
				}
			} else if math.Abs(c.At(i, j)) > 1e-10 {
				t.Fatalf("Qᵀ·A not zero below diagonal at (%d,%d): %g", i, j, c.At(i, j))
			}
		}
	}
}

func TestGeqrtOrthogonalInvariance(t *testing.T) {
	f := func(seed int64) bool {
		nb := 6
		a := matrix.RandSymmetric(nb, seed)
		fac := tileFromDense(a)
		tau := make([]float64, nb)
		Geqrt(fac, tau)
		// RᵀR == AᵀA.
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				rr, aa := 0.0, 0.0
				for k := 0; k <= min(i, j); k++ {
					rr += fac.At(k, i) * fac.At(k, j)
				}
				for k := 0; k < nb; k++ {
					aa += a.At(k, i) * a.At(k, j)
				}
				if math.Abs(rr-aa) > 1e-9*(1+math.Abs(aa)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTsqrtTsmqrPairwise(t *testing.T) {
	// Factor the stacked matrix [A1; A2] (2nb×nb) via GEQRT+TSQRT and check
	// the invariant RᵀR == A1ᵀA1 + A2ᵀA2.
	nb := 6
	a1 := matrix.RandSymmetric(nb, 21)
	a2 := matrix.RandSymmetric(nb, 22)
	top := tileFromDense(a1)
	bot := tileFromDense(a2)
	tauG := make([]float64, nb)
	tauT := make([]float64, nb)
	Geqrt(top, tauG)
	Tsqrt(top, bot, tauT)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			rr := 0.0
			for k := 0; k <= min(i, j); k++ {
				rr += top.At(k, i) * top.At(k, j)
			}
			want := 0.0
			for k := 0; k < nb; k++ {
				want += a1.At(k, i)*a1.At(k, j) + a2.At(k, i)*a2.At(k, j)
			}
			if math.Abs(rr-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("stacked RᵀR mismatch at (%d,%d): %g vs %g", i, j, rr, want)
			}
		}
	}
}

func TestTiledQRResidual(t *testing.T) {
	for _, tc := range []struct{ p, nb int }{{1, 6}, {2, 4}, {3, 4}, {4, 3}} {
		n := tc.p * tc.nb
		a := matrix.RandSymmetric(n, int64(n)+100)
		tf, err := matrix.FromDenseFull(a, tc.nb)
		if err != nil {
			t.Fatal(err)
		}
		TiledQR(tf)
		if res := QRResidual(a, tf); res > 1e-10 {
			t.Fatalf("p=%d nb=%d: QR residual %g", tc.p, tc.nb, res)
		}
		// R upper triangular (block sense): QRFactorR zeroes the rest by
		// construction, but the diagonal blocks must carry real R values.
		r := QRFactorR(tf)
		if r.At(0, 0) == 0 && a.At(0, 0) != 0 {
			t.Fatal("R looks empty")
		}
	}
}

func TestQRFlopCounts(t *testing.T) {
	if GeqrtFlops(3) != 36 || OrmqrFlops(3) != 54 || TsqrtFlops(3) != 54 || TsmqrFlops(3) != 108 {
		t.Fatal("QR kernel flop counts")
	}
	if QRFlops(30) != 36000 {
		t.Fatal("QRFlops")
	}
}

func TestNewQRAuxShape(t *testing.T) {
	aux := NewQRAux(4, 8)
	if len(aux.TauGE) != 4 || len(aux.TauGE[0]) != 8 {
		t.Fatal("TauGE shape")
	}
	if aux.TauTS[2][1] == nil || aux.TauTS[1][2] != nil || aux.TauTS[0][0] != nil {
		t.Fatal("TauTS triangle shape")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
