package matrix

import (
	"testing"
	"testing/quick"
)

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	a := RandSPD(12, 5)
	tl, err := FromDense(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	back := tl.ToDenseSymmetric()
	if !back.Equal(a, 1e-15) {
		t.Fatal("round trip through tiled storage lost data")
	}
}

func TestFromDenseRejectsBadTileSize(t *testing.T) {
	a := RandSPD(10, 1)
	if _, err := FromDense(a, 3); err == nil {
		t.Fatal("expected error for 10 % 3 != 0")
	}
	if _, err := FromDense(a, 0); err == nil {
		t.Fatal("expected error for tile size 0")
	}
	if _, err := FromDense(a, -2); err == nil {
		t.Fatal("expected error for negative tile size")
	}
}

func TestTiledUpperAccessPanics(t *testing.T) {
	tl := NewTiled(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic accessing upper tile")
		}
	}()
	tl.Tile(0, 1)
}

func TestTiledDimensions(t *testing.T) {
	tl := NewTiled(4, 5)
	if tl.N() != 20 {
		t.Fatalf("N() = %d, want 20", tl.N())
	}
	// Lower triangle: row i has i+1 tiles.
	for i := 0; i < 4; i++ {
		if len(tl.T[i]) != i+1 {
			t.Fatalf("row %d has %d tiles, want %d", i, len(tl.T[i]), i+1)
		}
	}
}

func TestTiledCloneIndependence(t *testing.T) {
	a := RandSPD(8, 2)
	tl, _ := FromDense(a, 2)
	c := tl.Clone()
	c.Tile(1, 0).Set(0, 0, 999)
	if tl.Tile(1, 0).At(0, 0) == 999 {
		t.Fatal("Clone shares tile storage")
	}
}

func TestTileCloneAndAccess(t *testing.T) {
	tile := NewTile(3)
	tile.Set(2, 1, 4.5)
	c := tile.Clone()
	if c.At(2, 1) != 4.5 {
		t.Fatal("Clone lost element")
	}
	c.Set(0, 0, 1)
	if tile.At(0, 0) == 1 {
		t.Fatal("Tile Clone shares storage")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandSPD(6, seed)
		tl, err := FromDense(a, 2)
		if err != nil {
			return false
		}
		return tl.ToDenseSymmetric().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestToDenseIsLowerTriangular(t *testing.T) {
	a := RandSPD(9, 11)
	tl, _ := FromDense(a, 3)
	d := tl.ToDense()
	for i := 0; i < 9; i++ {
		for j := i + 1; j < 9; j++ {
			if d.At(i, j) != 0 {
				t.Fatalf("ToDense upper entry (%d,%d) = %g, want 0", i, j, d.At(i, j))
			}
		}
	}
}
