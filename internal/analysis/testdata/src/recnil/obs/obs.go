// Package obs mirrors the real observability recorder's shape for the recnil
// fixtures: a nil *Recorder is the documented off switch.
package obs

// Recorder accumulates trace events; nil disables recording.
type Recorder struct {
	Marks []float64
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events is nil-safe by contract.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.Marks)
}

// Mark records one event. NOT nil-safe: callers hold the fast-path check.
func (r *Recorder) Mark(t float64) { r.Marks = append(r.Marks, t) }
