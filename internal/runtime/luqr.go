package runtime

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// LUExecutor returns the TaskFunc running the tiled unpivoted LU kernels in
// place on a full tiled matrix, matching graph.LU's task encoding (row-panel
// TRSMs carry I == K, column-panel TRSMs J == K).
func LUExecutor(tl *matrix.TiledFull) TaskFunc {
	return func(t *graph.Task) error {
		switch t.Kind {
		case graph.GETRF:
			return kernels.Getrf(tl.Tile(t.K, t.K))
		case graph.TRSM:
			if t.I == t.K { // row panel: A_kj ← L_kk⁻¹·A_kj
				kernels.TrsmLowerLeftUnit(tl.Tile(t.K, t.K), tl.Tile(t.K, t.J))
			} else { // column panel: A_ik ← A_ik·U_kk⁻¹
				kernels.TrsmUpperRight(tl.Tile(t.K, t.K), tl.Tile(t.I, t.K))
			}
		case graph.GEMM:
			kernels.GemmNN(tl.Tile(t.I, t.K), tl.Tile(t.K, t.J), tl.Tile(t.I, t.J))
		default:
			return fmt.Errorf("runtime: unexpected kind %v in LU DAG", t.Kind)
		}
		return nil
	}
}

// FactorLU runs the parallel tiled LU factorization (no pivoting) in place.
func FactorLU(tl *matrix.TiledFull, opt Options) (*Result, error) {
	d := graph.LU(tl.P)
	return Run(d, LUExecutor(tl), opt)
}

// QRExecutor returns the TaskFunc running the tiled QR kernels in place on a
// full tiled matrix, with Householder scales kept in aux.
func QRExecutor(tl *matrix.TiledFull, aux *kernels.QRAux) TaskFunc {
	return func(t *graph.Task) error {
		switch t.Kind {
		case graph.GEQRT:
			kernels.Geqrt(tl.Tile(t.K, t.K), aux.TauGE[t.K])
		case graph.ORMQR:
			kernels.Ormqr(tl.Tile(t.K, t.K), aux.TauGE[t.K], tl.Tile(t.K, t.J))
		case graph.TSQRT:
			kernels.Tsqrt(tl.Tile(t.K, t.K), tl.Tile(t.I, t.K), aux.TauTS[t.I][t.K])
		case graph.TSMQR:
			kernels.Tsmqr(tl.Tile(t.I, t.K), aux.TauTS[t.I][t.K],
				tl.Tile(t.K, t.J), tl.Tile(t.I, t.J))
		default:
			return fmt.Errorf("runtime: unexpected kind %v in QR DAG", t.Kind)
		}
		return nil
	}
}

// FactorQR runs the parallel tiled QR factorization in place and returns the
// Householder scale storage alongside the execution record.
func FactorQR(tl *matrix.TiledFull, opt Options) (*kernels.QRAux, *Result, error) {
	d := graph.QR(tl.P)
	aux := kernels.NewQRAux(tl.P, tl.NB)
	r, err := Run(d, QRExecutor(tl, aux), opt)
	return aux, r, err
}
