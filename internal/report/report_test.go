package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func demoTable() *stats.Table {
	t := &stats.Table{Title: "Demo <fig>", XLabel: "tiles", YLabel: "GFLOP/s",
		Xs: []float64{4, 8, 16, 32}}
	t.Add("dmda", []float64{100, 300, 600, 850}, nil)
	t.Add("dmdas", []float64{110, 320, 610, 870}, []float64{1, 2, 3, 4})
	t.Add("bound", []float64{130, 500, 900, math.NaN()}, nil)
	return t
}

func TestLineChartSVGStructure(t *testing.T) {
	svg := LineChartSVG(demoTable())
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG")
	}
	// 3 series → 3 polylines (bound has a NaN at the end but ≥2 points remain).
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Fatalf("%d polylines, want 3", got)
	}
	// Markers skip the NaN: 4+4+3 = 11 dots, each with a hover tooltip.
	if got := strings.Count(svg, "<circle"); got != 11 {
		t.Fatalf("%d markers, want 11", got)
	}
	if got := strings.Count(svg, "<title>"); got != 11 {
		t.Fatalf("%d tooltips, want 11", got)
	}
	// Direct labels at line ends for all three series.
	if got := strings.Count(svg, `class="dlabel"`); got != 3 {
		t.Fatalf("%d direct labels, want 3", got)
	}
	// Title is escaped.
	if strings.Contains(svg, "<fig>") {
		t.Fatal("unescaped HTML in aria label")
	}
	// Gridlines are hairline class, 6 of them (0..5).
	if got := strings.Count(svg, `class="grid"`); got != 6 {
		t.Fatalf("%d gridlines, want 6", got)
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.7: 1, 3: 5, 9: 10, 12: 20, 49: 50, 51: 100, 960: 1000}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Fatalf("niceCeil(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestHTMLReportComplete(t *testing.T) {
	out := HTML("Report & title", []*stats.Table{demoTable()})
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Report &amp; title",
		"prefers-color-scheme: dark", // dark mode is selected, not flipped
		"--series-1: #2a78d6",
		"Data table",
		"320.00 ± 2.00", // sigma rendering in the table view
		"—",             // NaN cell
		`class="legend"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// One y-axis only: no second axis group.
	if strings.Count(out, "axis-label") < 1 {
		t.Fatal("x axis label missing")
	}
}

func TestSingleSeriesNoLegend(t *testing.T) {
	tb := &stats.Table{Title: "one", XLabel: "x", YLabel: "y", Xs: []float64{1, 2}}
	tb.Add("only", []float64{1, 2}, nil)
	if legendHTML(tb) != "" {
		t.Fatal("single series must not get a legend box")
	}
	out := HTML("t", []*stats.Table{tb})
	if strings.Contains(out, `class="legend"`) {
		t.Fatal("legend rendered for single series")
	}
}

func TestManySeriesCappedAtPalette(t *testing.T) {
	tb := &stats.Table{Title: "many", XLabel: "x", YLabel: "y", Xs: []float64{1, 2}}
	for i := 0; i < 11; i++ {
		tb.Add(strings.Repeat("s", i+1), []float64{float64(i), float64(i + 1)}, nil)
	}
	svg := LineChartSVG(tb)
	if got := strings.Count(svg, "<polyline"); got != 8 {
		t.Fatalf("%d polylines, want 8 (palette is never cycled)", got)
	}
	// But the table view carries all 11.
	table := tableHTML(tb)
	if got := strings.Count(table, "<th>"); got != 12 {
		t.Fatalf("%d table headers, want 12", got)
	}
}

func TestFormatTick(t *testing.T) {
	if formatTick(1200) != "1,200" || formatTick(950) != "950" || formatTick(2.5) != "2.5" {
		t.Fatalf("tick formats: %q %q %q", formatTick(1200), formatTick(950), formatTick(2.5))
	}
}

func TestBarChartSVG(t *testing.T) {
	tb := &stats.Table{
		Title: "Table I", XLabel: "kernel", YLabel: "speedup",
		Xs: []float64{0, 1, 2, 3}, Categorical: true,
		XNames: []string{"POTRF", "TRSM", "SYRK", "GEMM"},
	}
	tb.Add("gpu/cpu", []float64{2, 11, 26, 29}, nil)
	svg := ChartSVG(tb)
	if !strings.Contains(svg, "<path") {
		t.Fatal("categorical table should render bars")
	}
	if got := strings.Count(svg, "<path"); got != 4 {
		t.Fatalf("%d bars, want 4", got)
	}
	if !strings.Contains(svg, "POTRF") || !strings.Contains(svg, "GEMM") {
		t.Fatal("category labels missing")
	}
	// Values labeled on caps.
	if !strings.Contains(svg, ">29<") {
		t.Fatal("cap value labels missing")
	}
	// Non-categorical table still gets lines.
	lt := demoTable()
	if !strings.Contains(ChartSVG(lt), "<polyline") {
		t.Fatal("continuous table should render lines")
	}
}

func TestBarChartNaNSkipped(t *testing.T) {
	tb := &stats.Table{Title: "x", XLabel: "c", YLabel: "y",
		Xs: []float64{0, 1}, Categorical: true}
	tb.Add("a", []float64{5, math.NaN()}, nil)
	svg := BarChartSVG(tb)
	if got := strings.Count(svg, "<path"); got != 1 {
		t.Fatalf("%d bars, want 1 (NaN skipped)", got)
	}
}
