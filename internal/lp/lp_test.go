package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimple2D(t *testing.T) {
	// min −x−y s.t. x+y ≤ 4, x ≤ 3, y ≤ 3 ⇒ obj −4 (whole edge optimal).
	p := NewProblem([]float64{-1, -1})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1}, LE, 3)
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.Obj-(-4)) > 1e-9 {
		t.Fatalf("got %v obj=%g", s.Status, s.Obj)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+2y s.t. x+y = 3, x ≤ 2 ⇒ x=2, y=1, obj 4.
	p := NewProblem([]float64{1, 2})
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.Obj-4) > 1e-9 {
		t.Fatalf("got %v obj=%g x=%v", s.Status, s.Obj, s.X)
	}
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-1) > 1e-9 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min x s.t. x ≥ 5 ⇒ 5.
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.Obj-5) > 1e-9 {
		t.Fatalf("got %v obj=%g", s.Status, s.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if s := Solve(p); s.Status != Infeasible {
		t.Fatalf("got %v", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem([]float64{-1})
	p.AddConstraint([]float64{1}, GE, 0)
	if s := Solve(p); s.Status != Unbounded {
		t.Fatalf("got %v", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x ≥ −2 is vacuous under x ≥ 0: min x ⇒ 0.
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1}, GE, -2)
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.Obj) > 1e-9 {
		t.Fatalf("got %v obj=%g", s.Status, s.Obj)
	}
	// −x ≥ 2 ⇔ x ≤ −2: infeasible with x ≥ 0.
	p = NewProblem([]float64{1})
	p.AddConstraint([]float64{-1}, GE, 2)
	if s := Solve(p); s.Status != Infeasible {
		t.Fatalf("got %v", s.Status)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	p := NewProblem([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{2, 2}, EQ, 4) // redundant duplicate
	s := Solve(p)
	if s.Status != Optimal || math.Abs(s.Obj-2) > 1e-9 {
		t.Fatalf("got %v obj=%g", s.Status, s.Obj)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	p := NewProblem([]float64{0, 0})
	p.AddConstraint([]float64{1, 1}, GE, 1)
	s := Solve(p)
	if s.Status != Optimal || s.Obj != 0 {
		t.Fatalf("got %v obj=%g", s.Status, s.Obj)
	}
}

// --- brute force comparison -------------------------------------------------

// solveSquare solves an n×n linear system by Gaussian elimination with
// partial pivoting; returns nil if singular.
func solveSquare(a [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for c := 0; c < n; c++ {
		best, bi := 0.0, -1
		for r := c; r < n; r++ {
			if v := math.Abs(m[r][c]); v > best {
				best, bi = v, r
			}
		}
		if best < 1e-9 {
			return nil
		}
		m[c], m[bi] = m[bi], m[c]
		for r := 0; r < n; r++ {
			if r == c {
				continue
			}
			f := m[r][c] / m[c][c]
			for j := c; j <= n; j++ {
				m[r][j] -= f * m[c][j]
			}
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = m[i][n] / m[i][i]
	}
	return x
}

// bruteForce enumerates candidate vertices of {x ≥ 0, rows} and returns the
// minimum objective over feasible vertices, or NaN if none found.
func bruteForce(p *Problem) float64 {
	n := len(p.C)
	// Candidate hyperplanes: each row as equality, plus x_i = 0.
	type hp struct {
		a []float64
		b float64
	}
	var hps []hp
	for _, r := range p.Rows {
		hps = append(hps, hp{r.Coef, r.RHS})
	}
	for i := 0; i < n; i++ {
		a := make([]float64, n)
		a[i] = 1
		hps = append(hps, hp{a, 0})
	}
	feasible := func(x []float64) bool {
		for _, v := range x {
			if v < -1e-7 {
				return false
			}
		}
		for _, r := range p.Rows {
			s := 0.0
			for j := range r.Coef {
				s += r.Coef[j] * x[j]
			}
			switch r.Rel {
			case LE:
				if s > r.RHS+1e-7 {
					return false
				}
			case GE:
				if s < r.RHS-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(s-r.RHS) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	best := math.NaN()
	// All n-subsets of hyperplanes.
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			a := make([][]float64, n)
			b := make([]float64, n)
			for i, h := range idx {
				a[i] = hps[h].a
				b[i] = hps[h].b
			}
			x := solveSquare(a, b)
			if x == nil || !feasible(x) {
				return
			}
			obj := 0.0
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if math.IsNaN(best) || obj < best {
				best = obj
			}
			return
		}
		for h := start; h < len(hps); h++ {
			idx[k] = h
			rec(h+1, k+1)
		}
	}
	rec(0, 0)
	return best
}

func randomLP(rng *rand.Rand, n, m int) *Problem {
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()*4 - 2
	}
	p := NewProblem(c)
	for i := 0; i < m; i++ {
		a := make([]float64, n)
		for j := range a {
			a[j] = rng.Float64()*4 - 2
		}
		p.AddConstraint(a, LE, rng.Float64()*5)
	}
	// Box to guarantee boundedness.
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		p.AddConstraint(a, LE, 10)
	}
	return p
}

func TestSimplexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2) // 2 or 3 vars
		m := 1 + rng.Intn(4)
		p := randomLP(rng, n, m)
		s := Solve(p)
		want := bruteForce(p)
		if math.IsNaN(want) {
			if s.Status == Optimal {
				t.Fatalf("trial %d: simplex optimal %g but brute force found no vertex", trial, s.Obj)
			}
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: simplex %v but brute force found %g", trial, s.Status, want)
		}
		if math.Abs(s.Obj-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %g, brute force %g", trial, s.Obj, want)
		}
	}
}

func TestSolutionSatisfiesConstraintsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLP(rng, 3, 3)
		s := Solve(p)
		if s.Status != Optimal {
			return true
		}
		for _, v := range s.X {
			if v < -1e-7 {
				return false
			}
		}
		for _, r := range p.Rows {
			dot := 0.0
			for j := range r.Coef {
				dot += r.Coef[j] * s.X[j]
			}
			if r.Rel == LE && dot > r.RHS+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIntegerKnapsackLike(t *testing.T) {
	// min −x−y s.t. 2x+3y ≤ 12.5, x ≤ 4.2, y ≤ 3.7, integer ⇒ best integral.
	p := NewProblem([]float64{-1, -1})
	p.AddConstraint([]float64{2, 3}, LE, 12.5)
	p.AddConstraint([]float64{1, 0}, LE, 4.2)
	p.AddConstraint([]float64{0, 1}, LE, 3.7)
	s, err := SolveInteger(p, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// Enumerate integers to verify.
	best := 0.0
	for x := 0; x <= 4; x++ {
		for y := 0; y <= 3; y++ {
			if 2*x+3*y <= 12 { // 12.5 floor with integer lhs values 2x+3y
				if float64(2*x+3*y) <= 12.5 && float64(-x-y) < best {
					best = float64(-x - y)
				}
			}
		}
	}
	if math.Abs(s.Obj-best) > 1e-6 {
		t.Fatalf("ILP obj %g, want %g (x=%v)", s.Obj, best, s.X)
	}
	for _, v := range []float64{s.X[0], s.X[1]} {
		if math.Abs(v-math.Round(v)) > 1e-6 {
			t.Fatalf("non-integral solution %v", s.X)
		}
	}
}

func TestSolveIntegerMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// min c·x, a·x ≤ b, 0 ≤ x ≤ 5, x ∈ Z².
		c := []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		a := []float64{rng.Float64()*2 + 0.1, rng.Float64()*2 + 0.1}
		b := rng.Float64()*10 + 1
		p := NewProblem(c)
		p.AddConstraint(a, LE, b)
		p.AddConstraint([]float64{1, 0}, LE, 5)
		p.AddConstraint([]float64{0, 1}, LE, 5)
		s, err := SolveInteger(p, []int{0, 1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for x := 0; x <= 5; x++ {
			for y := 0; y <= 5; y++ {
				if a[0]*float64(x)+a[1]*float64(y) <= b+1e-12 {
					if v := c[0]*float64(x) + c[1]*float64(y); v < best {
						best = v
					}
				}
			}
		}
		if s.Status != Optimal || math.Abs(s.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: ILP %v/%g, enumeration %g", trial, s.Status, s.Obj, best)
		}
	}
}

func TestSolveIntegerInfeasible(t *testing.T) {
	p := NewProblem([]float64{1})
	p.AddConstraint([]float64{1}, GE, 2)
	p.AddConstraint([]float64{1}, LE, 1)
	s, err := SolveInteger(p, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("got %v", s.Status)
	}
}

func TestSolveIntegerBadVarIndex(t *testing.T) {
	p := NewProblem([]float64{1})
	if _, err := SolveInteger(p, []int{3}, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveIntegerFractionalRHS(t *testing.T) {
	// min −x s.t. x ≤ 2.5, integer ⇒ x = 2.
	p := NewProblem([]float64{-1})
	p.AddConstraint([]float64{1}, LE, 2.5)
	s, err := SolveInteger(p, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.X[0]-2) > 1e-9 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestRelAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Rel strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings")
	}
}

func TestAddConstraintCopies(t *testing.T) {
	p := NewProblem([]float64{1, 2})
	coef := []float64{1, 1}
	p.AddConstraint(coef, LE, 3)
	coef[0] = 99
	if p.Rows[0].Coef[0] == 99 {
		t.Fatal("AddConstraint did not copy coefficients")
	}
	// Short coefficient slices are zero-extended.
	p.AddConstraint([]float64{5}, LE, 1)
	if len(p.Rows[1].Coef) != 2 || p.Rows[1].Coef[1] != 0 {
		t.Fatal("short coef not zero-extended")
	}
}
