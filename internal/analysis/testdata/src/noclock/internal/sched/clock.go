// Package sched is a noclock fixture inside the deterministic core.
package sched

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func wallClock() float64 {
	t0 := time.Now() // want `time.Now in deterministic-core package sched`
	defer func() {
		_ = time.Since(t0) // want `time.Since in deterministic-core package sched`
	}()
	time.Sleep(time.Millisecond) // want `time.Sleep in deterministic-core package sched`
	return float64(t0.Unix())
}

func globalRand() float64 {
	x := rand.Float64() // want `rand.Float64 draws from the process-global source`
	n := rand.Intn(10)  // want `rand.Intn draws from the process-global source`
	return x + float64(n)
}

func globalRandV2() int {
	return randv2.IntN(10) // want `rand/v2.IntN is unseedable`
}

func seededRandFine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded constructors are allowed
	return rng.Float64()                  // method on a seeded *rand.Rand, not the global
}

func durationArithmeticFine(d time.Duration) time.Duration {
	return d * 2 // using the time package's types is fine; only clock reads are banned
}

func escapedWallClock() time.Time {
	return time.Now() //chollint:realtime progress logging, excluded from digests
}
