package simulator

import "math/rand"

// Fast bit-identical jitter draws.
//
// The jitter model consumes exactly one Float64 from a freshly seeded
// math/rand generator per (seed, task) pair. Materializing that generator is
// absurdly expensive for one draw: rngSource.Seed runs the Lehmer seeding
// LCG x' = 48271·x mod (2³¹−1) for 20+3·607 steps to fill a 607-word
// feedback vector, of which the first Float64 reads exactly two words —
// vec[333] (the feed) and vec[606] (the tap).
//
// This file computes those two words directly. The seeding LCG is a pure
// modular multiplication, so the chain value after n steps is
// (48271ⁿ mod M)·x₀ mod M — the powers for the handful of chain positions
// the two words consume are precomputed once, turning ~1841 LCG steps plus a
// ~5 KB allocation into six modular multiplications. The additive rngCooked
// constants folded into those vector words are copied verbatim from
// math/rand (a frozen value stream: Go 1 compatibility pins it, and
// TestFastSeedFloat64MatchesMathRand re-derives every constant against the
// real generator).
//
// Float64's documented quirk is preserved: a draw so close to 1<<63 that the
// division rounds to 1.0 is retried, which reads vec[333−j]/vec[606−j] for
// retry j. Retries up to jitMaxRetry are computed algebraically (no written
// word is re-read that early: the feed cursor only returns to index 333
// after 273 draws); deeper retry chains — probability ≈ 2⁻⁵⁴ per draw —
// fall back to the real generator.

const (
	lehmerM = 2147483647 // 2³¹ − 1, modulus of math/rand's seeding LCG
	lehmerA = 48271      // its multiplier

	rngFloatMask = 1<<63 - 1 // rngMask: Int63 truncation of the vector word

	jitFeed     = 333 // vector index the first draw's feed cursor reads
	jitTap      = 606 // vector index the first draw's tap cursor reads
	jitMaxRetry = 7
)

// rngCookedFeed[j] and rngCookedTap[j] are math/rand's rngCooked constants
// at the indices retry j reads: rngCooked[jitFeed−j] and rngCooked[jitTap−j]
// as uint64 bit patterns.
var rngCookedFeed = [jitMaxRetry + 1]uint64{
	0xbfb2f4d968b759c3, // rngCooked[333]
	0x3b7fc3ad0d1cd36b, // rngCooked[332]
	0xf11bfbb3ba3e0841, // rngCooked[331]
	0x031089e87fbab9a7, // rngCooked[330]
	0x967e3cd0f12b1c5f, // rngCooked[329]
	0xbd640b6140802b1e, // rngCooked[328]
	0x32a31118a95e425f, // rngCooked[327]
	0x08137c3380f32523, // rngCooked[326]
}

var rngCookedTap = [jitMaxRetry + 1]uint64{
	0x39a00a3a31c025c6, // rngCooked[606]
	0x7e57a19b735ef03b, // rngCooked[605]
	0x74535a96cc7adfd7, // rngCooked[604]
	0xe1de048dc78b382e, // rngCooked[603]
	0xa8de655829aab207, // rngCooked[602]
	0xfbba1e4a59b0c60c, // rngCooked[601]
	0xe5b5e9385b202824, // rngCooked[600]
	0xf579e080162896e9, // rngCooked[599]
}

// powFeed[j] / powTap[j] hold 48271ⁿ mod M for the three chain positions the
// vector word of retry j consumes (the <<40, <<20 and plain terms).
var powFeed, powTap [jitMaxRetry + 1][3]uint64

func init() {
	for j := 0; j <= jitMaxRetry; j++ {
		for k := 0; k < 3; k++ {
			// vec[i] consumes chain values 20+3i+1 … 20+3i+3: the seeding
			// loop burns 20 steps before index 0, then three per index.
			powFeed[j][k] = lehmerPow(uint64(20 + 3*(jitFeed-j) + 1 + k))
			powTap[j][k] = lehmerPow(uint64(20 + 3*(jitTap-j) + 1 + k))
		}
	}
}

// lehmerPow returns 48271ⁿ mod M by square-and-multiply. Operands stay below
// 2³¹, so products fit uint64 with room to spare.
func lehmerPow(n uint64) uint64 {
	r, b := uint64(1), uint64(lehmerA)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r = r * b % lehmerM
		}
		b = b * b % lehmerM
	}
	return r
}

// lehmerVec reconstructs one seeded vector word from the normalized seed x0
// using the precomputed chain powers and the matching rngCooked constant.
func lehmerVec(pw *[3]uint64, cooked, x0 uint64) uint64 {
	u := (pw[0] * x0 % lehmerM) << 40
	u ^= (pw[1] * x0 % lehmerM) << 20
	u ^= pw[2] * x0 % lehmerM
	return u ^ cooked
}

// fastSeedFloat64 returns rand.New(rand.NewSource(seed)).Float64() without
// building the generator. ok is false only when more than jitMaxRetry+1
// consecutive draws round to 1.0 — astronomically unlikely, handled by the
// caller with the real generator.
func fastSeedFloat64(seed int64) (f float64, ok bool) {
	// rngSource.Seed's normalization, verbatim.
	s := seed % lehmerM
	if s < 0 {
		s += lehmerM
	}
	if s == 0 {
		s = 89482311
	}
	x0 := uint64(s)
	for j := 0; j <= jitMaxRetry; j++ {
		v := lehmerVec(&powFeed[j], rngCookedFeed[j], x0) + lehmerVec(&powTap[j], rngCookedTap[j], x0)
		f := float64(int64(v&rngFloatMask)) / (1 << 63)
		if f != 1 { //chollint:floateq mirrors math/rand.Float64's exact resample test
			return f, true
		}
	}
	return 0, false
}

// seedFloat64 is the first Float64 of a generator seeded with seed,
// bit-identical to math/rand by the fast path or, failing that, by
// math/rand itself.
func seedFloat64(seed int64) float64 {
	if f, ok := fastSeedFloat64(seed); ok {
		return f
	}
	return rand.New(rand.NewSource(seed)).Float64()
}

// JitterRow fills dst[t] for every task ID t with the jitter draw
// u ∈ (−1, 1) the serial event loop's jittered() would consume for that task
// under the given run seed. A lane primed with this row via
// LaneRun.SetJitterRow reproduces the serial run's execution times bit for
// bit without ever touching math/rand.
func JitterRow(seed int64, dst []float64) {
	for t := range dst {
		dst[t] = 2*seedFloat64(seed*1000003+int64(t)) - 1
	}
}
