package obs

import "sync"

// subBuffer is the per-subscriber channel depth. A subscriber that falls
// further behind than this has frames dropped (never blocked on): sequence
// numbers stay monotonic across drops, and an SSE client can re-request the
// gap via Last-Event-ID replay.
const subBuffer = 64

// FrameRing is a bounded, concurrency-safe buffer of the most recent probe
// frames for one run, with fan-out to live subscribers. It backs the run
// ledger's per-run frame history and the /v1/runs/{id}/live SSE stream:
// Publish appends (evicting the oldest once capacity is reached) and
// notifies subscribers; Subscribe atomically returns the replay backlog
// after a given sequence number plus a channel for subsequent frames; Close
// marks the run finished and releases all subscribers.
type FrameRing struct {
	mu      sync.Mutex
	frames  []Frame // ring storage
	start   int     // index of the oldest retained frame
	n       int     // retained frame count
	closed  bool
	subs    map[int]chan Frame
	nextSub int
}

// NewFrameRing returns a ring retaining the last `capacity` frames
// (minimum 1).
func NewFrameRing(capacity int) *FrameRing {
	if capacity < 1 {
		capacity = 1
	}
	return &FrameRing{frames: make([]Frame, capacity), subs: make(map[int]chan Frame)}
}

// Publish retains a deep copy of f and delivers it to every subscriber.
// Slow subscribers lose frames rather than block the publisher. Publishing
// to a closed ring is a no-op.
func (r *FrameRing) Publish(f Frame) {
	c := f.Clone()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if r.n == len(r.frames) {
		r.frames[r.start] = c
		r.start = (r.start + 1) % len(r.frames)
	} else {
		r.frames[(r.start+r.n)%len(r.frames)] = c
		r.n++
	}
	for _, ch := range r.subs {
		select {
		case ch <- c:
		default: // subscriber too slow: drop, keep seq monotonic
		}
	}
}

// Close marks the run finished: retained frames stay readable, subscriber
// channels are closed, and future Publish/Subscribe see the closed state.
// Idempotent.
func (r *FrameRing) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id, ch := range r.subs {
		close(ch)
		delete(r.subs, id)
	}
}

// Closed reports whether the ring has been closed.
func (r *FrameRing) Closed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// Len returns the number of retained frames.
func (r *FrameRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Last returns the most recent frame, if any.
func (r *FrameRing) Last() (Frame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return Frame{}, false
	}
	return r.frames[(r.start+r.n-1)%len(r.frames)], true
}

// Snapshot returns retained frames with Seq > afterSeq, oldest first. Pass
// 0 for the full backlog.
func (r *FrameRing) Snapshot(afterSeq uint64) []Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked(afterSeq)
}

func (r *FrameRing) snapshotLocked(afterSeq uint64) []Frame {
	var out []Frame
	for i := 0; i < r.n; i++ {
		f := r.frames[(r.start+i)%len(r.frames)]
		if f.Seq > afterSeq {
			out = append(out, f)
		}
	}
	return out
}

// Subscribe atomically snapshots the backlog after afterSeq and registers a
// live channel for frames published afterwards, so no frame between the two
// is lost. The channel is closed when the ring closes (run finished) or
// when cancel is called; cancel is idempotent and must be called to release
// the subscription. On an already-closed ring the returned channel is
// already closed.
func (r *FrameRing) Subscribe(afterSeq uint64) (backlog []Frame, live <-chan Frame, cancel func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	backlog = r.snapshotLocked(afterSeq)
	ch := make(chan Frame, subBuffer)
	if r.closed {
		close(ch)
		return backlog, ch, func() {}
	}
	id := r.nextSub
	r.nextSub++
	r.subs[id] = ch
	return backlog, ch, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.subs[id]; ok {
			delete(r.subs, id)
			close(ch)
		}
	}
}
