// Command cholbounds prints the paper's makespan/performance bounds for any
// platform across matrix sizes — the quick "what is achievable on this
// machine" query a practitioner asks before tuning schedulers.
//
// Usage:
//
//	cholbounds -sizes 4,8,16,32                      # Mirage model
//	cholbounds -platform-file mynode.json -algo lu
//	cholbounds -algo qr -csv bounds.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/stats"
)

func main() {
	var (
		algo     = flag.String("algo", "cholesky", "cholesky | lu | qr")
		platFile = flag.String("platform-file", "", "JSON platform description (default: Mirage family)")
		sizes    = flag.String("sizes", "2,4,8,12,16,20,24,28,32", "comma-separated tile counts")
		nb       = cliflags.NB(flag.CommandLine, platform.TileNB, "the bounded kernels")
		nbSplit  = cliflags.NBSplit(flag.CommandLine)
		csvOut   = flag.String("csv", "", "write the table as CSV to this file")
	)
	flag.Parse()

	var p *platform.Platform
	var err error
	if *platFile != "" {
		p, err = platform.LoadFile(*platFile)
	} else {
		p, err = core.PlatformForAlgorithm(*algo, false)
	}
	if err != nil {
		fatal(err)
	}

	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		ns = append(ns, n)
	}

	var split cliflags.Split
	if *nbSplit != "" {
		if *algo != "cholesky" {
			fatal(fmt.Errorf("-nb-split applies to -algo cholesky only (got %q)", *algo))
		}
		var err error
		if split, err = cliflags.ParseSplit(*nbSplit); err != nil {
			fatal(err)
		}
		for _, n := range ns {
			if err := split.Check(n, *nb); err != nil {
				fatal(err)
			}
		}
		// Sub-reference tiles are priced by scaling the reference tables.
		p.Model = platform.ModelScaled
	}

	tbl := &stats.Table{
		Title:  fmt.Sprintf("Performance upper bounds — %s on %s (GFLOP/s)", *algo, p.Name),
		XLabel: "tiles",
		YLabel: "GFLOP/s",
	}
	for _, n := range ns {
		tbl.Xs = append(tbl.Xs, float64(n))
	}
	var cp, area, mixed, peak []float64
	for _, n := range ns {
		var d *graph.DAG
		var err error
		if *nbSplit != "" {
			d = graph.CholeskySplit(n, split.FromK, split.Factor, *nb)
		} else if d, err = core.DAGByAlgorithm(*algo, n); err != nil {
			fatal(err)
		}
		f, err := core.FlopsByAlgorithm(*algo, n**nb)
		if err != nil {
			fatal(err)
		}
		c, err := bounds.CriticalPath(d, p)
		if err != nil {
			fatal(err)
		}
		a, err := bounds.AreaInt(d, p)
		if err != nil {
			fatal(err)
		}
		m, err := bounds.MixedInt(d, p)
		if err != nil {
			fatal(err)
		}
		cp = append(cp, c.GFlops(f))
		area = append(area, a.GFlops(f))
		mixed = append(mixed, m.GFlops(f))
		peak = append(peak, bounds.GemmPeak(f, p, *nb).GFlops(f))
	}
	tbl.Add("critical path", cp, nil)
	tbl.Add("area bound", area, nil)
	tbl.Add("mixed bound", mixed, nil)
	tbl.Add("gemm peak", peak, nil)
	fmt.Print(tbl.Render())
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(tbl.CSV()), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholbounds:", err)
	os.Exit(1)
}
