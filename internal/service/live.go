package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// GET /v1/runs/{id}/live streams a run's progress frames as Server-Sent
// Events. The stream replays the buffered backlog first (honouring
// Last-Event-ID on reconnect, so a dropped client resumes where it left
// off), then follows the run live, interleaving comment heartbeats so
// proxies and clients can detect a stalled connection. When the run
// completes, fails, or ages out of the bounded ledger, a terminal `done`
// event carries the final status and the stream ends.
//
// The SSE wire format is produced by the pure appendSSE* encoders below so
// the framing is testable byte-for-byte without a network in the loop.

// appendSSEFrame encodes one progress frame as an SSE event: the frame
// sequence number becomes the event ID (what a reconnecting client echoes
// back in Last-Event-ID), the event name is "frame", and the data line is
// the frame's JSON.
func appendSSEFrame(b []byte, f obs.Frame) ([]byte, error) {
	data, err := json.Marshal(f)
	if err != nil {
		return b, err
	}
	b = append(b, "id: "...)
	b = strconv.AppendUint(b, f.Seq, 10)
	b = append(b, "\nevent: frame\ndata: "...)
	b = append(b, data...)
	b = append(b, '\n', '\n')
	return b, nil
}

// appendSSEHeartbeat encodes the keep-alive comment (invisible to
// EventSource clients, but keeps the connection from idling out).
func appendSSEHeartbeat(b []byte) []byte {
	return append(b, ": heartbeat\n\n"...)
}

// appendSSEDone encodes the terminal event carrying the run's final status
// (done | failed | evicted).
func appendSSEDone(b []byte, status string) []byte {
	b = append(b, "event: done\ndata: {\"status\":"...)
	b = strconv.AppendQuote(b, status)
	b = append(b, '}', '\n', '\n')
	return b
}

// lastEventID extracts the resume point of a reconnecting SSE client: the
// standard Last-Event-ID header, with an `after` query parameter as the
// curl-friendly fallback. Zero (stream from the start) when absent or
// malformed.
func lastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// instrumentStream wraps a streaming handler with the request counter only:
// no per-request timeout (a live stream legitimately outlives
// RequestTimeout; StreamTimeout bounds it instead) and no latency histogram
// (stream lifetime is connection policy, not evaluation latency).
func (s *Server) instrumentStream(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.CounterAdd("cholserved_requests_total",
			"Requests served, by endpoint and status code.",
			Labels{"endpoint": endpoint, "code": strconv.Itoa(sw.status)}, 1)
	}
}

func (s *Server) handleRunLive(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.ledger.Get(id)
	if !ok {
		writeErr(w, notFound(fmt.Errorf("service: run %q not in the ledger (bounded to %d entries)", id, s.cfg.LedgerSize)))
		return
	}
	if e.Frames == nil {
		writeErr(w, notFound(fmt.Errorf("service: run %q has no live stream (batched-sweep cells stream through their parent sweep run)", id)))
		return
	}
	// ResponseController reaches the connection's Flusher through the
	// statusWriter instrumentation wrappers (via their Unwrap methods).
	rc := http.NewResponseController(w)

	backlog, live, cancel := e.Frames.Subscribe(lastEventID(r))
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	var buf []byte
	for _, f := range backlog {
		var err error
		if buf, err = appendSSEFrame(buf, f); err != nil {
			return
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
	rc.Flush()

	finish := func() {
		status := "evicted" // aged out of the bounded ledger mid-stream
		if cur, ok := s.ledger.Get(id); ok && cur.Status != StatusRunning {
			status = cur.Status
		}
		w.Write(appendSSEDone(nil, status))
		rc.Flush()
	}
	if e.Frames.Closed() {
		finish()
		return
	}

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	deadline := time.NewTimer(s.cfg.StreamTimeout)
	defer deadline.Stop()

	for {
		select {
		case f, open := <-live:
			if !open {
				finish()
				return
			}
			buf, err := appendSSEFrame(buf[:0], f)
			if err != nil {
				return
			}
			if _, err := w.Write(buf); err != nil {
				return
			}
			rc.Flush()
		case <-heartbeat.C:
			if _, err := w.Write(appendSSEHeartbeat(nil)); err != nil {
				return
			}
			rc.Flush()
		case <-deadline.C:
			// Bound the stream's lifetime; the client reconnects with
			// Last-Event-ID and resumes from the ring backlog.
			return
		case <-r.Context().Done():
			return
		}
	}
}
