package sched

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

func TestPartitionHintClasses(t *testing.T) {
	p := platform.MirageExtended()
	nb := p.DefaultNB()
	d := graph.CholeskySplit(8, 4, 2, nb)
	allow := PartitionHint(d, p, 1.0) // every trailing row below the panel → GPUs

	for _, task := range d.Tasks {
		classes := allow(task)
		switch {
		case task.Kind.IsConversion():
			if len(classes) != 1 || classes[0] != 0 {
				t.Fatalf("%s allowed on %v, conversions must be CPU-only", task.Name(), classes)
			}
		case task.NB != 0 && task.NB < nb:
			if len(classes) != 1 || classes[0] != 0 {
				t.Fatalf("%s (fine) allowed on %v, want CPU-only", task.Name(), classes)
			}
		case task.Kind == graph.GEMM && task.I < d.P:
			// g = 1: every coarse GEMM row strictly below its panel is GPU.
			if len(classes) != 1 || classes[0] != 1 {
				t.Fatalf("coarse %s allowed on %v, want GPU-only at g=1", task.Name(), classes)
			}
		case task.Kind == graph.POTRF:
			if classes != nil {
				t.Fatalf("%s restricted to %v, POTRF must stay free", task.Name(), classes)
			}
		}
	}

	// g = 0 sends every restricted BLAS-3 task to the CPUs instead.
	allow0 := PartitionHint(d, p, 0)
	for _, task := range d.Tasks {
		if task.Kind == graph.GEMM {
			if classes := allow0(task); len(classes) != 1 || classes[0] != 0 {
				t.Fatalf("g=0: %s allowed on %v, want CPU-only", task.Name(), classes)
			}
		}
	}
}

func TestPartitionHintSingleClassIsFree(t *testing.T) {
	p := platform.Homogeneous(4)
	d := graph.CholeskySplit(4, 2, 2, 960)
	allow := PartitionHint(d, p, 0.5)
	for _, task := range d.Tasks {
		if classes := allow(task); classes != nil {
			t.Fatalf("%s restricted to %v on a single-class platform", task.Name(), classes)
		}
	}
}

func TestNewPartitionValidation(t *testing.T) {
	if got := NewPartition(0.45).Name(); got != "partition:0.45" {
		t.Fatalf("name %q", got)
	}
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPartition(%g) did not panic", bad)
				}
			}()
			NewPartition(bad)
		}()
	}
}
