// Realfactor: solve a PDE-style linear system end to end with the parallel
// runtime — the paper intro's motivating workload ("systems often arise in
// physics applications ... where A is positive-definite due to the nature of
// the modeled physical phenomenon").
//
// We build the 2-D Laplacian of a k×k grid, factorize A = L·Lᵀ in parallel,
// then solve A·x = b by the two triangular solves L·y = b, Lᵀ·x = y, and
// check the residual of the solve — the complete pipeline the factorization
// exists for.
//
// Run with:  go run ./examples/realfactor
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/matrix"
	"repro/internal/runtime"
)

func main() {
	const grid = 20 // 20×20 grid ⇒ N = 400
	a := matrix.Laplacian2D(grid)
	n := a.N
	fmt.Printf("2-D Laplacian on a %d×%d grid: N = %d\n", grid, grid, n)

	// A known solution ⇒ right-hand side b = A·x*.
	xstar := make([]float64, n)
	for i := range xstar {
		xstar[i] = math.Sin(float64(i) * 0.1)
	}
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * xstar[j]
		}
		b[i] = s
	}

	// Parallel tiled factorization (nb = 40 ⇒ 10×10 tiles, 220 tasks).
	tl, err := matrix.FromDense(a, 40)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runtime.Factor(tl, runtime.Options{Policy: runtime.Priority})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized in %.4f s with %d tasks, residual %.2e\n",
		res.Seconds, len(res.Start), matrix.CholeskyResidual(a, tl.ToDense()))

	// Parallel tiled triangular solves (their own task DAGs: TRSV + GEMV).
	x, err := runtime.Solve(tl, b, runtime.Options{Policy: runtime.Priority})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the known solution.
	maxErr := 0.0
	for i := range x {
		if e := math.Abs(x[i] - xstar[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("solve max|x − x*| = %.2e\n", maxErr)
	if maxErr > 1e-8 {
		log.Fatal("solution inaccurate")
	}
	fmt.Println("A·x = b solved correctly via parallel Cholesky")
}
