// Package core is the library façade: the high-level entry points a
// downstream user calls to (a) factorize real matrices with the parallel
// runtime, (b) simulate tiled Cholesky schedules on modelled heterogeneous
// platforms, (c) compute the paper's makespan bounds, and (d) regenerate
// the paper's tables and figures.
//
// It wires together the substrates (matrix/kernels/graph/platform/lp) and
// the study layers (bounds/sched/simulator/cpsolve/runtime/experiments)
// behind a small, stable surface. Everything it returns comes from those
// packages, which remain importable directly for fine-grained control.
//
// Platform models and scheduling policies are resolved through extensible
// registries (see RegisterPlatform / RegisterScheduler in registry.go);
// NewPlatform and NewScheduler look names up there. The evaluation entry
// points take a context.Context and stop promptly when it is cancelled —
// the simulator checks inside its event loop and the CP search inside its
// node expansion — so a server can bound the CPU a request may burn.
package core

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// Factorize computes the Cholesky factor L of a symmetric positive-definite
// matrix in parallel with the task runtime (nb = tile size, workers ≤ 0 =
// GOMAXPROCS) and returns L together with the relative residual
// ‖A − L·Lᵀ‖_F / ‖A‖_F.
func Factorize(a *matrix.Dense, nb, workers int) (*matrix.Dense, float64, error) {
	tl, err := matrix.FromDense(a, nb)
	if err != nil {
		return nil, 0, err
	}
	if _, err := runtime.Factor(tl, runtime.Options{Workers: workers, Policy: runtime.Priority}); err != nil {
		return nil, 0, err
	}
	l := tl.ToDense()
	return l, matrix.CholeskyResidual(a, l), nil
}

// SimulationReport bundles one simulated run with its bound context.
type SimulationReport struct {
	Tiles       int
	Scheduler   string
	MakespanSec float64
	GFlops      float64
	BoundGFlops float64 // mixed-bound performance ceiling
	Efficiency  float64 // GFlops / BoundGFlops
	Result      *simulator.Result
}

// Simulate runs one tiled-Cholesky simulation and reports performance
// against the mixed bound. Cancelling ctx aborts the event loop.
func Simulate(ctx context.Context, nTiles int, p *platform.Platform, s sched.Scheduler, opt simulator.Options) (*SimulationReport, error) {
	d := graph.Cholesky(nTiles)
	return SimulateDAG(ctx, d, kernels.CholeskyFlops(nTiles*platform.TileNB), p, s, opt)
}

// SimulateDAG runs one simulation of an arbitrary factorization DAG (see
// DAGByAlgorithm) and reports performance against the generalized mixed
// bound, using the given flop total for the GFLOP/s conversion.
func SimulateDAG(ctx context.Context, d *graph.DAG, flops float64, p *platform.Platform,
	s sched.Scheduler, opt simulator.Options) (*SimulationReport, error) {
	return SimulateDAGObserved(ctx, d, flops, p, s, opt, nil)
}

// SimulateDAGObserved is SimulateDAG with phase-span observability: the
// event-loop run and the mixed-bound solve are timed as obs.PhaseSimulate
// and obs.PhaseBounds spans reported to spanObs (nil disables timing; the
// simulation itself is unaffected either way, spans only watch the clock).
func SimulateDAGObserved(ctx context.Context, d *graph.DAG, flops float64, p *platform.Platform,
	s sched.Scheduler, opt simulator.Options, spanObs obs.SpanObserver) (*SimulationReport, error) {

	sim := obs.StartSpan(obs.PhaseSimulate, spanObs)
	r, err := simulator.RunContext(ctx, d, p, s, opt)
	if err != nil {
		return nil, err
	}
	if err := simulator.Validate(d, p, r); err != nil {
		return nil, fmt.Errorf("core: simulator produced an invalid schedule: %w", err)
	}
	sim.End()
	bsp := obs.StartSpan(obs.PhaseBounds, spanObs)
	m, err := bounds.MixedInt(d, p)
	if err != nil {
		return nil, err
	}
	bsp.End()
	rep := &SimulationReport{
		Tiles:       d.P,
		Scheduler:   s.Name(),
		MakespanSec: r.MakespanSec,
		GFlops:      r.GFlops(flops),
		BoundGFlops: m.GFlops(flops),
		Result:      r,
	}
	if rep.BoundGFlops > 0 {
		rep.Efficiency = rep.GFlops / rep.BoundGFlops
	}
	return rep, nil
}

// BoundsFor computes the four Figure-2 bounds for a tile count on a platform.
func BoundsFor(nTiles int, p *platform.Platform) (bounds.All, error) {
	return bounds.Compute(nTiles, platform.TileNB, p)
}

// OptimizeSchedule searches for a near-optimal static schedule of a tiled
// Cholesky (the CP experiment) and returns it with its model makespan.
// Cancelling ctx aborts the branch-and-bound search. workers is the number
// of goroutines exploring the search tree (≤ 1 searches on the calling
// goroutine); the result is bit-identical for every value.
func OptimizeSchedule(ctx context.Context, nTiles int, p *platform.Platform, nodeBudget, workers int) (*cpsolve.Result, error) {
	return OptimizeDAG(ctx, graph.Cholesky(nTiles), p, nodeBudget, workers)
}

// OptimizeDAG is OptimizeSchedule for an arbitrary factorization DAG.
func OptimizeDAG(ctx context.Context, d *graph.DAG, p *platform.Platform, nodeBudget, workers int) (*cpsolve.Result, error) {
	return OptimizeDAGProbed(ctx, d, p, nodeBudget, workers, nil)
}

// OptimizeDAGProbed is OptimizeDAG with a live progress probe: the search
// emits frames (nodes expanded vs budget, incumbent trajectory, pruned
// subtrees) from its sequential commit points, so the frame stream is
// bit-identical for every worker count. A nil probe costs one pointer check.
func OptimizeDAGProbed(ctx context.Context, d *graph.DAG, p *platform.Platform, nodeBudget, workers int, probe *obs.Probe) (*cpsolve.Result, error) {
	return cpsolve.SolveContext(ctx, d, p, cpsolve.Options{NodeBudget: nodeBudget, Beam: 3, Workers: workers, Probe: probe})
}

// RunExperiment regenerates one paper artifact by ID (see
// experiments.Registry for the catalogue). The context is threaded into the
// experiment's sweeps and CP searches through cfg.
func RunExperiment(ctx context.Context, id string, cfg experiments.Config) (string, error) {
	r, err := experiments.Find(id)
	if err != nil {
		return "", err
	}
	cfg.Context = ctx
	text, _, err := r.Run(cfg)
	return text, err
}
