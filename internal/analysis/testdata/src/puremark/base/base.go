// Package base is the shared half of the puremark fixture: task types, a
// pure helper, an impure helper, and an interface whose implementations the
// ext package dispatches through across the package boundary.
package base

type Task struct {
	ID   int
	prio map[int]int
}

// Score is pure: reads only.
func Score(t *Task) int { return t.ID * 2 }

// WorstScore iterates a map — seed-dependent order, so any marker claim
// reaching it transitively is unprovable.
func WorstScore(t *Task) int {
	worst := 0
	for _, v := range t.prio {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Estimator is dispatched through an interface from the ext package; CHA
// must widen the call to both implementations below.
type Estimator interface {
	Estimate(t *Task) int
}

// CleanEstimator's method is pure.
type CleanEstimator struct{}

func (CleanEstimator) Estimate(t *Task) int { return t.ID }

// DirtyEstimator's method ranges a map.
type DirtyEstimator struct{ hits map[int]int }

func (d DirtyEstimator) Estimate(t *Task) int {
	total := 0
	for _, v := range d.hits {
		total += v
	}
	return total
}
