// Command chollint is the multichecker for this repository's
// domain-specific static analyzers (internal/analysis): determinism,
// hot-path allocation, and plumbing invariants that the golden-digest and
// benchmark suites otherwise catch only after the fact.
//
// Two modes:
//
//	chollint [-analyzers a,b] [packages]   # standalone, default ./...
//	go vet -vettool=$(pwd)/bin/chollint ./...   # vet driver (cached by go)
//
// In vet mode chollint speaks the cmd/go unitchecker protocol: it is
// invoked once per package with a JSON *.cfg file describing sources and
// export data, prints findings as file:line:col messages, and exits
// non-zero when any invariant is violated. Both modes resolve imports from
// compiler export data, so no network or GOPATH installation is needed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	// cmd/go probes the tool before using it as a vettool: -V=full must
	// print a stable build identity, -flags the supported analyzer flags.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			printVersion()
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitcheck(os.Args[1]))
		}
	}

	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line (file, line, analyzer, message, escape hint)")
	timing := flag.Bool("time", false, "report load/analysis wall-clock to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: chollint [flags] [package patterns]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	t0 := time.Now()
	pkgs, err := load.Packages(patterns)
	if err != nil {
		fatal(err)
	}
	tLoad := time.Since(t0)

	// Standalone mode analyzes all matched packages as one whole program:
	// the interprocedural analyzers see cross-package call chains from
	// source instead of falling back to the optimistic external tables.
	t1 := time.Now()
	units := make([]*analysis.PackageUnit, 0, len(pkgs))
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset // load.Packages shares one FileSet across targets
		units = append(units, &analysis.PackageUnit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info})
	}
	var diags []analysis.Diagnostic
	if len(units) > 0 {
		diags, err = analysis.RunProgram(analyzers, analysis.NewProgram(fset, units))
		if err != nil {
			fatal(err)
		}
	}
	tRun := time.Since(t1)
	if *timing {
		fmt.Fprintf(os.Stderr, "chollint: loaded %d packages in %v, analyzed in %v (total %v)\n",
			len(pkgs), tLoad.Round(time.Millisecond), tRun.Round(time.Millisecond), (tLoad + tRun).Round(time.Millisecond))
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chollint:", err)
	os.Exit(2)
}

// printVersion emits the `name version ...` line cmd/go hashes into its
// cache key, in the exact shape x/tools' analysis driver uses (cmd/go
// special-cases the "devel" form and consumes the buildID).
func printVersion() {
	name := filepath.Base(os.Args[0])
	name = strings.TrimSuffix(name, ".exe")
	data, err := os.ReadFile(os.Args[0])
	if err != nil {
		fmt.Printf("%s version devel\n", name)
		return
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, string(sum[:]))
}

// vetConfig is the cmd/go unitchecker handshake file (one per package).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chollint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "chollint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file regardless; chollint's analyzers are
	// package-local, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "chollint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	imp := load.Importer(fset, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := load.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "chollint:", err)
		return 1
	}
	diags, err := analysis.Run(analysis.All(), pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chollint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
