package analysis_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// TestRegistryMarkerDrift pins the three-way agreement the replay engine
// depends on, for every registered scheduler family:
//
//	runtime claim (IsSeedInvariant/IsPureAssign)
//	  == static claim (puremark's constant-body reading of the marker)
//	  ⇒ statically proven
//	  ⇒ (for SeedInvariant) digest-equal across seeds on a real simulation.
//
// A scheduler added with a marker claim puremark cannot prove — or whose
// runtime behavior drifts from the claim — fails here before replay's
// seed-collapse or delta-resume optimizations can silently corrupt results.
func TestRegistryMarkerDrift(t *testing.T) {
	pkgs, err := load.Packages([]string{"repro/internal/..."})
	if err != nil {
		t.Fatalf("loading repro/internal/...: %v", err)
	}
	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.PackageUnit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}
	prog := analysis.NewProgram(pkgs[0].Fset, units)
	verdicts := map[string]analysis.MarkerVerdict{}
	for _, v := range prog.MarkerVerdicts() {
		verdicts[v.Type] = v
	}

	// One constructor per registered family, parameterized members at their
	// canonical settings.
	mks := []func() sched.Scheduler{
		sched.NewRandom,
		sched.NewGreedy,
		sched.NewDMDA,
		sched.NewDMDAS,
		sched.NewDMDAR,
		sched.NewDMDANoComm,
		sched.NewDMDASAvgPrio,
		func() sched.Scheduler { return sched.NewPartition(0.5) },
		func() sched.Scheduler { return sched.NewTriangleTRSM(6) },
		func() sched.Scheduler { return sched.NewDMDAWithHints("gemm-syrk-gpu", sched.GemmSyrkOnGPU()) },
	}

	d := graph.Cholesky(6)
	p := platform.Mirage()
	for _, mk := range mks {
		s := mk()
		typeName := strings.TrimPrefix(fmt.Sprintf("%T", s), "*")
		claimSI, claimPA := sched.IsSeedInvariant(s), sched.IsPureAssign(s)

		v, ok := verdicts[typeName]
		if !ok {
			if claimSI || claimPA {
				t.Errorf("%s (%s): claims markers at runtime but puremark sees no claim", s.Name(), typeName)
			}
			continue
		}
		if v.ClaimsSeedInvariant != claimSI {
			t.Errorf("%s (%s): runtime SeedInvariant=%v but static claim=%v (marker body not a constant?)",
				s.Name(), typeName, claimSI, v.ClaimsSeedInvariant)
		}
		if v.ClaimsPureAssign != claimPA {
			t.Errorf("%s (%s): runtime PureAssign=%v but static claim=%v (marker body not a constant?)",
				s.Name(), typeName, claimPA, v.ClaimsPureAssign)
		}
		if claimSI && !v.ProvenSeedInvariant {
			t.Errorf("%s (%s): claims SeedInvariant but puremark cannot prove it: %s", s.Name(), typeName, v.SeedWhy)
		}
		if claimPA && !v.ProvenPureAssign {
			t.Errorf("%s (%s): claims PureAssign but puremark cannot prove it: %s", s.Name(), typeName, v.PureWhy)
		}

		// Runtime half of the SeedInvariant contract: the full decision
		// digest must not move across seeds. Fresh instance per run —
		// schedulers are stateful.
		digest := func(seed int64) uint64 {
			r, err := simulator.Run(d, p, mk(), simulator.Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			return replay.Digest(r)
		}
		d1, d2 := digest(1), digest(2)
		if claimSI && d1 != d2 {
			t.Errorf("%s (%s): claims SeedInvariant but digests differ across seeds: %#x != %#x",
				s.Name(), typeName, d1, d2)
		}
		if s.Name() == "random" && d1 == d2 {
			t.Errorf("random: digests coincide across seeds 1,2; the runtime check has lost its teeth")
		}
	}
}
