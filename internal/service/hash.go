package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/platform"
)

// platformFingerprint hashes the full timing model — classes, per-kernel
// times, memory caps, bus, tile size, overhead — so cache keys depend on
// what a platform *is*, not what it is called: two names resolving to the
// same model share cache entries, and a re-registered name with different
// timings cannot serve stale results.
func platformFingerprint(p *platform.Platform) string {
	h := sha256.New()
	fmt.Fprintf(h, "tile=%g|bus=%v/%g/%g|oh=%g/%g/%v",
		p.TileBytes, p.Bus.Enabled, p.Bus.BandwidthBps, p.Bus.LatencySec,
		p.Overhead.PerTaskSec, p.Overhead.JitterFrac, p.Overhead.JitterActive)
	for _, c := range p.Classes {
		fmt.Fprintf(h, "|%s/%d/%g", c.Name, c.Count, c.MemoryBytes)
		for k := graph.Kind(0); k < graph.NumKinds; k++ {
			if t, ok := c.Times[k]; ok {
				fmt.Fprintf(h, ",%d=%g", k, t)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// requestKey builds the canonical cache key for one evaluation request:
// the endpoint, the platform fingerprint, and every option that changes the
// result, joined in a fixed order and hashed.
func requestKey(endpoint string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s", endpoint, strings.Join(parts, "|"))
	return endpoint + ":" + hex.EncodeToString(h.Sum(nil))[:24]
}
