// Package bounds computes the paper's makespan lower bounds (Section III)
// for a task DAG on a heterogeneous platform:
//
//   - the *area bound*: an LP over the per-resource-type task counts n_rt,
//     ignoring dependencies — every task must run somewhere, and each
//     resource class must finish its share within the makespan;
//   - the *mixed bound*: the area bound strengthened by the Cholesky
//     critical-path constraint (the chain of all p POTRFs, p−1 TRSMs and
//     p−1 SYRKs must execute sequentially);
//   - the *critical-path bound*: longest DAG path with per-task fastest
//     execution times;
//   - the *GEMM peak*: aggregate GEMM throughput of the machine, the
//     classical upper bound on performance the paper improves upon.
//
// Lower bounds on time are upper bounds on GFLOP/s; both views are exposed.
package bounds

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/lp"
	"repro/internal/platform"
)

// Result is a makespan lower bound together with the LP witness (when one
// exists): Assignment[r][t] is the number of tasks of kind t placed on
// resource class r by the optimal LP/ILP solution.
type Result struct {
	Name        string
	MakespanSec float64
	Assignment  map[int]map[graph.Kind]float64
}

// GFlops converts the bound into the corresponding performance upper bound
// for an algorithm with the given total flop count.
func (r Result) GFlops(flops float64) float64 {
	return platform.GFlops(flops, r.MakespanSec)
}

// buildAreaLP constructs the area-bound linear program. Variable layout:
// n_rt for each class r and kind t (row-major), then the makespan l last.
func buildAreaLP(d *graph.DAG, p *platform.Platform) (*lp.Problem, []graph.Kind, int) {
	kinds := d.Kinds()
	counts := d.CountByKind()
	R := len(p.Classes)
	T := len(kinds)
	nv := R*T + 1
	lVar := R * T

	c := make([]float64, nv)
	c[lVar] = 1
	prob := lp.NewProblem(c)

	v := func(r, t int) int { return r*T + t }

	// Each kind fully assigned; unrunnable or empty classes pinned to zero.
	for ti, k := range kinds {
		row := make([]float64, nv)
		for r := 0; r < R; r++ {
			if p.Classes[r].Count > 0 && p.Classes[r].CanRun(k) {
				row[v(r, ti)] = 1
			} else {
				zero := make([]float64, nv)
				zero[v(r, ti)] = 1
				prob.AddConstraint(zero, lp.EQ, 0)
			}
		}
		prob.AddConstraint(row, lp.EQ, float64(counts[k]))
	}
	// Work per class fits in l × M_r.
	for r := 0; r < R; r++ {
		if p.Classes[r].Count == 0 {
			continue
		}
		row := make([]float64, nv)
		for ti, k := range kinds {
			if p.Classes[r].CanRun(k) {
				row[v(r, ti)] = p.Time(r, k)
			}
		}
		row[lVar] = -float64(p.Classes[r].Count)
		prob.AddConstraint(row, lp.LE, 0)
	}
	return prob, kinds, lVar
}

func solveBound(name string, prob *lp.Problem, kinds []graph.Kind, lVar int,
	p *platform.Platform, integer bool) (Result, error) {

	var sol *lp.Solution
	if integer {
		ints := make([]int, 0, lVar)
		for i := 0; i < lVar; i++ {
			ints = append(ints, i)
		}
		// The ILP is usually tiny, but on highly degenerate instances (e.g.
		// the uniform-speedup "related" platform, where the class rows are
		// proportional) branch and bound can wander across an equal-objective
		// plateau. The LP relaxation is itself a valid lower bound and is
		// within ~1e−3 relative of the integral value on those instances, so
		// on budget exhaustion we soundly fall back to it.
		s, err := lp.SolveInteger(prob, ints, 2000)
		if err != nil {
			sol = lp.Solve(prob)
			name += "(relaxed)"
		} else {
			sol = s
		}
	} else {
		sol = lp.Solve(prob)
	}
	if sol.Status != lp.Optimal {
		return Result{}, fmt.Errorf("bounds: %s LP is %v", name, sol.Status)
	}
	T := len(kinds)
	asg := map[int]map[graph.Kind]float64{}
	for r := 0; r*T < lVar; r++ {
		asg[r] = map[graph.Kind]float64{}
		for ti, k := range kinds {
			asg[r][k] = sol.X[r*T+ti]
		}
	}
	return Result{Name: name, MakespanSec: sol.X[lVar], Assignment: asg}, nil
}

// Area computes the area bound as an LP relaxation (a valid lower bound; the
// integral version is Tighter but the relaxation is what can be solved "on
// the fly" in a runtime — both are provided).
func Area(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	return solveBound("area", prob, kinds, lVar, p, false)
}

// AreaInt computes the area bound with integral task counts (the paper's
// n_rt ∈ ℕ formulation).
func AreaInt(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	return solveBound("area-int", prob, kinds, lVar, p, true)
}

// chainSpec describes the mandatory diagonal chain of a factorization: the
// DAG contains a path visiting every Diagonal-kind task, with Companions
// (one of each kind) between consecutive diagonal tasks. For Cholesky this
// is the paper's POTRF → TRSM → SYRK → POTRF chain; LU and QR have the
// analogous GETRF → TRSM → GEMM and GEQRT → TSQRT → TSMQR chains.
type chainSpec struct {
	Diagonal   graph.Kind
	Companions []graph.Kind
}

var chainSpecs = map[string]chainSpec{
	"cholesky": {graph.POTRF, []graph.Kind{graph.TRSM, graph.SYRK}},
	"lu":       {graph.GETRF, []graph.Kind{graph.TRSM, graph.GEMM}},
	"qr":       {graph.GEQRT, []graph.Kind{graph.TSQRT, graph.TSMQR}},
}

// addDiagonalChain appends the mixed-bound constraint: the diagonal chain —
// every diagonal-kind task, plus p−1 of each companion kind at their fastest
// times — is a path of the DAG, so its sequential length bounds the
// makespan. For Cholesky:
//
//	Σ_r n_rP·T_rP + (p−1)·T*_TRSM + (p−1)·T*_SYRK ≤ l
func addDiagonalChain(prob *lp.Problem, d *graph.DAG, p *platform.Platform,
	kinds []graph.Kind, lVar int) error {

	spec, ok := chainSpecs[d.Algorithm]
	if !ok {
		return fmt.Errorf("bounds: no diagonal-chain spec for algorithm %q; use Area instead", d.Algorithm)
	}
	ti := -1
	for i, k := range kinds {
		if k == spec.Diagonal {
			ti = i
		}
	}
	if ti == -1 {
		return fmt.Errorf("bounds: DAG has no %v tasks; cannot apply the %s chain", spec.Diagonal, d.Algorithm)
	}
	T := len(kinds)
	row := make([]float64, lVar+1)
	for r := range p.Classes {
		if p.Classes[r].CanRun(spec.Diagonal) {
			row[r*T+ti] = p.Time(r, spec.Diagonal)
		}
	}
	row[lVar] = -1
	fixed := 0.0
	if d.P > 1 {
		for _, c := range spec.Companions {
			fixed += float64(d.P-1) * p.FastestTime(c)
		}
	}
	prob.AddConstraint(row, lp.LE, -fixed)
	return nil
}

// Mixed computes the paper's mixed bound (LP relaxation).
func Mixed(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	if err := addDiagonalChain(prob, d, p, kinds, lVar); err != nil {
		return Result{}, err
	}
	r, err := solveBound("mixed", prob, kinds, lVar, p, false)
	return r, err
}

// MixedInt computes the mixed bound with integral task counts — the tightest
// bound of the paper, used in every comparison figure.
func MixedInt(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	if err := addDiagonalChain(prob, d, p, kinds, lVar); err != nil {
		return Result{}, err
	}
	r, err := solveBound("mixed-int", prob, kinds, lVar, p, true)
	return r, err
}

// CriticalPath computes the critical-path bound: the longest DAG path where
// each task is weighted by its fastest execution time over the platform.
func CriticalPath(d *graph.DAG, p *platform.Platform) (Result, error) {
	cp, _, err := d.CriticalPath(func(t *graph.Task) float64 {
		return p.FastestTime(t.Kind)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "critical-path", MakespanSec: cp}, nil
}

// GemmPeak computes the classical GEMM-peak bound for an algorithm with the
// given flop total: makespan ≥ flops / (aggregate GEMM throughput).
func GemmPeak(flops float64, p *platform.Platform, nb int) Result {
	peak := p.GemmPeakGFlops(kernels.GemmFlops(nb)) * 1e9 // flops/s
	return Result{Name: "gemm-peak", MakespanSec: flops / peak}
}

// All is the bundle of the four bounds of Figure 2 for one matrix size.
type All struct {
	P            int // tile count
	CriticalPath Result
	Area         Result
	Mixed        Result
	GemmPeak     Result
}

// Compute evaluates all four bounds for a Cholesky DAG of p tiles with tile
// size nb on the platform. Mixed and Area use the integral formulation.
func Compute(p int, nb int, pf *platform.Platform) (All, error) {
	d := graph.Cholesky(p)
	cp, err := CriticalPath(d, pf)
	if err != nil {
		return All{}, err
	}
	area, err := AreaInt(d, pf)
	if err != nil {
		return All{}, err
	}
	mixed, err := MixedInt(d, pf)
	if err != nil {
		return All{}, err
	}
	gp := GemmPeak(kernels.CholeskyFlops(p*nb), pf, nb)
	return All{P: p, CriticalPath: cp, Area: area, Mixed: mixed, GemmPeak: gp}, nil
}

// Best returns the tightest (largest) makespan lower bound of the bundle.
func (a All) Best() float64 {
	return math.Max(math.Max(a.CriticalPath.MakespanSec, a.Area.MakespanSec),
		math.Max(a.Mixed.MakespanSec, a.GemmPeak.MakespanSec))
}
