package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current behaviour")

// The golden files pin the byte-exact exporter output for the fixed P=8
// dmda run on Mirage. They fail on any observable change to the simulator's
// schedule, the recorder's event stream, or the exporters' encoding —
// regenerate consciously with -update (mirroring internal/check).

func goldenRun(t *testing.T) (*graph.DAG, *simulator.Result, *obs.Recorder, *Gantt) {
	t.Helper()
	p := platform.Mirage()
	d := graph.Cholesky(8)
	rec := obs.NewRecorder()
	r, err := simulator.Run(d, p, sched.NewDMDA(), simulator.Options{Seed: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return d, r, rec, FromSimulation(d, p.Workers(), labels(p), r)
}

func checkGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(data))
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(golden, data) {
		t.Fatalf("%s differs from golden output — simulator or exporter behaviour changed", path)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	_, _, _, g := goldenRun(t)
	data, err := g.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/chrome_p8_dmda.golden.json", data)
}

func TestChromeTraceWithDecisionsGolden(t *testing.T) {
	d, r, rec, g := goldenRun(t)
	data, err := g.ChromeTraceWithDecisions(d, r, rec)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/chrome_decisions_p8_dmda.golden.json", data)

	// The decorated trace must stay loadable by the plain parser: decision
	// instants, flow arrows and link lanes are skipped, execution spans kept.
	back, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(g.Spans) {
		t.Fatalf("parsed %d spans from decorated trace, want %d", len(back.Spans), len(g.Spans))
	}
}

func TestPajeGolden(t *testing.T) {
	_, _, _, g := goldenRun(t)
	checkGolden(t, "testdata/paje_p8_dmda.golden.trace", []byte(g.Paje()))
}
