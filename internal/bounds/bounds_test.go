package bounds

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
)

func TestAreaBoundHomogeneousIsWorkOverM(t *testing.T) {
	// On a homogeneous platform the area bound is total work / m.
	p := platform.Homogeneous(9)
	for _, n := range []int{2, 4, 8} {
		d := graph.Cholesky(n)
		want := d.TotalWeight(func(tk *graph.Task) float64 { return p.Time(0, tk.Kind) }) / 9
		r, err := Area(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.MakespanSec-want) > 1e-6*want {
			t.Fatalf("n=%d: area %g, want %g", n, r.MakespanSec, want)
		}
	}
}

func TestMixedAtLeastArea(t *testing.T) {
	p := platform.Mirage()
	for _, n := range []int{2, 4, 8, 12, 16} {
		d := graph.Cholesky(n)
		a, err := Area(d, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Mixed(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if m.MakespanSec < a.MakespanSec-1e-9 {
			t.Fatalf("n=%d: mixed %g < area %g", n, m.MakespanSec, a.MakespanSec)
		}
	}
}

func TestIntAtLeastRelaxation(t *testing.T) {
	p := platform.Mirage()
	for _, n := range []int{2, 4, 8} {
		d := graph.Cholesky(n)
		a, _ := Area(d, p)
		ai, err := AreaInt(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if ai.MakespanSec < a.MakespanSec-1e-9 {
			t.Fatalf("n=%d: int area below relaxation", n)
		}
		m, _ := Mixed(d, p)
		mi, err := MixedInt(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if mi.MakespanSec < m.MakespanSec-1e-9 {
			t.Fatalf("n=%d: int mixed below relaxation", n)
		}
	}
}

func TestAssignmentCoversAllTasks(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	r, err := AreaInt(d, p)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.CountByKind()
	for _, k := range graph.CholeskyKinds {
		sum := 0.0
		for cls := range r.Assignment {
			sum += r.Assignment[cls][k]
		}
		if math.Abs(sum-float64(counts[k])) > 1e-6 {
			t.Fatalf("%v: assigned %g, want %d", k, sum, counts[k])
		}
	}
}

func TestMixedBoundPOTRFNotAllOnCPU(t *testing.T) {
	// The paper: the plain area bound puts all POTRFs on CPUs (they are
	// relatively cheap there); the chain constraint makes that unattractive
	// for small matrices since POTRFs then serialize into the makespan.
	p := platform.Mirage()
	d := graph.Cholesky(4)
	a, _ := AreaInt(d, p)
	if a.Assignment[0][graph.POTRF] != 4 {
		t.Fatalf("area bound should place all POTRFs on CPU, got %v", a.Assignment[0])
	}
}

func TestCriticalPathBoundSmallN(t *testing.T) {
	// For p=1 the DAG is one POTRF: bound = fastest POTRF time.
	p := platform.Mirage()
	d := graph.Cholesky(1)
	r, err := CriticalPath(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.MakespanSec-p.FastestTime(graph.POTRF)) > 1e-12 {
		t.Fatalf("cp bound %g", r.MakespanSec)
	}
}

func TestCriticalPathFormula(t *testing.T) {
	// Chain = p·POTRF* + (p−1)·(TRSM* + SYRK*) at fastest times; for Mirage
	// the DAG critical path equals exactly this chain.
	p := platform.Mirage()
	for _, n := range []int{2, 5, 10} {
		d := graph.Cholesky(n)
		r, err := CriticalPath(d, p)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n)*p.FastestTime(graph.POTRF) +
			float64(n-1)*(p.FastestTime(graph.TRSM)+p.FastestTime(graph.SYRK))
		if math.Abs(r.MakespanSec-want) > 1e-9 {
			t.Fatalf("n=%d: cp %g, want %g", n, r.MakespanSec, want)
		}
	}
}

func TestGemmPeakBound(t *testing.T) {
	p := platform.Mirage()
	flops := kernels.CholeskyFlops(16 * platform.TileNB)
	r := GemmPeak(flops, p, platform.TileNB)
	if g := r.GFlops(flops); math.Abs(g-960) > 1 {
		t.Fatalf("GEMM peak bound = %g GFLOP/s, want ≈960", g)
	}
}

func TestFigure2Shape(t *testing.T) {
	// The mixed bound is the tightest upper bound on performance: for every
	// size, perf(mixed) ≤ perf(area) ≤ perf(GEMM peak), and at small n the
	// critical path also binds tighter than GEMM peak.
	p := platform.Mirage()
	for _, n := range []int{2, 4, 8, 16, 24} {
		all, err := Compute(n, platform.TileNB, p)
		if err != nil {
			t.Fatal(err)
		}
		flops := kernels.CholeskyFlops(n * platform.TileNB)
		mg, ag, gg := all.Mixed.GFlops(flops), all.Area.GFlops(flops), all.GemmPeak.GFlops(flops)
		if mg > ag+1e-6 {
			t.Fatalf("n=%d: mixed perf %g above area %g", n, mg, ag)
		}
		if ag > gg+1e-6 {
			t.Fatalf("n=%d: area perf %g above GEMM peak %g", n, ag, gg)
		}
	}
	// At n=2 the critical path dominates (lowest GFLOP/s bound).
	all, _ := Compute(2, platform.TileNB, p)
	flops := kernels.CholeskyFlops(2 * platform.TileNB)
	if all.CriticalPath.GFlops(flops) > all.Area.GFlops(flops) {
		t.Fatal("at n=2 critical path should bind tighter than area")
	}
	// At n=32 the bounds approach GEMM peak: mixed within 20 %.
	all32, err := Compute(32, platform.TileNB, p)
	if err != nil {
		t.Fatal(err)
	}
	f32 := kernels.CholeskyFlops(32 * platform.TileNB)
	if all32.Mixed.GFlops(f32) < 0.8*all32.GemmPeak.GFlops(f32) {
		t.Fatalf("n=32: mixed %g too far below GEMM peak %g",
			all32.Mixed.GFlops(f32), all32.GemmPeak.GFlops(f32))
	}
}

func TestBestIsMax(t *testing.T) {
	all := All{
		CriticalPath: Result{MakespanSec: 1},
		Area:         Result{MakespanSec: 3},
		Mixed:        Result{MakespanSec: 4},
		GemmPeak:     Result{MakespanSec: 2},
	}
	if all.Best() != 4 {
		t.Fatalf("Best = %g", all.Best())
	}
}

func TestMixedRejectsUnknownAlgorithmAndIncapablePlatform(t *testing.T) {
	// A DAG with no chain spec is rejected.
	d := graph.Cholesky(3)
	d.Algorithm = "mystery"
	if _, err := Mixed(d, platform.Mirage()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	// A platform without QR kernel timings cannot bound a QR DAG.
	if _, err := Mixed(graph.QR(3), platform.Mirage()); err == nil {
		t.Fatal("expected error for QR on plain Mirage")
	}
}

func TestMixedBoundLUAndQR(t *testing.T) {
	// The generalized diagonal-chain bound applies to the extension
	// factorizations on the extended Mirage model and tightens the area
	// bound at small sizes.
	p := platform.MirageExtended()
	for _, d := range []*graph.DAG{graph.LU(4), graph.QR(4)} {
		a, err := AreaInt(d, p)
		if err != nil {
			t.Fatalf("%s area: %v", d.Algorithm, err)
		}
		m, err := MixedInt(d, p)
		if err != nil {
			t.Fatalf("%s mixed: %v", d.Algorithm, err)
		}
		if m.MakespanSec < a.MakespanSec-1e-12 {
			t.Fatalf("%s: mixed %g below area %g", d.Algorithm, m.MakespanSec, a.MakespanSec)
		}
		if m.MakespanSec < a.MakespanSec*1.01 {
			t.Fatalf("%s: chain constraint did not tighten the bound at n=4", d.Algorithm)
		}
		// The chain itself is a DAG path, so the critical-path bound is at
		// least the chain's fastest-time length; mixed ≥ that chain too.
		cp, err := CriticalPath(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if cp.MakespanSec <= 0 {
			t.Fatal("empty critical path")
		}
	}
}

func TestMixedBoundLUSoundAgainstCriticalPath(t *testing.T) {
	// Both are lower bounds; neither may exceed a simulated makespan. This
	// is covered end to end in the simulator tests; here check internal
	// consistency: mixed ≥ the chain portion it encodes.
	p := platform.MirageExtended()
	d := graph.LU(6)
	m, err := MixedInt(d, p)
	if err != nil {
		t.Fatal(err)
	}
	chain := 6*p.FastestTime(graph.GETRF) +
		5*(p.FastestTime(graph.TRSM)+p.FastestTime(graph.GEMM))
	if m.MakespanSec < chain-1e-9 {
		t.Fatalf("mixed %g below its own chain %g", m.MakespanSec, chain)
	}
}

func TestAreaWorksForLU(t *testing.T) {
	// The area bound is DAG-generic; give the platform GETRF timing first.
	p := platform.Mirage()
	p.Classes[0].Times[graph.GETRF] = p.Classes[0].Times[graph.POTRF] * 2
	p.Classes[1].Times[graph.GETRF] = p.Classes[1].Times[graph.POTRF]
	d := graph.LU(4)
	r, err := Area(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanSec <= 0 {
		t.Fatal("non-positive LU area bound")
	}
}

func TestAreaUnrunnableClassPinnedToZero(t *testing.T) {
	// GPUs cannot run GETRF here: all GETRF work must land on CPUs.
	p := platform.Mirage()
	p.Classes[0].Times[graph.GETRF] = 0.05
	d := graph.LU(3)
	r, err := AreaInt(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment[1][graph.GETRF] != 0 {
		t.Fatalf("GETRF assigned to GPU: %v", r.Assignment[1])
	}
	if r.Assignment[0][graph.GETRF] != 3 {
		t.Fatalf("GETRF on CPU = %g, want 3", r.Assignment[0][graph.GETRF])
	}
}

func TestMixedDominatesAtSmallSizes(t *testing.T) {
	// Figure 2's message: the mixed bound is strictly tighter than the area
	// bound for small matrices on Mirage.
	p := platform.Mirage()
	d := graph.Cholesky(4)
	a, _ := AreaInt(d, p)
	m, _ := MixedInt(d, p)
	if !(m.MakespanSec > a.MakespanSec*1.01) {
		t.Fatalf("mixed %g not strictly tighter than area %g at n=4",
			m.MakespanSec, a.MakespanSec)
	}
}

func TestComputeAllSizesQuick(t *testing.T) {
	p := platform.Mirage()
	prevMixed := math.Inf(1)
	for n := 2; n <= 12; n += 2 {
		all, err := Compute(n, platform.TileNB, p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		flops := kernels.CholeskyFlops(n * platform.TileNB)
		// Performance bounds grow with matrix size (more parallelism).
		g := all.Mixed.GFlops(flops)
		if n > 2 && g < 0 {
			t.Fatal("negative bound")
		}
		_ = prevMixed
		prevMixed = g
	}
}
