package kernels

import "repro/internal/matrix"

// Vector kernels of the triangular-solve pipeline (§II-A of the paper:
// "The solution vector x can then be computed by solving the two following
// triangular systems: Ly = b and LTx = y").

// Trsv solves L·x = b in place on a vector chunk (x aliases b): forward
// substitution against the lower triangle of l.
func Trsv(l *matrix.Tile, x []float64) {
	nb := l.NB
	d := l.Data
	for i := 0; i < nb; i++ {
		s := x[i]
		row := d[i*nb : i*nb+i]
		for j, lv := range row {
			s -= lv * x[j]
		}
		x[i] = s / d[i*nb+i]
	}
}

// TrsvT solves Lᵀ·x = b in place on a vector chunk: backward substitution.
func TrsvT(l *matrix.Tile, x []float64) {
	nb := l.NB
	d := l.Data
	for i := nb - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < nb; j++ {
			s -= d[j*nb+i] * x[j]
		}
		x[i] = s / d[i*nb+i]
	}
}

// Gemv computes y ← y − A·x on full-tile chunks.
func Gemv(a *matrix.Tile, x, y []float64) {
	nb := a.NB
	d := a.Data
	for i := 0; i < nb; i++ {
		s := 0.0
		row := d[i*nb : (i+1)*nb]
		for j, av := range row {
			s += av * x[j]
		}
		y[i] -= s
	}
}

// GemvT computes y ← y − Aᵀ·x on full-tile chunks.
func GemvT(a *matrix.Tile, x, y []float64) {
	nb := a.NB
	d := a.Data
	for j := 0; j < nb; j++ {
		xv := x[j]
		if xv == 0 {
			continue
		}
		row := d[j*nb : (j+1)*nb]
		for i, av := range row {
			y[i] -= av * xv
		}
	}
}

// TrsvFlops returns the flop count of a triangular solve on an nb chunk: nb².
func TrsvFlops(nb int) float64 { n := float64(nb); return n * n }

// GemvFlops returns the flop count of the chunk update: 2·nb².
func GemvFlops(nb int) float64 { n := float64(nb); return 2 * n * n }
