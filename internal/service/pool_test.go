package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsWork(t *testing.T) {
	p := NewPool(2, 4)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() error { n.Add(1); return nil }); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 4 {
		t.Fatalf("ran %d, want 4", n.Load())
	}
	if p.Active() != 0 || p.QueueDepth() != 0 {
		t.Fatalf("pool not drained: active=%d queued=%d", p.Active(), p.QueueDepth())
	}
}

// TestPoolShedsWhenQueueFull fills the single slot and the whole queue, then
// verifies the next request is rejected immediately with ErrQueueFull rather
// than waiting.
func TestPoolShedsWhenQueueFull(t *testing.T) {
	p := NewPool(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() error { close(started); <-block; return nil })
	<-started
	// Fill the queue with waiters (the slot holder above also counts toward
	// the queued gauge only while waiting, so give the waiters time to park).
	for i := 0; i < 2; i++ {
		go p.Do(context.Background(), func() error { return nil })
	}
	deadline := time.Now().Add(time.Second)
	for p.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := p.Do(context.Background(), func() error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestPoolHonoursContextWhileQueued: a caller whose context expires while
// waiting for a slot returns promptly and releases its queue position.
func TestPoolHonoursContextWhileQueued(t *testing.T) {
	p := NewPool(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() error { close(started); <-block; return nil })
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Do(ctx, func() error { t.Error("fn must not run after ctx expiry"); return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("queued caller took %v to notice expiry", el)
	}
	if p.QueueDepth() != 0 {
		t.Fatalf("expired caller left queue depth %d", p.QueueDepth())
	}
	close(block)

	// The slot must be reclaimable afterwards.
	if err := p.Do(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("slot not reclaimed: %v", err)
	}
}

// TestPoolConcurrencyBound asserts no more than `workers` functions ever
// execute at once under a storm of submissions (run with -race).
func TestPoolConcurrencyBound(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func() error {
				c := cur.Add(1)
				for {
					pk := peak.Load()
					if c <= pk || peak.CompareAndSwap(pk, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if pk := peak.Load(); pk > workers {
		t.Fatalf("observed %d concurrent executions, bound is %d", pk, workers)
	}
}
