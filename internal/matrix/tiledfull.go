package matrix

import "fmt"

// TiledFull is a full (square, not triangular) tiled matrix view: P×P tiles
// of nb×nb elements. It backs the LU and QR factorizations of the
// "other dense factorizations" extension, which touch tiles on both sides
// of the diagonal.
type TiledFull struct {
	P  int
	NB int
	T  [][]*Tile // T[i][j], all j
}

// NewTiledFull allocates a zero full-tiled matrix.
func NewTiledFull(p, nb int) *TiledFull {
	t := &TiledFull{P: p, NB: nb, T: make([][]*Tile, p)}
	for i := 0; i < p; i++ {
		t.T[i] = make([]*Tile, p)
		for j := 0; j < p; j++ {
			t.T[i][j] = NewTile(nb)
		}
	}
	return t
}

// Tile returns tile (i, j).
func (t *TiledFull) Tile(i, j int) *Tile { return t.T[i][j] }

// N returns the full dimension P·NB.
func (t *TiledFull) N() int { return t.P * t.NB }

// Clone returns a deep copy.
func (t *TiledFull) Clone() *TiledFull {
	c := NewTiledFull(t.P, t.NB)
	for i := 0; i < t.P; i++ {
		for j := 0; j < t.P; j++ {
			copy(c.T[i][j].Data, t.T[i][j].Data)
		}
	}
	return c
}

// FromDenseFull tiles a dense square matrix; the dimension must be divisible
// by nb.
func FromDenseFull(a *Dense, nb int) (*TiledFull, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("matrix: tile size %d must be positive", nb)
	}
	if a.N%nb != 0 {
		return nil, fmt.Errorf("matrix: dimension %d not divisible by tile size %d", a.N, nb)
	}
	p := a.N / nb
	t := NewTiledFull(p, nb)
	for bi := 0; bi < p; bi++ {
		for bj := 0; bj < p; bj++ {
			tile := t.T[bi][bj]
			for i := 0; i < nb; i++ {
				row := a.Data[(bi*nb+i)*a.N+bj*nb:]
				copy(tile.Data[i*nb:(i+1)*nb], row[:nb])
			}
		}
	}
	return t, nil
}

// ToDense expands the tiled matrix back to dense form.
func (t *TiledFull) ToDense() *Dense {
	n := t.N()
	a := NewDense(n)
	for bi := 0; bi < t.P; bi++ {
		for bj := 0; bj < t.P; bj++ {
			tile := t.T[bi][bj]
			for i := 0; i < t.NB; i++ {
				copy(a.Data[(bi*t.NB+i)*n+bj*t.NB:(bi*t.NB+i)*n+(bj+1)*t.NB],
					tile.Data[i*t.NB:(i+1)*t.NB])
			}
		}
	}
	return a
}

// DiagDominant returns a random diagonally dominant matrix (safe for LU
// without pivoting) with a deterministic seed.
func DiagDominant(n int, seed int64) *Dense {
	a := RandSymmetric(n, seed) // reuse the generator; symmetry is irrelevant here
	b := RandSymmetric(n, seed+1)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			v := a.At(i, j) + 0.5*b.At(j, i)
			a.Set(i, j, v)
			if i != j {
				row += abs(v)
			}
		}
		a.Set(i, i, row+1)
	}
	return a
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
