package analysis

import (
	"encoding/json"
	"io"
)

// JSONDiagnostic is the machine-readable form of one finding, emitted by
// `chollint -json` as exactly one JSON object per line so CI can annotate
// PRs with a line-oriented reader (jq, grep, GitHub workflow commands).
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Escape is the //chollint:<word> directive that would suppress this
	// finding on its line, empty when the analyzer has no escape hatch.
	Escape string `json:"escape,omitempty"`
}

// EscapeHint returns the full suppression directive for an analyzer name,
// or "" when the analyzer is unknown or has no escape hatch.
func EscapeHint(analyzer string) string {
	for _, a := range All() {
		if a.Name == analyzer && a.Suppress != "" {
			return "//chollint:" + a.Suppress
		}
	}
	return ""
}

// WriteJSON renders diagnostics one JSON object per line in input order.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w) // Encode appends exactly one '\n' per value
	for _, d := range diags {
		jd := JSONDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Escape:   EscapeHint(d.Analyzer),
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
