package graph

import "testing"

// TestCholeskySplitDegenerate pins the fromK = p (and factor = 1) cases to
// the uniform right-looking builder: same task multiset and dependencies,
// with Task.NB pinned to the coarse size instead of 0.
func TestCholeskySplitDegenerate(t *testing.T) {
	for _, tc := range []struct{ fromK, factor int }{{4, 2}, {0, 1}, {2, 1}} {
		d := CholeskySplit(4, tc.fromK, tc.factor, 960)
		u := Cholesky(4)
		if len(d.Tasks) != len(u.Tasks) {
			t.Fatalf("fromK=%d factor=%d: %d tasks, uniform has %d",
				tc.fromK, tc.factor, len(d.Tasks), len(u.Tasks))
		}
		for i, task := range d.Tasks {
			ut := u.Tasks[i]
			if task.Kind != ut.Kind || task.I != ut.I || task.J != ut.J || task.K != ut.K {
				t.Fatalf("task %d: got %v (%d,%d,%d), uniform %v (%d,%d,%d)",
					i, task.Kind, task.I, task.J, task.K, ut.Kind, ut.I, ut.J, ut.K)
			}
			if task.NB != 960 {
				t.Fatalf("task %d: NB = %d, want 960", i, task.NB)
			}
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCholeskySplitStructure(t *testing.T) {
	const p, fromK, factor, nb = 4, 2, 2, 960
	d := CholeskySplit(p, fromK, factor, nb)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	counts := d.CountByKind()

	// Coarse panels k < fromK plus a fine m×m Cholesky, m = (p−fromK)·factor.
	m := (p - fromK) * factor
	wantPOTRF := fromK + m
	if counts[POTRF] != wantPOTRF {
		t.Fatalf("POTRF count %d, want %d", counts[POTRF], wantPOTRF)
	}
	// One SPLIT and one MERGE per trailing lower-triangular coarse tile.
	trailing := 0
	for i := fromK; i < p; i++ {
		trailing += i - fromK + 1
	}
	if counts[SPLIT] != trailing || counts[MERGE] != trailing {
		t.Fatalf("SPLIT=%d MERGE=%d, want %d each", counts[SPLIT], counts[MERGE], trailing)
	}

	nbs := d.NBs()
	if len(nbs) != 2 || nbs[0] != nb/factor || nbs[1] != nb {
		t.Fatalf("NBs() = %v, want [%d %d]", nbs, nb/factor, nb)
	}

	fineNB := nb / factor
	for _, task := range d.Tasks {
		switch {
		case task.Kind.IsConversion():
			if task.NB != nb {
				t.Fatalf("%s: conversion NB = %d, want coarse %d", task.Name(), task.NB, nb)
			}
		case task.K >= 0 && task.K < fromK && !task.Kind.IsConversion():
			if task.NB != nb {
				t.Fatalf("%s: coarse task NB = %d, want %d", task.Name(), task.NB, nb)
			}
		}
		if task.NB != nb && task.NB != fineNB {
			t.Fatalf("%s: NB = %d, want %d or %d", task.Name(), task.NB, nb, fineNB)
		}
	}

	// Fine tiles are registered in TileNB at offset coordinates ≥ p.
	for gi := p; gi < p+m; gi++ {
		for gj := p; gj <= gi; gj++ {
			if got := d.TileSize(gi, gj); got != fineNB {
				t.Fatalf("TileSize(%d,%d) = %d, want %d", gi, gj, got, fineNB)
			}
		}
	}
	if d.TileSize(0, 0) != 0 {
		t.Fatalf("coarse tile reports size %d, want 0 (reference)", d.TileSize(0, 0))
	}

	// Every SPLIT must precede every fine kernel that reads its subtiles, and
	// every MERGE must come after; spot-check via topological levels is
	// subsumed by Validate + the sequential-consistency builder, so here we
	// only require that conversions are never sources or sinks of the DAG in
	// the wrong direction: a SPLIT has successors, a MERGE has predecessors.
	for _, task := range d.Tasks {
		if task.Kind == SPLIT && len(task.Succ) == 0 {
			t.Fatalf("%s has no successors", task.Name())
		}
		if task.Kind == MERGE && len(task.Pred) == 0 {
			t.Fatalf("%s has no predecessors", task.Name())
		}
	}
}

func TestCholeskySplitPanics(t *testing.T) {
	for _, tc := range []struct{ p, fromK, factor, nb int }{
		{0, 0, 2, 960},  // no tiles
		{4, 5, 2, 960},  // fromK beyond p
		{4, -1, 2, 960}, // negative fromK
		{4, 2, 0, 960},  // factor < 1
		{4, 2, 7, 960},  // factor does not divide nb
		{4, 2, 2, 0},    // nb not positive
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CholeskySplit(%d,%d,%d,%d) did not panic", tc.p, tc.fromK, tc.factor, tc.nb)
				}
			}()
			CholeskySplit(tc.p, tc.fromK, tc.factor, tc.nb)
		}()
	}
}
