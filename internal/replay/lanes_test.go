package replay_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// laneSeeds returns the 32-seed batch the lane contract is stated over.
func laneSeeds() []int64 {
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i*7 + 1) // non-contiguous: no accidental draw overlap
	}
	return seeds
}

// TestLanesBitIdentical is the lane-executor contract: for every registered
// platform × a scheduler set covering all marker combinations × 32 seeds,
// the event-level batched path produces digest-identical Results to looping
// the serial simulator. Overhead is on so the mirage-family platforms
// exercise the jitter-lane regime (every seed genuinely distinct); the
// jitter-free platforms exercise the grouping collapse. Run under -race this
// also proves the shared-scheduler and shared-Prep lanes are data-race-free.
func TestLanesBitIdentical(t *testing.T) {
	platforms := []string{"mirage", "mirage-nocomm", "mirage-extended", "homogeneous:8", "related:10"}
	// dmdas: SeedInvariant+PureAssign (shared instance, merge, resume);
	// dmdar: seed-invariant but impure Assign (fresh instances, no merge);
	// random: neither (no grouping at all, the PR7 conservatism);
	// greedy: shareable with a trivial priority model.
	schedulers := []string{"dmdas", "dmdar", "random", "greedy"}
	seeds := laneSeeds()
	d := graph.Cholesky(6)
	for _, pname := range platforms {
		p, err := core.NewPlatform(pname)
		if err != nil {
			t.Fatalf("platform %s: %v", pname, err)
		}
		for _, sname := range schedulers {
			for _, workers := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/%s/w%d", pname, sname, workers), func(t *testing.T) {
					t.Parallel()
					mk := func() sched.Scheduler {
						s, err := core.NewScheduler(sname)
						if err != nil {
							t.Fatalf("scheduler %s: %v", sname, err)
						}
						return s
					}
					opt := simulator.Options{Overhead: true}
					want := make([]uint64, len(seeds))
					for i, seed := range seeds {
						o := opt
						o.Seed = seed
						r, err := simulator.Run(d, p, mk(), o)
						if err != nil {
							t.Fatalf("serial seed %d: %v", seed, err)
						}
						want[i] = replay.Digest(r)
					}
					got, err := replay.Lanes(context.Background(), d, p, mk, seeds, opt, workers, nil)
					if err != nil {
						t.Fatalf("lanes: %v", err)
					}
					if len(got) != len(seeds) {
						t.Fatalf("lanes returned %d results for %d seeds", len(got), len(seeds))
					}
					for i, r := range got {
						if dg := replay.Digest(r); dg != want[i] {
							t.Errorf("seed %d: lane digest %016x, serial %016x", seeds[i], dg, want[i])
						}
					}
				})
			}
		}
	}
}

// TestLanesForceSplitMerges pins the mid-run merge machinery: with grouping
// disabled, provably identical lanes (jitter off, seed-invariant scheduler)
// must re-merge at the first digest boundary instead of simulating N times,
// and every Result must still match serial.
func TestLanesForceSplitMerges(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	seeds := laneSeeds()
	lo := replay.LaneOptions{ForceSplit: true, MergeStride: 8}
	got, stats, err := replay.LanesProbed(context.Background(), d, p, mk, seeds, simulator.Options{}, 1, nil, nil, lo)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simulator.Run(d, p, mk(), simulator.Options{Seed: seeds[0]})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if replay.Digest(r) != replay.Digest(want) {
			t.Errorf("seed %d: merged lane digest differs from serial", seeds[i])
		}
	}
	if stats.Merged == 0 {
		t.Fatalf("identical force-split lanes never merged: %+v", stats)
	}
	if stats.Merged != len(seeds)-stats.Simulated-stats.Resumed {
		t.Errorf("merge accounting off: %+v", stats)
	}
}

// TestLanesMergedResultsIndependent: mid-run merged lanes are answered with
// clones — mutating one must not leak into its representative.
func TestLanesMergedResultsIndependent(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	lo := replay.LaneOptions{ForceSplit: true, MergeStride: 4}
	got, stats, err := replay.LanesProbed(context.Background(), d, p, mk, []int64{1, 2, 3}, simulator.Options{}, 1, nil, nil, lo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged == 0 {
		t.Skipf("no merge fired at stride 4: %+v", stats)
	}
	got[2].MakespanSec = -1
	got[2].Start[0] = -1
	if replay.Digest(got[0]) != replay.Digest(got[1]) {
		t.Fatal("mutating a merged lane's Result leaked into another lane")
	}
}

// TestLanesProbeFrames checks the per-lane telemetry: a fine-cadence probe
// on a jitter batch sees SourceLanes frames whose Done is monotone and whose
// final frame covers the whole batch.
func TestLanesProbeFrames(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	seeds := laneSeeds()
	var frames []obs.Frame
	probe := obs.NewProbe(1, func(f obs.Frame) { frames = append(frames, f.Clone()) })
	_, stats, err := replay.LanesProbed(context.Background(), d, p, mk, seeds, simulator.Options{Overhead: true}, 1, nil, probe, replay.LaneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Simulated == 0 {
		t.Fatalf("jitter batch simulated nothing: %+v", stats)
	}
	if len(frames) == 0 {
		t.Fatal("no lane frames emitted")
	}
	var prev int64 = -1
	for _, f := range frames {
		if f.Source != obs.SourceLanes {
			t.Fatalf("frame source %q, want %q", f.Source, obs.SourceLanes)
		}
		if f.Done < prev {
			t.Fatalf("lane frame Done went backwards: %d after %d", f.Done, prev)
		}
		prev = f.Done
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Done != int64(len(seeds)) || last.Total != int64(len(seeds)) {
		t.Fatalf("final frame %+v, want Final with Done=Total=%d", last, len(seeds))
	}
}

// TestLanesRecorderFallsBackToRunLevel: a per-run Recorder forces the
// run-level path (each seed must genuinely simulate and record its own
// events), reported as Lanes==Simulated with no lane mechanisms fired.
func TestLanesRecorderFallsBackToRunLevel(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	rec := obs.NewRecorder()
	opt := simulator.Options{Recorder: rec}
	got, stats, err := replay.LanesProbed(context.Background(), d, p, mk, []int64{1}, opt, 1, nil, nil, replay.LaneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || stats.Simulated != 1 || stats.Merged+stats.Resumed+stats.Cloned != 0 {
		t.Fatalf("recorder batch took the lane path: %+v", stats)
	}
	if len(rec.Decisions) != len(d.Tasks) {
		t.Fatalf("recorder captured %d decisions, want %d", len(rec.Decisions), len(d.Tasks))
	}
}

// TestLanesCancellation: a cancelled context aborts the batch with an error
// and leaves the pool reusable for a subsequent bit-identical batch.
func TestLanesCancellation(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	seeds := laneSeeds()
	pool := &replay.Pool{}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := replay.Lanes(cancelled, d, p, mk, seeds, simulator.Options{Overhead: true}, 2, pool); err == nil {
		t.Fatal("pre-cancelled lane batch succeeded")
	}
	got, err := replay.Lanes(context.Background(), d, p, mk, seeds, simulator.Options{Overhead: true}, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		want, err := simulator.Run(d, p, mk(), simulator.Options{Seed: seed, Overhead: true})
		if err != nil {
			t.Fatal(err)
		}
		if replay.Digest(got[i]) != replay.Digest(want) {
			t.Errorf("seed %d after cancelled batch: digest mismatch", seed)
		}
	}
}
