package matrix

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewDenseZero(t *testing.T) {
	m := NewDense(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("expected zero at (%d,%d), got %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1)
}

func TestSetAt(t *testing.T) {
	m := NewDense(3)
	m.Set(1, 2, 5.5)
	if got := m.At(1, 2); got != 5.5 {
		t.Fatalf("At(1,2) = %g, want 5.5", got)
	}
	if got := m.At(2, 1); got != 0 {
		t.Fatalf("At(2,1) = %g, want 0 (Set must not be symmetric)", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := RandSPD(5, 1)
	c := m.Clone()
	c.Set(0, 0, -99)
	if m.At(0, 0) == -99 {
		t.Fatal("Clone shares storage with original")
	}
	if !m.Equal(m.Clone(), 0) {
		t.Fatal("Clone not equal to original")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewDense(2).Equal(NewDense(3), 1) {
		t.Fatal("matrices of different sizes reported equal")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := RandSymmetric(6, seed)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	a := RandSPD(7, 3)
	i := Identity(7)
	if !a.Mul(i).Equal(a, 1e-12) || !i.Mul(a).Equal(a, 1e-12) {
		t.Fatal("A·I or I·A differs from A")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandSymmetric(4, seed)
		b := RandSymmetric(4, seed+1)
		c := RandSymmetric(4, seed+2)
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		return l.Equal(r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSubSelfIsZero(t *testing.T) {
	a := RandSPD(5, 9)
	z := a.Sub(a)
	if z.FrobeniusNorm() != 0 {
		t.Fatal("A−A is not zero")
	}
}

func TestFrobeniusNormKnown(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 4)
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("‖m‖_F = %g, want 5", got)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 1, -7)
	m.Set(1, 0, 3)
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g, want 7", got)
	}
}

func TestLowerTimesTransposeMatchesFullProduct(t *testing.T) {
	// Build an explicit lower-triangular L; check L·Lᵀ via the general Mul.
	l := NewDense(5)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			l.Set(i, j, float64(i+j+1))
		}
	}
	want := l.Mul(l.Transpose())
	got := l.LowerTimesTranspose()
	if !got.Equal(want, 1e-12) {
		t.Fatal("LowerTimesTranspose differs from explicit L·Lᵀ")
	}
}

func TestLowerTimesTransposeIgnoresUpper(t *testing.T) {
	l := NewDense(3)
	l.Set(0, 0, 1)
	l.Set(1, 0, 2)
	l.Set(1, 1, 3)
	l.Set(2, 2, 1)
	withGarbage := l.Clone()
	withGarbage.Set(0, 2, 123)
	withGarbage.Set(0, 1, -5)
	if !l.LowerTimesTranspose().Equal(withGarbage.LowerTimesTranspose(), 0) {
		t.Fatal("strict upper triangle affected LowerTimesTranspose")
	}
}

func TestReferenceCholeskyCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		a := RandSPD(n, int64(n))
		l := a.Clone()
		if err := ReferenceCholesky(l); err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		if res := CholeskyResidual(a, l); res > 1e-12 {
			t.Fatalf("n=%d: residual %g too large", n, res)
		}
	}
}

func TestReferenceCholeskyZeroesUpper(t *testing.T) {
	a := RandSPD(6, 42)
	l := a.Clone()
	if err := ReferenceCholesky(l); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("upper entry (%d,%d) = %g, want 0", i, j, l.At(i, j))
			}
		}
	}
}

func TestReferenceCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	err := ReferenceCholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestReferenceCholeskyKnown2x2(t *testing.T) {
	// A = [[4, 2], [2, 5]] ⇒ L = [[2, 0], [1, 2]].
	a := NewDense(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	if err := ReferenceCholesky(a); err != nil {
		t.Fatal(err)
	}
	want := [4]float64{2, 0, 1, 2}
	for i, w := range want {
		if math.Abs(a.Data[i]-w) > 1e-15 {
			t.Fatalf("L[%d] = %g, want %g", i, a.Data[i], w)
		}
	}
}

func TestCholeskyResidualPropertySPD(t *testing.T) {
	f := func(seed int64) bool {
		a := RandSPD(10, seed)
		l := a.Clone()
		if err := ReferenceCholesky(l); err != nil {
			return false
		}
		return CholeskyResidual(a, l) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplacian2DIsSPD(t *testing.T) {
	a := Laplacian2D(5)
	l := a.Clone()
	if err := ReferenceCholesky(l); err != nil {
		t.Fatalf("Laplacian should be SPD: %v", err)
	}
	if res := CholeskyResidual(a, l); res > 1e-13 {
		t.Fatalf("Laplacian residual %g too large", res)
	}
}

func TestLaplacian2DSymmetric(t *testing.T) {
	a := Laplacian2D(4)
	if !a.Equal(a.Transpose(), 0) {
		t.Fatal("Laplacian2D is not symmetric")
	}
}

func TestHilbertSPDSmall(t *testing.T) {
	a := Hilbert(6)
	l := a.Clone()
	if err := ReferenceCholesky(l); err != nil {
		t.Fatalf("Hilbert(6) should factor: %v", err)
	}
}

func TestRandSPDDeterministic(t *testing.T) {
	if !RandSPD(8, 7).Equal(RandSPD(8, 7), 0) {
		t.Fatal("RandSPD not deterministic for equal seeds")
	}
	if RandSPD(8, 7).Equal(RandSPD(8, 8), 0) {
		t.Fatal("RandSPD identical across different seeds")
	}
}

func TestIdentityResidualZero(t *testing.T) {
	a := Identity(5)
	l := a.Clone()
	if err := ReferenceCholesky(l); err != nil {
		t.Fatal(err)
	}
	if !l.Equal(Identity(5), 0) {
		t.Fatal("Cholesky of I is not I")
	}
}

func TestBandedSPDFactorsAndRespectBand(t *testing.T) {
	for _, band := range []int{1, 4, 16} {
		a := BandedSPD(48, band, 7)
		// Band respected.
		for i := 0; i < 48; i++ {
			for j := 0; j < 48; j++ {
				d := i - j
				if d < 0 {
					d = -d
				}
				if d > band && a.At(i, j) != 0 {
					t.Fatalf("band=%d: nonzero at (%d,%d)", band, i, j)
				}
			}
		}
		// Symmetric and SPD.
		if !a.Equal(a.Transpose(), 1e-12) {
			t.Fatalf("band=%d: not symmetric", band)
		}
		l := a.Clone()
		if err := ReferenceCholesky(l); err != nil {
			t.Fatalf("band=%d: %v", band, err)
		}
		if res := CholeskyResidual(a, l); res > 1e-12 {
			t.Fatalf("band=%d: residual %g", band, res)
		}
	}
}
