package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow catches context-plumbing gaps: a function that already has a
// context.Context in scope (a ctx parameter, or an *http.Request whose
// Context method is the handler idiom) must thread it to its callees, not
// mint a fresh root with context.Background()/context.TODO(). A fresh root
// silently detaches the callee from cancellation — exactly the pre-PR-1 bug
// where HTTP deadlines never reached the simulator event loop, so a hung
// sweep outlived its request.
//
// Deliberate detachment (a shutdown routine that must outlive the request
// that triggered it) is annotated //chollint:ctx.
var Ctxflow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "forbids context.Background/TODO where a live context is in scope",
	Suppress: "ctx",
	Run:      runCtxflow,
}

var ctxRootFuncs = map[string]bool{"Background": true, "TODO": true}

func runCtxflow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			src := contextSource(pass, fd.Type)
			if src == "" {
				continue
			}
			checkCtxBody(pass, fd.Name.Name, src, fd.Body)
		}
	}
	return nil
}

// checkCtxBody walks a function body (including nested literals, which
// capture the enclosing context) flagging fresh context roots.
func checkCtxBody(pass *Pass, fname, src string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := isPkgFunc(pass.TypesInfo, call, "context", ctxRootFuncs); ok {
			pass.Reportf(call.Pos(),
				"context.%s in %s, which already has %s in scope: pass it (or a context derived from it) so cancellation propagates",
				name, fname, src)
		}
		return true
	})
}

// contextSource returns a description of the live context available to a
// function with this signature, or "" if none: a non-blank context.Context
// parameter, or an *http.Request parameter (r.Context()).
func contextSource(pass *Pass, ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, f := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if isNamedType(t, "context", "Context") {
			if name := paramName(f); name != "" {
				return name
			}
		}
		if p, ok := t.(*types.Pointer); ok && isNamedType(p.Elem(), "net/http", "Request") {
			if name := paramName(f); name != "" {
				return name + ".Context()"
			}
		}
	}
	return ""
}

func paramName(f *ast.Field) string {
	for _, n := range f.Names {
		if n.Name != "_" {
			return n.Name
		}
	}
	return ""
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
