package check

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current behaviour")

const certGoldenPath = "testdata/certificate_p8.golden.json"

// TestCertificateJSONRoundTrip re-verifies a certificate after a JSON
// round-trip: serialization must lose nothing the verifier depends on.
func TestCertificateJSONRoundTrip(t *testing.T) {
	c, d, p := certify(t, 8)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, back) {
		t.Fatalf("certificate changed across JSON round-trip")
	}
	if err := back.Verify(d, p); err != nil {
		t.Fatalf("round-tripped certificate fails verification: %v", err)
	}
}

// TestCertificateGolden pins the byte-exact P=8 certificate. The document
// embeds the full schedule and the recomputed bounds, so this fails on any
// observable change to the simulator, the bound solvers, or the JSON
// encoding — regenerate consciously with -update.
func TestCertificateGolden(t *testing.T) {
	c, d, p := certify(t, 8)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(certGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(certGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", certGoldenPath, len(data))
		return
	}
	golden, err := os.ReadFile(certGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimRight(golden, "\n"), data) {
		t.Fatalf("P=8 certificate differs from golden file — simulator or bounds behaviour changed")
	}
	back, err := Unmarshal(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(d, p); err != nil {
		t.Fatalf("golden certificate fails verification: %v", err)
	}
}
