package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detranged flags `range` over a map inside the deterministic core. Go
// randomizes map iteration order per run, so any map-range whose body is
// order-sensitive makes schedules, bounds, or error selection differ
// between two runs of the same seed — exactly what the golden-digest tests
// exist to forbid, caught here at vet time instead.
//
// A loop body is accepted without annotation when it is provably
// order-insensitive:
//
//   - it only collects keys into a slice for later sorting
//     (`ks = append(ks, k)` — the sortedKeys idiom);
//   - it only writes through the key (`other[k] = v`, `delete(other, k)`):
//     map keys are distinct, so per-key effects commute;
//   - it only accumulates with commutative integer ops (`n++`, `n += v`,
//     bitwise or/and/xor) — float accumulation is NOT exempt, because
//     float addition does not associate and the rounding would depend on
//     iteration order;
//   - it only tracks an extremum (`if best < v { best = v }`) or sets a
//     flag to a constant.
//
// Anything else needs sorted-key iteration or an explicit
// `//chollint:ordered` escape with a justification.
var Detranged = &Analyzer{
	Name:     "detranged",
	Doc:      "forbids order-sensitive map iteration in the deterministic core",
	Suppress: "ordered",
	Run:      runDetranged,
}

func runDetranged(pass *Pass) error {
	if !isDeterministicCore(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s in deterministic-core package %s: iteration order is randomized per run; iterate sorted keys, or annotate //chollint:ordered with a justification",
				render(pass.Fset, rs.X), pass.Pkg.Name())
			return true
		})
	}
	return nil
}

// orderInsensitiveBody reports whether every statement of the range body is
// one of the recognized commuting forms described on Detranged.
func orderInsensitiveBody(pass *Pass, rs *ast.RangeStmt) bool {
	key, _ := rs.Key.(*ast.Ident)
	for _, s := range rs.Body.List {
		if !commutingStmt(pass, s, key) {
			return false
		}
	}
	return true
}

func commutingStmt(pass *Pass, s ast.Stmt, key *ast.Ident) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return commutingAssign(pass, s, key)
	case *ast.IncDecStmt:
		// x++ adds the same constant once per element: the final value is
		// independent of visit order for every numeric type.
		return isNumeric(pass, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// delete(other, anything): deletions of a key set commute.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			return false
		}
		if isExtremumUpdate(pass, s) {
			return true
		}
		for _, b := range s.Body.List {
			if !commutingStmt(pass, b, key) {
				return false
			}
		}
		switch e := s.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, b := range e.List {
				if !commutingStmt(pass, b, key) {
					return false
				}
			}
		case *ast.IfStmt:
			return commutingStmt(pass, e, key)
		default:
			return false
		}
		return true
	case *ast.BlockStmt:
		for _, b := range s.List {
			if !commutingStmt(pass, b, key) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func commutingAssign(pass *Pass, s *ast.AssignStmt, key *ast.Ident) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// ks = append(ks, k): the collect-keys idiom (sorted afterwards).
		if call, ok := rhs.(*ast.CallExpr); ok && isAppendToSelf(pass, lhs, call) {
			if len(call.Args) == 2 && key != nil && isIdent(call.Args[1], key) {
				return true
			}
			return false
		}
		// other[k] = v: per-key writes commute (map keys are distinct).
		if idx, ok := lhs.(*ast.IndexExpr); ok && key != nil && isIdent(idx.Index, key) {
			return true
		}
		// flag = <constant>: idempotent, commutes.
		if pass.TypesInfo.Types[rhs].Value != nil || isBoolLit(rhs) {
			return true
		}
		return false
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// other[k] op= v commutes per-key regardless of element type.
		if idx, ok := lhs.(*ast.IndexExpr); ok && key != nil && isIdent(idx.Index, key) {
			return true
		}
		// Scalar accumulation commutes only over integers: float rounding
		// depends on summation order.
		return isInteger(pass, lhs)
	}
	return false
}

// isExtremumUpdate matches `if x < e { x = e }` (any strict/loose ordering):
// a max/min fold, order-insensitive even for floats.
func isExtremumUpdate(pass *Pass, s *ast.IfStmt) bool {
	cmp, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	asg, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	x := render(pass.Fset, asg.Lhs[0])
	e := render(pass.Fset, asg.Rhs[0])
	cx := render(pass.Fset, cmp.X)
	cy := render(pass.Fset, cmp.Y)
	return (cx == x && cy == e) || (cx == e && cy == x)
}

func isAppendToSelf(pass *Pass, lhs ast.Expr, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	return len(call.Args) >= 1 && render(pass.Fset, call.Args[0]) == render(pass.Fset, lhs)
}

func isIdent(e ast.Expr, id *ast.Ident) bool {
	x, ok := ast.Unparen(e).(*ast.Ident)
	return ok && x.Name == id.Name
}

func isBoolLit(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (id.Name == "true" || id.Name == "false")
}

func isNumeric(pass *Pass, e ast.Expr) bool {
	b, ok := pass.TypesInfo.TypeOf(e).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isInteger(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
