package replay

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// TestLanesLazySplitResumes drives the snapshot-resume path directly: two
// lanes whose jitter rows agree on every draw except the batch's
// latest-starting task must lazily split — the follower resumes from a late
// snapshot of the representative instead of simulating from scratch — and
// its Result must still be bit-identical to a scratch run of the same row.
func TestLanesLazySplitResumes(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	opt := simulator.Options{Overhead: true}

	// Find the task that starts last under the base row's schedule: the
	// follower diverges only there, so its reusable prefix is maximal.
	baseSerial, err := simulator.Run(d, p, mk(), simulator.Options{Seed: 1, Overhead: true})
	if err != nil {
		t.Fatal(err)
	}
	lastID := 0
	for id := range baseSerial.Start {
		if baseSerial.Start[id] > baseSerial.Start[lastID] {
			lastID = id
		}
	}

	n := len(d.Tasks)
	baseRow := make([]float64, n)
	simulator.JitterRow(1, baseRow)
	followRow := append([]float64(nil), baseRow...)
	followRow[lastID] = -followRow[lastID]
	if followRow[lastID] == 0 { //chollint:floateq guard a zero draw, which negation would not change
		followRow[lastID] = 0.5
	}

	specs := []laneSpec{
		{seed: 1, mk: mk, row: baseRow},
		{seed: 2, mk: mk, row: followRow},
	}
	run := func(lo LaneOptions) ([]*simulator.Result, *LaneStats) {
		t.Helper()
		sc := make([]laneSpec, len(specs))
		copy(sc, specs)
		stats := &LaneStats{}
		res, err := runLanes(context.Background(), pp, opt, sc, 1, &Pool{}, lo, nil, stats)
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}

	gotResume, statsResume := run(LaneOptions{})
	gotScratch, statsScratch := run(LaneOptions{NoResume: true, MergeStride: -1})
	if statsResume.Resumed == 0 {
		t.Fatalf("near-identical rows never resumed: %+v", statsResume)
	}
	if statsScratch.Resumed != 0 {
		t.Fatalf("NoResume run resumed anyway: %+v", statsScratch)
	}
	for i := range specs {
		if Digest(gotResume[i]) != Digest(gotScratch[i]) {
			t.Errorf("lane %d: resumed digest %016x, scratch %016x", i, Digest(gotResume[i]), Digest(gotScratch[i]))
		}
	}
	// The follower's schedule genuinely differs from the base's (the
	// perturbed draw is consumed), so resume did not just clone the base.
	if Digest(gotResume[0]) == Digest(gotResume[1]) {
		t.Fatal("perturbed follower produced the base schedule — the divergent draw was never consumed")
	}
}

// TestLanesRootDisagreementSkipsSnapshots: when no follower agrees with the
// representative on the root draws (the genuine-jitter regime), the
// lazy-split pre-pass must not run at all — no snapshot overhead, no
// resumes.
func TestLanesRootDisagreementSkipsSnapshots(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	specs := make([]laneSpec, 4)
	n := len(d.Tasks)
	for i := range specs {
		row := make([]float64, n)
		simulator.JitterRow(int64(i+1), row)
		specs[i] = laneSpec{seed: int64(i + 1), mk: mk, row: row}
	}
	stats := &LaneStats{}
	if _, err := runLanes(context.Background(), pp, simulator.Options{Overhead: true}, specs, 1, &Pool{}, LaneOptions{}, nil, stats); err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 {
		t.Fatalf("independent jitter rows resumed from snapshots: %+v", stats)
	}
	if stats.Simulated != len(specs) {
		t.Fatalf("independent jitter rows did not all simulate: %+v", stats)
	}
}

// TestPoolTrimsOversizeArena is the arena-retention regression: an arena
// returned past the high-water cap is released to zero footprint, one under
// the cap keeps its backing for reuse.
func TestPoolTrimsOversizeArena(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	grow := func(pool *Pool) *simulator.Arena {
		t.Helper()
		a := pool.Get()
		if _, err := pp.Run(context.Background(), sched.NewDMDAS(), simulator.Options{}, a); err != nil {
			t.Fatal(err)
		}
		return a
	}

	tiny := &Pool{ArenaCapBytes: 1}
	a := grow(tiny)
	if a.Footprint() == 0 {
		t.Fatal("run left the arena with zero footprint — trim test is vacuous")
	}
	tiny.Put(a)
	if got := tiny.free[0].Footprint(); got != 0 {
		t.Errorf("oversize arena pooled with footprint %d, want 0 (released)", got)
	}

	def := &Pool{}
	a = grow(def)
	def.Put(a)
	if got := def.free[0].Footprint(); got == 0 {
		t.Error("within-cap arena was trimmed — steady-state reuse lost")
	}
}

// TestPoolTrimsOversizeBatch mirrors the arena trim for lane batches.
func TestPoolTrimsOversizeBatch(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	grow := func(pool *Pool) *simulator.LaneBatch {
		lb := pool.GetBatch()
		lb.Bind(pp, 4)
		return lb
	}

	tiny := &Pool{BatchCapBytes: 1}
	lb := grow(tiny)
	if lb.Footprint() == 0 {
		t.Fatal("bound batch has zero footprint — trim test is vacuous")
	}
	tiny.PutBatch(lb)
	if got := tiny.batches[0].Footprint(); got != 0 {
		t.Errorf("oversize batch pooled with footprint %d, want 0 (released)", got)
	}

	def := &Pool{}
	lb = grow(def)
	def.PutBatch(lb)
	if got := def.batches[0].Footprint(); got == 0 {
		t.Error("within-cap batch was trimmed — steady-state reuse lost")
	}
}

// TestPoolSteadyStateAllocs pins the point of pooling: with a warmed pool,
// a run over a recycled arena allocates strictly less than a run over a
// fresh arena, and the default caps never trim the steady-state workload
// (which would silently reintroduce the fresh-arena cost).
func TestPoolSteadyStateAllocs(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := simulator.Options{Overhead: true}
	pool := &Pool{}
	a := pool.Get()
	if _, err := pp.Run(ctx, sched.NewDMDAS(), opt, a); err != nil {
		t.Fatal(err)
	}
	pool.Put(a)

	pooled := testing.AllocsPerRun(10, func() {
		a := pool.Get()
		if _, err := pp.Run(ctx, sched.NewDMDAS(), opt, a); err != nil {
			t.Fatal(err)
		}
		pool.Put(a)
	})
	fresh := testing.AllocsPerRun(10, func() {
		if _, err := pp.Run(ctx, sched.NewDMDAS(), opt, &simulator.Arena{}); err != nil {
			t.Fatal(err)
		}
	})
	if pooled >= fresh {
		t.Errorf("pooled path allocates %.0f/op, fresh %.0f/op — arena reuse lost", pooled, fresh)
	}
	if len(pool.free) != 1 || pool.free[0].Footprint() == 0 {
		t.Error("steady-state arena was trimmed under the default cap")
	}
}
