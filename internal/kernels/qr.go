package kernels

import (
	"math"

	"repro/internal/matrix"
)

// QR tile kernels (flat-tree tiled QR, PLASMA-style) for the "other dense
// factorizations" extension. Householder reflectors are applied vector by
// vector (no compact WY accumulation): slower than LAPACK but numerically
// identical, and the scheduling study consumes only the timing model.
//
// Storage convention after the factorization:
//
//	GEQRT(A_kk):     R on/above the diagonal of A_kk, the V vectors below
//	                 (implicit unit diagonal), τ values in tau.
//	TSQRT(R, A_ik):  updated R in A_kk's upper triangle; the bottom parts of
//	                 the [R; A_ik] reflectors stored in A_ik (full tile),
//	                 τ values in tau.

// householder computes a Householder reflector for the vector (alpha, x):
// H·(alpha, x) = (beta, 0). It returns beta and tau and scales x in place to
// the reflector's tail (the head is an implicit 1). LAPACK dlarfg semantics.
func householder(alpha float64, x []float64) (beta, tau float64) {
	sigma := 0.0
	for _, v := range x {
		sigma += v * v
	}
	if sigma == 0 {
		return alpha, 0 // already triangular; H = I
	}
	mu := math.Sqrt(alpha*alpha + sigma)
	if alpha <= 0 {
		beta = mu
	} else {
		beta = -mu
	}
	tau = (beta - alpha) / beta
	inv := 1 / (alpha - beta)
	for i := range x {
		x[i] *= inv
	}
	return beta, tau
}

// Geqrt factorizes tile a in place: A = Q·R with R stored on/above the
// diagonal and the Householder vectors V below it; tau (length nb) receives
// the reflector scales.
func Geqrt(a *matrix.Tile, tau []float64) {
	nb := a.NB
	d := a.Data
	col := make([]float64, nb)
	for j := 0; j < nb; j++ {
		// Build the reflector from column j, rows j+1..nb−1.
		tail := col[:nb-j-1]
		for i := j + 1; i < nb; i++ {
			tail[i-j-1] = d[i*nb+j]
		}
		beta, t := householder(d[j*nb+j], tail)
		tau[j] = t
		d[j*nb+j] = beta
		for i := j + 1; i < nb; i++ {
			d[i*nb+j] = tail[i-j-1]
		}
		if t == 0 {
			continue
		}
		// Apply H = I − τ·v·vᵀ to the trailing columns.
		for c := j + 1; c < nb; c++ {
			w := d[j*nb+c]
			for i := j + 1; i < nb; i++ {
				w += d[i*nb+j] * d[i*nb+c]
			}
			w *= t
			d[j*nb+c] -= w
			for i := j + 1; i < nb; i++ {
				d[i*nb+c] -= d[i*nb+j] * w
			}
		}
	}
}

// Ormqr applies Qᵀ (from a Geqrt-factorized tile v with scales tau) to tile
// c in place: C ← Qᵀ·C. This is the row update A_kj ← Qᵀ·A_kj.
func Ormqr(v *matrix.Tile, tau []float64, c *matrix.Tile) {
	nb := v.NB
	vd := v.Data
	cd := c.Data
	for j := 0; j < nb; j++ { // H_0 applied first: Qᵀ = H_{nb−1}···H_0
		t := tau[j]
		if t == 0 {
			continue
		}
		for col := 0; col < nb; col++ {
			w := cd[j*nb+col]
			for i := j + 1; i < nb; i++ {
				w += vd[i*nb+j] * cd[i*nb+col]
			}
			w *= t
			cd[j*nb+col] -= w
			for i := j + 1; i < nb; i++ {
				cd[i*nb+col] -= vd[i*nb+j] * w
			}
		}
	}
}

// Tsqrt factorizes the stacked pair [R; B] where r's upper triangle holds
// the current R (its strict lower triangle — earlier V vectors — is left
// untouched) and b is a full tile. The reflector tails are stored in b, the
// updated R stays in r, and tau receives the scales. This is the
// triangle-on-top-of-square QR of the panel.
func Tsqrt(r, b *matrix.Tile, tau []float64) {
	nb := r.NB
	rd := r.Data
	bd := b.Data
	colTail := make([]float64, nb)
	for j := 0; j < nb; j++ {
		for i := 0; i < nb; i++ {
			colTail[i] = bd[i*nb+j]
		}
		beta, t := householder(rd[j*nb+j], colTail)
		tau[j] = t
		rd[j*nb+j] = beta
		for i := 0; i < nb; i++ {
			bd[i*nb+j] = colTail[i]
		}
		if t == 0 {
			continue
		}
		// Apply to the remaining columns of [R; B]. The top part of the
		// reflector is e_j, so w = R[j][c] + Σ_i B[i][j]·B[i][c].
		for c := j + 1; c < nb; c++ {
			w := rd[j*nb+c]
			for i := 0; i < nb; i++ {
				w += bd[i*nb+j] * bd[i*nb+c]
			}
			w *= t
			rd[j*nb+c] -= w
			for i := 0; i < nb; i++ {
				bd[i*nb+c] -= bd[i*nb+j] * w
			}
		}
	}
}

// Tsmqr applies the TSQRT reflectors (tails in v, scales in tau) to the
// stacked pair [ctop; cbot]: the trailing update
// [A_kj; A_ij] ← Qᵀ·[A_kj; A_ij].
func Tsmqr(v *matrix.Tile, tau []float64, ctop, cbot *matrix.Tile) {
	nb := v.NB
	vd := v.Data
	td := ctop.Data
	bd := cbot.Data
	for j := 0; j < nb; j++ {
		t := tau[j]
		if t == 0 {
			continue
		}
		for col := 0; col < nb; col++ {
			w := td[j*nb+col]
			for i := 0; i < nb; i++ {
				w += vd[i*nb+j] * bd[i*nb+col]
			}
			w *= t
			td[j*nb+col] -= w
			for i := 0; i < nb; i++ {
				bd[i*nb+col] -= vd[i*nb+j] * w
			}
		}
	}
}

// QRAux holds the Householder scales of a tiled QR factorization: TauGE[k]
// for GEQRT(k), TauTS[i][k] for TSQRT(i, k). All slices are preallocated so
// concurrent task execution never mutates shared structure.
type QRAux struct {
	P     int
	NB    int
	TauGE [][]float64
	TauTS [][][]float64 // [i][k], nil where unused (i ≤ k)
}

// NewQRAux allocates the scale storage for a p×p tiled QR with tile size nb.
func NewQRAux(p, nb int) *QRAux {
	aux := &QRAux{P: p, NB: nb,
		TauGE: make([][]float64, p),
		TauTS: make([][][]float64, p),
	}
	for k := 0; k < p; k++ {
		aux.TauGE[k] = make([]float64, nb)
	}
	for i := 0; i < p; i++ {
		aux.TauTS[i] = make([][]float64, p)
		for k := 0; k < i; k++ {
			aux.TauTS[i][k] = make([]float64, nb)
		}
	}
	return aux
}

// TiledQR runs the flat-tree tiled QR factorization sequentially: R ends up
// in the upper block triangle of t, the reflectors in the lower blocks and
// aux.
func TiledQR(t *matrix.TiledFull) *QRAux {
	p := t.P
	aux := NewQRAux(p, t.NB)
	for k := 0; k < p; k++ {
		Geqrt(t.Tile(k, k), aux.TauGE[k])
		for j := k + 1; j < p; j++ {
			Ormqr(t.Tile(k, k), aux.TauGE[k], t.Tile(k, j))
		}
		for i := k + 1; i < p; i++ {
			Tsqrt(t.Tile(k, k), t.Tile(i, k), aux.TauTS[i][k])
			for j := k + 1; j < p; j++ {
				Tsmqr(t.Tile(i, k), aux.TauTS[i][k], t.Tile(k, j), t.Tile(i, j))
			}
		}
	}
	return aux
}

// QRFactorR extracts the R factor (upper triangular) from a factorized
// tiled matrix.
func QRFactorR(t *matrix.TiledFull) *matrix.Dense {
	n := t.N()
	d := t.ToDense()
	r := matrix.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, d.At(i, j))
		}
	}
	return r
}

// QRResidual checks a tiled QR factorization without forming Q, using the
// orthogonal invariance ‖RᵀR − AᵀA‖_F / ‖AᵀA‖_F (Q orthogonal ⇒
// AᵀA = RᵀQᵀQR = RᵀR).
func QRResidual(a *matrix.Dense, t *matrix.TiledFull) float64 {
	r := QRFactorR(t)
	rtr := r.Transpose().Mul(r)
	ata := a.Transpose().Mul(a)
	num := rtr.Sub(ata).FrobeniusNorm()
	den := ata.FrobeniusNorm()
	if den == 0 {
		return num
	}
	return num / den
}

// Flop counts for the QR kernels (PLASMA conventions, leading order).

// GeqrtFlops returns the flop count of the tile QR: 4nb³/3.
func GeqrtFlops(nb int) float64 { n := float64(nb); return 4 * n * n * n / 3 }

// OrmqrFlops returns the flop count of applying a tile's Q: 2nb³.
func OrmqrFlops(nb int) float64 { n := float64(nb); return 2 * n * n * n }

// TsqrtFlops returns the flop count of the triangle-on-square QR: 2nb³.
func TsqrtFlops(nb int) float64 { n := float64(nb); return 2 * n * n * n }

// TsmqrFlops returns the flop count of the stacked update: 4nb³.
func TsmqrFlops(nb int) float64 { n := float64(nb); return 4 * n * n * n }

// QRFlops returns the total flop count of an N×N QR factorization: 4N³/3
// (leading order, tall-skinny overhead excluded).
func QRFlops(n int) float64 { x := float64(n); return 4 * x * x * x / 3 }
