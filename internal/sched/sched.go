// Package sched implements the scheduling policies studied in the paper:
//
//   - random  — weighted random worker choice (StarPU's `random`): aware of
//     platform heterogeneity through average acceleration ratios, blind to
//     task heterogeneity and current load;
//   - greedy  — earliest-available-worker (an eager central-queue stand-in);
//   - dmda    — deque model data aware: minimum estimated completion time,
//     including estimated data-transfer time (StarPU's `dmda`);
//   - dmdas   — dmda with per-worker queues sorted by HEFT-like priorities
//     (bottom level under fastest execution times), StarPU's `dmdas`;
//   - dmdar   — dmda with queues reordered by data availability (StarPU's
//     `dmdar`);
//
// plus the paper's *hybrid static/dynamic* layer: hint-constrained variants
// (forcing kernel classes onto resource types, e.g. "TRSMs ≥ k tiles below
// the diagonal run on CPUs"), full static-schedule injection (used with the
// CP solver's solutions), and the partial injections of Section VI-B
// (mapping-only and order-only). Static HEFT (end-append and
// insertion-based) provides offline schedules and the CP warm start.
//
// Schedulers make *push-time* decisions, exactly like StarPU's dm* family:
// when a task becomes ready the scheduler picks a worker queue; workers
// drain their queue in FIFO (dmda) or priority (dmdas) order.
package sched

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/platform"
)

// View is the runtime state a dynamic scheduler may inspect when assigning a
// ready task. It is implemented by the simulator (and by the real runtime
// with wall-clock estimates).
type View interface {
	// Now returns the current simulation/wall time in seconds.
	Now() float64
	// Workers returns the total worker count.
	Workers() int
	// WorkerClass returns the resource class of worker w.
	WorkerClass(w int) int
	// QueueEnd returns the estimated time at which worker w will have
	// drained everything currently assigned to it.
	QueueEnd(w int) float64
	// ExecTime returns the estimated execution time of t on worker w
	// (+Inf if w's class has no implementation).
	ExecTime(w int, t *graph.Task) float64
	// TransferEstimate returns the estimated data-transfer time needed
	// before t could run on worker w, given current data locations.
	TransferEstimate(w int, t *graph.Task) float64
}

// Scheduler is a dynamic scheduling policy.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Init prepares the policy for a run. It is called once before any
	// Assign and may precompute priorities from the DAG and platform.
	Init(d *graph.DAG, p *platform.Platform, seed int64)
	// Assign returns the worker to queue the ready task on.
	Assign(v View, t *graph.Task) int
	// Priority returns the queue-ordering key of t (higher runs first).
	// Only consulted when Ordered() is true.
	Priority(t *graph.Task) float64
	// Ordered reports whether worker queues are drained in priority order
	// rather than FIFO.
	Ordered() bool
}

// ClassRestricter is an optional Scheduler extension exposing the resource
// classes a task may run on, so runtime-level mechanisms (work stealing)
// never migrate a task somewhere the policy forbids. A nil return means any
// class.
type ClassRestricter interface {
	AllowedClasses(t *graph.Task) []int
}

// CostModel is an optional Scheduler extension exposing the shape of the
// policy's completion-time objective, so decision tracing (internal/obs via
// the simulator) records the same terms the policy actually weighed. A
// policy that does not implement it is traced with the full dmda-level
// estimate (transfer included).
type CostModel interface {
	// UsesTransfer reports whether estimated transfer time enters the
	// completion-time objective (the dm* data-aware family) or is ignored
	// (dmda-nocomm).
	UsesTransfer() bool
}

// Gater is an optional Scheduler extension: a scheduler implementing it can
// hold a queued task back even when its worker is idle. Exact static-schedule
// injection uses this to enforce the planned per-worker execution order —
// without it, the runtime would opportunistically run later-planned tasks
// early and silently deviate from the injected schedule.
type Gater interface {
	// MayStart reports whether t may start now, given a completion oracle.
	MayStart(t *graph.Task, completed func(taskID int) bool) bool
}

// AllowFunc restricts the resource classes a task may be assigned to. A nil
// AllowFunc (or a nil return) means all classes are allowed. This is the
// hook through which the paper's static hints are injected into the dynamic
// policies.
//
// AllowFuncs are called from //chol:hotpath Assign under the SeedInvariant/
// PureAssign marker contracts, so they must be pure: no writes to any
// reachable state, no clocks, RNGs, blocking, or nondeterministic map
// iteration. The //chol:pure directive below makes chollint's puremark
// analyzer enforce exactly that at every site where a function value
// becomes an AllowFunc, and lets the interprocedural engine trust calls
// through the type in return.
//
//chol:pure
type AllowFunc func(t *graph.Task) []int

// ---------------------------------------------------------------------------
// dm family: minimum estimated completion time, optionally priority-sorted.

type dm struct {
	name    string
	sorted  bool
	allow   AllowFunc
	useComm bool // include transfer estimates in completion times
	avgPrio bool // bottom levels from average times (classic HEFT) instead of fastest

	prio []float64
}

// NewDMDA returns StarPU's dmda policy (minimum completion time, data aware,
// FIFO queues).
func NewDMDA() Scheduler { return &dm{name: "dmda", sorted: false, useComm: true} }

// NewDMDAS returns StarPU's dmdas policy (dmda + priority-sorted queues).
func NewDMDAS() Scheduler { return &dm{name: "dmdas", sorted: true, useComm: true} }

// NewDMDAWithHints returns dmda restricted by the given class hints.
func NewDMDAWithHints(name string, allow AllowFunc) Scheduler {
	return &dm{name: name, sorted: false, useComm: true, allow: allow}
}

// NewDMDASWithHints returns dmdas restricted by the given class hints.
func NewDMDASWithHints(name string, allow AllowFunc) Scheduler {
	return &dm{name: name, sorted: true, useComm: true, allow: allow}
}

// NewDMDANoComm returns a dmda variant that ignores transfer estimates — the
// ablation quantifying how much data-awareness matters.
func NewDMDANoComm() Scheduler { return &dm{name: "dmda-nocomm", useComm: false} }

// NewDMDASAvgPrio returns dmdas with priorities computed from platform-
// *average* execution times (the original HEFT convention) instead of the
// fastest times the paper uses — the priority-source ablation of DESIGN.md.
func NewDMDASAvgPrio() Scheduler {
	return &dm{name: "dmdas-avgprio", sorted: true, useComm: true, avgPrio: true}
}

func (s *dm) Name() string  { return s.name }
func (s *dm) Ordered() bool { return s.sorted }

// UsesTransfer exposes the data-awareness of the objective (sched.CostModel).
func (s *dm) UsesTransfer() bool { return s.useComm }

func (s *dm) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	if !s.sorted {
		return
	}
	// dmdas priorities: bottom level with the fastest execution time of each
	// task among the resource types (paper, Section V-A); the avgPrio
	// variant uses platform-average times (classic HEFT). Weights go through
	// the size-aware cost model (identical to the fixed-nb times for
	// uniform-tile DAGs, where Task.NB is 0).
	weight := p.FastestTimeNB
	if s.avgPrio {
		weight = p.AverageTimeNB
	}
	bl, err := d.BottomLevels(func(t *graph.Task) float64 {
		return weight(t.Kind, t.NB)
	})
	if err != nil {
		panic(fmt.Sprintf("sched: %v", err))
	}
	s.prio = bl
}

func (s *dm) Priority(t *graph.Task) float64 {
	if s.prio == nil {
		return 0
	}
	return s.prio[t.ID]
}

// AllowedClasses exposes the hint restriction (sched.ClassRestricter).
func (s *dm) AllowedClasses(t *graph.Task) []int {
	if s.allow == nil {
		return nil
	}
	return s.allow(t)
}

// containsClass reports whether class c is in the (at most a few entries
// long) allowed-class list. A linear scan beats building a set: Assign runs
// once per task, and the map it used to build here was the last per-task
// allocation on the hinted schedulers' hot path (caught by hotpathalloc).
func containsClass(classes []int, c int) bool {
	for _, x := range classes {
		if x == c {
			return true
		}
	}
	return false
}

// Assign picks the worker minimizing estimated completion time (the dmda
// rule, paper §V-B).
//
//chol:hotpath one call per task; allocs/op pinned by cmd/cholbench sim/*
func (s *dm) Assign(v View, t *graph.Task) int {
	allowed := s.AllowedClasses(t)
	best, bestECT := -1, math.Inf(1)
	for w := 0; w < v.Workers(); w++ {
		if allowed != nil && !containsClass(allowed, v.WorkerClass(w)) {
			continue
		}
		exec := v.ExecTime(w, t)
		if math.IsInf(exec, 1) {
			continue
		}
		ect := math.Max(v.QueueEnd(w), v.Now()) + exec
		if s.useComm {
			ect += v.TransferEstimate(w, t)
		}
		if ect < bestECT {
			bestECT, best = ect, w
		}
	}
	if best == -1 {
		// Hints excluded every runnable class: fall back to any runnable
		// worker rather than deadlock.
		for w := 0; w < v.Workers(); w++ {
			if !math.IsInf(v.ExecTime(w, t), 1) {
				return w
			}
		}
		panic(fmt.Sprintf("sched: task %s runnable nowhere", t.Name())) //chollint:alloc abort path
	}
	return best
}

// ---------------------------------------------------------------------------
// random: heterogeneity-weighted random assignment.

type randomSched struct {
	weights []float64 // per class
	rng     *rand.Rand
	pf      *platform.Platform
}

// NewRandom returns StarPU's random policy: workers are drawn with
// probability proportional to their class's average acceleration ratio, so
// GPUs receive proportionally more tasks, but neither task affinity nor
// current load is considered.
func NewRandom() Scheduler { return &randomSched{} }

func (s *randomSched) Name() string                   { return "random" }
func (s *randomSched) Ordered() bool                  { return false }
func (s *randomSched) Priority(t *graph.Task) float64 { return 0 }

func (s *randomSched) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	s.pf = p
	s.rng = rand.New(rand.NewSource(seed))
	s.weights = make([]float64, len(p.Classes))
	// Kinds() is sorted, so the weight sums accumulate in a fixed order —
	// map-range order here would make the float rounding (and thus the
	// random draws) differ run to run.
	counts := d.CountByKind()
	kinds := d.Kinds()
	for r := range p.Classes {
		if p.Classes[r].Count == 0 {
			continue
		}
		// Average acceleration ratio of class r relative to class 0,
		// weighted by the DAG's task mix (the paper's K computation).
		num, den := 0.0, 0.0
		for _, kind := range kinds {
			n := counts[kind]
			t0, tr := p.Time(0, kind), p.Time(r, kind)
			if math.IsInf(tr, 1) {
				continue
			}
			if math.IsInf(t0, 1) {
				t0 = tr
			}
			num += float64(n) * (t0 / tr)
			den += float64(n)
		}
		if den > 0 {
			s.weights[r] = num / den
		}
	}
}

func (s *randomSched) Assign(v View, t *graph.Task) int {
	total := 0.0
	for w := 0; w < v.Workers(); w++ {
		if !math.IsInf(v.ExecTime(w, t), 1) {
			total += s.weights[v.WorkerClass(w)]
		}
	}
	x := s.rng.Float64() * total
	for w := 0; w < v.Workers(); w++ {
		if math.IsInf(v.ExecTime(w, t), 1) {
			continue
		}
		x -= s.weights[v.WorkerClass(w)]
		if x <= 0 {
			return w
		}
	}
	// Floating-point remainder: last runnable worker.
	for w := v.Workers() - 1; w >= 0; w-- {
		if !math.IsInf(v.ExecTime(w, t), 1) {
			return w
		}
	}
	panic("sched: no runnable worker")
}

// ---------------------------------------------------------------------------
// greedy: earliest-available worker (load balancing, no data awareness).

type greedy struct{}

// NewGreedy returns a minimum-queue-end policy: like dmda without transfer
// estimates and without task-affinity awareness beyond execution time.
func NewGreedy() Scheduler { return greedy{} }

func (greedy) Name() string                                        { return "greedy" }
func (greedy) Ordered() bool                                       { return false }
func (greedy) Priority(t *graph.Task) float64                      { return 0 }
func (greedy) Init(d *graph.DAG, p *platform.Platform, seed int64) {}

func (greedy) Assign(v View, t *graph.Task) int {
	best, bestEnd := -1, math.Inf(1)
	for w := 0; w < v.Workers(); w++ {
		if math.IsInf(v.ExecTime(w, t), 1) {
			continue
		}
		if end := math.Max(v.QueueEnd(w), v.Now()); end < bestEnd {
			bestEnd, best = end, w
		}
	}
	if best == -1 {
		panic("sched: no runnable worker")
	}
	return best
}

// ---------------------------------------------------------------------------
// dmdar: dmda with queues reordered by data availability (StarPU's dmdar,
// "deque model data aware ready"): among a worker's queued tasks, the ones
// whose inputs are already resident run first, hiding transfer latency.

type dmdar struct {
	dm
	locality map[int]float64 // per task: −(estimated remaining transfer time)
}

// NewDMDAR returns the dmdar policy.
func NewDMDAR() Scheduler {
	return &dmdar{dm: dm{name: "dmdar", sorted: true, useComm: true}, locality: map[int]float64{}}
}

func (s *dmdar) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	s.locality = make(map[int]float64, len(d.Tasks))
}

// Assign delegates to the dm placement, then records the chosen worker's
// data-availability score as the task's queue priority: less outstanding
// transfer ⇒ runs earlier.
func (s *dmdar) Assign(v View, t *graph.Task) int {
	w := s.dm.Assign(v, t)
	s.locality[t.ID] = -v.TransferEstimate(w, t)
	return w
}

func (s *dmdar) Priority(t *graph.Task) float64 { return s.locality[t.ID] }
