// Package replay multiplies sweep throughput by exploiting the simulator's
// determinism. Three mechanisms compose, each bit-identical to the serial
// event loop by construction (they reuse the same loop) and by enforcement
// (the equivalence suite in this package digests every path against
// simulator.RunContext):
//
//   - batched multi-seed replay: jobs sharing a (DAG, platform) share one
//     simulator.Prep — the DAG census, dependency counts and cost tables are
//     derived once per pair instead of once per run. When the scheduler
//     declares seed invariance and the jitter model is off, all seeds of one
//     configuration collapse to a single simulation whose Result is cloned
//     per seed (the decisions genuinely cannot differ);
//   - delta replay (delta.go): sweep jobs differing in one knob resume from
//     a checkpoint of the base run just before the first decision the knob
//     can affect, resimulating only the suffix;
//   - arena reuse: per-run dense state is pooled and recycled across jobs,
//     so a thousand-job sweep allocates per-run state a handful of times.
//
// Correctness contract: replay is valid only if it is digest-identical to
// serial (see Digest); approximate equality is a bug, not a tolerance.
//
// The marker claims this package keys on (sched.SeedInvariant for the
// seed-collapse, sched.PureAssign for delta resumption) are not trusted:
// chollint's puremark analyzer proves each one against interprocedural
// effect summaries of Assign/Priority/Init, and the registry drift test in
// internal/analysis cross-checks the static verdicts against runtime digest
// behavior for every registered scheduler family.
package replay

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/sweep"
)

// Digest folds every observable field of a Result into one FNV-64a value —
// the equality the replay contract is stated in. Two Results are "the same
// schedule" iff their digests match bit for bit.
func Digest(r *simulator.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	i := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	f(r.MakespanSec)
	f(r.TransferSec)
	i(r.TransferCount)
	i(r.Evictions)
	i(r.Writebacks)
	f(r.StallSec)
	for id := range r.Start {
		f(r.Start[id])
		f(r.End[id])
		i(r.Worker[id])
	}
	for w := range r.BusySec {
		f(r.BusySec[w])
		f(r.IdleSec[w])
	}
	return h.Sum64()
}

// Default high-water caps for pooled per-run state: an arena or lane batch
// returned with more retained backing memory than its cap is released to
// zero before pooling, so one oversized sweep cannot pin its peak
// allocation for the rest of the process. The caps are far above any
// steady-state workload (a P=64 arena retains well under 1 MiB).
const (
	DefaultArenaCapBytes = 4 << 20  // per pooled Arena
	DefaultBatchCapBytes = 64 << 20 // per pooled LaneBatch
)

// Pool recycles simulator arenas and lane batches across sweep jobs. Safe
// for concurrent use; the zero value is ready. Arenas returned after failed
// or cancelled runs are fine to reuse — every run fully resets the arena
// before touching it.
type Pool struct {
	mu      sync.Mutex
	free    []*simulator.Arena
	batches []*simulator.LaneBatch

	// ArenaCapBytes and BatchCapBytes bound the backing memory one pooled
	// arena/batch may retain (the high-water trim on Put): 0 picks the
	// defaults above, negative disables trimming.
	ArenaCapBytes int
	BatchCapBytes int
}

// Get returns a pooled arena, or a fresh one when the pool is empty.
func (p *Pool) Get() *simulator.Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return a
	}
	return &simulator.Arena{}
}

// Put returns an arena to the pool, trimming it first when its retained
// footprint exceeds the high-water cap.
func (p *Pool) Put(a *simulator.Arena) {
	if a == nil {
		return
	}
	p.mu.Lock()
	capB := p.ArenaCapBytes
	if capB == 0 {
		capB = DefaultArenaCapBytes
	}
	if capB > 0 && a.Footprint() > capB {
		a.Release()
	}
	p.free = append(p.free, a)
	p.mu.Unlock()
}

// GetBatch returns a pooled lane batch, or a fresh one when none is free.
func (p *Pool) GetBatch() *simulator.LaneBatch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.batches); n > 0 {
		lb := p.batches[n-1]
		p.batches[n-1] = nil
		p.batches = p.batches[:n-1]
		return lb
	}
	return &simulator.LaneBatch{}
}

// PutBatch returns a lane batch to the pool, trimming it first when its
// retained footprint exceeds the high-water cap.
func (p *Pool) PutBatch(lb *simulator.LaneBatch) {
	if lb == nil {
		return
	}
	p.mu.Lock()
	capB := p.BatchCapBytes
	if capB == 0 {
		capB = DefaultBatchCapBytes
	}
	if capB > 0 && lb.Footprint() > capB {
		lb.Release()
	}
	p.batches = append(p.batches, lb)
	p.mu.Unlock()
}

// Job is one simulation of a batch. Sched constructs a fresh scheduler per
// invocation — instances are stateful across Init/Assign and must not be
// shared between runs. For deduplication the constructed scheduler's Name()
// must identify its whole policy configuration (the sched.SeedInvariant
// contract); every registered scheduler does.
type Job struct {
	D     *graph.DAG
	P     *platform.Platform
	Sched func() sched.Scheduler
	Opt   simulator.Options
}

// jitterActive reports whether the run's execution times depend on the seed
// through the overhead/jitter model.
func jitterActive(p *platform.Platform, opt simulator.Options) bool {
	return opt.Overhead && p.Overhead.JitterFrac != 0
}

type laneKey struct {
	pp       *simulator.Prep
	sched    string
	overhead bool
	stealing bool
}

// Run executes the jobs with up to `workers` concurrent lanes and returns
// their Results in job order, each bit-identical to what
// simulator.RunContext would produce for that job. Jobs sharing a
// (DAG, platform) pair (by pointer) share one preparation; jobs that can
// provably not differ — same prep, same scheduler name, same options modulo
// a seed the run never consumes — run once and are answered with clones.
// A nil pool uses a private one scoped to this call.
func Run(ctx context.Context, jobs []Job, workers int, pool *Pool) ([]*simulator.Result, error) {
	return RunProbed(ctx, jobs, workers, pool, nil)
}

// RunProbed is Run with a batch-level progress probe: frames report
// completed jobs against the batch size plus the running dedup-hit count.
// The stream's Done is monotone (emissions serialize on an internal mutex)
// though the completion *order* of concurrent lanes is scheduling-dependent
// — batch telemetry reports throughput, not per-run schedules, so this does
// not weaken the digest contract. Per-job probes (Job.Opt.Probe) force the
// job onto its own lane, exactly like Job.Opt.Recorder, so every probed job
// genuinely simulates and emits its own simulator frames.
//
// Jitter-active jobs of one configuration (same prep, scheduler name and
// options modulo seed) are grouped into event-level lane-engine units when
// two or more are present — see the lane executor in lanes.go.
func RunProbed(ctx context.Context, jobs []Job, workers int, pool *Pool, probe *obs.Probe) ([]*simulator.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	if pool == nil {
		pool = &Pool{}
	}
	type pairKey struct {
		d *graph.DAG
		p *platform.Platform
	}
	preps := make(map[pairKey]*simulator.Prep)
	prepOf := make([]*simulator.Prep, len(jobs))
	for i := range jobs {
		k := pairKey{jobs[i].D, jobs[i].P}
		pp, ok := preps[k]
		if !ok {
			var err error
			pp, err = simulator.Prepare(jobs[i].D, jobs[i].P)
			if err != nil {
				return nil, fmt.Errorf("replay: job %d: %w", i, err)
			}
			preps[k] = pp
		}
		prepOf[i] = pp
	}
	// Lane plan: rep[i] is the index of the job whose simulation answers job
	// i. A job is its own representative unless an earlier job is provably
	// seed-equivalent.
	rep := make([]int, len(jobs))
	seen := make(map[laneKey]int)
	var lanes []int
	for i := range jobs {
		rep[i] = i
		opt := jobs[i].Opt
		if opt.Recorder != nil || opt.Probe != nil || jitterActive(jobs[i].P, opt) {
			lanes = append(lanes, i)
			continue
		}
		s := jobs[i].Sched()
		if !sched.IsSeedInvariant(s) {
			lanes = append(lanes, i)
			continue
		}
		k := laneKey{pp: prepOf[i], sched: s.Name(), overhead: opt.Overhead, stealing: opt.WorkStealing}
		if first, dup := seen[k]; dup {
			rep[i] = first
			continue
		}
		seen[k] = i
		lanes = append(lanes, i)
	}
	dedupHits := int64(len(jobs) - len(lanes))

	// Lane-engine grouping: jitter-active jobs of one configuration — same
	// prep, same scheduler name (under the SeedInvariant identity contract),
	// same options modulo the seed — differ only in their jitter draws.
	// Groups of two or more route through the event-level lane executor
	// (lanes.go) as one engine unit instead of one full event loop per job;
	// singles and everything else keep the per-job path.
	laneEligible := func(i int) (laneKey, bool) {
		opt := jobs[i].Opt
		if opt.Recorder != nil || opt.Probe != nil || !jitterActive(jobs[i].P, opt) {
			return laneKey{}, false
		}
		s := jobs[i].Sched()
		if !sched.IsSeedInvariant(s) {
			return laneKey{}, false
		}
		return laneKey{pp: prepOf[i], sched: s.Name(), overhead: opt.Overhead, stealing: opt.WorkStealing}, true
	}
	type laneUnit struct {
		single int   // job index, when group is nil
		group  []int // job indices of one lane-engine unit, len ≥ 2
	}
	byKey := make(map[laneKey][]int)
	var keyOrder []laneKey
	for _, i := range lanes {
		if k, ok := laneEligible(i); ok {
			if len(byKey[k]) == 0 {
				keyOrder = append(keyOrder, k)
			}
			byKey[k] = append(byKey[k], i)
		}
	}
	var units []laneUnit
	grouped := make(map[int]bool)
	for _, k := range keyOrder {
		if g := byKey[k]; len(g) >= 2 {
			units = append(units, laneUnit{group: g})
			for _, i := range g {
				grouped[i] = true
			}
		}
	}
	for _, i := range lanes {
		if !grouped[i] {
			units = append(units, laneUnit{single: i})
		}
	}

	var progressMu sync.Mutex
	var laneDone int64
	jobsDone := func(n int) {
		if probe == nil {
			return
		}
		progressMu.Lock()
		laneDone += int64(n)
		if probe.Due(laneDone) {
			probe.Emit(obs.Frame{
				Source:    obs.SourceReplay,
				Done:      laneDone,
				Total:     int64(len(jobs)),
				DedupHits: dedupHits,
			})
		}
		progressMu.Unlock()
	}
	results := make([]*simulator.Result, len(jobs))
	// Units write disjoint results slots; MapContext supplies ordering and
	// first-error semantics.
	_, err := sweep.MapContext(ctx, units, workers, func(u laneUnit) (struct{}, error) {
		if u.group == nil {
			i := u.single
			a := pool.Get()
			r, runErr := prepOf[i].Run(ctx, jobs[i].Sched(), jobs[i].Opt, a)
			pool.Put(a)
			if runErr != nil {
				return struct{}{}, runErr
			}
			results[i] = r
			jobsDone(1)
			return struct{}{}, nil
		}
		pp := prepOf[u.group[0]]
		specs := make([]laneSpec, len(u.group))
		for gi, i := range u.group {
			specs[gi] = laneSpec{seed: jobs[i].Opt.Seed, mk: jobs[i].Sched}
		}
		fillJitterRows(pp, jobs[u.group[0]].P, jobs[u.group[0]].Opt, specs)
		stats := &LaneStats{}
		rs, runErr := runLanes(ctx, pp, jobs[u.group[0]].Opt, specs, workers, pool, LaneOptions{}, nil, stats)
		if runErr != nil {
			return struct{}{}, runErr
		}
		for gi, i := range u.group {
			results[i] = rs[gi]
		}
		jobsDone(len(u.group))
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		if rep[i] != i {
			results[i] = results[rep[i]].Clone()
		}
	}
	if probe != nil {
		// Final frame counts the dedup clones as done: the batch is whole.
		probe.Emit(obs.Frame{
			Source:    obs.SourceReplay,
			Done:      int64(len(jobs)),
			Total:     int64(len(jobs)),
			Final:     true,
			DedupHits: dedupHits,
		})
	}
	return results, nil
}

// Seeds runs one (DAG, platform, scheduler, options) configuration across
// the given seeds and returns per-seed Results in seed order, bit-identical
// to looping simulator.RunContext over the seeds. A single seed takes the
// serial path directly — no batching machinery, no extra allocations.
func Seeds(ctx context.Context, d *graph.DAG, p *platform.Platform, mk func() sched.Scheduler, seeds []int64, opt simulator.Options, workers int, pool *Pool) ([]*simulator.Result, error) {
	return SeedsProbed(ctx, d, p, mk, seeds, opt, workers, pool, nil)
}

// SeedsProbed is Seeds with a batch-level progress probe (see RunProbed).
func SeedsProbed(ctx context.Context, d *graph.DAG, p *platform.Platform, mk func() sched.Scheduler, seeds []int64, opt simulator.Options, workers int, pool *Pool, probe *obs.Probe) ([]*simulator.Result, error) {
	if len(seeds) == 0 {
		return nil, nil
	}
	if len(seeds) == 1 {
		opt.Seed = seeds[0]
		r, err := simulator.RunContext(ctx, d, p, mk(), opt)
		if err != nil {
			return nil, err
		}
		if probe != nil {
			probe.Emit(obs.Frame{Source: obs.SourceReplay, Done: 1, Total: 1, Final: true})
		}
		return []*simulator.Result{r}, nil
	}
	if jitterActive(p, opt) && opt.Recorder == nil && opt.Probe == nil {
		// The jitter-lane regime: every seed genuinely simulates, so the
		// event-level lane executor (one loop advancing the whole batch,
		// algebraic jitter rows, shared scheduler Init) beats one full run
		// per seed. Identical to it bit for bit — see lanes.go.
		res, _, err := LanesProbed(ctx, d, p, mk, seeds, opt, workers, pool, probe, LaneOptions{})
		return res, err
	}
	jobs := make([]Job, len(seeds))
	for i, s := range seeds {
		o := opt
		o.Seed = s
		jobs[i] = Job{D: d, P: p, Sched: mk, Opt: o}
	}
	return RunProbed(ctx, jobs, workers, pool, probe)
}
