package sweep

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func TestRunOrderedAndComplete(t *testing.T) {
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i * i, nil }
	}
	for _, workers := range []int{1, 4, 100} {
		out, err := Run(jobs, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunReportsFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		func() (int, error) { return 1, nil },
		func() (int, error) { return 0, fmt.Errorf("later: %w", boom) },
		func() (int, error) { return 0, errors.New("even later") },
	}
	_, err := Run(jobs, 3)
	if !errors.Is(err, boom) {
		t.Fatalf("expected the lowest-index error, got %v", err)
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run[int](nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatal("empty job list should be a no-op")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out, err := Map(in, 2, func(s string) (int, error) { return len(s), nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

func TestGridShape(t *testing.T) {
	rows := []int{1, 2, 3}
	cols := []int{10, 20}
	m, err := Grid(rows, cols, 4, func(r, c int) (int, error) { return r * c, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 || len(m[0]) != 2 || m[2][1] != 60 || m[0][0] != 10 {
		t.Fatalf("grid = %v", m)
	}
}

func TestParallelSimulationsDeterministic(t *testing.T) {
	// The paper's use case: sizes × schedulers swept in parallel must give
	// exactly the sequential results.
	p := platform.WithoutCommunication(platform.Mirage())
	sizes := []int{4, 6, 8}
	mkScheds := []func() sched.Scheduler{sched.NewDMDA, sched.NewDMDAS}
	run := func(n int, mk func() sched.Scheduler) (float64, error) {
		r, err := simulator.Run(graph.Cholesky(n), p, mk(), simulator.Options{Seed: 1})
		if err != nil {
			return 0, err
		}
		return r.MakespanSec, nil
	}
	par, err := Grid(sizes, mkScheds, 4, run)
	if err != nil {
		t.Fatal(err)
	}
	for ri, n := range sizes {
		for ci, mk := range mkScheds {
			want, err := run(n, mk)
			if err != nil {
				t.Fatal(err)
			}
			if par[ri][ci] != want {
				t.Fatalf("parallel sweep diverged at (%d, %d): %g vs %g",
					ri, ci, par[ri][ci], want)
			}
		}
	}
}
