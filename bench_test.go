// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation. Each benchmark regenerates its
// artifact through the experiments package and reports the headline numbers
// as custom benchmark metrics (GFLOP/s and bound efficiencies), so
// `go test -bench=. -benchmem` reproduces the study end to end.
//
// Benchmark configs are reduced relative to the paper-scale `cholrepro`
// defaults (fewer sizes/repetitions) so a full -bench=. pass stays in the
// minutes range; the shapes are identical.
package repro

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// benchCfg is the shared reduced sweep.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.Sizes = []int{4, 8, 16}
	cfg.Runs = 3
	cfg.CPMaxTiles = 5
	cfg.CPBudget = 10000
	return cfg
}

func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg()
	var last float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.TableI(cfg)
		last = tbl.Series[0].Values[3]
	}
	b.ReportMetric(last, "gemm-speedup")
}

func BenchmarkTableK(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{4, 8, 12, 16, 20, 24, 28, 32}
	var k4 float64
	for i := 0; i < b.N; i++ {
		tbl := experiments.TableK(cfg)
		k4 = tbl.Series[0].Values[0]
	}
	b.ReportMetric(k4, "K(4)")
}

func BenchmarkFig2(b *testing.B) {
	cfg := benchCfg()
	var mixed16 float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tbl.Series {
			if s.Name == "mixed bound" {
				mixed16 = s.Values[len(s.Values)-1]
			}
		}
	}
	b.ReportMetric(mixed16, "mixed-bound-gflops-n16")
}

func BenchmarkFig3(b *testing.B) {
	cfg := benchCfg()
	var dmdas float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dmdas = tbl.Series[2].Values[len(cfg.Sizes)-1]
	}
	b.ReportMetric(dmdas, "dmdas-gflops-n16")
}

func BenchmarkFig3Real(b *testing.B) {
	cfg := benchCfg()
	cfg.RealSizes = []int{2, 4}
	cfg.RealNB = 32
	cfg.Runs = 2
	var prio float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig3Real(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prio = tbl.Series[2].Values[1]
	}
	b.ReportMetric(prio, "real-priority-gflops-n4")
}

func BenchmarkFig4(b *testing.B) {
	cfg := benchCfg()
	var gap float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		gap = series["dmdas"][0] / series["mixed bound"][0]
	}
	b.ReportMetric(gap, "dmdas/bound-n4")
}

func BenchmarkFig5(b *testing.B) {
	cfg := benchCfg()
	var eff float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		eff = series["dmdas"][1] / series["mixed bound"][1]
	}
	b.ReportMetric(eff, "related-dmdas/bound-n8")
}

func BenchmarkFig6(b *testing.B) {
	cfg := benchCfg()
	var dmdas float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dmdas = tbl.Series[2].Values[len(cfg.Sizes)-1]
	}
	b.ReportMetric(dmdas, "actual-dmdas-gflops-n16")
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchCfg()
	var eff float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		eff = series["dmdas"][1] / series["mixed bound"][1]
	}
	b.ReportMetric(eff, "unrelated-dmdas/bound-n8")
}

func BenchmarkFig8(b *testing.B) {
	cfg := benchCfg()
	var scaled float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tbl.Series {
			if s.Name == "dmdas" {
				scaled = s.Values[1]
			}
		}
	}
	b.ReportMetric(scaled, "scaled-dmdas-gflops-n8")
}

func BenchmarkFig9(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		out := experiments.Fig9(16, 6)
		n = len(out)
	}
	b.ReportMetric(float64(n), "chars")
}

func BenchmarkFig10(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{4, 8}
	var tri float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tbl.Series {
			if s.Name == "triangle trsms on cpu" {
				tri = s.Values[1]
			}
		}
	}
	b.ReportMetric(tri, "triangle-gflops-n8")
}

func BenchmarkFig11(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{4, 8}
	cfg.Runs = 2
	var tri float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tri = tbl.Series[1].Values[1]
	}
	b.ReportMetric(tri, "triangle-actual-gflops-n8")
}

func BenchmarkFig12(b *testing.B) {
	cfg := benchCfg()
	var chars int
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		chars = len(out)
	}
	b.ReportMetric(float64(chars), "chars")
}

func BenchmarkMappingOnly(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{5}
	cfg.CPMaxTiles = 5
	var full, maponly float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.MappingOnly(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		full, maponly = series["CP full injection"][0], series["CP mapping only"][0]
	}
	b.ReportMetric(full, "cp-full-gflops")
	b.ReportMetric(maponly, "cp-mapping-gflops")
}

func BenchmarkGemmSyrkHint(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{8}
	var delta float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.GemmSyrkHint(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delta = tbl.Series[1].Values[0] - tbl.Series[0].Values[0]
	}
	b.ReportMetric(delta, "hint-delta-gflops")
}

func BenchmarkTransferAblation(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{8}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TransferAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks ---------------------------------------------

func BenchmarkKernelGemm64(b *testing.B) {
	nb := 64
	a := matrix.NewTile(nb)
	c := matrix.NewTile(nb)
	d := matrix.NewTile(nb)
	for i := range a.Data {
		a.Data[i] = float64(i % 7)
		c.Data[i] = float64(i % 5)
	}
	b.SetBytes(int64(3 * nb * nb * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Gemm(a, c, d)
	}
	b.ReportMetric(kernels.GemmFlops(nb)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkKernelPotrf64(b *testing.B) {
	nb := 64
	src := matrix.RandSPD(nb, 1)
	t := matrix.NewTile(nb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(t.Data, src.Data)
		if err := kernels.Potrf(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorDmdas32(b *testing.B) {
	p := platform.Mirage()
	d := graph.Cholesky(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(d.Tasks)), "tasks")
}

func BenchmarkRuntimeFactor(b *testing.B) {
	a := matrix.RandSPD(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := matrix.FromDense(a, 32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runtime.Factor(tl, runtime.Options{Policy: runtime.Priority}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(kernels.CholeskyFlops(256)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

func BenchmarkBoundsMixedInt(b *testing.B) {
	p := platform.Mirage()
	d := graph.Cholesky(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.MixedInt(d, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDAGBuild32(b *testing.B) {
	var tasks int
	for i := 0; i < b.N; i++ {
		tasks = len(graph.Cholesky(32).Tasks)
	}
	if tasks != 32+2*(32*31/2)+32*31*30/6 {
		b.Fatal("wrong task count")
	}
}

// Sanity: keep the micro-bench helpers honest.
func TestBenchHelpers(t *testing.T) {
	if math.IsNaN(kernels.GemmFlops(64)) {
		t.Fatal("flops")
	}
}

func BenchmarkLUQRExtension(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{4, 8}
	var luEff float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.OtherFactorizations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		luEff = series["lu dmdas"][1] / series["lu mixed bound"][1]
	}
	b.ReportMetric(luEff, "lu-dmdas/bound-n8")
}

func BenchmarkCommAwareCP(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{4, 5}
	cfg.CPMaxTiles = 5
	var delta float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.CommAwareCP(cfg)
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		delta = series["CP comm-aware"][1] - series["CP oblivious"][1]
	}
	b.ReportMetric(delta, "aware-minus-oblivious-gflops")
}

func BenchmarkKernelGeqrt64(b *testing.B) {
	nb := 64
	src := matrix.RandSymmetric(nb, 1)
	t := matrix.NewTile(nb)
	tau := make([]float64, nb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(t.Data, src.Data)
		kernels.Geqrt(t, tau)
	}
}

func BenchmarkKernelGetrf64(b *testing.B) {
	nb := 64
	src := matrix.DiagDominant(nb, 1)
	t := matrix.NewTile(nb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(t.Data, src.Data)
		if err := kernels.Getrf(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPSolve5(b *testing.B) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpsolve.Solve(d, p, cpsolve.Options{NodeBudget: 5000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHEFTVariants(b *testing.B) {
	p := platform.Mirage()
	d := graph.Cholesky(16)
	b.Run("append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.HEFT(d, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insertion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.HEFTInsertion(d, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDistributed(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{8, 16}
	var dyn float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Distributed(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range tbl.Series {
			if s.Name == "dynamic" {
				dyn = s.Values[1]
			}
		}
	}
	b.ReportMetric(dyn, "dynamic-gflops-n16")
}

func BenchmarkBanded(b *testing.B) {
	cfg := benchCfg()
	var gap float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Banded(cfg, 16, []int{2, 8, 15})
		if err != nil {
			b.Fatal(err)
		}
		series := map[string][]float64{}
		for _, s := range tbl.Series {
			series[s.Name] = s.Values
		}
		gap = series["dmdas"][1] / series["mixed bound"][1]
	}
	b.ReportMetric(gap, "bw8-dmdas/bound")
}

func BenchmarkMemorySweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MemorySweep(cfg, 12, []int{8, 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkStealing(b *testing.B) {
	cfg := benchCfg()
	cfg.Sizes = []int{8}
	cfg.Runs = 2
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WorkStealing(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTileSizeSweep(b *testing.B) {
	cfg := benchCfg()
	var best float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.TileSizeSweep(cfg, 7680, []int{480, 960, 1920})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range tbl.Series[0].Values {
			if v > best {
				best = v
			}
		}
	}
	b.ReportMetric(best, "best-gflops")
}

func BenchmarkRuntimeSolve(b *testing.B) {
	a := matrix.RandSPD(256, 1)
	tl, err := matrix.FromDense(a, 32)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := runtime.Factor(tl, runtime.Options{}); err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rhs {
			rhs[j] = float64(j)
		}
		if _, err := runtime.Solve(tl, rhs, runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEndToEndRegistry runs every registered experiment at a minimal
// configuration — the integration test proving the whole catalogue is
// runnable from a clean checkout. Skipped under -short.
func TestEndToEndRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	cfg := experiments.Quick()
	cfg.Sizes = []int{2, 4}
	cfg.Runs = 2
	cfg.CPMaxTiles = 4
	cfg.CPBudget = 2000
	cfg.RealSizes = []int{2}
	cfg.RealNB = 16
	for _, r := range experiments.Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			out, _, err := r.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if out == "" {
				t.Fatalf("%s: empty output", r.ID)
			}
		})
	}
}
