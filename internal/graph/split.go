package graph

import "fmt"

// CholeskySplit builds a mixed-tile-size Cholesky DAG in the HeSP style
// (Tile-size sensitivity: arXiv:1602.05510): the first fromK panels of the
// p×p coarse grid run at the coarse tile size nb, then the trailing
// (p−fromK)×(p−fromK) submatrix — where per-panel parallelism has decayed —
// is refined by factor into (nb/factor)-sized tiles through explicit SPLIT
// conversion tasks, factorized at the fine granularity, and repacked into
// coarse tiles by MERGE tasks so the output representation is uniform again.
//
// Coarse tiles keep their (i, j) coordinates; the fine subtile at offset
// (a, b) inside coarse tile (i, j) lives at coordinate
// (p + (i−fromK)·factor + a, p + (j−fromK)·factor + b), so coarse and fine
// tiles never alias and the sequential-consistency builder wires the
// SPLIT → fine-kernel → MERGE dependencies from the data accesses alone.
//
// fromK = p (or factor = 1) degenerates to the uniform right-looking builder
// with Task.NB pinned to nb. nb must be positive and divisible by factor.
func CholeskySplit(p, fromK, factor, nb int) *DAG {
	if p <= 0 || fromK < 0 || fromK > p {
		panic(fmt.Sprintf("graph: CholeskySplit fromK=%d out of range [0, %d]", fromK, p))
	}
	if factor < 1 || nb <= 0 || nb%factor != 0 {
		panic(fmt.Sprintf("graph: CholeskySplit needs factor ≥ 1 dividing nb, got factor=%d nb=%d", factor, nb))
	}
	if factor == 1 {
		fromK = p // splitting by 1 converts nothing
	}
	b := newBuilder("cholesky", p)
	nbFine := nb / factor

	// Coarse right-looking panels, Algorithm 1 verbatim. Trailing updates for
	// i, j ≥ fromK still run at coarse granularity: the refinement happens
	// only once every coarse-panel contribution has been accumulated.
	for k := 0; k < fromK; k++ {
		b.task(POTRF, -1, -1, k, TileRef{k, k, ReadWrite}).NB = nb
		for i := k + 1; i < p; i++ {
			b.task(TRSM, i, -1, k,
				TileRef{k, k, Read},
				TileRef{i, k, ReadWrite}).NB = nb
		}
		for j := k + 1; j < p; j++ {
			b.task(SYRK, -1, j, k,
				TileRef{j, k, Read},
				TileRef{j, j, ReadWrite}).NB = nb
			for i := j + 1; i < p; i++ {
				b.task(GEMM, i, j, k,
					TileRef{i, k, Read},
					TileRef{j, k, Read},
					TileRef{i, j, ReadWrite}).NB = nb
			}
		}
	}
	if fromK == p {
		return b.finish()
	}

	// fine maps submatrix-relative fine indices to global tile coordinates.
	fine := func(a int) int { return p + a }
	m := (p - fromK) * factor // fine grid side
	d := b.dag
	d.TileNB = make(map[[2]int]int, m*(m+1)/2)

	// SPLIT: one conversion task per trailing coarse tile, reading the fully
	// updated coarse tile and writing its lower-triangle-relevant subtiles.
	for i := fromK; i < p; i++ {
		for j := fromK; j <= i; j++ {
			refs := make([]TileRef, 0, 1+factor*factor)
			refs = append(refs, TileRef{i, j, Read})
			for a := 0; a < factor; a++ {
				for c := 0; c < factor; c++ {
					gi := fine((i-fromK)*factor + a)
					gj := fine((j-fromK)*factor + c)
					if gj > gi { // above the global diagonal: unused
						continue
					}
					refs = append(refs, TileRef{gi, gj, ReadWrite})
					d.TileNB[[2]int{gi, gj}] = nbFine
				}
			}
			b.task(SPLIT, i, j, -1, refs...).NB = nb
		}
	}

	// Fine-granularity right-looking Cholesky over the m×m subtile grid.
	// Indices are stored as global coordinates so fine tasks never collide
	// with coarse ones in names or hint predicates.
	for k := 0; k < m; k++ {
		b.task(POTRF, -1, -1, fine(k), TileRef{fine(k), fine(k), ReadWrite}).NB = nbFine
		for i := k + 1; i < m; i++ {
			b.task(TRSM, fine(i), -1, fine(k),
				TileRef{fine(k), fine(k), Read},
				TileRef{fine(i), fine(k), ReadWrite}).NB = nbFine
		}
		for j := k + 1; j < m; j++ {
			b.task(SYRK, -1, fine(j), fine(k),
				TileRef{fine(j), fine(k), Read},
				TileRef{fine(j), fine(j), ReadWrite}).NB = nbFine
			for i := j + 1; i < m; i++ {
				b.task(GEMM, fine(i), fine(j), fine(k),
					TileRef{fine(i), fine(k), Read},
					TileRef{fine(j), fine(k), Read},
					TileRef{fine(i), fine(j), ReadWrite}).NB = nbFine
			}
		}
	}

	// MERGE: repack each coarse tile from its factored subtiles.
	for i := fromK; i < p; i++ {
		for j := fromK; j <= i; j++ {
			refs := make([]TileRef, 0, 1+factor*factor)
			refs = append(refs, TileRef{i, j, ReadWrite})
			for a := 0; a < factor; a++ {
				for c := 0; c < factor; c++ {
					gi := fine((i-fromK)*factor + a)
					gj := fine((j-fromK)*factor + c)
					if gj > gi {
						continue
					}
					refs = append(refs, TileRef{gi, gj, Read})
				}
			}
			b.task(MERGE, i, j, -1, refs...).NB = nb
		}
	}
	return b.finish()
}
