// Package use exercises recnil: *obs.Recorder uses must sit behind the nil
// fast-path check.
package use

import "repro/internal/analysis/testdata/src/recnil/obs"

type state struct {
	rec   *obs.Recorder
	probe *obs.Probe
	now   float64
}

func unguardedField(st *state) {
	st.rec.Marks = nil // want `field st.rec.Marks used without the recorder nil fast-path`
}

func unguardedAppend(st *state) {
	st.rec.Marks = append(st.rec.Marks, st.now) // want `field st.rec.Marks used` `field st.rec.Marks used`
}

func unguardedMethod(st *state) {
	st.rec.Mark(st.now) // want `method st.rec.Mark used without the recorder nil fast-path`
}

func nilSafeMethodFine(st *state) int {
	return st.rec.Events() // Events carries its own nil fast path
}

func guarded(st *state) {
	if st.rec != nil {
		st.rec.Marks = nil
		st.rec.Mark(st.now)
	}
}

func guardedConjoined(st *state) {
	if st.rec != nil && st.now > 0 {
		st.rec.Mark(st.now)
	}
}

func elseBranchNotGuarded(st *state) {
	if st.rec != nil {
		st.rec.Mark(st.now)
	} else {
		st.rec.Marks = nil // want `field st.rec.Marks used without the recorder nil fast-path`
	}
}

func earlyReturnGuard(st *state) {
	rec := st.rec
	if rec == nil {
		return
	}
	rec.Mark(st.now)
	rec.Marks = nil
}

func locallyConstructed(now float64) int {
	rec := obs.NewRecorder() // provably non-nil
	rec.Mark(now)
	return rec.Events()
}

func locallyConstructedLiteral(now float64) *obs.Recorder {
	rec := &obs.Recorder{}
	rec.Mark(now)
	return rec
}

func knownNonNilElsewhere(st *state) {
	st.rec.Mark(st.now) //chollint:unguarded caller checked; see run() precondition
}

func unguardedProbe(st *state, done int64) {
	if st.probe.Due(done) { // want `method st.probe.Due used without the probe nil fast-path`
		st.probe.Emit(done) // want `method st.probe.Emit used without the probe nil fast-path`
	}
}

func probeHotPath(st *state, done int64) {
	// The simulator event-loop idiom: nil check and Due share one condition.
	if st.probe != nil && st.probe.Due(done) {
		st.probe.Emit(done)
	}
}

func probeConjunctOrder(st *state, done int64) {
	// The use in the LEFT conjunct is not protected by the right-hand check.
	if st.probe.Due(done) && st.probe != nil { // want `method st.probe.Due used without the probe nil fast-path`
		st.probe.Emit(done)
	}
}

func probeDisjunctNotGuard(st *state, done int64) {
	// || does not guarantee the nil check held when Due evaluates.
	if st.probe != nil || st.probe.Due(done) { // want `method st.probe.Due used without the probe nil fast-path`
		_ = done
	}
}

func probeNilSafeFine(st *state) bool {
	return st.probe.Enabled() // Enabled carries its own nil fast path
}

func probeEarlyReturn(st *state, done int64) {
	p := st.probe
	if p == nil {
		return
	}
	if p.Due(done) {
		p.Emit(done)
	}
}

func probeLocallyConstructed(done int64) {
	p := obs.NewProbe(8) // provably non-nil
	if p.Due(done) {
		p.Emit(done)
	}
}
