package matrix

import "math/rand"

// RandSPD returns a random symmetric positive-definite N×N matrix generated
// as B·Bᵀ + N·I from a uniform random B, with a deterministic seed. The +N·I
// shift keeps the condition number moderate so factorization residuals stay
// near machine precision.
func RandSPD(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	b := NewDense(n)
	for i := range b.Data {
		b.Data[i] = rng.Float64()*2 - 1
	}
	a := b.Mul(b.Transpose())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

// RandSymmetric returns a random symmetric (not necessarily definite) matrix;
// useful for negative tests of the factorization error paths.
func RandSymmetric(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64()*2 - 1
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Laplacian2D returns the (SPD) 5-point finite-difference Laplacian on a
// k×k grid, i.e. an N = k² matrix. This is the archetypal "matrix arising
// from a PDE discretization" mentioned in the paper's introduction, used as
// a realistic example workload.
func Laplacian2D(k int) *Dense {
	n := k * k
	a := NewDense(n)
	idx := func(x, y int) int { return x*k + y }
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			i := idx(x, y)
			a.Set(i, i, 4)
			if x > 0 {
				a.Set(i, idx(x-1, y), -1)
			}
			if x < k-1 {
				a.Set(i, idx(x+1, y), -1)
			}
			if y > 0 {
				a.Set(i, idx(x, y-1), -1)
			}
			if y < k-1 {
				a.Set(i, idx(x, y+1), -1)
			}
		}
	}
	return a
}

// Identity returns the N×N identity matrix.
func Identity(n int) *Dense {
	a := NewDense(n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	return a
}

// Hilbert returns the n×n Hilbert matrix H_ij = 1/(i+j+1): SPD but extremely
// ill-conditioned, exercising the numeric edge of the kernels.
func Hilbert(n int) *Dense {
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
		}
	}
	return a
}

// BandedSPD returns a random SPD matrix with (element-level) half-bandwidth
// `band`: entries |i−j| > band are zero. Generated as B·Bᵀ + N·I from a
// banded random B (the product of banded matrices keeps the band).
func BandedSPD(n, band int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	b := NewDense(n)
	half := band / 2
	if half < 1 {
		half = 1
	}
	for i := 0; i < n; i++ {
		for j := i - half; j <= i+half; j++ {
			if j >= 0 && j < n {
				b.Set(i, j, rng.Float64()*2-1)
			}
		}
	}
	a := b.Mul(b.Transpose())
	// Truncate to the requested band exactly, then restore strict diagonal
	// dominance (truncation alone does not preserve definiteness).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if absInt(i-j) > band {
				a.Set(i, j, 0)
			}
		}
	}
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				if v := a.At(i, j); v < 0 {
					row -= v
				} else {
					row += v
				}
			}
		}
		a.Set(i, i, row+1)
	}
	return a
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
