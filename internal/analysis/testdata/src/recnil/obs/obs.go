// Package obs mirrors the real observability recorder's shape for the recnil
// fixtures: a nil *Recorder is the documented off switch.
package obs

// Recorder accumulates trace events; nil disables recording.
type Recorder struct {
	Marks []float64
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Events is nil-safe by contract.
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.Marks)
}

// Mark records one event. NOT nil-safe: callers hold the fast-path check.
func (r *Recorder) Mark(t float64) { r.Marks = append(r.Marks, t) }

// Probe emits progress frames; nil disables live telemetry.
type Probe struct {
	Next int64
}

// NewProbe returns an enabled probe.
func NewProbe(every int64) *Probe { return &Probe{Next: every} }

// Enabled is nil-safe by contract.
func (p *Probe) Enabled() bool { return p != nil }

// Due reports whether a frame is owed. NOT nil-safe: the hot path pairs it
// with the nil check in one condition.
func (p *Probe) Due(done int64) bool { return done >= p.Next }

// Emit publishes one frame. NOT nil-safe.
func (p *Probe) Emit(done int64) { p.Next = done + 1 }
