// Package kernels implements the four numeric tile kernels of the tiled
// Cholesky factorization — POTRF, TRSM, SYRK and GEMM — in pure Go, together
// with their floating-point operation counts.
//
// These are the double-precision BLAS/LAPACK subroutines named by the paper
// (Algorithm 1), specialized to the square nb×nb tiles and the exact
// triangular variants the factorization needs:
//
//	POTRF: Akk ← Chol(Akk)            (lower factor, in place)
//	TRSM:  Aik ← Aik · Lkk⁻ᵀ          (right, lower, transposed)
//	SYRK:  Ajj ← Ajj − Ajk · Ajkᵀ     (lower triangle updated)
//	GEMM:  Aij ← Aij − Aik · Ajkᵀ
//
// The implementations favour clarity plus reasonable cache behaviour
// (ikj loop order with row reuse); they are the "MKL substitute" of the
// reproduction — numerically exact, not performance-tuned. The scheduling
// study consumes the platform timing model, not these kernels' wall time.
package kernels

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Potrf factorizes the symmetric positive-definite tile a in place into its
// lower Cholesky factor. Only the lower triangle of a is read and written.
// It returns matrix.ErrNotPositiveDefinite (wrapped) on a non-positive pivot.
func Potrf(a *matrix.Tile) error {
	nb := a.NB
	d := a.Data
	for k := 0; k < nb; k++ {
		p := d[k*nb+k]
		if p <= 0 || math.IsNaN(p) {
			return fmt.Errorf("%w: tile pivot %d is %g", matrix.ErrNotPositiveDefinite, k, p)
		}
		p = math.Sqrt(p)
		d[k*nb+k] = p
		inv := 1 / p
		for i := k + 1; i < nb; i++ {
			d[i*nb+k] *= inv
		}
		for j := k + 1; j < nb; j++ {
			ljk := d[j*nb+k]
			if ljk == 0 {
				continue
			}
			for i := j; i < nb; i++ {
				d[i*nb+j] -= d[i*nb+k] * ljk
			}
		}
	}
	return nil
}

// Trsm overwrites a with a · L⁻ᵀ where l holds a lower-triangular factor in
// its lower triangle (diagonal included). This is the update applied to the
// below-diagonal tiles of the panel: A[i][k] ← A[i][k] · L[k][k]⁻ᵀ.
//
// Row r of a solves xᵀ·Lᵀ = aᵀ, i.e. for each column j in increasing order:
// x_j = (a_j − Σ_{k<j} x_k · L_jk) / L_jj.
func Trsm(l, a *matrix.Tile) {
	nb := a.NB
	ld := l.Data
	ad := a.Data
	for r := 0; r < nb; r++ {
		row := ad[r*nb : (r+1)*nb]
		for j := 0; j < nb; j++ {
			s := row[j]
			lrow := ld[j*nb : j*nb+j]
			for k, lv := range lrow {
				s -= row[k] * lv
			}
			row[j] = s / ld[j*nb+j]
		}
	}
}

// Syrk performs the symmetric rank-nb update c ← c − a·aᵀ on the lower
// triangle of c (the strict upper triangle of c is untouched).
func Syrk(a, c *matrix.Tile) {
	nb := a.NB
	ad := a.Data
	cd := c.Data
	for i := 0; i < nb; i++ {
		ai := ad[i*nb : (i+1)*nb]
		for j := 0; j <= i; j++ {
			aj := ad[j*nb : (j+1)*nb]
			s := 0.0
			for k := range ai {
				s += ai[k] * aj[k]
			}
			cd[i*nb+j] -= s
		}
	}
}

// Gemm performs c ← c − a·bᵀ on full tiles (the paper's GEMM kernel: the
// trailing update A[i][j] ← A[i][j] − A[i][k]·A[j][k]ᵀ).
func Gemm(a, b, c *matrix.Tile) {
	nb := a.NB
	ad := a.Data
	bd := b.Data
	cd := c.Data
	for i := 0; i < nb; i++ {
		ai := ad[i*nb : (i+1)*nb]
		ci := cd[i*nb : (i+1)*nb]
		for j := 0; j < nb; j++ {
			bj := bd[j*nb : (j+1)*nb]
			s := 0.0
			for k := range ai {
				s += ai[k] * bj[k]
			}
			ci[j] -= s
		}
	}
}

// Flop counts per kernel for an nb×nb tile, using the standard dense linear
// algebra conventions (LAPACK working notes). These feed the GFLOP/s
// conversions and the GEMM-peak bound.

// PotrfFlops returns the flop count of POTRF on an nb×nb tile: nb³/3 + nb²/2 + nb/6.
func PotrfFlops(nb int) float64 {
	n := float64(nb)
	return n*n*n/3 + n*n/2 + n/6
}

// TrsmFlops returns the flop count of the triangular solve on an nb×nb tile: nb³.
func TrsmFlops(nb int) float64 {
	n := float64(nb)
	return n * n * n
}

// SyrkFlops returns the flop count of the symmetric rank-nb update: nb³ + nb².
func SyrkFlops(nb int) float64 {
	n := float64(nb)
	return n*n*n + n*n
}

// GemmFlops returns the flop count of the nb×nb tile multiply-accumulate: 2·nb³.
func GemmFlops(nb int) float64 {
	n := float64(nb)
	return 2 * n * n * n
}

// CholeskyFlops returns the total flop count of factorizing an N×N matrix,
// N³/3 + N²/2 + N/6 — the numerator of every GFLOP/s figure in the paper.
func CholeskyFlops(n int) float64 {
	x := float64(n)
	return x*x*x/3 + x*x/2 + x/6
}
