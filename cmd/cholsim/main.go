// Command cholsim runs one tiled-Cholesky scheduling simulation and reports
// the achieved performance against the mixed bound, optionally rendering the
// execution trace.
//
// Usage:
//
//	cholsim -list
//	cholsim -tiles 16 -platform mirage -sched dmdas
//	cholsim -tiles 8 -platform mirage-nocomm -sched trsm-cpu:6 -trace ascii
//	cholsim -tiles 4 -platform mirage-nocomm -cp -cp-budget 50000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/simulator"
	"repro/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the registered platforms and schedulers")
		tiles     = flag.Int("tiles", 8, "matrix size in tiles of 960")
		algo      = flag.String("algo", "cholesky", "cholesky | lu | qr (lu/qr use the extended Mirage model)")
		platName  = flag.String("platform", "mirage", core.PlatformUsage()+" (cholesky only; lu/qr pick automatically)")
		platFile  = flag.String("platform-file", "", "JSON platform description (overrides -platform)")
		schedNm   = flag.String("sched", "dmdas", core.SchedulerUsage())
		seed      = flag.Int64("seed", 42, "RNG seed")
		overhead  = flag.Bool("overhead", false, "apply the runtime-overhead + jitter model (actual-mode substitute)")
		traceFmt  = flag.String("trace", "", "render the execution trace: ascii | svg | chrome (Trace Event JSON) | paje (ViTE)")
		traceDec  = flag.Bool("trace-decisions", false, "record scheduling decisions; -trace chrome then embeds per-candidate ECT terms and decision→span flow arrows")
		explain   = flag.Bool("explain", false, "compare the schedule's per-class kernel placement with the mixed bound's LP optimum")
		gap       = flag.Bool("explain-gap", false, "decompose makespan − mixed bound into named components (idle ramp, PCI stalls, starvation, drain, miscast work)")
		gapJSON   = flag.Bool("explain-gap-json", false, "like -explain-gap but emit the attribution as JSON")
		progress  = flag.Bool("progress", false, "stream a live progress ticker to stderr (simulation and CP search)")
		cp        = flag.Bool("cp", false, "also search a CP-style optimized static schedule and inject it")
		cpBudget  = flag.Int("cp-budget", 100000, "CP search node budget")
		cpWorkers = flag.Int("cp-workers", 1, "CP search worker goroutines (any value returns the identical schedule)")
		nb        = cliflags.NB(flag.CommandLine, platform.TileNB,
			"the simulated kernels (≠ the platform's reference size rescales the model; cholesky only)")
		nbSplit = cliflags.NBSplit(flag.CommandLine)
	)
	flag.Parse()
	ctx := context.Background()

	if *list {
		fmt.Println("Platforms:")
		for _, e := range core.Platforms() {
			fmt.Printf("  %-18s %s\n", e.Display(), e.Description)
		}
		fmt.Println("Schedulers:")
		for _, e := range core.Schedulers() {
			fmt.Printf("  %-18s %s\n", e.Display(), e.Description)
		}
		return
	}

	var p *platform.Platform
	var err error
	switch {
	case *platFile != "":
		p, err = platform.LoadFile(*platFile)
	case *algo == "cholesky":
		p, err = core.NewPlatform(*platName)
	default:
		p, err = core.PlatformForAlgorithm(*algo, *platName == "mirage-nocomm")
	}
	if err != nil {
		fatal(err)
	}
	s, err := core.NewScheduler(*schedNm)
	if err != nil {
		fatal(err)
	}
	refNB := p.DefaultNB()
	if *nb != refNB || *nbSplit != "" {
		if *algo != "cholesky" {
			fatal(fmt.Errorf("-nb/-nb-split apply to -algo cholesky only (got %q)", *algo))
		}
	}
	if *nb <= 0 {
		fatal(fmt.Errorf("-nb %d must be positive", *nb))
	}
	if *nb != refNB {
		p = autotune.ScalePlatform(p, refNB, *nb)
	}
	var d *graph.DAG
	if *nbSplit != "" {
		sp, err := cliflags.ParseSplit(*nbSplit)
		if err != nil {
			fatal(err)
		}
		if err := sp.Check(*tiles, *nb); err != nil {
			fatal(err)
		}
		// Fine tiles are priced by scaling the (possibly rescaled) reference
		// tables down to nb/factor.
		p.Model = platform.ModelScaled
		d = graph.CholeskySplit(*tiles, sp.FromK, sp.Factor, *nb)
	} else if d, err = core.DAGByAlgorithm(*algo, *tiles); err != nil {
		fatal(err)
	}
	fl, err := core.FlopsByAlgorithm(*algo, *tiles**nb)
	if err != nil {
		fatal(err)
	}
	var rec *obs.Recorder
	if *traceDec || *gap || *gapJSON {
		rec = obs.NewRecorder()
	}
	var probe *obs.Probe
	if *progress {
		// ~20 ticker redraws across the run, whatever the DAG size.
		probe = obs.NewProbe(len(d.Tasks)/20+1, obs.TickerSink(os.Stderr, "cholsim"))
	}
	rep, err := core.SimulateDAG(ctx, d, fl, p, s, simulator.Options{Seed: *seed, Overhead: *overhead, Recorder: rec, Probe: probe})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("algo=%s platform=%s sched=%s tiles=%d (N=%d, nb=%d%s)\n",
		*algo, p.Name, rep.Scheduler, *tiles, *tiles**nb, *nb, splitLabel(*nbSplit))
	fmt.Printf("makespan      %.6f s\n", rep.MakespanSec)
	fmt.Printf("performance   %.2f GFLOP/s\n", rep.GFlops)
	fmt.Printf("mixed bound   %.2f GFLOP/s\n", rep.BoundGFlops)
	fmt.Printf("efficiency    %.1f %% of the bound\n", 100*rep.Efficiency)
	fmt.Printf("transfers     %d hops, %.4f s cumulative\n", rep.Result.TransferCount, rep.Result.TransferSec)

	if *explain {
		ex, err := bounds.Explain(d, p, rep.Result.Worker, rep.Result.BusySec, rep.Result.MakespanSec)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(ex.Render())
		dev := ex.BiggestDeviation()
		fmt.Printf("largest deviation: %s %v (scheduled %d vs LP %.1f) — candidate for a static hint\n",
			dev.Class, dev.Kind, dev.Scheduled, dev.LPOptimal)
	}

	if *gap || *gapJSON {
		attr, err := obs.AttributeGap(d, p, rep.Result.Worker, rep.Result.BusySec,
			rep.Result.Start, rep.Result.End, rep.Result.MakespanSec, rep.Result.TransferSec, rec)
		if err != nil {
			fatal(err)
		}
		if *gapJSON {
			data, err := json.MarshalIndent(attr, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		} else {
			fmt.Println()
			fmt.Print(attr.Render())
		}
	}

	if *traceFmt != "" {
		var labels []string
		for _, c := range p.Classes {
			for i := 0; i < c.Count; i++ {
				labels = append(labels, fmt.Sprintf("%s%d", c.Name, i))
			}
		}
		g := trace.FromSimulation(d, p.Workers(), labels, rep.Result)
		switch *traceFmt {
		case "ascii":
			fmt.Println()
			fmt.Print(g.ASCII(100, nil))
		case "svg":
			fmt.Print(g.SVG(1200, 22))
		case "chrome":
			data, err := g.ChromeTraceWithDecisions(d, rep.Result, rec)
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		case "paje":
			fmt.Print(g.Paje())
		default:
			fatal(fmt.Errorf("unknown trace format %q (ascii | svg | chrome | paje)", *traceFmt))
		}
	}

	if *cp {
		var cpProbe *obs.Probe
		if *progress {
			cpProbe = obs.NewProbe(*cpBudget/50+1, obs.TickerSink(os.Stderr, "cholsim"))
		}
		r, err := core.OptimizeDAGProbed(ctx, d, p, *cpBudget, *cpWorkers, cpProbe)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCP search: %d nodes, exhausted=%v\n", r.Nodes, r.Exhausted)
		inj, err := core.SimulateDAG(ctx, d, fl, p, r.Schedule.Scheduler("cp-inject"), simulator.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("CP model makespan   %.6f s (%.2f GFLOP/s)\n",
			r.Makespan, platform.GFlops(fl, r.Makespan))
		fmt.Printf("CP injected in sim  %.6f s (%.2f GFLOP/s, %.1f %% of bound)\n",
			inj.MakespanSec, inj.GFlops, 100*inj.Efficiency)
	}
}

func splitLabel(s string) string {
	if s == "" {
		return ""
	}
	return ", split " + s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholsim:", err)
	os.Exit(1)
}
