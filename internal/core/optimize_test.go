package core_test

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpsolve"
	"repro/internal/graph"
)

// paramSamples provides a concrete argument for each parameterized platform
// entry, so the property below really covers every registered platform. A
// new parameterized registration must add a sample here — the test fails
// with a build instruction otherwise.
var paramSamples = map[string]string{
	"homogeneous": "4",
	"related":     "20",
}

func optimizeDigest(r *cpsolve.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	i := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	f(r.Makespan)
	i(r.Nodes)
	if r.Exhausted {
		i(1)
	} else {
		i(0)
	}
	f(r.Schedule.EstMakespan)
	for id := range r.Schedule.Worker {
		i(r.Schedule.Worker[id])
		f(r.Schedule.Start[id])
	}
	return h.Sum64()
}

// TestOptimizeDeterministicAcrossWorkersAllPlatforms asserts, for every
// platform in the registry, that OptimizeDAG with Workers=1 and Workers=8
// produce byte-identical Results (schedule, makespan, node count, Exhausted
// — compared as FNV-64a digests of the exact bit patterns).
func TestOptimizeDeterministicAcrossWorkersAllPlatforms(t *testing.T) {
	d := graph.Cholesky(4)
	for _, e := range core.Platforms() {
		name := e.Name
		// registry_test.go registers throwaway zz-test-* entries into the
		// shared registry; the property covers the product platforms.
		if strings.HasPrefix(name, "zz-test-") {
			continue
		}
		if e.Param != "" {
			arg, ok := paramSamples[e.Name]
			if !ok {
				t.Fatalf("registered platform %q has no sample argument: add one to paramSamples", e.Display())
			}
			name = e.Name + ":" + arg
		}
		p, err := core.NewPlatform(name)
		if err != nil {
			t.Fatalf("platform %s: %v", name, err)
		}
		serial, err := core.OptimizeDAG(context.Background(), d, p, 4000, 1)
		if err != nil {
			t.Fatalf("platform %s workers=1: %v", name, err)
		}
		parallel, err := core.OptimizeDAG(context.Background(), d, p, 4000, 8)
		if err != nil {
			t.Fatalf("platform %s workers=8: %v", name, err)
		}
		if sd, pd := optimizeDigest(serial), optimizeDigest(parallel); sd != pd {
			t.Errorf("platform %s: Workers=1 digest %016x != Workers=8 digest %016x (mk %v vs %v, nodes %d vs %d)",
				name, sd, pd, serial.Makespan, parallel.Makespan, serial.Nodes, parallel.Nodes)
		}
	}
}
