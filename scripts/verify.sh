#!/bin/sh
# Tier-1 verification gate: every PR must leave this green.
set -eux
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test -race ./...
# Benchmark harness smoke: a fixed-iteration subset of the pinned suite
# (<60s) proving the hot paths still run end to end. Writes nothing.
go run ./cmd/cholbench -smoke
