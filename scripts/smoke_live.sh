#!/bin/sh
# Live-observability smoke: boot cholserved, run one recorded simulation,
# and assert the telemetry pipeline end to end — the run streams at least
# one SSE progress frame on /v1/runs/{id}/live and the per-phase span
# histograms show up non-empty on /metrics. Used by verify.yml; runnable
# locally as scripts/smoke_live.sh [port].
set -eu
cd "$(dirname "$0")/.."

PORT="${1:-18080}"
ADDR="127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SRV=""
cleanup() {
	[ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/cholserved" ./cmd/cholserved
"$TMP/cholserved" -addr "$ADDR" -workers 2 2>"$TMP/served.log" &
SRV=$!

ok=""
for _ in $(seq 1 50); do
	if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.2
done
if [ -z "$ok" ]; then
	echo "smoke_live: cholserved did not come up on $ADDR" >&2
	cat "$TMP/served.log" >&2
	exit 1
fi

RESP=$(curl -fsS -X POST "http://$ADDR/v1/simulate" \
	-H 'Content-Type: application/json' \
	-d '{"platform":"mirage","scheduler":"dmdas","tiles":12,"record":true}')
RUN_ID=$(printf '%s' "$RESP" | sed -n 's/.*"run_id":"\([^"]*\)".*/\1/p')
if [ -z "$RUN_ID" ]; then
	echo "smoke_live: no run_id in simulate response: $RESP" >&2
	exit 1
fi

# The run is already complete, so the stream replays the frame backlog and
# terminates with the done event — curl exits on its own.
STREAM=$(curl -fsS -N --max-time 15 "http://$ADDR/v1/runs/$RUN_ID/live")
printf '%s\n' "$STREAM" | grep -q '^event: frame$' || {
	echo "smoke_live: live stream for $RUN_ID carried no progress frame:" >&2
	printf '%s\n' "$STREAM" >&2
	exit 1
}
printf '%s\n' "$STREAM" | grep -q '^event: done$' || {
	echo "smoke_live: live stream for $RUN_ID missing terminal done event" >&2
	exit 1
}

METRICS=$(curl -fsS "http://$ADDR/metrics")
for ph in prep simulate bounds; do
	printf '%s\n' "$METRICS" | grep "^cholserved_phase_seconds_count{phase=\"$ph\"}" |
		grep -qv ' 0$' || {
		echo "smoke_live: phase histogram \"$ph\" empty on /metrics" >&2
		exit 1
	}
done
printf '%s\n' "$METRICS" | grep -q '^cholserved_probe_frames_total{source="simulate"}' || {
	echo "smoke_live: probe frame counter missing on /metrics" >&2
	exit 1
}

echo "smoke_live: OK (run $RUN_ID streamed $(printf '%s\n' "$STREAM" | grep -c '^event: frame$') frames)"
