package obs

import (
	"sort"
	"sync"
	"testing"
)

func TestProbeNilFastPath(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	if p.Interval() != 0 {
		t.Fatal("nil probe has an interval")
	}
	if p.Frames() != 0 {
		t.Fatal("nil probe has frames")
	}
}

func TestProbeCadence(t *testing.T) {
	var got []Frame
	p := NewProbe(10, func(f Frame) { got = append(got, f) })
	var emitted int64
	for done := int64(1); done <= 35; done++ {
		if p.Due(done) {
			p.Emit(Frame{Source: SourceSimulate, Done: done, Total: 35})
			emitted = done
		}
	}
	p.Emit(Frame{Source: SourceSimulate, Done: 35, Total: 35, Final: true})
	if len(got) != 4 {
		t.Fatalf("expected 3 cadence frames + 1 final, got %d: %+v", len(got), got)
	}
	if emitted != 30 {
		t.Fatalf("last cadence emission at %d, want 30", emitted)
	}
	for i, f := range got {
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
		if i > 0 && f.Done < got[i-1].Done {
			t.Fatalf("Done regressed: %d after %d", f.Done, got[i-1].Done)
		}
	}
	if !got[len(got)-1].Final {
		t.Fatal("final frame not marked Final")
	}
	if n := p.Frames(); n != 4 {
		t.Fatalf("Frames() = %d, want 4", n)
	}
	p.Reset()
	if p.Due(5) {
		t.Fatal("due immediately after Reset with interval 10")
	}
	p.Emit(Frame{Done: 10})
	if got[len(got)-1].Seq != 1 {
		t.Fatalf("seq not rewound by Reset: %d", got[len(got)-1].Seq)
	}
}

func TestProbeDefaultInterval(t *testing.T) {
	p := NewProbe(0, nil)
	if p.Interval() != DefaultInterval {
		t.Fatalf("Interval() = %d, want %d", p.Interval(), DefaultInterval)
	}
	if p.Due(DefaultInterval - 1) {
		t.Fatal("due before the default interval elapsed")
	}
	if !p.Due(DefaultInterval) {
		t.Fatal("not due at the default interval")
	}
	p.Emit(Frame{Done: DefaultInterval}) // nil sink must not panic
}

func TestFrameCloneIndependence(t *testing.T) {
	busy := []float64{1, 2, 3}
	f := Frame{Source: SourceSimulate, BusySec: busy}
	c := f.Clone()
	busy[0] = 99
	if c.BusySec[0] != 1 {
		t.Fatal("Clone aliases the source BusySec array")
	}
}

func TestFrameRingEvictionAndSnapshot(t *testing.T) {
	r := NewFrameRing(3)
	for i := 1; i <= 5; i++ {
		r.Publish(Frame{Seq: uint64(i), Done: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", r.Len())
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 || snap[0].Seq != 3 || snap[2].Seq != 5 {
		t.Fatalf("Snapshot(0) = %+v, want seqs 3..5", snap)
	}
	snap = r.Snapshot(4)
	if len(snap) != 1 || snap[0].Seq != 5 {
		t.Fatalf("Snapshot(4) = %+v, want just seq 5", snap)
	}
	last, ok := r.Last()
	if !ok || last.Seq != 5 {
		t.Fatalf("Last() = %+v %v", last, ok)
	}
}

func TestFrameRingSubscribeReplayThenLive(t *testing.T) {
	r := NewFrameRing(8)
	r.Publish(Frame{Seq: 1})
	r.Publish(Frame{Seq: 2})
	backlog, live, cancel := r.Subscribe(1)
	defer cancel()
	if len(backlog) != 1 || backlog[0].Seq != 2 {
		t.Fatalf("backlog = %+v, want just seq 2", backlog)
	}
	r.Publish(Frame{Seq: 3})
	if f := <-live; f.Seq != 3 {
		t.Fatalf("live frame seq = %d, want 3", f.Seq)
	}
	r.Close()
	if _, ok := <-live; ok {
		t.Fatal("live channel not closed by ring Close")
	}
	// Subscribing after close: backlog still served, channel pre-closed.
	backlog, live, cancel2 := r.Subscribe(0)
	defer cancel2()
	if len(backlog) != 3 {
		t.Fatalf("post-close backlog = %d frames, want 3", len(backlog))
	}
	if _, ok := <-live; ok {
		t.Fatal("post-close subscription channel not closed")
	}
	r.Publish(Frame{Seq: 4})
	if r.Len() != 3 {
		t.Fatal("Publish after Close mutated the ring")
	}
}

// TestFrameRingConcurrentSubscribers is the shared-ring race test: one
// publisher, many churning subscribers, all under -race. Every subscriber
// must observe strictly increasing sequence numbers (drops allowed) and a
// closed channel at the end.
func TestFrameRingConcurrentSubscribers(t *testing.T) {
	r := NewFrameRing(32)
	const subscribers = 8
	const frames = 500
	var wg sync.WaitGroup
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			backlog, live, cancel := r.Subscribe(0)
			defer cancel()
			var last uint64
			for _, f := range backlog {
				if f.Seq <= last {
					t.Errorf("backlog seq regressed: %d after %d", f.Seq, last)
					return
				}
				last = f.Seq
			}
			for f := range live {
				if f.Seq <= last {
					t.Errorf("live seq regressed: %d after %d", f.Seq, last)
					return
				}
				last = f.Seq
			}
		}()
	}
	for i := 1; i <= frames; i++ {
		r.Publish(Frame{Seq: uint64(i), Done: int64(i), Total: frames})
	}
	r.Close()
	wg.Wait()
}

// TestEventCountsSortedOrder is the satellite regression: export paths
// iterate EventCountsSorted, which must agree with the EventCounts map and
// stay in ascending key order forever.
func TestEventCountsSortedOrder(t *testing.T) {
	rec := NewRecorder()
	rec.Readies = append(rec.Readies, Ready{}, Ready{})
	rec.Decisions = append(rec.Decisions, Decision{})
	rec.Transfers = append(rec.Transfers, Transfer{}, Transfer{}, Transfer{})
	rec.Idles = append(rec.Idles, Idle{})
	sorted := rec.EventCountsSorted()
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Type < sorted[j].Type }) {
		t.Fatalf("EventCountsSorted not in ascending key order: %+v", sorted)
	}
	m := rec.EventCounts()
	if len(sorted) != len(m) {
		t.Fatalf("sorted has %d entries, map has %d", len(sorted), len(m))
	}
	for _, ec := range sorted {
		if m[ec.Type] != ec.Count {
			t.Fatalf("count mismatch for %q: sorted %d, map %d", ec.Type, ec.Count, m[ec.Type])
		}
	}
	var nilRec *Recorder
	if nilRec.EventCountsSorted() != nil {
		t.Fatal("nil recorder EventCountsSorted not nil")
	}
}
