// Command cholserved runs the evaluation service: a long-lived HTTP/JSON
// server that answers bounds, simulation, sweep, and experiment requests
// over the core API, with result caching and bounded concurrency.
//
// Usage:
//
//	cholserved -addr :8080 -workers 4 -queue 64 -cache 1024 -timeout 30s
//
// Endpoints: POST /v1/bounds, POST /v1/simulate, POST /v1/optimize,
// POST /v1/sweep, GET /v1/experiments, GET /v1/experiments/{id},
// GET /v1/platforms, GET /v1/schedulers, GET /v1/runs, GET /v1/runs/{id},
// GET /v1/runs/{id}/trace, GET /v1/runs/{id}/live (SSE progress stream),
// GET /metrics, GET /healthz, /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", 1024, "result cache capacity (entries)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent evaluation limit")
	queue := flag.Int("queue", 64, "admission queue depth before shedding with 503")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request evaluation deadline")
	ledgerSize := flag.Int("ledger-size", 64, "run ledger capacity: recent evaluations inspectable via /v1/runs")
	frameRing := flag.Int("frame-ring", 256, "per-run live progress-frame buffer (replayable SSE backlog)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "SSE keep-alive comment interval on /v1/runs/{id}/live")
	streamTimeout := flag.Duration("stream-timeout", 5*time.Minute, "live-stream connection lifetime (clients reconnect with Last-Event-ID)")
	logJSON := flag.Bool("log-json", false, "emit request logs as JSON instead of logfmt-style text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}

	srv := service.New(service.Config{
		CacheSize:      *cacheSize,
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		LedgerSize:     *ledgerSize,
		FrameRing:      *frameRing,
		Heartbeat:      *heartbeat,
		StreamTimeout:  *streamTimeout,
		Logger:         slog.New(handler),
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("cholserved listening on %s (workers=%d queue=%d cache=%d timeout=%s ledger=%d)",
		*addr, *workers, *queue, *cacheSize, *timeout, *ledgerSize)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "cholserved:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Print("cholserved: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "cholserved: shutdown:", err)
			os.Exit(1)
		}
	}
}
