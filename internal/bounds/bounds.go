// Package bounds computes the paper's makespan lower bounds (Section III)
// for a task DAG on a heterogeneous platform:
//
//   - the *area bound*: an LP over the per-resource-type task counts n_rt,
//     ignoring dependencies — every task must run somewhere, and each
//     resource class must finish its share within the makespan;
//   - the *mixed bound*: the area bound strengthened by the Cholesky
//     critical-path constraint (the chain of all p POTRFs, p−1 TRSMs and
//     p−1 SYRKs must execute sequentially);
//   - the *critical-path bound*: longest DAG path with per-task fastest
//     execution times;
//   - the *GEMM peak*: aggregate GEMM throughput of the machine, the
//     classical upper bound on performance the paper improves upon.
//
// Lower bounds on time are upper bounds on GFLOP/s; both views are exposed.
package bounds

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/lp"
	"repro/internal/platform"
)

// Result is a makespan lower bound together with the LP witness (when one
// exists): Assignment[r][t] is the number of tasks of kind t placed on
// resource class r by the optimal LP/ILP solution.
type Result struct {
	Name        string
	MakespanSec float64
	Assignment  map[int]map[graph.Kind]float64
}

// GFlops converts the bound into the corresponding performance upper bound
// for an algorithm with the given total flop count.
func (r Result) GFlops(flops float64) float64 {
	return platform.GFlops(flops, r.MakespanSec)
}

// group is one LP variable family: tasks of one kind at one tile size. For
// uniform DAGs (every Task.NB zero) the groups are exactly d.Kinds() and the
// LP below is coefficient-for-coefficient the flat per-kind formulation.
type group struct {
	Kind graph.Kind
	NB   int
}

// dagGroups enumerates the (kind, nb) pairs present in the DAG, ordered by
// size first (coarse nb = 0 groups leading, in d.Kinds() order) then kind, so
// uniform DAGs reduce to the historical per-kind variable layout.
func dagGroups(d *graph.DAG) ([]group, []float64) {
	kinds := d.Kinds()
	nbs := d.NBs()
	count := make(map[group]float64, len(kinds)*len(nbs))
	for _, t := range d.Tasks {
		count[group{t.Kind, t.NB}]++
	}
	gs := make([]group, 0, len(kinds)*len(nbs))
	cs := make([]float64, 0, len(kinds)*len(nbs))
	for _, nb := range nbs {
		for _, k := range kinds {
			if c := count[group{k, nb}]; c > 0 {
				gs = append(gs, group{k, nb})
				cs = append(cs, c)
			}
		}
	}
	return gs, cs
}

// runnableNB reports whether class r can execute kind at tile size nb — the
// size-aware counterpart of Class.CanRun, and identical to it at nb = 0 for
// the factorization kinds (conversion kinds are priced by the cost model, not
// the kernel tables).
func runnableNB(p *platform.Platform, r int, kind graph.Kind, nb int) bool {
	return !math.IsInf(p.TimeNB(r, kind, nb), 1)
}

// buildAreaLP constructs the area-bound linear program. Variable layout:
// n_rg for each class r and (kind, size) group g (row-major), then the
// makespan l last.
func buildAreaLP(d *graph.DAG, p *platform.Platform) (*lp.Problem, []group, int) {
	groups, counts := dagGroups(d)
	R := len(p.Classes)
	T := len(groups)
	nv := R*T + 1
	lVar := R * T

	c := make([]float64, nv)
	c[lVar] = 1
	prob := lp.NewProblem(c)

	v := func(r, t int) int { return r*T + t }

	// Each group fully assigned; unrunnable or empty classes pinned to zero.
	for gi, g := range groups {
		row := make([]float64, nv)
		for r := 0; r < R; r++ {
			if p.Classes[r].Count > 0 && runnableNB(p, r, g.Kind, g.NB) {
				row[v(r, gi)] = 1
			} else {
				zero := make([]float64, nv)
				zero[v(r, gi)] = 1
				prob.AddConstraint(zero, lp.EQ, 0)
			}
		}
		prob.AddConstraint(row, lp.EQ, counts[gi])
	}
	// Work per class fits in l × M_r.
	for r := 0; r < R; r++ {
		if p.Classes[r].Count == 0 {
			continue
		}
		row := make([]float64, nv)
		for gi, g := range groups {
			if runnableNB(p, r, g.Kind, g.NB) {
				row[v(r, gi)] = p.TimeNB(r, g.Kind, g.NB)
			}
		}
		row[lVar] = -float64(p.Classes[r].Count)
		prob.AddConstraint(row, lp.LE, 0)
	}
	return prob, groups, lVar
}

func solveBound(name string, prob *lp.Problem, groups []group, lVar int,
	p *platform.Platform, integer bool) (Result, error) {

	var sol *lp.Solution
	if integer {
		ints := make([]int, 0, lVar)
		for i := 0; i < lVar; i++ {
			ints = append(ints, i)
		}
		// The ILP is usually tiny, but on highly degenerate instances (e.g.
		// the uniform-speedup "related" platform, where the class rows are
		// proportional) branch and bound can wander across an equal-objective
		// plateau. The LP relaxation is itself a valid lower bound and is
		// within ~1e−3 relative of the integral value on those instances, so
		// on budget exhaustion we soundly fall back to it.
		s, err := lp.SolveInteger(prob, ints, 2000)
		if err != nil {
			sol = lp.Solve(prob)
			name += "(relaxed)"
		} else {
			sol = s
		}
	} else {
		sol = lp.Solve(prob)
	}
	if sol.Status != lp.Optimal {
		return Result{}, fmt.Errorf("bounds: %s LP is %v", name, sol.Status)
	}
	// The witness is aggregated over tile sizes: Assignment stays per-kind so
	// existing consumers (reports, plots) are size-agnostic.
	T := len(groups)
	asg := map[int]map[graph.Kind]float64{}
	for r := 0; r*T < lVar; r++ {
		asg[r] = map[graph.Kind]float64{}
		for gi, g := range groups {
			asg[r][g.Kind] += sol.X[r*T+gi]
		}
	}
	return Result{Name: name, MakespanSec: sol.X[lVar], Assignment: asg}, nil
}

// Area computes the area bound as an LP relaxation (a valid lower bound; the
// integral version is Tighter but the relaxation is what can be solved "on
// the fly" in a runtime — both are provided).
func Area(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	return solveBound("area", prob, kinds, lVar, p, false)
}

// AreaInt computes the area bound with integral task counts (the paper's
// n_rt ∈ ℕ formulation).
func AreaInt(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	return solveBound("area-int", prob, kinds, lVar, p, true)
}

// chainSpec describes the mandatory diagonal chain of a factorization: the
// DAG contains a path visiting every Diagonal-kind task, with Companions
// (one of each kind) between consecutive diagonal tasks. For Cholesky this
// is the paper's POTRF → TRSM → SYRK → POTRF chain; LU and QR have the
// analogous GETRF → TRSM → GEMM and GEQRT → TSQRT → TSMQR chains.
type chainSpec struct {
	Diagonal   graph.Kind
	Companions []graph.Kind
}

var chainSpecs = map[string]chainSpec{
	"cholesky": {graph.POTRF, []graph.Kind{graph.TRSM, graph.SYRK}},
	"lu":       {graph.GETRF, []graph.Kind{graph.TRSM, graph.GEMM}},
	"qr":       {graph.GEQRT, []graph.Kind{graph.TSQRT, graph.TSMQR}},
}

// addDiagonalChain appends the mixed-bound constraint: the diagonal chain —
// every diagonal-kind task, plus one of each companion kind between
// consecutive diagonal tasks at their fastest times — is a path of the DAG,
// so its sequential length bounds the makespan. For uniform Cholesky:
//
//	Σ_r n_rP·T_rP + (p−1)·T*_TRSM + (p−1)·T*_SYRK ≤ l
//
// Mixed-tile DAGs keep the chain property (the split refinement relinks the
// fine diagonal onto the coarse one through SPLIT tasks), with diagonal tasks
// in several size groups; companions are charged at the fastest time over
// the sizes present — sound because each chain leg contains at least one
// companion of *some* size.
func addDiagonalChain(prob *lp.Problem, d *graph.DAG, p *platform.Platform,
	groups []group, lVar int) error {

	spec, ok := chainSpecs[d.Algorithm]
	if !ok {
		return fmt.Errorf("bounds: no diagonal-chain spec for algorithm %q; use Area instead", d.Algorithm)
	}
	T := len(groups)
	row := make([]float64, lVar+1)
	diagCount := 0.0
	counts := d.CountByKind()
	found := false
	for gi, g := range groups {
		if g.Kind != spec.Diagonal {
			continue
		}
		found = true
		for r := range p.Classes {
			if runnableNB(p, r, g.Kind, g.NB) {
				row[r*T+gi] = p.TimeNB(r, g.Kind, g.NB)
			}
		}
	}
	if !found {
		return fmt.Errorf("bounds: DAG has no %v tasks; cannot apply the %s chain", spec.Diagonal, d.Algorithm)
	}
	diagCount = float64(counts[spec.Diagonal])
	row[lVar] = -1
	fixed := 0.0
	if diagCount > 1 {
		for _, c := range spec.Companions {
			// Fastest execution over the tile sizes this kind appears at.
			best := math.Inf(1)
			for _, g := range groups {
				if g.Kind != c {
					continue
				}
				if t := p.FastestTimeNB(c, g.NB); t < best {
					best = t
				}
			}
			if math.IsInf(best, 1) {
				best = p.FastestTime(c)
			}
			fixed += (diagCount - 1) * best
		}
	}
	prob.AddConstraint(row, lp.LE, -fixed)
	return nil
}

// Mixed computes the paper's mixed bound (LP relaxation).
func Mixed(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	if err := addDiagonalChain(prob, d, p, kinds, lVar); err != nil {
		return Result{}, err
	}
	r, err := solveBound("mixed", prob, kinds, lVar, p, false)
	return r, err
}

// MixedInt computes the mixed bound with integral task counts — the tightest
// bound of the paper, used in every comparison figure.
func MixedInt(d *graph.DAG, p *platform.Platform) (Result, error) {
	prob, kinds, lVar := buildAreaLP(d, p)
	if err := addDiagonalChain(prob, d, p, kinds, lVar); err != nil {
		return Result{}, err
	}
	r, err := solveBound("mixed-int", prob, kinds, lVar, p, true)
	return r, err
}

// CriticalPath computes the critical-path bound: the longest DAG path where
// each task is weighted by its fastest execution time over the platform.
func CriticalPath(d *graph.DAG, p *platform.Platform) (Result, error) {
	cp, _, err := d.CriticalPath(func(t *graph.Task) float64 {
		return p.FastestTimeNB(t.Kind, t.NB)
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Name: "critical-path", MakespanSec: cp}, nil
}

// GemmPeak computes the classical GEMM-peak bound for an algorithm with the
// given flop total: makespan ≥ flops / (aggregate GEMM throughput).
func GemmPeak(flops float64, p *platform.Platform, nb int) Result {
	peak := p.GemmPeakGFlops(kernels.GemmFlops(nb)) * 1e9 // flops/s
	return Result{Name: "gemm-peak", MakespanSec: flops / peak}
}

// All is the bundle of the four bounds of Figure 2 for one matrix size.
type All struct {
	P            int // tile count
	CriticalPath Result
	Area         Result
	Mixed        Result
	GemmPeak     Result
}

// Compute evaluates all four bounds for a Cholesky DAG of p tiles with tile
// size nb on the platform. Mixed and Area use the integral formulation.
func Compute(p int, nb int, pf *platform.Platform) (All, error) {
	d := graph.Cholesky(p)
	cp, err := CriticalPath(d, pf)
	if err != nil {
		return All{}, err
	}
	area, err := AreaInt(d, pf)
	if err != nil {
		return All{}, err
	}
	mixed, err := MixedInt(d, pf)
	if err != nil {
		return All{}, err
	}
	gp := GemmPeak(kernels.CholeskyFlops(p*nb), pf, nb)
	return All{P: p, CriticalPath: cp, Area: area, Mixed: mixed, GemmPeak: gp}, nil
}

// Best returns the tightest (largest) makespan lower bound of the bundle.
func (a All) Best() float64 {
	return math.Max(math.Max(a.CriticalPath.MakespanSec, a.Area.MakespanSec),
		math.Max(a.Mixed.MakespanSec, a.GemmPeak.MakespanSec))
}
