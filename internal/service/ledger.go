package service

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simulator"
)

// The run ledger is the service's flight recorder: a bounded in-memory
// store of recent simulate evaluations, each under a stable ID, keeping the
// full simulator result (and, for recorded runs, the obs event stream) so
// the trace and gap-attribution endpoints can reconstruct *why* a schedule
// looked the way it did after the fact. Capacity is a ring: the oldest
// entry is dropped when a new one would exceed it.

// RunEntry is one ledgered evaluation.
type RunEntry struct {
	ID        string
	CreatedAt time.Time
	Request   SimulateRequest
	Response  *SimulateResponse
	Result    *simulator.Result
	Recorder  *obs.Recorder // nil unless the request asked for decision recording
}

// RunSummary is the list-view projection of a ledger entry.
type RunSummary struct {
	ID          string  `json:"id"`
	CreatedAt   string  `json:"created_at"` // RFC 3339, UTC
	Platform    string  `json:"platform"`
	Scheduler   string  `json:"scheduler"`
	Algorithm   string  `json:"algorithm"`
	Tiles       int     `json:"tiles"`
	MakespanSec float64 `json:"makespan_sec"`
	Efficiency  float64 `json:"efficiency"`
	Recorded    bool    `json:"recorded"`
	Events      int     `json:"events,omitempty"`
}

// Ledger is a concurrency-safe bounded run store.
type Ledger struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []*RunEntry // oldest first
}

// NewLedger returns a ledger holding at most capacity runs (minimum 1).
func NewLedger(capacity int) *Ledger {
	if capacity < 1 {
		capacity = 1
	}
	return &Ledger{cap: capacity}
}

// Add stores a run and returns its assigned ID.
func (l *Ledger) Add(e *RunEntry) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.ID = fmt.Sprintf("run-%06d", l.seq)
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		// Drop the oldest; shift rather than reslice so the backing array
		// does not pin evicted results (and their recorders) alive.
		copy(l.entries, l.entries[1:])
		l.entries[len(l.entries)-1] = nil
		l.entries = l.entries[:len(l.entries)-1]
	}
	return e.ID
}

// Get returns the entry with the given ID, or false.
func (l *Ledger) Get(id string) (*RunEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// List returns summaries of all resident runs, newest first.
func (l *Ledger) List() []RunSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunSummary, 0, len(l.entries))
	for i := len(l.entries) - 1; i >= 0; i-- {
		out = append(out, summarize(l.entries[i]))
	}
	return out
}

// Len returns the number of resident runs.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

func summarize(e *RunEntry) RunSummary {
	return RunSummary{
		ID:          e.ID,
		CreatedAt:   e.CreatedAt.UTC().Format(time.RFC3339),
		Platform:    e.Request.Platform,
		Scheduler:   e.Response.Scheduler,
		Algorithm:   e.Response.Algorithm,
		Tiles:       e.Request.Tiles,
		MakespanSec: e.Response.MakespanSec,
		Efficiency:  e.Response.Efficiency,
		Recorded:    e.Recorder != nil,
		Events:      e.Recorder.Events(),
	}
}
