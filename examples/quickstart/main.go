// Quickstart: the three things this library does, in thirty lines.
//
//  1. Factorize a real SPD matrix in parallel and verify it.
//  2. Simulate the tiled Cholesky on the paper's heterogeneous machine
//     model under the dmdas scheduler.
//  3. Compare the achieved performance to the paper's mixed bound.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/simulator"
)

func main() {
	// 1. Real parallel factorization (pure-Go kernels, goroutine workers).
	a := matrix.RandSPD(512, 1)
	_, residual, err := core.Factorize(a, 64, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized 512×512 SPD matrix, residual %.2e\n", residual)

	// 2. Simulate a 16×16-tile Cholesky (N = 15360) on the Mirage model.
	p, err := core.NewPlatform("mirage-nocomm")
	if err != nil {
		log.Fatal(err)
	}
	s, err := core.NewScheduler("dmdas")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Simulate(context.Background(), 16, p, s, simulator.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare to the mixed bound (Section III of the paper).
	fmt.Printf("dmdas on mirage: %.0f GFLOP/s, mixed bound %.0f GFLOP/s (%.0f%% of bound)\n",
		rep.GFlops, rep.BoundGFlops, 100*rep.Efficiency)

	// Where is the headroom? Try the paper's static hint.
	hint, err := core.NewScheduler("trsm-cpu:7")
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := core.Simulate(context.Background(), 16, p, hint, simulator.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with TRSM triangle hint (k=7): %.0f GFLOP/s (%.0f%% of bound)\n",
		rep2.GFlops, 100*rep2.Efficiency)
}
