package kernels

import "repro/internal/matrix"

// TiledCholesky runs Algorithm 1 of the paper sequentially on a tiled
// matrix, overwriting it with the Cholesky factor. It is the sequential
// reference for the parallel runtime and the direct executable form of the
// task graph built by internal/graph.
func TiledCholesky(t *matrix.Tiled) error {
	p := t.P
	for k := 0; k < p; k++ {
		if err := Potrf(t.Tile(k, k)); err != nil {
			return err
		}
		for i := k + 1; i < p; i++ {
			Trsm(t.Tile(k, k), t.Tile(i, k))
		}
		for j := k + 1; j < p; j++ {
			Syrk(t.Tile(j, k), t.Tile(j, j))
			for i := j + 1; i < p; i++ {
				Gemm(t.Tile(i, k), t.Tile(j, k), t.Tile(i, j))
			}
		}
	}
	return nil
}
