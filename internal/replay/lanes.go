// Lane executor: event-level batched multi-seed replay.
//
// PR7's run-level batching dispatches one full event loop per genuinely
// distinct seed — exactly N loops for an N-seed jitter sweep, because jitter
// makes every seed distinct. The lane executor batches *inside* the loop:
// one simulator.Prep drives W seed-lanes whose mutable state lives in
// lane-major structure-of-arrays slabs (simulator.LaneBatch), a shared
// scheduler instance is Init'ed once for the whole batch when the proven
// SeedInvariant+PureAssign contracts allow (sched.Shareable), and each
// lane's jitter draws are precomputed algebraically (simulator.JitterRow)
// instead of seeding a generator per task — the dominant cost of a jitter
// run. The driver advances all live lanes in lockstep, one completion event
// per lane per sweep: one event loop advances the whole seed batch.
//
// On top of the batched advance, PR7's whole-run seed-invariance dedup is
// extended to mid-run granularity:
//
//   - merge: at sparse event-count boundaries, live lanes with equal full
//     state digests (simulator.LaneRun.StateDigest) and bit-identical
//     remaining jitter draws provably share their entire future; the later
//     lane stops and adopts the earlier lane's final Result.
//   - lazy split: when several lanes agree on every root-task draw, one
//     representative runs first with periodic snapshots and a start-order
//     trace; each follower finds the first start index where its draws
//     diverge and resumes from the latest snapshot before it, resimulating
//     only its divergent suffix.
//
// Both carry the same contract as every replay mechanism: per-seed Results
// bit-identical to serial simulation, enforced by the equivalence suite and
// FuzzLanes.
package replay

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/sweep"
)

// LaneOptions tunes the lane executor. The zero value picks defaults.
type LaneOptions struct {
	// SnapStride is the completion-event interval between representative
	// snapshots during a lazy-split pre-pass; 0 picks ~8 per run.
	SnapStride int
	// MergeStride is the completion-event interval between mid-run re-merge
	// digest checks; 0 picks ~2 per run, negative disables merging.
	MergeStride int
	// ForceSplit disables up-front grouping so provably identical lanes
	// still run as separate lanes — a testing knob that exercises the
	// mid-run merge and snapshot-resume machinery on convergent lanes.
	ForceSplit bool
	// NoResume disables the lazy-split snapshot-resume pre-pass.
	NoResume bool
}

// LaneStats reports which lane mechanisms fired for one batch.
type LaneStats struct {
	Lanes      int  // lanes entering the executor (one per seed)
	Simulated  int  // lanes that ran a full simulation from the start
	Cloned     int  // lanes answered up front with a clone of an identical lane
	Resumed    int  // lanes lazily split: resumed from a representative snapshot
	Merged     int  // lanes that re-merged onto a representative mid-run
	SharedInit bool // one scheduler instance served the whole batch
}

// laneSpec is one lane's inputs: its seed, its scheduler factory and, when
// the jitter model is active, its precomputed per-task draw row.
type laneSpec struct {
	seed int64
	mk   func() sched.Scheduler
	row  []float64
}

// Lanes runs one configuration across the seeds through the lane executor
// and returns per-seed Results in seed order, each bit-identical to serial
// simulation. It is the event-level counterpart of Seeds: use it when every
// seed genuinely simulates (the jitter-lane regime); Seeds' run-level path
// already collapses the degenerate cases.
func Lanes(ctx context.Context, d *graph.DAG, p *platform.Platform, mk func() sched.Scheduler, seeds []int64, opt simulator.Options, workers int, pool *Pool) ([]*simulator.Result, error) {
	res, _, err := LanesProbed(ctx, d, p, mk, seeds, opt, workers, pool, nil, LaneOptions{})
	return res, err
}

// RunLevelSeeds is the PR7-style run-level batch: one full event loop per
// seed, concurrent lanes over pooled arenas, fresh scheduler instances. It
// stays exported as the measured baseline the lane executor is gated
// against (cholbench sweep/jitter-lanes/*) and as the fallback for options
// the event-level batch does not compose with (per-run Recorder/Probe).
func RunLevelSeeds(ctx context.Context, d *graph.DAG, p *platform.Platform, mk func() sched.Scheduler, seeds []int64, opt simulator.Options, workers int, pool *Pool) ([]*simulator.Result, error) {
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		return nil, err
	}
	if pool == nil {
		pool = &Pool{}
	}
	return sweep.MapContext(ctx, seeds, workers, func(seed int64) (*simulator.Result, error) {
		o := opt
		o.Seed = seed
		a := pool.Get()
		r, runErr := pp.Run(ctx, mk(), o, a)
		pool.Put(a)
		return r, runErr
	})
}

// LanesProbed is Lanes with a progress probe (per-lane SourceLanes frames)
// and explicit options, also reporting which mechanisms fired.
func LanesProbed(ctx context.Context, d *graph.DAG, p *platform.Platform, mk func() sched.Scheduler, seeds []int64, opt simulator.Options, workers int, pool *Pool, probe *obs.Probe, lo LaneOptions) ([]*simulator.Result, *LaneStats, error) {
	if len(seeds) == 0 {
		return nil, &LaneStats{}, nil
	}
	if opt.Recorder != nil || opt.Probe != nil {
		// Per-run recording/probing needs every seed on its own serial run.
		res, err := RunLevelSeeds(ctx, d, p, mk, seeds, opt, workers, pool)
		if err != nil {
			return nil, nil, err
		}
		return res, &LaneStats{Lanes: len(seeds), Simulated: len(seeds)}, nil
	}
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		return nil, nil, err
	}
	if pool == nil {
		pool = &Pool{}
	}
	specs := make([]laneSpec, len(seeds))
	for i, s := range seeds {
		specs[i] = laneSpec{seed: s, mk: mk}
	}
	fillJitterRows(pp, p, opt, specs)
	stats := &LaneStats{}
	res, err := runLanes(ctx, pp, opt, specs, workers, pool, lo, probe, stats)
	if err != nil {
		return nil, nil, err
	}
	if probe != nil {
		probe.Emit(obs.Frame{
			Source: obs.SourceLanes, Done: int64(len(seeds)), Total: int64(len(seeds)),
			Final: true, LaneMerges: int64(stats.Merged), DedupHits: int64(stats.Cloned),
		})
	}
	return res, stats, nil
}

// fillJitterRows precomputes each spec's per-task jitter draw row when the
// jitter model is active; rows stay nil otherwise. One flat backing array —
// rows are lane-major stripes of it.
func fillJitterRows(pp *simulator.Prep, p *platform.Platform, opt simulator.Options, specs []laneSpec) {
	if !jitterActive(p, opt) {
		return
	}
	n := len(pp.DAG().Tasks)
	flat := make([]float64, n*len(specs))
	for i := range specs {
		row := flat[i*n : (i+1)*n : (i+1)*n]
		simulator.JitterRow(specs[i].seed, row)
		specs[i].row = row
	}
}

// rowHash folds a jitter row for duplicate-group candidate lookup.
func rowHash(row []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range row {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return h
}

func rowsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] { //chollint:floateq bit-identity is the grouping criterion
			return false
		}
	}
	return true
}

// laneProgress serializes per-lane probe emissions for one batch.
type laneProgress struct {
	mu     sync.Mutex
	probe  *obs.Probe
	done   int64
	total  int64
	merges int64
}

// laneFinished reports one more finished lane; emits a SourceLanes frame at
// the probe's cadence.
func (p *laneProgress) laneFinished(lane, liveInShard int) {
	if p == nil || p.probe == nil {
		return
	}
	p.mu.Lock()
	p.done++
	if p.probe.Due(p.done) {
		p.probe.Emit(obs.Frame{
			Source: obs.SourceLanes, Done: p.done, Total: p.total,
			Lane: lane, LiveLanes: liveInShard, LaneMerges: p.merges,
		})
	}
	p.mu.Unlock()
}

func (p *laneProgress) addMerges(n int) {
	if p == nil || p.probe == nil {
		return
	}
	p.mu.Lock()
	p.merges += int64(n)
	p.mu.Unlock()
}

// runLanes is the executor core over a shared Prep: group provably identical
// lanes, shard the representatives across workers, advance each shard's
// lanes through one lockstep event loop, then materialize clones.
func runLanes(ctx context.Context, pp *simulator.Prep, opt simulator.Options, specs []laneSpec, workers int, pool *Pool, lo LaneOptions, probe *obs.Probe, stats *LaneStats) ([]*simulator.Result, error) {
	n := len(specs)
	stats.Lanes = n
	s0 := specs[0].mk()
	seedInv := sched.IsSeedInvariant(s0)
	share := sched.Shareable(s0)
	stats.SharedInit = share

	// Group lanes whose runs provably cannot differ: seed invariance makes
	// the Init seed immaterial, so equal jitter rows (or no jitter at all)
	// mean equal runs. Non-seed-invariant policies never group — the PR7
	// conservatism: their Name() need not identify the whole policy.
	rep := make([]int, n)
	for i := range rep {
		rep[i] = i
	}
	if seedInv && !lo.ForceSplit {
		if specs[0].row == nil {
			for i := 1; i < n; i++ {
				rep[i] = 0
			}
		} else {
			byHash := make(map[uint64][]int, n)
			for i := range specs {
				h := rowHash(specs[i].row)
				for _, j := range byHash[h] {
					if rowsEqual(specs[i].row, specs[j].row) {
						rep[i] = j
						break
					}
				}
				if rep[i] == i {
					byHash[h] = append(byHash[h], i)
				}
			}
		}
	}
	var reps []int
	for i := range rep {
		if rep[i] == i {
			reps = append(reps, i)
		}
	}
	stats.Cloned = n - len(reps)

	// One scheduler instance for the whole batch when the contracts allow:
	// Init once (bottom levels and priority tables computed once, not per
	// lane), read-only thereafter by PureAssign — safe across shards.
	var sharedS sched.Scheduler
	if share {
		sharedS = s0
		sharedS.Init(pp.DAG(), pp.Platform(), specs[reps[0]].seed)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nShards := workers
	if nShards > len(reps) {
		nShards = len(reps)
	}
	shards := make([][]int, nShards)
	for k, gi := range reps {
		shards[k%nShards] = append(shards[k%nShards], gi)
	}

	prog := &laneProgress{probe: probe, total: int64(n)}
	results := make([]*simulator.Result, n)
	var statsMu sync.Mutex
	// Each shard writes disjoint results slots; MapContext supplies the
	// goroutines, ordering and first-error semantics.
	_, err := sweep.MapContext(ctx, shards, nShards, func(shard []int) (struct{}, error) {
		local := LaneStats{}
		err := runLaneShard(ctx, pp, opt, specs, shard, share, sharedS, lo, pool, results, &local, prog)
		statsMu.Lock()
		stats.Simulated += local.Simulated
		stats.Resumed += local.Resumed
		stats.Merged += local.Merged
		statsMu.Unlock()
		return struct{}{}, err
	})
	if err != nil {
		return nil, err
	}
	for i := range specs {
		if rep[i] != i {
			results[i] = results[rep[i]].Clone()
		}
	}
	return results, nil
}

// laneSnapDefault and laneMergeDefault pick snapshot/merge cadences from the
// task count: ~8 snapshots and ~2 merge checks per run.
func laneSnapDefault(nTasks int) int {
	s := nTasks / 8
	if s < 1 {
		s = 1
	}
	return s
}

func laneMergeDefault(nTasks int) int {
	s := nTasks / 2
	if s < 32 {
		s = 32
	}
	return s
}

// anyRootAgreement reports whether some follower row agrees with the base
// row on every root task — the draws consumed before the first snapshot
// boundary. When no follower does, every lazy split would degenerate to a
// scratch run and the representative's snapshot overhead buys nothing.
func anyRootAgreement(d *graph.DAG, base []float64, specs []laneSpec, shard []int) bool {
	for _, gi := range shard[1:] {
		row := specs[gi].row
		ok := true
		for _, t := range d.Tasks {
			if len(t.Pred) == 0 && row[t.ID] != base[t.ID] { //chollint:floateq bit-identity gate
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// runLaneShard advances one shard's lanes: an optional lazy-split pre-pass
// (representative with snapshots, followers resumed at their divergence
// points), then the lockstep loop with mid-run merge checks.
func runLaneShard(ctx context.Context, pp *simulator.Prep, opt simulator.Options, specs []laneSpec, shard []int, share bool, sharedS sched.Scheduler, lo LaneOptions, pool *Pool, results []*simulator.Result, stats *LaneStats, prog *laneProgress) error {
	nTasks := len(pp.DAG().Tasks)
	lb := pool.GetBatch()
	defer pool.PutBatch(lb)
	lb.Bind(pp, len(shard))

	for li, gi := range shard {
		lr := lb.Lane(li)
		o := opt
		o.Seed = specs[gi].seed
		s := sharedS
		if !share {
			s = specs[gi].mk()
		}
		lr.Reset(s, o, share)
		if specs[gi].row != nil {
			lr.SetJitterRow(specs[gi].row)
		}
	}

	live := make([]bool, len(shard))
	begun := make([]bool, len(shard))
	resumed := make([]bool, len(shard))
	for li := range shard {
		live[li] = true
	}
	liveCount := len(shard)
	// alias[li] ≥ 0: lane li merged onto that (lower) lane index.
	alias := make([]int, len(shard))
	for li := range alias {
		alias[li] = -1
	}

	finishLane := func(li int) error {
		res, err := lb.Lane(li).Finalize()
		if err != nil {
			return err
		}
		results[shard[li]] = res
		live[li] = false
		liveCount--
		if !resumed[li] {
			stats.Simulated++
		}
		prog.laneFinished(shard[li], liveCount)
		return nil
	}

	// Lazy-split pre-pass: only when a follower can actually reuse a prefix
	// (root-draw agreement), so genuinely jittered batches skip the
	// snapshot overhead entirely.
	if share && !lo.NoResume && len(shard) > 1 && specs[shard[0]].row != nil &&
		anyRootAgreement(pp.DAG(), specs[shard[0]].row, specs, shard) {
		base := lb.Lane(0)
		base.RecordStarts()
		base.Begin()
		begun[0] = true
		snapStride := lo.SnapStride
		if snapStride <= 0 {
			snapStride = laneSnapDefault(nTasks)
		}
		var snaps []*simulator.Snapshot
		for {
			if base.Done()%snapStride == 0 {
				snaps = append(snaps, base.Snapshot())
			}
			if base.Done()%cancelStrideLanes == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("replay: lane batch cancelled: %w", err)
				}
			}
			if !base.Step() {
				break
			}
		}
		if err := finishLane(0); err != nil {
			return err
		}
		order := base.StartOrder()
		baseRow := specs[shard[0]].row
		for li := 1; li < len(shard); li++ {
			row := specs[shard[li]].row
			k := 0
			for k < len(order) && row[order[k]] == baseRow[order[k]] { //chollint:floateq bit-identity gate
				k++
			}
			if k == 0 {
				continue // diverges at the first start: scratch run
			}
			var best *simulator.Snapshot
			for _, sn := range snaps {
				if sn.Started > k {
					break
				}
				best = sn
			}
			if best == nil {
				continue
			}
			lr := lb.Lane(li)
			lr.Restore(best)
			begun[li] = true
			resumed[li] = true
			stats.Resumed++
		}
	}

	for li := range shard {
		if live[li] && !begun[li] {
			lb.Lane(li).Begin()
		}
	}

	mergeStride := lo.MergeStride
	if mergeStride == 0 {
		mergeStride = laneMergeDefault(nTasks)
	}
	mergeOn := share && mergeStride > 0

	// The lockstep loop: one completion event per live lane per sweep.
	sweepN := 0
	var mergedNow []int
	for liveCount > 0 {
		if sweepN%8 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("replay: lane batch cancelled: %w", err)
			}
		}
		sweepN++
		for li := range shard {
			if !live[li] {
				continue
			}
			if !lb.Lane(li).Step() {
				if err := finishLane(li); err != nil {
					return err
				}
			}
		}
		if mergeOn && liveCount > 1 {
			mergedNow = tryMerge(lb, shard, live, alias, mergeStride, mergedNow[:0])
			if len(mergedNow) > 0 {
				liveCount -= len(mergedNow)
				stats.Merged += len(mergedNow)
				prog.addMerges(len(mergedNow))
				for _, li := range mergedNow {
					prog.laneFinished(shard[li], liveCount)
				}
			}
		}
	}

	// Materialize merged lanes from their surviving representative, chasing
	// alias chains (a lane may merge onto a lane that itself merged).
	for li := range shard {
		if alias[li] < 0 {
			continue
		}
		t := li
		for alias[t] >= 0 {
			t = alias[t]
		}
		results[shard[li]] = results[shard[t]].Clone()
	}
	return nil
}

// cancelStrideLanes mirrors the serial loop's cancellation cadence during
// the lazy-split pre-pass, in completion events of the representative.
const cancelStrideLanes = 32

// tryMerge performs one re-merge check: live lanes at a merge boundary with
// equal (done, state-digest) keys and bit-identical future jitter draws
// cannot diverge again — the later lane stops and adopts the earlier one.
// Appends the merged lane indices to out and returns it.
func tryMerge(lb *simulator.LaneBatch, shard []int, live []bool, alias []int, mergeStride int, out []int) []int {
	type key struct {
		done   int
		digest uint64
	}
	var first map[key]int
	for li := range shard {
		if !live[li] {
			continue
		}
		lr := lb.Lane(li)
		if lr.Done()%mergeStride != 0 || !lr.Pending() {
			continue
		}
		if first == nil {
			first = make(map[key]int, len(shard))
		}
		k := key{done: lr.Done(), digest: lr.StateDigest()}
		if canon, ok := first[k]; ok {
			if lb.Lane(canon).FutureJitterEqual(lr) {
				alias[li] = canon
				live[li] = false
				out = append(out, li)
				continue
			}
		} else {
			first[k] = li
		}
	}
	return out
}
