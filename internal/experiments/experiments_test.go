package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/stats"
)

func quickCfg() Config { return Quick() }

func TestTableIValues(t *testing.T) {
	tbl := TableI(quickCfg())
	want := []float64{2, 11, 26, 29}
	for i, w := range want {
		if math.Abs(tbl.Series[0].Values[i]-w) > 1e-9 {
			t.Fatalf("kernel %d speedup %g, want %g", i, tbl.Series[0].Values[i], w)
		}
	}
}

func TestTableKMatchesPaper(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8, 12, 16, 20, 24, 28, 32}
	tbl := TableK(cfg)
	want := []float64{17.30, 22.30, 24.30, 25.38, 26.06, 26.52, 26.86, 27.11}
	for i, w := range want {
		if math.Abs(tbl.Series[0].Values[i]-w) > 0.005 {
			t.Fatalf("K(%d) = %.4f, want %.2f", cfg.Sizes[i], tbl.Series[0].Values[i], w)
		}
	}
}

func TestFig2ShapesHold(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{2, 4, 8, 16, 32}
	tbl, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range cfg.Sizes {
		mixed, area, peak := series["mixed bound"][i], series["area bound"][i], series["gemm peak"][i]
		if mixed > area+1e-6 || area > peak+1e-6 {
			t.Fatalf("i=%d: bound ordering violated: mixed %g area %g peak %g", i, mixed, area, peak)
		}
	}
	// GEMM peak flat at ≈960.
	for _, v := range series["gemm peak"] {
		if math.Abs(v-960) > 1 {
			t.Fatalf("gemm peak %g", v)
		}
	}
	// Mixed bound approaches the peak at n=32 (≥80 %) and is far below at n=2.
	last := len(cfg.Sizes) - 1
	if series["mixed bound"][last] < 0.8*series["gemm peak"][last] {
		t.Fatal("mixed bound too low at n=32")
	}
	if series["mixed bound"][0] > 0.5*series["gemm peak"][0] {
		t.Fatal("mixed bound should be far below peak at n=2")
	}
}

func TestFig4SchedulersBelowBound(t *testing.T) {
	cfg := quickCfg()
	tbl, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range cfg.Sizes {
		for _, name := range []string{"random", "dmda", "dmdas"} {
			if series[name][i] > series["mixed bound"][i]+1e-6 {
				t.Fatalf("%s above mixed bound at i=%d", name, i)
			}
		}
		if series["random"][i] > series["dmda"][i]+1e-6 {
			t.Fatalf("random should not beat dmda (homogeneous, i=%d)", i)
		}
	}
}

func TestFig7GapShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	tbl, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range cfg.Sizes {
		// The paper's central observation: schedulers never beat the bound,
		// random loses badly on heterogeneous platforms.
		best := math.Max(series["dmda"][i], series["dmdas"][i])
		if best > series["mixed bound"][i]*(1+1e-9) {
			t.Fatal("scheduler above bound")
		}
		if series["random"][i] > best {
			t.Fatal("random should lose on heterogeneous")
		}
	}
	// Gap at n=8 is significant (≥10 %). (At n=4 the chain dominates the DAG
	// and our dmdas reaches the bound exactly.)
	if series["dmdas"][1] > 0.9*series["mixed bound"][1] {
		t.Fatalf("expected a significant gap at n=8: dmdas %g vs bound %g",
			series["dmdas"][1], series["mixed bound"][1])
	}
}

func TestFig5RelatedEasier(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{8}
	rel, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unrel, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	relMap := map[string][]float64{}
	for _, s := range rel.Series {
		relMap[s.Name] = s.Values
	}
	unrelMap := map[string][]float64{}
	for _, s := range unrel.Series {
		unrelMap[s.Name] = s.Values
	}
	gapRel := relMap["dmdas"][0] / relMap["mixed bound"][0]
	gapUnrel := unrelMap["dmdas"][0] / unrelMap["mixed bound"][0]
	if gapRel < gapUnrel-0.05 {
		t.Fatalf("related case should be no harder: rel %.3f vs unrel %.3f", gapRel, gapUnrel)
	}
}

func TestFig8ScaledBoundMatchesUnrelated(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	f8, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var scaled, unrel []float64
	for _, s := range f8.Series {
		if s.Name == "mixed bound" {
			scaled = s.Values
		}
	}
	for _, s := range f7.Series {
		if s.Name == "mixed bound" {
			unrel = s.Values
		}
	}
	for i := range scaled {
		if math.Abs(scaled[i]-unrel[i]) > 1e-6*unrel[i] {
			t.Fatalf("scaled related bound %g != unrelated bound %g", scaled[i], unrel[i])
		}
	}
}

func TestFig3OverheadBelowFig4(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	cfg.Runs = 2
	f3, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "a slight increase in performance, since we have removed the runtime
	// overhead": simulated dmda ≥ actual dmda (tolerating jitter noise).
	var act, sim []float64
	for _, s := range f3.Series {
		if s.Name == "dmda" {
			act = s.Values
		}
	}
	for _, s := range f4.Series {
		if s.Name == "dmda" {
			sim = s.Values
		}
	}
	for i := range act {
		if act[i] > sim[i]*1.05 {
			t.Fatalf("actual %g above simulated %g", act[i], sim[i])
		}
	}
}

func TestFig9Rendering(t *testing.T) {
	out := Fig9(8, 3)
	if !strings.Contains(out, "C") || !strings.Contains(out, "g") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 8 rows + legend.
	if len(lines) != 10 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Row i has i+1 tiles → last data row has 8 entries.
	if got := len(strings.Fields(lines[8])); got != 8 {
		t.Fatalf("last row has %d tiles", got)
	}
}

func TestFig10StaticKnowledgeWins(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 6, 8}
	cfg.CPMaxTiles = 5
	tbl, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range cfg.Sizes {
		if series["triangle trsms on cpu"][i] < series["dmdas"][i]-1e-6 {
			t.Fatalf("i=%d: best triangle hint %g worse than plain dmdas %g",
				i, series["triangle trsms on cpu"][i], series["dmdas"][i])
		}
		if series["dmdas"][i] > series["mixed bound"][i]*(1+1e-9) {
			t.Fatal("dmdas above bound")
		}
	}
	// CP columns present for n ≤ CPMaxTiles, NaN beyond.
	if math.IsNaN(series["CP solution"][0]) {
		t.Fatal("CP missing at n=4")
	}
	if !math.IsNaN(series["CP solution"][2]) {
		t.Fatal("CP should be NaN at n=8 with CPMaxTiles=5")
	}
	// CP-in-simulation within 1 % of CP value (paper's <1 % claim).
	for i := range cfg.Sizes {
		v, s := series["CP solution"][i], series["CP in simulation"][i]
		if math.IsNaN(v) {
			continue
		}
		if math.Abs(v-s)/v > 0.01 {
			t.Fatalf("CP %g vs injected %g differ by more than 1%%", v, s)
		}
	}
}

func TestMappingOnlyDoesNotRecoverCP(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{5}
	cfg.CPMaxTiles = 5
	tbl, err := MappingOnly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	if series["CP full injection"][0] < series["CP mapping only"][0]-1e-6 &&
		series["CP full injection"][0] < series["dmdas"][0]-1e-6 {
		t.Fatal("full CP injection should not be the worst")
	}
}

func TestGemmSyrkHintMarginal(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{8}
	tbl, err := GemmSyrkHint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := tbl.Series[0].Values[0]
	hinted := tbl.Series[1].Values[0]
	// The paper: improvement "not significant". Allow ±15 %.
	if hinted < plain*0.85 || hinted > plain*1.15 {
		t.Fatalf("hint effect too large: plain %g hinted %g", plain, hinted)
	}
}

func TestFig12Output(t *testing.T) {
	out, err := Fig12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dmda") || !strings.Contains(out, "dmdas") {
		t.Fatal("missing scheduler sections")
	}
	if !strings.Contains(out, "GPU idle fraction") {
		t.Fatal("missing idle stats")
	}
	if strings.Count(out, "gpu0") != 2 {
		t.Fatal("expected gpu0 lane in both traces")
	}
}

func TestFig12SVG(t *testing.T) {
	svgs, err := Fig12SVG(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(svgs) != 2 {
		t.Fatalf("got %d SVGs", len(svgs))
	}
	for name, svg := range svgs {
		if !strings.Contains(svg, "<svg") {
			t.Fatalf("%s: not SVG", name)
		}
	}
}

func TestTransferAblation(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{8}
	tbl, err := TransferAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aware := tbl.Series[0].Values[0]
	blind := tbl.Series[1].Values[0]
	if aware <= 0 || blind <= 0 {
		t.Fatal("non-positive results")
	}
}

func TestBestTriangleKInRange(t *testing.T) {
	cfg := quickCfg()
	n := 10
	k, g, err := BestTriangleK(cfg, n, unrelatedSimPlatform(n), false)
	if err != nil {
		t.Fatal(err)
	}
	if k < 0 || k >= n {
		t.Fatalf("best k = %d out of range", k)
	}
	if g <= 0 {
		t.Fatal("non-positive GFLOP/s")
	}
}

func TestBestTriangleKPaperRange(t *testing.T) {
	// The paper: "best performance when all the TRSM kernels which are more
	// than 6-8 tiles away from the diagonal are forced on CPUs", and the
	// hint strictly beats dmdas on medium matrices.
	cfg := quickCfg()
	n := 16
	p := unrelatedSimPlatform(n)
	k, g, err := BestTriangleK(cfg, n, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if k < 5 || k > 9 {
		t.Fatalf("best k = %d, paper reports 6-8", k)
	}
	d := graph.Cholesky(n)
	plain, err := simGFlops(context.Background(), d, p, sched.NewDMDAS(), cfg.NB, simulator.Options{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if g <= plain {
		t.Fatalf("triangle hint %g should strictly beat dmdas %g at n=16", g, plain)
	}
}

func TestRegistryRunsQuickExperiments(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{2, 4}
	cfg.Runs = 2
	cfg.CPMaxTiles = 4
	cfg.CPBudget = 2000
	cfg.RealSizes = []int{2}
	cfg.RealNB = 16
	for _, id := range []string{"table1", "tablek", "fig2", "fig9", "fig12"} {
		r, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if out == "" {
			t.Fatalf("%s: empty output", id)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestFig3RealSmall(t *testing.T) {
	cfg := quickCfg()
	cfg.RealSizes = []int{2, 3}
	cfg.RealNB = 16
	cfg.Runs = 2
	tbl, err := Fig3Real(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 {
		t.Fatalf("got %d series", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Fatalf("%s[%d] = %g", s.Name, i, v)
			}
		}
	}
}

func TestCalibrationReport(t *testing.T) {
	tbl := CalibrationReport(16, 1)
	for _, v := range tbl.Series[0].Values {
		if v <= 0 {
			t.Fatal("non-positive calibrated GFLOP/s")
		}
	}
}

func TestGemmPeakValue(t *testing.T) {
	if g := GemmPeakGFlops(Default()); math.Abs(g-960) > 1 {
		t.Fatalf("GEMM peak %g", g)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := Default()
	if len(cfg.Sizes) != 16 || cfg.Sizes[0] != 2 || cfg.Sizes[15] != 32 {
		t.Fatalf("Sizes = %v", cfg.Sizes)
	}
	if cfg.Runs != 10 || cfg.NB != 960 {
		t.Fatal("defaults drifted from the paper's setup")
	}
}

func TestOtherFactorizationsShapes(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	tbl, err := OtherFactorizations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for _, alg := range []string{"lu", "qr"} {
		for i := range cfg.Sizes {
			perf, bound := series[alg+" dmdas"][i], series[alg+" mixed bound"][i]
			if perf <= 0 || bound <= 0 {
				t.Fatalf("%s: non-positive values", alg)
			}
			if perf > bound*(1+1e-9) {
				t.Fatalf("%s: dmdas %g above mixed bound %g", alg, perf, bound)
			}
		}
	}
}

func TestCommAwareCPNoWorse(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 5}
	cfg.CPMaxTiles = 5
	tbl, err := CommAwareCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range tbl.Xs {
		if series["CP comm-aware"][i] <= 0 || series["CP oblivious"][i] <= 0 {
			t.Fatal("non-positive CP results")
		}
	}
}

func TestAlgoFlops(t *testing.T) {
	if algoFlops("lu", 2, 3) != 2*216.0/3 {
		t.Fatal("lu flops")
	}
	if algoFlops("qr", 2, 3) != 4*216.0/3 {
		t.Fatal("qr flops")
	}
	if algoFlops("cholesky", 1, 4) <= 0 {
		t.Fatal("cholesky flops")
	}
}

func TestFig1DOT(t *testing.T) {
	out := Fig1(quickCfg())
	if !strings.Contains(out, "digraph cholesky") || !strings.Contains(out, "GEMM_4_2_1") {
		t.Fatalf("Fig1 DOT incomplete:\n%.200s", out)
	}
	if strings.Count(out, "POTRF_") < 5 {
		t.Fatal("expected 5 POTRF nodes")
	}
}

func TestWorkStealingExperiment(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{8}
	cfg.Runs = 3
	tbl, err := WorkStealing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	// Stealing recovers part of random's imbalance but not dmda's affinity.
	if series["random+ws"][0] < series["random"][0] {
		t.Fatal("stealing made random worse")
	}
	if series["random+ws"][0] > series["dmda"][0] {
		t.Fatal("stealing should not beat data-aware dmda")
	}
}

func TestMemorySweepShape(t *testing.T) {
	cfg := quickCfg()
	tbl, err := MemorySweep(cfg, 12, []int{6, 24, 0})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	if series["evictions"][0] <= series["evictions"][1] {
		t.Fatal("smaller memory should evict more")
	}
	if series["evictions"][2] != 0 {
		t.Fatal("unlimited memory must not evict")
	}
}

func TestTileSizeSweepInteriorOptimum(t *testing.T) {
	cfg := quickCfg()
	tbl, err := TileSizeSweep(cfg, 7680, []int{120, 480, 960, 3840, 7680})
	if err != nil {
		t.Fatal(err)
	}
	vals := tbl.Series[0].Values
	best, bestIdx := 0.0, -1
	for i, v := range vals {
		if v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx == 0 || bestIdx == len(vals)-1 {
		t.Fatalf("optimum at extreme index %d", bestIdx)
	}
}

func TestBandedShape(t *testing.T) {
	cfg := quickCfg()
	tbl, err := Banded(cfg, 16, []int{1, 4, 15})
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range tbl.Xs {
		if series["dmdas"][i] > series["mixed bound"][i]*(1+1e-9) {
			t.Fatal("banded dmdas above bound")
		}
	}
	// bw=1 is the pure chain: dmdas achieves the bound.
	if series["dmdas"][0] < series["mixed bound"][0]*0.999 {
		t.Fatalf("bw=1 should hit the chain bound: %g vs %g",
			series["dmdas"][0], series["mixed bound"][0])
	}
	// Wider band ⇒ more absolute performance.
	if !(series["dmdas"][2] > series["dmdas"][1] && series["dmdas"][1] > series["dmdas"][0]) {
		t.Fatal("performance should grow with bandwidth")
	}
}

func TestDistributedExperiment(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{8}
	tbl, err := Distributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for name, v := range series {
		if v[0] <= 0 {
			t.Fatalf("%s non-positive", name)
		}
	}
	bound := series["mixed bound (flat)"][0]
	for _, name := range []string{"owner 1D row-cyclic", "owner 2D block-cyclic", "dynamic"} {
		if series[name][0] > bound*(1+1e-9) {
			t.Fatalf("%s above the flat bound", name)
		}
	}
}

func TestDagFlopsMatchesClosedFormOnDense(t *testing.T) {
	d := graph.Cholesky(6)
	got := dagFlops(d, 960)
	want := flops(6, 960)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("dagFlops %g vs closed form %g", got, want)
	}
}

func TestBatchedThroughputGain(t *testing.T) {
	tbl, err := Batched(quickCfg(), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	v := tbl.Series[0].Values
	if v[1] <= v[0] {
		t.Fatalf("batching should raise aggregate throughput: %g vs %g", v[1], v[0])
	}
}

func TestFig6ActualShapes(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	cfg.Runs = 2
	tbl, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	sigmas := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
		sigmas[s.Name] = s.Sigmas
	}
	for i := range cfg.Sizes {
		if series["random"][i] > series["dmda"][i] {
			t.Fatal("random should lose in actual mode")
		}
	}
	// Actual-mode runs must report run-to-run spread.
	anySigma := false
	for _, sg := range sigmas["dmda"] {
		if sg > 0 {
			anySigma = true
		}
	}
	if !anySigma {
		t.Fatal("no standard deviations reported for actual-mode runs")
	}
}

func TestFig11HintNeverLoses(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{4, 8}
	cfg.Runs = 2
	tbl, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for i := range cfg.Sizes {
		if series["triangle trsms on cpu"][i] < series["dmdas"][i]*0.98 {
			t.Fatalf("i=%d: hint %g notably below dmdas %g",
				i, series["triangle trsms on cpu"][i], series["dmdas"][i])
		}
	}
}

func TestPrioritySourceBothRun(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{6}
	tbl, err := PrioritySource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatal("want two variants")
	}
	for _, s := range tbl.Series {
		if s.Values[0] <= 0 {
			t.Fatalf("%s produced no result", s.Name)
		}
	}
}

func TestVariantsIdenticalPerformance(t *testing.T) {
	cfg := quickCfg()
	cfg.Sizes = []int{6}
	tbl, err := Variants(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The finding: dataflow inference makes the variants isomorphic.
	if tbl.Series[0].Values[0] != tbl.Series[1].Values[0] {
		t.Fatalf("variants diverge: %g vs %g",
			tbl.Series[0].Values[0], tbl.Series[1].Values[0])
	}
}

func TestSimulationFidelityRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.RealSizes = []int{2, 3}
	cfg.RealNB = 24
	cfg.Runs = 3
	tbl, err := SimulationFidelity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	for _, s := range tbl.Series {
		series[s.Name] = s.Values
	}
	for _, name := range []string{"real", "simulated"} {
		for i, v := range series[name] {
			if v <= 0 {
				t.Fatalf("%s[%d] = %g", name, i, v)
			}
		}
	}
	// Loose envelope: calibrated simulation within 20× of reality even on a
	// noisy single-CPU container (the methodology, not micro-accuracy).
	for i := range series["real"] {
		ratio := series["simulated"][i] / series["real"][i]
		if ratio < 0.05 || ratio > 20 {
			t.Fatalf("fidelity ratio %g out of envelope", ratio)
		}
	}
}

// TestBatchMatchesSerialExperiments: cfg.Batch is a throughput knob only —
// the jitter-averaged studies (Fig6's overhead substitute, the
// work-stealing ablation) must render identical tables with the batched
// replay engine on or off, down to the last digit of every mean and σ.
func TestBatchMatchesSerialExperiments(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   func(Config) (*stats.Table, error)
	}{
		{"fig6", Fig6},
		{"workstealing", WorkStealing},
	} {
		t.Run(run.name, func(t *testing.T) {
			serialCfg := quickCfg()
			serialCfg.Batch = false
			serial, err := run.fn(serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			batchCfg := quickCfg()
			batchCfg.Batch = true
			batched, err := run.fn(batchCfg)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Render() != batched.Render() {
				t.Errorf("batched table differs from serial:\n--- serial ---\n%s\n--- batched ---\n%s",
					serial.Render(), batched.Render())
			}
		})
	}
}
