package graph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCholeskyTaskCounts(t *testing.T) {
	for p := 1; p <= 12; p++ {
		d := Cholesky(p)
		c := d.CountByKind()
		wantP := p
		wantT := p * (p - 1) / 2
		wantS := p * (p - 1) / 2
		wantG := p * (p - 1) * (p - 2) / 6
		if c[POTRF] != wantP || c[TRSM] != wantT || c[SYRK] != wantS || c[GEMM] != wantG {
			t.Fatalf("p=%d: counts %v, want POTRF=%d TRSM=%d SYRK=%d GEMM=%d",
				p, c, wantP, wantT, wantS, wantG)
		}
		if len(d.Tasks) != wantP+wantT+wantS+wantG {
			t.Fatalf("p=%d: total %d", p, len(d.Tasks))
		}
	}
}

func TestCholeskyFigure1Size(t *testing.T) {
	// Figure 1 of the paper: 5×5 tiles ⇒ 35 tasks (5+10+10+10).
	d := Cholesky(5)
	if len(d.Tasks) != 35 {
		t.Fatalf("5×5 Cholesky has %d tasks, want 35", len(d.Tasks))
	}
}

func TestCholeskyValid(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 16} {
		if err := Cholesky(p).Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCholeskySingleRootAndExit(t *testing.T) {
	d := Cholesky(6)
	roots := d.Roots()
	if len(roots) != 1 || d.Tasks[roots[0]].Kind != POTRF || d.Tasks[roots[0]].K != 0 {
		t.Fatalf("expected single root POTRF_0, got %v", roots)
	}
	var exits []int
	for _, tk := range d.Tasks {
		if len(tk.Succ) == 0 {
			exits = append(exits, tk.ID)
		}
	}
	if len(exits) != 1 || d.Tasks[exits[0]].Kind != POTRF || d.Tasks[exits[0]].K != 5 {
		t.Fatalf("expected single exit POTRF_5, got %v", exits)
	}
}

func TestCholeskyPotrfChainIsPath(t *testing.T) {
	// The paper uses the fact that all p POTRF tasks lie on a single path
	// POTRF_k → TRSM_{k+1,k} → SYRK_{k+1,k} → POTRF_{k+1}.
	d := Cholesky(8)
	byName := map[string]*Task{}
	for _, tk := range d.Tasks {
		byName[tk.Name()] = tk
	}
	reach := func(from, to *Task) bool {
		seen := map[int]bool{from.ID: true}
		stack := []int{from.ID}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if id == to.ID {
				return true
			}
			for _, s := range d.Tasks[id].Succ {
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}
	for k := 0; k < 7; k++ {
		a := byName[taskName(POTRF, -1, -1, k)]
		b := byName[taskName(POTRF, -1, -1, k+1)]
		if a == nil || b == nil {
			t.Fatal("missing POTRF task")
		}
		if !reach(a, b) {
			t.Fatalf("POTRF_%d does not reach POTRF_%d", k, k+1)
		}
	}
}

func taskName(kind Kind, i, j, k int) string {
	return (&Task{Kind: kind, I: i, J: j, K: k}).Name()
}

func TestCholeskyKnownDependencies(t *testing.T) {
	d := Cholesky(3)
	byName := map[string]*Task{}
	for _, tk := range d.Tasks {
		byName[tk.Name()] = tk
	}
	hasEdge := func(from, to string) bool {
		a, b := byName[from], byName[to]
		if a == nil || b == nil {
			t.Fatalf("missing task %s or %s", from, to)
		}
		return contains(a.Succ, b.ID)
	}
	for _, e := range [][2]string{
		{"POTRF_0", "TRSM_1_0"},
		{"POTRF_0", "TRSM_2_0"},
		{"TRSM_1_0", "SYRK_1_0"},
		{"TRSM_1_0", "GEMM_2_1_0"},
		{"TRSM_2_0", "GEMM_2_1_0"},
		{"SYRK_1_0", "POTRF_1"},
		{"POTRF_1", "TRSM_2_1"},
		{"GEMM_2_1_0", "TRSM_2_1"},
		{"TRSM_2_1", "SYRK_2_1"},
		{"SYRK_2_0", "SYRK_2_1"}, // in-place updates of A22 serialize
		{"SYRK_2_1", "POTRF_2"},
	} {
		if !hasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %s → %s", e[0], e[1])
		}
	}
	if hasEdge("POTRF_0", "POTRF_1") {
		t.Fatal("unexpected direct edge POTRF_0 → POTRF_1")
	}
}

func TestTaskNames(t *testing.T) {
	d := Cholesky(5)
	want := map[string]bool{"POTRF_0": true, "TRSM_4_2": true, "SYRK_4_3": true, "GEMM_4_2_1": true}
	for _, tk := range d.Tasks {
		delete(want, tk.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing task names: %v", want)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		p := int(seed%6) + 2
		d := Cholesky(p)
		order, err := d.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, len(d.Tasks))
		for i, id := range order {
			pos[id] = i
		}
		for _, tk := range d.Tasks {
			for _, s := range tk.Succ {
				if pos[tk.ID] >= pos[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleDetection(t *testing.T) {
	d := &DAG{Tasks: []*Task{
		{ID: 0, Succ: []int{1}, Pred: []int{1}},
		{ID: 1, Succ: []int{0}, Pred: []int{0}},
	}}
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := d.Validate(); err == nil {
		t.Fatal("expected Validate to fail on cycle")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	d := &DAG{Tasks: []*Task{
		{ID: 0, Succ: []int{1}},
		{ID: 1}, // missing Pred back-link
	}}
	if err := d.Validate(); err == nil {
		t.Fatal("expected Validate to fail on asymmetric edge")
	}
}

func TestBottomLevelsUnitWeights(t *testing.T) {
	d := Cholesky(3)
	bl, err := d.BottomLevels(func(*Task) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	// Longest chain for p=3: POTRF_0→TRSM_1_0→SYRK_1_0→POTRF_1→TRSM_2_1→SYRK_2_1→POTRF_2 = 7 tasks.
	best := 0.0
	for _, v := range bl {
		if v > best {
			best = v
		}
	}
	if best != 7 {
		t.Fatalf("max bottom level = %g, want 7", best)
	}
	// Exit task has bottom level equal to its own weight.
	for _, tk := range d.Tasks {
		if len(tk.Succ) == 0 && bl[tk.ID] != 1 {
			t.Fatalf("exit task bottom level = %g, want 1", bl[tk.ID])
		}
	}
}

func TestCriticalPathMonotoneInP(t *testing.T) {
	w := func(*Task) float64 { return 1 }
	prev := 0.0
	for p := 1; p <= 10; p++ {
		cp, path, err := Cholesky(p).CriticalPath(w)
		if err != nil {
			t.Fatal(err)
		}
		if cp < prev {
			t.Fatalf("critical path decreased at p=%d", p)
		}
		if float64(len(path)) != cp {
			t.Fatalf("unit-weight path length %d != cp %g", len(path), cp)
		}
		prev = cp
	}
}

func TestCriticalPathUnitLength(t *testing.T) {
	// Unit weights: chain POTRF,(TRSM,SYRK)^(p-1) ⇒ 3p−2 tasks.
	for p := 1; p <= 8; p++ {
		cp, _, err := Cholesky(p).CriticalPath(func(*Task) float64 { return 1 })
		if err != nil {
			t.Fatal(err)
		}
		if int(cp) != 3*p-2 {
			t.Fatalf("p=%d: cp=%g, want %d", p, cp, 3*p-2)
		}
	}
}

func TestCriticalPathEdgesExist(t *testing.T) {
	d := Cholesky(6)
	_, path, err := d.CriticalPath(func(tk *Task) float64 { return float64(tk.Kind) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(path); i++ {
		if !contains(d.Tasks[path[i]].Succ, path[i+1]) {
			t.Fatalf("path step %d→%d is not an edge", path[i], path[i+1])
		}
	}
}

func TestTotalWeight(t *testing.T) {
	d := Cholesky(4)
	if got := d.TotalWeight(func(*Task) float64 { return 2 }); got != float64(2*len(d.Tasks)) {
		t.Fatalf("TotalWeight = %g", got)
	}
}

func TestFootprints(t *testing.T) {
	d := Cholesky(4)
	for _, tk := range d.Tasks {
		var rw int
		for _, r := range tk.Footprint {
			if r.Mode == ReadWrite {
				rw++
			}
			if r.J > r.I {
				t.Fatalf("task %s references upper tile (%d,%d)", tk.Name(), r.I, r.J)
			}
		}
		if rw != 1 {
			t.Fatalf("task %s has %d RW tiles, want 1", tk.Name(), rw)
		}
		wantReads := map[Kind]int{POTRF: 0, TRSM: 1, SYRK: 1, GEMM: 2}[tk.Kind]
		if len(tk.Footprint)-rw != wantReads {
			t.Fatalf("task %s has %d read tiles, want %d", tk.Name(), len(tk.Footprint)-rw, wantReads)
		}
	}
}

func TestKindString(t *testing.T) {
	if POTRF.String() != "POTRF" || GEMM.String() != "GEMM" || TSMQR.String() != "TSMQR" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("out-of-range Kind.String broken")
	}
	if Read.String() != "R" || ReadWrite.String() != "RW" {
		t.Fatal("Access.String broken")
	}
}

func TestDAGKinds(t *testing.T) {
	ks := Cholesky(5).Kinds()
	if len(ks) != 4 || ks[0] != POTRF || ks[3] != GEMM {
		t.Fatalf("Kinds = %v", ks)
	}
	// p=1 has only POTRF.
	ks = Cholesky(1).Kinds()
	if len(ks) != 1 || ks[0] != POTRF {
		t.Fatalf("Kinds(p=1) = %v", ks)
	}
}

func TestLUValidAndCounts(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		d := LU(p)
		if err := d.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		c := d.CountByKind()
		if c[GETRF] != p || c[TRSM] != p*(p-1) || c[GEMM] != p*(p-1)*(2*p-1)/6 {
			t.Fatalf("p=%d: LU counts %v", p, c)
		}
	}
}

func TestQRValidAndCounts(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		d := QR(p)
		if err := d.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		c := d.CountByKind()
		if c[GEQRT] != p || c[TSQRT] != p*(p-1)/2 || c[ORMQR] != p*(p-1)/2 {
			t.Fatalf("p=%d: QR counts %v", p, c)
		}
	}
}

func TestQRTSQRTSerialization(t *testing.T) {
	// TSQRT tasks of one panel all RW the diagonal tile, so they must chain.
	d := QR(4)
	byName := map[string]*Task{}
	for _, tk := range d.Tasks {
		byName[tk.Name()] = tk
	}
	a := byName["TSQRT_1_0"]
	b := byName["TSQRT_2_0"]
	if a == nil || b == nil {
		t.Fatal("missing TSQRT tasks")
	}
	if !contains(a.Succ, b.ID) {
		t.Fatal("TSQRT_1_0 → TSQRT_2_0 edge missing")
	}
}

func TestGemmCountMatchesFigure(t *testing.T) {
	// Figure 1 (p=5) shows 10 GEMMs.
	if Cholesky(5).CountByKind()[GEMM] != 10 {
		t.Fatal("p=5 GEMM count != 10")
	}
}

func TestRandomLayeredValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := RandomLayered(6, 5, 0.4, seed)
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(d.Tasks) < 6 {
			t.Fatalf("seed %d: too few tasks", seed)
		}
	}
}

func TestRandomLayeredConnected(t *testing.T) {
	// Every non-first-layer task has at least one predecessor.
	d := RandomLayered(5, 4, 0.01, 7) // tiny edgeP forces the fallback edge
	for _, tk := range d.Tasks {
		if tk.I > 0 && len(tk.Pred) == 0 {
			t.Fatalf("task %d in layer %d has no predecessor", tk.ID, tk.I)
		}
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a := RandomLayered(4, 4, 0.5, 3)
	b := RandomLayered(4, 4, 0.5, 3)
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("not deterministic")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Kind != b.Tasks[i].Kind || len(a.Tasks[i].Pred) != len(b.Tasks[i].Pred) {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomLayeredFootprints(t *testing.T) {
	d := RandomLayered(4, 4, 0.5, 9)
	for _, tk := range d.Tasks {
		rw := 0
		for _, r := range tk.Footprint {
			if r.Mode == ReadWrite {
				rw++
			}
		}
		if rw != 1 {
			t.Fatalf("task %d has %d RW tiles", tk.ID, rw)
		}
		if len(tk.Footprint)-1 < len(tk.Pred) && tk.I > 0 {
			// reads at least... each pred contributed a read tile (dups
			// impossible: preds have distinct (I,J)).
			t.Fatalf("task %d: %d reads < %d preds", tk.ID, len(tk.Footprint)-1, len(tk.Pred))
		}
	}
}

func TestDOTExport(t *testing.T) {
	d := Cholesky(3)
	dot := d.DOT()
	for _, want := range []string{
		"digraph cholesky {",
		`"POTRF_0"`,
		`"POTRF_0" -> "TRSM_1_0";`,
		`"SYRK_2_1" -> "POTRF_2";`,
		"octagon",
	} {
		if !containsStr(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge count equals the sum of successor lists.
	edges := 0
	for _, tk := range d.Tasks {
		edges += len(tk.Succ)
	}
	if got := countStr(dot, " -> "); got != edges {
		t.Fatalf("%d edges rendered, want %d", got, edges)
	}
}

func containsStr(s, sub string) bool { return len(s) >= len(sub) && strings.Contains(s, sub) }
func countStr(s, sub string) int     { return strings.Count(s, sub) }

func TestBandedCholeskyDegeneratesToDense(t *testing.T) {
	for _, p := range []int{2, 5, 8} {
		banded := BandedCholesky(p, p-1)
		dense := Cholesky(p)
		if len(banded.Tasks) != len(dense.Tasks) {
			t.Fatalf("p=%d: banded(bw=p-1) has %d tasks, dense %d",
				p, len(banded.Tasks), len(dense.Tasks))
		}
	}
}

func TestBandedCholeskyValidAndSmaller(t *testing.T) {
	p := 12
	prev := 1 << 30
	for _, bw := range []int{11, 6, 3, 1} {
		d := BandedCholesky(p, bw)
		if err := d.Validate(); err != nil {
			t.Fatalf("bw=%d: %v", bw, err)
		}
		if len(d.Tasks) >= prev {
			t.Fatalf("bw=%d: task count %d not shrinking", bw, len(d.Tasks))
		}
		prev = len(d.Tasks)
		// Every task stays inside the band.
		for _, tk := range d.Tasks {
			for _, ref := range tk.Footprint {
				if ref.I-ref.J > bw {
					t.Fatalf("bw=%d: task %s touches out-of-band tile (%d,%d)",
						bw, tk.Name(), ref.I, ref.J)
				}
			}
		}
	}
	// bw=1: p POTRF + (p−1) TRSM + (p−1) SYRK, no GEMM.
	d := BandedCholesky(p, 1)
	c := d.CountByKind()
	if c[POTRF] != p || c[TRSM] != p-1 || c[SYRK] != p-1 || c[GEMM] != 0 {
		t.Fatalf("bw=1 counts: %v", c)
	}
}

func TestBandedCholeskyChainPreserved(t *testing.T) {
	// The POTRF chain is inside every band: the critical path with unit
	// weights is still 3p−2 for bw ≥ 1.
	d := BandedCholesky(9, 2)
	cp, _, err := d.CriticalPath(func(*Task) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if int(cp) != 3*9-2 {
		t.Fatalf("cp = %g, want %d", cp, 3*9-2)
	}
}

func TestMergeIndependentDAGs(t *testing.T) {
	a := Cholesky(4)
	b := Cholesky(6)
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Tasks) != len(a.Tasks)+len(b.Tasks) {
		t.Fatalf("merged %d tasks, want %d", len(m.Tasks), len(a.Tasks)+len(b.Tasks))
	}
	// Two independent components: two roots.
	if got := len(m.Roots()); got != 2 {
		t.Fatalf("%d roots, want 2", got)
	}
	// Footprints must not collide across batches.
	tiles := map[[2]int]int{} // tile → batch (from task index range)
	for _, tk := range m.Tasks {
		batch := 0
		if tk.ID >= len(a.Tasks) {
			batch = 1
		}
		for _, ref := range tk.Footprint {
			key := [2]int{ref.I, ref.J}
			if prev, ok := tiles[key]; ok && prev != batch {
				t.Fatalf("tile %v shared across batches", key)
			}
			tiles[key] = batch
		}
	}
	// Critical path of the merge = max of the parts (unit weights).
	cpM, _, _ := m.CriticalPath(func(*Task) float64 { return 1 })
	cpB, _, _ := b.CriticalPath(func(*Task) float64 { return 1 })
	if cpM != cpB {
		t.Fatalf("merged cp %g, want %g", cpM, cpB)
	}
}

func TestMergeSingleIsIdentityShaped(t *testing.T) {
	a := Cholesky(5)
	m := Merge(a)
	if len(m.Tasks) != len(a.Tasks) {
		t.Fatal("single merge changed task count")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeftLookingSameCountsDifferentShape(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		ll := CholeskyLeftLooking(p)
		rl := Cholesky(p)
		if err := ll.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		cl, cr := ll.CountByKind(), rl.CountByKind()
		for _, k := range CholeskyKinds {
			if cl[k] != cr[k] {
				t.Fatalf("p=%d %v: %d vs %d", p, k, cl[k], cr[k])
			}
		}
	}
	// Left-looking delays updates: with unit weights its critical path is at
	// least the right-looking one.
	ll := CholeskyLeftLooking(8)
	rl := Cholesky(8)
	w := func(*Task) float64 { return 1 }
	cpl, _, _ := ll.CriticalPath(w)
	cpr, _, _ := rl.CriticalPath(w)
	if cpl < cpr {
		t.Fatalf("left-looking cp %g < right-looking %g", cpl, cpr)
	}
}

func TestVariantsInduceIsomorphicDAGs(t *testing.T) {
	// The right- and left-looking submission orders yield the same dependency
	// structure under dataflow inference: match tasks by (kind, i, j, k) and
	// compare edge sets.
	for _, p := range []int{3, 6} {
		rl := Cholesky(p)
		ll := CholeskyLeftLooking(p)
		key := func(tk *Task) [4]int { return [4]int{int(tk.Kind), tk.I, tk.J, tk.K} }
		rlByKey := map[[4]int]*Task{}
		for _, tk := range rl.Tasks {
			rlByKey[key(tk)] = tk
		}
		llByKey := map[[4]int]*Task{}
		for _, tk := range ll.Tasks {
			llByKey[key(tk)] = tk
		}
		if len(rlByKey) != len(llByKey) {
			t.Fatalf("p=%d: different task sets", p)
		}
		edgeSet := func(d *DAG, byKey map[[4]int]*Task) map[[8]int]bool {
			out := map[[8]int]bool{}
			for _, tk := range d.Tasks {
				for _, s := range tk.Succ {
					a, b := key(tk), key(d.Tasks[s])
					out[[8]int{a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]}] = true
				}
			}
			return out
		}
		er := edgeSet(rl, rlByKey)
		el := edgeSet(ll, llByKey)
		if len(er) != len(el) {
			t.Fatalf("p=%d: %d vs %d edges", p, len(er), len(el))
		}
		for e := range er {
			if !el[e] {
				t.Fatalf("p=%d: edge %v only in right-looking", p, e)
			}
		}
	}
}

func TestComputeStatsCholesky(t *testing.T) {
	d := Cholesky(8)
	st, err := d.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != len(d.Tasks) || st.RootCount != 1 || st.Exits != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.CriticalPathLen != 3*8-2 {
		t.Fatalf("cp len %d, want %d", st.CriticalPathLen, 3*8-2)
	}
	wantAvg := float64(len(d.Tasks)) / float64(3*8-2)
	if st.AvgParallelism != wantAvg {
		t.Fatalf("avg parallelism %g, want %g", st.AvgParallelism, wantAvg)
	}
	if st.MaxWidth < 2 {
		t.Fatal("width too small")
	}
	edges := 0
	for _, tk := range d.Tasks {
		edges += len(tk.Succ)
	}
	if st.Edges != edges {
		t.Fatalf("edges %d, want %d", st.Edges, edges)
	}
}

func TestComputeStatsGrowsWithSize(t *testing.T) {
	// The paper's saturation argument: average parallelism grows with the
	// matrix size (≈ p²/9 for Cholesky).
	prev := 0.0
	for _, p := range []int{4, 8, 16, 32} {
		st, err := Cholesky(p).ComputeStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.AvgParallelism <= prev {
			t.Fatalf("parallelism not growing at p=%d", p)
		}
		prev = st.AvgParallelism
	}
	// At p=32 the DAG can saturate far more than Mirage's 12 workers.
	if prev < 12 {
		t.Fatalf("p=32 avg parallelism %g should exceed the worker count", prev)
	}
}
