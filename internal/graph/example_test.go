package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// Build the Cholesky task graph of Figure 1 (5×5 tiles) and inspect it.
func ExampleCholesky() {
	d := graph.Cholesky(5)
	c := d.CountByKind()
	fmt.Printf("tasks=%d POTRF=%d TRSM=%d SYRK=%d GEMM=%d\n",
		len(d.Tasks), c[graph.POTRF], c[graph.TRSM], c[graph.SYRK], c[graph.GEMM])
	fmt.Println("root:", d.Tasks[d.Roots()[0]].Name())
	// Output:
	// tasks=35 POTRF=5 TRSM=10 SYRK=10 GEMM=10
	// root: POTRF_0
}

// Compute the critical path under unit task weights: the paper's diagonal
// chain POTRF,(TRSM,SYRK)* has 3p−2 tasks.
func ExampleDAG_CriticalPath() {
	d := graph.Cholesky(8)
	length, path, err := d.CriticalPath(func(*graph.Task) float64 { return 1 })
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical path: %.0f tasks, from %s to %s\n",
		length, d.Tasks[path[0]].Name(), d.Tasks[path[len(path)-1]].Name())
	// Output:
	// critical path: 22 tasks, from POTRF_0 to POTRF_7
}

// The LU and QR builders share the same dataflow machinery.
func ExampleLU() {
	d := graph.LU(4)
	c := d.CountByKind()
	fmt.Printf("GETRF=%d TRSM=%d GEMM=%d\n", c[graph.GETRF], c[graph.TRSM], c[graph.GEMM])
	// Output:
	// GETRF=4 TRSM=12 GEMM=14
}
