// Package stats provides the small statistical and formatting helpers used
// by the experiment harness: mean/standard deviation over repeated runs
// (the paper reports avg ± σ of 10 runs), GFLOP/s series, and fixed-width
// table / ASCII-plot rendering for terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

// Series is one plotted curve: a name and a value per X position.
type Series struct {
	Name   string
	Values []float64 // aligned with the owning Table's Xs
	Sigmas []float64 // optional per-point standard deviations
}

// Table is the harness's output unit: a set of series over shared Xs,
// matching one figure or table of the paper.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Xs     []float64
	Series []Series
	// Categorical marks the X axis as discrete identities (kernel names,
	// capacity buckets) rather than a continuous sweep — renderers should
	// use bars instead of lines. Optional XNames label the categories.
	Categorical bool
	XNames      []string
}

// Add appends a series (padding with NaN if shorter than Xs).
func (t *Table) Add(name string, values []float64, sigmas []float64) {
	v := make([]float64, len(t.Xs))
	for i := range v {
		if i < len(values) {
			v[i] = values[i]
		} else {
			v[i] = math.NaN()
		}
	}
	t.Series = append(t.Series, Series{Name: name, Values: v, Sigmas: sigmas})
}

// Render prints the table with one row per X and one column per series.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range t.Series {
			cell := fmt.Sprintf("%.2f", s.Values[i])
			if s.Sigmas != nil && i < len(s.Sigmas) && s.Sigmas[i] > 0 {
				cell += fmt.Sprintf("±%.2f", s.Sigmas[i])
			}
			fmt.Fprintf(&b, " %22s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Sigmas != nil {
			fmt.Fprintf(&b, ",%s_sigma", s.Name)
		}
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			fmt.Fprintf(&b, ",%g", s.Values[i])
			if s.Sigmas != nil {
				sig := 0.0
				if i < len(s.Sigmas) {
					sig = s.Sigmas[i]
				}
				fmt.Fprintf(&b, ",%g", sig)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Plot renders a crude ASCII line chart of all series (for terminal use),
// `rows` high and one column per X.
func (t *Table) Plot(rows int) string {
	if rows <= 0 {
		rows = 20
	}
	_, hi := 0.0, 0.0
	for _, s := range t.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > hi {
				hi = v
			}
		}
	}
	if hi == 0 {
		hi = 1
	}
	glyphs := "ABCDEFGHIJ"
	width := len(t.Xs)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.Series {
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			r := rows - 1 - int(v/hi*float64(rows-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			grid[r][i] = glyphs[si%len(glyphs)]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (max %s = %.1f)\n", t.Title, t.YLabel, hi)
	for r := range grid {
		fmt.Fprintf(&b, "|%s|\n", grid[r])
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	for si, s := range t.Series {
		fmt.Fprintf(&b, "  %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Summary compactly reports a sample as "mean ± σ [min, max]".
func Summary(xs []float64) string {
	lo, hi := MinMax(xs)
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g]", Mean(xs), StdDev(xs), lo, hi)
}

// Median returns the sample median.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64{}, xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
