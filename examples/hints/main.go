// Hints: sweep the paper's TRSM-triangle hint threshold k and show how much
// static knowledge closes the gap to the mixed bound (the Figure 10 story),
// plus the CP-optimized schedule on a small instance.
//
// Run with:  go run ./examples/hints
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func main() {
	const n = 16
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(n)
	flops := kernels.CholeskyFlops(n * platform.TileNB)

	m, err := bounds.MixedInt(d, p)
	if err != nil {
		log.Fatal(err)
	}
	bound := m.GFlops(flops)

	base, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d tiles, mixed bound %.1f GFLOP/s\n", n, bound)
	fmt.Printf("dmdas (no hint):     %7.1f GFLOP/s  (%.1f%% of bound)\n",
		base.GFlops(flops), 100*base.GFlops(flops)/bound)

	fmt.Println("\nTRSM-triangle hint sweep (force TRSMs ≥ k tiles below the diagonal onto CPUs):")
	bestK, bestG := 0, base.GFlops(flops)
	for k := 1; k < n; k++ {
		r, err := simulator.Run(d, p, sched.NewTriangleTRSM(k), simulator.Options{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		g := r.GFlops(flops)
		marker := ""
		if g > bestG {
			bestK, bestG = k, g
			marker = "  <- best so far"
		}
		fmt.Printf("  k=%2d: %7.1f GFLOP/s (%.1f%% of bound)%s\n", k, g, 100*g/bound, marker)
	}
	fmt.Printf("\nbest threshold k=%d: %.1f GFLOP/s — the paper reports k ≈ 6–8 optimal\n", bestK, bestG)

	// CP-style optimized schedule on a small instance (Figure 10's CP lines).
	const small = 6
	ds := graph.Cholesky(small)
	fs := kernels.CholeskyFlops(small * platform.TileNB)
	cp, err := cpsolve.Solve(ds, p, cpsolve.Options{NodeBudget: 60000, Beam: 3})
	if err != nil {
		log.Fatal(err)
	}
	dm, err := simulator.Run(ds, p, sched.NewDMDAS(), simulator.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	inj, err := simulator.Run(ds, p, cp.Schedule.Scheduler("cp"), simulator.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ms, err := bounds.MixedInt(ds, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCP search on n=%d (%d nodes): dmdas %.1f, CP %.1f, CP-injected %.1f, bound %.1f GFLOP/s\n",
		small, cp.Nodes, dm.GFlops(fs), platform.GFlops(fs, cp.Makespan), inj.GFlops(fs), ms.GFlops(fs))
}
