.PHONY: build test verify bench serve

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate (ROADMAP.md): build + vet + race-enabled tests.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

serve:
	go run ./cmd/cholserved
