// Cluster: the distributed-memory extension end to end — the paper's §II-B
// context ("ScaLAPACK first distributes the matrix tiles to the processors,
// using a standard 2D block-cyclic distribution ... for heterogeneous
// resources, this layout is no longer an option, and dynamic scheduling is
// a widespread practice") made measurable.
//
// Four heterogeneous nodes (3 CPUs + 1 GPU each, 10 GB/s network) run the
// tiled Cholesky under three regimes: 1D owner-computes, 2D owner-computes,
// and fully dynamic cluster-wide scheduling, against the flat mixed bound.
//
// Run with:  go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
)

func main() {
	node := platform.Mirage()
	node.Classes[0].Count = 3
	node.Classes[1].Count = 1
	cluster := &distributed.Cluster{
		Node:      node,
		Nodes:     4,
		Net:       platform.Bus{Enabled: true, BandwidthBps: 10e9, LatencySec: 5e-6},
		TileBytes: node.TileBytes,
	}
	fmt.Printf("cluster: %d nodes × (3 CPUs + 1 GPU), 10 GB/s network\n\n", cluster.Nodes)

	regimes := []struct {
		name string
		opt  distributed.Options
	}{
		{"1D row-cyclic (owner computes)", distributed.Options{Dist: distributed.RowCyclic{N: 4}, Priorities: true}},
		{"2D block-cyclic (owner computes)", distributed.Options{Dist: distributed.BlockCyclic{P: 2, Q: 2}, Priorities: true}},
		{"dynamic (cluster-wide dmdas)", distributed.Options{Priorities: true}},
	}
	flat := cluster.FlatPlatform()
	for _, n := range []int{8, 16, 24, 32} {
		d := graph.Cholesky(n)
		f := kernels.CholeskyFlops(n * platform.TileNB)
		m, err := bounds.MixedInt(d, flat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d tiles (flat mixed bound %.0f GFLOP/s):\n", n, m.GFlops(f))
		for _, reg := range regimes {
			r, err := distributed.Simulate(d, cluster, reg.opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-34s %7.1f GFLOP/s  (%4d network transfers, %.3f s on NICs)\n",
				reg.name, platform.GFlops(f, r.MakespanSec), r.NetTransfers, r.NetSec)
		}
		fmt.Println()
	}
	fmt.Println("shape: 2D ≥ 1D (the ScaLAPACK result); dynamic competitive or better —")
	fmt.Println("the heterogeneity argument the paper makes for dynamic runtimes.")
}
