package replay

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// Knob describes how a variant configuration differs from a recorded base
// run, precisely enough for Delta to bound where their schedules can first
// diverge.
type Knob struct {
	// Affected reports whether the changed knob can alter the scheduler's
	// placement or priority of task t (e.g. the tasks a hint newly
	// constrains or releases — take the union over both knob values). Tasks
	// outside the set must be treated identically by base and variant. A
	// nil Affected with SeedOnly unset means the change can touch every
	// decision: Delta re-simulates from scratch.
	Affected func(t *graph.Task) bool
	// SeedOnly marks a variant differing from the base in Options.Seed
	// alone. When the run never consumes the seed (seed-invariant
	// scheduler, jitter off) no decision can diverge and the base Result is
	// simply cloned; otherwise Delta falls back to scratch.
	SeedOnly bool
}

// SeedKnob is the Options.Seed-only change.
func SeedKnob() Knob { return Knob{SeedOnly: true} }

// ParamKnob is a scheduler-parameter change whose blast radius is the tasks
// affected reports true for.
func ParamKnob(affected func(t *graph.Task) bool) Knob { return Knob{Affected: affected} }

// FullKnob is a change with no exploitable structure (nb, platform, DAG):
// Delta runs the variant from scratch (still sharing the base's Prep).
func FullKnob() Knob { return Knob{} }

// PanelKnob bounds a knob constraining only tasks of trailing panels k ≥ k0
// (Donfack-style split-point tuning): those tasks become ready late, so the
// shared prefix is long and the delta suffix short.
func PanelKnob(k0 int) Knob {
	return ParamKnob(func(t *graph.Task) bool { return t.K >= k0 })
}

// TrsmKnob bounds the registered trsm-cpu:k hint family: sweeping the
// threshold between k1 and k2 can only re-place TRSMs at least
// min(k1, k2) tiles below the diagonal.
func TrsmKnob(k1, k2 int) Knob {
	k := k1
	if k2 < k {
		k = k2
	}
	return ParamKnob(func(t *graph.Task) bool { return t.Kind == graph.TRSM && t.I-t.K >= k })
}

// Base is a recorded reference run delta queries resume from.
type Base struct {
	Prep *simulator.Prep
	Rec  *simulator.Recording

	// Probe, when non-nil, receives one frame per Delta query carrying the
	// cumulative outcome counters below, so a live view shows how often
	// the delta machinery pays off versus falls back to scratch.
	Probe *obs.Probe

	emitMu  sync.Mutex   // serializes counter+emit so frame Done is monotone
	clones  atomic.Int64 // queries answered by cloning the base Result
	resumes atomic.Int64 // queries resumed from a checkpoint
	scratch atomic.Int64 // queries that fell back to a from-scratch run
}

// DeltaStats reports the cumulative Delta outcome counters: base-clone
// answers, checkpoint resumes, and from-scratch fallbacks (in that order).
func (b *Base) DeltaStats() (clones, resumes, scratch int64) {
	return b.clones.Load(), b.resumes.Load(), b.scratch.Load()
}

// countDelta bumps one outcome counter and, with a probe attached, emits a
// frame with the running totals. counter must be one of the Base counters.
// The emit mutex keeps Done monotone when Delta queries run concurrently.
func (b *Base) countDelta(counter *atomic.Int64) {
	p := b.Probe
	if p == nil {
		counter.Add(1)
		return
	}
	b.emitMu.Lock()
	counter.Add(1)
	clones, resumes, scratch := b.DeltaStats()
	p.Emit(obs.Frame{
		Source:       obs.SourceReplay,
		Done:         clones + resumes + scratch,
		DedupHits:    clones,
		DeltaResume:  resumes,
		DeltaScratch: scratch,
	})
	b.emitMu.Unlock()
}

// Record runs the base configuration once under checkpointing: the decision
// trace locates the first divergent decision of a variant, the periodic
// snapshots are the resume points. stride ≤ 0 picks a default granularity
// (~16 snapshots across the run).
func Record(ctx context.Context, d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt simulator.Options, stride int) (*Base, error) {
	pp, err := simulator.Prepare(d, p)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if stride <= 0 {
		stride = len(d.Tasks)/16 + 1
	}
	rec, err := pp.RunRecorded(ctx, s, opt, stride, nil)
	if err != nil {
		return nil, err
	}
	return &Base{Prep: pp, Rec: rec}, nil
}

// Delta returns the variant configuration's Result, bit-identical to running
// it from scratch (the FuzzDeltaReplay property). When the knob's first
// affected decision lies beyond a checkpoint, only the suffix from that
// checkpoint is re-simulated; when no base decision is affected, the base
// Result is cloned without simulating at all. Every precondition the resume
// shortcut needs is checked here — variants it cannot prove safe
// (non-pure-assign schedulers, option changes beyond the seed, seed changes
// on seed-consuming runs) silently run from scratch instead.
func (b *Base) Delta(ctx context.Context, mk func() sched.Scheduler, opt simulator.Options, knob Knob, pool *Pool) (*simulator.Result, error) {
	if pool == nil {
		pool = &Pool{}
	}
	s := mk()
	scratch := func() (*simulator.Result, error) {
		a := pool.Get()
		r, err := b.Prep.Run(ctx, s, opt, a)
		pool.Put(a)
		if err == nil {
			b.countDelta(&b.scratch)
		}
		return r, err
	}
	base := b.Rec.Opt
	if opt.Recorder != nil || opt.Overhead != base.Overhead || opt.WorkStealing != base.WorkStealing {
		return scratch()
	}
	if s.Ordered() != b.Rec.Ordered || !sched.IsPureAssign(s) {
		return scratch()
	}
	if opt.Seed != base.Seed {
		if jitterActive(b.Prep.Platform(), opt) || !sched.IsSeedInvariant(s) {
			return scratch()
		}
	}
	div := len(b.Rec.Decisions) // first affected decision index; len = none
	if knob.Affected != nil {
		d := b.Prep.DAG()
		for i, id := range b.Rec.Decisions {
			if knob.Affected(d.Tasks[id]) {
				div = i
				break
			}
		}
	} else if !knob.SeedOnly {
		return scratch()
	}
	if div == len(b.Rec.Decisions) {
		// No decision the variant could change exists: its schedule is the
		// base's. (Equality of every simulator-side input was checked above.)
		b.countDelta(&b.clones)
		return b.Rec.Result.Clone(), nil
	}
	sn := b.Rec.SnapshotBefore(div)
	if sn == nil {
		return scratch()
	}
	a := pool.Get()
	r, err := b.Prep.Resume(ctx, s, opt, sn, a)
	pool.Put(a)
	if err == nil {
		b.countDelta(&b.resumes)
	}
	return r, err
}
