// Package check produces and verifies machine-checkable *result
// certificates*: a JSON document recording an executed schedule together
// with the lower bounds it was measured against, re-verifiable later
// without trusting the producer. This serves the paper's reproducibility
// agenda (the whole point of its SimGrid methodology): an archived
// experiment can be re-checked — schedule validity, makespan arithmetic,
// and bound soundness — from the certificate alone plus the deterministic
// DAG builder and platform model.
package check

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/simulator"
)

// Certificate is a self-contained, re-verifiable experiment record.
type Certificate struct {
	Algorithm string `json:"algorithm"`
	Tiles     int    `json:"tiles"`
	Tasks     int    `json:"tasks"`

	MakespanSec     float64 `json:"makespan_sec"`
	AreaBoundSec    float64 `json:"area_bound_sec"`
	MixedBoundSec   float64 `json:"mixed_bound_sec"`
	CriticalPathSec float64 `json:"critical_path_sec"`

	Worker []int     `json:"worker"`
	Start  []float64 `json:"start"`
	End    []float64 `json:"end"`
}

// New builds a certificate from a simulation result, computing the bounds
// it must respect.
func New(d *graph.DAG, p *platform.Platform, r *simulator.Result) (*Certificate, error) {
	if err := simulator.Validate(d, p, r); err != nil {
		return nil, fmt.Errorf("check: refusing to certify an invalid schedule: %w", err)
	}
	area, err := bounds.AreaInt(d, p)
	if err != nil {
		return nil, err
	}
	mixed, err := bounds.MixedInt(d, p)
	if err != nil {
		return nil, err
	}
	cp, err := bounds.CriticalPath(d, p)
	if err != nil {
		return nil, err
	}
	c := &Certificate{
		Algorithm:       d.Algorithm,
		Tiles:           d.P,
		Tasks:           len(d.Tasks),
		MakespanSec:     r.MakespanSec,
		AreaBoundSec:    area.MakespanSec,
		MixedBoundSec:   mixed.MakespanSec,
		CriticalPathSec: cp.MakespanSec,
		Worker:          append([]int{}, r.Worker...),
		Start:           append([]float64{}, r.Start...),
		End:             append([]float64{}, r.End...),
	}
	return c, nil
}

// Verify re-checks the certificate against the (re-built) DAG and platform:
// schedule structure, makespan arithmetic, and bound soundness — including
// recomputing the bounds so a tampered bound field cannot pass.
func (c *Certificate) Verify(d *graph.DAG, p *platform.Platform) error {
	if c.Tasks != len(d.Tasks) || c.Tiles != d.P || c.Algorithm != d.Algorithm {
		return fmt.Errorf("check: certificate does not describe this DAG")
	}
	if len(c.Worker) != c.Tasks || len(c.Start) != c.Tasks || len(c.End) != c.Tasks {
		return fmt.Errorf("check: schedule arrays incomplete")
	}
	// Structural validity: capability, dependencies, per-worker overlap.
	perWorker := map[int][][2]float64{}
	maxEnd := 0.0
	for _, t := range d.Tasks {
		id := t.ID
		w := c.Worker[id]
		if w < 0 || w >= p.Workers() {
			return fmt.Errorf("check: task %d on invalid worker %d", id, w)
		}
		if math.IsInf(p.Time(p.WorkerClass(w), t.Kind), 1) {
			return fmt.Errorf("check: task %d on incapable worker %d", id, w)
		}
		if c.End[id] < c.Start[id] {
			return fmt.Errorf("check: task %d ends before it starts", id)
		}
		for _, pr := range t.Pred {
			if c.Start[id] < c.End[pr]-1e-9 {
				return fmt.Errorf("check: dependency %d→%d violated", pr, id)
			}
		}
		perWorker[w] = append(perWorker[w], [2]float64{c.Start[id], c.End[id]})
		if c.End[id] > maxEnd {
			maxEnd = c.End[id]
		}
	}
	for w, ivs := range perWorker {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1]-1e-9 {
				return fmt.Errorf("check: overlap on worker %d", w)
			}
		}
	}
	// Makespan arithmetic.
	if math.Abs(maxEnd-c.MakespanSec) > 1e-9 {
		return fmt.Errorf("check: makespan %g does not match max end %g", c.MakespanSec, maxEnd)
	}
	// Bound soundness, with the bounds recomputed independently.
	area, err := bounds.AreaInt(d, p)
	if err != nil {
		return err
	}
	mixed, err := bounds.MixedInt(d, p)
	if err != nil {
		return err
	}
	cp, err := bounds.CriticalPath(d, p)
	if err != nil {
		return err
	}
	for _, pair := range []struct {
		name     string
		claimed  float64
		computed float64
	}{
		{"area", c.AreaBoundSec, area.MakespanSec},
		{"mixed", c.MixedBoundSec, mixed.MakespanSec},
		{"critical-path", c.CriticalPathSec, cp.MakespanSec},
	} {
		if math.Abs(pair.claimed-pair.computed) > 1e-9*(1+pair.computed) {
			return fmt.Errorf("check: %s bound %g does not recompute (%g)",
				pair.name, pair.claimed, pair.computed)
		}
		if c.MakespanSec < pair.computed-1e-9 {
			return fmt.Errorf("check: makespan %g beats the %s bound %g — impossible schedule",
				c.MakespanSec, pair.name, pair.computed)
		}
	}
	return nil
}

// Marshal serializes the certificate as indented JSON.
func (c *Certificate) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", " ")
}

// Unmarshal parses a certificate document.
func Unmarshal(data []byte) (*Certificate, error) {
	c := &Certificate{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, err
	}
	return c, nil
}
