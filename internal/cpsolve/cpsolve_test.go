package cpsolve

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func TestSolveSmallValidAndBounded(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	for _, n := range []int{1, 2, 3, 4} {
		d := graph.Cholesky(n)
		r, err := Solve(d, p, Options{NodeBudget: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Schedule.Validate(d, p); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mixed, err := bounds.MixedInt(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < mixed.MakespanSec-1e-9 {
			t.Fatalf("n=%d: CP makespan %g below mixed bound %g", n, r.Makespan, mixed.MakespanSec)
		}
	}
}

func TestSolveNeverWorseThanWarmStart(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	for _, n := range []int{2, 4, 6} {
		d := graph.Cholesky(n)
		warm, err := sched.HEFT(d, p)
		if err != nil {
			t.Fatal(err)
		}
		_, warmMk, err := replay(d, p, warm)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Solve(d, p, Options{NodeBudget: 20000, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan > warmMk+1e-9 {
			t.Fatalf("n=%d: CP %g worse than warm start %g", n, r.Makespan, warmMk)
		}
	}
}

func TestSolveSingleTaskOptimal(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(1)
	r, err := Solve(d, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-p.FastestTime(graph.POTRF)) > 1e-12 {
		t.Fatalf("makespan %g", r.Makespan)
	}
	if !r.Exhausted {
		t.Fatal("trivial search not exhausted")
	}
}

func TestSolveImprovesOnDmdasSmall(t *testing.T) {
	// The paper's Figure 10 message: the CP solution beats dmdas on small
	// matrices (in the no-communication model). Allow equality but require
	// no regression.
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(4)
	sim, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(d, p, Options{NodeBudget: 100000, Beam: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan > sim.MakespanSec+1e-9 {
		t.Fatalf("CP %g worse than dmdas %g", r.Makespan, sim.MakespanSec)
	}
}

func TestInjectedScheduleMatchesReplay(t *testing.T) {
	// "We injected the exact schedule obtained from CP solution in the
	// simulation and obtained almost equal (difference < 1 %) performance."
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(5)
	r, err := Solve(d, p, Options{NodeBudget: 30000})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulator.Run(d, p, r.Schedule.Scheduler("cp-inject"), simulator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := simulator.Validate(d, p, sim); err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(sim.MakespanSec-r.Makespan) / r.Makespan
	if diff > 0.01 {
		t.Fatalf("simulated %g vs CP %g: %.2f%% difference", sim.MakespanSec, r.Makespan, 100*diff)
	}
}

func TestReplayDetectsNothingOnValidPlan(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(4)
	warm, _ := sched.HEFT(d, p)
	mk, err := Replay(d, p, warm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mk-warm.EstMakespan) > 1e-9 {
		t.Fatalf("replay %g vs HEFT estimate %g", mk, warm.EstMakespan)
	}
}

func TestBudgetExhaustionReported(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(8)
	r, err := Solve(d, p, Options{NodeBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhausted {
		t.Fatal("tiny budget cannot exhaust a 120-task search space")
	}
	if err := r.Schedule.Validate(d, p); err != nil {
		t.Fatal(err)
	}
}

func TestNodesCounted(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(3)
	r, err := Solve(d, p, Options{NodeBudget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes <= 0 || r.Nodes > 10001 {
		t.Fatalf("Nodes = %d", r.Nodes)
	}
}

func TestSolveRejectsBadInputs(t *testing.T) {
	bad := &graph.DAG{Tasks: []*graph.Task{
		{ID: 0, Kind: graph.GEMM, Succ: []int{1}, Pred: []int{1}},
		{ID: 1, Kind: graph.GEMM, Succ: []int{0}, Pred: []int{0}},
	}}
	if _, err := Solve(bad, platform.Mirage(), Options{}); err == nil {
		t.Fatal("expected cycle error")
	}
	empty := &platform.Platform{Classes: []platform.Class{{Count: 0}}}
	if _, err := Solve(graph.Cholesky(2), empty, Options{}); err == nil {
		t.Fatal("expected platform error")
	}
}

func TestMappingOnlyInjectionDoesNotBeatFull(t *testing.T) {
	// Section VI-B: keeping only the CPU/GPU mapping of the CP solution and
	// letting the dynamic scheduler order tasks does not recover the CP
	// performance (full injection ≤ mapping-only, up to tolerance).
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(5)
	r, err := Solve(d, p, Options{NodeBudget: 50000, Beam: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := simulator.Run(d, p, r.Schedule.Scheduler("cp-full"), simulator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mapOnly, err := simulator.Run(d, p, r.Schedule.MappingScheduler(p), simulator.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.MakespanSec > mapOnly.MakespanSec*1.02 {
		t.Fatalf("full injection %g notably worse than mapping-only %g",
			full.MakespanSec, mapOnly.MakespanSec)
	}
}

func TestCommAwareCPBetterUnderCommModel(t *testing.T) {
	// The data-aware extension: a schedule optimized with the one-hop
	// penalty should evaluate no worse than the oblivious schedule when
	// both are judged under the penalty model.
	p := platform.WithoutCommunication(platform.Mirage())
	hop := platform.Mirage().Bus.TransferTime(platform.Mirage().TileBytes)
	d := graph.Cholesky(5)
	obl, err := Solve(d, p, Options{NodeBudget: 30000, Beam: 3})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Solve(d, p, Options{NodeBudget: 30000, Beam: 3, CommHopSec: hop})
	if err != nil {
		t.Fatal(err)
	}
	oblUnderComm, err := ReplayComm(d, p, obl.Schedule, hop)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Makespan > oblUnderComm+1e-9 {
		t.Fatalf("comm-aware CP %g worse than oblivious-evaluated-with-comm %g",
			aware.Makespan, oblUnderComm)
	}
	// The penalty model can only lengthen a given schedule.
	oblPlain, err := Replay(d, p, obl.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if oblUnderComm < oblPlain-1e-9 {
		t.Fatal("comm penalty shortened a schedule")
	}
}

func TestReplayCommZeroHopMatchesReplay(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(4)
	warm, _ := sched.HEFT(d, p)
	a, err := Replay(d, p, warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayComm(d, p, warm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("zero-hop replay differs: %g vs %g", a, b)
	}
}

func TestSolveLUAndQRDAGs(t *testing.T) {
	// The CP search is DAG-generic: it must handle the extension
	// factorizations on the extended platform and respect their bounds.
	p := platform.WithoutCommunication(platform.MirageExtended())
	for _, d := range []*graph.DAG{graph.LU(4), graph.QR(3)} {
		r, err := Solve(d, p, Options{NodeBudget: 10000})
		if err != nil {
			t.Fatalf("%s: %v", d.Algorithm, err)
		}
		if err := r.Schedule.Validate(d, p); err != nil {
			t.Fatal(err)
		}
		m, err := bounds.MixedInt(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < m.MakespanSec-1e-9 {
			t.Fatalf("%s: CP %g below mixed bound %g", d.Algorithm, r.Makespan, m.MakespanSec)
		}
	}
}
