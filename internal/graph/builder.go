package graph

// builder constructs a DAG by replaying a sequential tiled algorithm and
// inferring dependencies from data accesses, enforcing sequential consistency
// exactly as StarPU does: a reader depends on the last writer of each tile it
// reads; a writer depends on the last writer and on every reader since.
type builder struct {
	dag        *DAG
	lastWriter map[[2]int]int   // tile → ID of last task writing it (−1: none)
	readers    map[[2]int][]int // tasks reading the tile since its last write
}

func newBuilder(alg string, p int) *builder {
	return &builder{
		dag:        &DAG{Algorithm: alg, P: p},
		lastWriter: map[[2]int]int{},
		readers:    map[[2]int][]int{},
	}
}

// task appends a task accessing the given tiles and wires its dependencies.
func (b *builder) task(kind Kind, i, j, k int, refs ...TileRef) *Task {
	t := &Task{ID: len(b.dag.Tasks), Kind: kind, I: i, J: j, K: k, Footprint: refs}
	b.dag.Tasks = append(b.dag.Tasks, t)
	deps := map[int]bool{}
	for _, r := range refs {
		key := [2]int{r.I, r.J}
		if w, ok := b.lastWriter[key]; ok {
			deps[w] = true
		}
		if r.Mode == ReadWrite {
			for _, rd := range b.readers[key] {
				deps[rd] = true
			}
		}
	}
	delete(deps, t.ID)
	for p := range deps {
		t.Pred = append(t.Pred, p)
		b.dag.Tasks[p].Succ = append(b.dag.Tasks[p].Succ, t.ID)
	}
	sortInts(t.Pred)
	// Update dataflow state after dependencies are wired.
	for _, r := range refs {
		key := [2]int{r.I, r.J}
		if r.Mode == ReadWrite {
			b.lastWriter[key] = t.ID
			b.readers[key] = b.readers[key][:0]
		} else {
			b.readers[key] = append(b.readers[key], t.ID)
		}
	}
	return t
}

func (b *builder) finish() *DAG {
	for _, t := range b.dag.Tasks {
		sortInts(t.Succ)
	}
	return b.dag
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Cholesky builds the task graph of the tiled Cholesky factorization of a
// p×p tiled matrix (Algorithm 1; Figure 1 of the paper shows p = 5).
// Task counts: p POTRF, p(p−1)/2 TRSM, p(p−1)/2 SYRK, p(p−1)(p−2)/6 GEMM.
func Cholesky(p int) *DAG {
	b := newBuilder("cholesky", p)
	for k := 0; k < p; k++ {
		b.task(POTRF, -1, -1, k, TileRef{k, k, ReadWrite})
		for i := k + 1; i < p; i++ {
			b.task(TRSM, i, -1, k,
				TileRef{k, k, Read},
				TileRef{i, k, ReadWrite})
		}
		for j := k + 1; j < p; j++ {
			b.task(SYRK, -1, j, k,
				TileRef{j, k, Read},
				TileRef{j, j, ReadWrite})
			for i := j + 1; i < p; i++ {
				b.task(GEMM, i, j, k,
					TileRef{i, k, Read},
					TileRef{j, k, Read},
					TileRef{i, j, ReadWrite})
			}
		}
	}
	return b.finish()
}

// LU builds the task graph of a tiled LU factorization without pivoting
// (right-looking): GETRF on the diagonal, TRSM on row and column panels,
// GEMM trailing updates. Used by the "other factorizations" extension.
func LU(p int) *DAG {
	b := newBuilder("lu", p)
	for k := 0; k < p; k++ {
		b.task(GETRF, -1, -1, k, TileRef{k, k, ReadWrite})
		for j := k + 1; j < p; j++ { // row panel: Akj ← Lkk⁻¹·Akj
			b.task(TRSM, k, j, k,
				TileRef{k, k, Read},
				TileRef{k, j, ReadWrite})
		}
		for i := k + 1; i < p; i++ { // column panel: Aik ← Aik·Ukk⁻¹
			b.task(TRSM, i, k, k,
				TileRef{k, k, Read},
				TileRef{i, k, ReadWrite})
		}
		for i := k + 1; i < p; i++ {
			for j := k + 1; j < p; j++ {
				b.task(GEMM, i, j, k,
					TileRef{i, k, Read},
					TileRef{k, j, Read},
					TileRef{i, j, ReadWrite})
			}
		}
	}
	return b.finish()
}

// QR builds the task graph of the tiled QR factorization (PLASMA-style
// flat-tree: GEQRT on the diagonal, ORMQR on the row, TSQRT down the panel,
// TSMQR trailing updates). Used by the "other factorizations" extension.
func QR(p int) *DAG {
	b := newBuilder("qr", p)
	for k := 0; k < p; k++ {
		b.task(GEQRT, -1, -1, k, TileRef{k, k, ReadWrite})
		for j := k + 1; j < p; j++ {
			b.task(ORMQR, k, j, k,
				TileRef{k, k, Read},
				TileRef{k, j, ReadWrite})
		}
		for i := k + 1; i < p; i++ {
			b.task(TSQRT, i, -1, k,
				TileRef{k, k, ReadWrite},
				TileRef{i, k, ReadWrite})
			for j := k + 1; j < p; j++ {
				b.task(TSMQR, i, j, k,
					TileRef{i, k, Read},
					TileRef{k, j, ReadWrite},
					TileRef{i, j, ReadWrite})
			}
		}
	}
	return b.finish()
}

// CholeskyLeftLooking builds the task graph of the *left-looking* tiled
// Cholesky variant: updates are applied lazily when a panel is reached,
// instead of eagerly after each factorization step (the right-looking
// Algorithm 1). Same kernels, same task counts, different dependency
// structure — left-looking has a longer critical path but touches each tile
// write-once per phase, a classic locality/parallelism trade-off that the
// schedulers and bounds can now measure.
func CholeskyLeftLooking(p int) *DAG {
	b := newBuilder("cholesky", p)
	for j := 0; j < p; j++ {
		// Accumulate all updates from previous panels into column j.
		for k := 0; k < j; k++ {
			b.task(SYRK, -1, j, k,
				TileRef{j, k, Read},
				TileRef{j, j, ReadWrite})
		}
		b.task(POTRF, -1, -1, j, TileRef{j, j, ReadWrite})
		for i := j + 1; i < p; i++ {
			for k := 0; k < j; k++ {
				b.task(GEMM, i, j, k,
					TileRef{i, k, Read},
					TileRef{j, k, Read},
					TileRef{i, j, ReadWrite})
			}
			b.task(TRSM, i, -1, j,
				TileRef{j, j, Read},
				TileRef{i, j, ReadWrite})
		}
	}
	return b.finish()
}
