// Package ext declares marker-claiming scheduler stand-ins whose proof
// obligations cross the package boundary into base: transitive calls,
// interface dispatch widened by CHA, promoted claims from embedded types,
// and //chol:pure contract acquisitions.
package ext

import "repro/internal/analysis/testdata/src/puremark/base"

// good claims both markers and is provable: Assign/Priority only read, and
// Init mutates the receiver (allowed — only Assign/Priority are constrained)
// without touching its seed.
type good struct {
	prio []int
}

func (s *good) SeedInvariant() bool { return true }
func (s *good) PureAssign() bool    { return true }

func (s *good) Init(p int, seed int64) { s.prio = append(s.prio, p) }

func (s *good) Assign(t *base.Task) int { return base.Score(t) }

func (s *good) Priority(t *base.Task) int { return s.prio[0] }

// selfmut claims PureAssign but Assign writes the receiver.
type selfmut struct{ hits int } // want `selfmut claims PureAssign but the claim is unprovable: \(\*selfmut\)\.Assign mutates-receiver: writes s\.hits`

func (s *selfmut) PureAssign() bool { return true }

func (s *selfmut) Assign(t *base.Task) int {
	s.hits++
	return s.hits
}

// mapranger claims SeedInvariant but Assign reaches a map range two hops
// away, in the other package.
type mapranger struct{} // want `mapranger claims SeedInvariant but the claim is unprovable: \(\*mapranger\)\.Assign ranges-map-nondet: calls base\.WorstScore .*: ranges over a map`

func (mapranger) SeedInvariant() bool { return true }

func (*mapranger) Assign(t *base.Task) int { return base.WorstScore(t) }

// widened claims SeedInvariant; its Assign dispatches through
// base.Estimator, which CHA widens to DirtyEstimator's map range.
type widened struct{ est base.Estimator } // want `widened claims SeedInvariant but the claim is unprovable: \(\*widened\)\.Assign ranges-map-nondet: calls \(DirtyEstimator\)\.Estimate .*: ranges over a map`

func (w *widened) SeedInvariant() bool { return true }

func (w *widened) Assign(t *base.Task) int { return w.est.Estimate(t) }

// seeduser claims SeedInvariant but Init consumes its seed.
type seeduser struct{ r int64 } // want `seeduser claims SeedInvariant but the claim is unprovable: \(\*seeduser\)\.Init reads its seed parameter`

func (s *seeduser) SeedInvariant() bool { return true }

func (s *seeduser) Init(p int, seed int64) { s.r = seed }

func (s *seeduser) Assign(t *base.Task) int { return int(s.r) }

// forwarder embeds good (the claim is promoted) and forwards its seed
// verbatim to a callee that ignores it — benign, so no diagnostic.
type forwarder struct{ good }

func (f *forwarder) Init(p int, seed int64) { f.good.Init(p, seed) }

// escaped's Assign impurity is decision-invariant (a counter that never
// feeds a decision); the claim is excused, with the digest suite as the
// justification.
//
//chollint:pure counter never feeds a decision; pinned by digest tests
type escaped struct{ n int }

func (e *escaped) PureAssign() bool { return true }

func (e *escaped) Assign(t *base.Task) int {
	e.n++
	return t.ID
}

// Allow is the //chol:pure contract fixture: values stored into it must be
// proven effect-free because calls through it are trusted.
//
//chol:pure
type Allow func(t *base.Task) []int

var counter int

// BadHint stores an impure closure into the contract at a return site.
func BadHint() Allow {
	return func(t *base.Task) []int { // want `function value stored into //chol:pure type ext\.Allow is not provably pure: .*mutates-global: writes counter`
		counter++
		return nil
	}
}

// GoodHint's closure allocates, which the contract allows.
func GoodHint() Allow {
	return func(t *base.Task) []int { return []int{t.ID} }
}

// Use is a sink so assignments and call arguments are acquisition sites too.
func Use(a Allow) {}

func CallSites() {
	Use(func(t *base.Task) []int { return nil })
	var a Allow
	a = func(t *base.Task) []int { // want `function value stored into //chol:pure type ext\.Allow is not provably pure: .*mutates-global: writes counter`
		counter += 2
		return nil
	}
	Use(a)
}
