package sched

import (
	"fmt"

	"repro/internal/graph"
)

// Static hints of Section V-C3. Class conventions follow internal/platform:
// class 0 = CPUs, class 1 = GPUs.

// TrsmTriangleOnCPU builds the paper's winning hint (Figure 9/10): every
// TRSM task operating on a tile at least k rows below the diagonal of its
// panel (i − panel ≥ k) is forced onto the CPUs; everything else stays
// dynamic. The paper finds k ≈ 6–8 optimal on Mirage.
func TrsmTriangleOnCPU(k int) AllowFunc {
	return func(t *graph.Task) []int {
		if t.Kind == graph.TRSM && t.I-t.K >= k {
			return []int{0}
		}
		return nil
	}
}

// GemmSyrkOnGPU forces GEMM and SYRK kernels onto the GPUs — the paper's
// first (and only mildly effective) experiment with static information.
func GemmSyrkOnGPU() AllowFunc {
	return func(t *graph.Task) []int {
		if t.Kind == graph.GEMM || t.Kind == graph.SYRK {
			return []int{1}
		}
		return nil
	}
}

// TrsmFractionOnCPU forces the given fraction of each panel's TRSMs (the
// ones farthest from the diagonal) onto CPUs — the conclusion's "this
// proportion of TRSM tasks should be run on CPUs" hint formalized.
func TrsmFractionOnCPU(p int, frac float64) AllowFunc {
	return func(t *graph.Task) []int {
		if t.Kind != graph.TRSM {
			return nil
		}
		panelLen := p - 1 - t.K // TRSMs in panel k: i ∈ [k+1, p)
		if panelLen <= 0 {
			return nil
		}
		// Distance rank from the bottom: i = p−1 is farthest.
		fromBottom := p - 1 - t.I
		if float64(fromBottom) < frac*float64(panelLen) {
			return []int{0}
		}
		return nil
	}
}

// ClassMap forces specific tasks onto specific resource classes (the
// mapping-only injection of Section VI-B: keep the CP solution's CPU/GPU
// split, let the dynamic scheduler pick order and worker).
func ClassMap(classOf map[int]int) AllowFunc {
	return func(t *graph.Task) []int {
		if c, ok := classOf[t.ID]; ok {
			return []int{c}
		}
		return nil
	}
}

// Combine chains hint functions; the first non-nil restriction wins.
func Combine(fs ...AllowFunc) AllowFunc {
	return func(t *graph.Task) []int {
		for _, f := range fs {
			if f == nil {
				continue
			}
			if c := f(t); c != nil {
				return c
			}
		}
		return nil
	}
}

// NewTriangleTRSM returns the dmdas-with-triangle-hint scheduler used for
// Figures 10 and 11, named after its k parameter.
func NewTriangleTRSM(k int) Scheduler {
	return NewDMDASWithHints(fmt.Sprintf("dmdas+trsm-cpu(k=%d)", k), TrsmTriangleOnCPU(k))
}
