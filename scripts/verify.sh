#!/bin/sh
# Tier-1 verification gate: every PR must leave this green.
set -eux
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
# chollint: domain-specific analyzers (internal/analysis) enforcing the
# determinism, hot-path-allocation, and plumbing invariants statically.
go run ./cmd/chollint ./...
# Race-enabled tests: the -race run is load-bearing for the parallel CP
# search (internal/cpsolve parallel_test.go, internal/core optimize_test.go)
# — it is what proves the shared-incumbent/claim-counter synchronization
# sound while the determinism digests prove the results identical.
go test -race ./...
# Benchmark harness smoke: a fixed-iteration subset of the pinned suite
# (<60s) proving the hot paths still run end to end. Writes nothing.
go run ./cmd/cholbench -smoke
