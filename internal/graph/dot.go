package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the task graph in Graphviz format, colored by kernel kind —
// the generator of the paper's Figure 1 (the 5×5-tile Cholesky DAG).
func (d *DAG) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", sanitize(d.Algorithm))
	b.WriteString("  rankdir=TB;\n  node [style=filled, fontname=\"monospace\"];\n")
	for _, t := range d.Tasks {
		fmt.Fprintf(&b, "  %q [fillcolor=%q, shape=%s];\n",
			t.Name(), dotColor(t.Kind), dotShape(t.Kind))
	}
	// Deterministic edge order.
	type edge struct{ from, to int }
	var edges []edge
	for _, t := range d.Tasks {
		for _, s := range t.Succ {
			edges = append(edges, edge{t.ID, s})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q;\n", d.Tasks[e.from].Name(), d.Tasks[e.to].Name())
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			return r
		}
		return '_'
	}, s)
}

// dotColor mirrors Figure 1's legend: one fill per kernel family.
func dotColor(k Kind) string {
	switch k {
	case POTRF, GETRF, GEQRT:
		return "#f4cccc" // red family: the diagonal kernel
	case TRSM, ORMQR, TSQRT, TRSV:
		return "#cfe2f3" // blue family
	case SYRK:
		return "#d9ead3" // green family
	default:
		return "#fce5cd" // orange family: GEMM-like updates
	}
}

func dotShape(k Kind) string {
	switch k {
	case POTRF, GETRF, GEQRT:
		return "octagon"
	default:
		return "box"
	}
}
