package experiments

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// Fig3Real runs Figure 3's homogeneous comparison as a *genuinely actual*
// execution: the real pure-Go kernels on real goroutine workers, with the
// three policy analogues (random-per-worker ≙ random, fifo ≙ dmda,
// priority ≙ dmdas), mean ± σ over cfg.Runs runs.
//
// Pure-Go kernels are 1–2 orders of magnitude slower than MKL, so the
// default configuration uses smaller tiles (cfg.RealNB) — absolute GFLOP/s
// are host-scale, only the *shape* (random ≪ fifo ≈ priority) maps to the
// paper.
func Fig3Real(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title: fmt.Sprintf("Figure 3 (real execution) — %d workers, nb=%d",
			cfg.RealWorkers, cfg.RealNB),
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.RealSizes),
	}
	policies := []runtime.Policy{runtime.RandomPerWorker, runtime.FIFO, runtime.Priority}
	names := []string{"random", "fifo (dmda-like)", "priority (dmdas-like)"}
	for pi, pol := range policies {
		var means, sigmas []float64
		for _, n := range cfg.RealSizes {
			f := kernels.CholeskyFlops(n * cfg.RealNB)
			m, s, err := repeated(cfg, func(seed int64) (float64, error) {
				a := matrix.RandSPD(n*cfg.RealNB, seed)
				tl, err := matrix.FromDense(a, cfg.RealNB)
				if err != nil {
					return 0, err
				}
				r, err := runtime.Factor(tl, runtime.Options{
					Workers: cfg.RealWorkers, Policy: pol, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-10 {
					return 0, fmt.Errorf("fig3real: residual %g", res)
				}
				return platform.GFlops(f, r.Seconds), nil
			})
			if err != nil {
				return nil, err
			}
			means = append(means, m)
			sigmas = append(sigmas, s)
		}
		tbl.Add(names[pi], means, sigmas)
	}
	return tbl, nil
}

// CalibrationReport measures the real kernels on this host at tile size nb
// and reports the per-kernel GFLOP/s — the StarPU-calibration analogue used
// to sanity-check the platform model against real hardware.
func CalibrationReport(nb, reps int) *stats.Table {
	times := platform.Calibrate(nb, reps)
	tbl := &stats.Table{
		Title:       fmt.Sprintf("Host kernel calibration (nb=%d)", nb),
		XLabel:      "kernel",
		YLabel:      "GFLOP/s",
		Xs:          []float64{0, 1, 2, 3},
		Categorical: true,
		XNames:      []string{"POTRF", "TRSM", "SYRK", "GEMM"},
	}
	fl := []float64{
		kernels.PotrfFlops(nb), kernels.TrsmFlops(nb),
		kernels.SyrkFlops(nb), kernels.GemmFlops(nb),
	}
	kinds := []float64{
		times[0], times[1], times[2], times[3],
	}
	vals := make([]float64, 4)
	for i := range vals {
		vals[i] = platform.GFlops(fl[i], kinds[i])
	}
	tbl.Add("host", vals, nil)
	return tbl
}
