package service

import (
	"io"
	"math"
	"net/http"
	"testing"

	"repro/internal/graph"
	"repro/internal/trace"
)

func getOK(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return resp
}

// TestRunLedgerEndpoints is the run-ledger acceptance path: a recorded
// simulation becomes inspectable as a summary list entry, a gap-attributed
// detail view, and a loadable Chrome trace.
func TestRunLedgerEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Platform: "mirage", Scheduler: "dmda", Tiles: 8, Seed: 1, Record: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}
	sim := decodeBody[SimulateResponse](t, resp)
	if sim.RunID == "" {
		t.Fatal("computed simulation did not return a run_id")
	}

	list := decodeBody[[]RunSummary](t, getOK(t, ts.URL+"/v1/runs"))
	if len(list) != 1 || list[0].ID != sim.RunID {
		t.Fatalf("run list %+v, want the one ledgered run %s", list, sim.RunID)
	}
	if !list[0].Recorded || list[0].Events == 0 {
		t.Fatalf("run %s should be recorded with events: %+v", sim.RunID, list[0])
	}

	detail := decodeBody[RunDetail](t, getOK(t, ts.URL+"/v1/runs/"+sim.RunID))
	if detail.Attribution == nil {
		t.Fatal("run detail missing gap attribution")
	}
	a := detail.Attribution
	if diff := math.Abs(a.Sum() - a.GapSec); diff > 1e-9 {
		t.Fatalf("attribution components sum to %g, gap %g (off by %g)", a.Sum(), a.GapSec, diff)
	}
	if detail.EventCounts["decision"] == 0 || detail.MeanDecisionDepth <= 0 {
		t.Fatalf("recorded run detail missing decision events: %+v", detail.EventCounts)
	}

	// The chrome trace must load as a trace-event document covering every
	// task of the DAG.
	tresp := getOK(t, ts.URL+"/v1/runs/"+sim.RunID+"/trace?format=chrome")
	data, err := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("chrome trace Content-Type %q", ct)
	}
	g, err := trace.ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("chrome trace endpoint emitted an unloadable document: %v", err)
	}
	if want := len(graph.Cholesky(8).Tasks); len(g.Spans) != want {
		t.Fatalf("chrome trace has %d execution spans, want %d", len(g.Spans), want)
	}

	for _, format := range []string{"paje", "gantt"} {
		fr := getOK(t, ts.URL+"/v1/runs/"+sim.RunID+"/trace?format="+format)
		body, _ := io.ReadAll(fr.Body)
		fr.Body.Close()
		if len(body) == 0 {
			t.Fatalf("%s trace is empty", format)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/runs/" + sim.RunID + "/trace?format=bogus"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/runs/run-999999"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %d, want 404", resp.StatusCode)
	}

	if v := s.Metrics().CounterValue("cholserved_sim_events_total", Labels{"type": "decision"}); v <= 0 {
		t.Fatalf("cholserved_sim_events_total{type=decision} = %v, want > 0", v)
	}
}

// TestRunLedgerBounded verifies eviction: the ledger keeps only the newest
// LedgerSize runs, and cache hits do not mint new entries.
func TestRunLedgerBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{LedgerSize: 2})
	var ids []string
	for _, tiles := range []int{4, 5, 6} {
		resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
			Platform: "mirage", Scheduler: "dmda", Tiles: tiles, Seed: 1,
		})
		ids = append(ids, decodeBody[SimulateResponse](t, resp).RunID)
	}
	if s.Ledger().Len() != 2 {
		t.Fatalf("ledger holds %d runs, want 2", s.Ledger().Len())
	}
	if _, ok := s.Ledger().Get(ids[0]); ok {
		t.Fatalf("oldest run %s should have been evicted", ids[0])
	}
	if _, ok := s.Ledger().Get(ids[2]); !ok {
		t.Fatalf("newest run %s missing", ids[2])
	}

	// A repeat of the last request hits the cache: same run_id, no new entry.
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Platform: "mirage", Scheduler: "dmda", Tiles: 6, Seed: 1,
	})
	if got := decodeBody[SimulateResponse](t, resp).RunID; got != ids[2] {
		t.Fatalf("cache hit returned run_id %s, want %s", got, ids[2])
	}
	if s.Ledger().Len() != 2 {
		t.Fatalf("cache hit grew the ledger to %d", s.Ledger().Len())
	}

	// Unrecorded runs are ledgered too, flagged as such.
	summaries := s.Ledger().List()
	for _, sm := range summaries {
		if sm.Recorded || sm.Events != 0 {
			t.Fatalf("unrecorded run summarized as recorded: %+v", sm)
		}
	}
}
