package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
)

// The "other dense factorizations" extension: LU and QR entry points with
// the same shape as Factorize, plus algorithm-aware DAG/flop helpers used by
// the CLI and examples.

// FactorizeLU computes the unpivoted LU factorization of a (diagonally
// dominant) matrix in parallel and returns the combined LU factors and the
// relative residual ‖A − L·U‖_F / ‖A‖_F.
func FactorizeLU(a *matrix.Dense, nb, workers int) (*matrix.Dense, float64, error) {
	tf, err := matrix.FromDenseFull(a, nb)
	if err != nil {
		return nil, 0, err
	}
	if _, err := runtime.FactorLU(tf, runtime.Options{Workers: workers, Policy: runtime.Priority}); err != nil {
		return nil, 0, err
	}
	return tf.ToDense(), kernels.LUResidual(a, tf), nil
}

// FactorizeQR computes the tiled QR factorization in parallel and returns
// the R factor and the orthogonal-invariance residual
// ‖RᵀR − AᵀA‖_F / ‖AᵀA‖_F.
func FactorizeQR(a *matrix.Dense, nb, workers int) (*matrix.Dense, float64, error) {
	tf, err := matrix.FromDenseFull(a, nb)
	if err != nil {
		return nil, 0, err
	}
	if _, _, err := runtime.FactorQR(tf, runtime.Options{Workers: workers, Policy: runtime.Priority}); err != nil {
		return nil, 0, err
	}
	return kernels.QRFactorR(tf), kernels.QRResidual(a, tf), nil
}

// SolveSPD solves A·x = b end to end with the parallel runtime: tiled
// Cholesky factorization followed by the parallel forward/backward
// substitutions (§II-A of the paper). It returns x and the relative
// residual ‖A·x − b‖₂ / ‖b‖₂.
func SolveSPD(a *matrix.Dense, b []float64, nb, workers int) ([]float64, float64, error) {
	if len(b) != a.N {
		return nil, 0, fmt.Errorf("core: rhs length %d != dimension %d", len(b), a.N)
	}
	tl, err := matrix.FromDense(a, nb)
	if err != nil {
		return nil, 0, err
	}
	rhs := append([]float64{}, b...)
	x, err := runtime.FactorAndSolve(tl, rhs, runtime.Options{Workers: workers, Policy: runtime.Priority})
	if err != nil {
		return nil, 0, err
	}
	// Residual against the original A and b.
	num, den := 0.0, 0.0
	for i := 0; i < a.N; i++ {
		s := -b[i]
		for j := 0; j < a.N; j++ {
			s += a.At(i, j) * x[j]
		}
		num += s * s
		den += b[i] * b[i]
	}
	res := 0.0
	if den > 0 {
		res = math.Sqrt(num / den)
	}
	return x, res, nil
}

// DAGByAlgorithm builds the task graph of the named factorization.
func DAGByAlgorithm(alg string, p int) (*graph.DAG, error) {
	switch alg {
	case "cholesky":
		return graph.Cholesky(p), nil
	case "lu":
		return graph.LU(p), nil
	case "qr":
		return graph.QR(p), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q (cholesky, lu, qr)", alg)
	}
}

// FlopsByAlgorithm returns the factorization flop total for an N×N matrix.
func FlopsByAlgorithm(alg string, n int) (float64, error) {
	switch alg {
	case "cholesky":
		return kernels.CholeskyFlops(n), nil
	case "lu":
		return kernels.LUFlops(n), nil
	case "qr":
		return kernels.QRFlops(n), nil
	default:
		return 0, fmt.Errorf("core: unknown algorithm %q", alg)
	}
}

// PlatformForAlgorithm returns the default Mirage-family model able to run
// the algorithm: the plain Mirage timing table for Cholesky, the extended
// one for LU and QR.
func PlatformForAlgorithm(alg string, nocomm bool) (*platform.Platform, error) {
	var p *platform.Platform
	switch alg {
	case "cholesky":
		p = platform.Mirage()
	case "lu", "qr":
		p = platform.MirageExtended()
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	if nocomm {
		p = platform.WithoutCommunication(p)
	}
	return p, nil
}
