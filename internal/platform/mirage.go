package platform

import (
	"math"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// TileNB is the tile size used throughout the paper's experiments: previous
// work found nb = 960 optimal on Mirage, and all matrix sizes are multiples
// of it.
const TileNB = 960

// Sustained per-kernel throughput of the CPU-core model (GFLOP/s), chosen so
// that (a) the GPU/CPU speedups equal the paper's Table I exactly and (b)
// the aggregate GEMM peak lands at Fig. 2's ≈960 GFLOP/s asymptote
// (3 GPUs × 290 + 9 cores × 10). See DESIGN.md §6 for the derivation.
const (
	cpuGemmGFlops  = 10.0
	cpuSyrkGFlops  = 9.0
	cpuTrsmGFlops  = 9.0
	cpuPotrfGFlops = 5.5
)

// Table I of the paper: GPU speedup over one CPU core per kernel.
const (
	SpeedupPOTRF = 2.0
	SpeedupTRSM  = 11.0
	SpeedupSYRK  = 26.0
	SpeedupGEMM  = 29.0
)

// CPUKernelTimes returns the CPU-core timing table of the Mirage model for
// tile size nb.
func CPUKernelTimes(nb int) map[graph.Kind]float64 {
	return map[graph.Kind]float64{
		graph.POTRF: kernels.PotrfFlops(nb) / (cpuPotrfGFlops * 1e9),
		graph.TRSM:  kernels.TrsmFlops(nb) / (cpuTrsmGFlops * 1e9),
		graph.SYRK:  kernels.SyrkFlops(nb) / (cpuSyrkGFlops * 1e9),
		graph.GEMM:  kernels.GemmFlops(nb) / (cpuGemmGFlops * 1e9),
	}
}

// GPUKernelTimes derives the GPU timing table from the CPU one via the
// Table I speedups (exactly, so derived quantities like the acceleration
// factors K(n) match the paper's printed values).
func GPUKernelTimes(nb int) map[graph.Kind]float64 {
	cpu := CPUKernelTimes(nb)
	return map[graph.Kind]float64{
		graph.POTRF: cpu[graph.POTRF] / SpeedupPOTRF,
		graph.TRSM:  cpu[graph.TRSM] / SpeedupTRSM,
		graph.SYRK:  cpu[graph.SYRK] / SpeedupSYRK,
		graph.GEMM:  cpu[graph.GEMM] / SpeedupGEMM,
	}
}

// Mirage returns the model of the paper's experimental machine in its
// experiment configuration: 9 CPU cores (2 hexa-core Westmere X5650, 3 cores
// reserved to drive the GPUs) + 3 NVIDIA Tesla M2070 GPUs, PCIe ≈6 GB/s,
// tile size 960 in double precision (7.37 MB per tile).
//
// This is the "heterogeneous unrelated" platform: per-kernel speedups differ
// (2× to 29×).
func Mirage() *Platform {
	return &Platform{
		Name: "mirage",
		Classes: []Class{
			{Name: "cpu", Count: 9, Times: CPUKernelTimes(TileNB)},
			{Name: "gpu", Count: 3, Times: GPUKernelTimes(TileNB)},
		},
		Bus: Bus{
			Enabled:      true,
			BandwidthBps: 6e9,
			LatencySec:   15e-6,
		},
		TileBytes: float64(TileNB) * TileNB * 8,
		Overhead:  Overhead{PerTaskSec: 20e-6, JitterFrac: 0.03},
	}
}

// Homogeneous returns a CPU-only platform with n cores (the paper's
// homogeneous category uses n = 9).
func Homogeneous(n int) *Platform {
	return &Platform{
		Name: "homogeneous",
		Classes: []Class{
			{Name: "cpu", Count: n, Times: CPUKernelTimes(TileNB)},
		},
		Bus:       Bus{Enabled: false},
		TileBytes: float64(TileNB) * TileNB * 8,
		Overhead:  Overhead{PerTaskSec: 20e-6, JitterFrac: 0.03},
	}
}

// Related builds the paper's fictitious "heterogeneous related" platform
// from a base platform: GPU kernel times are replaced by CPU time / K for a
// single common acceleration factor K (typically K = AccelerationFactor of
// the DAG under study, which depends on the tile count).
func Related(base *Platform, k float64) *Platform {
	if len(base.Classes) < 2 {
		panic("platform: Related requires a CPU class and an accelerator class")
	}
	p := base.Clone()
	p.Name = base.Name + "-related"
	for i := 1; i < len(p.Classes); i++ {
		times := map[graph.Kind]float64{}
		for kind, t := range p.Classes[0].Times {
			times[kind] = t / k
		}
		p.Classes[i].Times = times
	}
	return p
}

// WithoutCommunication returns a copy with data transfers disabled — the
// configuration the paper uses when comparing simulated schedules to the
// communication-oblivious bounds ("we have used the simulated performance,
// where communication costs have been removed").
func WithoutCommunication(base *Platform) *Platform {
	p := base.Clone()
	p.Bus.Enabled = false
	p.Name = base.Name + "-nocomm"
	return p
}

// ScaleClassTimes returns a copy with every kernel time of class r multiplied
// by f (used by ablation benches: slower/faster GPUs, more CPU cores, ...).
func ScaleClassTimes(base *Platform, r int, f float64) *Platform {
	p := base.Clone()
	for kind, t := range p.Classes[r].Times {
		p.Classes[r].Times[kind] = t * f
	}
	return p
}

// GFlops converts (flops, seconds) to GFLOP/s, guarding against zero time.
func GFlops(flops, seconds float64) float64 {
	if seconds <= 0 {
		return math.Inf(1)
	}
	return flops / seconds / 1e9
}

// Sirocco returns a model of a newer-generation mixed node — the
// "verify the results on other hardware platforms" direction of the
// paper's conclusion: 24 CPU cores plus two *different* GPU generations
// (two fast, two slow), making three resource classes. Speedups are scaled
// from the Mirage ratios: the fast GPUs roughly double the M2070 throughput
// on regular kernels, the slow ones sit midway between CPU and M2070.
func Sirocco() *Platform {
	cpu := CPUKernelTimes(TileNB)
	fast := map[graph.Kind]float64{
		graph.POTRF: cpu[graph.POTRF] / 3,
		graph.TRSM:  cpu[graph.TRSM] / 22,
		graph.SYRK:  cpu[graph.SYRK] / 50,
		graph.GEMM:  cpu[graph.GEMM] / 56,
	}
	slow := map[graph.Kind]float64{
		graph.POTRF: cpu[graph.POTRF] / 1.5,
		graph.TRSM:  cpu[graph.TRSM] / 6,
		graph.SYRK:  cpu[graph.SYRK] / 13,
		graph.GEMM:  cpu[graph.GEMM] / 15,
	}
	return &Platform{
		Name: "sirocco",
		Classes: []Class{
			{Name: "cpu", Count: 24, Times: cpu},
			{Name: "gpu-fast", Count: 2, Times: fast},
			{Name: "gpu-slow", Count: 2, Times: slow},
		},
		Bus: Bus{
			Enabled:      true,
			BandwidthBps: 12e9,
			LatencySec:   10e-6,
		},
		TileBytes: float64(TileNB) * TileNB * 8,
		Overhead:  Overhead{PerTaskSec: 15e-6, JitterFrac: 0.03},
	}
}
