package autotune

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

func TestEfficiencyShape(t *testing.T) {
	if Efficiency(960, 960) != 1 || Efficiency(2000, 960) != 1 {
		t.Fatal("efficiency above reference must be 1")
	}
	if e := Efficiency(240, 960); e <= 0.5 || e >= 1 {
		t.Fatalf("quarter-size efficiency %g out of band", e)
	}
	// Monotone in nb.
	prev := 0.0
	for nb := 60; nb <= 960; nb += 60 {
		e := Efficiency(nb, 960)
		if e < prev {
			t.Fatalf("efficiency not monotone at nb=%d", nb)
		}
		prev = e
	}
}

func TestScalePlatformReferenceIdentity(t *testing.T) {
	ref := platform.Mirage()
	p := ScalePlatform(ref, platform.TileNB, platform.TileNB)
	for _, k := range graph.CholeskyKinds {
		for c := 0; c <= 1; c++ {
			if math.Abs(p.Time(c, k)-ref.Time(c, k)) > 1e-15 {
				t.Fatalf("identity scaling changed %v", k)
			}
		}
	}
	if p.TileBytes != ref.TileBytes {
		t.Fatal("tile bytes changed")
	}
}

// TestScalePlatformMatchesScaledModel pins ScalePlatform as a materialized
// view of platform.ScaledModel: every per-kernel time of the scaled platform
// must equal ScaledModel.Time bit-for-bit (compared as Float64bits, not
// within a tolerance), for every class and a spread of tile sizes.
func TestScalePlatformMatchesScaledModel(t *testing.T) {
	ref := platform.Mirage()
	m := platform.NewScaledModel(ref, platform.TileNB)
	for _, nb := range []int{120, 240, 480, 960, 1920} {
		p := ScalePlatform(ref, platform.TileNB, nb)
		for _, k := range graph.CholeskyKinds {
			for c := range p.Classes {
				got := p.Time(c, k)
				want := m.Time(c, k, nb)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("nb=%d class=%d %v: ScalePlatform %v != ScaledModel %v", nb, c, k, got, want)
				}
			}
		}
		if p.RefNB != nb {
			t.Fatalf("nb=%d: scaled platform RefNB = %d", nb, p.RefNB)
		}
	}
}

func TestScalePlatformSmallerTilesFasterKernels(t *testing.T) {
	ref := platform.Mirage()
	p := ScalePlatform(ref, platform.TileNB, 480)
	for _, k := range graph.CholeskyKinds {
		if p.Time(1, k) >= ref.Time(1, k) {
			t.Fatalf("%v at nb=480 not faster than at 960", k)
		}
	}
	// GEMM scales by ≈ (1/2)³ / eff: between 8× and 5× faster.
	r := ref.Time(1, graph.GEMM) / p.Time(1, graph.GEMM)
	if r < 5 || r > 8 {
		t.Fatalf("GEMM scaling ratio %g out of band", r)
	}
}

func TestSweepFindsInteriorOptimum(t *testing.T) {
	// N = 7680: candidates from very small (overhead-dominated) to one huge
	// tile (no parallelism). The optimum must be interior — neither extreme.
	ref := platform.Mirage()
	pts, err := Sweep(7680, []int{120, 240, 480, 960, 1920, 3840, 7680}, ref, platform.TileNB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("%d points", len(pts))
	}
	best := Best(pts)
	if best.NB == 120 || best.NB == 7680 {
		t.Fatalf("optimum at extreme nb=%d", best.NB)
	}
	// One giant tile = serial execution on the fastest unit: worst or near it.
	var nb7680 Point
	for _, p := range pts {
		if p.NB == 7680 {
			nb7680 = p
		}
	}
	if nb7680.GFlops >= best.GFlops {
		t.Fatal("serial single tile cannot be optimal")
	}
}

func TestSweepSplitsSkipsBadSpecs(t *testing.T) {
	pts, err := SweepSplits(7680, 960, [][2]int{{2, 4}, {2, 6}, {7, 3}, {2, 99}},
		platform.Mirage(), platform.TileNB, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points, want 2 (7∤960 and fromK=99 must be skipped)", len(pts))
	}
	for _, pt := range pts {
		if pt.NB != 960 || pt.Tiles != 8 || pt.Factor != 2 {
			t.Fatalf("bad point %+v", pt)
		}
		if pt.Makespan <= 0 || pt.GFlops <= 0 {
			t.Fatalf("degenerate sample %+v", pt)
		}
	}
	if _, err := SweepSplits(7680, 7, nil, platform.Mirage(), platform.TileNB, 42); err == nil {
		t.Fatal("non-dividing coarse nb must error")
	}
}

func TestSweepRejectsNoDivisors(t *testing.T) {
	if _, err := Sweep(1000, []int{7, 13}, platform.Mirage(), platform.TileNB, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestDivisors(t *testing.T) {
	d := Divisors(960, 100, 500)
	want := []int{120, 160, 192, 240, 320, 480}
	if len(d) != len(want) {
		t.Fatalf("divisors %v", d)
	}
	for i, v := range want {
		if d[i] != v {
			t.Fatalf("divisors %v, want %v", d, want)
		}
	}
}

// TestSweepSeedsBatchMatchesSerial: the batched replay path is a pure
// throughput knob — every sample (mean, σ, makespan) must equal the serial
// per-seed loop bit for bit.
func TestSweepSeedsBatchMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	cands := []int{480, 960, 1920}
	serial, err := SweepSeeds(context.Background(), 3840, cands, platform.Mirage(), platform.TileNB, seeds, false)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := SweepSeeds(context.Background(), 3840, cands, platform.Mirage(), platform.TileNB, seeds, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(batched) {
		t.Fatalf("serial %d points, batched %d", len(serial), len(batched))
	}
	for i := range serial {
		if serial[i] != batched[i] {
			t.Errorf("point %d: serial %+v, batched %+v", i, serial[i], batched[i])
		}
	}
	if _, err := SweepSeeds(context.Background(), 3840, cands, platform.Mirage(), platform.TileNB, nil, true); err == nil {
		t.Fatal("empty seed list must error")
	}
}
