// Package cliflags is the shared tile-size flag vocabulary of the CLIs:
// cholsim, cholbounds, choltune and cholsolve all register -nb (and, where
// mixed-tile DAGs make sense, -nb-split) through the helpers here, so the
// flag names, defaults, help text and the "F@K" split syntax cannot drift
// between binaries.
package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
)

// NB registers the shared -nb flag on fs and returns its destination. def is
// the binary's natural default (platform.TileNB for the simulation tools, a
// runtime-appropriate size for cholsolve); what describes what the size is
// applied to ("simulated kernels", "runtime tiles").
func NB(fs *flag.FlagSet, def int, what string) *int {
	return fs.Int("nb", def, fmt.Sprintf("tile size in elements for %s", what))
}

// NBSplit registers the shared -nb-split flag on fs. The empty default means
// "uniform tiles"; a non-empty value is a Split spec in the F@K syntax.
func NBSplit(fs *flag.FlagSet) *string {
	return fs.String("nb-split", "",
		"HeSP-style mixed tiles as F@K: from panel K on, split every trailing coarse tile F× per side (e.g. 2@4); empty = uniform")
}

// Split is a parsed -nb-split specification: from coarse panel FromK on, the
// trailing submatrix is refined so each coarse tile becomes Factor×Factor
// fine tiles (graph.CholeskySplit's arguments).
type Split struct {
	Factor int
	FromK  int
}

// ParseSplit parses the "F@K" syntax. Factor must be ≥ 2 (1 would be the
// uniform DAG — spell that as an empty -nb-split) and K ≥ 0; whether K and
// the factor fit a concrete tile count and coarse size is validated by
// Split.Check at DAG-build time.
func ParseSplit(s string) (Split, error) {
	fTxt, kTxt, ok := strings.Cut(s, "@")
	if !ok {
		return Split{}, fmt.Errorf("cliflags: -nb-split %q is not of the form F@K (e.g. 2@4)", s)
	}
	f, err := strconv.Atoi(fTxt)
	if err != nil || f < 2 {
		return Split{}, fmt.Errorf("cliflags: -nb-split factor in %q must be an integer ≥ 2", s)
	}
	k, err := strconv.Atoi(kTxt)
	if err != nil || k < 0 {
		return Split{}, fmt.Errorf("cliflags: -nb-split panel in %q must be an integer ≥ 0", s)
	}
	return Split{Factor: f, FromK: k}, nil
}

// Check validates the spec against a concrete problem: tiles coarse panels of
// size nb each. It reports the errors graph.CholeskySplit would panic on.
func (sp Split) Check(tiles, nb int) error {
	if sp.FromK > tiles {
		return fmt.Errorf("cliflags: -nb-split panel %d beyond the last tile %d", sp.FromK, tiles)
	}
	if nb%sp.Factor != 0 {
		return fmt.Errorf("cliflags: -nb-split factor %d does not divide the tile size %d", sp.Factor, nb)
	}
	return nil
}

// String renders the spec back in flag syntax.
func (sp Split) String() string {
	return fmt.Sprintf("%d@%d", sp.Factor, sp.FromK)
}
