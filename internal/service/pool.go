package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Pool.Do when the admission queue is at its
// depth limit; handlers map it to 503 so overload sheds instead of piling
// unbounded goroutines behind the worker slots.
var ErrQueueFull = errors.New("service: evaluation queue full")

// Pool bounds the evaluation work a server runs at once: at most `workers`
// computations execute concurrently, and at most `queueDepth` admitted
// requests may wait for a slot. fn runs on the caller's goroutine while it
// holds a slot; it is expected to honour ctx so a timed-out request frees
// its slot promptly.
type Pool struct {
	slots      chan struct{}
	queueDepth int64
	queued     atomic.Int64
	active     atomic.Int64
}

// NewPool returns a pool of `workers` slots (minimum 1) admitting at most
// `queueDepth` waiters (minimum 1).
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &Pool{slots: make(chan struct{}, workers), queueDepth: int64(queueDepth)}
}

// Do runs fn under a worker slot. It returns ErrQueueFull when the waiting
// line is at capacity, ctx's error when the context expires before a slot
// frees, and fn's error otherwise.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if p.queued.Add(1) > p.queueDepth {
		p.queued.Add(-1)
		return ErrQueueFull
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.queued.Add(-1)
		return ctx.Err()
	}
	p.queued.Add(-1)
	p.active.Add(1)
	defer func() {
		p.active.Add(-1)
		<-p.slots
	}()
	return fn()
}

// QueueDepth returns how many admitted requests are waiting for a slot.
func (p *Pool) QueueDepth() int64 { return p.queued.Load() }

// Active returns how many computations hold a slot right now.
func (p *Pool) Active() int64 { return p.active.Load() }
