// Package obs is the simulator's instrumentation subsystem: a typed,
// allocation-conscious event recorder capturing *why* a dynamic scheduler
// behaved the way it did, and a gap-attribution analysis decomposing the
// distance between an executed schedule and the paper's mixed bound.
//
// The paper's entire Section V–VI argument is built on reading traces: the
// Figure-12 Gantt charts and the §V-C3 analysis ("analyzing traces ...
// reveals that both policies allocate very few TRSMs on CPUs") are what
// justify the static hints and the mixed bound itself. A post-hoc Gantt
// shows *what* dmda/dmdas did; the recorder keeps the per-candidate
// completion-time terms, transfer timings and eviction pressure that the
// event loop would otherwise discard, so the *why* survives the run.
//
// Design constraints, in order:
//
//   - a nil *Recorder is the off switch: every instrumentation site in the
//     simulator is a single pointer check, so the PR2 allocation/op wins
//     are preserved when tracing is off (pinned by cmd/cholbench);
//   - events are concrete structs appended to per-kind slices — no
//     interfaces, no maps on the hot path; decision candidates live in one
//     shared backing slice indexed by (offset, length) pairs;
//   - Reset keeps capacity, so a reused recorder reaches steady-state
//     zero-allocation recording.
package obs

import "repro/internal/graph"

// Ready marks a task becoming ready (all predecessors finished) and being
// handed to the scheduler.
type Ready struct {
	TimeSec float64 `json:"time_sec"`
	Task    int32   `json:"task"`
}

// Candidate is one worker considered by a scheduling decision, with the
// estimated-completion-time terms the policy weighed (or would have
// weighed) at that instant.
type Candidate struct {
	Worker       int32   `json:"worker"`
	Class        int32   `json:"class"`
	Chosen       bool    `json:"chosen"`
	Infeasible   bool    `json:"infeasible,omitempty"`    // class has no implementation for the kernel
	HintExcluded bool    `json:"hint_excluded,omitempty"` // a static hint forbids the class
	ExecSec      float64 `json:"exec_sec"`                // estimated execution time
	TransferSec  float64 `json:"transfer_sec"`            // estimated PCI transfer for missing tiles
	QueueWaitSec float64 `json:"queue_wait_sec"`          // estimated wait behind the worker's queue
	ECTSec       float64 `json:"ect_sec"`                 // estimated completion time (absolute)
}

// Decision is one scheduling decision: the chosen worker plus every
// candidate's estimate terms. Candidates are stored in the recorder's
// shared Candidates slice at [CandOff, CandOff+CandLen).
type Decision struct {
	TimeSec float64    `json:"time_sec"`
	Task    int32      `json:"task"`
	Kind    graph.Kind `json:"kind"`
	Worker  int32      `json:"worker"` // chosen
	CandOff int32      `json:"-"`
	CandLen int32      `json:"-"`
}

// Transfer is one PCI tile hop (prefetch, host staging, or LRU write-back).
type Transfer struct {
	StartSec  float64 `json:"start_sec"`
	EndSec    float64 `json:"end_sec"`
	Tile      int32   `json:"tile"`
	From      int32   `json:"from"` // memory node
	To        int32   `json:"to"`   // memory node
	Writeback bool    `json:"writeback,omitempty"`
}

// Eviction is one tile dropped from device memory by the LRU manager.
type Eviction struct {
	TimeSec   float64 `json:"time_sec"`
	Node      int32   `json:"node"`
	Tile      int32   `json:"tile"`
	Writeback bool    `json:"writeback,omitempty"` // the drop forced a device→host copy
}

// Idle is one worker idle interval ending at a task start. StallSec is the
// tail portion spent waiting for data transfers (the worker was otherwise
// free to run); the rest is queue starvation.
type Idle struct {
	Worker   int32   `json:"worker"`
	FromSec  float64 `json:"from_sec"`
	ToSec    float64 `json:"to_sec"`
	StallSec float64 `json:"stall_sec"`
}

// Recorder accumulates simulation events. The zero value is ready to use;
// a nil *Recorder disables recording (the simulator's fast path).
type Recorder struct {
	Readies    []Ready
	Decisions  []Decision
	Candidates []Candidate // shared backing for Decision candidate ranges
	Transfers  []Transfer
	Evictions  []Eviction
	Idles      []Idle
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// DecisionCandidates returns the candidate slice of one decision.
func (r *Recorder) DecisionCandidates(d Decision) []Candidate {
	return r.Candidates[d.CandOff : d.CandOff+d.CandLen]
}

// Reset drops all events but keeps the backing capacity, so a reused
// recorder records without further allocation.
func (r *Recorder) Reset() {
	r.Readies = r.Readies[:0]
	r.Decisions = r.Decisions[:0]
	r.Candidates = r.Candidates[:0]
	r.Transfers = r.Transfers[:0]
	r.Evictions = r.Evictions[:0]
	r.Idles = r.Idles[:0]
}

// Events returns the total number of recorded events (candidates are terms
// of their decision, not separate events).
func (r *Recorder) Events() int {
	if r == nil {
		return 0
	}
	return len(r.Readies) + len(r.Decisions) + len(r.Transfers) + len(r.Evictions) + len(r.Idles)
}

// EventCounts returns per-type event counts, keyed by the stable type names
// used in metrics and reports. Nil-safe.
func (r *Recorder) EventCounts() map[string]int {
	if r == nil {
		return nil
	}
	return map[string]int{
		"ready":    len(r.Readies),
		"decision": len(r.Decisions),
		"transfer": len(r.Transfers),
		"eviction": len(r.Evictions),
		"idle":     len(r.Idles),
	}
}

// EventCount is one (type, count) pair from EventCountsSorted.
type EventCount struct {
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// EventCountsSorted returns per-type event counts in ascending key order.
// Export paths (metrics series, ledger JSON) must iterate this instead of
// ranging over the EventCounts map, so emission order is deterministic
// run-to-run (the contract chollint's detranged analyzer polices in the
// core). Nil-safe.
func (r *Recorder) EventCountsSorted() []EventCount {
	if r == nil {
		return nil
	}
	// Field order below is the sorted key order; keep it that way.
	return []EventCount{
		{Type: "decision", Count: len(r.Decisions)},
		{Type: "eviction", Count: len(r.Evictions)},
		{Type: "idle", Count: len(r.Idles)},
		{Type: "ready", Count: len(r.Readies)},
		{Type: "transfer", Count: len(r.Transfers)},
	}
}

// MeanDecisionDepth returns the average number of candidates weighed per
// decision — the "how contested was each placement" summary statistic.
func (r *Recorder) MeanDecisionDepth() float64 {
	if r == nil || len(r.Decisions) == 0 {
		return 0
	}
	return float64(len(r.Candidates)) / float64(len(r.Decisions))
}
