// Package hot holds the //chol:hotpath root of the hotcall fixture. The
// root itself is hotpathalloc's jurisdiction; hotcall must follow its call
// graph into unannotated local helpers, across the package boundary, and
// through interface dispatch — but not through //chollint:hotcall edges.
package hot

import "repro/internal/analysis/testdata/src/hotcall/helpers"

// Sizer is implemented (only) by helpers.BoxySizer.
type Sizer interface {
	Size(xs []int) int
}

// Engine is the event-loop stand-in.
type Engine struct {
	s Sizer
}

// Step is the pinned hot function.
//
//chol:hotpath
func (e *Engine) Step(xs []int) int {
	n := localHelper(xs)
	n += e.s.Size(xs)
	n += helpers.Sum(coldPath(xs)) //chollint:hotcall cold setup, amortized over the run
	return n
}

// localHelper is clean itself but drags helpers.Grow onto the hot path.
func localHelper(xs []int) int {
	ys := helpers.Grow(xs)
	return helpers.Sum(ys)
}

// coldPath allocates, but its only call site cuts the hot edge with
// //chollint:hotcall, so it must not be flagged.
func coldPath(xs []int) []int {
	return append([]int{}, xs...)
}
