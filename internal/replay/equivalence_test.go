package replay_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// registryGrid enumerates every registered platform × scheduler, with fixed
// arguments for the parameterized entries.
func registryGrid(t *testing.T) (platforms []string, schedulers []string) {
	t.Helper()
	for _, e := range core.Platforms() {
		name := e.Name
		switch e.Name {
		case "homogeneous":
			name = "homogeneous:8"
		case "related":
			name = "related:10"
		default:
			if e.Param != "" {
				t.Fatalf("registered platform %q has a parameter this grid does not know an argument for", e.Name)
			}
		}
		platforms = append(platforms, name)
	}
	for _, e := range core.Schedulers() {
		name := e.Name
		switch e.Name {
		case "partition":
			name = "partition:0.5"
		case "trsm-cpu":
			name = "trsm-cpu:3"
		default:
			if e.Param != "" {
				t.Fatalf("registered scheduler %q has a parameter this grid does not know an argument for", e.Name)
			}
		}
		schedulers = append(schedulers, name)
	}
	return platforms, schedulers
}

// equivalenceDAGs returns the uniform and mixed-tile test DAGs.
func equivalenceDAGs(nb int) map[string]*graph.DAG {
	return map[string]*graph.DAG{
		"uniform":    graph.Cholesky(6),
		"mixed-tile": graph.CholeskySplit(6, 3, 2, nb),
	}
}

// TestBatchedSeedsBitIdentical is the replay contract: for every registered
// platform × scheduler × DAG shape × option set, the batched multi-seed path
// produces digest-identical Results to looping the serial simulator over
// seeds 1..10. Run under -race it also proves the shared-Prep lanes are
// data-race-free.
func TestBatchedSeedsBitIdentical(t *testing.T) {
	platforms, schedulers := registryGrid(t)
	seeds := make([]int64, 10)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	opts := []struct {
		name string
		opt  simulator.Options
	}{
		{"plain", simulator.Options{}},
		{"overhead", simulator.Options{Overhead: true}},
		{"stealing", simulator.Options{WorkStealing: true}},
	}
	for _, pname := range platforms {
		base, err := core.NewPlatform(pname)
		if err != nil {
			t.Fatalf("platform %s: %v", pname, err)
		}
		for dagName, d := range equivalenceDAGs(base.DefaultNB()) {
			p := base
			if dagName == "mixed-tile" {
				// Sub-reference tiles need the scaled cost model (as the
				// mixed-tile CLIs and benches configure it).
				p, err = core.NewPlatform(pname)
				if err != nil {
					t.Fatalf("platform %s: %v", pname, err)
				}
				p.Model = platform.ModelScaled
			}
			if _, err := simulator.Prepare(d, p); err != nil {
				continue // platform cannot run this DAG shape (e.g. no SPLIT/MERGE timings)
			}
			for _, sname := range schedulers {
				for _, ov := range opts {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", pname, dagName, sname, ov.name), func(t *testing.T) {
						t.Parallel()
						mk := func() sched.Scheduler {
							s, err := core.NewScheduler(sname)
							if err != nil {
								t.Fatalf("scheduler %s: %v", sname, err)
							}
							return s
						}
						want := make([]uint64, len(seeds))
						for i, seed := range seeds {
							o := ov.opt
							o.Seed = seed
							r, err := simulator.Run(d, p, mk(), o)
							if err != nil {
								t.Fatalf("serial seed %d: %v", seed, err)
							}
							want[i] = replay.Digest(r)
						}
						got, err := replay.Seeds(context.Background(), d, p, mk, seeds, ov.opt, 4, nil)
						if err != nil {
							t.Fatalf("batched: %v", err)
						}
						if len(got) != len(seeds) {
							t.Fatalf("batched returned %d results for %d seeds", len(got), len(seeds))
						}
						for i, r := range got {
							if dg := replay.Digest(r); dg != want[i] {
								t.Errorf("seed %d: batched digest %016x, serial %016x", seeds[i], dg, want[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestRunMixedBatchBitIdentical batches jobs that differ in DAG, platform,
// scheduler and options all at once — the /v1/sweep shape — and checks every
// cell against its serial run.
func TestRunMixedBatchBitIdentical(t *testing.T) {
	mirage := platform.Mirage()
	homog := platform.Homogeneous(6)
	d5, d7 := graph.Cholesky(5), graph.Cholesky(7)
	mkName := func(name string) func() sched.Scheduler {
		return func() sched.Scheduler {
			s, err := core.NewScheduler(name)
			if err != nil {
				panic(err)
			}
			return s
		}
	}
	var jobs []replay.Job
	for _, d := range []*graph.DAG{d5, d7} {
		for _, p := range []*platform.Platform{mirage, homog} {
			for _, sn := range []string{"dmdas", "dmda", "random", "trsm-cpu:2"} {
				for _, seed := range []int64{1, 2, 3} {
					jobs = append(jobs, replay.Job{D: d, P: p, Sched: mkName(sn),
						Opt: simulator.Options{Seed: seed, Overhead: seed == 2}})
				}
			}
		}
	}
	pool := &replay.Pool{}
	got, err := replay.Run(context.Background(), jobs, 4, pool)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, j := range jobs {
		want, err := simulator.Run(j.D, j.P, j.Sched(), j.Opt)
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		if replay.Digest(got[i]) != replay.Digest(want) {
			t.Errorf("job %d: batched digest %016x, serial %016x", i, replay.Digest(got[i]), replay.Digest(want))
		}
	}
}

// TestSeedDedupClonesAreIndependent checks the dedup fast path hands out
// deep copies: mutating one seed's Result must not leak into another's.
func TestSeedDedupClonesAreIndependent(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	rs, err := replay.Seeds(context.Background(), d, p,
		func() sched.Scheduler { return sched.NewDMDAS() },
		[]int64{1, 2, 3}, simulator.Options{}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Digest(rs[0]) != replay.Digest(rs[1]) || replay.Digest(rs[1]) != replay.Digest(rs[2]) {
		t.Fatalf("seed-invariant run: digests differ across seeds")
	}
	rs[1].Start[0] = -1
	rs[1].MakespanSec = -1
	if replay.Digest(rs[0]) != replay.Digest(rs[2]) || replay.Digest(rs[0]) == replay.Digest(rs[1]) {
		t.Fatalf("mutating one cloned Result leaked into another")
	}
}

// TestBatchOfOneTakesSerialPath pins the Batch-of-1 contract from two sides:
// the digest matches the serial simulator, and the path allocates exactly
// what the serial path allocates (no batching machinery on the fast path).
func TestBatchOfOneTakesSerialPath(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	opt := simulator.Options{}
	serial, err := simulator.Run(d, p, sched.NewDMDAS(), opt)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := replay.Seeds(context.Background(), d, p,
		func() sched.Scheduler { return sched.NewDMDAS() },
		[]int64{7}, opt, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || replay.Digest(rs[0]) != replay.Digest(serial) {
		t.Fatalf("batch of one: digest mismatch with serial run")
	}

	ctx := context.Background()
	serialAllocs := testing.AllocsPerRun(5, func() {
		if _, err := simulator.RunContext(ctx, d, p, sched.NewDMDAS(), opt); err != nil {
			t.Fatal(err)
		}
	})
	batchAllocs := testing.AllocsPerRun(5, func() {
		if _, err := replay.Seeds(ctx, d, p, func() sched.Scheduler { return sched.NewDMDAS() },
			[]int64{7}, opt, 4, nil); err != nil {
			t.Fatal(err)
		}
	})
	// One extra allocation is the per-call seeds-capturing closure at most;
	// anything more means the batch machinery crept onto the serial path.
	if batchAllocs > serialAllocs+1 {
		t.Errorf("batch of one allocates %.0f/op, serial %.0f/op — serial fast path lost", batchAllocs, serialAllocs)
	}
}

// TestPreCancelledBatchLeavesPoolReusable is the poisoned-arena regression:
// a batch that dies on a pre-cancelled context must leave the pool's arenas
// fully reusable — the next batch over the same pool stays bit-identical to
// serial.
func TestPreCancelledBatchLeavesPoolReusable(t *testing.T) {
	d, p := graph.Cholesky(6), platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAR() } // not seed-invariant-dedupable? dmdar is; use random to force real lanes
	mkRandom := func() sched.Scheduler { return sched.NewRandom() }
	pool := &replay.Pool{}
	seeds := []int64{1, 2, 3, 4}

	// Warm the pool with completed runs, then poison-attempt with a
	// cancelled context.
	if _, err := replay.Seeds(context.Background(), d, p, mkRandom, seeds, simulator.Options{}, 2, pool); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := replay.Seeds(cancelled, d, p, mkRandom, seeds, simulator.Options{}, 2, pool); err == nil {
		t.Fatal("pre-cancelled batch succeeded")
	}
	// Mid-run cancellation leaves arenas in a half-simulated state; those
	// must reset cleanly too.
	midCtx, midCancel := context.WithCancel(context.Background())
	midCancel()
	_, _ = replay.Seeds(midCtx, d, p, mk, seeds, simulator.Options{Overhead: true}, 2, pool)

	got, err := replay.Seeds(context.Background(), d, p, mkRandom, seeds, simulator.Options{}, 2, pool)
	if err != nil {
		t.Fatalf("post-cancel batch: %v", err)
	}
	for i, seed := range seeds {
		want, err := simulator.Run(d, p, mkRandom(), simulator.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if replay.Digest(got[i]) != replay.Digest(want) {
			t.Errorf("seed %d after cancelled batch: digest %016x, serial %016x", seed, replay.Digest(got[i]), replay.Digest(want))
		}
	}
}

// TestRecorderJobsNeverDedup: recording runs must each execute (the recorder
// captures per-run events), even when seed-invariant.
func TestRecorderJobsNeverDedup(t *testing.T) {
	d, p := graph.Cholesky(5), platform.Mirage()
	recs := []*obs.Recorder{obs.NewRecorder(), obs.NewRecorder()}
	jobs := make([]replay.Job, 2)
	for i := range jobs {
		jobs[i] = replay.Job{D: d, P: p,
			Sched: func() sched.Scheduler { return sched.NewDMDAS() },
			Opt:   simulator.Options{Seed: int64(i + 1), Recorder: recs[i]}}
	}
	rs, err := replay.Run(context.Background(), jobs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Digest(rs[0]) != replay.Digest(rs[1]) {
		t.Fatalf("recording changed the schedule")
	}
	for i, r := range recs {
		if len(r.Decisions) != len(d.Tasks) {
			t.Errorf("recorder %d captured %d decisions, want %d (job deduped away?)",
				i, len(r.Decisions), len(d.Tasks))
		}
	}
}
