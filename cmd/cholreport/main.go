// Command cholreport regenerates a set of experiments and renders them as a
// single standalone HTML report with SVG charts and data tables — the
// shareable artifact of the reproduction.
//
// Usage:
//
//	cholreport -o report.html                 # headline figures, paper scale
//	cholreport -o report.html -quick          # reduced sweep
//	cholreport -o report.html -exps fig2,fig7,fig10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		out   = flag.String("o", "report.html", "output HTML file")
		exps  = flag.String("exps", "fig2,fig4,fig5,fig7,fig10,fig11,luqr,distributed", "comma-separated experiment IDs (tabular ones only)")
		quick = flag.Bool("quick", false, "reduced sweep")
		runs  = flag.Int("runs", 0, "repetitions for actual-mode experiments")
		seed  = flag.Int64("seed", 42, "base RNG seed")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}

	var tables []*stats.Table
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(id)
		r, err := experiments.Find(id)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", id)
		_, tbl, err := r.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if tbl == nil {
			fatal(fmt.Errorf("%s has no tabular output; pick a figure/table experiment", id))
		}
		tables = append(tables, tbl)
	}
	page := report.HTML("Cholesky on heterogeneous platforms — reproduction report", tables)
	if err := os.WriteFile(*out, []byte(page), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("report with %d charts written to %s\n", len(tables), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholreport:", err)
	os.Exit(1)
}
