package service

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Run-ledger endpoints: every computed (non-cache-hit) simulation is
// ledgered, so the service can answer not only "how fast was it" but "why" —
// gap attribution against the mixed bound on the detail view, and the full
// execution trace (with per-decision candidate costs when the run was
// recorded) on the trace view.

func notFound(err error) error { return &apiError{status: http.StatusNotFound, err: err} }

// RunDetail is the full view of one ledgered run. Entries still running (or
// failed, or non-simulate kinds) carry no simulator result, so the
// attribution and recorder projections are omitted rather than fabricated.
type RunDetail struct {
	RunSummary
	Request           SimulateRequest   `json:"request"`
	Response          *SimulateResponse `json:"response"`
	Optimize          *OptimizeResponse `json:"optimize,omitempty"`
	Error             string            `json:"error,omitempty"`
	EventCounts       map[string]int    `json:"event_counts,omitempty"`
	MeanDecisionDepth float64           `json:"mean_decision_depth,omitempty"`
	Attribution       *obs.Attribution  `json:"gap_attribution,omitempty"`
}

func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ledger.List(), false)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.ledger.Get(id)
	if !ok {
		writeErr(w, notFound(fmt.Errorf("service: run %q not in the ledger (bounded to %d entries)", id, s.cfg.LedgerSize)))
		return
	}
	detail := &RunDetail{
		RunSummary: summarize(e),
		Request:    e.Request,
		Response:   e.Response,
		Optimize:   e.Optimize,
		Error:      e.Error,
	}
	if e.Result != nil {
		d, p, err := s.rebuild(e)
		if err != nil {
			writeErr(w, err)
			return
		}
		res := e.Result
		attr, err := obs.AttributeGap(d, p, res.Worker, res.BusySec, res.Start, res.End,
			res.MakespanSec, res.TransferSec, e.Recorder)
		if err != nil {
			writeErr(w, fmt.Errorf("service: gap attribution for %s: %w", id, err))
			return
		}
		detail.Attribution = attr
	}
	if e.Recorder != nil {
		detail.EventCounts = e.Recorder.EventCounts()
		detail.MeanDecisionDepth = e.Recorder.MeanDecisionDepth()
	}
	writeJSON(w, detail, false)
}

func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.ledger.Get(id)
	if !ok {
		writeErr(w, notFound(fmt.Errorf("service: run %q not in the ledger (bounded to %d entries)", id, s.cfg.LedgerSize)))
		return
	}
	if e.Result == nil {
		writeErr(w, &apiError{status: http.StatusConflict,
			err: fmt.Errorf("service: run %q has no simulator result to trace (kind %s, status %s)", id, e.Kind, e.Status)})
		return
	}
	d, p, err := s.rebuild(e)
	if err != nil {
		writeErr(w, err)
		return
	}
	var labels []string
	for _, c := range p.Classes {
		for i := 0; i < c.Count; i++ {
			labels = append(labels, fmt.Sprintf("%s%d", c.Name, i))
		}
	}
	g := trace.FromSimulation(d, p.Workers(), labels, e.Result)
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		data, err := g.ChromeTraceWithDecisions(d, e.Result, e.Recorder)
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "paje":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, g.Paje())
	case "gantt":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, g.ASCII(100, nil))
	default:
		writeErr(w, badRequest(fmt.Errorf("service: unknown trace format %q (chrome | paje | gantt)", format)))
	}
}

// rebuild reconstructs the DAG and platform a ledgered run executed on; both
// come from registries, so reconstruction is deterministic and cheap relative
// to storing them per entry.
func (s *Server) rebuild(e *RunEntry) (d *graph.DAG, p *platform.Platform, err error) {
	p, err = core.NewPlatform(e.Request.Platform)
	if err != nil {
		return nil, nil, fmt.Errorf("service: rebuilding run platform: %w", err)
	}
	d, err = core.DAGByAlgorithm(e.Request.Algorithm, e.Request.Tiles)
	if err != nil {
		return nil, nil, fmt.Errorf("service: rebuilding run DAG: %w", err)
	}
	return d, p, nil
}
