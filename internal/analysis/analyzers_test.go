package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDetranged(t *testing.T) {
	analysistest.Run(t, analysis.Detranged, "detranged/internal/simulator")
}

// TestDetrangedOutsideCore checks the deterministic-core gate: the same
// order-sensitive loop shape draws no diagnostic outside the core packages.
func TestDetrangedOutsideCore(t *testing.T) {
	analysistest.Run(t, analysis.Detranged, "detranged/notcore")
}

func TestNoclock(t *testing.T) {
	analysistest.Run(t, analysis.Noclock, "noclock/internal/sched")
}

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, analysis.Hotpathalloc, "hotpathalloc/hot")
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow, "ctxflow/flow")
}

func TestFloateq(t *testing.T) {
	analysistest.Run(t, analysis.Floateq, "floateq/feq")
}

func TestRecnil(t *testing.T) {
	analysistest.Run(t, analysis.Recnil, "recnil/use")
}

// TestPuremark loads both fixture packages as one program: the marker
// claims in ext must be judged against effects that live in base, including
// an interface dispatch CHA widens across the boundary.
func TestPuremark(t *testing.T) {
	analysistest.RunProgram(t, analysis.Puremark, "puremark/base", "puremark/ext")
}

// TestHotcall propagates the //chol:hotpath root in hot into helpers, two
// call-graph hops and one interface dispatch away.
func TestHotcall(t *testing.T) {
	analysistest.RunProgram(t, analysis.Hotcall, "hotcall/hot", "hotcall/helpers")
}

func TestLeakguard(t *testing.T) {
	analysistest.Run(t, analysis.Leakguard, "leakguard/internal/service")
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite of 9", len(all), err)
	}
	two, err := analysis.ByName("detranged, floateq")
	if err != nil || len(two) != 2 || two[0].Name != "detranged" || two[1].Name != "floateq" {
		t.Fatalf("ByName(\"detranged, floateq\") = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded; want error")
	}
}
