package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Floateq flags == and != between floating-point values. Makespans and
// bounds are sums of thousands of float64 kernel timings; two arithmetically
// equal quantities computed along different paths differ in the last ulp,
// so exact comparison is either a latent bug or an exactness claim that
// belongs next to a tolerance. internal/check owns the tolerance helpers
// (and the golden-digest tests assert bit-equality on purpose), so that
// package and _test.go files are exempt.
//
// Comparison against a constant zero is exempt: `den == 0` before a
// division and `hop == 0` sentinels test an exact representable value by
// design, and flagging them would bury the real signal (two computed
// quantities compared for equality). Other legitimate exact comparisons —
// tie-breaking on identical stored values in a sort comparator, a
// bit-equality assertion in a determinism harness — are annotated
// //chollint:floateq.
var Floateq = &Analyzer{
	Name:     "floateq",
	Doc:      "flags exact ==/!= on floats outside the tolerance helpers",
	Suppress: "floateq",
	Run:      runFloateq,
}

func runFloateq(pass *Pass) error {
	if path := pass.Pkg.Path(); path == "internal/check" || strings.HasSuffix(path, "/internal/check") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) || !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			if isConstZero(pass, be.X) || isConstZero(pass, be.Y) {
				return true
			}
			pass.Reportf(be.Pos(),
				"exact float comparison %s %s %s: use the tolerance helpers in internal/check (or annotate //chollint:floateq if bit-exactness is intended)",
				render(pass.Fset, be.X), be.Op, render(pass.Fset, be.Y))
			return true
		})
	}
	return nil
}

// isConstZero reports whether the expression is a compile-time constant
// equal to zero (0, 0.0, a zero-valued named constant).
func isConstZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	f := constant.ToFloat(tv.Value)
	if f.Kind() != constant.Float {
		return false
	}
	v, _ := constant.Float64Val(f)
	return v == 0 //chollint:floateq — exact constant test
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
