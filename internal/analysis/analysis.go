// Package analysis implements chollint, a domain-specific static-analysis
// suite enforcing at compile time the invariants this reproduction otherwise
// guards only dynamically (golden digests, pinned benchmarks, -race runs):
//
//   - bit-identical schedules across runs — the paper's SimGrid-vs-native
//     ≤1% fidelity argument (§V) collapses if a simulated makespan depends
//     on Go map iteration order, wall-clock reads, or unseeded randomness;
//   - allocation-free simulator/LP hot paths — the PR2 perf wins pinned in
//     BENCH_PR*.json;
//   - context and nil-recorder plumbing — gaps here cancel nothing and
//     panic at the first recorded event, respectively.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) so the analyzers could be ported to a stock
// multichecker later, but is built only on the standard library: the suite
// must run in hermetic build environments with no module downloads.
//
// Suppression: a diagnostic is silenced by a `//chollint:<word>` comment on
// the flagged line or the line above, where <word> is the analyzer's escape
// hatch (e.g. //chollint:ordered for detranged). Escapes are deliberately
// per-analyzer: a line excused from one invariant stays subject to the rest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // lowercase identifier, used in output and flag names
	Doc  string // one-paragraph description of the invariant enforced

	// Suppress is the //chollint:<word> directive that silences this
	// analyzer on a line (empty: no escape hatch).
	Suppress string

	Run func(*Pass) error
}

// A Pass is one analyzer's view of one package. Prog is the whole-program
// context shared by every pass of one Run: the interprocedural analyzers
// (puremark, hotcall, leakguard) read call-graph summaries from it, scoped
// to the pass's own package so each diagnostic is reported exactly once.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Prog      *Program

	diags []Diagnostic
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// All returns the full chollint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detranged,
		Noclock,
		Hotpathalloc,
		Ctxflow,
		Floateq,
		Recnil,
		Puremark,
		Hotcall,
		Leakguard,
	}
}

// ByName resolves a comma-separated analyzer list; an empty string selects
// the full suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("chollint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to one type-checked package and returns the
// surviving diagnostics (suppressed ones removed), sorted by position. The
// package is treated as a single-unit Program, so the interprocedural
// analyzers work (with whole-program strength only for in-package call
// chains — external callees fall back to the optimistic effect tables).
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	unit := &PackageUnit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	return RunProgram(analyzers, NewProgram(fset, []*PackageUnit{unit}))
}

// RunProgram applies the analyzers to every unit of a whole program — the
// full-strength mode `chollint ./...` runs, where cross-package call chains
// are summarized from source rather than assumed.
func RunProgram(analyzers []*Analyzer, prog *Program) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, u := range prog.Units {
		sup := collectSuppressions(u.Fset, u.Files)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: u.Fset, Files: u.Files, Pkg: u.Pkg, TypesInfo: u.Info, Prog: prog}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			for _, d := range pass.diags {
				if a.Suppress != "" && sup.matches(d.Pos, a.Suppress) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// suppressions maps file → line → set of //chollint: directives.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) matches(pos token.Position, word string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][word] || lines[pos.Line-1][word]
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//chollint:")
				if !ok {
					continue
				}
				word, _, _ := strings.Cut(text, " ")
				if word == "" {
					continue
				}
				p := fset.Position(c.Pos())
				if s[p.Filename] == nil {
					s[p.Filename] = map[int]map[string]bool{}
				}
				if s[p.Filename][p.Line] == nil {
					s[p.Filename][p.Line] = map[string]bool{}
				}
				s[p.Filename][p.Line][word] = true
			}
		}
	}
	return s
}

// deterministicCore lists the package-path suffixes forming the simulator's
// deterministic core: everything whose output feeds a golden digest or a
// bound comparison. detranged and noclock apply only here.
var deterministicCore = []string{
	"internal/simulator",
	"internal/sched",
	"internal/bounds",
	"internal/lp",
	"internal/cpsolve",
	"internal/sweep",
}

func isDeterministicCore(path string) bool {
	for _, s := range deterministicCore {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file node comes from a _test.go file.
// chollint enforces production invariants; tests intentionally compare
// exact floats (golden digests) and read wall clocks (benchmarks).
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// render returns a compact source rendering of an expression, used both in
// messages and to match guard expressions (e.g. "st.rec") textually.
func render(fset *token.FileSet, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(fset, e.X) + "." + e.Sel.Name
	}
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}

// funcDirective reports whether the doc comment carries the given
// machine-readable directive. Directive comments follow the go:generate
// convention: they start immediately after // with no space, and trailing
// prose after a space is allowed ("//chol:hotpath event loop").
func funcDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if !ok {
			continue
		}
		if rest == "" || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "\t") {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the package-level function or
// method it invokes, or nil (builtins, conversions, function values).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether the call invokes the package-level function
// pkgPath.name. Methods never match: rng.Float64() on a seeded *rand.Rand
// is fine where rand.Float64() is not.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	if fn.Pkg().Path() == pkgPath && names[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}
