package sched

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/platform"
)

// Partition scheduling: a size-class-aware policy for the mixed-tile-size
// DAGs of graph.CholeskySplit, following the per-iteration split of the
// Heterogeneous-Solvers codes: at every panel k a gpuProportion fraction of
// the trailing rows — the ones farthest below the diagonal, where the
// coarse-tile BLAS-3 updates concentrate — is carved off for the GPUs,
// recomputed panel by panel as the trailing matrix shrinks
// (blockCountGPU = ceil((blockCount−1−k)·gpuProportion)). Fine (sub-
// reference) tiles and SPLIT/MERGE repacking always go to the CPUs: small
// kernels cannot amortize accelerator offload, which is the HeSP premise the
// mixed-tile builder exists to exploit.
//
// Within its class restriction every task still flows through the dmdas
// completion-time objective, so the knob partitions *placement freedom*, not
// the dynamic schedule itself.

// PartitionHint builds the per-task class restriction described above for
// gpuProportion g ∈ [0, 1]. Tasks keep all classes (nil) when the rule has
// nothing to say (POTRF, single-class platforms, uniform rows above the cut).
func PartitionHint(d *graph.DAG, p *platform.Platform, g float64) AllowFunc {
	nClasses := len(p.Classes)
	cpu := []int{0}
	accel := make([]int, 0, nClasses-1)
	for c := 1; c < nClasses; c++ {
		if p.Classes[c].Count > 0 {
			accel = append(accel, c)
		}
	}
	// Reference size: the coarse tiles of a mixed DAG (every Task.NB of the
	// uniform builders is 0, which also counts as coarse).
	coarse := 0
	for _, t := range d.Tasks {
		if t.NB > coarse {
			coarse = t.NB
		}
	}
	// One past the last row of the fine index space: split DAGs store fine
	// tasks at global coordinates ≥ d.P, contiguously.
	fineLimit := d.P
	for _, t := range d.Tasks {
		if t.I+1 > fineLimit {
			fineLimit = t.I + 1
		}
		if t.J+1 > fineLimit {
			fineLimit = t.J + 1
		}
	}
	allowed := make([][]int, len(d.Tasks))
	for _, t := range d.Tasks {
		if len(accel) == 0 {
			break
		}
		switch {
		case t.Kind.IsConversion():
			allowed[t.ID] = cpu
		case t.NB != 0 && t.NB < coarse:
			allowed[t.ID] = cpu
		case t.Kind == graph.TRSM || t.Kind == graph.SYRK || t.Kind == graph.GEMM:
			// Row index of the tile the task updates and the last row of its
			// index space: coarse tasks live in [0, d.P), fine tasks in
			// [d.P, fineLimit) with their own row arithmetic.
			row := t.I
			if t.Kind == graph.SYRK {
				row = t.J
			}
			last := d.P - 1
			if row >= d.P {
				last = fineLimit - 1
			}
			panelRows := last - t.K // rows i ∈ (k, last]
			if panelRows <= 0 {
				break
			}
			gpuRows := int(math.Ceil(float64(panelRows) * g))
			if last-row < gpuRows {
				allowed[t.ID] = accel
			} else {
				allowed[t.ID] = cpu
			}
		}
	}
	return func(t *graph.Task) []int { return allowed[t.ID] }
}

type partition struct {
	dm
	g float64
}

// NewPartition returns the partition-aware policy with the given
// gpuProportion knob (the SNIPPETS exemplar uses 0.45–0.6).
func NewPartition(g float64) Scheduler {
	if g < 0 || g > 1 || math.IsNaN(g) {
		panic(fmt.Sprintf("sched: partition proportion %g outside [0, 1]", g))
	}
	return &partition{dm: dm{name: fmt.Sprintf("partition:%g", g), sorted: true, useComm: true}, g: g}
}

func (s *partition) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	s.dm.allow = PartitionHint(d, p, s.g)
	s.dm.Init(d, p, seed)
}
