package runtime

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

func TestTrsvKernelsAgainstDense(t *testing.T) {
	nb := 8
	spd := matrix.RandSPD(nb, 3)
	lt := matrix.NewTile(nb)
	copy(lt.Data, spd.Data)
	if err := kernels.Potrf(lt); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, nb)
	for i := range x {
		x[i] = float64(i + 1)
	}
	// b = L·x, then Trsv must recover x.
	b := make([]float64, nb)
	for i := 0; i < nb; i++ {
		for j := 0; j <= i; j++ {
			b[i] += lt.At(i, j) * x[j]
		}
	}
	kernels.Trsv(lt, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-10 {
			t.Fatalf("Trsv[%d] = %g, want %g", i, b[i], x[i])
		}
	}
	// bT = Lᵀ·x, then TrsvT recovers x.
	bT := make([]float64, nb)
	for i := 0; i < nb; i++ {
		for j := i; j < nb; j++ {
			bT[i] += lt.At(j, i) * x[j]
		}
	}
	kernels.TrsvT(lt, bT)
	for i := range x {
		if math.Abs(bT[i]-x[i]) > 1e-10 {
			t.Fatalf("TrsvT[%d] = %g, want %g", i, bT[i], x[i])
		}
	}
}

func TestGemvKernels(t *testing.T) {
	nb := 5
	a := matrix.NewTile(nb)
	for i := range a.Data {
		a.Data[i] = float64(i%7) - 3
	}
	x := []float64{1, -2, 3, 0.5, -1}
	y := make([]float64, nb)
	kernels.Gemv(a, x, y)
	for i := 0; i < nb; i++ {
		want := 0.0
		for j := 0; j < nb; j++ {
			want -= a.At(i, j) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("Gemv[%d] = %g, want %g", i, y[i], want)
		}
	}
	yT := make([]float64, nb)
	kernels.GemvT(a, x, yT)
	for i := 0; i < nb; i++ {
		want := 0.0
		for j := 0; j < nb; j++ {
			want -= a.At(j, i) * x[j]
		}
		if math.Abs(yT[i]-want) > 1e-12 {
			t.Fatalf("GemvT[%d] = %g, want %g", i, yT[i], want)
		}
	}
}

func TestSolveDAGsValid(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		f := graph.ForwardSolve(p)
		if err := f.Validate(); err != nil {
			t.Fatalf("forward p=%d: %v", p, err)
		}
		bw := graph.BackwardSolve(p)
		if err := bw.Validate(); err != nil {
			t.Fatalf("backward p=%d: %v", p, err)
		}
		// p TRSV + p(p−1)/2 GEMV each.
		for _, d := range []*graph.DAG{f, bw} {
			c := d.CountByKind()
			if c[graph.TRSV] != p || c[graph.GEMV] != p*(p-1)/2 {
				t.Fatalf("%s p=%d: counts %v", d.Algorithm, p, c)
			}
		}
	}
}

func TestForwardSolveDependencyChain(t *testing.T) {
	d := graph.ForwardSolve(3)
	byName := map[string]*graph.Task{}
	for _, tk := range d.Tasks {
		byName[tk.Name()] = tk
	}
	// GEMV_1_0 needs TRSV_0's chunk; TRSV_1 needs GEMV_1_0's update.
	g10 := byName["GEMV_1_0"]
	t0 := byName["TRSV_0"]
	t1 := byName["TRSV_1"]
	if g10 == nil || t0 == nil || t1 == nil {
		t.Fatal("missing tasks")
	}
	has := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	if !has(t0.Succ, g10.ID) || !has(g10.Succ, t1.ID) {
		t.Fatal("forward-solve chain broken")
	}
}

func TestFactorAndSolveEndToEnd(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n, nb := 64, 8
		a := matrix.RandSPD(n, 17)
		tl, err := matrix.FromDense(a, nb)
		if err != nil {
			t.Fatal(err)
		}
		// Known solution.
		xstar := make([]float64, n)
		for i := range xstar {
			xstar[i] = math.Sin(float64(i))
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * xstar[j]
			}
		}
		x, err := FactorAndSolve(tl, b, Options{Workers: workers, Policy: Priority})
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xstar[i]) > 1e-9 {
				t.Fatalf("workers=%d: x[%d] = %g, want %g", workers, i, x[i], xstar[i])
			}
		}
	}
}

func TestSolveRejectsBadLength(t *testing.T) {
	a := matrix.RandSPD(16, 1)
	tl, _ := matrix.FromDense(a, 4)
	if _, err := Solve(tl, make([]float64, 10), Options{}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestSolveParallelMatchesSerial(t *testing.T) {
	n, nb := 48, 8
	a := matrix.RandSPD(n, 23)
	tl, _ := matrix.FromDense(a, nb)
	if _, err := Factor(tl, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	b1 := make([]float64, n)
	b2 := make([]float64, n)
	for i := range b1 {
		b1[i] = float64(i%5) - 2
		b2[i] = b1[i]
	}
	x1, err := Solve(tl, b1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x4, err := Solve(tl, b2, Options{Workers: 4, Policy: Random, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x4[i] {
			t.Fatalf("parallel solve diverges at %d: %g vs %g", i, x1[i], x4[i])
		}
	}
}

func TestSolveRefinedImprovesIllConditioned(t *testing.T) {
	// Hilbert(8) is ill-conditioned (κ ≈ 1.5e10) but still factorizable in
	// double precision: refinement must not hurt, and typically reduces the
	// residual of the plain solve.
	n, nb := 8, 4
	a := matrix.Hilbert(n)
	l, _ := matrix.FromDense(a, nb)
	if _, err := Factor(l, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	residual := func(x []float64) float64 {
		worst := 0.0
		for i := 0; i < n; i++ {
			s := -b[i]
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			worst += s * s
		}
		return math.Sqrt(worst)
	}
	plain := append([]float64{}, b...)
	if _, err := Solve(l, plain, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	refined, err := SolveRefined(a, l, b, 2, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rp, rr := residual(plain), residual(refined)
	if rr > rp*1.001 {
		t.Fatalf("refinement worsened the residual: %g vs %g", rr, rp)
	}
	if rr > 1e-8 {
		t.Fatalf("refined residual still large: %g", rr)
	}
}

func TestSolveRefinedDimensionChecks(t *testing.T) {
	a := matrix.RandSPD(16, 1)
	l, _ := matrix.FromDense(a, 4)
	if _, err := SolveRefined(a, l, make([]float64, 8), 1, Options{}); err == nil {
		t.Fatal("expected length error")
	}
}
