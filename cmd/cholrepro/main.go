// Command cholrepro regenerates the paper's tables and figures.
//
// Usage:
//
//	cholrepro -list
//	cholrepro -exp fig7                  # one experiment, paper-scale sweep
//	cholrepro -exp all -quick            # everything, reduced sweep
//	cholrepro -exp fig2 -csv out.csv     # export the series as CSV
//	cholrepro -exp fig12 -svg-dir out/   # also write SVG Gantt traces
//
// Every experiment prints the same rows/series as the corresponding paper
// artifact (GFLOP/s vs matrix size in tiles of 960), plus an ASCII plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID (see -list) or \"all\"")
		list   = flag.Bool("list", false, "list available experiments")
		quick  = flag.Bool("quick", false, "reduced sweep (fast smoke run)")
		sizes  = flag.String("sizes", "", "comma-separated tile counts (override)")
		runs   = flag.Int("runs", 0, "repetitions for actual-mode experiments (default 10)")
		seed   = flag.Int64("seed", 42, "base RNG seed")
		csvOut = flag.String("csv", "", "write the experiment's table as CSV to this file")
		svgDir = flag.String("svg-dir", "", "directory for SVG Gantt traces (fig12)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Description)
		}
		if *exp == "" {
			fmt.Println("\nRun one with: cholrepro -exp <id>   (or -exp all)")
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *sizes != "" {
		cfg.Sizes = nil
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -sizes entry %q", s))
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = nil
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	}
	for _, id := range ids {
		r, err := experiments.Find(id)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s — %s ===\n", r.ID, r.Description)
		text, table, err := r.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Println(text)
		if *csvOut != "" && table != nil && len(ids) == 1 {
			if err := os.WriteFile(*csvOut, []byte(table.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("(CSV written to %s)\n", *csvOut)
		}
		if *svgDir != "" && id == "fig12" {
			svgs, err := experiments.Fig12SVG(cfg)
			if err != nil {
				fatal(err)
			}
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				fatal(err)
			}
			for name, svg := range svgs {
				path := filepath.Join(*svgDir, "fig12-"+name+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("(SVG written to %s)\n", path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholrepro:", err)
	os.Exit(1)
}
