package platform

import (
	"math"

	"repro/internal/graph"
	"repro/internal/kernels"
)

// CostModel prices kernel executions and data movement as a function of tile
// size, generalizing the fixed-nb timing tables {T_rt} into {T_rt(nb)}. All
// consumers of per-task costs (simulator, schedulers, CP solver, bound LPs)
// go through this interface, so a single model swap re-prices every layer
// consistently.
//
// Implementations must guarantee (see DESIGN.md "Cost-model contract"):
//
//   - positivity: Time returns a positive finite value or +Inf (unsupported);
//   - determinism: equal arguments yield bit-equal results, with no hidden
//     state, clocks, or randomness;
//   - reference identity: Time(r, k, 0) and Time(r, k, DefaultNB()) equal the
//     calibrated table entry bit-for-bit, so uniform-tile runs reproduce the
//     fixed-nb behaviour exactly;
//   - monotonicity in nb for the BLAS-3 kernels (more flops never run
//     faster on the same class).
type CostModel interface {
	// Time returns the execution time of kind on class r at tile size nb
	// (elements per side); nb = 0 means the platform reference size.
	Time(class int, kind graph.Kind, nb int) float64
	// TransferTime returns the time to move `bytes` over one bus link —
	// actual tile bytes, not the uniform-tile TileBytes constant.
	TransferTime(bytes float64) float64
}

// Cost-model names stored in Platform.Model and schema-v2 platform files.
const (
	ModelTable  = "table"
	ModelScaled = "scaled"
)

// ConvBandwidthBps is the modelled host-side repacking rate of the SPLIT and
// MERGE tile-conversion tasks: a memory-bound copy between a coarse tile and
// its subtiles, charged at sustained host memcpy bandwidth.
const ConvBandwidthBps = 8e9

// convTime prices a SPLIT/MERGE task converting an nb×nb coarse tile.
// Conversions repack host-side buffers, so only class 0 runs them.
func convTime(p *Platform, class, nb int) float64 {
	if class != 0 {
		return math.Inf(1)
	}
	if nb <= 0 {
		nb = p.DefaultNB()
	}
	return float64(nb) * float64(nb) * 8 / ConvBandwidthBps
}

// KindFlops returns the per-tile floating-point operation count of kind at
// tile size nb — the weights that scale calibrated times across sizes (and
// the per-size weights of the area bound).
func KindFlops(k graph.Kind, nb int) float64 {
	switch k {
	case graph.POTRF:
		return kernels.PotrfFlops(nb)
	case graph.TRSM:
		return kernels.TrsmFlops(nb)
	case graph.SYRK:
		return kernels.SyrkFlops(nb)
	case graph.GEMM:
		return kernels.GemmFlops(nb)
	case graph.GETRF:
		return kernels.GetrfFlops(nb)
	case graph.GEQRT:
		return kernels.GeqrtFlops(nb)
	case graph.ORMQR:
		return kernels.OrmqrFlops(nb)
	case graph.TSQRT:
		return kernels.TsqrtFlops(nb)
	case graph.TSMQR:
		return kernels.TsmqrFlops(nb)
	case graph.TRSV:
		return kernels.TrsvFlops(nb)
	case graph.GEMV:
		return kernels.GemvFlops(nb)
	}
	return 0
}

// Efficiency models the sustained-throughput penalty of small tiles: full
// efficiency at and above refNB, dropping smoothly below (a tile of 1/4 the
// reference size runs at ≈70 % efficiency, matching typical BLAS curves).
// Moved here from internal/autotune so the scaled cost model and the tile-
// size sweep share one curve; autotune.Efficiency delegates to this.
func Efficiency(nb, refNB int) float64 {
	if nb >= refNB {
		return 1
	}
	r := float64(nb) / float64(refNB)
	return 0.55 + 0.45*math.Sqrt(r)
}

// TableModel prices exactly the calibrated tile sizes: the reference tables
// at nb = 0 / DefaultNB, the per-size TimesByNB tables where present, and
// +Inf everywhere else. It reproduces the pre-redesign fixed-nb costs
// bit-identically.
type TableModel struct {
	P *Platform
}

// NewTableModel returns the table adapter over p's calibrated tables.
func NewTableModel(p *Platform) TableModel { return TableModel{P: p} }

// Time implements CostModel.
func (m TableModel) Time(class int, kind graph.Kind, nb int) float64 {
	if kind.IsConversion() {
		return convTime(m.P, class, nb)
	}
	if nb == 0 || nb == m.P.DefaultNB() {
		return m.P.Time(class, kind)
	}
	if times, ok := m.P.Classes[class].TimesByNB[nb]; ok {
		if t, ok := times[kind]; ok {
			return t
		}
	}
	return math.Inf(1)
}

// TransferTime implements CostModel.
func (m TableModel) TransferTime(bytes float64) float64 { return m.P.Bus.TransferTime(bytes) }

// ScaledModel generalizes autotune's ScalePlatform into the cost-model API:
// off-reference sizes are priced by scaling the calibrated time with the
// kernel's flop ratio, damped by the small-tile efficiency curve. Exact-size
// TimesByNB tables, where present, take precedence over scaling.
type ScaledModel struct {
	P *Platform
	// RefNB is the calibration size scaling is anchored at.
	RefNB int
}

// NewScaledModel returns the scaled model anchored at refNB (0 = platform
// default).
func NewScaledModel(p *Platform, refNB int) ScaledModel {
	if refNB <= 0 {
		refNB = p.DefaultNB()
	}
	return ScaledModel{P: p, RefNB: refNB}
}

// Time implements CostModel. The nb = RefNB fast path returns the table
// entry itself, and the scaling expression matches autotune.ScalePlatform
// term for term, so ScalePlatform-derived platforms and this model agree
// bit-for-bit (pinned by TestScalePlatformMatchesScaledModel).
func (m ScaledModel) Time(class int, kind graph.Kind, nb int) float64 {
	if kind.IsConversion() {
		return convTime(m.P, class, nb)
	}
	t := m.P.Time(class, kind)
	if nb == 0 || nb == m.RefNB {
		return t
	}
	if times, ok := m.P.Classes[class].TimesByNB[nb]; ok {
		if tt, ok := times[kind]; ok {
			return tt
		}
	}
	if math.IsInf(t, 1) {
		return t
	}
	r := KindFlops(kind, nb) / KindFlops(kind, m.RefNB)
	return t * r / Efficiency(nb, m.RefNB)
}

// TransferTime implements CostModel.
func (m ScaledModel) TransferTime(bytes float64) float64 { return m.P.Bus.TransferTime(bytes) }

// CostModel returns the platform's cost model as selected by Model
// (ModelTable when empty).
func (p *Platform) CostModel() CostModel {
	if p.Model == ModelScaled {
		return NewScaledModel(p, p.DefaultNB())
	}
	return NewTableModel(p)
}

// TimeNB returns T_rt(nb) under the platform's cost model. nb = 0 (the
// uniform-DAG convention) returns the calibrated Time(class, kind) exactly.
func (p *Platform) TimeNB(class int, kind graph.Kind, nb int) float64 {
	if p.Model == ModelScaled {
		return NewScaledModel(p, p.DefaultNB()).Time(class, kind, nb)
	}
	return TableModel{P: p}.Time(class, kind, nb)
}

// FastestTimeNB returns min_r T_rt(nb) over classes with workers — the
// size-aware counterpart of FastestTime, equal to it bit-for-bit at nb = 0.
func (p *Platform) FastestTimeNB(kind graph.Kind, nb int) float64 {
	best := math.Inf(1)
	for i := range p.Classes {
		if p.Classes[i].Count == 0 {
			continue
		}
		if t := p.TimeNB(i, kind, nb); t < best {
			best = t
		}
	}
	return best
}

// AverageTimeNB returns the worker-count-weighted mean execution time of kind
// at tile size nb — the size-aware counterpart of AverageTime, equal to it
// bit-for-bit at nb = 0.
func (p *Platform) AverageTimeNB(kind graph.Kind, nb int) float64 {
	sum, n := 0.0, 0
	for i := range p.Classes {
		c := &p.Classes[i]
		if c.Count == 0 {
			continue
		}
		t := p.TimeNB(i, kind, nb)
		if math.IsInf(t, 1) {
			continue
		}
		sum += float64(c.Count) * t
		n += c.Count
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}
