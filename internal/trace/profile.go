package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/simulator"
)

// Parallelism profiling: how many tasks are ready or running over time.
// This is the quantity behind the paper's §VI-A diagnosis of dmdas ("it
// selects some tasks in the beginning which are critical but are not
// generating enough level of parallelism") — a scheduler that burns ready
// parallelism too early starves the GPUs later.

// ProfilePoint samples the execution state at one instant.
type ProfilePoint struct {
	Time    float64
	Running int // tasks executing
	Ready   int // tasks with all predecessors finished, not yet started
}

// ReadyProfile samples the ready/running counts at `samples` uniform points
// across the makespan of a simulated execution. Fewer than two samples are
// clamped to two (one point per makespan endpoint): the timestamp formula
// divides by samples−1, and a single sample would yield 0/0 → NaN.
func ReadyProfile(d *graph.DAG, r *simulator.Result, samples int) []ProfilePoint {
	if samples <= 0 {
		samples = 100
	}
	if samples < 2 {
		samples = 2
	}
	out := make([]ProfilePoint, 0, samples)
	for s := 0; s < samples; s++ {
		t := r.MakespanSec * float64(s) / float64(samples-1)
		pt := ProfilePoint{Time: t}
		for _, tk := range d.Tasks {
			switch {
			case r.Start[tk.ID] <= t && t < r.End[tk.ID]:
				pt.Running++
			case r.Start[tk.ID] > t:
				ready := true
				for _, pr := range tk.Pred {
					if r.End[pr] > t {
						ready = false
						break
					}
				}
				if ready {
					pt.Ready++
				}
			}
		}
		out = append(out, pt)
	}
	return out
}

// PeakParallelism returns the maximum running+ready count of a profile —
// an upper estimate of how many workers the execution could have fed.
func PeakParallelism(profile []ProfilePoint) int {
	best := 0
	for _, p := range profile {
		if v := p.Running + p.Ready; v > best {
			best = v
		}
	}
	return best
}

// MeanRunning returns the average number of executing tasks — the effective
// parallelism actually extracted.
func MeanRunning(profile []ProfilePoint) float64 {
	if len(profile) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range profile {
		s += float64(p.Running)
	}
	return s / float64(len(profile))
}

// RenderProfile draws the running-task count over time as an ASCII area
// (rows = worker counts, columns = time).
func RenderProfile(profile []ProfilePoint, height int) string {
	if height <= 0 {
		height = 12
	}
	maxR := 0
	for _, p := range profile {
		if p.Running > maxR {
			maxR = p.Running
		}
	}
	if maxR == 0 {
		maxR = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "running tasks over time (max %d, mean %.1f):\n", maxR, MeanRunning(profile))
	for row := height; row >= 1; row-- {
		threshold := float64(row) / float64(height) * float64(maxR)
		line := make([]byte, len(profile))
		for i, p := range profile {
			if float64(p.Running) >= threshold-1e-12 && p.Running > 0 {
				line[i] = '#'
			} else {
				line[i] = ' '
			}
		}
		lbl := ""
		if row == height {
			lbl = fmt.Sprintf("%3d", maxR)
		} else if row == 1 {
			lbl = "  1"
		} else {
			lbl = "   "
		}
		fmt.Fprintf(&b, "%s |%s|\n", lbl, line)
	}
	return b.String()
}

// CompareProfiles summarizes two schedulers' profiles side by side, sorted
// by name — the §VI-A comparison as a one-call report.
func CompareProfiles(d *graph.DAG, results map[string]*simulator.Result, samples int) string {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := results[n]
		pr := ReadyProfile(d, r, samples)
		// Early-phase (first quarter) mean running: where dmdas starves.
		quarter := pr[:int(math.Max(1, float64(len(pr))/4))]
		fmt.Fprintf(&b, "%-8s makespan %.4fs  mean-running %.1f  early-phase %.1f  peak-avail %d\n",
			n, r.MakespanSec, MeanRunning(pr), MeanRunning(quarter), PeakParallelism(pr))
	}
	return b.String()
}
