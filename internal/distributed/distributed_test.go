package distributed

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/platform"
)

// testCluster: 4 nodes of (3 CPUs + 1 GPU) with a 10 GB/s network.
func testCluster(nodes int) *Cluster {
	node := platform.Mirage()
	node.Classes[0].Count = 3
	node.Classes[1].Count = 1
	return &Cluster{
		Node:      node,
		Nodes:     nodes,
		Net:       platform.Bus{Enabled: true, BandwidthBps: 10e9, LatencySec: 5e-6},
		TileBytes: node.TileBytes,
	}
}

func homogeneousCluster(nodes, cpus int) *Cluster {
	return &Cluster{
		Node:      platform.Homogeneous(cpus),
		Nodes:     nodes,
		Net:       platform.Bus{Enabled: true, BandwidthBps: 10e9, LatencySec: 5e-6},
		TileBytes: platform.Mirage().TileBytes,
	}
}

func mustSim(t *testing.T, d *graph.DAG, c *Cluster, opt Options) *Result {
	t.Helper()
	r, err := Simulate(d, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, c, r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBlockCyclicOwner(t *testing.T) {
	b := BlockCyclic{P: 2, Q: 2}
	if b.Owner(0, 0) != 0 || b.Owner(0, 1) != 1 || b.Owner(1, 0) != 2 || b.Owner(1, 1) != 3 {
		t.Fatal("2x2 grid mapping wrong")
	}
	if b.Owner(2, 2) != 0 || b.Owner(3, 1) != 3 {
		t.Fatal("cyclic wrap wrong")
	}
	if b.Name() != "block-cyclic-2x2" {
		t.Fatal("name")
	}
	r := RowCyclic{N: 3}
	if r.Owner(4, 7) != 1 || r.Name() != "row-cyclic-3" {
		t.Fatal("row cyclic")
	}
}

func TestOwnerComputesPlacement(t *testing.T) {
	c := testCluster(4)
	d := graph.Cholesky(8)
	dist := BlockCyclic{P: 2, Q: 2}
	r := mustSim(t, d, c, Options{Dist: dist})
	for _, tk := range d.Tasks {
		want := OwnerOf(tk, dist, c.Nodes)
		if got := c.workerNode(r.Worker[tk.ID]); got != want {
			t.Fatalf("task %s on node %d, owner is %d", tk.Name(), got, want)
		}
	}
}

func TestDynamicValidAndUsesAllNodes(t *testing.T) {
	c := testCluster(4)
	d := graph.Cholesky(16)
	r := mustSim(t, d, c, Options{Priorities: true})
	used := map[int]bool{}
	for _, w := range r.Worker {
		used[c.workerNode(w)] = true
	}
	if len(used) < 2 {
		t.Fatalf("dynamic schedule used only %d nodes", len(used))
	}
}

func TestBoundsHoldOnCluster(t *testing.T) {
	c := testCluster(4)
	flat := c.FlatPlatform()
	if flat.Workers() != 16 {
		t.Fatalf("flat platform has %d workers", flat.Workers())
	}
	for _, n := range []int{4, 8, 12} {
		d := graph.Cholesky(n)
		m, err := bounds.MixedInt(d, flat)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{},
			{Priorities: true},
			{Dist: BlockCyclic{P: 2, Q: 2}},
			{Dist: RowCyclic{N: 4}, Priorities: true},
		} {
			r := mustSim(t, d, c, opt)
			if r.MakespanSec < m.MakespanSec-1e-9 {
				t.Fatalf("n=%d: cluster makespan %g below flat mixed bound %g",
					n, r.MakespanSec, m.MakespanSec)
			}
		}
	}
}

func Test2DBeatsOr1DOnHomogeneous(t *testing.T) {
	// The classic ScaLAPACK result: the 2D grid balances load/communication
	// at least as well as a 1D layout on homogeneous clusters for large
	// matrices.
	c := homogeneousCluster(4, 4)
	d := graph.Cholesky(24)
	r2 := mustSim(t, d, c, Options{Dist: BlockCyclic{P: 2, Q: 2}})
	r1 := mustSim(t, d, c, Options{Dist: RowCyclic{N: 4}})
	if r2.MakespanSec > r1.MakespanSec*1.05 {
		t.Fatalf("2D %g much worse than 1D %g", r2.MakespanSec, r1.MakespanSec)
	}
}

func TestDynamicBeatsOwnerComputesOnHeterogeneous(t *testing.T) {
	// The paper's §II-B claim: "for heterogeneous resources, this layout is
	// no longer an option, and dynamic scheduling is a widespread practice".
	c := testCluster(4)
	d := graph.Cholesky(16)
	static := mustSim(t, d, c, Options{Dist: BlockCyclic{P: 2, Q: 2}, Priorities: true})
	dynamic := mustSim(t, d, c, Options{Priorities: true})
	if dynamic.MakespanSec > static.MakespanSec {
		t.Fatalf("dynamic %g worse than owner-computes %g on a heterogeneous cluster",
			dynamic.MakespanSec, static.MakespanSec)
	}
}

func TestNetworkTrafficAccounting(t *testing.T) {
	c := testCluster(4)
	d := graph.Cholesky(8)
	r := mustSim(t, d, c, Options{Dist: BlockCyclic{P: 2, Q: 2}})
	if r.NetTransfers == 0 || r.NetSec <= 0 {
		t.Fatal("block-cyclic Cholesky must communicate")
	}
	// Free network: no accounting, same validity.
	cFree := testCluster(4)
	cFree.Net.Enabled = false
	rf := mustSim(t, d, cFree, Options{Dist: BlockCyclic{P: 2, Q: 2}})
	if rf.NetTransfers != 0 || rf.NetSec != 0 {
		t.Fatal("free network still accounted transfers")
	}
	if rf.MakespanSec > r.MakespanSec+1e-9 {
		t.Fatal("network costs made the run faster")
	}
}

func TestSingleNodeClusterMatchesShape(t *testing.T) {
	// One node, no network: behaves like a standalone machine.
	c := testCluster(1)
	d := graph.Cholesky(8)
	r := mustSim(t, d, c, Options{Priorities: true})
	if r.NetTransfers != 0 {
		t.Fatal("single-node cluster should not use the network")
	}
	if r.MakespanSec <= 0 {
		t.Fatal("bad makespan")
	}
}

func TestClusterValidateErrors(t *testing.T) {
	c := testCluster(0)
	if err := c.Validate(graph.CholeskyKinds); err == nil {
		t.Fatal("expected error for empty cluster")
	}
	bad := &graph.DAG{Tasks: []*graph.Task{
		{ID: 0, Kind: graph.GEMM, Succ: []int{1}, Pred: []int{1}},
		{ID: 1, Kind: graph.GEMM, Succ: []int{0}, Pred: []int{0}},
	}}
	if _, err := Simulate(bad, testCluster(2), Options{}); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestBusyAccounting(t *testing.T) {
	c := testCluster(2)
	d := graph.Cholesky(6)
	r := mustSim(t, d, c, Options{})
	total := 0.0
	for _, b := range r.NodeBusySec {
		total += b
	}
	sum := 0.0
	for id := range r.Start {
		sum += r.End[id] - r.Start[id]
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Fatalf("busy accounting inconsistent: %g vs %g", total, sum)
	}
}

func TestDeterminism(t *testing.T) {
	c := testCluster(4)
	d := graph.Cholesky(10)
	a := mustSim(t, d, c, Options{Priorities: true})
	b := mustSim(t, d, c, Options{Priorities: true})
	if a.MakespanSec != b.MakespanSec {
		t.Fatal("not deterministic")
	}
	for i := range a.Worker {
		if a.Worker[i] != b.Worker[i] {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestScalingMoreNodesNotSlower(t *testing.T) {
	d := graph.Cholesky(20)
	r1 := mustSim(t, d, homogeneousCluster(1, 4), Options{Dist: RowCyclic{N: 1}})
	r4 := mustSim(t, d, homogeneousCluster(4, 4), Options{Dist: BlockCyclic{P: 2, Q: 2}})
	if r4.MakespanSec > r1.MakespanSec {
		t.Fatalf("4 nodes (%g) slower than 1 node (%g)", r4.MakespanSec, r1.MakespanSec)
	}
}

func TestWeightedCyclicShares(t *testing.T) {
	w := WeightedCyclic{Weights: []float64{3, 1}}
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		counts[w.Owner(i, 0)]++
	}
	// Node 0 should own ≈75 % of rows.
	frac := float64(counts[0]) / 400
	if frac < 0.7 || frac > 0.8 {
		t.Fatalf("node 0 owns %.2f of rows, want ≈0.75", frac)
	}
	if w.Name() != "weighted-cyclic-2" {
		t.Fatal("name")
	}
	// Degenerate inputs.
	if (WeightedCyclic{}).Owner(3, 0) != 0 {
		t.Fatal("empty weights should map to node 0")
	}
	if (WeightedCyclic{Weights: []float64{0, 0}}).Owner(3, 0) != 0 {
		t.Fatal("zero weights should map to node 0")
	}
}

func TestWeightedStaticStillLosesToDynamic(t *testing.T) {
	// §II-B, quantified harder: even a heterogeneity-weighted static layout
	// does not beat dynamic scheduling on a *mixed* cluster where per-task
	// affinity (not just node speed) matters.
	node := platform.Mirage()
	node.Classes[0].Count = 3
	node.Classes[1].Count = 1
	fast := &Cluster{
		Node: node, Nodes: 4,
		Net:       platform.Bus{Enabled: true, BandwidthBps: 10e9, LatencySec: 5e-6},
		TileBytes: node.TileBytes,
	}
	d := graph.Cholesky(16)
	weighted := mustSim(t, d, fast, Options{
		Dist:       WeightedCyclic{Weights: []float64{1, 1, 1, 1}},
		Priorities: true,
	})
	dynamic := mustSim(t, d, fast, Options{Priorities: true})
	if dynamic.MakespanSec > weighted.MakespanSec*1.02 {
		t.Fatalf("dynamic %g should be at least competitive with weighted static %g",
			dynamic.MakespanSec, weighted.MakespanSec)
	}
	// Validity of owner placement.
	dist := WeightedCyclic{Weights: []float64{1, 1, 1, 1}}
	for _, tk := range d.Tasks {
		want := OwnerOf(tk, dist, fast.Nodes)
		if got := fast.workerNode(weighted.Worker[tk.ID]); got != want {
			t.Fatalf("task %s on node %d, owner %d", tk.Name(), got, want)
		}
	}
}
