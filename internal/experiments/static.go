package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cpsolve"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Fig9 renders Figure 9: the tiles whose TRSM kernels are forced onto CPUs
// for a p-tile matrix with distance threshold k ('C' = forced to CPU,
// 'g' = left to the dynamic scheduler, '·' = not a TRSM tile).
func Fig9(p, k int) string {
	hint := sched.TrsmTriangleOnCPU(k)
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure 9 — TRSMs forced on CPUs (p=%d, k=%d)\n", p, k)
	for i := 0; i < p; i++ {
		for j := 0; j <= i; j++ {
			c := byte('.')
			if j < i { // tile (i, j), j<i carries TRSM_i_j
				if hint(&graph.Task{Kind: graph.TRSM, I: i, K: j}) != nil {
					c = 'C'
				} else {
					c = 'g'
				}
			}
			b.WriteByte(c)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	b.WriteString("C = TRSM forced on CPU, g = dynamic, . = non-TRSM tile\n")
	return b.String()
}

// BestTriangleK sweeps the TRSM-distance threshold and returns the best k
// and its simulated GFLOP/s for a given size (the paper's "best obtained
// performance among all possible values of k"; it reports k ≈ 6–8 optimal).
// k = 0 in the result denotes "no forcing" (plain dmdas), which is included
// as the degenerate end of the sweep — for very small matrices every real k
// hurts, and a practitioner would keep the dynamic schedule.
func BestTriangleK(cfg Config, n int, p *platform.Platform, overhead bool) (int, float64, error) {
	ks := cfg.TriangleKs
	if ks == nil {
		for k := 1; k < n; k++ {
			ks = append(ks, k)
		}
	}
	d := graph.Cholesky(n)
	eval := func(s sched.Scheduler) (float64, error) {
		if overhead {
			g, _, err := repeated(cfg, func(seed int64) (float64, error) {
				return simGFlops(cfg.Ctx(), d, p, s, cfg.NB,
					simulator.Options{Seed: seed, Overhead: true})
			})
			return g, err
		}
		return simGFlops(cfg.Ctx(), d, p, s, cfg.NB, simulator.Options{Seed: cfg.Seed})
	}
	bestK, bestG := 0, math.Inf(-1)
	if g, err := eval(sched.NewDMDAS()); err != nil {
		return 0, 0, err
	} else {
		bestG = g
	}
	for _, k := range ks {
		if k < 1 || k >= n {
			continue
		}
		g, err := eval(sched.NewTriangleTRSM(k))
		if err != nil {
			return 0, 0, err
		}
		if g > bestG {
			bestK, bestG = k, g
		}
	}
	return bestK, bestG, nil
}

// Fig10 reproduces Figure 10: heterogeneous unrelated simulated performance
// with static knowledge — dmdas, the mixed bound, the CP solution (model
// value), the CP schedule injected in simulation, and the best
// triangle-TRSM hint. CP series are computed for n ≤ cfg.CPMaxTiles (the
// paper's CP also only produced solutions "for reasonable matrix sizes").
func Fig10(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 10 — heterogeneous unrelated simulated performance with static knowledge",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	var dmdas, mixed, cpVal, cpSim, tri []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		p := unrelatedSimPlatform(n)
		f := flops(n, cfg.NB)

		dmRes, err := simulator.RunContext(cfg.Ctx(), d, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		dmdas = append(dmdas, dmRes.GFlops(f))

		m, err := mixedBound(d, p)
		if err != nil {
			return nil, err
		}
		mixed = append(mixed, m.GFlops(f))

		if n <= cfg.CPMaxTiles {
			// Warm-start the CP search from the dmdas schedule itself (the
			// paper warm-starts from its HEFT-like heuristic), so the CP
			// line never regresses below the dynamic scheduler.
			warm := &sched.StaticSchedule{
				Worker: dmRes.Worker, Start: dmRes.Start, EstMakespan: dmRes.MakespanSec,
			}
			r, err := cpsolve.SolveContext(cfg.Ctx(), d, p, cpsolve.Options{
				NodeBudget: cfg.CPBudget, Beam: 3, WarmStart: warm,
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 CP n=%d: %w", n, err)
			}
			cpVal = append(cpVal, platform.GFlops(f, r.Makespan))
			sim, err := simulator.RunContext(cfg.Ctx(), d, p, r.Schedule.Scheduler("cp-inject"), simulator.Options{})
			if err != nil {
				return nil, err
			}
			cpSim = append(cpSim, sim.GFlops(f))
		} else {
			cpVal = append(cpVal, math.NaN())
			cpSim = append(cpSim, math.NaN())
		}

		_, bg, err := BestTriangleK(cfg, n, p, false)
		if err != nil {
			return nil, err
		}
		tri = append(tri, bg)
	}
	tbl.Add("dmdas", dmdas, nil)
	tbl.Add("mixed bound", mixed, nil)
	tbl.Add("CP solution", cpVal, nil)
	tbl.Add("CP in simulation", cpSim, nil)
	tbl.Add("triangle trsms on cpu", tri, nil)
	return tbl, nil
}

// Fig11 reproduces Figure 11 (heterogeneous actual performance with static
// knowledge) in the substituted actual mode: Mirage with communications,
// overhead and jitter; dmdas vs the best triangle-TRSM hint, mean ± σ.
func Fig11(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 11 — heterogeneous actual performance with static knowledge (overhead-model substitute)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	var dm, dmSig, tri []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		p := platform.Mirage()
		m, s, err := repeatedSim(cfg, d, p,
			func() sched.Scheduler { return sched.NewDMDAS() },
			simulator.Options{Overhead: true})
		if err != nil {
			return nil, err
		}
		dm = append(dm, m)
		dmSig = append(dmSig, s)
		_, bg, err := BestTriangleK(cfg, n, p, true)
		if err != nil {
			return nil, err
		}
		tri = append(tri, bg)
	}
	tbl.Add("dmdas", dm, dmSig)
	tbl.Add("triangle trsms on cpu", tri, nil)
	return tbl, nil
}

// MappingOnly reproduces the Section VI-B experiment: injecting only the
// CP solution's CPU/GPU mapping (not its ordering) into the dynamic
// scheduler, versus full injection and plain dmdas, on small sizes.
func MappingOnly(cfg Config) (*stats.Table, error) {
	var sizes []int
	for _, n := range cfg.Sizes {
		if n <= cfg.CPMaxTiles {
			sizes = append(sizes, n)
		}
	}
	tbl := &stats.Table{
		Title:  "Section VI-B — CP mapping-only injection vs full injection",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(sizes),
	}
	var dm, full, mapOnly, orderOnly []float64
	for _, n := range sizes {
		d := graph.Cholesky(n)
		p := unrelatedSimPlatform(n)
		f := flops(n, cfg.NB)
		dmRes, err := simulator.RunContext(cfg.Ctx(), d, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		dm = append(dm, dmRes.GFlops(f))
		warm := &sched.StaticSchedule{
			Worker: dmRes.Worker, Start: dmRes.Start, EstMakespan: dmRes.MakespanSec,
		}
		r, err := cpsolve.SolveContext(cfg.Ctx(), d, p, cpsolve.Options{
			NodeBudget: cfg.CPBudget, Beam: 3, WarmStart: warm,
		})
		if err != nil {
			return nil, err
		}
		sim, err := simulator.RunContext(cfg.Ctx(), d, p, r.Schedule.Scheduler("cp-full"), simulator.Options{})
		if err != nil {
			return nil, err
		}
		full = append(full, sim.GFlops(f))
		mo, err := simGFlops(cfg.Ctx(), d, p, r.Schedule.MappingScheduler(p), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mapOnly = append(mapOnly, mo)
		oo, err := simGFlops(cfg.Ctx(), d, p, r.Schedule.OrderScheduler(), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		orderOnly = append(orderOnly, oo)
	}
	tbl.Add("dmdas", dm, nil)
	tbl.Add("CP full injection", full, nil)
	tbl.Add("CP mapping only", mapOnly, nil)
	tbl.Add("CP order only", orderOnly, nil)
	return tbl, nil
}

// GemmSyrkHint reproduces the Section V-C3 observation that forcing GEMM and
// SYRK onto GPUs improves performance only slightly (dmda/dmdas already put
// most of them there).
func GemmSyrkHint(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Section V-C3 — forcing GEMM+SYRK on GPUs",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	var plain, hinted []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		p := unrelatedSimPlatform(n)
		g, err := simGFlops(cfg.Ctx(), d, p, sched.NewDMDAS(), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		plain = append(plain, g)
		h, err := simGFlops(cfg.Ctx(), d, p,
			sched.NewDMDASWithHints("dmdas+gemm-syrk-gpu", sched.GemmSyrkOnGPU()),
			cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		hinted = append(hinted, h)
	}
	tbl.Add("dmdas", plain, nil)
	tbl.Add("dmdas+gemm/syrk on gpu", hinted, nil)
	return tbl, nil
}

// TransferAblation quantifies dmda's data awareness: dmda vs dmda-nocomm on
// the full Mirage model (communications enabled) — a DESIGN.md §7 ablation.
func TransferAblation(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Ablation — transfer-aware dmda vs transfer-blind dmda (PCI model on)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	var aware, blind []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		p := platform.Mirage()
		a, err := simGFlops(cfg.Ctx(), d, p, sched.NewDMDA(), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		aware = append(aware, a)
		b, err := simGFlops(cfg.Ctx(), d, p, sched.NewDMDANoComm(), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		blind = append(blind, b)
	}
	tbl.Add("dmda", aware, nil)
	tbl.Add("dmda-nocomm", blind, nil)
	return tbl, nil
}
