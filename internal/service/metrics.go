package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics is a minimal Prometheus-expfmt metric registry: counters, gauge
// functions, and fixed-bucket histograms, rendered as text/plain version
// 0.0.4 on /metrics. It deliberately implements only what cholserved needs
// rather than importing a client library (the container has no network
// access for new dependencies, and the text format is tiny).
type Metrics struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable output
}

type family struct {
	name, help, typ string
	series          map[string]*series // canonical label string → series
	seriesOrder     []string
	buckets         []float64 // histograms only
}

type series struct {
	labels string // rendered `{k="v",...}` block, "" when unlabelled
	value  float64
	fn     func() float64 // gauge functions
	// histogram state
	bucketCounts []uint64
	sum          float64
	count        uint64
}

// Labels is one metric series' label set.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, l[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{families: map[string]*family{}}
}

func (m *Metrics) family(name, help, typ string, buckets []float64) *family {
	f, ok := m.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}, buckets: buckets}
		m.families[name] = f
		m.order = append(m.order, name)
	}
	return f
}

func (f *family) at(labels Labels) *series {
	key := labels.render()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		if f.typ == "histogram" {
			s.bucketCounts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
		f.seriesOrder = append(f.seriesOrder, key)
	}
	return s
}

// CounterAdd increments the counter series by delta (creating it on first
// use).
func (m *Metrics) CounterAdd(name, help string, labels Labels, delta float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.family(name, help, "counter", nil).at(labels).value += delta
}

// CounterValue reads a counter series back (0 when absent) — used by tests
// and cheap introspection.
func (m *Metrics) CounterValue(name string, labels Labels) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.families[name]
	if !ok {
		return 0
	}
	s, ok := f.series[labels.render()]
	if !ok {
		return 0
	}
	return s.value
}

// GaugeFunc registers a gauge whose value is sampled at scrape time.
func (m *Metrics) GaugeFunc(name, help string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.family(name, help, "gauge", nil).at(nil)
	s.fn = fn
}

// Observe records one sample into a histogram series with the family's
// bucket upper bounds (set on first call).
func (m *Metrics) Observe(name, help string, labels Labels, buckets []float64, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.family(name, help, "histogram", buckets)
	s := f.at(labels)
	for i, ub := range f.buckets {
		if v <= ub {
			s.bucketCounts[i]++
		}
	}
	s.sum += v
	s.count++
}

// Render writes the registry in the Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.order {
		f := m.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, key := range f.seriesOrder {
			s := f.series[key]
			switch f.typ {
			case "histogram":
				inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
				for i, ub := range f.buckets {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(inner, fmt.Sprintf("le=%q", fmtFloat(ub))), s.bucketCounts[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLabels(inner, `le="+Inf"`), s.count)
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, s.sum)
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.count)
			case "gauge":
				v := s.value
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, v)
			default:
				fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.value)
			}
		}
	}
}

func mergeLabels(inner, extra string) string {
	if inner == "" {
		return "{" + extra + "}"
	}
	return "{" + inner + "," + extra + "}"
}

func fmtFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// DefBuckets are the request-latency histogram bounds in seconds.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// DepthBuckets are the decision-depth histogram bounds: candidate workers
// weighed per scheduling decision (platforms top out at a few dozen workers).
var DepthBuckets = []float64{1, 2, 4, 8, 12, 16, 24, 32, 64}
