package bounds_test

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
)

// Compute the paper's four bounds for a 16×16-tile Cholesky on Mirage
// (Figure 2's rightmost region).
func ExampleCompute() {
	all, err := bounds.Compute(16, platform.TileNB, platform.Mirage())
	if err != nil {
		panic(err)
	}
	f := kernels.CholeskyFlops(16 * platform.TileNB)
	fmt.Printf("area   %.0f GFLOP/s\n", all.Area.GFlops(f))
	fmt.Printf("mixed  %.0f GFLOP/s\n", all.Mixed.GFlops(f))
	fmt.Printf("peak   %.0f GFLOP/s\n", all.GemmPeak.GFlops(f))
	// Output:
	// area   917 GFLOP/s
	// mixed  917 GFLOP/s
	// peak   960 GFLOP/s
}

// The mixed bound strictly tightens the area bound at small sizes, because
// the POTRF chain forces sequential work the area relaxation ignores.
func ExampleMixedInt() {
	d := graph.Cholesky(4)
	p := platform.Mirage()
	area, _ := bounds.AreaInt(d, p)
	mixed, _ := bounds.MixedInt(d, p)
	fmt.Printf("mixed/area makespan ratio > 4: %v\n",
		mixed.MakespanSec/area.MakespanSec > 4)
	// Output:
	// mixed/area makespan ratio > 4: true
}
