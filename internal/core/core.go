// Package core is the library façade: the high-level entry points a
// downstream user calls to (a) factorize real matrices with the parallel
// runtime, (b) simulate tiled Cholesky schedules on modelled heterogeneous
// platforms, (c) compute the paper's makespan bounds, and (d) regenerate
// the paper's tables and figures.
//
// It wires together the substrates (matrix/kernels/graph/platform/lp) and
// the study layers (bounds/sched/simulator/cpsolve/runtime/experiments)
// behind a small, stable surface. Everything it returns comes from those
// packages, which remain importable directly for fine-grained control.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// Factorize computes the Cholesky factor L of a symmetric positive-definite
// matrix in parallel with the task runtime (nb = tile size, workers ≤ 0 =
// GOMAXPROCS) and returns L together with the relative residual
// ‖A − L·Lᵀ‖_F / ‖A‖_F.
func Factorize(a *matrix.Dense, nb, workers int) (*matrix.Dense, float64, error) {
	tl, err := matrix.FromDense(a, nb)
	if err != nil {
		return nil, 0, err
	}
	if _, err := runtime.Factor(tl, runtime.Options{Workers: workers, Policy: runtime.Priority}); err != nil {
		return nil, 0, err
	}
	l := tl.ToDense()
	return l, matrix.CholeskyResidual(a, l), nil
}

// PlatformByName builds one of the named platform models:
//
//	"mirage"            — the paper's machine (9 CPUs + 3 GPUs, PCI model)
//	"mirage-nocomm"     — same, data transfers removed
//	"homogeneous:N"     — N CPU cores
//	"related:K"         — Mirage with a uniform GPU speedup K
func PlatformByName(name string) (*platform.Platform, error) {
	switch {
	case name == "mirage":
		return platform.Mirage(), nil
	case name == "mirage-nocomm":
		return platform.WithoutCommunication(platform.Mirage()), nil
	case strings.HasPrefix(name, "homogeneous:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "homogeneous:"))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("core: bad homogeneous worker count in %q", name)
		}
		return platform.Homogeneous(n), nil
	case strings.HasPrefix(name, "related:"):
		k, err := strconv.ParseFloat(strings.TrimPrefix(name, "related:"), 64)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("core: bad acceleration factor in %q", name)
		}
		return platform.Related(platform.Mirage(), k), nil
	default:
		return nil, fmt.Errorf("core: unknown platform %q (mirage, mirage-nocomm, homogeneous:N, related:K)", name)
	}
}

// SchedulerByName builds one of the named scheduling policies:
//
//	"random", "greedy", "dmda", "dmdas", "dmdar", "dmda-nocomm",
//	"trsm-cpu:K"       — dmdas + the triangle hint with threshold K
//	"gemm-syrk-gpu"    — dmdas + GEMM/SYRK forced on GPUs
func SchedulerByName(name string) (sched.Scheduler, error) {
	switch {
	case name == "random":
		return sched.NewRandom(), nil
	case name == "greedy":
		return sched.NewGreedy(), nil
	case name == "dmda":
		return sched.NewDMDA(), nil
	case name == "dmdas":
		return sched.NewDMDAS(), nil
	case name == "dmdar":
		return sched.NewDMDAR(), nil
	case name == "dmda-nocomm":
		return sched.NewDMDANoComm(), nil
	case strings.HasPrefix(name, "trsm-cpu:"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "trsm-cpu:"))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("core: bad triangle threshold in %q", name)
		}
		return sched.NewTriangleTRSM(k), nil
	case name == "gemm-syrk-gpu":
		return sched.NewDMDASWithHints(name, sched.GemmSyrkOnGPU()), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", name)
	}
}

// SimulationReport bundles one simulated run with its bound context.
type SimulationReport struct {
	Tiles       int
	Scheduler   string
	MakespanSec float64
	GFlops      float64
	BoundGFlops float64 // mixed-bound performance ceiling
	Efficiency  float64 // GFlops / BoundGFlops
	Result      *simulator.Result
}

// Simulate runs one tiled-Cholesky simulation and reports performance
// against the mixed bound.
func Simulate(nTiles int, p *platform.Platform, s sched.Scheduler, opt simulator.Options) (*SimulationReport, error) {
	d := graph.Cholesky(nTiles)
	return SimulateDAG(d, kernels.CholeskyFlops(nTiles*platform.TileNB), p, s, opt)
}

// SimulateDAG runs one simulation of an arbitrary factorization DAG (see
// DAGByAlgorithm) and reports performance against the generalized mixed
// bound, using the given flop total for the GFLOP/s conversion.
func SimulateDAG(d *graph.DAG, flops float64, p *platform.Platform,
	s sched.Scheduler, opt simulator.Options) (*SimulationReport, error) {

	r, err := simulator.Run(d, p, s, opt)
	if err != nil {
		return nil, err
	}
	if err := simulator.Validate(d, p, r); err != nil {
		return nil, fmt.Errorf("core: simulator produced an invalid schedule: %w", err)
	}
	m, err := bounds.MixedInt(d, p)
	if err != nil {
		return nil, err
	}
	rep := &SimulationReport{
		Tiles:       d.P,
		Scheduler:   s.Name(),
		MakespanSec: r.MakespanSec,
		GFlops:      r.GFlops(flops),
		BoundGFlops: m.GFlops(flops),
		Result:      r,
	}
	if rep.BoundGFlops > 0 {
		rep.Efficiency = rep.GFlops / rep.BoundGFlops
	}
	return rep, nil
}

// BoundsFor computes the four Figure-2 bounds for a tile count on a platform.
func BoundsFor(nTiles int, p *platform.Platform) (bounds.All, error) {
	return bounds.Compute(nTiles, platform.TileNB, p)
}

// OptimizeSchedule searches for a near-optimal static schedule of a tiled
// Cholesky (the CP experiment) and returns it with its model makespan.
func OptimizeSchedule(nTiles int, p *platform.Platform, nodeBudget int) (*cpsolve.Result, error) {
	return OptimizeDAG(graph.Cholesky(nTiles), p, nodeBudget)
}

// OptimizeDAG is OptimizeSchedule for an arbitrary factorization DAG.
func OptimizeDAG(d *graph.DAG, p *platform.Platform, nodeBudget int) (*cpsolve.Result, error) {
	return cpsolve.Solve(d, p, cpsolve.Options{NodeBudget: nodeBudget, Beam: 3})
}

// RunExperiment regenerates one paper artifact by ID (see
// experiments.Registry for the catalogue).
func RunExperiment(id string, cfg experiments.Config) (string, error) {
	r, err := experiments.Find(id)
	if err != nil {
		return "", err
	}
	text, _, err := r.Run(cfg)
	return text, err
}
