package core_test

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulator"
)

// scheduleDigest folds the schedule-defining fields of a simulator Result
// into one FNV-64a word over the exact float bit patterns, so "equal" below
// means bit-identical, not approximately equal.
func scheduleDigest(r *simulator.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	f(r.MakespanSec)
	for _, w := range r.Worker {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(w)))
		h.Write(buf[:])
	}
	for _, v := range r.Start {
		f(v)
	}
	for _, v := range r.End {
		f(v)
	}
	return h.Sum64()
}

// TestUniformNBScheduleIdentity is the redesign's core compatibility
// property: on every registered platform, a Cholesky DAG whose tasks carry
// an explicit Task.NB equal to the platform's reference size — including the
// degenerate CholeskySplit DAG — schedules bit-identically to the legacy
// NB = 0 DAG. The size-parametrised cost model must be invisible at the
// reference size.
func TestUniformNBScheduleIdentity(t *testing.T) {
	const tiles = 8
	for _, e := range core.Platforms() {
		name := e.Name
		if strings.HasPrefix(name, "zz-test-") {
			continue
		}
		if e.Param != "" {
			arg, ok := paramSamples[e.Name]
			if !ok {
				t.Fatalf("registered platform %q has no sample argument: add one to paramSamples", e.Display())
			}
			name = e.Name + ":" + arg
		}
		t.Run(name, func(t *testing.T) {
			p, err := core.NewPlatform(name)
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.NewScheduler("dmdas")
			if err != nil {
				t.Fatal(err)
			}
			base, err := simulator.Run(graph.Cholesky(tiles), p, s, simulator.Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			want := scheduleDigest(base)

			nb := p.DefaultNB()
			pinned := graph.Cholesky(tiles)
			for i := range pinned.Tasks {
				pinned.Tasks[i].NB = nb
			}
			for _, tc := range []struct {
				label string
				d     *graph.DAG
			}{
				{"explicit-nb", pinned},
				{"degenerate-split", graph.CholeskySplit(tiles, tiles, 2, nb)},
			} {
				s2, err := core.NewScheduler("dmdas")
				if err != nil {
					t.Fatal(err)
				}
				r, err := simulator.Run(tc.d, p, s2, simulator.Options{Seed: 1})
				if err != nil {
					t.Fatalf("%s: %v", tc.label, err)
				}
				if got := scheduleDigest(r); got != want {
					t.Errorf("%s: digest %016x, want %016x (schedule changed at the reference tile size)",
						tc.label, got, want)
				}
			}
		})
	}
}
