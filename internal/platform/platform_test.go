package platform

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
)

func TestMirageSpeedupsMatchTableI(t *testing.T) {
	p := Mirage()
	s := p.SpeedupTable(0, 1, graph.CholeskyKinds)
	want := map[graph.Kind]float64{
		graph.POTRF: 2, graph.TRSM: 11, graph.SYRK: 26, graph.GEMM: 29,
	}
	for k, w := range want {
		if math.Abs(s[k]-w) > 1e-9 {
			t.Fatalf("%v speedup = %g, want %g", k, s[k], w)
		}
	}
}

func TestMirageGemmPeakNear960(t *testing.T) {
	p := Mirage()
	peak := p.GemmPeakGFlops(kernels.GemmFlops(TileNB))
	// 3×290 + 9×10 = 960 GFLOP/s: the Fig. 2 asymptote.
	if math.Abs(peak-960) > 1 {
		t.Fatalf("GEMM peak = %g GFLOP/s, want ≈960", peak)
	}
}

func TestAccelerationFactorsMatchPaper(t *testing.T) {
	// §V-C2: "Acceleration factors for 4, 8, 12, 16, 20, 24, 28 and 32 tiles
	// matrices are 17.30, 22.30, 24.30, 25.38, 26.06, 26.52, 26.86 and 27.11".
	p := Mirage()
	want := map[int]float64{
		4: 17.30, 8: 22.30, 12: 24.30, 16: 25.38,
		20: 26.06, 24: 26.52, 28: 26.86, 32: 27.11,
	}
	for n, w := range want {
		got := p.AccelerationFactor(graph.Cholesky(n), 0, 1)
		if math.Abs(got-w) > 0.005 {
			t.Fatalf("K(%d) = %.4f, want %.2f", n, got, w)
		}
	}
}

func TestMirageValidates(t *testing.T) {
	if err := Mirage().Validate(graph.CholeskyKinds); err != nil {
		t.Fatal(err)
	}
	if err := Homogeneous(9).Validate(graph.CholeskyKinds); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	p := &Platform{Classes: []Class{{Name: "x", Count: 0}}}
	if err := p.Validate(nil); err == nil {
		t.Fatal("expected error for zero workers")
	}
	p = &Platform{Classes: []Class{{Name: "x", Count: -1}}}
	if err := p.Validate(nil); err == nil {
		t.Fatal("expected error for negative count")
	}
	p = &Platform{Classes: []Class{{Name: "x", Count: 1, Times: map[graph.Kind]float64{graph.GEMM: -1}}}}
	if err := p.Validate(nil); err == nil {
		t.Fatal("expected error for negative time")
	}
	p = &Platform{Classes: []Class{{Name: "x", Count: 1, Times: map[graph.Kind]float64{graph.GEMM: 1}}}}
	if err := p.Validate([]graph.Kind{graph.POTRF}); err == nil {
		t.Fatal("expected error for unrunnable kernel")
	}
}

func TestTimeUnsupportedIsInf(t *testing.T) {
	p := Mirage()
	if !math.IsInf(p.Time(1, graph.GETRF), 1) {
		t.Fatal("unsupported kernel should have +Inf time")
	}
}

func TestFastestAndAverageTime(t *testing.T) {
	p := Mirage()
	for _, k := range graph.CholeskyKinds {
		cpu, gpu := p.Time(0, k), p.Time(1, k)
		if p.FastestTime(k) != math.Min(cpu, gpu) {
			t.Fatalf("%v: FastestTime wrong", k)
		}
		want := (9*cpu + 3*gpu) / 12
		if math.Abs(p.AverageTime(k)-want) > 1e-12 {
			t.Fatalf("%v: AverageTime = %g, want %g", k, p.AverageTime(k), want)
		}
	}
	// All Cholesky kernels are fastest on GPU in the Mirage model.
	for _, k := range graph.CholeskyKinds {
		if p.FastestTime(k) != p.Time(1, k) {
			t.Fatalf("%v should be fastest on GPU", k)
		}
	}
}

func TestWorkerClassMapping(t *testing.T) {
	p := Mirage()
	if p.Workers() != 12 {
		t.Fatalf("Workers = %d, want 12", p.Workers())
	}
	for w := 0; w < 9; w++ {
		if p.WorkerClass(w) != 0 {
			t.Fatalf("worker %d should be CPU", w)
		}
	}
	for w := 9; w < 12; w++ {
		if p.WorkerClass(w) != 1 {
			t.Fatalf("worker %d should be GPU", w)
		}
	}
	cw := p.ClassWorkers(0)
	if len(cw) != 9 || cw[0] != 0 || cw[8] != 8 {
		t.Fatalf("ClassWorkers(0) = %v", cw)
	}
	gw := p.ClassWorkers(1)
	if len(gw) != 3 || gw[0] != 9 || gw[2] != 11 {
		t.Fatalf("ClassWorkers(1) = %v", gw)
	}
}

func TestWorkerClassOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mirage().WorkerClass(12)
}

func TestMemoryNodes(t *testing.T) {
	p := Mirage()
	if p.MemoryNodes() != 4 {
		t.Fatalf("MemoryNodes = %d, want 4 (host + 3 GPUs)", p.MemoryNodes())
	}
	for w := 0; w < 9; w++ {
		if p.MemoryNode(w) != 0 {
			t.Fatalf("CPU worker %d not on host node", w)
		}
	}
	for g := 0; g < 3; g++ {
		if p.MemoryNode(9+g) != 1+g {
			t.Fatalf("GPU %d on node %d, want %d", g, p.MemoryNode(9+g), 1+g)
		}
	}
}

func TestBusTransferTime(t *testing.T) {
	b := Bus{Enabled: true, BandwidthBps: 1e9, LatencySec: 1e-5}
	if got := b.TransferTime(1e9); math.Abs(got-(1+1e-5)) > 1e-12 {
		t.Fatalf("TransferTime = %g", got)
	}
	b.Enabled = false
	if b.TransferTime(1e9) != 0 {
		t.Fatal("disabled bus should be free")
	}
}

func TestRelatedPlatformUniformSpeedup(t *testing.T) {
	base := Mirage()
	rel := Related(base, 20)
	s := rel.SpeedupTable(0, 1, graph.CholeskyKinds)
	for k, v := range s {
		if math.Abs(v-20) > 1e-9 {
			t.Fatalf("%v related speedup = %g, want 20", k, v)
		}
	}
	// CPU times unchanged.
	for _, k := range graph.CholeskyKinds {
		if rel.Time(0, k) != base.Time(0, k) {
			t.Fatal("Related modified CPU times")
		}
	}
}

func TestRelatedPanicsOnHomogeneous(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Related(Homogeneous(4), 10)
}

func TestWithoutCommunication(t *testing.T) {
	p := WithoutCommunication(Mirage())
	if p.Bus.Enabled {
		t.Fatal("bus still enabled")
	}
	if Mirage().Bus.Enabled == false {
		t.Fatal("WithoutCommunication mutated the base constructor")
	}
}

func TestScaleClassTimes(t *testing.T) {
	base := Mirage()
	p := ScaleClassTimes(base, 1, 2)
	for _, k := range graph.CholeskyKinds {
		if math.Abs(p.Time(1, k)-2*base.Time(1, k)) > 1e-15 {
			t.Fatalf("%v not scaled", k)
		}
		if p.Time(0, k) != base.Time(0, k) {
			t.Fatal("CPU times changed")
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Mirage()
	q := p.Clone()
	q.Classes[0].Times[graph.GEMM] = 123
	if p.Classes[0].Times[graph.GEMM] == 123 {
		t.Fatal("Clone shares timing maps")
	}
}

func TestGFlops(t *testing.T) {
	if GFlops(2e9, 2) != 1 {
		t.Fatal("GFlops conversion wrong")
	}
	if !math.IsInf(GFlops(1, 0), 1) {
		t.Fatal("GFlops(x, 0) should be +Inf")
	}
}

func TestCalibrateProducesPositiveTimes(t *testing.T) {
	times := Calibrate(32, 1) // tiny tile: fast test
	for _, k := range graph.CholeskyKinds {
		if times[k] <= 0 {
			t.Fatalf("%v calibrated time %g", k, times[k])
		}
	}
	// GEMM does 2nb³ work vs POTRF's nb³/3: GEMM should not be faster than
	// POTRF by more than noise allows on equal tiles. (Weak sanity check.)
	if times[graph.GEMM] <= 0 || times[graph.POTRF] <= 0 {
		t.Fatal("non-positive calibration")
	}
}

func TestCalibratedHost(t *testing.T) {
	p := CalibratedHost(4, 16, 1)
	if err := p.Validate(graph.CholeskyKinds); err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestCanRun(t *testing.T) {
	c := Class{Times: map[graph.Kind]float64{graph.GEMM: 1, graph.TRSM: math.Inf(1)}}
	if !c.CanRun(graph.GEMM) || c.CanRun(graph.POTRF) || c.CanRun(graph.TRSM) {
		t.Fatal("CanRun wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Mirage()
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q := &Platform{}
	if err := q.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Workers() != p.Workers() {
		t.Fatal("metadata lost")
	}
	for r := range p.Classes {
		for _, k := range graph.CholeskyKinds {
			if q.Time(r, k) != p.Time(r, k) {
				t.Fatalf("class %d kernel %v time lost", r, k)
			}
		}
	}
	if q.Bus != p.Bus || q.TileBytes != p.TileBytes || q.Overhead != p.Overhead {
		t.Fatal("bus/overhead lost")
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	p := MirageExtended()
	path := t.TempDir() + "/plat.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(graph.Cholesky(4).Kinds()); err != nil {
		t.Fatal(err)
	}
	if q.Time(1, graph.TSMQR) != p.Time(1, graph.TSMQR) {
		t.Fatal("extended kernel time lost")
	}
}

func TestJSONRejectsUnknownKernel(t *testing.T) {
	q := &Platform{}
	err := q.UnmarshalJSON([]byte(`{"classes":[{"name":"x","count":1,"times":{"FOO":1}}]}`))
	if err == nil {
		t.Fatal("expected unknown-kernel error")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/x.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestSiroccoThreeClasses(t *testing.T) {
	p := Sirocco()
	if err := p.Validate(graph.CholeskyKinds); err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 3 || p.Workers() != 28 {
		t.Fatalf("classes=%d workers=%d", len(p.Classes), p.Workers())
	}
	// Memory nodes: host + 2 fast + 2 slow.
	if p.MemoryNodes() != 5 {
		t.Fatalf("MemoryNodes = %d", p.MemoryNodes())
	}
	if p.MemoryNode(24) != 1 || p.MemoryNode(27) != 4 {
		t.Fatal("accelerator node mapping wrong")
	}
	if p.NodeClass(2) != 1 || p.NodeClass(3) != 2 {
		t.Fatal("NodeClass wrong for three classes")
	}
	// GEMM fastest on the fast GPUs.
	if p.FastestTime(graph.GEMM) != p.Time(1, graph.GEMM) {
		t.Fatal("GEMM should be fastest on gpu-fast")
	}
}
