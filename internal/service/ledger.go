package service

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simulator"
)

// The run ledger is the service's flight recorder: a bounded in-memory
// store of recent evaluations, each under a stable ID, keeping the full
// simulator result (and, for recorded runs, the obs event stream) so the
// trace and gap-attribution endpoints can reconstruct *why* a schedule
// looked the way it did after the fact. Capacity is a ring: the oldest
// entry is dropped when a new one would exceed it.
//
// Entries are opened *before* their evaluation runs and completed (or
// failed) after, so the live-stream endpoint can attach to a run in flight:
// each entry carries a bounded obs.FrameRing that buffers its progress
// frames and fans them out to SSE subscribers. Closing the ring (on
// completion, failure, or eviction) ends every attached stream.

// Run kinds: what evaluation an entry ledgered.
const (
	KindSimulate = "simulate"
	KindSweep    = "sweep"
	KindOptimize = "optimize"
)

// Run lifecycle states.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// RunEntry is one ledgered evaluation.
type RunEntry struct {
	ID        string
	Kind      string // KindSimulate | KindSweep | KindOptimize
	Status    string // StatusRunning | StatusDone | StatusFailed
	Error     string // failure reason, failed entries only
	CreatedAt time.Time
	Request   SimulateRequest
	Response  *SimulateResponse
	Optimize  *OptimizeResponse // optimize entries only
	Result    *simulator.Result
	Recorder  *obs.Recorder // nil unless the request asked for decision recording
	// Frames buffers the run's live progress frames and fans them out to
	// /v1/runs/{id}/live subscribers. Nil for entries without a live stream
	// (batched-sweep cells, which stream through their parent sweep entry).
	Frames *obs.FrameRing
}

// RunSummary is the list-view projection of a ledger entry.
type RunSummary struct {
	ID          string  `json:"id"`
	Kind        string  `json:"kind"`
	Status      string  `json:"status"`
	CreatedAt   string  `json:"created_at"` // RFC 3339, UTC
	Platform    string  `json:"platform"`
	Scheduler   string  `json:"scheduler,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Tiles       int     `json:"tiles,omitempty"`
	MakespanSec float64 `json:"makespan_sec,omitempty"`
	Efficiency  float64 `json:"efficiency,omitempty"`
	Recorded    bool    `json:"recorded"`
	Events      int     `json:"events,omitempty"`
	Live        bool    `json:"live"` // entry has a live frame stream
}

// Ledger is a concurrency-safe bounded run store.
type Ledger struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []*RunEntry // oldest first
}

// NewLedger returns a ledger holding at most capacity runs (minimum 1).
func NewLedger(capacity int) *Ledger {
	if capacity < 1 {
		capacity = 1
	}
	return &Ledger{cap: capacity}
}

// Open ledgers a run that is about to execute: it assigns the ID, marks the
// entry running, and makes it (and its frame ring) visible to /v1/runs and
// the live stream immediately. Balance with Complete or Fail.
func (l *Ledger) Open(e *RunEntry) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Kind == "" {
		e.Kind = KindSimulate
	}
	e.Status = StatusRunning
	return l.append(e)
}

// Add ledgers an already-finished run (no live phase): the batched-sweep
// cells, whose progress streams through their parent sweep entry.
func (l *Ledger) Add(e *RunEntry) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Kind == "" {
		e.Kind = KindSimulate
	}
	e.Status = StatusDone
	return l.append(e)
}

// append assigns the next ID, stores e and evicts the oldest entry beyond
// capacity. Callers hold l.mu.
func (l *Ledger) append(e *RunEntry) string {
	l.seq++
	e.ID = fmt.Sprintf("run-%06d", l.seq)
	l.entries = append(l.entries, e)
	if len(l.entries) > l.cap {
		// Drop the oldest; shift rather than reslice so the backing array
		// does not pin evicted results (and their recorders) alive. Closing
		// the evicted ring ends any live streams still attached to it.
		if old := l.entries[0]; old.Frames != nil {
			old.Frames.Close()
		}
		copy(l.entries, l.entries[1:])
		l.entries[len(l.entries)-1] = nil
		l.entries = l.entries[:len(l.entries)-1]
	}
	return e.ID
}

// Complete finishes an opened run: update fills in the outcome fields under
// the ledger lock, the status flips to done, and the frame ring closes so
// live subscribers see end-of-stream. A run already evicted from the
// bounded ledger is a no-op (its ring was closed at eviction).
func (l *Ledger) Complete(id string, update func(*RunEntry)) {
	l.finish(id, StatusDone, update)
}

// Fail marks an opened run failed with err and closes its frame ring.
func (l *Ledger) Fail(id string, err error) {
	l.finish(id, StatusFailed, func(e *RunEntry) {
		if err != nil {
			e.Error = err.Error()
		}
	})
}

func (l *Ledger) finish(id, status string, update func(*RunEntry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.ID != id {
			continue
		}
		if update != nil {
			update(e)
		}
		e.Status = status
		if e.Frames != nil {
			e.Frames.Close()
		}
		return
	}
}

// Get returns a snapshot of the entry with the given ID, or false. The
// returned struct is a copy taken under the ledger lock — safe to read
// while the run completes concurrently; its pointer fields (Response,
// Result, Recorder) are written once at completion and never mutated after.
func (l *Ledger) Get(id string) (*RunEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.entries {
		if e.ID == id {
			cp := *e
			return &cp, true
		}
	}
	return nil, false
}

// List returns summaries of all resident runs, newest first.
func (l *Ledger) List() []RunSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunSummary, 0, len(l.entries))
	for i := len(l.entries) - 1; i >= 0; i-- {
		out = append(out, summarize(l.entries[i]))
	}
	return out
}

// Len returns the number of resident runs.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// summarize projects an entry whose outcome may not exist yet (running or
// failed entries have no Response) into the list view.
func summarize(e *RunEntry) RunSummary {
	s := RunSummary{
		ID:        e.ID,
		Kind:      e.Kind,
		Status:    e.Status,
		CreatedAt: e.CreatedAt.UTC().Format(time.RFC3339),
		Platform:  e.Request.Platform,
		Scheduler: e.Request.Scheduler,
		Algorithm: e.Request.Algorithm,
		Tiles:     e.Request.Tiles,
		Recorded:  e.Recorder != nil,
		Events:    e.Recorder.Events(),
		Live:      e.Frames != nil,
	}
	switch {
	case e.Response != nil:
		s.Scheduler = e.Response.Scheduler
		s.Algorithm = e.Response.Algorithm
		s.MakespanSec = e.Response.MakespanSec
		s.Efficiency = e.Response.Efficiency
	case e.Optimize != nil:
		s.Scheduler = "cp"
		s.MakespanSec = e.Optimize.MakespanSec
	case e.Kind == KindOptimize:
		s.Scheduler = "cp"
	}
	return s
}
