package simulator

// Footprint approximates the arena's retained backing memory in bytes: every
// dense per-run array, queue ring, event heap and residency list it would
// reuse on the next run. replay.Pool keys its high-water trimming on it.
func (a *Arena) Footprint() int {
	st := &a.st
	b := 8 * (cap(st.workerFree) + cap(st.estFree) + cap(st.dataReady) + cap(st.linkFree) + cap(st.jitU))
	b += cap(st.executing) + cap(st.workerDirty) + cap(st.doneTask) + cap(st.loc)
	b += 4 * (cap(st.locCount) + cap(st.pins) + cap(st.indeg) + cap(st.decTrace) + cap(st.startTrace))
	b += 8 * cap(st.lastUse)
	b += 32 * cap(st.events) // sizeof(event)
	for w := range st.queues {
		b += 24 * cap(st.queues[w].items) // sizeof(queueEntry)
	}
	b += 24 * cap(st.queues)
	for node := range st.residentTiles {
		b += 4 * cap(st.residentTiles[node])
	}
	return b
}

// Release drops every retained backing array, returning the arena to its
// zero state. The arena stays valid — the next run re-allocates exactly what
// that run needs, which is the point: after one oversized run, a pooled
// arena would otherwise pin the high-water allocation forever.
func (a *Arena) Release() {
	a.st = state{}
}
