package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the bottom-up half of the interprocedural engine: the
// fixpoint solver over the call graph built in callgraph.go, the
// class-hierarchy widening for interface dispatch, witness chains, hot-path
// reachability, and the marker-verdict API the registry drift test consumes.

type implTarget struct {
	node *FuncNode
	ext  *types.Func
}

// solve iterates the monotone effect transfer until nothing grows. The
// lattice is a fixed-width bitset per node plus a ParamCalls mask, so
// termination is immediate; the loop is a plain round-robin worklist —
// program sizes here (a few hundred nodes) don't justify SCC ordering.
func (p *Program) solve() {
	for _, n := range p.all {
		n.Summary = n.intrinsic
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.all {
			if p.update(n) {
				changed = true
			}
		}
	}
	p.solved = true
}

func (p *Program) update(n *FuncNode) bool {
	sum := n.Summary | n.intrinsic
	pc := n.ParamCalls
	for _, e := range n.edges {
		s, m := p.foldEdge(n, e)
		sum |= s
		pc |= m
	}
	if sum != n.Summary || pc != n.ParamCalls {
		n.Summary = sum
		n.ParamCalls = pc
		return true
	}
	return false
}

// foldEdge translates one call site's contribution into the caller's frame:
// callee mutation bits are re-rooted through the receiver/argument roots,
// and callee ParamCalls bits are substituted with the actual arguments.
func (p *Program) foldEdge(n *FuncNode, e *callEdge) (Effects, uint32) {
	switch {
	case e.contract:
		return 0, 0
	case e.paramIdx >= 0:
		return 0, 1 << uint(e.paramIdx)
	case e.callee != nil:
		return p.foldTarget(n, e, e.callee, nil)
	case e.ext != nil:
		return p.foldTarget(n, e, nil, e.ext)
	case e.ifaceKey != "":
		var sum Effects
		var pc uint32
		for _, t := range p.implementers(e.ifaceKey) {
			s, m := p.foldTarget(n, e, t.node, t.ext)
			sum |= s
			pc |= m
		}
		return sum, pc
	case e.bindObj != nil:
		targets := p.binds[e.bindObj]
		if len(targets) == 0 {
			p.witnessEdge(n, EffUnknown, e, nil, "calls opaque function value "+e.bindObj.Name())
			return EffUnknown, 0
		}
		var sum Effects
		var pc uint32
		for _, bt := range targets {
			s, m := p.foldBound(n, e, bt)
			sum |= s
			pc |= m
		}
		return sum, pc
	default:
		p.witnessEdge(n, EffUnknown, e, nil, "calls an unresolvable function value")
		return EffUnknown, 0
	}
}

func (p *Program) foldBound(n *FuncNode, e *callEdge, bt boundTarget) (Effects, uint32) {
	switch {
	case bt.contract:
		return 0, 0
	case bt.unknown:
		p.witnessEdge(n, EffUnknown, e, nil, "calls an unresolvable function value")
		return EffUnknown, 0
	default:
		saved := e.recvRoot
		e.recvRoot = bt.recvRoot
		s, m := p.foldTarget(n, e, bt.node, bt.ext)
		e.recvRoot = saved
		return s, m
	}
}

// foldTarget folds one concrete callee (loaded node or external function).
func (p *Program) foldTarget(n *FuncNode, e *callEdge, callee *FuncNode, ext *types.Func) (Effects, uint32) {
	var calleeSum Effects
	var calleePC uint32
	var label string
	if callee != nil {
		calleeSum = callee.Summary
		calleePC = callee.ParamCalls
		label = callee.Name
	} else {
		s := extEffectsOf(ext)
		calleeSum = s.effects
		calleePC = s.paramCalls
		label = extLabel(ext)
	}

	out := calleeSum &^ (EffMutatesReceiver | EffMutatesArg)
	if calleeSum&EffMutatesReceiver != 0 {
		out |= translateMutation(e.recvRoot)
	}
	if calleeSum&EffMutatesArg != 0 {
		for _, a := range e.args {
			out |= translateMutation(a.root)
		}
		if len(e.args) == 0 {
			out |= translateMutation(e.recvRoot)
		}
	}

	var pc uint32
	if calleePC != 0 {
		for k := 0; k < 32 && calleePC>>uint(k) != 0; k++ {
			if calleePC&(1<<uint(k)) == 0 || k >= len(e.args) {
				continue
			}
			a := e.args[k]
			switch {
			case !a.isFunc || a.contract:
			case a.param >= 0:
				pc |= 1 << uint(a.param)
			case len(a.targets) > 0:
				for _, bt := range a.targets {
					s, m := p.foldBound(n, e, bt)
					out |= s
					pc |= m
				}
			default:
				p.witnessEdge(n, EffUnknown, e, nil, "passes an unresolvable function value to "+label)
				out |= EffUnknown
			}
		}
	}

	// Record witnesses for bits this call introduces.
	for _, ew := range effNames {
		if out&ew.bit != 0 {
			p.witnessEdge(n, ew.bit, e, callee, "calls "+label)
		}
	}
	return out, pc
}

func translateMutation(r root) Effects {
	switch r.kind {
	case rootRecv:
		return EffMutatesReceiver
	case rootParam, rootCaptured, rootUnknown:
		return EffMutatesArg
	case rootGlobal:
		return EffMutatesGlobal
	default:
		return 0
	}
}

func extLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := namedTypeNameOf(sig.Recv().Type()); tn != "" {
			return fn.Pkg().Name() + "." + tn + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func (p *Program) witnessEdge(n *FuncNode, bit Effects, e *callEdge, via *FuncNode, what string) {
	if _, ok := n.wit[bit]; ok {
		return
	}
	n.wit[bit] = &Witness{Pos: n.Unit.Fset.Position(e.pos), What: what, Via: via}
}

// WitnessChain renders why n carries the given effect bit, following call
// witnesses into callees: "calls (*dm).score at sched.go:120: ranges over a
// map at sched.go:88".
func (p *Program) WitnessChain(n *FuncNode, bit Effects) string {
	var parts []string
	seen := map[*FuncNode]bool{}
	for n != nil && !seen[n] {
		seen[n] = true
		w := n.wit[bit]
		if w == nil {
			break
		}
		parts = append(parts, fmt.Sprintf("%s at %s:%d", w.What, shortFile(w.Pos.Filename), w.Pos.Line))
		if w.Via == nil {
			break
		}
		n = w.Via
		// A callee witness may explain the bit pre-translation (receiver
		// mutation became arg mutation); fall back across mutation bits.
		if n.wit[bit] == nil {
			for _, alt := range []Effects{EffMutatesReceiver, EffMutatesArg, EffMutatesGlobal} {
				if bit&(EffMutatesReceiver|EffMutatesArg|EffMutatesGlobal) != 0 && n.wit[alt] != nil {
					bit = alt
					break
				}
			}
		}
	}
	if len(parts) == 0 {
		return bit.String()
	}
	return strings.Join(parts, ": ")
}

func shortFile(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// implementers resolves an interface method to its concrete implementations
// over the program's named types — class-hierarchy analysis under a
// closed-world reading of the loaded units. Because the same type appears
// in different type universes across units, satisfaction is checked by
// method-name + signature-string matching rather than types.Implements.
func (p *Program) implementers(ifaceKey string) []implTarget {
	if ts, ok := p.implCache[ifaceKey]; ok {
		return ts
	}
	var out []implTarget
	methodName, ifaceSig := p.ifaceMethod(ifaceKey)
	if methodName != "" {
		for _, ni := range p.namedTypes {
			if types.IsInterface(ni.named.Underlying()) {
				continue
			}
			ms := types.NewMethodSet(types.NewPointer(ni.named))
			sel := ms.Lookup(nil, methodName)
			if sel == nil {
				continue
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok || sigString(fn) != ifaceSig {
				continue
			}
			// The type must satisfy the whole interface, not just this
			// method, or unrelated same-named methods widen the dispatch.
			if !p.satisfiesIface(ni.named, ifaceKey) {
				continue
			}
			if node := p.byName[fn.FullName()]; node != nil {
				out = append(out, implTarget{node: node})
			} else {
				out = append(out, implTarget{ext: fn})
			}
		}
	}
	p.implCache[ifaceKey] = out
	return out
}

// ifaceMethod recovers the method name and signature string from an
// interface-method FullName key by locating any types.Func with that name
// among the units' scopes. The key format is "(pkg/path.Iface).Method".
func (p *Program) ifaceMethod(key string) (name, sig string) {
	if fn := p.lookupIfaceFunc(key); fn != nil {
		return fn.Name(), sigString(fn)
	}
	return "", ""
}

func (p *Program) lookupIfaceFunc(key string) *types.Func {
	inner := strings.TrimPrefix(key, "(")
	tpath, method, ok := strings.Cut(inner, ").")
	if !ok {
		return nil
	}
	dot := strings.LastIndexByte(tpath, '.')
	if dot < 0 {
		return nil
	}
	pkgPath, tname := tpath[:dot], tpath[dot+1:]
	for _, ni := range p.namedTypes {
		if ni.named.Obj().Pkg() == nil || ni.named.Obj().Pkg().Path() != pkgPath || ni.named.Obj().Name() != tname {
			continue
		}
		iface, ok := ni.named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == method {
				return iface.Method(i)
			}
		}
	}
	// The interface type may live outside the loaded units (export data
	// only); resolve through any unit's import graph.
	for _, u := range p.Units {
		if fn := findImportedIfaceFunc(u.Pkg, pkgPath, tname, method, map[*types.Package]bool{}); fn != nil {
			return fn
		}
	}
	return nil
}

func findImportedIfaceFunc(pkg *types.Package, path, tname, method string, seen map[*types.Package]bool) *types.Func {
	if pkg == nil || seen[pkg] {
		return nil
	}
	seen[pkg] = true
	if pkg.Path() == path {
		if tn, ok := pkg.Scope().Lookup(tname).(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				for i := 0; i < iface.NumMethods(); i++ {
					if iface.Method(i).Name() == method {
						return iface.Method(i)
					}
				}
			}
		}
		return nil
	}
	for _, imp := range pkg.Imports() {
		if fn := findImportedIfaceFunc(imp, path, tname, method, seen); fn != nil {
			return fn
		}
	}
	return nil
}

// satisfiesIface checks interface satisfaction across type universes: every
// interface method must exist on *T with an identical signature string.
func (p *Program) satisfiesIface(named *types.Named, ifaceKey string) bool {
	ifn := p.lookupIfaceFunc(ifaceKey)
	if ifn == nil {
		return false
	}
	sig, ok := ifn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		sel := ms.Lookup(nil, m.Name())
		if sel == nil {
			return false
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok || sigString(fn) != sigString(m) {
			return false
		}
	}
	return true
}

// sigString renders a function's parameter/result signature with full
// package paths, the comparable-across-universes form.
func sigString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	clean := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(clean, nil)
}

// computeHotReach walks call edges from //chol:hotpath roots, marking every
// loaded declared function reachable without crossing a //chollint:hotcall
// call site. Literal nodes are skipped: a literal's body nests inside some
// declaration and is scanned with it.
func (p *Program) computeHotReach() {
	p.hotReach = map[*FuncNode]hotPath{}
	var queue []*FuncNode
	for _, n := range p.all {
		if n.Hot && n.Decl != nil {
			p.hotReach[n] = hotPath{rootNode: n}
			queue = append(queue, n)
		}
	}
	enqueue := func(from, to *FuncNode, pos token.Pos) {
		if to == nil {
			return
		}
		if to.Lit != nil {
			to = declOf(to)
			if to == nil {
				return
			}
		}
		if _, ok := p.hotReach[to]; ok {
			return
		}
		hp := p.hotReach[from]
		p.hotReach[to] = hotPath{rootNode: hp.rootNode, via: from, pos: from.Unit.Fset.Position(pos)}
		queue = append(queue, to)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		// A declaration's literals call with its hotness.
		for _, m := range p.all {
			if m.Lit != nil && declOf(m) == n {
				for _, e := range m.edges {
					p.enqueueEdge(enqueue, n, e)
				}
			}
		}
		for _, e := range n.edges {
			p.enqueueEdge(enqueue, n, e)
		}
	}
}

func (p *Program) enqueueEdge(enqueue func(from, to *FuncNode, pos token.Pos), from *FuncNode, e *callEdge) {
	if e.noHot {
		return
	}
	switch {
	case e.callee != nil:
		enqueue(from, e.callee, e.pos)
	case e.ifaceKey != "":
		for _, t := range p.implementers(e.ifaceKey) {
			enqueue(from, t.node, e.pos)
		}
	case e.bindObj != nil:
		for _, bt := range p.binds[e.bindObj] {
			enqueue(from, bt.node, e.pos)
		}
	}
	for _, a := range e.args {
		for _, bt := range a.targets {
			enqueue(from, bt.node, e.pos)
		}
	}
}

func declOf(n *FuncNode) *FuncNode {
	for n != nil && n.Lit != nil {
		n = n.enclosing
	}
	return n
}

// FuncNodeOf returns the node for a declared function, resolving across
// type universes, or nil.
func (p *Program) FuncNodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.byName[fn.FullName()]
}

// MethodNode resolves the named method in T's method set to its node.
func (p *Program) MethodNode(named *types.Named, name string) *FuncNode {
	ms := types.NewMethodSet(types.NewPointer(named))
	sel := ms.Lookup(nil, name)
	if sel == nil {
		return nil
	}
	fn, _ := sel.Obj().(*types.Func)
	return p.FuncNodeOf(fn)
}

// constBoolMethod reports whether T's method set has the named niladic bool
// method and, if its body is loaded and is a single constant return, that
// constant. ok is false when the method is absent or unprovable.
func (p *Program) constBoolMethod(named *types.Named, name string) (val, ok bool) {
	n := p.MethodNode(named, name)
	if n == nil || n.Decl == nil || n.Decl.Body == nil || len(n.Decl.Body.List) != 1 {
		return false, false
	}
	ret, okRet := n.Decl.Body.List[0].(*ast.ReturnStmt)
	if !okRet || len(ret.Results) != 1 {
		return false, false
	}
	id, okID := ast.Unparen(ret.Results[0]).(*ast.Ident)
	if !okID {
		return false, false
	}
	switch id.Name {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	return false, false
}

// MarkerVerdict is the static judgment for one scheduler type claiming the
// sched.SeedInvariant / sched.PureAssign marker interfaces.
type MarkerVerdict struct {
	Type string // package-qualified, e.g. "sched.dmdar"

	ClaimsSeedInvariant bool
	ClaimsPureAssign    bool

	ProvenSeedInvariant bool
	ProvenPureAssign    bool

	SeedWhy string // witness chain when unproven
	PureWhy string
}

// Effect sets that refute each marker. PureAssign ("Assign and Priority
// read but never write the scheduler") fails on receiver/global writes;
// argument mutation is excluded because the simulator's View state is
// legitimately written through it elsewhere and the contract is about the
// scheduler object. SeedInvariant fails on any seed-dependent source:
// RNGs (all RNG state here descends from Options.Seed), clocks, and
// nondeterministic map iteration.
const (
	pureAssignFail    = EffMutatesReceiver | EffMutatesGlobal | EffUnknown
	seedInvariantFail = EffReadsRand | EffReadsClock | EffRangesMap | EffUnknown
	// contractFail refutes a //chol:pure acquisition: the value may be
	// called from hot, replayed decision paths, so it must neither write
	// any externally visible state nor consume a seed-dependent source.
	contractFail = pureAssignFail | seedInvariantFail | EffMutatesArg | EffBlocks
)

// MarkerVerdicts judges every named type in the program that claims either
// marker, in deterministic order.
func (p *Program) MarkerVerdicts() []MarkerVerdict {
	var out []MarkerVerdict
	seen := map[string]bool{}
	for _, ni := range p.namedTypes {
		if types.IsInterface(ni.named.Underlying()) {
			continue
		}
		key := qualifiedTypeName(ni.named.Obj())
		if seen[key] {
			continue
		}
		seen[key] = true
		si, siOK := p.constBoolMethod(ni.named, "SeedInvariant")
		pa, paOK := p.constBoolMethod(ni.named, "PureAssign")
		if !siOK && !paOK {
			continue
		}
		v := MarkerVerdict{
			Type:                displayTypeName(ni.named),
			ClaimsSeedInvariant: siOK && si,
			ClaimsPureAssign:    paOK && pa,
		}
		v.ProvenPureAssign, v.PureWhy = p.proveMarker(ni.named, pureAssignFail, []string{"Assign", "Priority"}, false)
		v.ProvenSeedInvariant, v.SeedWhy = p.proveMarker(ni.named, seedInvariantFail, []string{"Assign", "Priority", "Init"}, true)
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

func displayTypeName(named *types.Named) string {
	if pkg := named.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}

// proveMarker checks the fail mask over the named methods; checkSeedParam
// additionally requires Init to ignore its seed parameter.
func (p *Program) proveMarker(named *types.Named, fail Effects, methods []string, checkSeedParam bool) (bool, string) {
	for _, m := range methods {
		n := p.MethodNode(named, m)
		if n == nil {
			ms := types.NewMethodSet(types.NewPointer(named))
			if ms.Lookup(nil, m) != nil {
				return false, m + " has no loaded body"
			}
			continue // type doesn't have the method: nothing to refute
		}
		if bad := n.Summary & fail; bad != 0 {
			bit := lowestBit(bad)
			return false, fmt.Sprintf("%s %s: %s", n.Name, bit, p.WitnessChain(n, bit))
		}
		if checkSeedParam && m == "Init" {
			if why := p.seedParamUse(n); why != "" {
				return false, why
			}
		}
	}
	return true, ""
}

// seedParamUse reports a non-empty reason when Init consumes a parameter
// named "seed" (by convention the sched.Scheduler Init seed). Forwarding
// the seed verbatim to a loaded callee that itself provably ignores it is
// benign — the embedding pattern (partition.Init → dm.Init) does exactly
// that; any other reference refutes the claim.
func (p *Program) seedParamUse(n *FuncNode) string {
	var seedObj types.Object
	for _, o := range n.ownParams {
		if o.Name() == "seed" {
			seedObj = o
		}
	}
	return p.seedConsumed(n, seedObj, map[*FuncNode]bool{})
}

func (p *Program) seedConsumed(n *FuncNode, seedObj types.Object, seen map[*FuncNode]bool) string {
	if seedObj == nil || n.Decl == nil || seen[n] {
		return ""
	}
	seen[n] = true
	info := n.Unit.Info
	// First pass: identifier occurrences that are verbatim forwards to a
	// loaded static callee, judged by recursing into the callee's use of
	// the corresponding parameter.
	benign := map[*ast.Ident]bool{}
	var why string
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || why != "" {
			return why == ""
		}
		for i, a := range call.Args {
			id, isIdent := ast.Unparen(a).(*ast.Ident)
			if !isIdent || info.Uses[id] != seedObj {
				continue
			}
			fn := calleeFunc(info, call)
			var target *FuncNode
			if fn != nil {
				target = p.byName[fn.FullName()]
			}
			if target == nil || i >= len(target.ownParams) {
				return true // not a benign forward; second pass reports it
			}
			if sub := p.seedConsumed(target, target.ownParams[i], seen); sub != "" {
				why = sub
				return false
			}
			benign[id] = true
		}
		return true
	})
	if why != "" {
		return why
	}
	var use token.Pos
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && info.Uses[id] == seedObj && !benign[id] && !use.IsValid() {
			use = id.Pos()
		}
		return true
	})
	if use.IsValid() {
		pos := n.Unit.Fset.Position(use)
		return fmt.Sprintf("%s reads its seed parameter at %s:%d", n.Name, shortFile(pos.Filename), pos.Line)
	}
	return ""
}

func lowestBit(e Effects) Effects {
	return e & -e
}
