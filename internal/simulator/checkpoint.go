package simulator

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// Clone returns a deep copy of the result: mutating one never affects the
// other. replay uses it to materialize per-seed Results from a deduplicated
// lane and to serve no-divergence delta queries from the base recording.
func (r *Result) Clone() *Result {
	c := *r
	c.Start = append([]float64(nil), r.Start...)
	c.End = append([]float64(nil), r.End...)
	c.Worker = append([]int(nil), r.Worker...)
	c.BusySec = append([]float64(nil), r.BusySec...)
	c.IdleSec = append([]float64(nil), r.IdleSec...)
	return &c
}

// QueueSnapshot is one worker queue, head-normalized: Tasks[i]/Prio[i]/Seq[i]
// is the i-th entry from the queue's front.
type QueueSnapshot struct {
	Tasks []int32
	Prio  []float64
	Seq   []int
}

// EventSnapshot is one in-flight completion event.
type EventSnapshot struct {
	Time   float64
	Seq    int
	Worker int
	Task   int32
}

// Snapshot is a bit-exact copy of every piece of mutable simulation state at
// an event-loop boundary: restore + loop reproduces the original run's
// suffix exactly (the checkpoint invariant tests compare field by field).
// Snapshots are tied to the Prep that produced them; resuming one under a
// different Prep is undefined.
type Snapshot struct {
	Done      int // completion events processed
	Decisions int // scheduler Assign calls made
	Started   int // task starts (jitter draws consumed)
	Seq       int
	Now       float64

	Queues      []QueueSnapshot
	Executing   []bool
	WorkerFree  []float64
	EstFree     []float64
	WorkerDirty []bool
	DataReady   []float64
	DoneTask    []bool
	LinkFree    []float64

	Loc      []bool
	LocCount []int32
	LastUse  []int
	Pins     []int32
	Resident [][]int32 // per node, in residency order (order is load-bearing for nothing, but copied exactly)

	Events []EventSnapshot
	Indeg  []int32

	Res *Result // partial result accumulated so far
}

// snapshot appends a Snapshot of the current state to st.snaps.
func (st *state) snapshot() {
	st.snaps = append(st.snaps, st.captureSnapshot())
}

// captureSnapshot builds a Snapshot of the current state.
func (st *state) captureSnapshot() *Snapshot {
	sn := &Snapshot{
		Done:      st.done,
		Decisions: st.decisions,
		Started:   st.started,
		Seq:       st.seq,
		Now:       st.now,

		Executing:   append([]bool(nil), st.executing...),
		WorkerFree:  append([]float64(nil), st.workerFree...),
		EstFree:     append([]float64(nil), st.estFree...),
		WorkerDirty: append([]bool(nil), st.workerDirty...),
		DataReady:   append([]float64(nil), st.dataReady...),
		DoneTask:    append([]bool(nil), st.doneTask...),
		LinkFree:    append([]float64(nil), st.linkFree...),

		Loc:      append([]bool(nil), st.loc...),
		LocCount: append([]int32(nil), st.locCount...),
		LastUse:  append([]int(nil), st.lastUse...),
		Pins:     append([]int32(nil), st.pins...),

		Indeg: append([]int32(nil), st.indeg...),
		Res:   st.res.Clone(),
	}
	sn.Queues = make([]QueueSnapshot, len(st.queues))
	for w := range st.queues {
		q := &st.queues[w]
		n := q.size()
		qs := QueueSnapshot{
			Tasks: make([]int32, n),
			Prio:  make([]float64, n),
			Seq:   make([]int, n),
		}
		for i := 0; i < n; i++ {
			e := q.at(i)
			qs.Tasks[i] = int32(e.task.ID)
			qs.Prio[i] = e.prio
			qs.Seq[i] = e.seq
		}
		sn.Queues[w] = qs
	}
	sn.Resident = make([][]int32, len(st.residentTiles))
	for node := range st.residentTiles {
		sn.Resident[node] = append([]int32(nil), st.residentTiles[node]...)
	}
	sn.Events = make([]EventSnapshot, len(st.events))
	for i, e := range st.events {
		sn.Events[i] = EventSnapshot{Time: e.time, Seq: e.seq, Worker: e.worker, Task: int32(e.task.ID)}
	}
	return sn
}

// restore loads a snapshot into an already-reset state. The heap array is
// restored verbatim (it satisfied the heap property when captured), and the
// queues are rebuilt head-normalized — logically identical content, so every
// subsequent pop/insert behaves as in the original run.
func (st *state) restore(sn *Snapshot) {
	st.done = sn.Done
	st.decisions = sn.Decisions
	st.started = sn.Started
	st.seq = sn.Seq
	st.now = sn.Now

	copy(st.executing, sn.Executing)
	copy(st.workerFree, sn.WorkerFree)
	copy(st.estFree, sn.EstFree)
	copy(st.workerDirty, sn.WorkerDirty)
	copy(st.dataReady, sn.DataReady)
	copy(st.doneTask, sn.DoneTask)
	copy(st.linkFree, sn.LinkFree)

	copy(st.loc, sn.Loc)
	copy(st.locCount, sn.LocCount)
	copy(st.lastUse, sn.LastUse)
	copy(st.pins, sn.Pins)

	copy(st.indeg, sn.Indeg)

	for w := range st.queues {
		q := &st.queues[w]
		q.head = 0
		q.items = q.items[:0]
		qs := &sn.Queues[w]
		for i := range qs.Tasks {
			q.items = append(q.items, queueEntry{
				task: st.d.Tasks[qs.Tasks[i]], prio: qs.Prio[i], seq: qs.Seq[i]})
		}
	}
	for node := range st.residentTiles {
		st.residentTiles[node] = append(st.residentTiles[node][:0], sn.Resident[node]...)
	}
	st.events = st.events[:0]
	for _, e := range sn.Events {
		st.events = append(st.events, event{
			time: e.Time, seq: e.Seq, worker: e.Worker, task: st.d.Tasks[e.Task]})
	}

	r := sn.Res
	st.res.MakespanSec = r.MakespanSec
	st.res.TransferSec = r.TransferSec
	st.res.TransferCount = r.TransferCount
	st.res.Evictions = r.Evictions
	st.res.Writebacks = r.Writebacks
	st.res.StallSec = r.StallSec
	copy(st.res.Start, r.Start)
	copy(st.res.End, r.End)
	copy(st.res.Worker, r.Worker)
	copy(st.res.BusySec, r.BusySec)
	copy(st.res.IdleSec, r.IdleSec)
}

// Recording is the output of a recorded run: the final Result, the tasks in
// scheduler-decision order, and periodic state snapshots delta replay can
// resume from.
type Recording struct {
	Result    *Result
	Decisions []int32     // task IDs in Assign order
	Snaps     []*Snapshot // ascending Done/Decisions order
	Opt       Options     // options of the recorded run
	Ordered   bool        // scheduler's Ordered() at record time
	Stride    int         // completion events between snapshots
}

// SnapshotBefore returns the latest snapshot whose decision count does not
// exceed dec, or nil if even the first snapshot is past it.
func (rec *Recording) SnapshotBefore(dec int) *Snapshot {
	var best *Snapshot
	for _, sn := range rec.Snaps {
		if sn.Decisions > dec {
			break
		}
		best = sn
	}
	return best
}

// RunRecorded is Run with checkpointing: it additionally captures the
// decision trace and a state snapshot every stride completion events
// (including one before the first event). Recording never changes the
// schedule — the returned Result is bit-identical to Run's.
func (pp *Prep) RunRecorded(ctx context.Context, s sched.Scheduler, opt Options, stride int, a *Arena) (*Recording, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simulator: run cancelled: %w", err)
	}
	if opt.Recorder != nil {
		return nil, fmt.Errorf("simulator: RunRecorded does not compose with Options.Recorder")
	}
	if stride < 1 {
		stride = 1
	}
	if a == nil {
		a = &Arena{}
	}
	st := &a.st
	st.reset(pp, s, opt)
	st.decTrace = make([]int32, pp.nTasks)
	st.snapEvery = stride
	s.Init(pp.d, pp.p, opt.Seed)
	st.start()
	res, err := st.loop(ctx)
	if err != nil {
		return nil, err
	}
	rec := &Recording{
		Result:    res,
		Decisions: append([]int32(nil), st.decTrace[:st.decisions]...),
		Snaps:     st.snaps,
		Opt:       opt,
		Ordered:   st.ordered,
		Stride:    stride,
	}
	// Detach the snapshots from the arena so a reuse cannot alias them.
	st.snaps = nil
	st.decTrace = nil
	return rec, nil
}

// Resume continues a run from a snapshot under a freshly Init'ed scheduler,
// replaying only the suffix. The caller is responsible for the semantic
// precondition (the variant's first differing decision lies at or after the
// snapshot; see replay.Base.Delta for the conservative gate) — Resume itself
// restores state bit-exactly and reuses the ordinary event loop.
func (pp *Prep) Resume(ctx context.Context, s sched.Scheduler, opt Options, sn *Snapshot, a *Arena) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simulator: run cancelled: %w", err)
	}
	if opt.Recorder != nil {
		return nil, fmt.Errorf("simulator: Resume does not compose with Options.Recorder")
	}
	if sn == nil {
		return nil, fmt.Errorf("simulator: Resume requires a snapshot")
	}
	if a == nil {
		a = &Arena{}
	}
	st := &a.st
	st.reset(pp, s, opt)
	s.Init(pp.d, pp.p, opt.Seed)
	st.restore(sn)
	return st.loop(ctx)
}
