package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpathalloc flags per-call allocation in functions annotated
// `//chol:hotpath` — the simulator event loop, the LP pivot kernel, and the
// other functions whose allocs/op are pinned by cmd/cholbench. The PR2
// rewrite got these paths to amortized-zero allocation; this analyzer keeps
// regressions (a stray fmt.Sprintf in a debug branch, a closure handed to
// sort.Search, an unpreallocated append) from landing in the first place
// rather than being caught by a benchmark diff after the fact.
//
// Flagged constructs:
//
//   - function literals (closures capture and usually escape);
//   - slice/map composite literals, &T{...}, make, new;
//   - append whose destination is a bare local declared without capacity —
//     appends to struct fields or to make(_, _, cap)/[:0] locals are the
//     amortized-reuse idiom and stay exempt;
//   - any fmt.* call;
//   - arguments boxed into interface parameters;
//   - conversions to interfaces and string<->[]byte/[]rune conversions;
//   - string concatenation.
//
// A deliberate slow-path line inside a hot function (error formatting on a
// branch that aborts the run) is annotated //chollint:alloc.
var Hotpathalloc = &Analyzer{
	Name:     "hotpathalloc",
	Doc:      "flags per-call allocation inside //chol:hotpath functions",
	Suppress: "alloc",
	Run:      runHotpathalloc,
}

// HotpathDirective is the doc-comment directive marking a function whose
// allocs/op are pinned by the benchmark suite.
const HotpathDirective = "chol:hotpath"

func runHotpathalloc(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDirective(fd.Doc, HotpathDirective) {
				continue
			}
			scanHotBody(pass, fd, fd.Name.Name)
		}
	}
	return nil
}

// nonEscapingClosureCallees lists pkgPath.Func callees whose closure argument
// provably does not escape (verified against the gc escape analysis): the
// closure stays on the stack, so passing one is allocation-free.
var nonEscapingClosureCallees = map[string]map[string]bool{
	"sort": {"Search": true},
}

// scanHotBody runs the per-construct allocation checks over fd's body,
// labelling diagnostics with `where` — the bare function name when the
// function itself carries //chol:hotpath (hotpathalloc), or a
// name-plus-provenance label when it is merely reachable from one (hotcall).
func scanHotBody(pass *Pass, fd *ast.FuncDecl, where string) {
	prealloc := preallocatedSlices(pass, fd)
	stackClosures := nonEscapingClosureArgs(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if stackClosures[n] {
				return true // stack-allocated; still check its body
			}
			pass.Reportf(n.Pos(), "function literal in hot path %s: closures capture and typically allocate per call", where)
			return false // inner allocations are subsumed by the closure report
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				pass.Reportf(n.Pos(), "&%s{...} in hot path %s allocates per call", typeLabel(pass, cl), where)
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s allocates per call; hoist to a reused buffer", where)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s allocates per call; hoist to a reused map", where)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates per call", where)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, prealloc, where)
		}
		return true
	})
}

// nonEscapingClosureArgs collects function literals passed directly to a
// callee in nonEscapingClosureCallees.
func nonEscapingClosureArgs(pass *Pass, fd *ast.FuncDecl) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !nonEscapingClosureCallees[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				out[fl] = true
			}
		}
		return true
	})
	return out
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool, where string) {
	info := pass.TypesInfo

	// Conversions.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if types.IsInterface(dst.Underlying()) && src != nil && !types.IsInterface(src.Underlying()) {
			pass.Reportf(call.Pos(), "conversion to interface %s in hot path %s boxes its operand (allocates)", dst, where)
		} else if isStringByteConv(dst, src) {
			pass.Reportf(call.Pos(), "%s conversion in hot path %s copies and allocates per call", dst, where)
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path %s allocates per call; hoist to setup or reuse a buffer", where)
			case "new":
				pass.Reportf(call.Pos(), "new in hot path %s allocates per call", where)
			case "append":
				checkHotAppend(pass, fd, call, prealloc, where)
			}
			return
		}
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (interface boxing + formatting) per call", fn.Name(), where)
		return
	}

	// Interface boxing at ordinary call sites.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if isPointerShaped(at) {
			continue // stored directly in the interface word: no allocation
		}
		pass.Reportf(arg.Pos(), "argument %s boxed into interface parameter in hot path %s (may allocate per call)",
			render(pass.Fset, arg), where)
	}
}

// checkHotAppend flags append whose destination cannot be shown to reuse
// capacity. Destinations rooted at a selector (struct field, e.g.
// st.rec.Transfers) or an index of one follow the amortized-reuse idiom and
// pass; bare locals pass only when declared with explicit capacity.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool, where string) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	for {
		if idx, ok := dst.(*ast.IndexExpr); ok {
			dst = ast.Unparen(idx.X)
			continue
		}
		break
	}
	switch dst := dst.(type) {
	case *ast.SelectorExpr:
		return // field: capacity amortizes across calls
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil || prealloc[obj] || isParamOrGlobal(pass, fd, obj) {
			return
		}
		pass.Reportf(call.Pos(),
			"append to %s in hot path %s may reallocate per call: preallocate with make(_, _, cap) or reslice a reused buffer to [:0]",
			dst.Name, where)
	}
}

// preallocatedSlices collects local variables initialized with an explicit
// capacity (3-arg make) or by reslicing an existing buffer ([:0]).
func preallocatedSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(asg.Rhs[i]).(type) {
			case *ast.CallExpr:
				if f, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[f].(*types.Builtin); ok && b.Name() == "make" && len(rhs.Args) == 3 {
						out[obj] = true
					}
				}
			case *ast.SliceExpr:
				out[obj] = true // x[:0] reuse idiom
			}
		}
		return true
	})
	return out
}

func isParamOrGlobal(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	if obj.Parent() == pass.Pkg.Scope() {
		return true
	}
	for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pass.TypesInfo.Defs[name] == obj {
					return true
				}
			}
		}
	}
	return false
}

func typeLabel(pass *Pass, cl *ast.CompositeLit) string {
	if cl.Type != nil {
		return render(pass.Fset, cl.Type)
	}
	return "composite"
}

// isPointerShaped reports whether values of t fit the interface data word
// without an allocation: pointers, channels, maps, funcs, unsafe.Pointer.
// (The runtime stores exactly the pointer-shaped kinds inline; everything
// else — including word-sized integers — heap-allocates on conversion,
// small-int interning aside.)
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports string([]byte), string([]rune), []byte(string),
// []rune(string) — all copying conversions.
func isStringByteConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
