package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/simulator"
)

// Factorize a real SPD matrix in parallel and verify the result.
func ExampleFactorize() {
	a := matrix.RandSPD(128, 1)
	_, residual, err := core.Factorize(a, 32, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("residual below 1e-12: %v\n", residual < 1e-12)
	// Output:
	// residual below 1e-12: true
}

// Solve a full linear system A·x = b with the parallel pipeline.
func ExampleSolveSPD() {
	a := matrix.Laplacian2D(8) // 64×64 PDE matrix
	b := make([]float64, 64)
	for i := range b {
		b[i] = 1
	}
	_, residual, err := core.SolveSPD(a, b, 16, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("solve residual below 1e-10: %v\n", residual < 1e-10)
	// Output:
	// solve residual below 1e-10: true
}

// Simulate the tiled Cholesky on the paper's machine model and compare the
// achieved performance against the mixed bound.
func ExampleSimulate() {
	p, _ := core.NewPlatform("mirage-nocomm")
	s, _ := core.NewScheduler("dmdas")
	rep, err := core.Simulate(context.Background(), 8, p, s, simulator.Options{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("dmdas on 8x8 tiles: %.0f GFLOP/s, %.0f%% of the mixed bound\n",
		rep.GFlops, 100*rep.Efficiency)
	// Output:
	// dmdas on 8x8 tiles: 415 GFLOP/s, 84% of the mixed bound
}

// Compare scheduling policies by name.
func ExampleNewScheduler() {
	for _, name := range []string{"random", "dmda", "dmdas", "trsm-cpu:7"} {
		s, err := core.NewScheduler(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(s.Name())
	}
	// Output:
	// random
	// dmda
	// dmdas
	// dmdas+trsm-cpu(k=7)
}
