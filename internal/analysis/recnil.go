package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Recnil enforces the observability subsystem's off-switch contract: a nil
// *obs.Recorder disables recording and a nil *obs.Probe disables live
// progress frames, so every field append and non-nil-safe method call on
// either must sit behind the nil fast-path check. The simulator relies on
// this both for correctness (a nil recorder would panic at the first
// recorded event; Probe.Due dereferences the probe) and for performance —
// the guard is what keeps candidate structs and frames from even being
// built when tracing is off, which is how the PR2 allocs/op numbers survive
// with instrumentation compiled in.
//
// Recognized guards, checked syntactically against the receiver expression
// (e.g. "st.rec", "st.probe"):
//
//   - an enclosing `if st.rec != nil { ... }` (possibly &&-conjoined);
//   - a use as a later conjunct of the same condition, the probe hot-path
//     idiom `st.probe != nil && st.probe.Due(done)`;
//   - an earlier `if rec == nil { return }` in an enclosing block;
//   - a local assignment from obs.NewRecorder() / obs.NewProbe() /
//     &obs.Recorder{} / &obs.Probe{} in the same function (provably
//     non-nil).
//
// Methods documented nil-safe (they begin with their own nil fast-path:
// Recorder.Events, EventCounts, EventCountsSorted, MeanDecisionDepth;
// Probe.Enabled, Interval, Frames) are exempt, as are the obs types' own
// method bodies. A site where non-nilness is known non-locally can
// annotate //chollint:unguarded.
var Recnil = &Analyzer{
	Name:     "recnil",
	Doc:      "requires the nil fast-path check around *obs.Recorder and *obs.Probe uses",
	Suppress: "unguarded",
	Run:      runRecnil,
}

// nilSafeObsMethods begin with their own `if r == nil` fast path, per obs
// type.
var nilSafeObsMethods = map[string]map[string]bool{
	"Recorder": {
		"Events":            true,
		"EventCounts":       true,
		"EventCountsSorted": true,
		"MeanDecisionDepth": true,
	},
	"Probe": {
		"Enabled":  true,
		"Interval": true,
		"Frames":   true,
	},
}

// obsConstructors are the provably non-nil constructors, per obs type.
var obsConstructors = map[string]string{
	"NewRecorder": "Recorder",
	"NewProbe":    "Probe",
}

func runRecnil(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && obsTypeName(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)) != "" {
				continue // the obs types' own methods define the contract
			}
			checkObsUses(pass, fd)
		}
	}
	return nil
}

func checkObsUses(pass *Pass, fd *ast.FuncDecl) {
	nonNil := locallyConstructedObs(pass, fd.Body)
	var stack []ast.Node
	stack = append(stack, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			checkObsSelector(pass, fd, sel, stack, nonNil)
		}
		stack = append(stack, n)
		return true
	})
}

func checkObsSelector(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, stack []ast.Node, nonNil map[string]bool) {
	typ := obsPtrTypeName(pass.TypesInfo.TypeOf(sel.X))
	if typ == "" {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return // qualified identifier (obs.NewRecorder), not a selection
	}
	kind := "field"
	switch selection.Kind() {
	case types.MethodVal, types.MethodExpr:
		if nilSafeObsMethods[typ][sel.Sel.Name] {
			return
		}
		kind = "method"
	}
	recv := render(pass.Fset, sel.X)
	if nonNil[recv] || guardedNonNil(pass, recv, sel, stack) {
		return
	}
	pass.Reportf(sel.Pos(),
		"%s %s.%s used without the %s nil fast-path: wrap in `if %s != nil { ... }` (a nil *obs.%s is the documented off switch)",
		kind, recv, sel.Sel.Name, strings.ToLower(typ), recv, typ)
}

// guardedNonNil reports whether the use site is dominated by a syntactic
// nil check of recv: an enclosing `if recv != nil` then-branch, a position
// as a right-hand conjunct of `recv != nil && ...` (the probe hot-path
// idiom `p != nil && p.Due(done)`), or an earlier terminating
// `if recv == nil { return }` in an enclosing block.
func guardedNonNil(pass *Pass, recv string, use ast.Node, stack []ast.Node) bool {
	child := use
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// Inside the then-branch of `if recv != nil && ...`.
			if child == ast.Node(n.Body) && condAsserts(pass, n.Cond, recv, token.NEQ) {
				return true
			}
		case *ast.BinaryExpr:
			// The right conjunct of `recv != nil && <use>` only evaluates
			// when the left asserted non-nilness (short-circuit &&).
			if n.Op == token.LAND && child == ast.Node(n.Y) && condAsserts(pass, n.X, recv, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			for _, s := range n.List {
				if s == child {
					break
				}
				ifs, ok := s.(*ast.IfStmt)
				if ok && condAsserts(pass, ifs.Cond, recv, token.EQL) && terminates(ifs.Body) {
					return true
				}
			}
		}
		child = stack[i]
	}
	return false
}

// condAsserts reports whether cond contains `recv <op> nil` as the whole
// condition or as a conjunct (op NEQ, under &&) / disjunct (op EQL, under
// ||) — the forms under which the comparison is guaranteed to have held on
// the relevant branch.
func condAsserts(pass *Pass, cond ast.Expr, recv string, op token.Token) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if (op == token.NEQ && be.Op == token.LAND) || (op == token.EQL && be.Op == token.LOR) {
		return condAsserts(pass, be.X, recv, op) || condAsserts(pass, be.Y, recv, op)
	}
	if be.Op != op {
		return false
	}
	x, y := render(pass.Fset, be.X), render(pass.Fset, be.Y)
	return (x == recv && y == "nil") || (y == recv && x == "nil")
}

// terminates reports whether a block's final statement leaves the enclosing
// scope (return, continue, break, goto, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// locallyConstructedObs collects receiver renderings assigned from a
// provably non-nil constructor in this function body.
func locallyConstructedObs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			if nonNilObsExpr(pass, asg.Rhs[i]) {
				out[render(pass.Fset, asg.Lhs[i])] = true
			}
		}
		return true
	})
	return out
}

func nonNilObsExpr(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, e)
		return fn != nil && obsConstructors[fn.Name()] != "" && fn.Pkg() != nil && fn.Pkg().Name() == "obs"
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		cl, ok := e.X.(*ast.CompositeLit)
		return ok && obsTypeName(pass.TypesInfo.TypeOf(cl)) != ""
	}
	return false
}

func obsPtrTypeName(t types.Type) string {
	p, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	return obsTypeName(p.Elem())
}

// obsTypeName returns "Recorder" or "Probe" when t is (a pointer to) one of
// the obs nil-fast-path types, matched by package name so the analyzer's
// testdata fixtures can declare their own obs package. "" otherwise.
func obsTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return ""
	}
	switch obj.Name() {
	case "Recorder", "Probe":
		return obj.Name()
	}
	return ""
}
