// Package platform models heterogeneous execution platforms: classes of
// processing elements (CPU cores, GPUs, ...) with per-kernel execution
// times, PCI transfer links, and the calibration data the paper's StarPU
// setup measures on the Mirage machine.
//
// Everything downstream (bounds, schedulers, simulator) consumes only this
// timing model {T_rt}, the resource counts {M_r}, and the bus model — the
// same inputs as the paper's linear programs and SimGrid simulations.
package platform

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Class is a homogeneous group of processing elements ("resource type" r in
// the paper): Count identical workers, each executing a kernel of kind t in
// Times[t] seconds.
type Class struct {
	Name  string
	Count int
	Times map[graph.Kind]float64 // seconds per kernel execution at RefNB
	// TimesByNB holds calibrated per-kernel times at tile sizes other than
	// the reference (schema v2 platform files). The cost model consults an
	// exact-size table before falling back to the model's size scaling; nil
	// for platforms calibrated at a single tile size.
	TimesByNB map[int]map[graph.Kind]float64
	// MemoryBytes caps the device memory of each worker of an accelerator
	// class (0 = unlimited). The host (class 0) is always unlimited. The
	// simulator evicts least-recently-used tiles, with a write-back transfer
	// when the evicted copy is the only valid one — StarPU's memory manager.
	MemoryBytes float64
}

// CanRun reports whether this class has an implementation for kind k.
func (c *Class) CanRun(k graph.Kind) bool {
	t, ok := c.Times[k]
	return ok && !math.IsInf(t, 1)
}

// Bus models the host↔accelerator PCI interconnect as a latency + bandwidth
// fluid link, one full-duplex link per accelerator (SimGrid-style). When
// Enabled is false, transfers are free — the mode the paper uses when
// comparing schedulers against the (communication-oblivious) bounds.
type Bus struct {
	Enabled      bool
	BandwidthBps float64 // bytes per second per link
	LatencySec   float64
}

// TransferTime returns the time to move `bytes` across one link.
func (b Bus) TransferTime(bytes float64) float64 {
	if !b.Enabled {
		return 0
	}
	return b.LatencySec + bytes/b.BandwidthBps
}

// Overhead models per-task runtime costs of an actual (non-simulated)
// execution: a fixed scheduling overhead per task plus a deterministic
// pseudo-random multiplicative jitter on kernel times, reproducing the
// run-to-run variability of the paper's "actual execution" plots.
type Overhead struct {
	PerTaskSec   float64
	JitterFrac   float64 // e.g. 0.03 ⇒ kernel times vary ±3 %
	JitterActive bool
}

// Platform is a full machine model.
type Platform struct {
	Name      string
	Classes   []Class
	Bus       Bus
	TileBytes float64 // bytes per tile moved over the bus, at the reference size
	Overhead  Overhead
	// RefNB is the tile size (elements per side) the Times tables were
	// calibrated at; 0 means the package default, TileNB.
	RefNB int
	// Model selects the cost model generalizing the tables to other tile
	// sizes: ModelTable (the zero value) prices only calibrated sizes,
	// ModelScaled extrapolates by flop ratio and efficiency. See CostModel.
	Model string
}

// DefaultNB returns the reference tile size the timing tables refer to.
func (p *Platform) DefaultNB() int {
	if p.RefNB > 0 {
		return p.RefNB
	}
	return TileNB
}

// Validate checks the model is usable for a set of kernel kinds: positive
// worker counts and every kind runnable somewhere.
func (p *Platform) Validate(kinds []graph.Kind) error {
	total := 0
	for _, c := range p.Classes {
		if c.Count < 0 {
			return fmt.Errorf("platform: class %q has negative count", c.Name)
		}
		total += c.Count
		for k, t := range c.Times {
			if t <= 0 {
				return fmt.Errorf("platform: class %q kernel %v has non-positive time %g", c.Name, k, t)
			}
		}
		for nb, times := range c.TimesByNB {
			if nb <= 0 {
				return fmt.Errorf("platform: class %q has timing table for non-positive nb %d", c.Name, nb)
			}
			for k, t := range times {
				if t <= 0 {
					return fmt.Errorf("platform: class %q kernel %v@%d has non-positive time %g", c.Name, k, nb, t)
				}
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("platform: no workers")
	}
	for _, k := range kinds {
		if k.IsConversion() {
			// SPLIT/MERGE are priced by the cost model's repacking rate, not
			// the calibrated tables; they are always runnable on the host.
			continue
		}
		ok := false
		for i := range p.Classes {
			if p.Classes[i].Count > 0 && p.Classes[i].CanRun(k) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("platform: kernel %v runnable nowhere", k)
		}
	}
	return nil
}

// Time returns T_rt: execution time of kind on class r, +Inf if unsupported.
func (p *Platform) Time(class int, kind graph.Kind) float64 {
	t, ok := p.Classes[class].Times[kind]
	if !ok {
		return math.Inf(1)
	}
	return t
}

// FastestTime returns min_r T_rt over classes with workers — the optimistic
// per-task weight used for the critical-path bound and the dmdas priorities.
func (p *Platform) FastestTime(kind graph.Kind) float64 {
	best := math.Inf(1)
	for i := range p.Classes {
		if p.Classes[i].Count == 0 {
			continue
		}
		if t := p.Time(i, kind); t < best {
			best = t
		}
	}
	return best
}

// AverageTime returns the worker-count-weighted mean execution time of kind
// over the platform — HEFT's task weight convention.
func (p *Platform) AverageTime(kind graph.Kind) float64 {
	sum, n := 0.0, 0
	for i := range p.Classes {
		c := &p.Classes[i]
		if c.Count == 0 || !c.CanRun(kind) {
			continue
		}
		sum += float64(c.Count) * p.Time(i, kind)
		n += c.Count
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// Workers returns the total number of processing elements.
func (p *Platform) Workers() int {
	n := 0
	for i := range p.Classes {
		n += p.Classes[i].Count
	}
	return n
}

// WorkerClass maps a global worker ID (0-based, classes concatenated in
// order) to its class index.
func (p *Platform) WorkerClass(w int) int {
	for i := range p.Classes {
		if w < p.Classes[i].Count {
			return i
		}
		w -= p.Classes[i].Count
	}
	panic(fmt.Sprintf("platform: worker %d out of range", w)) //chollint:hotcall abort path
}

// ClassWorkers returns the global worker IDs of class r.
func (p *Platform) ClassWorkers(r int) []int {
	start := 0
	for i := 0; i < r; i++ {
		start += p.Classes[i].Count
	}
	ids := make([]int, p.Classes[r].Count)
	for i := range ids {
		ids[i] = start + i
	}
	return ids
}

// MemoryNode returns the memory node holding a worker's data: all workers of
// class 0 (the host CPUs) share node 0; every worker of an accelerator class
// has a private node. Node IDs are dense, 0-based.
func (p *Platform) MemoryNode(w int) int {
	c := p.WorkerClass(w)
	if c == 0 {
		return 0
	}
	// Node of accelerator worker = 1 + its index among non-class-0 workers.
	node := 1
	for i := 1; i < c; i++ {
		node += p.Classes[i].Count
	}
	offset := w
	for i := 0; i < c; i++ {
		offset -= p.Classes[i].Count
	}
	return node + offset
}

// NodeClass returns the class owning a memory node (node 0 is the host,
// class 0; accelerator nodes follow class by class).
func (p *Platform) NodeClass(node int) int {
	if node == 0 {
		return 0
	}
	n := node - 1
	for c := 1; c < len(p.Classes); c++ {
		if n < p.Classes[c].Count {
			return c
		}
		n -= p.Classes[c].Count
	}
	panic(fmt.Sprintf("platform: memory node %d out of range", node))
}

// NodeCapacityTiles returns how many tiles fit in a memory node
// (0 = unlimited; the host is always unlimited).
func (p *Platform) NodeCapacityTiles(node int) int {
	if node == 0 || p.TileBytes <= 0 {
		return 0
	}
	mb := p.Classes[p.NodeClass(node)].MemoryBytes
	if mb <= 0 {
		return 0
	}
	return int(mb / p.TileBytes)
}

// MemoryNodes returns the total number of memory nodes.
func (p *Platform) MemoryNodes() int {
	n := 1
	for i := 1; i < len(p.Classes); i++ {
		n += p.Classes[i].Count
	}
	return n
}

// SpeedupTable returns, for each kernel kind in kinds, the acceleration
// factor of class `fast` relative to class `slow` (Table I of the paper:
// GPU vs CPU on Mirage ⇒ ≈2×, 11×, 26×, 29×).
func (p *Platform) SpeedupTable(slow, fast int, kinds []graph.Kind) map[graph.Kind]float64 {
	out := map[graph.Kind]float64{}
	for _, k := range kinds {
		out[k] = p.Time(slow, k) / p.Time(fast, k)
	}
	return out
}

// AccelerationFactor computes the task-count-weighted mean GPU speedup K for
// a DAG, the quantity defining the paper's "heterogeneous related" platform:
//
//	K = (Σ_t N_t · a_t) / (Σ_t N_t)
//
// With the Mirage model and Cholesky DAGs this reproduces the paper's values
// 17.30, 22.30, 24.30, 25.38, 26.06, 26.52, 26.86, 27.11 for p = 4..32.
func (p *Platform) AccelerationFactor(d *graph.DAG, slow, fast int) float64 {
	num, den := 0.0, 0.0
	for kind, n := range d.CountByKind() {
		num += float64(n) * p.Time(slow, kind) / p.Time(fast, kind)
		den += float64(n)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// GemmPeakGFlops returns the paper's "GEMM peak": the aggregate GFLOP/s of
// the whole platform running nothing but GEMM kernels, given the per-tile
// GEMM flop count.
func (p *Platform) GemmPeakGFlops(gemmFlops float64) float64 {
	s := 0.0
	for i := range p.Classes {
		c := &p.Classes[i]
		if !c.CanRun(graph.GEMM) {
			continue
		}
		s += float64(c.Count) * gemmFlops / p.Time(i, graph.GEMM)
	}
	return s / 1e9
}

// Clone returns a deep copy of the platform.
func (p *Platform) Clone() *Platform {
	q := *p
	q.Classes = make([]Class, len(p.Classes))
	for i, c := range p.Classes {
		nc := c
		nc.Times = make(map[graph.Kind]float64, len(c.Times))
		for k, v := range c.Times {
			nc.Times[k] = v
		}
		if c.TimesByNB != nil {
			nc.TimesByNB = make(map[int]map[graph.Kind]float64, len(c.TimesByNB))
			for nb, times := range c.TimesByNB {
				tm := make(map[graph.Kind]float64, len(times))
				for k, v := range times {
					tm[k] = v
				}
				nc.TimesByNB[nb] = tm
			}
		}
		q.Classes[i] = nc
	}
	return &q
}
