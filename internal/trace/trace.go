// Package trace turns execution records (simulated or real) into Gantt
// charts and idle-time analyses — the tooling behind the paper's Figure 12
// (GPU traces for dmda vs dmdas on 8×8 tiles) and the trace inspection used
// throughout Section V to explain scheduler behaviour.
//
// Renderers are ASCII (terminal) and SVG (files); both are deterministic.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/simulator"
)

// Span is one executed task instance on a worker.
type Span struct {
	Worker int
	Start  float64
	End    float64
	Kind   graph.Kind
	Name   string
}

// Gantt is a complete execution trace.
type Gantt struct {
	Workers  int
	Makespan float64
	Spans    []Span
	Labels   []string // per worker, e.g. "cpu0", "gpu2"
}

// FromSimulation builds a Gantt from a simulator result.
func FromSimulation(d *graph.DAG, workers int, labels []string, r *simulator.Result) *Gantt {
	g := &Gantt{Workers: workers, Makespan: r.MakespanSec, Labels: labels}
	for _, t := range d.Tasks {
		g.Spans = append(g.Spans, Span{
			Worker: r.Worker[t.ID],
			Start:  r.Start[t.ID],
			End:    r.End[t.ID],
			Kind:   t.Kind,
			Name:   t.Name(),
		})
	}
	sort.Slice(g.Spans, func(i, j int) bool {
		if g.Spans[i].Worker != g.Spans[j].Worker {
			return g.Spans[i].Worker < g.Spans[j].Worker
		}
		return g.Spans[i].Start < g.Spans[j].Start
	})
	return g
}

// WorkerSpans returns the spans of one worker in start order.
func (g *Gantt) WorkerSpans(w int) []Span {
	var out []Span
	for _, s := range g.Spans {
		if s.Worker == w {
			out = append(out, s)
		}
	}
	return out
}

// IdleStats summarizes idle time for a set of workers.
type IdleStats struct {
	BusySec  float64
	IdleSec  float64
	IdleFrac float64
	Gaps     int // number of idle gaps strictly inside the span of work
}

// Idle computes idle statistics for worker w over [0, Makespan].
func (g *Gantt) Idle(w int) IdleStats {
	spans := g.WorkerSpans(w)
	busy := 0.0
	gaps := 0
	last := 0.0
	for _, s := range spans {
		busy += s.End - s.Start
		if s.Start > last+1e-12 {
			gaps++
		}
		if s.End > last {
			last = s.End
		}
	}
	idle := g.Makespan - busy
	frac := 0.0
	if g.Makespan > 0 {
		frac = idle / g.Makespan
	}
	return IdleStats{BusySec: busy, IdleSec: idle, IdleFrac: frac, Gaps: gaps}
}

// GroupIdleFrac returns the mean idle fraction over the given workers — the
// paper's "idle time on the critical resource (GPUs)" metric.
func (g *Gantt) GroupIdleFrac(workers []int) float64 {
	if len(workers) == 0 {
		return 0
	}
	sum := 0.0
	for _, w := range workers {
		sum += g.Idle(w).IdleFrac
	}
	return sum / float64(len(workers))
}

// kindGlyph maps kernel kinds to the single characters of the ASCII render.
func kindGlyph(k graph.Kind) byte {
	switch k {
	case graph.POTRF, graph.GETRF, graph.GEQRT:
		return 'P'
	case graph.TRSM, graph.ORMQR, graph.TSQRT:
		return 'T'
	case graph.SYRK:
		return 'S'
	case graph.GEMM, graph.TSMQR:
		return 'G'
	default:
		return '?'
	}
}

// ASCII renders the trace as one row per worker, `width` characters across
// the makespan; '.' is idle. Only the workers listed are drawn (nil = all).
func (g *Gantt) ASCII(width int, workers []int) string {
	if width <= 0 {
		width = 80
	}
	if workers == nil {
		workers = make([]int, g.Workers)
		for i := range workers {
			workers[i] = i
		}
	}
	var b strings.Builder
	scale := float64(width) / math.Max(g.Makespan, 1e-12)
	for _, w := range workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range g.WorkerSpans(w) {
			from := int(s.Start * scale)
			to := int(math.Ceil(s.End * scale))
			if to > width {
				to = width
			}
			if from >= to && from < width {
				to = from + 1
			}
			for i := from; i < to && i < width; i++ {
				row[i] = kindGlyph(s.Kind)
			}
		}
		label := fmt.Sprintf("w%d", w)
		if w < len(g.Labels) {
			label = g.Labels[w]
		}
		fmt.Fprintf(&b, "%-6s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%-6s  makespan %.4fs  (P=POTRF-like T=TRSM-like S=SYRK G=GEMM-like .=idle)\n",
		"", g.Makespan)
	return b.String()
}

// kindColor gives each kernel kind a stable SVG fill.
func kindColor(k graph.Kind) string {
	switch k {
	case graph.POTRF, graph.GETRF, graph.GEQRT:
		return "#d62728" // red: the critical diagonal kernel
	case graph.TRSM, graph.ORMQR, graph.TSQRT:
		return "#1f77b4" // blue
	case graph.SYRK:
		return "#2ca02c" // green
	case graph.GEMM, graph.TSMQR:
		return "#ff7f0e" // orange
	default:
		return "#7f7f7f"
	}
}

// SVG renders the trace as an SVG document (one lane per worker).
func (g *Gantt) SVG(width, laneHeight int) string {
	if width <= 0 {
		width = 1000
	}
	if laneHeight <= 0 {
		laneHeight = 24
	}
	const margin = 60
	h := g.Workers*laneHeight + 2*margin/3
	scale := float64(width-margin) / math.Max(g.Makespan, 1e-12)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n",
		width+margin/2, h)
	for w := 0; w < g.Workers; w++ {
		y := w * laneHeight
		label := fmt.Sprintf("w%d", w)
		if w < len(g.Labels) {
			label = g.Labels[w]
		}
		fmt.Fprintf(&b, `<text x="2" y="%d" font-size="11" font-family="monospace">%s</text>`+"\n",
			y+laneHeight*2/3, label)
		for _, s := range g.WorkerSpans(w) {
			x := margin + int(s.Start*scale)
			wd := int((s.End - s.Start) * scale)
			if wd < 1 {
				wd = 1
			}
			fmt.Fprintf(&b,
				`<rect x="%d" y="%d" width="%d" height="%d" fill="%s"><title>%s [%.4f, %.4f]</title></rect>`+"\n",
				x, y+2, wd, laneHeight-4, kindColor(s.Kind), s.Name, s.Start, s.End)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// FromRuntime builds a Gantt from a real-execution record (internal/runtime):
// spans carry wall-clock-relative times measured on goroutine workers.
func FromRuntime(d *graph.DAG, workers int, r *runtime.Result) *Gantt {
	g := &Gantt{Workers: workers, Makespan: r.Seconds}
	for _, t := range d.Tasks {
		g.Spans = append(g.Spans, Span{
			Worker: r.Worker[t.ID],
			Start:  r.Start[t.ID],
			End:    r.End[t.ID],
			Kind:   t.Kind,
			Name:   t.Name(),
		})
	}
	sort.Slice(g.Spans, func(i, j int) bool {
		if g.Spans[i].Worker != g.Spans[j].Worker {
			return g.Spans[i].Worker < g.Spans[j].Worker
		}
		return g.Spans[i].Start < g.Spans[j].Start
	})
	return g
}
