package graph

import "math/rand"

// RandomLayered generates a random layered DAG for property tests and
// fuzzing: `layers` levels of up to `width` tasks, each task depending on a
// random non-empty subset of the previous layer (edge probability edgeP).
// Kinds are drawn from the Cholesky kernel set so standard platform models
// can execute the graph. Each task writes its own tile and reads its
// predecessors' tiles, giving the simulator a realistic transfer footprint.
func RandomLayered(layers, width int, edgeP float64, seed int64) *DAG {
	rng := rand.New(rand.NewSource(seed))
	d := &DAG{Algorithm: "random", P: layers}
	var prev []*Task
	for l := 0; l < layers; l++ {
		n := 1 + rng.Intn(width)
		cur := make([]*Task, 0, n)
		for i := 0; i < n; i++ {
			kind := CholeskyKinds[rng.Intn(len(CholeskyKinds))]
			t := &Task{
				ID:   len(d.Tasks),
				Kind: kind,
				I:    l,
				J:    i,
				K:    l,
				Footprint: []TileRef{
					{I: l, J: i, Mode: ReadWrite},
				},
			}
			if len(prev) > 0 {
				picked := false
				for _, pt := range prev {
					if rng.Float64() < edgeP {
						t.Pred = append(t.Pred, pt.ID)
						pt.Succ = append(pt.Succ, t.ID)
						t.Footprint = append(t.Footprint,
							TileRef{I: pt.I, J: pt.J, Mode: Read})
						picked = true
					}
				}
				if !picked { // keep the graph connected layer to layer
					pt := prev[rng.Intn(len(prev))]
					t.Pred = append(t.Pred, pt.ID)
					pt.Succ = append(pt.Succ, t.ID)
					t.Footprint = append(t.Footprint,
						TileRef{I: pt.I, J: pt.J, Mode: Read})
				}
			}
			d.Tasks = append(d.Tasks, t)
			cur = append(cur, t)
		}
		prev = cur
	}
	return d
}
