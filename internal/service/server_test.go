package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestBoundsCachedRepeat is the headline acceptance check: the second
// identical /v1/bounds request is served from the cache, observable through
// the X-Cache header and the /metrics hit counter.
func TestBoundsCachedRepeat(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := BoundsRequest{Platform: "mirage", Tiles: 8}

	resp1 := postJSON(t, ts.URL+"/v1/bounds", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp1.StatusCode)
	}
	if h := resp1.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", h)
	}
	b1 := decodeBody[BoundsResponse](t, resp1)
	if len(b1.Bounds) != 4 || b1.Bounds["mixed"].GFlops <= 0 {
		t.Fatalf("bad bounds payload: %+v", b1)
	}

	resp2 := postJSON(t, ts.URL+"/v1/bounds", req)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("repeat request X-Cache = %q, want hit", h)
	}
	b2 := decodeBody[BoundsResponse](t, resp2)
	if b1.BestMakespan != b2.BestMakespan {
		t.Fatalf("cached result differs: %v vs %v", b1.BestMakespan, b2.BestMakespan)
	}

	if hits := s.Metrics().CounterValue("cholserved_cache_hits_total", Labels{"endpoint": "/v1/bounds"}); hits != 1 {
		t.Fatalf("cache hit counter = %v, want 1", hits)
	}

	// The hit must also be visible on the /metrics scrape itself.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()
	if !strings.Contains(text, `cholserved_cache_hits_total{endpoint="/v1/bounds"} 1`) {
		t.Fatalf("/metrics missing hit counter:\n%s", text)
	}
	if !strings.Contains(text, "cholserved_request_seconds_bucket") {
		t.Fatal("/metrics missing latency histogram")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 8, Seed: 42}

	resp := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r1 := decodeBody[SimulateResponse](t, resp)
	if r1.GFlops <= 0 || r1.Efficiency <= 0 || r1.Efficiency > 1.001 {
		t.Fatalf("implausible report: %+v", r1)
	}

	resp2 := postJSON(t, ts.URL+"/v1/simulate", req)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", h)
	}
	r2 := decodeBody[SimulateResponse](t, resp2)
	if r1.MakespanSec != r2.MakespanSec {
		t.Fatal("cached simulate differs from original")
	}

	// A different seed is a different key.
	req.Seed = 7
	resp3 := postJSON(t, ts.URL+"/v1/simulate", req)
	if h := resp3.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("changed-seed X-Cache = %q, want miss", h)
	}
	resp3.Body.Close()
}

func TestSimulateBadInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []SimulateRequest{
		{Platform: "no-such", Scheduler: "dmdas", Tiles: 4},
		{Platform: "mirage", Scheduler: "no-such", Tiles: 4},
		{Platform: "mirage", Scheduler: "dmdas", Tiles: 0},
		{Platform: "mirage", Scheduler: "dmdas", Tiles: 4, Algorithm: "no-such"},
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/simulate", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
		body := decodeBody[map[string]string](t, resp)
		if body["error"] == "" {
			t.Errorf("case %d: no error body", i)
		}
	}
	// Unknown platform errors must enumerate the registry (satellite #3).
	resp := postJSON(t, ts.URL+"/v1/simulate", cases[0])
	body := decodeBody[map[string]string](t, resp)
	if !strings.Contains(body["error"], "mirage-nocomm") {
		t.Fatalf("error %q does not list registered platforms", body["error"])
	}
}

// TestSimulateTimeoutNoLeak asserts a request that exceeds the server's
// deadline returns 504 promptly, the worker slot is reclaimed, and no
// simulation goroutines are left behind.
func TestSimulateTimeoutNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{RequestTimeout: time.Millisecond})

	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 64})
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timed-out request took %v to return", elapsed)
	}
	if s.pool.Active() != 0 || s.pool.QueueDepth() != 0 {
		t.Fatalf("worker slot not reclaimed: active=%d queued=%d", s.pool.Active(), s.pool.QueueDepth())
	}

	// Goroutine count settles back to around the baseline (allow slack for
	// the httptest server's own keep-alive machinery).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+10 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Platform:   "mirage",
		Schedulers: []string{"dmda", "dmdas"},
		Tiles:      []int{4, 8},
		Seed:       42,
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	grid := decodeBody[SweepResponse](t, resp)
	if len(grid.Results) != 2 || len(grid.Results[0]) != 2 {
		t.Fatalf("grid shape %dx%d, want 2x2", len(grid.Results), len(grid.Results[0]))
	}
	for i, row := range grid.Results {
		for j, cell := range row {
			if cell == nil || cell.GFlops <= 0 {
				t.Fatalf("cell [%d][%d] = %+v", i, j, cell)
			}
			if cell.Tiles != req.Tiles[i] || cell.Scheduler == "" {
				t.Fatalf("cell [%d][%d] mismatched: %+v", i, j, cell)
			}
		}
	}

	// Sweep cells land in the shared simulate cache: the same cell via
	// /v1/simulate is now a hit.
	single := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 8, Seed: 42})
	if h := single.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("sweep cell not shared with /v1/simulate: X-Cache = %q", h)
	}
	single.Body.Close()
	if s.Cache().Len() != 4 {
		t.Fatalf("cache holds %d entries after 2x2 sweep, want 4", s.Cache().Len())
	}
}

// TestSweepBatchedMatchesSerial: batch:true is a throughput knob, not a
// semantics knob — every cell of a batched sweep must equal the serial
// sweep's cell field for field, modulo run_id (each path logs its own
// ledger entry). Two separate servers so neither sweep sees a warm cache.
func TestSweepBatchedMatchesSerial(t *testing.T) {
	req := SweepRequest{
		Platform:   "mirage",
		Schedulers: []string{"dmda", "dmdas", "random"},
		Tiles:      []int{4, 6, 8},
		Seed:       7,
	}
	grids := map[bool]SweepResponse{}
	for _, batch := range []bool{false, true} {
		_, ts := newTestServer(t, Config{})
		r := req
		r.Batch = batch
		resp := postJSON(t, ts.URL+"/v1/sweep", r)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch=%v: status %d", batch, resp.StatusCode)
		}
		grids[batch] = decodeBody[SweepResponse](t, resp)
	}
	serial, batched := grids[false], grids[true]
	if len(serial.Results) != len(req.Tiles) || len(batched.Results) != len(req.Tiles) {
		t.Fatalf("grid shapes: serial %d rows, batched %d", len(serial.Results), len(batched.Results))
	}
	for i := range serial.Results {
		for j := range serial.Results[i] {
			a, b := *serial.Results[i][j], *batched.Results[i][j]
			a.RunID, b.RunID = "", ""
			if a != b {
				t.Errorf("cell [%d][%d]: serial %+v, batched %+v", i, j, a, b)
			}
		}
	}

	// A batched sweep on a warm cache is all hits — and still correct.
	_, ts := newTestServer(t, Config{})
	r := req
	resp := postJSON(t, ts.URL+"/v1/sweep", r)
	resp.Body.Close()
	r.Batch = true
	resp = postJSON(t, ts.URL+"/v1/sweep", r)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm batched sweep: status %d", resp.StatusCode)
	}
	warm := decodeBody[SweepResponse](t, resp)
	for i := range warm.Results {
		for j := range warm.Results[i] {
			a, b := *serial.Results[i][j], *warm.Results[i][j]
			a.RunID, b.RunID = "", ""
			if a != b {
				t.Errorf("warm cell [%d][%d]: want %+v, got %+v", i, j, a, b)
			}
		}
	}

	// An unknown scheduler fails the whole batched request as 400.
	r = SweepRequest{Platform: "mirage", Schedulers: []string{"nope"}, Tiles: []int{4}, Batch: true}
	resp = postJSON(t, ts.URL+"/v1/sweep", r)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scheduler in batched sweep: status %d, want 400", resp.StatusCode)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[[]ExperimentInfo](t, resp)
	if len(list) == 0 {
		t.Fatal("empty experiment catalogue")
	}
	seen := map[string]bool{}
	for _, e := range list {
		seen[e.ID] = true
	}
	if !seen["fig2"] || !seen["fig1"] {
		t.Fatalf("catalogue missing known experiments: %v", list)
	}

	run, err := http.Get(ts.URL + "/v1/experiments/fig1")
	if err != nil {
		t.Fatal(err)
	}
	if run.StatusCode != http.StatusOK {
		t.Fatalf("fig1 status %d", run.StatusCode)
	}
	out := decodeBody[ExperimentResponse](t, run)
	if !strings.Contains(out.Output, "digraph") {
		t.Fatalf("fig1 output does not look like DOT: %.80s", out.Output)
	}

	again, err := http.Get(ts.URL + "/v1/experiments/fig1")
	if err != nil {
		t.Fatal(err)
	}
	if h := again.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("repeat experiment X-Cache = %q, want hit", h)
	}
	again.Body.Close()

	missing, err := http.Get(ts.URL + "/v1/experiments/no-such")
	if err != nil {
		t.Fatal(err)
	}
	if missing.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment status %d, want 400", missing.StatusCode)
	}
	missing.Body.Close()
}

// TestCataloguesMatchRegistry pins the HTTP catalogues to the core registry —
// the service must not grow its own hand-maintained name lists.
func TestCataloguesMatchRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	plats := decodeBody[[]RegistryEntry](t, resp)
	if len(plats) != len(core.Platforms()) {
		t.Fatalf("%d platforms over HTTP, %d registered", len(plats), len(core.Platforms()))
	}
	for i, e := range core.Platforms() {
		if plats[i].Name != e.Display() {
			t.Fatalf("platform %d: %q != %q", i, plats[i].Name, e.Display())
		}
	}
	resp2, err := http.Get(ts.URL + "/v1/schedulers")
	if err != nil {
		t.Fatal(err)
	}
	scheds := decodeBody[[]RegistryEntry](t, resp2)
	if len(scheds) != len(core.Schedulers()) {
		t.Fatalf("%d schedulers over HTTP, %d registered", len(scheds), len(core.Schedulers()))
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestCacheHitLatencyDrop measures the acceptance criterion directly: a hot
// repeat must be at least 10x faster than the cold computation. The cold
// run simulates ~40k tasks (tens of milliseconds); a hit is a map lookup
// plus JSON encoding, so the margin is wide enough to stay stable in CI.
func TestCacheHitLatencyDrop(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 48, Seed: 42}

	coldStart := time.Now()
	resp := postJSON(t, ts.URL+"/v1/simulate", req)
	cold := time.Since(coldStart)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}

	const reps = 10
	hotStart := time.Now()
	for i := 0; i < reps; i++ {
		r := postJSON(t, ts.URL+"/v1/simulate", req)
		if h := r.Header.Get("X-Cache"); h != "hit" {
			t.Fatalf("rep %d X-Cache = %q", i, h)
		}
		r.Body.Close()
	}
	hot := time.Since(hotStart) / reps
	t.Logf("cold=%v hot=%v speedup=%.0fx", cold, hot, float64(cold)/float64(hot))
	if hot*10 > cold {
		t.Fatalf("hot repeat %v is not >=10x faster than cold %v", hot, cold)
	}
}

// BenchmarkSimulateCold/Hot document the cache's latency drop as a benchmark
// (go test -bench=Simulate ./internal/service/).
func BenchmarkSimulateHot(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 32, Seed: 42})
	warm, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func BenchmarkSimulateCold(b *testing.B) {
	s := New(Config{CacheSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed so every request misses.
		body, _ := json.Marshal(SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 32, Seed: int64(i)})
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

func TestQueueFullReturns503(t *testing.T) {
	// One worker, minimal queue: saturate the slot with a slow request, park
	// a second one in the queue, then the third concurrent request must shed
	// with 503 instead of waiting. A short RequestTimeout bounds how long the
	// parked requests keep the test server busy during cleanup.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: 2 * time.Second})
	fire := func(seed int64) {
		body, _ := json.Marshal(SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 128, Seed: seed})
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}
	go fire(0)
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go fire(1)
	for s.pool.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.pool.Active() == 0 || s.pool.QueueDepth() == 0 {
		t.Skip("slow requests finished before the queue filled; cannot exercise shedding")
	}
	resp := postJSON(t, ts.URL+"/v1/simulate",
		SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 128, Seed: 2})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := OptimizeRequest{Platform: "mirage", Tiles: 4, NodeBudget: 3000, Workers: 1}

	resp := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", h)
	}
	r1 := decodeBody[OptimizeResponse](t, resp)
	if r1.MakespanSec <= 0 || r1.GFlops <= 0 || r1.Nodes < 1 {
		t.Fatalf("implausible optimize report: %+v", r1)
	}

	// Workers is excluded from the cache key on purpose: the search result is
	// bit-identical for every worker count, so a workers=8 request must be
	// served from the entry the workers=1 request computed.
	req.Workers = 8
	resp2 := postJSON(t, ts.URL+"/v1/optimize", req)
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("workers=8 X-Cache = %q, want hit (workers must not split the cache)", h)
	}
	r2 := decodeBody[OptimizeResponse](t, resp2)
	if r1.MakespanSec != r2.MakespanSec || r1.Nodes != r2.Nodes || r1.Exhausted != r2.Exhausted {
		t.Fatalf("cached optimize differs: %+v vs %+v", r1, r2)
	}

	// A different node budget is a different key.
	req.NodeBudget = 4000
	resp3 := postJSON(t, ts.URL+"/v1/optimize", req)
	if h := resp3.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("changed-budget X-Cache = %q, want miss", h)
	}
	resp3.Body.Close()
}

func TestOptimizeBadInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []OptimizeRequest{
		{Platform: "no-such", Tiles: 4},
		{Platform: "mirage", Tiles: 0},
		{Platform: "mirage", Tiles: 64},
		{Platform: "mirage", Tiles: 4, NodeBudget: -1},
		{Platform: "mirage", Tiles: 4, Workers: -2},
		{Platform: "mirage", Algorithm: "no-such", Tiles: 4},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/optimize", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", c, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestOptimizeSheds503(t *testing.T) {
	// Same saturation recipe as TestQueueFullReturns503, but the shed request
	// is an optimize: the CP search path must go through the same admission
	// pool as the simulations, not around it.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: 2 * time.Second})
	fire := func(seed int64) {
		body, _ := json.Marshal(SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 128, Seed: seed})
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}
	go fire(0)
	deadline := time.Now().Add(2 * time.Second)
	for s.pool.Active() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	go fire(1)
	for s.pool.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.pool.Active() == 0 || s.pool.QueueDepth() == 0 {
		t.Skip("slow requests finished before the queue filled; cannot exercise shedding")
	}
	resp := postJSON(t, ts.URL+"/v1/optimize",
		OptimizeRequest{Platform: "mirage", Tiles: 8, NodeBudget: 100000, Workers: 4})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestRequestKeyStability(t *testing.T) {
	p1, _ := core.NewPlatform("mirage")
	p2, _ := core.NewPlatform("mirage")
	if platformFingerprint(p1) != platformFingerprint(p2) {
		t.Fatal("same platform, different fingerprints")
	}
	p3, _ := core.NewPlatform("mirage-nocomm")
	if platformFingerprint(p1) == platformFingerprint(p3) {
		t.Fatal("different platforms share a fingerprint")
	}
	if requestKey("a", "x") == requestKey("b", "x") {
		t.Fatal("endpoint not part of the key")
	}
	if !strings.HasPrefix(requestKey("bounds", "x"), "bounds:") {
		t.Fatalf("key %q lacks endpoint prefix", requestKey("bounds", "x"))
	}
}
