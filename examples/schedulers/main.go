// Schedulers: compare every scheduling policy on the paper's machine model
// across matrix sizes — a compact version of Figures 5/7 including the
// extra policies (greedy, dmda-nocomm) and the static hint.
//
// Run with:  go run ./examples/schedulers
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func main() {
	p := platform.WithoutCommunication(platform.Mirage())
	sizes := []int{4, 8, 16, 24, 32}

	policies := []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRandom() },
		func() sched.Scheduler { return sched.NewGreedy() },
		func() sched.Scheduler { return sched.NewDMDA() },
		func() sched.Scheduler { return sched.NewDMDAS() },
		func() sched.Scheduler { return sched.NewTriangleTRSM(7) },
	}

	fmt.Printf("%-22s", "GFLOP/s")
	for _, n := range sizes {
		fmt.Printf(" %8d", n)
	}
	fmt.Println(" (tiles)")

	for _, mk := range policies {
		name := mk().Name()
		fmt.Printf("%-22s", name)
		for _, n := range sizes {
			d := graph.Cholesky(n)
			r, err := simulator.Run(d, p, mk(), simulator.Options{Seed: 42})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.1f", r.GFlops(kernels.CholeskyFlops(n*platform.TileNB)))
		}
		fmt.Println()
	}

	fmt.Printf("%-22s", "mixed bound")
	for _, n := range sizes {
		m, err := bounds.MixedInt(graph.Cholesky(n), p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %8.1f", m.GFlops(kernels.CholeskyFlops(n*platform.TileNB)))
	}
	fmt.Println()
	fmt.Printf("%-22s", "gemm peak")
	for range sizes {
		fmt.Printf(" %8.1f", p.GemmPeakGFlops(kernels.GemmFlops(platform.TileNB)))
	}
	fmt.Println()
}
