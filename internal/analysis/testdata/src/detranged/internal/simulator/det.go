// Package simulator is a detranged fixture: its import path ends in
// internal/simulator, so it sits inside the deterministic core.
package simulator

import "sort"

func orderSensitive(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want `range over map m in deterministic-core package simulator`
		out = append(out, v)
	}
	return out
}

func sortedKeysIdiom(m map[int]float64) []int {
	ks := make([]int, 0, len(m))
	for k := range m { // collect-keys: sorted afterwards, order-insensitive
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func perKeyWrites(src, dst map[int]float64) {
	for k, v := range src { // per-key writes commute
		dst[k] = v * 2
	}
}

func perKeyDelete(src, dst map[int]bool) {
	for k := range src { // deletions commute
		delete(dst, k)
	}
}

func integerAccumulation(m map[string]int) int {
	n := 0
	for _, v := range m { // integer += commutes exactly
		n += v
	}
	return n
}

func counting(m map[string]int) int {
	n := 0
	for range m { // counting commutes
		n++
	}
	return n
}

func floatAccumulation(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `range over map m`
		sum += v // float rounding depends on summation order
	}
	return sum
}

func extremum(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m { // max fold: order-insensitive
		if best < v {
			best = v
		}
	}
	return best
}

func flagSet(m map[int]bool) bool {
	hit := false
	for range m { // constant flag set: idempotent
		hit = true
	}
	return hit
}

func escapedJustified(m map[int]float64) float64 {
	sum := 0.0
	//chollint:ordered summation feeds a digest that tolerates reordering here
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceRangeFine(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs { // slices iterate in order; not a map
		sum += v
	}
	return sum
}
