// Package cpsolve is the reproduction's stand-in for the paper's constraint-
// programming solver (CP Optimizer v12.4, Section III-B): a depth-first
// branch-and-bound search over (ready task × resource class) scheduling
// decisions with critical-path-based pruning and a warm start.
//
// The model matches the paper's CP formulation: each task runs on one
// resource of one class, taking that class's kernel time; at most M_r tasks
// of class r run concurrently; dependencies are respected; data transfers
// are not modelled ("it would otherwise be extremely costly to solve").
//
// Like the paper's solver — which ran for 23 hours without proving
// optimality — this search is budgeted (by node count, for determinism) and
// returns the best *feasible* schedule found plus whether the search space
// (of active schedules) was exhausted.
package cpsolve

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

// Options controls the search.
type Options struct {
	// NodeBudget caps the number of explored search nodes (deterministic
	// analogue of the paper's 23-hour wall-clock budget). Default 200000.
	NodeBudget int
	// Beam is how many of the highest-priority ready tasks are branched on
	// per node. Default 2. Larger = wider search, costlier.
	Beam int
	// WarmStart seeds the incumbent (the paper warm-starts with HEFT).
	// When nil, a HEFT schedule is computed automatically.
	WarmStart *sched.StaticSchedule
	// CommHopSec, when positive, makes the model *partially data-aware* —
	// the extension the paper describes as ongoing work ("we are currently
	// extending the CP formulation to partially take data transfers into
	// account"): every dependency crossing resource classes delays the
	// successor by one PCI-hop time. Zero keeps the paper's published
	// communication-oblivious CP model.
	CommHopSec float64
}

// Result of a search.
type Result struct {
	Schedule  *sched.StaticSchedule
	Makespan  float64
	Nodes     int
	Exhausted bool // search space fully explored within budget
}

type solver struct {
	d      *graph.DAG
	p      *platform.Platform
	opt    Options
	ctx    context.Context
	blFast []float64 // bottom levels under fastest times (pruning + order)

	classes    []int       // usable class indices
	classExec  [][]float64 // per class, exec time per kind (+Inf unsupported)
	workerOf   [][]int     // workers per class
	workerFree []float64
	finish     []float64
	worker     []int
	indeg      []int
	ready      []int

	bestWorker []int
	bestStart  []float64
	bestMk     float64

	nodes     int
	exhausted bool
	cancelled bool
}

// Solve searches for a low-makespan static schedule of d on p.
func Solve(d *graph.DAG, p *platform.Platform, opt Options) (*Result, error) {
	return SolveContext(context.Background(), d, p, opt)
}

// cancelCheckStride is how many explored nodes pass between context polls:
// node expansion is cheap, so checking every node would be measurable, while
// a few hundred nodes expand in well under a millisecond.
const cancelCheckStride = 256

// SolveContext is Solve with cancellation: the branch-and-bound unwinds and
// returns ctx's error (dropping any incumbent) once the context is done.
func SolveContext(ctx context.Context, d *graph.DAG, p *platform.Platform, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cpsolve: search cancelled: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(d.Kinds()); err != nil {
		return nil, err
	}
	if opt.NodeBudget <= 0 {
		opt.NodeBudget = 200000
	}
	if opt.Beam <= 0 {
		opt.Beam = 2
	}
	bl, err := d.BottomLevels(func(t *graph.Task) float64 {
		return p.FastestTime(t.Kind)
	})
	if err != nil {
		return nil, err
	}

	s := &solver{
		d: d, p: p, opt: opt, ctx: ctx, blFast: bl,
		workerFree: make([]float64, p.Workers()),
		finish:     make([]float64, len(d.Tasks)),
		worker:     make([]int, len(d.Tasks)),
		indeg:      make([]int, len(d.Tasks)),
		bestMk:     math.Inf(1),
		exhausted:  true,
	}
	for i := range s.finish {
		s.finish[i] = -1
		s.worker[i] = -1
	}
	for r := range p.Classes {
		if p.Classes[r].Count == 0 {
			continue
		}
		s.classes = append(s.classes, r)
		exec := make([]float64, graph.NumKinds)
		for k := graph.Kind(0); k < graph.NumKinds; k++ {
			exec[k] = p.Time(r, k)
		}
		s.classExec = append(s.classExec, exec)
		s.workerOf = append(s.workerOf, p.ClassWorkers(r))
	}
	for _, t := range d.Tasks {
		s.indeg[t.ID] = len(t.Pred)
		if s.indeg[t.ID] == 0 {
			s.ready = append(s.ready, t.ID)
		}
	}

	// Warm start.
	warm := opt.WarmStart
	if warm == nil {
		warm, err = sched.HEFT(d, p)
		if err != nil {
			return nil, err
		}
	}
	if err := warm.Validate(d, p); err != nil {
		return nil, fmt.Errorf("cpsolve: warm start invalid: %w", err)
	}
	ws, wm, err := replayComm(d, p, warm, opt.CommHopSec)
	if err != nil {
		return nil, err
	}
	s.bestWorker = append([]int{}, warm.Worker...)
	s.bestStart = ws
	s.bestMk = wm

	s.dfs(0)
	if s.cancelled {
		return nil, fmt.Errorf("cpsolve: search cancelled after %d nodes: %w", s.nodes, ctx.Err())
	}

	start := make([]float64, len(d.Tasks))
	copy(start, s.bestStart)
	return &Result{
		Schedule: &sched.StaticSchedule{
			Worker:      append([]int{}, s.bestWorker...),
			Start:       start,
			EstMakespan: s.bestMk,
		},
		Makespan:  s.bestMk,
		Nodes:     s.nodes,
		Exhausted: s.exhausted && s.nodes <= s.opt.NodeBudget,
	}, nil
}

// dfs explores scheduling decisions; maxFinish is the latest committed end.
func (s *solver) dfs(maxFinish float64) {
	s.nodes++
	if s.nodes%cancelCheckStride == 0 && s.ctx.Err() != nil {
		s.cancelled = true
	}
	if s.cancelled || s.nodes > s.opt.NodeBudget {
		s.exhausted = false
		return
	}
	if len(s.ready) == 0 {
		// All tasks scheduled (readiness propagation guarantees progress on
		// DAGs): record incumbent.
		if maxFinish < s.bestMk {
			s.bestMk = maxFinish
			copy(s.bestWorker, s.worker)
			for id, t := range s.d.Tasks {
				cls := s.p.WorkerClass(s.worker[id])
				s.bestStart[id] = s.finish[id] - s.p.Time(cls, t.Kind)
			}
		}
		return
	}

	// Lower bound: each ready task's earliest start + its critical path.
	lb := maxFinish
	for _, id := range s.ready {
		est := s.depsFinish(id)
		if est+s.blFast[id] > lb {
			lb = est + s.blFast[id]
		}
	}
	if lb >= s.bestMk-1e-12 {
		return
	}

	// Candidates: top-Beam ready tasks by (bottom level, then ID).
	cands := append([]int{}, s.ready...)
	sort.Slice(cands, func(a, b int) bool {
		// Tie-break on the exact stored bottom levels, then task ID.
		if s.blFast[cands[a]] != s.blFast[cands[b]] { //chollint:floateq
			return s.blFast[cands[a]] > s.blFast[cands[b]]
		}
		return cands[a] < cands[b]
	})
	if len(cands) > s.opt.Beam {
		cands = cands[:s.opt.Beam]
	}

	for _, id := range cands {
		t := s.d.Tasks[id]
		// Class order: fastest execution first.
		order := make([]int, len(s.classes))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return s.classExec[order[a]][t.Kind] < s.classExec[order[b]][t.Kind]
		})
		for _, ci := range order {
			exec := s.classExec[ci][t.Kind]
			if math.IsInf(exec, 1) {
				continue
			}
			df := s.depsFinishOn(id, s.classes[ci])
			// Earliest-free worker of the class (workers are identical).
			w, wf := -1, math.Inf(1)
			for _, cw := range s.workerOf[ci] {
				if s.workerFree[cw] < wf {
					wf, w = s.workerFree[cw], cw
				}
			}
			start := math.Max(df, wf)
			end := start + exec
			if end+s.tailAfter(id) >= s.bestMk-1e-12 {
				continue // this placement cannot beat the incumbent
			}

			// Commit.
			s.worker[id] = w
			s.finish[id] = end
			prevFree := s.workerFree[w]
			s.workerFree[w] = end
			s.removeReady(id)
			var woken []int
			for _, succ := range t.Succ {
				s.indeg[succ]--
				if s.indeg[succ] == 0 {
					s.ready = append(s.ready, succ)
					woken = append(woken, succ)
				}
			}

			s.dfs(math.Max(maxFinish, end))

			// Undo.
			for _, succ := range t.Succ {
				s.indeg[succ]++
			}
			for _, wk := range woken {
				s.removeReady(wk)
			}
			s.ready = append(s.ready, id)
			s.workerFree[w] = prevFree
			s.finish[id] = -1
			s.worker[id] = -1

			if s.cancelled || s.nodes > s.opt.NodeBudget {
				return
			}
		}
	}
}

// tailAfter returns the critical path length strictly below task id (its
// bottom level minus its own fastest time).
func (s *solver) tailAfter(id int) float64 {
	return s.blFast[id] - s.p.FastestTime(s.d.Tasks[id].Kind)
}

func (s *solver) depsFinish(id int) float64 {
	m := 0.0
	for _, pr := range s.d.Tasks[id].Pred {
		if s.finish[pr] > m {
			m = s.finish[pr]
		}
	}
	return m
}

// depsFinishOn is depsFinish with the partial data-awareness extension: a
// predecessor scheduled on a different resource class delays the successor
// by one PCI hop.
func (s *solver) depsFinishOn(id, class int) float64 {
	if s.opt.CommHopSec == 0 {
		return s.depsFinish(id)
	}
	m := 0.0
	for _, pr := range s.d.Tasks[id].Pred {
		f := s.finish[pr]
		if s.p.WorkerClass(s.worker[pr]) != class {
			f += s.opt.CommHopSec
		}
		if f > m {
			m = f
		}
	}
	return m
}

func (s *solver) removeReady(id int) {
	for i, v := range s.ready {
		if v == id {
			s.ready[i] = s.ready[len(s.ready)-1]
			s.ready = s.ready[:len(s.ready)-1]
			return
		}
	}
}

// replay evaluates a static schedule in the published CP model (no
// communication).
func replay(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule) ([]float64, float64, error) {
	return replayComm(d, p, plan, 0)
}

// replayComm evaluates a static schedule in the CP model: each worker runs
// its tasks in planned-start order, starts gated by dependencies, with an
// optional one-hop delay on class-crossing dependencies (the data-aware
// extension). Returns actual starts and the makespan.
func replayComm(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule, hop float64) ([]float64, float64, error) {
	type wq struct{ ids []int }
	queues := make([]wq, p.Workers())
	for id, w := range plan.Worker {
		queues[w].ids = append(queues[w].ids, id)
	}
	for w := range queues {
		ids := queues[w].ids
		sort.SliceStable(ids, func(a, b int) bool {
			// Tie-break on the exact stored plan times, then task ID.
			if plan.Start[ids[a]] != plan.Start[ids[b]] { //chollint:floateq
				return plan.Start[ids[a]] < plan.Start[ids[b]]
			}
			return ids[a] < ids[b]
		})
	}
	start := make([]float64, len(d.Tasks))
	finish := make([]float64, len(d.Tasks))
	done := make([]bool, len(d.Tasks))
	pos := make([]int, p.Workers())
	free := make([]float64, p.Workers())
	remaining := len(d.Tasks)
	for remaining > 0 {
		progress := false
		for w := range queues {
			for pos[w] < len(queues[w].ids) {
				id := queues[w].ids[pos[w]]
				t := d.Tasks[id]
				ok := true
				dep := 0.0
				for _, pr := range t.Pred {
					if !done[pr] {
						ok = false
						break
					}
					f := finish[pr]
					if hop > 0 && p.WorkerClass(plan.Worker[pr]) != p.WorkerClass(w) {
						f += hop
					}
					if f > dep {
						dep = f
					}
				}
				if !ok {
					break
				}
				st := math.Max(free[w], dep)
				en := st + p.Time(p.WorkerClass(w), t.Kind)
				start[id], finish[id] = st, en
				done[id] = true
				free[w] = en
				pos[w]++
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil, 0, fmt.Errorf("cpsolve: static schedule deadlocks (cyclic worker order)")
		}
	}
	mk := 0.0
	for _, f := range finish {
		if f > mk {
			mk = f
		}
	}
	return start, mk, nil
}

// Replay exposes the CP-model evaluation of a static schedule (used by
// experiments to report "theoretical performance value with CP solution").
func Replay(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule) (float64, error) {
	_, mk, err := replay(d, p, plan)
	return mk, err
}

// ReplayComm is Replay under the partial data-awareness model (one PCI hop
// per class-crossing dependency).
func ReplayComm(d *graph.DAG, p *platform.Platform, plan *sched.StaticSchedule, hop float64) (float64, error) {
	_, mk, err := replayComm(d, p, plan, hop)
	return mk, err
}
