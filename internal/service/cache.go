package service

import (
	"container/list"
	"context"
	"sync"
)

// LRU is a concurrency-safe fixed-capacity least-recently-used result cache.
// Keys are canonical request hashes (see requestKey); values are immutable
// response payloads, so a cached value may be handed to any number of
// concurrent readers without copying.
type LRU struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU returns a cache holding at most capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached value for key and refreshes its recency.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a value under key, evicting the least-recently-used entry when
// over capacity.
func (c *LRU) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// flightGroup deduplicates concurrent computations of the same key
// (singleflight): while one caller runs fn, followers for the same key block
// until it finishes and share its result instead of re-running the LP solve
// or event loop. A follower whose own context expires stops waiting and
// returns that error; the computation itself keeps running for the others.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do returns the result of fn for key, running it at most once across
// concurrent callers. The bool reports whether this caller shared another
// caller's in-flight computation.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
