package analysis

import (
	"go/ast"
)

// Noclock bans wall-clock reads and process-global randomness in the
// deterministic core. The simulator's only clock is simulated time
// (state.Now); the only legitimate randomness is a *rand.Rand seeded from
// Options.Seed. A stray time.Now or package-level rand.Intn silently breaks
// run-to-run reproducibility — the property every golden digest, the
// SimGrid-fidelity argument, and the gap-attribution arithmetic depend on.
//
// Seeded construction (rand.New, rand.NewSource, rand.NewZipf) is allowed;
// the process-global convenience functions and Seed are not. Wall-clock
// reads in _test.go files (benchmarks) are exempt. Genuinely wall-clock
// code (none exists in the core today) can annotate //chollint:realtime.
var Noclock = &Analyzer{
	Name:     "noclock",
	Doc:      "bans wall-clock reads and unseeded randomness in the deterministic core",
	Suppress: "realtime",
	Run:      runNoclock,
}

var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// Package-level math/rand functions drawing from the process-global
// (OS-seeded since Go 1.20) source. Constructors taking an explicit seed or
// source are deliberately absent.
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// math/rand/v2 renames; every top-level draw is unseeded by design.
var bannedRandV2Funcs = map[string]bool{
	"Int": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "N": true,
}

func runNoclock(pass *Pass) error {
	if !isDeterministicCore(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgFunc(pass.TypesInfo, call, "time", bannedTimeFuncs); ok {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic-core package %s: simulated time only (state.Now); wall-clock reads make runs non-reproducible",
					name, pass.Pkg.Name())
			}
			if name, ok := isPkgFunc(pass.TypesInfo, call, "math/rand", bannedRandFuncs); ok {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global source in deterministic-core package %s: use a *rand.Rand seeded from Options.Seed",
					name, pass.Pkg.Name())
			}
			if name, ok := isPkgFunc(pass.TypesInfo, call, "math/rand/v2", bannedRandV2Funcs); ok {
				pass.Reportf(call.Pos(),
					"rand/v2.%s is unseedable in deterministic-core package %s: use math/rand's rand.New(rand.NewSource(seed))",
					name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
