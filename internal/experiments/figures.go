package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/stats"
)

// mixedBound computes the paper's headline bound (integral mixed bound).
func mixedBound(d *graph.DAG, p *platform.Platform) (bounds.Result, error) {
	return bounds.MixedInt(d, p)
}

// TableI reproduces Table I: GPU speedup over one CPU core per Cholesky
// kernel on the Mirage model (expected ≈2×, ≈11×, ≈26×, ≈29×).
func TableI(cfg Config) *stats.Table {
	p := platform.Mirage()
	tbl := &stats.Table{
		Title:       "Table I — GPU relative performance per kernel",
		XLabel:      "kernel",
		YLabel:      "speedup",
		Xs:          []float64{0, 1, 2, 3},
		Categorical: true,
		XNames:      []string{"POTRF", "TRSM", "SYRK", "GEMM"},
	}
	sp := p.SpeedupTable(0, 1, graph.CholeskyKinds)
	tbl.Add("gpu/cpu", []float64{
		sp[graph.POTRF], sp[graph.TRSM], sp[graph.SYRK], sp[graph.GEMM],
	}, nil)
	return tbl
}

// TableK reproduces the acceleration factors of Section V-C2: the
// task-count-weighted mean GPU speedup K(n) defining the related platform
// (paper values: 17.30, 22.30, 24.30, 25.38, 26.06, 26.52, 26.86, 27.11 for
// n = 4, 8, ..., 32).
func TableK(cfg Config) *stats.Table {
	p := platform.Mirage()
	tbl := &stats.Table{
		Title:  "Acceleration factors K(n) (Section V-C2)",
		XLabel: "tiles",
		YLabel: "K",
		Xs:     xs(cfg.Sizes),
	}
	var ks []float64
	for _, n := range cfg.Sizes {
		ks = append(ks, p.AccelerationFactor(graph.Cholesky(n), 0, 1))
	}
	tbl.Add("K", ks, nil)
	return tbl
}

// Fig2 reproduces Figure 2: the four theoretical performance upper bounds
// (critical path, area, mixed, GEMM peak) on the Mirage model across matrix
// sizes. Expected shape: mixed is the tightest everywhere; critical path
// binds only at the smallest sizes; all converge toward GEMM peak at n=32.
func Fig2(cfg Config) (*stats.Table, error) {
	p := platform.Mirage()
	tbl := &stats.Table{
		Title:  "Figure 2 — heterogeneous theoretical performance upper bounds",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	var cp, area, mixed, peak []float64
	for _, n := range cfg.Sizes {
		all, err := bounds.Compute(n, cfg.NB, p)
		if err != nil {
			return nil, fmt.Errorf("fig2 n=%d: %w", n, err)
		}
		f := flops(n, cfg.NB)
		cp = append(cp, all.CriticalPath.GFlops(f))
		area = append(area, all.Area.GFlops(f))
		mixed = append(mixed, all.Mixed.GFlops(f))
		peak = append(peak, all.GemmPeak.GFlops(f))
	}
	tbl.Add("critical path", cp, nil)
	tbl.Add("area bound", area, nil)
	tbl.Add("mixed bound", mixed, nil)
	tbl.Add("gemm peak", peak, nil)
	return tbl, nil
}

// Fig3 reproduces Figure 3 (homogeneous actual performance) in the
// substituted actual mode: the 9-CPU Mirage model with per-task runtime
// overhead and jitter, mean ± σ over cfg.Runs runs. Expected shape: random
// clearly below dmda/dmdas; dmdas slightly below dmda at small sizes.
func Fig3(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 3 — homogeneous actual performance (overhead-model substitute)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	pf := func(int) *platform.Platform { return platform.Homogeneous(9) }
	if err := sweepSchedulers(cfg, tbl, pf, true); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Fig4 reproduces Figure 4: homogeneous simulated performance plus the mixed
// bound. Identical to Fig3 minus the runtime overhead (the paper's point:
// "very similar to the original execution, with a slight increase").
func Fig4(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 4 — homogeneous simulated performance",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	pf := func(int) *platform.Platform { return platform.Homogeneous(9) }
	if err := sweepSchedulers(cfg, tbl, pf, false); err != nil {
		return nil, err
	}
	if err := mixedBoundSeries(cfg, tbl, pf); err != nil {
		return nil, err
	}
	return tbl, nil
}

// relatedPlatform builds the per-size heterogeneous related platform: GPU
// speed = CPU speed × K(n), communications removed for bound comparison.
func relatedPlatform(n int) *platform.Platform {
	base := platform.Mirage()
	k := base.AccelerationFactor(graph.Cholesky(n), 0, 1)
	return platform.WithoutCommunication(platform.Related(base, k))
}

// unrelatedSimPlatform is the Mirage model with communications removed —
// the configuration of Figures 7 and 10 ("to be fair in the comparison").
func unrelatedSimPlatform(n int) *platform.Platform {
	return platform.WithoutCommunication(platform.Mirage())
}

// Fig5 reproduces Figure 5: heterogeneous *related* simulated performance
// with the mixed bound. Expected shape: random very poor; dmda ≈ dmdas well
// below the bound at small/medium sizes.
func Fig5(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 5 — heterogeneous related simulated performance",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	if err := sweepSchedulers(cfg, tbl, relatedPlatform, false); err != nil {
		return nil, err
	}
	if err := mixedBoundSeries(cfg, tbl, relatedPlatform); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Fig6 reproduces Figure 6 (heterogeneous unrelated actual performance) in
// the substituted actual mode: full Mirage model with PCI communications,
// runtime overhead and jitter, mean ± σ.
func Fig6(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 6 — heterogeneous unrelated actual performance (overhead-model substitute)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	pf := func(int) *platform.Platform { return platform.Mirage() }
	if err := sweepSchedulers(cfg, tbl, pf, true); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Fig7 reproduces Figure 7: heterogeneous unrelated simulated performance
// (communications removed) with the mixed bound. This is the central gap
// figure of the paper.
func Fig7(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Figure 7 — heterogeneous unrelated simulated performance",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	if err := sweepSchedulers(cfg, tbl, unrelatedSimPlatform, false); err != nil {
		return nil, err
	}
	if err := mixedBoundSeries(cfg, tbl, unrelatedSimPlatform); err != nil {
		return nil, err
	}
	return tbl, nil
}

// Fig8 reproduces Figure 8: the related-case curves of Figure 5 rescaled so
// that the related mixed bound coincides with the unrelated one, making the
// two cases directly comparable ("unrelated speed-ups make the problem
// harder").
func Fig8(cfg Config) (*stats.Table, error) {
	rel, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  "Figure 8 — heterogeneous related simulated, scaled to the unrelated mixed bound",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	// Per-size scale factor: unrelated mixed / related mixed.
	factors := make([]float64, len(cfg.Sizes))
	for i, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		mu, err := mixedBound(d, unrelatedSimPlatform(n))
		if err != nil {
			return nil, err
		}
		mr, err := mixedBound(d, relatedPlatform(n))
		if err != nil {
			return nil, err
		}
		f := flops(n, cfg.NB)
		factors[i] = mu.GFlops(f) / mr.GFlops(f)
	}
	for _, s := range rel.Series {
		scaled := make([]float64, len(s.Values))
		for i, v := range s.Values {
			scaled[i] = v * factors[i]
		}
		tbl.Add(s.Name, scaled, nil)
	}
	return tbl, nil
}

// GemmPeakGFlops reports the model's aggregate GEMM peak (the 960 GFLOP/s
// asymptote of Figure 2).
func GemmPeakGFlops(cfg Config) float64 {
	return platform.Mirage().GemmPeakGFlops(kernels.GemmFlops(cfg.NB))
}
