package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/platform"
	"repro/internal/sched"
)

// The registries replace the former stringly-typed PlatformByName /
// SchedulerByName switch statements with an extensible surface: built-in
// models register themselves in init below, and downstream code (a custom
// platform file, an experimental policy, a test) can RegisterPlatform /
// RegisterScheduler additional constructors under new names. Lookup,
// enumeration (Platforms, Schedulers), CLI usage strings, and the
// "unknown name" error messages are all generated from the same tables, so
// they can never drift apart.

// PlatformEntry is one registered platform constructor. Entries without a
// Param are invoked by their plain Name ("mirage"); entries with a Param are
// invoked as "name:arg" ("homogeneous:9") and Build receives the arg text.
type PlatformEntry struct {
	Name        string
	Param       string // documentation label for the argument ("N", "K"); empty = no argument
	Description string
	Build       func(arg string) (*platform.Platform, error)
}

// Display returns the name as documented in CLI help: "mirage" or
// "homogeneous:N".
func (e PlatformEntry) Display() string {
	if e.Param == "" {
		return e.Name
	}
	return e.Name + ":" + e.Param
}

// SchedulerEntry is one registered scheduling-policy constructor. Build must
// return a fresh instance per call: schedulers carry per-run state.
type SchedulerEntry struct {
	Name        string
	Param       string
	Description string
	Build       func(arg string) (sched.Scheduler, error)
}

// Display returns the name as documented in CLI help: "dmdas" or
// "trsm-cpu:K".
func (e SchedulerEntry) Display() string {
	if e.Param == "" {
		return e.Name
	}
	return e.Name + ":" + e.Param
}

var registry = struct {
	mu         sync.RWMutex
	platforms  map[string]PlatformEntry
	schedulers map[string]SchedulerEntry
}{
	platforms:  map[string]PlatformEntry{},
	schedulers: map[string]SchedulerEntry{},
}

// RegisterPlatform adds a platform constructor to the registry. It panics on
// an empty name, a name containing ":", a nil Build, or a duplicate
// registration — all programmer errors, following http.Handle's convention.
func RegisterPlatform(e PlatformEntry) {
	validateEntry(e.Name, e.Build == nil, "platform")
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.platforms[e.Name]; dup {
		panic(fmt.Sprintf("core: duplicate platform registration %q", e.Name))
	}
	registry.platforms[e.Name] = e
}

// RegisterScheduler adds a scheduler constructor to the registry, with the
// same panics as RegisterPlatform.
func RegisterScheduler(e SchedulerEntry) {
	validateEntry(e.Name, e.Build == nil, "scheduler")
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.schedulers[e.Name]; dup {
		panic(fmt.Sprintf("core: duplicate scheduler registration %q", e.Name))
	}
	registry.schedulers[e.Name] = e
}

func validateEntry(name string, nilBuild bool, what string) {
	if name == "" || strings.Contains(name, ":") {
		panic(fmt.Sprintf("core: invalid %s name %q", what, name))
	}
	if nilBuild {
		panic(fmt.Sprintf("core: %s %q registered with nil Build", what, name))
	}
}

// Platforms returns every registered platform entry, sorted by name.
func Platforms() []PlatformEntry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]PlatformEntry, 0, len(registry.platforms))
	for _, e := range registry.platforms {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Schedulers returns every registered scheduler entry, sorted by name.
func Schedulers() []SchedulerEntry {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]SchedulerEntry, 0, len(registry.schedulers))
	for _, e := range registry.schedulers {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PlatformUsage returns the "a | b | c:N" summary of registered platform
// names used by CLI flag help.
func PlatformUsage() string {
	var names []string
	for _, e := range Platforms() {
		names = append(names, e.Display())
	}
	return strings.Join(names, " | ")
}

// SchedulerUsage returns the "a | b | c:K" summary of registered scheduler
// names used by CLI flag help.
func SchedulerUsage() string {
	var names []string
	for _, e := range Schedulers() {
		names = append(names, e.Display())
	}
	return strings.Join(names, " | ")
}

// NewPlatform builds the platform registered under name, which is either a
// plain registered name ("mirage") or "name:arg" for parameterized entries
// ("homogeneous:9"). The error for an unknown name enumerates what is
// actually registered.
func NewPlatform(name string) (*platform.Platform, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	registry.mu.RLock()
	e, ok := registry.platforms[base]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown platform %q (registered: %s)", name, PlatformUsage())
	}
	if e.Param == "" && hasArg {
		return nil, fmt.Errorf("core: platform %q takes no parameter (got %q)", base, name)
	}
	if e.Param != "" && (!hasArg || arg == "") {
		return nil, fmt.Errorf("core: platform %q requires a parameter: use %q", base, e.Display())
	}
	return e.Build(arg)
}

// NewScheduler builds a fresh scheduler instance registered under name
// ("dmdas", "trsm-cpu:6"). The error for an unknown name enumerates what is
// actually registered.
func NewScheduler(name string) (sched.Scheduler, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	registry.mu.RLock()
	e, ok := registry.schedulers[base]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (registered: %s)", name, SchedulerUsage())
	}
	if e.Param == "" && hasArg {
		return nil, fmt.Errorf("core: scheduler %q takes no parameter (got %q)", base, name)
	}
	if e.Param != "" && (!hasArg || arg == "") {
		return nil, fmt.Errorf("core: scheduler %q requires a parameter: use %q", base, e.Display())
	}
	return e.Build(arg)
}

// Built-in models and policies. The names and argument validation are
// unchanged from the pre-registry façade.
func init() {
	RegisterPlatform(PlatformEntry{
		Name:        "mirage",
		Description: "the paper's machine (9 CPUs + 3 GPUs, PCI model)",
		Build:       func(string) (*platform.Platform, error) { return platform.Mirage(), nil },
	})
	RegisterPlatform(PlatformEntry{
		Name:        "mirage-nocomm",
		Description: "Mirage with data transfers removed",
		Build: func(string) (*platform.Platform, error) {
			return platform.WithoutCommunication(platform.Mirage()), nil
		},
	})
	RegisterPlatform(PlatformEntry{
		Name:        "mirage-extended",
		Description: "Mirage with timing entries for all factorization kernels",
		Build:       func(string) (*platform.Platform, error) { return platform.MirageExtended(), nil },
	})
	RegisterPlatform(PlatformEntry{
		Name: "homogeneous", Param: "N",
		Description: "N identical CPU cores",
		Build: func(arg string) (*platform.Platform, error) {
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("core: bad homogeneous worker count in %q", "homogeneous:"+arg)
			}
			return platform.Homogeneous(n), nil
		},
	})
	RegisterPlatform(PlatformEntry{
		Name: "related", Param: "K",
		Description: "Mirage with a uniform GPU speedup K",
		Build: func(arg string) (*platform.Platform, error) {
			k, err := strconv.ParseFloat(arg, 64)
			if err != nil || k <= 0 {
				return nil, fmt.Errorf("core: bad acceleration factor in %q", "related:"+arg)
			}
			return platform.Related(platform.Mirage(), k), nil
		},
	})

	simple := func(name, desc string, mk func() sched.Scheduler) {
		RegisterScheduler(SchedulerEntry{
			Name: name, Description: desc,
			Build: func(string) (sched.Scheduler, error) { return mk(), nil },
		})
	}
	simple("random", "uniform random worker choice", func() sched.Scheduler { return sched.NewRandom() })
	simple("greedy", "earliest-finish-time greedy", func() sched.Scheduler { return sched.NewGreedy() })
	simple("dmda", "StarPU dmda: minimum estimated completion time", func() sched.Scheduler { return sched.NewDMDA() })
	simple("dmdas", "dmda with priority-sorted queues", func() sched.Scheduler { return sched.NewDMDAS() })
	simple("dmdar", "dmda with data-ready sorting", func() sched.Scheduler { return sched.NewDMDAR() })
	simple("dmda-nocomm", "dmda ignoring transfer estimates", func() sched.Scheduler { return sched.NewDMDANoComm() })
	simple("gemm-syrk-gpu", "dmdas + GEMM/SYRK forced on GPUs", func() sched.Scheduler {
		return sched.NewDMDASWithHints("gemm-syrk-gpu", sched.GemmSyrkOnGPU())
	})
	RegisterScheduler(SchedulerEntry{
		Name: "partition", Param: "G",
		Description: "dmdas + per-panel GPU-proportion partitioning for mixed-tile DAGs",
		Build: func(arg string) (sched.Scheduler, error) {
			g, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(g >= 0 && g <= 1) {
				return nil, fmt.Errorf("core: bad GPU proportion in %q (want a number in [0, 1])", "partition:"+arg)
			}
			return sched.NewPartition(g), nil
		},
	})
	RegisterScheduler(SchedulerEntry{
		Name: "trsm-cpu", Param: "K",
		Description: "dmdas + the triangle hint with threshold K",
		Build: func(arg string) (sched.Scheduler, error) {
			k, err := strconv.Atoi(arg)
			if err != nil || k < 1 {
				return nil, fmt.Errorf("core: bad triangle threshold in %q", "trsm-cpu:"+arg)
			}
			return sched.NewTriangleTRSM(k), nil
		},
	})
}
