// Package runtime is a real task-based parallel runtime — the reproduction's
// StarPU "actual execution" mode for the homogeneous case: it executes a
// task DAG with genuine goroutine workers, dependency tracking and a
// pluggable ready-task policy, and measures wall-clock per-task timings.
//
// The paper's homogeneous experiments (Figure 3) run the tiled Cholesky with
// random / dmda / dmdas on 9 CPU cores; on a shared-memory homogeneous
// machine the dm* policies reduce to central-queue scheduling with or
// without priorities, which is exactly what this runtime provides (Random,
// FIFO, Priority policies).
package runtime

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Policy selects how workers pick among ready tasks.
type Policy int

// Ready-task policies.
const (
	// FIFO pops ready tasks in submission order (StarPU's eager).
	FIFO Policy = iota
	// Priority pops the highest-priority ready task (HEFT-like, the dmdas
	// analogue on homogeneous platforms).
	Priority
	// Random pops a uniformly random ready task (the random policy's
	// homogeneous analogue).
	Random
	// RandomPerWorker assigns each ready task to a uniformly random
	// worker's private queue at push time — StarPU's `random` policy
	// proper: not work-conserving, so it exhibits the load imbalance the
	// paper's Figure 3 shows.
	RandomPerWorker
	// StealingDeques gives each worker a private deque: tasks released by a
	// worker's completions go to its own deque (bottom, popped LIFO for
	// locality); an idle worker steals from the longest other deque (FIFO
	// end) — the classic work-stealing runtime (StarPU's `ws`).
	StealingDeques
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Priority:
		return "priority"
	case Random:
		return "random"
	case RandomPerWorker:
		return "random-per-worker"
	default:
		return "stealing-deques"
	}
}

// Options configures an execution.
type Options struct {
	// Workers is the number of worker goroutines (default: GOMAXPROCS).
	Workers int
	// Policy selects the ready-queue discipline.
	Policy Policy
	// Priorities gives per-task priorities for the Priority policy
	// (higher first). When nil, bottom levels with unit weights are used.
	Priorities []float64
	// Seed feeds the Random policy.
	Seed int64
}

// Result of a real execution.
type Result struct {
	Seconds  float64   // wall-clock makespan
	Start    []float64 // per task, seconds relative to run start
	End      []float64
	Worker   []int
	BusySec  []float64 // per worker
	TaskName []string
}

// TaskFunc executes one task; returning an error aborts the run.
type TaskFunc func(t *graph.Task) error

type readyQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []int   // central queue (all policies but RandomPerWorker)
	perW    [][]int // private queues (RandomPerWorker)
	prio    []float64
	policy  Policy
	rng     *rand.Rand
	stopped bool
	err     error
}

func newReadyQueue(workers int, policy Policy, prio []float64, seed int64) *readyQueue {
	q := &readyQueue{policy: policy, prio: prio, rng: rand.New(rand.NewSource(seed))}
	if policy == RandomPerWorker || policy == StealingDeques {
		q.perW = make([][]int, workers)
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a ready task. from is the worker whose completion released
// it (−1 for the initial roots).
func (q *readyQueue) push(id, from int) {
	q.mu.Lock()
	switch q.policy {
	case RandomPerWorker:
		w := q.rng.Intn(len(q.perW))
		q.perW[w] = append(q.perW[w], id)
	case StealingDeques:
		w := from
		if w < 0 {
			w = q.rng.Intn(len(q.perW)) // scatter the roots
		}
		q.perW[w] = append(q.perW[w], id)
	default:
		q.items = append(q.items, id)
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *readyQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *readyQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop blocks until a task is available for this worker or the queue stops;
// ok=false on stop.
func (q *readyQueue) pop(worker int) (id int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.policy == RandomPerWorker {
		mine := func() []int { return q.perW[worker] }
		for len(mine()) == 0 && !q.stopped {
			q.cond.Wait()
		}
		if len(mine()) == 0 {
			return 0, false
		}
		id = q.perW[worker][0]
		q.perW[worker] = q.perW[worker][1:]
		return id, true
	}
	if q.policy == StealingDeques {
		for !q.stopped {
			if n := len(q.perW[worker]); n > 0 {
				// Own deque: LIFO (locality).
				id = q.perW[worker][n-1]
				q.perW[worker] = q.perW[worker][:n-1]
				return id, true
			}
			// Steal from the longest victim's FIFO end.
			victim, best := -1, 0
			for v := range q.perW {
				if v != worker && len(q.perW[v]) > best {
					victim, best = v, len(q.perW[v])
				}
			}
			if victim >= 0 {
				id = q.perW[victim][0]
				q.perW[victim] = q.perW[victim][1:]
				return id, true
			}
			q.cond.Wait()
		}
		return 0, false
	}
	for len(q.items) == 0 && !q.stopped {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return 0, false
	}
	var idx int
	switch q.policy {
	case Priority:
		idx = 0
		for i := 1; i < len(q.items); i++ {
			if q.prio[q.items[i]] > q.prio[q.items[idx]] {
				idx = i
			}
		}
	case Random:
		idx = q.rng.Intn(len(q.items))
	default:
		idx = 0
	}
	id = q.items[idx]
	q.items = append(q.items[:idx], q.items[idx+1:]...)
	return id, true
}

// Run executes the DAG with fn on a pool of goroutine workers.
func Run(d *graph.DAG, fn TaskFunc, opt Options) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Tasks)
	nW := opt.Workers
	if nW <= 0 {
		nW = runtime.GOMAXPROCS(0)
	}
	prio := opt.Priorities
	if prio == nil && opt.Policy == Priority {
		bl, err := d.BottomLevels(func(*graph.Task) float64 { return 1 })
		if err != nil {
			return nil, err
		}
		prio = bl
	}
	q := newReadyQueue(nW, opt.Policy, prio, opt.Seed)

	res := &Result{
		Start:    make([]float64, n),
		End:      make([]float64, n),
		Worker:   make([]int, n),
		BusySec:  make([]float64, nW),
		TaskName: make([]string, n),
	}
	for _, t := range d.Tasks {
		res.TaskName[t.ID] = t.Name()
	}

	indeg := make([]int32, n)
	for _, t := range d.Tasks {
		indeg[t.ID] = int32(len(t.Pred))
	}
	var depMu sync.Mutex // protects indeg decrements + completion count
	remaining := n

	base := time.Now()
	// Seed the queue before any worker can touch indeg.
	for _, t := range d.Tasks {
		if indeg[t.ID] == 0 {
			q.push(t.ID, -1)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < nW; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				id, ok := q.pop(worker)
				if !ok {
					return
				}
				t := d.Tasks[id]
				start := time.Since(base).Seconds()
				err := fn(t)
				end := time.Since(base).Seconds()
				res.Start[id], res.End[id], res.Worker[id] = start, end, worker
				res.BusySec[worker] += end - start
				if err != nil {
					q.fail(fmt.Errorf("runtime: task %s: %w", t.Name(), err))
					return
				}
				depMu.Lock()
				remaining--
				finished := remaining == 0
				var woken []int
				for _, s := range t.Succ {
					indeg[s]--
					if indeg[s] == 0 {
						woken = append(woken, s)
					}
				}
				depMu.Unlock()
				for _, s := range woken {
					q.push(s, worker)
				}
				if finished {
					q.stop()
				}
			}
		}(w)
	}
	wg.Wait()
	if q.err != nil {
		return nil, q.err
	}
	res.Seconds = time.Since(base).Seconds()
	return res, nil
}

// CholeskyExecutor returns the TaskFunc running the numeric tile kernels of
// the tiled Cholesky factorization in place on tl.
//
// Concurrent safety: the DAG's dependencies serialize every conflicting tile
// access (that is their construction rule), so kernels may touch their tiles
// without locks.
func CholeskyExecutor(tl *matrix.Tiled) TaskFunc {
	return func(t *graph.Task) error {
		switch t.Kind {
		case graph.POTRF:
			return kernels.Potrf(tl.Tile(t.K, t.K))
		case graph.TRSM:
			kernels.Trsm(tl.Tile(t.K, t.K), tl.Tile(t.I, t.K))
		case graph.SYRK:
			kernels.Syrk(tl.Tile(t.J, t.K), tl.Tile(t.J, t.J))
		case graph.GEMM:
			kernels.Gemm(tl.Tile(t.I, t.K), tl.Tile(t.J, t.K), tl.Tile(t.I, t.J))
		default:
			return fmt.Errorf("runtime: unexpected kind %v in Cholesky DAG", t.Kind)
		}
		return nil
	}
}

// Factor runs the full parallel tiled Cholesky factorization of tl in place
// and returns the execution record.
func Factor(tl *matrix.Tiled, opt Options) (*Result, error) {
	d := graph.Cholesky(tl.P)
	return Run(d, CholeskyExecutor(tl), opt)
}

// Validate checks the execution record is a legal schedule of the DAG:
// intervals on one worker never overlap and no task started before its
// predecessors ended. (Wall-clock noise gets 1 µs of slack.)
func Validate(d *graph.DAG, r *Result) error {
	const slack = 1e-6
	n := len(d.Tasks)
	if len(r.Start) != n || len(r.End) != n {
		return fmt.Errorf("runtime: result does not cover the DAG")
	}
	for _, t := range d.Tasks {
		for _, pr := range t.Pred {
			if r.Start[t.ID] < r.End[pr]-slack {
				return fmt.Errorf("runtime: %s started before predecessor %s finished",
					d.Tasks[t.ID].Name(), d.Tasks[pr].Name())
			}
		}
	}
	perWorker := map[int][][2]float64{}
	for id := range r.Start {
		perWorker[r.Worker[id]] = append(perWorker[r.Worker[id]], [2]float64{r.Start[id], r.End[id]})
	}
	for w, ivs := range perWorker {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		for i := 1; i < len(ivs); i++ {
			if ivs[i][0] < ivs[i-1][1]-slack {
				return fmt.Errorf("runtime: overlapping tasks on worker %d", w)
			}
		}
	}
	return nil
}
