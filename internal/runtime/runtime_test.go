package runtime

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
)

func TestFactorCorrectAllPolicies(t *testing.T) {
	for _, pol := range []Policy{FIFO, Priority, Random} {
		for _, workers := range []int{1, 2, 4} {
			a := matrix.RandSPD(48, 7)
			tl, err := matrix.FromDense(a, 8)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Factor(tl, Options{Workers: workers, Policy: pol, Seed: 3})
			if err != nil {
				t.Fatalf("%v/%d workers: %v", pol, workers, err)
			}
			if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-12 {
				t.Fatalf("%v/%d workers: residual %g", pol, workers, res)
			}
			if err := Validate(graph.Cholesky(6), r); err != nil {
				t.Fatalf("%v/%d workers: %v", pol, workers, err)
			}
		}
	}
}

func TestFactorMatchesSequentialTiled(t *testing.T) {
	a := matrix.RandSPD(40, 11)
	seq, _ := matrix.FromDense(a, 8)
	par, _ := matrix.FromDense(a, 8)
	if err := func() error {
		return nil
	}(); err != nil {
		t.Fatal(err)
	}
	if err := sequentialFactor(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := Factor(par, Options{Workers: 4, Policy: Priority}); err != nil {
		t.Fatal(err)
	}
	// Parallel result must match sequential bit patterns are not guaranteed
	// identical (fp order differs only where no dependency orders ops —
	// there is none in Cholesky: every tile op chain is ordered), so demand
	// exact equality.
	for i := 0; i < seq.P; i++ {
		for j := 0; j <= i; j++ {
			s, p := seq.Tile(i, j), par.Tile(i, j)
			for k := range s.Data {
				if s.Data[k] != p.Data[k] {
					t.Fatalf("tile (%d,%d)[%d]: %g != %g", i, j, k, s.Data[k], p.Data[k])
				}
			}
		}
	}
}

func sequentialFactor(tl *matrix.Tiled) error {
	d := graph.Cholesky(tl.P)
	fn := CholeskyExecutor(tl)
	order, err := d.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		if err := fn(d.Tasks[id]); err != nil {
			return err
		}
	}
	return nil
}

func TestFactorRejectsIndefinite(t *testing.T) {
	a := matrix.RandSymmetric(24, 5)
	tl, _ := matrix.FromDense(a, 8)
	_, err := Factor(tl, Options{Workers: 4})
	if !errors.Is(err, matrix.ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	d := graph.Cholesky(6)
	var count int64
	seen := make([]int64, len(d.Tasks))
	_, err := Run(d, func(tk *graph.Task) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[tk.ID], 1)
		return nil
	}, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if count != int64(len(d.Tasks)) {
		t.Fatalf("executed %d tasks, want %d", count, len(d.Tasks))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("task %d executed %d times", id, c)
		}
	}
}

func TestRunRespectsDependencies(t *testing.T) {
	d := graph.Cholesky(5)
	var doneMask [64]int64 // enough for 35 tasks
	_, err := Run(d, func(tk *graph.Task) error {
		for _, pr := range tk.Pred {
			if atomic.LoadInt64(&doneMask[pr]) == 0 {
				return fmt.Errorf("task %s ran before predecessor %d", tk.Name(), pr)
			}
		}
		atomic.StoreInt64(&doneMask[tk.ID], 1)
		return nil
	}, Options{Workers: 8, Policy: Random, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	d := graph.Cholesky(4)
	boom := errors.New("boom")
	_, err := Run(d, func(tk *graph.Task) error {
		if tk.Kind == graph.SYRK {
			return boom
		}
		return nil
	}, Options{Workers: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestRunSingleWorkerIsSequential(t *testing.T) {
	d := graph.Cholesky(4)
	r, err := Run(d, func(*graph.Task) error { return nil }, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range r.Worker {
		if w != 0 {
			t.Fatal("single-worker run used other workers")
		}
	}
	if err := Validate(d, r); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	d := graph.Cholesky(2)
	if _, err := Run(d, func(*graph.Task) error { return nil }, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsCyclicDAG(t *testing.T) {
	d := &graph.DAG{Tasks: []*graph.Task{
		{ID: 0, Succ: []int{1}, Pred: []int{1}},
		{ID: 1, Succ: []int{0}, Pred: []int{0}},
	}}
	if _, err := Run(d, func(*graph.Task) error { return nil }, Options{}); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Priority.String() != "priority" || Random.String() != "random" {
		t.Fatal("Policy strings broken")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	d := graph.Cholesky(2)
	n := len(d.Tasks)
	r := &Result{
		Start:  make([]float64, n),
		End:    make([]float64, n),
		Worker: make([]int, n),
	}
	// Everything at time [0, 1] on worker 0: overlapping + dep violations.
	for i := range r.End {
		r.End[i] = 1
	}
	if Validate(d, r) == nil {
		t.Fatal("expected validation failure")
	}
}

func TestFactorLaplacianLarger(t *testing.T) {
	a := matrix.Laplacian2D(8) // 64×64
	tl, _ := matrix.FromDense(a, 8)
	if _, err := Factor(tl, Options{Workers: 6, Policy: Priority}); err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
}

func TestRandomPerWorkerCorrectAndImbalanced(t *testing.T) {
	a := matrix.RandSPD(48, 13)
	tl, _ := matrix.FromDense(a, 8)
	r, err := Factor(tl, Options{Workers: 4, Policy: RandomPerWorker, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
	if err := Validate(graph.Cholesky(6), r); err != nil {
		t.Fatal(err)
	}
	if RandomPerWorker.String() != "random-per-worker" {
		t.Fatal("policy string")
	}
}

func TestStealingDequesCorrect(t *testing.T) {
	for _, workers := range []int{1, 2, 6} {
		a := matrix.RandSPD(64, 31)
		tl, _ := matrix.FromDense(a, 8)
		r, err := Factor(tl, Options{Workers: workers, Policy: StealingDeques, Seed: 4})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-12 {
			t.Fatalf("workers=%d: residual %g", workers, res)
		}
		if err := Validate(graph.Cholesky(8), r); err != nil {
			t.Fatal(err)
		}
	}
	if StealingDeques.String() != "stealing-deques" {
		t.Fatal("policy string")
	}
}

func TestStealingDequesAllWorkersParticipate(t *testing.T) {
	// On a wide DAG with real work, stealing must spread the load: every
	// worker runs tasks. (With no-op tasks one worker can drain the queue
	// alone before the others wake, so use the actual kernels.)
	// Under StealingDeques every released task lands on its releasing
	// worker's own deque, so a second participating worker proves a steal
	// happened. Demanding all four is racy on fast kernels (a quick worker
	// can legally drain most of the graph), so assert ≥ 2.
	// Chunky kernels (nb=64 ⇒ ≈0.3 ms GEMMs) so sleeping workers get a
	// chance to wake and steal before the graph drains.
	a := matrix.RandSPD(512, 2)
	tl, _ := matrix.FromDense(a, 64) // 8×8 tiles, 120 tasks of real work
	r, err := Factor(tl, Options{Workers: 4, Policy: StealingDeques, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-12 {
		t.Fatalf("residual %g", res)
	}
	seen := map[int]bool{}
	for _, w := range r.Worker {
		seen[w] = true
	}
	// On a single-CPU host the Go scheduler may legally let one goroutine
	// drain the whole graph between preemption points, so the participation
	// assertion only holds with real hardware parallelism.
	if stdruntime.NumCPU() >= 2 && len(seen) < 2 {
		t.Fatalf("only %d workers ran tasks — no stealing happened", len(seen))
	}
}

func TestBandedCholeskyRuntimeMatchesDense(t *testing.T) {
	// Running only the banded DAG's tasks must produce the same factor as
	// the dense algorithm: out-of-band tiles are zero and contribute no-op
	// updates, which the banded DAG legitimately skips.
	n, nb, bwTiles := 64, 8, 2
	a := matrix.BandedSPD(n, bwTiles*nb, 5)
	full, _ := matrix.FromDense(a, nb)
	band, _ := matrix.FromDense(a, nb)
	if _, err := Factor(full, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	d := graph.BandedCholesky(n/nb, bwTiles)
	if _, err := Run(d, CholeskyExecutor(band), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, band.ToDense()); res > 1e-12 {
		t.Fatalf("banded-DAG residual %g", res)
	}
	for i := 0; i < full.P; i++ {
		for j := 0; j <= i; j++ {
			f, b := full.Tile(i, j), band.Tile(i, j)
			for k := range f.Data {
				if f.Data[k] != b.Data[k] {
					t.Fatalf("tile (%d,%d)[%d]: dense %g vs banded %g",
						i, j, k, f.Data[k], b.Data[k])
				}
			}
		}
	}
}

func TestLeftLookingFactorMatchesRightLooking(t *testing.T) {
	a := matrix.RandSPD(48, 19)
	rl, _ := matrix.FromDense(a, 8)
	ll, _ := matrix.FromDense(a, 8)
	if _, err := Factor(rl, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	d := graph.CholeskyLeftLooking(6)
	if _, err := Run(d, CholeskyExecutor(ll), Options{Workers: 3, Policy: Random, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, ll.ToDense()); res > 1e-12 {
		t.Fatalf("left-looking residual %g", res)
	}
	for i := 0; i < rl.P; i++ {
		for j := 0; j <= i; j++ {
			x, y := rl.Tile(i, j), ll.Tile(i, j)
			for k := range x.Data {
				if x.Data[k] != y.Data[k] {
					t.Fatalf("variants diverge at tile (%d,%d)[%d]", i, j, k)
				}
			}
		}
	}
}
