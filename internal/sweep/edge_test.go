package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestRunContextZeroJobs: an empty sweep completes trivially — empty (but
// non-nil) result slice, no error, and no worker goroutines spawned.
func TestRunContextZeroJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	out, err := RunContext[int](context.Background(), nil, 8)
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if out == nil || len(out) != 0 {
		t.Fatalf("out = %#v, want empty non-nil slice", out)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew from %d to %d on an empty sweep", before, after)
	}
	// A cancelled ctx does not turn an empty sweep into an error either.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext[int](ctx, []Job[int]{}, 4); err != nil {
		t.Fatalf("empty sweep with cancelled ctx: err = %v, want nil", err)
	}
}

// TestRunContextClampsWorkersToJobs pins the worker clamp: a sweep of J jobs
// with workers ≫ J must spawn at most J worker goroutines — the surplus
// would sit idle on the dispatch channel for the whole sweep. Observed via
// the goroutine count while every job is provably in flight.
func TestRunContextClampsWorkersToJobs(t *testing.T) {
	const jobCount = 2
	before := runtime.NumGoroutine()
	entered := make(chan struct{}, jobCount)
	release := make(chan struct{})
	jobs := make([]Job[int], jobCount)
	for i := range jobs {
		jobs[i] = func() (int, error) {
			entered <- struct{}{}
			<-release
			return 0, nil
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(context.Background(), jobs, 64)
		done <- err
	}()
	for i := 0; i < jobCount; i++ {
		<-entered
	}
	// Both jobs are running, so every worker goroutine the pool will ever
	// spawn exists right now. 64 unclamped workers would show up here.
	during := runtime.NumGoroutine()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if extra := during - before; extra > jobCount+2 {
		t.Fatalf("sweep of %d jobs with 64 workers ran %d extra goroutines — worker clamp lost", jobCount, extra)
	}
}

// TestRunContextPreCancelledDeterministic: a ctx cancelled before dispatch
// must return ctx.Err() and run zero jobs — every time, not just when the
// dispatcher's select happens to notice cancellation before a worker's
// receive. The loop would flake without the deterministic pre-dispatch poll.
func TestRunContextPreCancelledDeterministic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for round := 0; round < 200; round++ {
		var ran atomic.Int64
		jobs := make([]Job[int], 16)
		for i := range jobs {
			jobs[i] = func() (int, error) { ran.Add(1); return 0, nil }
		}
		out, err := RunContext(ctx, jobs, 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("round %d: %d jobs ran despite pre-cancelled ctx", round, n)
		}
		if len(out) != len(jobs) {
			t.Fatalf("round %d: result slice has %d entries, want %d", round, len(out), len(jobs))
		}
	}
}
