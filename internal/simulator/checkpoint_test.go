package simulator

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestSnapshotRestoreExact proves restore is lossless: restoring any
// snapshot into a freshly reset arena and re-snapshotting reproduces every
// field — tile locations, LRU stamps and residency order, pins, worker
// queues (tasks, priorities, sequence numbers), event heap, dependency
// counts and the partial Result — bit for bit.
func TestSnapshotRestoreExact(t *testing.T) {
	d, p := graph.Cholesky(8), platform.Mirage()
	pp, err := Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pp.RunRecorded(context.Background(), sched.NewDMDAS(), Options{Seed: 3}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snaps) < 3 {
		t.Fatalf("expected several snapshots, got %d", len(rec.Snaps))
	}
	for i, sn := range rec.Snaps {
		var a Arena
		st := &a.st
		s := sched.NewDMDAS()
		st.reset(pp, s, rec.Opt)
		s.Init(pp.d, pp.p, rec.Opt.Seed)
		st.restore(sn)
		st.snapshot()
		got := st.snaps[len(st.snaps)-1]
		if !reflect.DeepEqual(got, sn) {
			// Report the first differing field by name for debuggability.
			gv, wv := reflect.ValueOf(*got), reflect.ValueOf(*sn)
			for f := 0; f < gv.NumField(); f++ {
				if !reflect.DeepEqual(gv.Field(f).Interface(), wv.Field(f).Interface()) {
					t.Errorf("snapshot %d: field %s not restored exactly", i, gv.Type().Field(f).Name)
				}
			}
			if !t.Failed() {
				t.Errorf("snapshot %d: restore roundtrip differs", i)
			}
		}
	}
}

// TestResumeFromEverySnapshot checks the suffix property: resuming the same
// configuration from any checkpoint finishes with a Result bit-identical to
// the uninterrupted run.
func TestResumeFromEverySnapshot(t *testing.T) {
	d, p := graph.Cholesky(8), platform.Mirage()
	for _, opt := range []Options{{Seed: 1}, {Seed: 5, Overhead: true}, {Seed: 2, WorkStealing: true}} {
		pp, err := Prepare(d, p)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := pp.RunRecorded(context.Background(), sched.NewDMDAS(), opt, 11, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := resultHash(rec.Result)
		var a Arena // reuse one arena across resumes: reset must fully rebind it
		for i, sn := range rec.Snaps {
			r, err := pp.Resume(context.Background(), sched.NewDMDAS(), opt, sn, &a)
			if err != nil {
				t.Fatalf("opt %+v snapshot %d: %v", opt, i, err)
			}
			if resultHash(r) != want {
				t.Errorf("opt %+v: resume from snapshot %d (done=%d) digest %016x, full run %016x",
					opt, i, sn.Done, resultHash(r), want)
			}
		}
	}
}

// TestRecordedRunMatchesPlain pins that checkpointing is observation only:
// RunRecorded's Result equals Run's, its decision trace covers every task
// exactly once, and snapshots arrive on the stride boundaries.
func TestRecordedRunMatchesPlain(t *testing.T) {
	d, p := graph.Cholesky(8), platform.Mirage()
	opt := Options{Seed: 9}
	plain, err := Run(d, p, sched.NewDMDAS(), opt)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := pp.RunRecorded(context.Background(), sched.NewDMDAS(), opt, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resultHash(rec.Result) != resultHash(plain) {
		t.Errorf("recorded run digest %016x, plain %016x", resultHash(rec.Result), resultHash(plain))
	}
	if len(rec.Decisions) != len(d.Tasks) {
		t.Fatalf("decision trace has %d entries, want %d", len(rec.Decisions), len(d.Tasks))
	}
	seen := make(map[int32]bool, len(rec.Decisions))
	for _, id := range rec.Decisions {
		if seen[id] {
			t.Fatalf("task %d assigned twice in decision trace", id)
		}
		seen[id] = true
	}
	for i, sn := range rec.Snaps {
		if sn.Done%rec.Stride != 0 {
			t.Errorf("snapshot %d at done=%d, stride %d", i, sn.Done, rec.Stride)
		}
		if i > 0 && sn.Done <= rec.Snaps[i-1].Done {
			t.Errorf("snapshots out of order at %d", i)
		}
	}
}
