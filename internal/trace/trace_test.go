package trace

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func simulate(t *testing.T, s sched.Scheduler) (*graph.DAG, *platform.Platform, *simulator.Result) {
	t.Helper()
	p := platform.Mirage()
	d := graph.Cholesky(8)
	r, err := simulator.Run(d, p, s, simulator.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d, p, r
}

func labels(p *platform.Platform) []string {
	var out []string
	for _, c := range p.Classes {
		for i := 0; i < c.Count; i++ {
			out = append(out, c.Name+string(rune('0'+i)))
		}
	}
	return out
}

func TestFromSimulationCoversAllTasks(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	if len(g.Spans) != len(d.Tasks) {
		t.Fatalf("spans %d, tasks %d", len(g.Spans), len(d.Tasks))
	}
	if g.Makespan != r.MakespanSec {
		t.Fatal("makespan mismatch")
	}
}

func TestIdleAccountingConsistent(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDAS())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	for w := 0; w < p.Workers(); w++ {
		st := g.Idle(w)
		if math.Abs(st.BusySec+st.IdleSec-g.Makespan) > 1e-9 {
			t.Fatalf("worker %d: busy+idle != makespan", w)
		}
		if math.Abs(st.BusySec-r.BusySec[w]) > 1e-9 {
			t.Fatalf("worker %d: busy %g vs simulator %g", w, st.BusySec, r.BusySec[w])
		}
		if st.IdleFrac < 0 || st.IdleFrac > 1 {
			t.Fatalf("worker %d: idle frac %g", w, st.IdleFrac)
		}
	}
}

func TestGroupIdleFrac(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	gpus := p.ClassWorkers(1)
	frac := g.GroupIdleFrac(gpus)
	if frac < 0 || frac > 1 {
		t.Fatalf("GPU idle frac %g", frac)
	}
	if g.GroupIdleFrac(nil) != 0 {
		t.Fatal("empty group should be 0")
	}
}

func TestASCIIRender(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	out := g.ASCII(100, p.ClassWorkers(1))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 GPUs + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "gpu0") || !strings.Contains(out, "makespan") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// GPUs on Mirage run mostly GEMMs: glyph G must appear.
	if !strings.Contains(out, "G") {
		t.Fatal("no GEMM glyph on GPU lanes")
	}
}

func TestASCIIDefaultsAllWorkers(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	out := g.ASCII(0, nil)
	if got := strings.Count(out, "|"); got < 2*p.Workers() {
		t.Fatalf("expected %d lanes, out:\n%s", p.Workers(), out)
	}
}

func TestSVGWellFormedish(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDAS())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	svg := g.SVG(800, 20)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(svg, "<rect") != len(d.Tasks) {
		t.Fatalf("rect count %d != %d tasks", strings.Count(svg, "<rect"), len(d.Tasks))
	}
	// All four kernel colors should appear for an 8×8 Cholesky.
	for _, c := range []string{"#d62728", "#1f77b4", "#2ca02c", "#ff7f0e"} {
		if !strings.Contains(svg, c) {
			t.Fatalf("missing color %s", c)
		}
	}
}

func TestSVGDefaults(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), nil, r)
	if svg := g.SVG(0, 0); !strings.Contains(svg, "w0") {
		t.Fatal("default labels missing")
	}
}

func TestWorkerSpansSorted(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDA())
	g := FromSimulation(d, p.Workers(), nil, r)
	for w := 0; w < p.Workers(); w++ {
		spans := g.WorkerSpans(w)
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].Start {
				t.Fatal("spans not sorted")
			}
			if spans[i].Start < spans[i-1].End-1e-9 {
				t.Fatal("overlapping spans on one worker")
			}
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	// dmdas puts emphasis on the critical path early and idles the GPUs
	// more at the start than dmda does on 8×8 tiles (Section VI-A).
	p := platform.Mirage()
	d := graph.Cholesky(8)
	run := func(s sched.Scheduler) float64 {
		r, err := simulator.Run(d, p, s, simulator.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := FromSimulation(d, p.Workers(), nil, r)
		return g.GroupIdleFrac(p.ClassWorkers(1))
	}
	da := run(sched.NewDMDA())
	das := run(sched.NewDMDAS())
	if da < 0 || das < 0 {
		t.Fatal("negative idle")
	}
	// Both have nontrivial GPU idle at this size (the paper's point).
	if da == 0 && das == 0 {
		t.Fatal("expected some GPU idle time on 8×8 tiles")
	}
}

func TestKindGlyphsAndColors(t *testing.T) {
	if kindGlyph(graph.POTRF) != 'P' || kindGlyph(graph.GEMM) != 'G' ||
		kindGlyph(graph.TSMQR) != 'G' || kindGlyph(graph.Kind(99)) != '?' {
		t.Fatal("glyph mapping")
	}
	if kindColor(graph.Kind(99)) != "#7f7f7f" {
		t.Fatal("default color")
	}
}

func TestFromRuntime(t *testing.T) {
	a := matrixRandSPD()
	tl, err := mfrom(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := runtime.Factor(tl, runtime.Options{Workers: 3, Policy: runtime.Priority})
	if err != nil {
		t.Fatal(err)
	}
	d := graph.Cholesky(tl.P)
	g := FromRuntime(d, 3, r)
	if len(g.Spans) != len(d.Tasks) {
		t.Fatal("span count mismatch")
	}
	if g.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	total := 0.0
	for w := 0; w < 3; w++ {
		total += g.Idle(w).BusySec
	}
	if total <= 0 {
		t.Fatal("no busy time recorded")
	}
	if out := g.ASCII(60, nil); !strings.Contains(out, "makespan") {
		t.Fatal("ASCII render broken for runtime trace")
	}
}

func matrixRandSPD() *matrix.Dense { return matrix.RandSPD(32, 4) }

func mfrom(a *matrix.Dense, nb int) (*matrix.Tiled, error) { return matrix.FromDense(a, nb) }

func TestChromeTraceRoundTrip(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDAS())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	data, err := g.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workers != g.Workers || len(back.Spans) != len(g.Spans) {
		t.Fatalf("shape lost: %d/%d workers, %d/%d spans",
			back.Workers, g.Workers, len(back.Spans), len(g.Spans))
	}
	if math.Abs(back.Makespan-g.Makespan) > 1e-9 {
		t.Fatalf("makespan %g vs %g", back.Makespan, g.Makespan)
	}
	// Idle analysis must agree after the round trip.
	for w := 0; w < g.Workers; w++ {
		a, b := g.Idle(w), back.Idle(w)
		if math.Abs(a.BusySec-b.BusySec) > 1e-9 {
			t.Fatalf("worker %d busy lost: %g vs %g", w, a.BusySec, b.BusySec)
		}
	}
	if back.Labels[9] != "gpu0" {
		t.Fatalf("labels lost: %v", back.Labels)
	}
	// Kinds survive.
	kinds := map[graph.Kind]bool{}
	for _, s := range back.Spans {
		kinds[s.Kind] = true
	}
	if !kinds[graph.POTRF] || !kinds[graph.GEMM] {
		t.Fatal("kinds lost")
	}
}

func TestParseChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseChromeTrace([]byte("not json")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseChromeTrace([]byte(`[{"ph":"Q","tid":0}]`)); err == nil {
		t.Fatal("expected unsupported-phase error")
	}
}

func TestReadyProfileInvariants(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDAS())
	prof := ReadyProfile(d, r, 80)
	if len(prof) != 80 {
		t.Fatalf("%d samples", len(prof))
	}
	for _, pt := range prof {
		if pt.Running < 0 || pt.Running > p.Workers() {
			t.Fatalf("running %d outside [0, %d]", pt.Running, p.Workers())
		}
		if pt.Ready < 0 {
			t.Fatal("negative ready")
		}
	}
	if MeanRunning(prof) <= 0 {
		t.Fatal("no work observed")
	}
	if PeakParallelism(prof) < 1 {
		t.Fatal("no parallelism observed")
	}
}

func TestRenderProfileAndCompare(t *testing.T) {
	d, p, r1 := simulate(t, sched.NewDMDA())
	_ = p
	r2, err := simulator.Run(d, platform.Mirage(), sched.NewDMDAS(), simulator.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := ReadyProfile(d, r1, 60)
	out := RenderProfile(prof, 8)
	if !strings.Contains(out, "#") || !strings.Contains(out, "running tasks") {
		t.Fatalf("render broken:\n%s", out)
	}
	cmp := CompareProfiles(d, map[string]*simulator.Result{"dmda": r1, "dmdas": r2}, 60)
	if !strings.Contains(cmp, "dmda ") || !strings.Contains(cmp, "dmdas") {
		t.Fatalf("compare broken:\n%s", cmp)
	}
	if !strings.Contains(cmp, "early-phase") {
		t.Fatal("missing early-phase stat")
	}
}

func TestMeanRunningEmpty(t *testing.T) {
	if MeanRunning(nil) != 0 || PeakParallelism(nil) != 0 {
		t.Fatal("empty profile handling")
	}
}

func TestPajeExport(t *testing.T) {
	d, p, r := simulate(t, sched.NewDMDAS())
	g := FromSimulation(d, p.Workers(), labels(p), r)
	out := g.Paje()
	for _, want := range []string{
		"%EventDef PajeDefineContainerType",
		"1 S W WorkerState",
		`2 GEMM S GEMM`,
		"3 0.000000 w9 W 0 gpu0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Paje missing %q", want)
		}
	}
	// One SetState + one ResetState per span.
	if got := strings.Count(out, "\n4 "); got != len(d.Tasks) {
		t.Fatalf("%d SetState events, want %d", got, len(d.Tasks))
	}
	if got := strings.Count(out, "\n5 "); got != len(d.Tasks) {
		t.Fatalf("%d ResetState events, want %d", got, len(d.Tasks))
	}
	// Events are time-ordered.
	prev := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "4 ") && !strings.HasPrefix(line, "5 ") {
			continue
		}
		var tv float64
		var code int
		if _, err := fmt.Sscanf(line, "%d %f", &code, &tv); err != nil {
			t.Fatalf("unparseable event line %q", line)
		}
		if tv < prev-1e-12 {
			t.Fatalf("events out of order at %q", line)
		}
		prev = tv
	}
}
