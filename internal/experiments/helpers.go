package experiments

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// flops returns the factorization flop count for n tiles of size nb.
func flops(n, nb int) float64 { return kernels.CholeskyFlops(n * nb) }

// simGFlops runs one simulation and converts it to GFLOP/s.
func simGFlops(ctx context.Context, d *graph.DAG, p *platform.Platform, s sched.Scheduler,
	nb int, opt simulator.Options) (float64, error) {

	r, err := simulator.RunContext(ctx, d, p, s, opt)
	if err != nil {
		return 0, err
	}
	return r.GFlops(flops(d.P, nb)), nil
}

// repeated runs fn for cfg.Runs seeds and reports mean and σ — the paper's
// "average and standard deviation of 10 runs".
func repeated(cfg Config, fn func(seed int64) (float64, error)) (mean, sigma float64, err error) {
	var vals []float64
	for r := 0; r < cfg.Runs; r++ {
		if err := cfg.Ctx().Err(); err != nil {
			return 0, 0, fmt.Errorf("experiments: cancelled: %w", err)
		}
		v, err := fn(cfg.Seed + int64(r))
		if err != nil {
			return 0, 0, err
		}
		vals = append(vals, v)
	}
	return stats.Mean(vals), stats.StdDev(vals), nil
}

// repeatedSim is repeated specialized to simulations of one (DAG, platform,
// scheduler) configuration over cfg.Runs consecutive seeds. With cfg.Batch
// set the seeds go through the batched replay engine — shared preparation,
// pooled arenas, and a single simulation when the seed provably cannot
// matter — with bit-identical per-seed Results either way.
func repeatedSim(cfg Config, d *graph.DAG, p *platform.Platform,
	mk func() sched.Scheduler, opt simulator.Options) (mean, sigma float64, err error) {

	if !cfg.Batch {
		return repeated(cfg, func(seed int64) (float64, error) {
			o := opt
			o.Seed = seed
			return simGFlops(cfg.Ctx(), d, p, mk(), cfg.NB, o)
		})
	}
	seeds := make([]int64, cfg.Runs)
	for r := range seeds {
		seeds[r] = cfg.Seed + int64(r)
	}
	rs, err := replay.SeedsProbed(cfg.Ctx(), d, p, mk, seeds, opt, 0, nil, cfg.Probe)
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: %w", err)
	}
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = r.GFlops(flops(d.P, cfg.NB))
	}
	return stats.Mean(vals), stats.StdDev(vals), nil
}

// schedulerFactories returns fresh instances of the three headline StarPU
// policies per call (schedulers carry per-run state).
func schedulerFactories() []func() sched.Scheduler {
	return []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewRandom() },
		func() sched.Scheduler { return sched.NewDMDA() },
		func() sched.Scheduler { return sched.NewDMDAS() },
	}
}

// xs converts tile counts to float x-positions.
func xs(sizes []int) []float64 {
	out := make([]float64, len(sizes))
	for i, n := range sizes {
		out[i] = float64(n)
	}
	return out
}

// sweepSchedulers simulates the three paper policies over cfg.Sizes on a
// per-size platform and appends one series per policy (plus σ when
// repeating). overhead selects the actual-execution substitute mode.
func sweepSchedulers(cfg Config, tbl *stats.Table,
	platformFor func(n int) *platform.Platform, overhead bool) error {

	ctx := cfg.Ctx()
	for _, mk := range schedulerFactories() {
		name := mk().Name()
		var means, sigmas []float64
		for _, n := range cfg.Sizes {
			d := graph.Cholesky(n)
			p := platformFor(n)
			if overhead {
				m, s, err := repeatedSim(cfg, d, p, mk, simulator.Options{Overhead: true})
				if err != nil {
					return fmt.Errorf("%s n=%d: %w", name, n, err)
				}
				means = append(means, m)
				sigmas = append(sigmas, s)
			} else if name == "random" {
				// The paper: "results are deterministic for all schedulers
				// except random", which averages 10 seeds in simulation too.
				m, s, err := repeatedSim(cfg, d, p, mk, simulator.Options{})
				if err != nil {
					return fmt.Errorf("%s n=%d: %w", name, n, err)
				}
				means = append(means, m)
				sigmas = append(sigmas, s)
			} else {
				g, err := simGFlops(ctx, d, p, mk(), cfg.NB, simulator.Options{Seed: cfg.Seed})
				if err != nil {
					return fmt.Errorf("%s n=%d: %w", name, n, err)
				}
				means = append(means, g)
				sigmas = append(sigmas, 0)
			}
		}
		tbl.Add(name, means, sigmas)
	}
	return nil
}

// mixedBoundSeries appends the mixed-bound performance curve.
func mixedBoundSeries(cfg Config, tbl *stats.Table, platformFor func(n int) *platform.Platform) error {
	var vals []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		m, err := mixedBound(d, platformFor(n))
		if err != nil {
			return err
		}
		vals = append(vals, m.GFlops(flops(n, cfg.NB)))
	}
	tbl.Add("mixed bound", vals, nil)
	return nil
}
