// Luqr: the "other dense factorizations" extension end to end — the paper's
// conclusion promises to "apply the same methodology to other dense linear
// algebra algorithms"; this example does exactly that for LU and QR:
//
//  1. factorize real matrices in parallel with the LU and QR tile kernels
//     and verify the results;
//  2. schedule the LU and QR task graphs on the extended Mirage model;
//  3. compare the achieved performance to the generalized mixed bound
//     (diagonal-chain constraint: GETRF/TRSM+GEMM for LU,
//     GEQRT/TSQRT+TSMQR for QR).
//
// Run with:  go run ./examples/luqr
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func main() {
	// 1. Real numerics.
	a := matrix.DiagDominant(384, 3)
	_, luRes, err := core.FactorizeLU(a, 48, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LU  384×384 (diag-dominant, no pivoting): residual %.2e\n", luRes)

	b := matrix.RandSymmetric(384, 5)
	_, qrRes, err := core.FactorizeQR(b, 48, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QR  384×384: ‖RᵀR−AᵀA‖/‖AᵀA‖ = %.2e\n", qrRes)

	// 2+3. Scheduling study on the extended Mirage model.
	for _, alg := range []string{"cholesky", "lu", "qr"} {
		p, err := core.PlatformForAlgorithm(alg, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on %s (no-comm), dmdas vs mixed bound:\n", alg, p.Name)
		for _, n := range []int{8, 16, 24} {
			d, err := core.DAGByAlgorithm(alg, n)
			if err != nil {
				log.Fatal(err)
			}
			fl, err := core.FlopsByAlgorithm(alg, n*960)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := core.SimulateDAG(context.Background(), d, fl, p, sched.NewDMDAS(), simulator.Options{Seed: 42})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  n=%2d: %7.1f GFLOP/s, bound %7.1f (%.0f%% of bound, %d tasks)\n",
				n, rep.GFlops, rep.BoundGFlops, 100*rep.Efficiency, len(d.Tasks))
		}
	}
}
