// Command choltune sweeps the tile size for a given matrix dimension on a
// platform model and reports the best nb — the automated version of the
// calibration behind the paper's fixed nb = 960 ("From previous work we are
// getting maximum performance ... with tile size equal to 960").
//
// Usage:
//
//	choltune -n 15360
//	choltune -n 23040 -candidates 240,480,960,1920
//	choltune -n 15360 -platform-file mynode.json -ref-nb 960
//	choltune -n 15360 -cp -cp-budget 50000 -workers 4   # CP headroom at the best nb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/autotune"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/platform"
)

func main() {
	var (
		n        = flag.Int("n", 15360, "matrix dimension")
		cands    = flag.String("candidates", "", "comma-separated tile sizes (default: divisors-based set)")
		platFile = flag.String("platform-file", "", "JSON platform description (default: Mirage)")
		refNB    = flag.Int("ref-nb", platform.TileNB, "tile size the platform model was calibrated at")
		splits   = flag.String("splits", "", "comma-separated F@K mixed-tile specs to sweep at the best uniform nb (e.g. 2@7,2@8; see cholsim -nb-split)")
		seed     = flag.Int64("seed", 42, "jitter seed")
		runs     = flag.Int("runs", 1, "jitter seeds per candidate (seed, seed+1, ...); reports mean ± σ")
		batch    = flag.Bool("batch", true, "run the per-candidate seed replications through the batched replay engine (bit-identical results)")
		progress = flag.Bool("progress", false, "stream a live sweep-progress ticker to stderr (one tick per evaluated candidate)")
		cp       = flag.Bool("cp", false, "after the sweep, search a CP static schedule at the best nb to report remaining static headroom")
		cpBudget = flag.Int("cp-budget", 100000, "CP search node budget")
		workers  = flag.Int("workers", 1, "CP search worker goroutines (any value returns the identical schedule)")
	)
	flag.Parse()

	p := platform.Mirage()
	if *platFile != "" {
		loaded, err := platform.LoadFile(*platFile)
		if err != nil {
			fatal(err)
		}
		p = loaded
	}

	var candidates []int
	if *cands != "" {
		for _, s := range strings.Split(*cands, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 {
				fatal(fmt.Errorf("bad candidate %q", s))
			}
			candidates = append(candidates, v)
		}
	} else {
		candidates = autotune.Divisors(*n, *n/64, *n/2)
		candidates = append(candidates, *n)
	}

	if *runs < 1 {
		fatal(fmt.Errorf("-runs must be >= 1, got %d", *runs))
	}
	seeds := make([]int64, *runs)
	for i := range seeds {
		seeds[i] = *seed + int64(i)
	}
	var probe *obs.Probe
	if *progress {
		probe = obs.NewProbe(1, obs.TickerSink(os.Stderr, "choltune"))
	}
	points, err := autotune.SweepSeedsProbed(context.Background(), *n, candidates, p, *refNB, seeds, *batch, probe)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tile-size sweep for N=%d on %s (dmdas, overhead model, %d seed(s)):\n\n", *n, p.Name, *runs)
	fmt.Printf("%8s %8s %12s %10s %12s\n", "nb", "tiles", "GFLOP/s", "σ", "makespan(s)")
	best := autotune.Best(points)
	for _, pt := range points {
		marker := ""
		if pt.NB == best.NB {
			marker = "   <- best"
		}
		fmt.Printf("%8d %8d %12.1f %10.2f %12.4f%s\n", pt.NB, pt.Tiles, pt.GFlops, pt.Sigma, pt.Makespan, marker)
	}
	fmt.Printf("\nbest tile size: nb=%d (%.1f GFLOP/s)\n", best.NB, best.GFlops)

	// Optional mixed-tile dimension: refine the trailing panels at the best
	// uniform nb and report whether any split beats it.
	if *splits != "" {
		var specs [][2]int
		for _, s := range strings.Split(*splits, ",") {
			sp, err := cliflags.ParseSplit(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			specs = append(specs, [2]int{sp.Factor, sp.FromK})
		}
		pts, err := autotune.SweepSplits(*n, best.NB, specs, p, *refNB, *seed)
		if err != nil {
			fatal(err)
		}
		if len(pts) == 0 {
			fatal(fmt.Errorf("no -splits spec fits nb=%d with %d tiles", best.NB, best.Tiles))
		}
		fmt.Printf("\nmixed-tile sweep at nb=%d:\n\n", best.NB)
		fmt.Printf("%8s %8s %12s %12s\n", "split", "fine-nb", "GFLOP/s", "makespan(s)")
		bestSplit := pts[0]
		for _, pt := range pts {
			if pt.GFlops > bestSplit.GFlops {
				bestSplit = pt
			}
		}
		for _, pt := range pts {
			marker := ""
			if pt == bestSplit {
				marker = "   <- best split"
			}
			fmt.Printf("%5d@%-2d %8d %12.1f %12.4f%s\n",
				pt.Factor, pt.FromK, pt.NB/pt.Factor, pt.GFlops, pt.Makespan, marker)
		}
		if bestSplit.GFlops > best.GFlops {
			fmt.Printf("\nmixed tiles win: %d@%d reaches %.1f GFLOP/s vs %.1f uniform (%+.1f%%)\n",
				bestSplit.Factor, bestSplit.FromK, bestSplit.GFlops, best.GFlops,
				100*(bestSplit.GFlops/best.GFlops-1))
		} else {
			fmt.Printf("\nuniform nb=%d stays best (%.1f GFLOP/s)\n", best.NB, best.GFlops)
		}
	}

	// Optional CP refinement: how much a near-optimal static schedule could
	// still buy at the chosen granularity, in the CP model. The solver cost
	// grows with the tile count, so very fine partitions are refused.
	if *cp {
		const cpMaxTiles = 32
		if best.Tiles > cpMaxTiles {
			fatal(fmt.Errorf("-cp supports up to %d tiles, best nb gives %d: pass -candidates with coarser sizes", cpMaxTiles, best.Tiles))
		}
		scaled := autotune.ScalePlatform(p, *refNB, best.NB)
		r, err := core.OptimizeSchedule(context.Background(), best.Tiles, scaled, *cpBudget, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCP refinement at nb=%d (P=%d, %d workers): %d nodes, exhausted=%v\n",
			best.NB, best.Tiles, *workers, r.Nodes, r.Exhausted)
		fmt.Printf("CP model makespan %.4f s (%.1f GFLOP/s in the comm-oblivious model)\n",
			r.Makespan, platform.GFlops(kernels.CholeskyFlops(*n), r.Makespan))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "choltune:", err)
	os.Exit(1)
}
