// Command cholcluster simulates the tiled Cholesky on a distributed-memory
// cluster of heterogeneous nodes — the paper's §II-B context (ScaLAPACK's
// static 2D block-cyclic owner-computes vs dynamic scheduling) as a CLI.
//
// Usage:
//
//	cholcluster -nodes 4 -tiles 16                      # all three regimes
//	cholcluster -nodes 8 -grid 2x4 -dist 2d -tiles 32
//	cholcluster -nodes 4 -dist dynamic -net-gbps 1      # slow network
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "cluster size")
		tiles   = flag.Int("tiles", 16, "matrix size in tiles of 960")
		distStr = flag.String("dist", "all", "1d | 2d | dynamic | all")
		grid    = flag.String("grid", "", "PxQ process grid for -dist 2d (default: near-square)")
		cpus    = flag.Int("cpus", 3, "CPU cores per node")
		gpus    = flag.Int("gpus", 1, "GPUs per node")
		netGbps = flag.Float64("net-gbps", 10, "network bandwidth per NIC (GB/s)")
		prios   = flag.Bool("priorities", true, "priority-sorted worker queues (dmdas-like)")
	)
	flag.Parse()

	node := platform.Mirage()
	node.Classes[0].Count = *cpus
	node.Classes[1].Count = *gpus
	cluster := &distributed.Cluster{
		Node:      node,
		Nodes:     *nodes,
		Net:       platform.Bus{Enabled: true, BandwidthBps: *netGbps * 1e9, LatencySec: 5e-6},
		TileBytes: node.TileBytes,
	}

	p, q := nearSquare(*nodes)
	if *grid != "" {
		parts := strings.SplitN(*grid, "x", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -grid %q (want PxQ)", *grid))
		}
		var err1, err2 error
		p, err1 = strconv.Atoi(parts[0])
		q, err2 = strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || p*q != *nodes {
			fatal(fmt.Errorf("grid %q does not cover %d nodes", *grid, *nodes))
		}
	}

	regimes := []struct {
		key  string
		name string
		opt  distributed.Options
	}{
		{"1d", "owner-computes 1D row-cyclic",
			distributed.Options{Dist: distributed.RowCyclic{N: *nodes}, Priorities: *prios}},
		{"2d", fmt.Sprintf("owner-computes 2D block-cyclic %dx%d", p, q),
			distributed.Options{Dist: distributed.BlockCyclic{P: p, Q: q}, Priorities: *prios}},
		{"dynamic", "dynamic cluster-wide",
			distributed.Options{Priorities: *prios}},
	}

	d := graph.Cholesky(*tiles)
	f := kernels.CholeskyFlops(*tiles * platform.TileNB)
	m, err := bounds.MixedInt(d, cluster.FlatPlatform())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: %d × (%d CPUs + %d GPUs), %.0f GB/s NICs; n=%d tiles; flat mixed bound %.0f GFLOP/s\n\n",
		*nodes, *cpus, *gpus, *netGbps, *tiles, m.GFlops(f))
	for _, reg := range regimes {
		if *distStr != "all" && *distStr != reg.key {
			continue
		}
		r, err := distributed.Simulate(d, cluster, reg.opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-36s %8.1f GFLOP/s  makespan %.4fs  %5d transfers  %.3fs on NICs\n",
			reg.name, platform.GFlops(f, r.MakespanSec), r.MakespanSec, r.NetTransfers, r.NetSec)
	}
}

// nearSquare factors n into the most square P×Q grid.
func nearSquare(n int) (int, int) {
	best := 1
	for p := 1; p*p <= n; p++ {
		if n%p == 0 {
			best = p
		}
	}
	return best, n / best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholcluster:", err)
	os.Exit(1)
}
