// Package helpers holds callees reached from the hot package's
// //chol:hotpath root: hotcall must carry the hot-path allocation discipline
// across the package boundary and into interface implementations.
package helpers

// Sum is hot-safe: no allocation.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Grow allocates; it is two edges from the hot root ((*Engine).Step →
// localHelper → Grow), so the finding must name the propagation chain.
func Grow(xs []int) []int {
	out := make([]int, len(xs))  // want `make in hot path helpers\.Grow \(reachable from //chol:hotpath \(\*Engine\)\.Step via hot\.localHelper\) allocates`
	scratch := make([]int, 0, 4) //chollint:alloc measured scratch, reused by caller
	_ = scratch
	copy(out, xs)
	return out
}

// BoxySizer implements hot.Sizer; CHA widens the root's interface dispatch
// here, so the boxing conversion is a hot-path finding.
type BoxySizer struct{}

func (BoxySizer) Size(xs []int) int {
	box := any(len(xs)) // want `conversion to interface any in hot path \(BoxySizer\)\.Size \(reachable from //chol:hotpath \(\*Engine\)\.Step\) boxes its operand`
	_ = box
	return len(xs)
}
