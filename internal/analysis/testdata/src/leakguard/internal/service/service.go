// Package service is the leakguard fixture; the directory suffix
// internal/service puts it inside the analyzer's scope. Each start* method
// spawns one goroutine shape: the unguarded infinite loops are flagged, the
// ctx-, close-, and comma-ok-gated ones pass, and the //chollint:leakok
// escape excuses an externally joined pump.
package service

import "context"

type hub struct {
	frames chan int
	done   chan struct{}
}

// startLeaky spawns a literal with an unconditional loop and no exit gate.
func (h *hub) startLeaky() {
	go func() { // want `goroutine may never exit`
		for {
			v := <-h.frames
			_ = v
		}
	}()
}

// startMethod spawns a named method whose loaded body has the same leak.
func (h *hub) startMethod() {
	go h.run() // want `goroutine may never exit`
}

func (h *hub) run() {
	for {
		_ = <-h.frames
	}
}

// startGated selects on ctx.Done — passes.
func (h *hub) startGated(ctx context.Context) {
	go func() {
		for {
			select {
			case v := <-h.frames:
				_ = v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// startRange ranges the channel; close(h.frames) ends it — passes.
func (h *hub) startRange() {
	go func() {
		for v := range h.frames {
			_ = v
		}
	}()
}

// startCommaOk exits on channel close via the comma-ok receive — passes.
func (h *hub) startCommaOk() {
	go func() {
		for {
			v, ok := <-h.frames
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// startDone receives from a done-named channel — passes.
func (h *hub) startDone() {
	go func() {
		for {
			select {
			case v := <-h.frames:
				_ = v
			case <-h.done:
				return
			}
		}
	}()
}

// startBounded's loop has a condition; termination is the loop's own
// business, not leakguard's — passes.
func (h *hub) startBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			h.frames <- i
		}
	}()
}

// startJoined leaks by the analyzer's lights but is joined by its owner's
// Close path; the escape documents that.
func (h *hub) startJoined() {
	go h.pump() //chollint:leakok joined by (*hub).Close in the owning test harness
}

func (h *hub) pump() {
	for {
		_ = <-h.frames
	}
}
