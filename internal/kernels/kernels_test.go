package kernels

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func randTile(nb int, seed int64) *matrix.Tile {
	rng := rand.New(rand.NewSource(seed))
	t := matrix.NewTile(nb)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

// spdTile returns a well-conditioned SPD tile.
func spdTile(nb int, seed int64) *matrix.Tile {
	b := randTile(nb, seed)
	t := matrix.NewTile(nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			s := 0.0
			for k := 0; k < nb; k++ {
				s += b.At(i, k) * b.At(j, k)
			}
			t.Set(i, j, s)
		}
		t.Set(i, i, t.At(i, i)+float64(nb))
	}
	return t
}

func tileToDense(t *matrix.Tile) *matrix.Dense {
	d := matrix.NewDense(t.NB)
	copy(d.Data, t.Data)
	return d
}

func TestPotrfMatchesReference(t *testing.T) {
	for _, nb := range []int{1, 2, 5, 16, 33} {
		a := spdTile(nb, int64(nb))
		want := tileToDense(a)
		if err := matrix.ReferenceCholesky(want); err != nil {
			t.Fatal(err)
		}
		if err := Potrf(a); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		for i := 0; i < nb; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(a.At(i, j)-want.At(i, j)) > 1e-10 {
					t.Fatalf("nb=%d: L(%d,%d) = %g, want %g", nb, i, j, a.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestPotrfLeavesUpperUntouched(t *testing.T) {
	a := spdTile(5, 3)
	a.Set(0, 4, 77) // garbage in the strict upper triangle
	if err := Potrf(a); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 4) != 77 {
		t.Fatal("Potrf modified the strict upper triangle")
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := matrix.NewTile(2)
	a.Set(0, 0, -4)
	a.Set(1, 1, 1)
	if err := Potrf(a); !errors.Is(err, matrix.ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

// naive reference for TRSM: X·Lᵀ = A  ⇒  X = A·L⁻ᵀ.
func refTrsm(l, a *matrix.Tile) *matrix.Tile {
	nb := a.NB
	x := matrix.NewTile(nb)
	for r := 0; r < nb; r++ {
		for j := 0; j < nb; j++ {
			s := a.At(r, j)
			for k := 0; k < j; k++ {
				s -= x.At(r, k) * l.At(j, k)
			}
			x.Set(r, j, s/l.At(j, j))
		}
	}
	return x
}

func TestTrsmSolvesSystem(t *testing.T) {
	nb := 8
	lt := spdTile(nb, 1)
	if err := Potrf(lt); err != nil {
		t.Fatal(err)
	}
	a := randTile(nb, 2)
	orig := a.Clone()
	Trsm(lt, a)
	// Check X·Lᵀ == original A elementwise.
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			// (X·Lᵀ)(i,j) = Σ_k X(i,k)·L(j,k), k ≤ j since L lower.
			s := 0.0
			for k := 0; k <= j; k++ {
				s += a.At(i, k) * lt.At(j, k)
			}
			if math.Abs(s-orig.At(i, j)) > 1e-9 {
				t.Fatalf("X·Lᵀ(%d,%d) = %g, want %g", i, j, s, orig.At(i, j))
			}
		}
	}
}

func TestTrsmMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		nb := 6
		lt := spdTile(nb, seed)
		if err := Potrf(lt); err != nil {
			return false
		}
		a := randTile(nb, seed+100)
		want := refTrsm(lt, a)
		Trsm(lt, a)
		for i := range a.Data {
			if math.Abs(a.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyrkMatchesGemmOnLower(t *testing.T) {
	// SYRK(a, c) must equal GEMM(a, a, c) on the lower triangle.
	f := func(seed int64) bool {
		nb := 7
		a := randTile(nb, seed)
		c1 := spdTile(nb, seed+1)
		c2 := c1.Clone()
		Syrk(a, c1)
		Gemm(a, a, c2)
		for i := 0; i < nb; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(c1.At(i, j)-c2.At(i, j)) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSyrkLeavesUpperUntouched(t *testing.T) {
	a := randTile(4, 1)
	c := randTile(4, 2)
	upper := c.At(0, 3)
	Syrk(a, c)
	if c.At(0, 3) != upper {
		t.Fatal("Syrk modified the strict upper triangle of C")
	}
}

func TestGemmKnownSmall(t *testing.T) {
	// a = [[1,2],[3,4]], b = [[5,6],[7,8]], c = 0 ⇒ c = −a·bᵀ.
	a := matrix.NewTile(2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := matrix.NewTile(2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := matrix.NewTile(2)
	Gemm(a, b, c)
	want := []float64{-(1*5 + 2*6), -(1*7 + 2*8), -(3*5 + 4*6), -(3*7 + 4*8)}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := randTile(3, 5)
	b := randTile(3, 6)
	c := randTile(3, 7)
	orig := c.Clone()
	Gemm(a, b, c)
	// c_new − c_old == −a·bᵀ
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			if math.Abs((orig.At(i, j)-c.At(i, j))-s) > 1e-12 {
				t.Fatal("Gemm did not accumulate −a·bᵀ")
			}
		}
	}
}

func TestTiledCholeskyMatchesReference(t *testing.T) {
	for _, tc := range []struct{ p, nb int }{{1, 4}, {2, 3}, {4, 4}, {5, 2}, {3, 8}} {
		n := tc.p * tc.nb
		a := matrix.RandSPD(n, int64(n))
		tl, err := matrix.FromDense(a, tc.nb)
		if err != nil {
			t.Fatal(err)
		}
		if err := TiledCholesky(tl); err != nil {
			t.Fatalf("p=%d nb=%d: %v", tc.p, tc.nb, err)
		}
		l := tl.ToDense()
		if res := matrix.CholeskyResidual(a, l); res > 1e-12 {
			t.Fatalf("p=%d nb=%d: residual %g", tc.p, tc.nb, res)
		}
	}
}

func TestTiledCholeskyPropagatesIndefiniteError(t *testing.T) {
	a := matrix.RandSymmetric(8, 3) // almost surely indefinite
	tl, err := matrix.FromDense(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := TiledCholesky(tl); !errors.Is(err, matrix.ErrNotPositiveDefinite) {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestTiledCholeskyLaplacian(t *testing.T) {
	a := matrix.Laplacian2D(4) // 16×16
	tl, err := matrix.FromDense(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := TiledCholesky(tl); err != nil {
		t.Fatal(err)
	}
	if res := matrix.CholeskyResidual(a, tl.ToDense()); res > 1e-13 {
		t.Fatalf("residual %g", res)
	}
}

func TestFlopCounts(t *testing.T) {
	nb := 10
	if got, want := GemmFlops(nb), 2000.0; got != want {
		t.Fatalf("GemmFlops = %g, want %g", got, want)
	}
	if got, want := TrsmFlops(nb), 1000.0; got != want {
		t.Fatalf("TrsmFlops = %g, want %g", got, want)
	}
	if got, want := SyrkFlops(nb), 1100.0; got != want {
		t.Fatalf("SyrkFlops = %g, want %g", got, want)
	}
	if got := PotrfFlops(nb); math.Abs(got-(1000.0/3+50+10.0/6)) > 1e-9 {
		t.Fatalf("PotrfFlops = %g", got)
	}
	// The factorization total must equal the sum over the task graph's tiles
	// in the untiled limit: CholeskyFlops(N) ≈ N³/3.
	if got := CholeskyFlops(960); got < 960.0*960*960/3 {
		t.Fatalf("CholeskyFlops too small: %g", got)
	}
}

func TestCholeskyFlopsMatchesTaskSum(t *testing.T) {
	// Sum of per-kernel flops over the DAG task counts must equal
	// CholeskyFlops(p·nb) exactly (the identity the paper's GFLOP/s rely on).
	for _, p := range []int{1, 2, 3, 5, 8} {
		nb := 4
		np := float64(p)
		nT := np * (np - 1) / 2
		nS := nT
		nG := np * (np - 1) * (np - 2) / 6
		sum := np*PotrfFlops(nb) + nT*TrsmFlops(nb) + nS*SyrkFlops(nb) + nG*GemmFlops(nb)
		want := CholeskyFlops(p * nb)
		if math.Abs(sum-want) > 1e-6*want {
			t.Fatalf("p=%d: task-sum flops %g != CholeskyFlops %g", p, sum, want)
		}
	}
}

func TestVectorFlops(t *testing.T) {
	if TrsvFlops(8) != 64 || GemvFlops(8) != 128 {
		t.Fatal("vector kernel flop counts")
	}
}
