// Package experiments is the reproduction harness: one function per table
// and figure of the paper's evaluation (Section V), each returning a
// printable stats.Table (or rendered string) with the same rows/series the
// paper reports.
//
// Where the paper performs *actual executions* on Mirage hardware we cannot
// have (3 Tesla M2070 GPUs), the harness substitutes overhead-and-jitter
// simulation, as recorded in DESIGN.md; genuinely actual executions of the
// real Go kernels on the host CPUs are provided for the homogeneous case
// (Fig3Real). Paper figures driven by the simulation mode (4, 5, 7, 8, 10)
// are exact reproductions of the method.
package experiments

import (
	"context"

	"repro/internal/obs"
	"repro/internal/platform"
)

// Config sets the sweep parameters of the harness.
type Config struct {
	// Context, when non-nil, cancels the experiment between sweep points and
	// inside the underlying simulations and CP searches. Nil means
	// context.Background() (run to completion).
	Context context.Context
	// Sizes are the tile counts n (matrix size = n·NB), the paper's x-axis
	// "Matrix Size (multiple of 960)".
	Sizes []int
	// Runs is the number of repetitions (different jitter seeds) for the
	// actual-execution substitutes; the paper uses 10.
	Runs int
	// NB is the tile size (the paper fixes 960).
	NB int
	// CPMaxTiles bounds the sizes for which the CP search runs (the paper
	// could only obtain good CP solutions "for reasonable matrix sizes").
	CPMaxTiles int
	// CPBudget is the CP node budget per size (deterministic stand-in for
	// the paper's 23-hour budget).
	CPBudget int
	// TriangleKs are the TRSM-distance thresholds swept for Figures 10/11;
	// nil sweeps 1..n−1.
	TriangleKs []int
	// RealSizes / RealNB / RealWorkers parameterize the genuinely-actual
	// homogeneous runs of the real Go kernels (Fig3Real). Pure-Go kernels
	// are far slower than MKL, so the real sweep uses smaller tiles.
	RealSizes   []int
	RealNB      int
	RealWorkers int
	// Seed is the base RNG seed.
	Seed int64
	// Batch routes the repeated-seed simulations through internal/replay's
	// batched engine (shared preparation, arena reuse, seed deduplication).
	// Results are bit-identical to the serial loop — the equivalence suite
	// in internal/replay enforces it — so this is purely a throughput knob.
	Batch bool
	// Probe, when non-nil, receives live batch-progress frames from the
	// repeated-seed replications (replay.SeedsProbed): completed jobs,
	// dedup hits. Nil costs nothing. Only the batched path emits — the
	// serial loop predates the probe plumbing and stays untouched.
	Probe *obs.Probe
}

// Ctx returns the experiment's context, defaulting to context.Background().
func (c Config) Ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Default mirrors the paper's experimental range.
func Default() Config {
	var sizes []int
	for n := 2; n <= 32; n += 2 {
		sizes = append(sizes, n)
	}
	return Config{
		Sizes:       sizes,
		Runs:        10,
		NB:          platform.TileNB,
		CPMaxTiles:  10,
		CPBudget:    120000,
		RealSizes:   []int{2, 4, 6, 8, 10, 12},
		RealNB:      64,
		RealWorkers: 0, // GOMAXPROCS
		Seed:        42,
		Batch:       true,
	}
}

// Quick is a scaled-down configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		Sizes:       []int{2, 4, 6, 8},
		Runs:        3,
		NB:          platform.TileNB,
		CPMaxTiles:  5,
		CPBudget:    8000,
		RealSizes:   []int{2, 4},
		RealNB:      32,
		RealWorkers: 4,
		Seed:        42,
		Batch:       true,
	}
}
