// Package lp implements a small dense linear-programming solver — a
// two-phase primal simplex with Bland's anti-cycling rule — plus a
// branch-and-bound wrapper for (mixed-)integer programs.
//
// It is the substrate behind the paper's makespan lower bounds: the area
// bound and the mixed bound are linear programs over the per-resource-type
// task counts n_rt (Section III-A). Those programs are tiny (a handful of
// variables, constraints independent of the matrix size), so a
// clarity-first dense implementation is the right tool.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Σ a_j x_j ≤ b
	GE            // Σ a_j x_j ≥ b
	EQ            // Σ a_j x_j = b
)

// String names the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Constraint is one row: Coef·x Rel RHS.
type Constraint struct {
	Coef []float64
	Rel  Rel
	RHS  float64
}

// Problem is minimize C·x subject to the constraints, x ≥ 0.
type Problem struct {
	C    []float64
	Rows []Constraint
}

// NewProblem allocates a problem with n variables and the given objective.
func NewProblem(c []float64) *Problem {
	cc := make([]float64, len(c))
	copy(cc, c)
	return &Problem{C: cc}
}

// AddConstraint appends a row. The coefficient slice is copied and, if
// shorter than the variable count, zero-extended.
func (p *Problem) AddConstraint(coef []float64, rel Rel, rhs float64) {
	row := make([]float64, len(p.C))
	copy(row, coef)
	p.Rows = append(p.Rows, Constraint{Coef: row, Rel: rel, RHS: rhs})
}

// Status classifies a solve outcome.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
}

const eps = 1e-9

// tableau is the dense simplex working set: m rows of total+1 columns each
// (RHS in the last slot) carved from one backing array, plus the current
// basis. pivot and iterate are the LP kernels of the bound computations —
// every branch-and-bound node in SolveInteger re-enters them — and run
// allocation-free over this preallocated state.
type tableau struct {
	t     [][]float64
	basis []int
	m     int // constraint rows
	total int // structural + slack + artificial columns (RHS lives at t[i][total])
}

// pivot performs Gauss–Jordan elimination on pivot element (pr, pc) and on
// the cost row, then installs pc into the basis.
//
//chol:hotpath dense elimination kernel; allocs/op pinned by cmd/cholbench bounds/*
func (tb *tableau) pivot(pr, pc int, cost []float64) {
	// Row-local slices let the compiler drop bounds checks in the three
	// elimination loops; the arithmetic and its order are unchanged.
	prow := tb.t[pr]
	pv := prow[pc]
	for j := range prow {
		prow[j] /= pv
	}
	for i := range tb.t {
		if i == pr {
			continue
		}
		ri := tb.t[i]
		f := ri[pc]
		if f == 0 {
			continue
		}
		for j := range ri {
			ri[j] -= f * prow[j]
		}
	}
	f := cost[pc]
	if f != 0 {
		for j := range cost {
			cost[j] -= f * prow[j]
		}
	}
	tb.basis[pr] = pc
}

// iterate runs the simplex on the given cost row restricted to columns
// [0, limit). Returns false if unbounded.
//
//chol:hotpath simplex iteration loop; allocs/op pinned by cmd/cholbench bounds/*
func (tb *tableau) iterate(cost []float64, limit int) bool {
	for iter := 0; iter < 100000; iter++ {
		// Bland: entering = smallest index with negative reduced cost.
		pc := -1
		for j := 0; j < limit; j++ {
			if cost[j] < -eps {
				pc = j
				break
			}
		}
		if pc == -1 {
			return true // optimal
		}
		// Ratio test with Bland tie-breaking.
		pr, best := -1, math.Inf(1)
		for i := 0; i < tb.m; i++ {
			ti := tb.t[i]
			if ti[pc] > eps {
				ratio := ti[tb.total] / ti[pc]
				if ratio < best-eps || (ratio < best+eps && (pr == -1 || tb.basis[i] < tb.basis[pr])) {
					best, pr = ratio, i
				}
			}
		}
		if pr == -1 {
			return false // unbounded
		}
		tb.pivot(pr, pc, cost)
	}
	return true // iteration cap: treat as converged (should not happen with Bland)
}

// Solve minimizes the problem with a two-phase dense simplex.
func Solve(p *Problem) *Solution {
	n := len(p.C)
	m := len(p.Rows)

	// Count slack and artificial columns.
	nSlack := 0
	for _, r := range p.Rows {
		if r.Rel != EQ {
			nSlack++
		}
	}
	// Build rows with b ≥ 0; decide artificials after normalization.
	type row struct {
		a   []float64 // length n + nSlack
		b   float64
		rel Rel
		slk int // slack column index or −1
	}
	rows := make([]row, m)
	rowBack := make([]float64, m*(n+nSlack)) // one backing array for all rows
	si := 0
	for i, r := range p.Rows {
		a := rowBack[i*(n+nSlack) : (i+1)*(n+nSlack) : (i+1)*(n+nSlack)]
		copy(a, r.Coef)
		b := r.RHS
		rel := r.Rel
		if b < 0 { // normalize to b ≥ 0
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		slk := -1
		if r.Rel != EQ {
			slk = n + si
			si++
			if rel == LE {
				a[slk] = 1
			} else {
				a[slk] = -1
			}
		}
		rows[i] = row{a: a, b: b, rel: rel, slk: slk}
	}

	// A row has a ready basic variable only if it is LE with +1 slack.
	nArt := 0
	for _, r := range rows {
		if !(r.rel == LE && r.slk >= 0) {
			nArt++
		}
	}
	total := n + nSlack + nArt

	// Tableau: m rows × (total+1) carved from one backing array — the dense
	// pivot walks rows sequentially, so contiguity keeps it in cache and
	// replaces m row allocations with one.
	t := make([][]float64, m)
	tBack := make([]float64, m*(total+1))
	basis := make([]int, m)
	ai := 0
	for i, r := range rows {
		t[i] = tBack[i*(total+1) : (i+1)*(total+1) : (i+1)*(total+1)]
		copy(t[i], r.a)
		t[i][total] = r.b
		if r.rel == LE && r.slk >= 0 {
			basis[i] = r.slk
		} else {
			col := n + nSlack + ai
			ai++
			t[i][col] = 1
			basis[i] = col
		}
	}

	tb := &tableau{t: t, basis: basis, m: m, total: total}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		w := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			w[j] = 1
		}
		// Make w consistent with the basis (eliminate basic artificials).
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				for j := range w {
					w[j] -= t[i][j]
				}
			}
		}
		if !tb.iterate(w, total) {
			return &Solution{Status: Infeasible} // phase 1 can't be unbounded; be safe
		}
		if -w[total] > 1e-7 { // w row stores −value in RHS slot after elimination
			return &Solution{Status: Infeasible}
		}
		// Drive any remaining artificial out of the basis if possible.
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				moved := false
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(t[i][j]) > eps {
						tb.pivot(i, j, w)
						moved = true
						break
					}
				}
				if !moved {
					// Redundant row: zero it so it can't constrain phase 2.
					for j := range t[i] {
						t[i][j] = 0
					}
				}
			}
		}
	}

	// Phase 2: original objective over structural + slack columns only.
	cost := make([]float64, total+1)
	copy(cost, p.C)
	for i := 0; i < m; i++ {
		if basis[i] < n && cost[basis[i]] != 0 {
			f := cost[basis[i]]
			for j := range cost {
				cost[j] -= f * t[i][j]
			}
		}
	}
	if !tb.iterate(cost, n+nSlack) {
		return &Solution{Status: Unbounded}
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Obj: obj}
}

func sortedKeys(m map[int]float64) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// SolveInteger minimizes the problem with the variables listed in intVars
// constrained to non-negative integers, via LP-relaxation branch and bound
// (best-first on the relaxation objective). maxNodes caps the search; if
// exceeded, the best incumbent found is returned with an error.
func SolveInteger(p *Problem, intVars []int, maxNodes int) (*Solution, error) {
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	isInt := make(map[int]bool, len(intVars))
	for _, v := range intVars {
		if v < 0 || v >= len(p.C) {
			return nil, fmt.Errorf("lp: integer variable %d out of range", v)
		}
		isInt[v] = true
	}

	// Nodes carry per-variable bound maps rather than accumulated constraint
	// rows, so a subproblem's LP has at most two extra rows per integer
	// variable no matter how deep the search goes.
	type node struct {
		lo, hi map[int]float64
	}
	withBound := func(m map[int]float64, v int, b float64, tighterIsLarger bool) map[int]float64 {
		out := make(map[int]float64, len(m)+1)
		for k, x := range m {
			out[k] = x
		}
		if old, ok := out[v]; ok {
			if tighterIsLarger && b < old {
				b = old
			}
			if !tighterIsLarger && b > old {
				b = old
			}
		}
		out[v] = b
		return out
	}

	var best *Solution
	stack := []node{{}}
	nodes := 0
	for len(stack) > 0 {
		nodes++
		if nodes > maxNodes {
			if best != nil {
				return best, fmt.Errorf("lp: node budget exhausted; returning incumbent")
			}
			return nil, fmt.Errorf("lp: node budget exhausted with no incumbent")
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Emit bound rows in sorted variable order: map iteration order is
		// random per run, and row order steers the simplex through different
		// (equally optimal) pivot paths — sorting keeps subproblem solves,
		// and hence returned vertices on degenerate optima, deterministic.
		rows := make([]Constraint, 0, len(p.Rows)+len(nd.lo)+len(nd.hi))
		rows = append(rows, p.Rows...)
		for _, v := range sortedKeys(nd.lo) {
			coef := make([]float64, len(p.C))
			coef[v] = 1
			rows = append(rows, Constraint{Coef: coef, Rel: GE, RHS: nd.lo[v]})
		}
		for _, v := range sortedKeys(nd.hi) {
			coef := make([]float64, len(p.C))
			coef[v] = 1
			rows = append(rows, Constraint{Coef: coef, Rel: LE, RHS: nd.hi[v]})
		}
		sub := &Problem{C: p.C, Rows: rows}
		sol := Solve(sub)
		if sol.Status != Optimal {
			continue
		}
		if best != nil && sol.Obj >= best.Obj-1e-9 {
			continue // bound
		}
		// Find most fractional integer variable.
		frac, fv := -1.0, -1
		for v := range p.C {
			if !isInt[v] {
				continue
			}
			f := sol.X[v] - math.Floor(sol.X[v])
			d := math.Min(f, 1-f)
			if d > 1e-6 && d > frac {
				frac, fv = d, v
			}
		}
		if fv == -1 {
			// Integral: update incumbent (round to kill 1e−9 noise).
			xi := make([]float64, len(sol.X))
			copy(xi, sol.X)
			for v := range isInt {
				xi[v] = math.Round(xi[v])
			}
			best = &Solution{Status: Optimal, X: xi, Obj: sol.Obj}
			continue
		}
		lo := math.Floor(sol.X[fv])
		stack = append(stack,
			node{lo: withBound(nd.lo, fv, lo+1, true), hi: nd.hi},
			node{lo: nd.lo, hi: withBound(nd.hi, fv, lo, false)},
		)
	}
	if best == nil {
		return &Solution{Status: Infeasible}, nil
	}
	return best, nil
}
