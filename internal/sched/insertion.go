package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
)

// HEFTInsertion computes a static HEFT schedule with the *insertion-based*
// policy of the original HEFT paper (Topcuoglu et al.): instead of appending
// to the end of each worker's schedule, a task may be placed into an idle
// gap between already-scheduled tasks when the gap is long enough. This is
// the classic refinement over the end-append variant in static.go; both are
// provided so the difference can be measured (it is one of the DESIGN.md
// ablations).
func HEFTInsertion(d *graph.DAG, p *platform.Platform) (*StaticSchedule, error) {
	bl, err := d.BottomLevels(func(t *graph.Task) float64 {
		return p.AverageTime(t.Kind)
	})
	if err != nil {
		return nil, err
	}
	order := make([]int, len(d.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bl[order[a]] > bl[order[b]] })

	type iv struct{ s, e float64 }
	nW := p.Workers()
	booked := make([][]iv, nW)
	start := make([]float64, len(d.Tasks))
	finish := make([]float64, len(d.Tasks))
	worker := make([]int, len(d.Tasks))
	scheduled := make([]bool, len(d.Tasks))

	// earliestSlot finds the earliest start ≥ ready on worker w for a task of
	// duration exec, considering gaps between booked intervals.
	earliestSlot := func(w int, ready, exec float64) float64 {
		ivs := booked[w]
		cur := ready
		for _, b := range ivs {
			if cur+exec <= b.s+1e-12 {
				return cur // fits in the gap before b
			}
			if b.e > cur {
				cur = b.e
			}
		}
		return cur
	}
	insert := func(w int, s, e float64) {
		ivs := booked[w]
		pos := sort.Search(len(ivs), func(i int) bool { return ivs[i].s >= s })
		ivs = append(ivs, iv{})
		copy(ivs[pos+1:], ivs[pos:])
		ivs[pos] = iv{s, e}
		booked[w] = ivs
	}

	for _, id := range order {
		t := d.Tasks[id]
		ready := 0.0
		for _, pr := range t.Pred {
			if !scheduled[pr] {
				return nil, fmt.Errorf("sched: insertion HEFT order violated dependency %d→%d", pr, id)
			}
			if finish[pr] > ready {
				ready = finish[pr]
			}
		}
		bestW, bestEFT := -1, math.Inf(1)
		for w := 0; w < nW; w++ {
			exec := p.Time(p.WorkerClass(w), t.Kind)
			if math.IsInf(exec, 1) {
				continue
			}
			if eft := earliestSlot(w, ready, exec) + exec; eft < bestEFT {
				bestEFT, bestW = eft, w
			}
		}
		if bestW == -1 {
			return nil, fmt.Errorf("sched: task %s runnable nowhere", t.Name())
		}
		exec := p.Time(p.WorkerClass(bestW), t.Kind)
		st := bestEFT - exec
		worker[id], start[id], finish[id] = bestW, st, bestEFT
		insert(bestW, st, bestEFT)
		scheduled[id] = true
	}
	mk := 0.0
	for _, f := range finish {
		if f > mk {
			mk = f
		}
	}
	return &StaticSchedule{Worker: worker, Start: start, EstMakespan: mk}, nil
}
