// Package load type-checks Go packages for chollint without any dependency
// outside the standard library. Package discovery and dependency export
// data both come from the go command (`go list -deps -export`), so loading
// works offline, hits the build cache, and never compiles anything the
// regular build would not.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

type listJSON struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Packages loads every package matched by the go list patterns. The
// matched packages are parsed and type-checked from source; their
// dependencies are imported from the build cache's export data.
func Packages(patterns []string) ([]*Package, error) {
	targets, err := goList(append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...))
	if err != nil {
		return nil, err
	}
	deps, err := goList(append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		out = append(out, pkg)
	}
	return out, nil
}

// ExportLookup is the export-data resolver handed to the gc importer: it
// maps an import path as written in source to a reader over compiler
// export data.
type ExportLookup func(path string) (io.ReadCloser, error)

// Importer builds a caching gc-export-data importer over a lookup.
func Importer(fset *token.FileSet, lookup ExportLookup) types.Importer {
	return importer.ForCompiler(fset, "gc", importer.Lookup(lookup))
}

func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return Importer(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// TypeCheck parses the given files and type-checks them as one package,
// resolving imports through imp. Hard type errors abort: chollint analyzes
// only code that already compiles.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func goList(args []string) ([]listJSON, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var out []listJSON
	dec := json.NewDecoder(&stdout)
	for {
		var p listJSON
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}
