.PHONY: build test lint verify bench bench-pinned smoke-live serve

build:
	go build ./...

test:
	go test ./...

# chollint: the repo's domain-specific static-analysis suite (determinism,
# hot-path allocation, context and recorder plumbing, interprocedural purity
# proofs and leak checks — see internal/analysis and DESIGN.md). -time pins
# the load/analyze wall-clock on stderr so a slow regression in the
# whole-program engine is visible in every lint run. Also runnable through
# the stock vet driver:
#   go build -o bin/chollint ./cmd/chollint && go vet -vettool=$$PWD/bin/chollint ./...
lint:
	go run ./cmd/chollint -time ./...

# Tier-1 gate (ROADMAP.md): build + vet + chollint + race-enabled tests +
# cholbench smoke.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Full pinned benchmark suite (see "Benchmarking & perf trajectory" in
# README.md). Compare against a previous PR's file with -baseline-from.
bench-pinned:
	go run ./cmd/cholbench -out BENCH_PR10.json -baseline-from BENCH_PR8.json

# Live-observability smoke: cholserved up, one recorded run, SSE frames and
# phase histograms asserted end to end (also a verify.yml step).
smoke-live:
	./scripts/smoke_live.sh

serve:
	go run ./cmd/cholserved
