package experiments

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/trace"
)

// workerLabels names the workers "cpu0..cpuN, gpu0..".
func workerLabels(p *platform.Platform) []string {
	var out []string
	for _, c := range p.Classes {
		for i := 0; i < c.Count; i++ {
			out = append(out, fmt.Sprintf("%s%d", c.Name, i))
		}
	}
	return out
}

// Fig12 reproduces Figure 12: GPU Gantt traces of dmda vs dmdas on an 8×8
// tiled matrix, showing dmdas's early GPU idle time (its bias toward the
// critical path over parallelism-generating tasks, Section VI-A). Returns
// the ASCII rendering plus GPU idle fractions.
func Fig12(cfg Config) (string, error) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	gpus := p.ClassWorkers(1)
	var b strings.Builder
	b.WriteString("# Figure 12 — GPU traces for 8×8 tiles\n")
	results := map[string]*simulator.Result{}
	for _, mk := range []func() sched.Scheduler{sched.NewDMDA, sched.NewDMDAS} {
		s := mk()
		r, err := simulator.RunContext(cfg.Ctx(), d, p, s, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return "", err
		}
		results[s.Name()] = r
		g := trace.FromSimulation(d, p.Workers(), workerLabels(p), r)
		fmt.Fprintf(&b, "\n(%s) GPU idle fraction: %.1f%%\n", s.Name(), 100*g.GroupIdleFrac(gpus))
		b.WriteString(g.ASCII(100, gpus))
	}
	// The §VI-A diagnosis quantified: early-phase effective parallelism.
	b.WriteString("\nparallelism profile (§VI-A):\n")
	b.WriteString(trace.CompareProfiles(d, results, 100))
	return b.String(), nil
}

// Fig12SVG renders the full (all-worker) traces of both schedulers as SVG
// documents keyed by scheduler name.
func Fig12SVG(cfg Config) (map[string]string, error) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	out := map[string]string{}
	for _, mk := range []func() sched.Scheduler{sched.NewDMDA, sched.NewDMDAS} {
		s := mk()
		r, err := simulator.RunContext(cfg.Ctx(), d, p, s, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		g := trace.FromSimulation(d, p.Workers(), workerLabels(p), r)
		out[s.Name()] = g.SVG(1200, 22)
	}
	return out, nil
}

// Fig1 reproduces Figure 1: the task graph of the 5×5-tile Cholesky
// decomposition, rendered in Graphviz DOT (35 tasks: 5 POTRF + 10 TRSM +
// 10 SYRK + 10 GEMM).
func Fig1(cfg Config) string {
	return graph.Cholesky(5).DOT()
}
