// Package notcore is outside the deterministic core: detranged must stay
// silent here even on an order-sensitive map range.
package notcore

func OrderSensitiveButOutsideCore(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // no diagnostic: package path is not core
		out = append(out, v)
	}
	return out
}
