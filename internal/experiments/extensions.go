package experiments

import (
	"fmt"
	stdruntime "runtime"

	"repro/internal/autotune"
	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// Extension experiments — beyond the paper's figures, following its
// conclusion ("apply the same methodology to other dense linear algebra
// algorithms") and its stated ongoing work (a partially data-aware CP).

// algoFlops returns the factorization flop total for the algorithm.
func algoFlops(alg string, n, nb int) float64 {
	switch alg {
	case "lu":
		return kernels.LUFlops(n * nb)
	case "qr":
		return kernels.QRFlops(n * nb)
	default:
		return kernels.CholeskyFlops(n * nb)
	}
}

// OtherFactorizations runs the paper's methodology on LU and QR: dmdas
// performance vs the generalized mixed bound on the extended Mirage model
// (communication removed, as in Figures 7/10).
func OtherFactorizations(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Extension — LU and QR under the paper's methodology (dmdas vs mixed bound)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	p := platform.WithoutCommunication(platform.MirageExtended())
	builders := map[string]func(int) *graph.DAG{"lu": graph.LU, "qr": graph.QR}
	for _, alg := range []string{"lu", "qr"} {
		var perf, bound []float64
		for _, n := range cfg.Sizes {
			d := builders[alg](n)
			f := algoFlops(alg, n, cfg.NB)
			r, err := simulator.RunContext(cfg.Ctx(), d, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", alg, n, err)
			}
			perf = append(perf, r.GFlops(f))
			m, err := bounds.MixedInt(d, p)
			if err != nil {
				return nil, err
			}
			bound = append(bound, m.GFlops(f))
		}
		tbl.Add(alg+" dmdas", perf, nil)
		tbl.Add(alg+" mixed bound", bound, nil)
	}
	return tbl, nil
}

// CommAwareCP evaluates the data-aware CP extension: schedules optimized
// with and without the one-hop communication penalty, both injected into
// the *communication-enabled* simulator — the setting where the paper found
// oblivious CP schedules to "add lots of idle time on resources during data
// transfer".
func CommAwareCP(cfg Config) (*stats.Table, error) {
	var sizes []int
	for _, n := range cfg.Sizes {
		if n <= cfg.CPMaxTiles {
			sizes = append(sizes, n)
		}
	}
	tbl := &stats.Table{
		Title:  "Extension — communication-aware CP vs oblivious CP, injected with PCI model on",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(sizes),
	}
	model := platform.WithoutCommunication(platform.Mirage()) // CP's internal model
	target := platform.Mirage()                               // evaluation platform
	hop := target.Bus.TransferTime(target.TileBytes)

	var dm, obl, aware []float64
	for _, n := range sizes {
		d := graph.Cholesky(n)
		f := flops(n, cfg.NB)

		g, err := simGFlops(cfg.Ctx(), d, target, sched.NewDMDAS(), cfg.NB, simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		dm = append(dm, g)

		// Warm start from the dmdas schedule in the CP's own (no-comm) model.
		warmRes, err := simulator.RunContext(cfg.Ctx(), d, model, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		warm := &sched.StaticSchedule{
			Worker: warmRes.Worker, Start: warmRes.Start, EstMakespan: warmRes.MakespanSec,
		}

		ro, err := cpsolve.SolveContext(cfg.Ctx(), d, model, cpsolve.Options{
			NodeBudget: cfg.CPBudget, Beam: 3, WarmStart: warm,
		})
		if err != nil {
			return nil, err
		}
		so, err := simulator.RunContext(cfg.Ctx(), d, target, ro.Schedule.Scheduler("cp-oblivious"), simulator.Options{})
		if err != nil {
			return nil, err
		}
		obl = append(obl, so.GFlops(f))

		ra, err := cpsolve.SolveContext(cfg.Ctx(), d, model, cpsolve.Options{
			NodeBudget: cfg.CPBudget, Beam: 3, CommHopSec: hop, WarmStart: warm,
		})
		if err != nil {
			return nil, err
		}
		sa, err := simulator.RunContext(cfg.Ctx(), d, target, ra.Schedule.Scheduler("cp-aware"), simulator.Options{})
		if err != nil {
			return nil, err
		}
		aware = append(aware, sa.GFlops(f))
	}
	tbl.Add("dmdas", dm, nil)
	tbl.Add("CP oblivious", obl, nil)
	tbl.Add("CP comm-aware", aware, nil)
	return tbl, nil
}

// WorkStealing quantifies pull-based load balancing layered on the push
// policies (StarPU's ws family): random with and without stealing vs dmda,
// on the no-communication Mirage model.
func WorkStealing(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Ablation — work stealing on top of the random policy",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	p := platform.WithoutCommunication(platform.Mirage())
	variants := []struct {
		name  string
		mk    func() sched.Scheduler
		steal bool
	}{
		{"random", sched.NewRandom, false},
		{"random+ws", sched.NewRandom, true},
		{"dmda", sched.NewDMDA, false},
	}
	for _, v := range variants {
		var vals, sigs []float64
		for _, n := range cfg.Sizes {
			d := graph.Cholesky(n)
			m, s, err := repeatedSim(cfg, d, p, v.mk,
				simulator.Options{WorkStealing: v.steal})
			if err != nil {
				return nil, err
			}
			vals = append(vals, m)
			sigs = append(sigs, s)
		}
		tbl.Add(v.name, vals, sigs)
	}
	return tbl, nil
}

// MemorySweep measures the impact of device memory capacity: dmda on Mirage
// with the per-GPU memory restricted to a fraction of the working set
// (tiles of 7.37 MB; a 12×12-tile matrix has 78 distinct tiles). The paper's
// machine has 6 GB GPUs (never binding); this ablation shows the cliff a
// smaller device hits and the write-back traffic behind it.
func MemorySweep(cfg Config, n int, capacities []int) (*stats.Table, error) {
	if n <= 0 {
		n = 16
	}
	if capacities == nil {
		capacities = []int{8, 16, 32, 64, 0}
	}
	var xsv []float64
	for _, c := range capacities {
		xsv = append(xsv, float64(c))
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Ablation — GPU memory capacity sweep (n=%d tiles; 0 = unlimited)", n),
		XLabel: "capacity(tiles)",
		YLabel: "GFLOP/s",
		Xs:     xsv,
	}
	d := graph.Cholesky(n)
	f := flops(n, cfg.NB)
	var perf, evics, wbs []float64
	for _, c := range capacities {
		p := platform.Mirage()
		if c > 0 {
			p.Classes[1].MemoryBytes = float64(c) * p.TileBytes
		}
		r, err := simulator.RunContext(cfg.Ctx(), d, p, sched.NewDMDA(), simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		perf = append(perf, r.GFlops(f))
		evics = append(evics, float64(r.Evictions))
		wbs = append(wbs, float64(r.Writebacks))
	}
	tbl.Add("dmda", perf, nil)
	tbl.Add("evictions", evics, nil)
	tbl.Add("writebacks", wbs, nil)
	return tbl, nil
}

// Distributed extends the study to a cluster (Section II-B's context):
// ScaLAPACK-style owner-computes under 1D and 2D block-cyclic layouts vs
// fully dynamic cluster-wide scheduling, on 4 heterogeneous nodes
// (3 CPUs + 1 GPU each, 10 GB/s network), against the flat mixed bound.
func Distributed(cfg Config) (*stats.Table, error) {
	node := platform.Mirage()
	node.Classes[0].Count = 3
	node.Classes[1].Count = 1
	cluster := &distributed.Cluster{
		Node:      node,
		Nodes:     4,
		Net:       platform.Bus{Enabled: true, BandwidthBps: 10e9, LatencySec: 5e-6},
		TileBytes: node.TileBytes,
	}
	tbl := &stats.Table{
		Title:  "Extension — distributed memory: owner-computes vs dynamic (4 heterogeneous nodes)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	variants := []struct {
		name string
		opt  distributed.Options
	}{
		{"owner 1D row-cyclic", distributed.Options{Dist: distributed.RowCyclic{N: 4}, Priorities: true}},
		{"owner 2D block-cyclic", distributed.Options{Dist: distributed.BlockCyclic{P: 2, Q: 2}, Priorities: true}},
		{"dynamic", distributed.Options{Priorities: true}},
	}
	flat := cluster.FlatPlatform()
	series := make([][]float64, len(variants))
	var bound []float64
	for _, n := range cfg.Sizes {
		d := graph.Cholesky(n)
		f := flops(n, cfg.NB)
		for vi, v := range variants {
			r, err := distributed.Simulate(d, cluster, v.opt)
			if err != nil {
				return nil, fmt.Errorf("distributed %s n=%d: %w", v.name, n, err)
			}
			series[vi] = append(series[vi], platform.GFlops(f, r.MakespanSec))
		}
		m, err := bounds.MixedInt(d, flat)
		if err != nil {
			return nil, err
		}
		bound = append(bound, m.GFlops(f))
	}
	for vi, v := range variants {
		tbl.Add(v.name, series[vi], nil)
	}
	tbl.Add("mixed bound (flat)", bound, nil)
	return tbl, nil
}

// TileSizeSweep reproduces the tile-size study behind the paper's fixed
// nb = 960 ("From previous work we are getting maximum performance ... with
// tile size equal to 960"): dmdas performance vs nb for a fixed matrix size
// under the overhead model, showing the small-tile overhead cliff and the
// large-tile parallelism starvation.
func TileSizeSweep(cfg Config, n int, candidates []int) (*stats.Table, error) {
	if n <= 0 {
		n = 15360 // 16 tiles of 960
	}
	if candidates == nil {
		candidates = []int{120, 192, 240, 320, 480, 640, 960, 1920, 3840}
	}
	pts, err := autotune.Sweep(n, candidates, platform.Mirage(), platform.TileNB, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Tile-size autotuning (N=%d, dmdas, overhead model)", n),
		XLabel: "nb",
		YLabel: "GFLOP/s",
	}
	var perf []float64
	for _, p := range pts {
		tbl.Xs = append(tbl.Xs, float64(p.NB))
		perf = append(perf, p.GFlops)
	}
	tbl.Add("dmdas", perf, nil)
	return tbl, nil
}

// dagFlops sums the per-kernel flop counts over a DAG's tasks (for GFLOP/s
// of irregular DAGs, where closed-form totals do not apply).
func dagFlops(d *graph.DAG, nb int) float64 {
	perKind := map[graph.Kind]float64{
		graph.POTRF: kernels.PotrfFlops(nb),
		graph.TRSM:  kernels.TrsmFlops(nb),
		graph.SYRK:  kernels.SyrkFlops(nb),
		graph.GEMM:  kernels.GemmFlops(nb),
	}
	total := 0.0
	for kind, n := range d.CountByKind() {
		total += float64(n) * perKind[kind]
	}
	return total
}

// Banded runs the paper's announced "irregular application" direction on
// block-banded Cholesky: for a fixed matrix size, narrower bands mean fewer
// tasks and less parallelism — the bound gap widens as the DAG thins, and
// GPUs starve (the chain dominates).
func Banded(cfg Config, n int, bandwidths []int) (*stats.Table, error) {
	if n <= 0 {
		n = 32
	}
	if bandwidths == nil {
		bandwidths = []int{1, 2, 4, 8, 16, n - 1}
	}
	var xsv []float64
	for _, bw := range bandwidths {
		xsv = append(xsv, float64(bw))
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Extension — block-banded Cholesky (n=%d tiles; bw=n−1 is dense)", n),
		XLabel: "bandwidth(tiles)",
		YLabel: "GFLOP/s",
		Xs:     xsv,
	}
	p := unrelatedSimPlatform(n)
	var perf, bound, tasks []float64
	for _, bw := range bandwidths {
		d := graph.BandedCholesky(n, bw)
		f := dagFlops(d, cfg.NB)
		r, err := simulator.RunContext(cfg.Ctx(), d, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		perf = append(perf, platform.GFlops(f, r.MakespanSec))
		m, err := bounds.MixedInt(d, p)
		if err != nil {
			return nil, err
		}
		bound = append(bound, m.GFlops(f))
		tasks = append(tasks, float64(len(d.Tasks)))
	}
	tbl.Add("dmdas", perf, nil)
	tbl.Add("mixed bound", bound, nil)
	tbl.Add("tasks", tasks, nil)
	return tbl, nil
}

// Batched measures throughput of several concurrent factorizations — a
// batched workload interleaved by the dynamic scheduler vs running the same
// matrices back to back. Interleaving fills the idle slots each individual
// DAG's chain leaves on the GPUs, so the batch finishes faster than the sum
// of its parts on small matrices.
func Batched(cfg Config, n, batch int) (*stats.Table, error) {
	if n <= 0 {
		n = 8
	}
	if batch <= 0 {
		batch = 4
	}
	p := unrelatedSimPlatform(n)
	single := graph.Cholesky(n)
	dags := make([]*graph.DAG, batch)
	for i := range dags {
		dags[i] = graph.Cholesky(n)
	}
	merged := graph.Merge(dags...)
	f := flops(n, cfg.NB)

	seq, err := simulator.RunContext(cfg.Ctx(), single, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	bat, err := simulator.RunContext(cfg.Ctx(), merged, p, sched.NewDMDAS(), simulator.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tbl := &stats.Table{
		Title:  fmt.Sprintf("Extension — batched factorizations (%d × n=%d, dmdas)", batch, n),
		XLabel: "batch",
		YLabel: "GFLOP/s",
		Xs:     []float64{1, float64(batch)},
	}
	tbl.Add("aggregate throughput", []float64{
		platform.GFlops(f, seq.MakespanSec),
		platform.GFlops(f*float64(batch), bat.MakespanSec),
	}, nil)
	return tbl, nil
}

// PrioritySource is the dmdas priority ablation: the paper computes bottom
// levels from *fastest* execution times; classic HEFT uses platform
// averages. Both run on the no-comm Mirage model.
func PrioritySource(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Ablation — dmdas priority source: fastest times (paper) vs average times (HEFT)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	variants := []func() sched.Scheduler{sched.NewDMDAS, sched.NewDMDASAvgPrio}
	for _, mk := range variants {
		var vals []float64
		name := mk().Name()
		for _, n := range cfg.Sizes {
			d := graph.Cholesky(n)
			g, err := simGFlops(cfg.Ctx(), d, unrelatedSimPlatform(n), mk(), cfg.NB,
				simulator.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			vals = append(vals, g)
		}
		tbl.Add(name, vals, nil)
	}
	return tbl, nil
}

// SimulationFidelity reproduces the paper's methodological keystone (the
// StarPU+SimGrid validation: "resulting simulated times are very close to
// actual measurements"): calibrate the real Go kernels on this host, run a
// real homogeneous execution, simulate the same configuration with the
// calibrated model, and report both makespans side by side.
func SimulationFidelity(cfg Config) (*stats.Table, error) {
	nb := cfg.RealNB
	workers := cfg.RealWorkers
	if workers <= 0 {
		workers = 4
	}
	// The simulator's workers are truly parallel; the real goroutines only
	// are when the host has the cores. Model what the hardware can deliver.
	simWorkers := workers
	if ncpu := stdruntime.NumCPU(); simWorkers > ncpu {
		simWorkers = ncpu
	}
	host := platform.CalibratedHost(simWorkers, nb, 5)
	tbl := &stats.Table{
		Title: fmt.Sprintf("Simulation fidelity — real Go execution vs calibrated simulation (%d workers, nb=%d)",
			workers, nb),
		XLabel: "tiles",
		YLabel: "makespan(ms)",
		Xs:     xs(cfg.RealSizes),
	}
	var realMs, simMs []float64
	for _, n := range cfg.RealSizes {
		// Real execution (median of Runs to tame scheduler noise).
		var times []float64
		for rep := 0; rep < cfg.Runs; rep++ {
			a := matrix.RandSPD(n*nb, cfg.Seed+int64(rep))
			tl, err := matrix.FromDense(a, nb)
			if err != nil {
				return nil, err
			}
			r, err := runtime.Factor(tl, runtime.Options{Workers: workers, Policy: runtime.Priority})
			if err != nil {
				return nil, err
			}
			times = append(times, r.Seconds)
		}
		realMs = append(realMs, stats.Median(times)*1e3)
		// Calibrated simulation of the same configuration.
		sim, err := simulator.RunContext(cfg.Ctx(), graph.Cholesky(n), host, sched.NewDMDAS(), simulator.Options{})
		if err != nil {
			return nil, err
		}
		simMs = append(simMs, sim.MakespanSec*1e3)
	}
	tbl.Add("real", realMs, nil)
	tbl.Add("simulated", simMs, nil)
	return tbl, nil
}

// Variants compares the right-looking (Algorithm 1) and left-looking tiled
// Cholesky submission orders under dmdas. The measured outcome is a finding
// in itself: with StarPU-style dataflow dependency inference the two
// variants induce the *same* task graph (the true data dependencies between
// kernel instances are identical, and the commutative updates of each tile
// serialize in the same k-order), so a dependency-driven runtime erases the
// classic right/left-looking distinction — performance is identical. Only
// submission-order-driven runtimes (plain FIFO queues with no priorities)
// can tell the two apart.
func Variants(cfg Config) (*stats.Table, error) {
	tbl := &stats.Table{
		Title:  "Extension — right- vs left-looking Cholesky (identical DAGs under dataflow inference)",
		XLabel: "tiles",
		YLabel: "GFLOP/s",
		Xs:     xs(cfg.Sizes),
	}
	builders := []struct {
		name string
		mk   func(int) *graph.DAG
	}{
		{"right-looking", graph.Cholesky},
		{"left-looking", graph.CholeskyLeftLooking},
	}
	for _, bd := range builders {
		var vals []float64
		for _, n := range cfg.Sizes {
			g, err := simGFlops(cfg.Ctx(), bd.mk(n), unrelatedSimPlatform(n), sched.NewDMDAS(),
				cfg.NB, simulator.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			vals = append(vals, g)
		}
		tbl.Add(bd.name, vals, nil)
	}
	return tbl, nil
}
