package bounds_test

import (
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func TestExplainReproducesPaperTRSMObservation(t *testing.T) {
	// The paper's §V-C3: the mixed bound maps a significant share of TRSMs
	// to CPUs while dmdas allocates very few there. Explain must surface
	// exactly that deviation on a medium matrix.
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(12)
	r, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := bounds.Explain(d, p, r.Worker, r.BusySec, r.MakespanSec)
	if err != nil {
		t.Fatal(err)
	}
	var cpuTrsm bounds.ClassKindCell
	for _, c := range ex.Cells {
		if c.Class == "cpu" && c.Kind == graph.TRSM {
			cpuTrsm = c
		}
	}
	if cpuTrsm.LPOptimal <= float64(cpuTrsm.Scheduled) {
		t.Fatalf("expected the LP to want more TRSMs on CPUs: scheduled %d, LP %g",
			cpuTrsm.Scheduled, cpuTrsm.LPOptimal)
	}
	// Task conservation per kind across classes.
	counts := d.CountByKind()
	for _, k := range d.Kinds() {
		sched, lp := 0, 0.0
		for _, c := range ex.Cells {
			if c.Kind == k {
				sched += c.Scheduled
				lp += c.LPOptimal
			}
		}
		if sched != counts[k] || int(lp+0.5) != counts[k] {
			t.Fatalf("%v: scheduled %d, LP %g, want %d", k, sched, lp, counts[k])
		}
	}
	if ex.EfficiencyPct <= 0 || ex.EfficiencyPct > 100+1e-9 {
		t.Fatalf("efficiency %g", ex.EfficiencyPct)
	}
	for _, f := range ex.BusyFrac {
		if f < 0 || f > 1+1e-9 {
			t.Fatalf("busy fraction %g", f)
		}
	}
}

func TestExplainRenderAndDeviation(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(8)
	r, err := simulator.Run(d, p, sched.NewDMDAS(), simulator.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := bounds.Explain(d, p, r.Worker, r.BusySec, r.MakespanSec)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.Render()
	for _, want := range []string{"mixed bound", "LP-optimal", "busy fraction", "TRSM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	dev := ex.BiggestDeviation()
	if dev.Class == "" {
		t.Fatal("no deviation found")
	}
}
