package simulator

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestRecorderDoesNotPerturbSchedule is the observability contract: running
// with the obs recorder attached must produce a bit-identical schedule to
// running without it, for every policy family the decision capture touches.
func TestRecorderDoesNotPerturbSchedule(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(16)
	builders := map[string]func() sched.Scheduler{
		"dmda":        func() sched.Scheduler { return sched.NewDMDA() },
		"dmdas":       func() sched.Scheduler { return sched.NewDMDAS() },
		"dmdar":       func() sched.Scheduler { return sched.NewDMDAR() },
		"dmda-nocomm": func() sched.Scheduler { return sched.NewDMDANoComm() },
		"random":      func() sched.Scheduler { return sched.NewRandom() },
		"greedy":      func() sched.Scheduler { return sched.NewGreedy() },
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			plain, err := Run(d, p, mk(), Options{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			rec := obs.NewRecorder()
			traced, err := Run(d, p, mk(), Options{Seed: 42, Recorder: rec})
			if err != nil {
				t.Fatal(err)
			}
			if plain.MakespanSec != traced.MakespanSec {
				t.Fatalf("makespan changed: %v vs %v", plain.MakespanSec, traced.MakespanSec)
			}
			for id := range d.Tasks {
				if plain.Worker[id] != traced.Worker[id] {
					t.Fatalf("task %d moved from worker %d to %d under recording",
						id, plain.Worker[id], traced.Worker[id])
				}
				if plain.Start[id] != traced.Start[id] || plain.End[id] != traced.End[id] {
					t.Fatalf("task %d timing changed under recording: [%v,%v] vs [%v,%v]",
						id, plain.Start[id], plain.End[id], traced.Start[id], traced.End[id])
				}
			}
			if rec.Events() == 0 {
				t.Fatal("recorder attached but captured nothing")
			}
		})
	}
}

// TestRecorderReuseAcrossRuns exercises the Reset/steady-state contract: a
// reused recorder must capture the same event counts on a repeated run.
func TestRecorderReuseAcrossRuns(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	rec := obs.NewRecorder()
	if _, err := Run(d, p, sched.NewDMDA(), Options{Seed: 7, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	first := rec.EventCounts()
	rec.Reset()
	if _, err := Run(d, p, sched.NewDMDA(), Options{Seed: 7, Recorder: rec}); err != nil {
		t.Fatal(err)
	}
	second := rec.EventCounts()
	for k, v := range first {
		if second[k] != v {
			t.Fatalf("event counts drifted on reuse: %s %d vs %d", k, v, second[k])
		}
	}
}
