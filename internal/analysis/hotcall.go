package analysis

import (
	"fmt"
)

// Hotcall propagates hotpathalloc's per-construct allocation checks through
// the call graph: a function *reachable* from a //chol:hotpath root runs on
// the hot path just as surely as the annotated function itself, so its
// allocations regress the same pinned allocs/op. hotpathalloc deliberately
// stops at the annotation boundary (it predates the call graph); hotcall
// closes the gap using the interprocedural engine's reachability:
//
//   - static calls and calls through tracked function-value bindings follow
//     directly;
//   - interface dispatch widens to every loaded type satisfying the
//     interface (class-hierarchy analysis over the program's closed world)
//     — the simulator's sched.View has exactly one production
//     implementation, so the widening is exact where it matters;
//   - calls through //chol:pure contract types are *not* followed: the
//     contract guarantees effect-freeness and puremark proves each
//     acquisition, so the reachable set stays finite and honest.
//
// Reported functions get the same construct diagnostics as hotpathalloc,
// labelled with the provenance chain so the reader sees *why* the function
// is hot. Escapes: //chollint:hotcall on a call site cuts propagation
// through that edge (amortized or cold callees, e.g. a sync.Once-cached
// census); //chollint:hotcall or hotpathalloc's //chollint:alloc on a
// flagged construct line silences that construct — the same line must not
// need two escape words for one allocation.
var Hotcall = &Analyzer{
	Name:     "hotcall",
	Doc:      "extends //chol:hotpath allocation checks to functions reachable through the call graph",
	Suppress: "hotcall",
	Run:      runHotcall,
}

func runHotcall(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	// The "alloc" escape must silence hotcall findings too; the framework
	// only filters the analyzer's own word, so filter alloc here.
	sup := collectSuppressions(pass.Fset, pass.Files)
	report := len(pass.diags)
	for _, n := range prog.all {
		if n.Unit.Pkg != pass.Pkg || n.Decl == nil || n.Hot {
			continue // annotated roots are hotpathalloc's jurisdiction
		}
		hp, ok := prog.hotReach[n]
		if !ok {
			continue
		}
		scanHotBody(pass, n.Decl, hotLabel(n, hp))
	}
	kept := pass.diags[:report]
	for _, d := range pass.diags[report:] {
		if !sup.matches(d.Pos, "alloc") {
			kept = append(kept, d)
		}
	}
	pass.diags = kept
	return nil
}

// hotLabel renders the provenance of a hot-reachable function: its own name
// plus the immediate hot caller and the root annotation it descends from.
func hotLabel(n *FuncNode, hp hotPath) string {
	via := ""
	if hp.via != nil && hp.via != hp.rootNode {
		via = fmt.Sprintf(" via %s", hp.via.Name)
	}
	root := "?"
	if hp.rootNode != nil {
		root = hp.rootNode.Name
	}
	return fmt.Sprintf("%s (reachable from //chol:hotpath %s%s)", n.Name, root, via)
}
