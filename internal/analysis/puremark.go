package analysis

import (
	"go/types"
)

// Puremark turns the sched.SeedInvariant / sched.PureAssign marker
// interfaces from trusted claims into proven facts. PR7's replay engine
// keys real optimizations on these markers — multi-seed batches collapse to
// one simulation when a scheduler claims SeedInvariant, and delta
// resumption re-Inits a fresh instance mid-run when it claims PureAssign —
// so a false claim silently corrupts results the digest suites only catch
// for configurations they happen to sample. Puremark checks every claim
// against the interprocedural effect summaries:
//
//   - PureAssign: Assign and Priority must not write the receiver or any
//     global, transitively through callees (argument writes are allowed —
//     the contract is about the scheduler object, and schedulers
//     legitimately cause state changes through the View they are handed);
//   - SeedInvariant: Assign, Priority and Init must not consume any
//     seed-dependent source — RNG draws (every RNG here is seeded from
//     Options.Seed), wall clocks, nondeterministic map iteration — and
//     Init must not so much as read its seed parameter.
//
// A claim is any niladic SeedInvariant()/PureAssign() bool method whose
// body is `return true`, including methods promoted from an embedded type.
// Methods the engine cannot summarize (calls through unresolvable function
// values) refute the claim: unprovable is failing, by design.
//
// Puremark also proves //chol:pure contract acquisitions: wherever a
// concrete function value is stored into a named func type declared
// //chol:pure (sched.AllowFunc), the value must be effect-free, because
// calls through the contract type are trusted everywhere else.
//
// A claim that is intentionally broader than the engine can see (e.g. a
// policy whose impurity is provably decision-invariant) is excused with
// //chollint:pure on the type declaration, with the runtime digest suite as
// the justification.
var Puremark = &Analyzer{
	Name:     "puremark",
	Doc:      "proves sched.SeedInvariant/PureAssign marker claims and //chol:pure contract acquisitions",
	Suppress: "pure",
	Run:      runPuremark,
}

func runPuremark(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	// Judge marker claims for types declared in this package.
	for _, ni := range prog.namedTypes {
		if ni.unit.Pkg != pass.Pkg || types.IsInterface(ni.named.Underlying()) {
			continue
		}
		pos := ni.named.Obj().Pos()
		if si, ok := prog.constBoolMethod(ni.named, "SeedInvariant"); ok && si {
			if proven, why := prog.proveMarker(ni.named, seedInvariantFail, []string{"Assign", "Priority", "Init"}, true); !proven {
				pass.Reportf(pos, "%s claims SeedInvariant but the claim is unprovable: %s", ni.named.Obj().Name(), why)
			}
		}
		if pa, ok := prog.constBoolMethod(ni.named, "PureAssign"); ok && pa {
			if proven, why := prog.proveMarker(ni.named, pureAssignFail, []string{"Assign", "Priority"}, false); !proven {
				pass.Reportf(pos, "%s claims PureAssign but the claim is unprovable: %s", ni.named.Obj().Name(), why)
			}
		}
	}
	// Prove contract acquisitions recorded in this package.
	for _, acq := range prog.acquisitions {
		if acq.unit.Pkg != pass.Pkg {
			continue
		}
		for _, bt := range acq.targets {
			if why := prog.refuteContract(bt); why != "" {
				pass.Reportf(acq.pos, "function value stored into //chol:pure type %s is not provably pure: %s",
					shortTypeName(acq.typeName), why)
				break
			}
		}
	}
	return nil
}

// refuteContract returns a non-empty reason when the bound target cannot be
// proven effect-free under the //chol:pure contract.
func (p *Program) refuteContract(bt boundTarget) string {
	switch {
	case bt.contract:
		return ""
	case bt.unknown:
		return "the value is unresolvable"
	case bt.node != nil:
		if bad := bt.node.Summary & contractFail; bad != 0 {
			bit := lowestBit(bad)
			return bt.node.Name + " " + bit.String() + ": " + p.WitnessChain(bt.node, bit)
		}
		return ""
	case bt.ext != nil:
		if bad := extEffectsOf(bt.ext).effects & contractFail; bad != 0 {
			return extLabel(bt.ext) + " " + lowestBit(bad).String()
		}
		return ""
	}
	return ""
}

func shortTypeName(qualified string) string {
	if i := lastSlash(qualified); i >= 0 {
		return qualified[i+1:]
	}
	return qualified
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}
