package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSSEEncoders pins the SSE wire format byte-for-byte: the frame event
// (id/event/data lines), the heartbeat comment, and the terminal done event.
func TestSSEEncoders(t *testing.T) {
	f := obs.Frame{Source: obs.SourceSimulate, Seq: 7, Done: 64, Total: 120,
		SimSec: 1.5, ReadyDepth: 3, BusySec: []float64{0.5, 1}}
	b, err := appendSSEFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	want := "id: 7\nevent: frame\ndata: " +
		`{"source":"simulate","seq":7,"done":64,"total":120,"sim_sec":1.5,"ready_depth":3,"busy_sec":[0.5,1]}` +
		"\n\n"
	if string(b) != want {
		t.Fatalf("frame event:\n%q\nwant:\n%q", b, want)
	}
	if got := string(appendSSEHeartbeat(nil)); got != ": heartbeat\n\n" {
		t.Fatalf("heartbeat = %q", got)
	}
	if got := string(appendSSEDone(nil, "done")); got != "event: done\ndata: {\"status\":\"done\"}\n\n" {
		t.Fatalf("done event = %q", got)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id, event, data string
	comment         bool
}

// readSSE parses a complete SSE stream into its events (comments included).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	flush := func() {
		if cur != (sseEvent{}) {
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			flush()
		case strings.HasPrefix(line, ": "):
			cur.comment = true
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	flush()
	return out
}

// frameEvents decodes the frame events of a stream, failing on malformed data.
func frameEvents(t *testing.T, events []sseEvent) []obs.Frame {
	t.Helper()
	var frames []obs.Frame
	for _, ev := range events {
		if ev.event != "frame" {
			continue
		}
		var f obs.Frame
		if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
			t.Fatalf("bad frame data %q: %v", ev.data, err)
		}
		frames = append(frames, f)
	}
	return frames
}

// TestRunLiveStream is the live-endpoint acceptance path: a completed
// simulate run replays its frame backlog in order, ends with the terminal
// done event, and honours Last-Event-ID on reconnect.
func TestRunLiveStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Platform: "mirage", Scheduler: "dmdas", Tiles: 12,
	})
	sim := decodeBody[SimulateResponse](t, resp)
	if sim.RunID == "" {
		t.Fatal("simulate response missing run_id")
	}

	live, err := http.Get(ts.URL + "/v1/runs/" + sim.RunID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Body.Close()
	if ct := live.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := readSSE(t, live.Body)
	frames := frameEvents(t, events)
	if len(frames) == 0 {
		t.Fatal("no frame events in the live stream")
	}
	for i, f := range frames {
		if f.Source != obs.SourceSimulate {
			t.Fatalf("frame %d source %q", i, f.Source)
		}
		if i > 0 && (f.Seq <= frames[i-1].Seq || f.Done < frames[i-1].Done) {
			t.Fatalf("frame %d not monotone: %+v after %+v", i, f, frames[i-1])
		}
	}
	final := frames[len(frames)-1]
	if !final.Final || final.Done != final.Total {
		t.Fatalf("final frame %+v, want Final at Done==Total", final)
	}
	last := events[len(events)-1]
	if last.event != "done" || last.data != `{"status":"done"}` {
		t.Fatalf("terminal event %+v, want done/done", last)
	}

	// Reconnect mid-stream: everything at or before Last-Event-ID is not
	// replayed.
	cut := frames[0].Seq
	req, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+sim.RunID+"/live", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(cut))
	re, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Body.Close()
	rframes := frameEvents(t, readSSE(t, re.Body))
	if len(rframes) != len(frames)-1 {
		t.Fatalf("reconnect replayed %d frames, want %d", len(rframes), len(frames)-1)
	}
	if len(rframes) > 0 && rframes[0].Seq <= cut {
		t.Fatalf("reconnect replayed frame %d at or before Last-Event-ID %d", rframes[0].Seq, cut)
	}

	// Unknown runs and runs without a stream 404.
	if r, err := http.Get(ts.URL + "/v1/runs/run-999999/live"); err != nil {
		t.Fatal(err)
	} else if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing run live status %d", r.StatusCode)
	} else {
		r.Body.Close()
	}
}

// TestRunLiveFollowsRunInFlight subscribes while the run is still open and
// receives frames as they are published, heartbeats while idle, and the
// done event when the run completes — the streaming path rather than the
// backlog-replay path, exercised concurrently by several subscribers (the
// -race half of the framing suite).
func TestRunLiveFollowsRunInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Heartbeat: 20 * time.Millisecond})
	ring := obs.NewFrameRing(64)
	id := s.Ledger().Open(&RunEntry{
		Kind:      KindSimulate,
		CreatedAt: time.Now(),
		Request:   SimulateRequest{Platform: "mirage", Scheduler: "dmdas", Tiles: 4},
		Frames:    ring,
	})

	const subscribers = 4
	const total = 50
	var wg sync.WaitGroup
	bodies := make([][]byte, subscribers)
	errs := make([]error, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/live")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}

	probe := obs.NewProbe(1, ring.Publish)
	for n := 1; n <= total; n++ {
		probe.Emit(obs.Frame{Source: obs.SourceSimulate, Done: int64(n), Total: total, Final: n == total})
		if n%10 == 0 {
			time.Sleep(time.Millisecond) // let heartbeats interleave
		}
	}
	s.Ledger().Complete(id, nil)
	wg.Wait()

	for i := 0; i < subscribers; i++ {
		if errs[i] != nil {
			t.Fatalf("subscriber %d: %v", i, errs[i])
		}
		stream := readSSE(t, strings.NewReader(string(bodies[i])))
		frames := frameEvents(t, stream)
		if len(frames) == 0 {
			t.Fatalf("subscriber %d saw no frames", i)
		}
		for j := 1; j < len(frames); j++ {
			if frames[j].Seq <= frames[j-1].Seq {
				t.Fatalf("subscriber %d frame order broken: %+v after %+v", i, frames[j], frames[j-1])
			}
		}
		if last := frames[len(frames)-1]; !last.Final || last.Done != total {
			t.Fatalf("subscriber %d final frame %+v", i, last)
		}
		if term := stream[len(stream)-1]; term.event != "done" {
			t.Fatalf("subscriber %d terminal event %+v", i, term)
		}
	}
}

// TestPhaseHistogramsAndProbeCounters asserts the observability surface on
// /metrics after one of each job kind: per-phase wall-clock histograms with
// non-zero counts and the per-source probe frame counters.
func TestPhaseHistogramsAndProbeCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Platform: "mirage", Scheduler: "dmdas", Tiles: 8, Record: true,
	}).Body.Close()
	postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Platform: "mirage", Tiles: 4, NodeBudget: 4000,
	}).Body.Close()
	postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Platform: "mirage", Schedulers: []string{"dmda", "random"}, Tiles: []int{6}, Batch: true,
	}).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, phase := range []string{obs.PhasePrep, obs.PhaseSimulate, obs.PhaseBounds, obs.PhaseSolve, obs.PhaseSweep} {
		marker := fmt.Sprintf(`cholserved_phase_seconds_count{phase=%q}`, phase)
		line := findLine(t, text, marker)
		if line == marker+" 0" {
			t.Fatalf("phase %q histogram has zero observations", phase)
		}
	}
	for _, source := range []string{obs.SourceSimulate, obs.SourceCPSolve, obs.SourceReplay} {
		marker := fmt.Sprintf(`cholserved_probe_frames_total{source=%q}`, source)
		findLine(t, text, marker)
	}
}

func findLine(t *testing.T, text, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("/metrics missing a %q line", prefix)
	return ""
}
