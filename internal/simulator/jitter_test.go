package simulator

import (
	"math"
	"math/rand"
	"testing"
)

// refSeedFloat64 is the draw the serial jitter model performs, verbatim.
func refSeedFloat64(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64()
}

func TestFastSeedFloat64MatchesMathRand(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, 89482311,
		lehmerM - 1, lehmerM, lehmerM + 1, -lehmerM, -lehmerM - 1,
		2 * lehmerM, -2 * lehmerM,
		math.MaxInt64, math.MinInt64, math.MinInt64 + 1,
	}
	// The exact composite seeds jittered() derives: seed*1000003 + taskID.
	for _, base := range []int64{0, 1, 7, -3, 42, 1 << 40, -(1 << 40)} {
		for id := int64(0); id < 64; id++ {
			seeds = append(seeds, base*1000003+id)
		}
	}
	for s := int64(-3000); s < 3000; s++ {
		seeds = append(seeds, s*2654435761)
	}
	for _, s := range seeds {
		got := seedFloat64(s)
		want := refSeedFloat64(s)
		if got != want { //chollint:floateq bit-identity is the contract under test
			t.Fatalf("seedFloat64(%d) = %v, want %v (bits %x vs %x)",
				s, got, want, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// The retry reconstruction must match the real generator's second, third, …
// draws — the values the fast path returns if the first draw rounds to 1.0.
// No known seed triggers the retry, so the chain is checked directly.
func TestFastSeedRetryChainMatchesGenerator(t *testing.T) {
	for _, seed := range []int64{1, 7, -19, 123456789, math.MaxInt64} {
		s := seed % lehmerM
		if s < 0 {
			s += lehmerM
		}
		if s == 0 {
			s = 89482311
		}
		x0 := uint64(s)
		src := rand.NewSource(seed).(rand.Source64)
		for j := 0; j <= jitMaxRetry; j++ {
			v := lehmerVec(&powFeed[j], rngCookedFeed[j], x0) + lehmerVec(&powTap[j], rngCookedTap[j], x0)
			if got, want := v, src.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: reconstructed %x, generator %x", seed, j, got, want)
			}
		}
	}
}

func TestJitterRowMatchesSerialDraws(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 33} {
		dst := make([]float64, 100)
		JitterRow(seed, dst)
		for id := range dst {
			want := 2*refSeedFloat64(seed*1000003+int64(id)) - 1
			if dst[id] != want { //chollint:floateq bit-identity is the contract under test
				t.Fatalf("seed %d task %d: row %v, serial %v", seed, id, dst[id], want)
			}
		}
	}
}

func BenchmarkSeedFloat64Fast(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += seedFloat64(int64(i)*1000003 + 17)
	}
	_ = sink
}

func BenchmarkSeedFloat64MathRand(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += refSeedFloat64(int64(i)*1000003 + 17)
	}
	_ = sink
}
