package simulator

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, graph.Cholesky(8), platform.Mirage(), sched.NewDMDAS(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunContextDeadlineStopsEventLoop drives a large DAG with an
// already-expired deadline: the event loop must notice within its polling
// stride and abandon the run instead of draining the whole heap.
func TestRunContextDeadlineStopsEventLoop(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, graph.Cholesky(24), platform.Mirage(), sched.NewDMDAS(), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled run took %v; cancellation is not prompt", el)
	}
}

func TestRunBackgroundUnaffected(t *testing.T) {
	res, err := Run(graph.Cholesky(4), platform.Mirage(), sched.NewDMDAS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec <= 0 {
		t.Fatalf("makespan %v", res.MakespanSec)
	}
}
