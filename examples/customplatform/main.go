// Customplatform: model your own heterogeneous machine, compute the paper's
// bounds for it, and pick a scheduler — the workflow a practitioner follows
// to size a new system before buying it.
//
// The example models a hypothetical node with 16 fast CPU cores and a single
// big accelerator (80× GEMM, 30× TRSM, 4× POTRF), asks where the bounds
// land, and compares schedulers — including what happens when the PCI bus
// is slow.
//
// Run with:  go run ./examples/customplatform
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func main() {
	nb := 960
	cpu := map[graph.Kind]float64{
		graph.POTRF: kernels.PotrfFlops(nb) / 12e9, // 12 GFLOP/s per core
		graph.TRSM:  kernels.TrsmFlops(nb) / 11e9,
		graph.SYRK:  kernels.SyrkFlops(nb) / 11e9,
		graph.GEMM:  kernels.GemmFlops(nb) / 13e9,
	}
	acc := map[graph.Kind]float64{
		graph.POTRF: cpu[graph.POTRF] / 4,
		graph.TRSM:  cpu[graph.TRSM] / 30,
		graph.SYRK:  cpu[graph.SYRK] / 70,
		graph.GEMM:  cpu[graph.GEMM] / 80,
	}
	p := &platform.Platform{
		Name: "hypothetical",
		Classes: []platform.Class{
			{Name: "cpu", Count: 16, Times: cpu},
			{Name: "acc", Count: 1, Times: acc},
		},
		Bus:       platform.Bus{Enabled: true, BandwidthBps: 12e9, LatencySec: 5e-6},
		TileBytes: float64(nb) * float64(nb) * 8,
	}
	if err := p.Validate(graph.CholeskyKinds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %q: %d workers, GEMM peak %.0f GFLOP/s\n",
		p.Name, p.Workers(), p.GemmPeakGFlops(kernels.GemmFlops(nb)))

	for _, n := range []int{8, 16, 32} {
		d := graph.Cholesky(n)
		flops := kernels.CholeskyFlops(n * nb)
		all, err := bounds.Compute(n, nb, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nn=%d tiles (N=%d):\n", n, n*nb)
		fmt.Printf("  bounds: critical-path %.0f | area %.0f | mixed %.0f | gemm-peak %.0f GFLOP/s\n",
			all.CriticalPath.GFlops(flops), all.Area.GFlops(flops),
			all.Mixed.GFlops(flops), all.GemmPeak.GFlops(flops))
		for _, s := range []sched.Scheduler{sched.NewGreedy(), sched.NewDMDA(), sched.NewDMDAS()} {
			r, err := simulator.Run(d, p, s, simulator.Options{Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %.0f GFLOP/s (%d PCI hops)\n",
				s.Name(), r.GFlops(flops), r.TransferCount)
		}
	}

	// What if the PCI bus were 10× slower? (data-awareness starts to matter)
	slow := p.Clone()
	slow.Bus.BandwidthBps /= 10
	d := graph.Cholesky(16)
	flops := kernels.CholeskyFlops(16 * nb)
	fmt.Println("\nwith a 10× slower bus (n=16):")
	for _, s := range []sched.Scheduler{sched.NewDMDA(), sched.NewDMDANoComm()} {
		r, err := simulator.Run(d, slow, s, simulator.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.0f GFLOP/s (transfer time %.3f s)\n",
			s.Name(), r.GFlops(flops), r.TransferSec)
	}
}
