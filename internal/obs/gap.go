package obs

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/platform"
)

// Gap attribution: decompose makespan − MixedBound into named components.
//
// The paper reports a single efficiency ratio against the mixed bound; the
// ALAP lower-bound line of work (Quach & Langou, arXiv:1510.05107)
// motivates decomposing the gap instead of reporting one number. The
// decomposition here is an exact accounting identity on the bound's
// critical resource class r* (the class whose witness load per worker is
// largest): with M workers in the class, mk·M = Busy + IdleArea, so
//
//	mk − bound =   IdleArea/M                 (idle on the critical class)
//	             + (Busy − WitnessLoad)/M     (miscast-kernel penalty)
//	             + (WitnessLoad/M − bound)    (bound slack)
//
// and the idle area splits further — exactly, by construction — into
// ramp-up (critical-path waiting before each worker's first task), PCI
// data stall (from recorded Idle events), interior starvation, and drain
// (after each worker's last task). Every component is a real quantity of
// the schedule; their sum telescopes to the gap to float rounding.

// Component is one named share of the gap.
type Component struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Note    string  `json:"note,omitempty"`
}

// ClassIdle is the per-class idle diagnostic (all classes, not just the
// critical one).
type ClassIdle struct {
	Class        string  `json:"class"`
	Workers      int     `json:"workers"`
	IdleAreaSec  float64 `json:"idle_area_sec"`  // Σ over workers of (mk − busy)
	IdleFracMean float64 `json:"idle_frac_mean"` // mean idle fraction per worker
}

// Attribution is the gap-to-bound decomposition of one executed schedule.
type Attribution struct {
	MakespanSec   float64     `json:"makespan_sec"`
	BoundSec      float64     `json:"bound_sec"`
	BoundName     string      `json:"bound_name"`
	GapSec        float64     `json:"gap_sec"`
	CriticalClass string      `json:"critical_class"`
	Components    []Component `json:"components"`
	PerClassIdle  []ClassIdle `json:"per_class_idle"`
	// TransferSec is the cumulative PCI time of the run (diagnostic; the
	// *exposed* share appears as the pci-stall component).
	TransferSec float64 `json:"transfer_sec"`
	// Explanation is the per-(class, kind) placement comparison behind the
	// miscast component (bounds.Explain).
	Explanation *bounds.Explanation `json:"explanation,omitempty"`
}

// Sum returns the total of the components — equal to GapSec up to float
// rounding, by construction.
func (a *Attribution) Sum() float64 {
	s := 0.0
	for _, c := range a.Components {
		s += c.Seconds
	}
	return s
}

// AttributeGap decomposes makespan − MixedBound for one executed schedule.
// worker, busySec, start and end are the execution record fields any
// simulator or runtime result carries (worker[id] = worker of task id).
// transferSec is the run's cumulative PCI time (diagnostic only). rec may
// be nil: the PCI-stall split of the idle area then folds into starvation,
// and the identity still holds exactly.
func AttributeGap(d *graph.DAG, p *platform.Platform, worker []int, busySec []float64,
	start, end []float64, makespan, transferSec float64, rec *Recorder) (*Attribution, error) {

	n := len(d.Tasks)
	if len(worker) != n || len(start) != n || len(end) != n {
		return nil, fmt.Errorf("obs: execution record covers %d/%d/%d tasks, DAG has %d",
			len(worker), len(start), len(end), n)
	}
	ex, err := bounds.Explain(d, p, worker, busySec, makespan)
	if err != nil {
		return nil, err
	}
	m, err := bounds.MixedInt(d, p)
	if err != nil {
		return nil, err
	}

	// Witness load per class and the critical class r*.
	nClasses := len(p.Classes)
	load := make([]float64, nClasses)
	for r := 0; r < nClasses; r++ {
		for kind, cnt := range m.Assignment[r] {
			if cnt > 0 {
				load[r] += cnt * p.Time(r, kind)
			}
		}
	}
	crit, critPerWorker := -1, -1.0
	for r := 0; r < nClasses; r++ {
		if p.Classes[r].Count == 0 {
			continue
		}
		if pw := load[r] / float64(p.Classes[r].Count); pw > critPerWorker {
			critPerWorker, crit = pw, r
		}
	}
	if crit < 0 {
		return nil, fmt.Errorf("obs: platform %s has no populated resource class", p.Name)
	}
	mCrit := float64(p.Classes[crit].Count)

	// Per-worker first start / last end and per-class busy areas.
	nW := p.Workers()
	first := make([]float64, nW)
	last := make([]float64, nW)
	for w := range first {
		first[w] = math.Inf(1)
	}
	for id := 0; id < n; id++ {
		w := worker[id]
		if w < 0 || w >= nW {
			return nil, fmt.Errorf("obs: task %d ran on invalid worker %d", id, w)
		}
		if start[id] < first[w] {
			first[w] = start[id]
		}
		if end[id] > last[w] {
			last[w] = end[id]
		}
	}
	busyCrit, ramp, drain := 0.0, 0.0, 0.0
	for w := 0; w < nW; w++ {
		if p.WorkerClass(w) != crit {
			continue
		}
		if w < len(busySec) {
			busyCrit += busySec[w]
		}
		if math.IsInf(first[w], 1) {
			// The worker never ran a task: the whole makespan is ramp.
			ramp += makespan
		} else {
			ramp += first[w]
			drain += makespan - last[w]
		}
	}
	idleArea := mCrit*makespan - busyCrit

	// PCI stall inside the interior (From > 0 excludes the ramp interval,
	// whose stall share already counts as critical-path waiting).
	stall := 0.0
	if rec != nil {
		for _, iv := range rec.Idles {
			if iv.FromSec > 0 && p.WorkerClass(int(iv.Worker)) == crit {
				stall += iv.StallSec
			}
		}
	}
	starve := idleArea - ramp - drain - stall

	critName := p.Classes[crit].Name
	a := &Attribution{
		MakespanSec:   makespan,
		BoundSec:      m.MakespanSec,
		BoundName:     m.Name,
		GapSec:        makespan - m.MakespanSec,
		CriticalClass: critName,
		TransferSec:   transferSec,
		Explanation:   ex,
		Components: []Component{
			{Name: "cp-wait", Seconds: ramp / mCrit,
				Note: fmt.Sprintf("ramp-up idle on %s before each worker's first task (critical-path waiting)", critName)},
			{Name: "pci-stall", Seconds: stall / mCrit,
				Note: fmt.Sprintf("%s idle exposed by waiting on PCI transfers", critName)},
			{Name: "starvation", Seconds: starve / mCrit,
				Note: fmt.Sprintf("interior %s idle with no data wait recorded (queue ran dry)", critName)},
			{Name: "drain", Seconds: drain / mCrit,
				Note: fmt.Sprintf("tail idle on %s after each worker's last task", critName)},
			{Name: "miscast-work", Seconds: (busyCrit - load[crit]) / mCrit,
				Note: fmt.Sprintf("compute placed on %s beyond the LP witness load (kernel miscasting/overhead)", critName)},
			{Name: "bound-slack", Seconds: load[crit]/mCrit - m.MakespanSec,
				Note: "witness load of the critical class below the bound (≤0 when the diagonal chain binds)"},
		},
	}
	// Per-class idle diagnostics.
	for r := 0; r < nClasses; r++ {
		cnt := p.Classes[r].Count
		if cnt == 0 {
			continue
		}
		busy := 0.0
		for _, w := range p.ClassWorkers(r) {
			if w < len(busySec) {
				busy += busySec[w]
			}
		}
		area := float64(cnt)*makespan - busy
		frac := 0.0
		if makespan > 0 {
			frac = area / (float64(cnt) * makespan)
		}
		a.PerClassIdle = append(a.PerClassIdle, ClassIdle{
			Class: p.Classes[r].Name, Workers: cnt, IdleAreaSec: area, IdleFracMean: frac,
		})
	}
	return a, nil
}

// Render formats the attribution as a fixed-width ASCII table.
func (a *Attribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gap attribution: makespan %.6fs − %s %.6fs = gap %.6fs (critical class %s)\n",
		a.MakespanSec, a.BoundName, a.BoundSec, a.GapSec, a.CriticalClass)
	fmt.Fprintf(&b, "%-14s %12s %9s  %s\n", "component", "seconds", "% of gap", "meaning")
	for _, c := range a.Components {
		pct := "    n/a"
		if a.GapSec > 1e-12 {
			pct = fmt.Sprintf("%7.1f", 100*c.Seconds/a.GapSec)
		}
		fmt.Fprintf(&b, "%-14s %12.6f %9s  %s\n", c.Name, c.Seconds, pct, c.Note)
	}
	pct := "    n/a"
	if a.GapSec > 1e-12 {
		pct = fmt.Sprintf("%7.1f", 100*a.Sum()/a.GapSec)
	}
	fmt.Fprintf(&b, "%-14s %12.6f %9s\n", "total", a.Sum(), pct)
	for _, ci := range a.PerClassIdle {
		fmt.Fprintf(&b, "idle area %-8s %10.6fs over %d workers (%.1f%% idle)\n",
			ci.Class, ci.IdleAreaSec, ci.Workers, 100*ci.IdleFracMean)
	}
	fmt.Fprintf(&b, "cumulative PCI transfer time: %.6fs\n", a.TransferSec)
	return b.String()
}
