package platform

import (
	"time"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Calibrate measures the real pure-Go kernels on the current machine and
// returns a CPU timing table for tile size nb — the reproduction's analogue
// of StarPU's automatic performance-model calibration (Augonnet et al.,
// HPPC'09): run each kernel a few times on representative data and record
// the mean execution time.
//
// reps is the number of timed repetitions per kernel (≥1). The returned
// table can be plugged into a Platform so that simulations predict the
// behaviour of the real runtime (internal/runtime) on this host.
func Calibrate(nb, reps int) map[graph.Kind]float64 {
	if reps < 1 {
		reps = 1
	}
	// Representative tiles: an SPD diagonal tile and generic panel tiles.
	spd := func(seed int64) *matrix.Tile {
		d := matrix.RandSPD(nb, seed)
		t := matrix.NewTile(nb)
		copy(t.Data, d.Data)
		return t
	}
	rnd := func(seed int64) *matrix.Tile {
		d := matrix.RandSymmetric(nb, seed)
		t := matrix.NewTile(nb)
		copy(t.Data, d.Data)
		return t
	}

	l := spd(1)
	_ = kernels.Potrf(l) // factor once; reused as the triangular input

	// Pre-generate every input OUTSIDE the timed sections: matrix generation
	// is itself O(nb³) and would otherwise dominate the measurement. The
	// timed closures only copy (O(nb²)) and run the kernel.
	potrfSrc := spd(2)
	trsmSrc := rnd(3)
	syrkA, syrkC := rnd(4), spd(5)
	gemmA, gemmB, gemmC := rnd(6), rnd(7), rnd(8)
	scratch := matrix.NewTile(nb)

	timeIt := func(f func()) float64 {
		f() // warm-up: page in code and data before timing
		best := 0.0
		for r := 0; r < reps; r++ {
			start := time.Now()
			f()
			el := time.Since(start).Seconds()
			if r == 0 || el < best {
				best = el // min filters scheduler interference (standard practice)
			}
		}
		return best
	}

	times := map[graph.Kind]float64{}
	times[graph.POTRF] = timeIt(func() {
		copy(scratch.Data, potrfSrc.Data)
		_ = kernels.Potrf(scratch)
	})
	times[graph.TRSM] = timeIt(func() {
		copy(scratch.Data, trsmSrc.Data)
		kernels.Trsm(l, scratch)
	})
	times[graph.SYRK] = timeIt(func() {
		copy(scratch.Data, syrkC.Data)
		kernels.Syrk(syrkA, scratch)
	})
	times[graph.GEMM] = timeIt(func() {
		copy(scratch.Data, gemmC.Data)
		kernels.Gemm(gemmA, gemmB, scratch)
	})
	return times
}

// CalibratedHost returns a homogeneous platform whose CPU class is calibrated
// from the real kernels on this machine with n workers and tile size nb.
func CalibratedHost(n, nb, reps int) *Platform {
	return &Platform{
		Name: "calibrated-host",
		Classes: []Class{
			{Name: "cpu", Count: n, Times: Calibrate(nb, reps)},
		},
		Bus:       Bus{Enabled: false},
		TileBytes: float64(nb) * float64(nb) * 8,
	}
}
