package replay_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
)

// TestRunProbedBatchProgress checks the batch-level frame stream: monotone
// Done reaching the job count, dedup hits reported, and results identical
// to the unprobed path.
func TestRunProbedBatchProgress(t *testing.T) {
	d := graph.Cholesky(8)
	p := platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() } // seed-invariant: dedups
	var jobs []replay.Job
	for seed := int64(0); seed < 8; seed++ {
		jobs = append(jobs, replay.Job{D: d, P: p, Sched: mk, Opt: simulator.Options{Seed: seed}})
	}
	plain, err := replay.Run(context.Background(), jobs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var frames []obs.Frame
	probe := obs.NewProbe(1, func(f obs.Frame) {
		mu.Lock()
		frames = append(frames, f.Clone())
		mu.Unlock()
	})
	probed, err := replay.RunProbed(context.Background(), jobs, 4, nil, probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if replay.Digest(plain[i]) != replay.Digest(probed[i]) {
			t.Fatalf("job %d digest changed under batch probing", i)
		}
	}
	if len(frames) == 0 {
		t.Fatal("no batch frames emitted")
	}
	for i, f := range frames {
		if f.Source != obs.SourceReplay {
			t.Fatalf("frame %d source %q", i, f.Source)
		}
		if i > 0 && f.Done < frames[i-1].Done {
			t.Fatalf("Done regressed at frame %d: %d after %d", i, f.Done, frames[i-1].Done)
		}
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Done != int64(len(jobs)) || last.Total != int64(len(jobs)) {
		t.Fatalf("final frame %+v, want Final %d/%d", last, len(jobs), len(jobs))
	}
	// All 8 dmdas seeds collapse to one lane: 7 dedup hits.
	if last.DedupHits != int64(len(jobs)-1) {
		t.Fatalf("DedupHits = %d, want %d", last.DedupHits, len(jobs)-1)
	}
}

// TestPerJobProbeForcesOwnLane: a job carrying its own Options.Probe must
// genuinely simulate (emitting simulator frames) rather than be answered
// with a dedup clone.
func TestPerJobProbeForcesOwnLane(t *testing.T) {
	d := graph.Cholesky(8)
	p := platform.Mirage()
	mk := func() sched.Scheduler { return sched.NewDMDAS() }
	var mu sync.Mutex
	perJob := make([]int, 3)
	var jobs []replay.Job
	for i := 0; i < 3; i++ {
		i := i
		probe := obs.NewProbe(8, func(obs.Frame) {
			mu.Lock()
			perJob[i]++
			mu.Unlock()
		})
		jobs = append(jobs, replay.Job{D: d, P: p, Sched: mk,
			Opt: simulator.Options{Seed: int64(i), Probe: probe}})
	}
	rs, err := replay.Run(context.Background(), jobs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range perJob {
		if n == 0 {
			t.Fatalf("job %d emitted no simulator frames — dedup swallowed a probed job", i)
		}
		if rs[i] == nil {
			t.Fatalf("job %d missing result", i)
		}
	}
}

// TestDeltaStatsAndFrames pins the Base outcome counters and their frames:
// a seed-only no-divergence query clones, a panel-knob query resumes, and a
// scheduler-swap query falls back to scratch.
func TestDeltaStatsAndFrames(t *testing.T) {
	d := graph.Cholesky(8)
	p := platform.Mirage()
	ctx := context.Background()
	base, err := replay.Record(ctx, d, p, sched.NewDMDAS(), simulator.Options{Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var frames []obs.Frame
	base.Probe = obs.NewProbe(1, func(f obs.Frame) { frames = append(frames, f.Clone()) })
	mk := func() sched.Scheduler { return sched.NewDMDAS() }

	if _, err := base.Delta(ctx, mk, simulator.Options{Seed: 2}, replay.SeedKnob(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Delta(ctx, mk, simulator.Options{Seed: 1}, replay.PanelKnob(6), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Delta(ctx, func() sched.Scheduler { return sched.NewRandom() },
		simulator.Options{Seed: 1}, replay.FullKnob(), nil); err != nil {
		t.Fatal(err)
	}

	clones, resumes, scratch := base.DeltaStats()
	if clones != 1 || resumes != 1 || scratch != 1 {
		t.Fatalf("DeltaStats = %d/%d/%d, want 1/1/1", clones, resumes, scratch)
	}
	if len(frames) != 3 {
		t.Fatalf("expected one frame per Delta query, got %d", len(frames))
	}
	last := frames[2]
	if last.Done != 3 || last.DedupHits != 1 || last.DeltaResume != 1 || last.DeltaScratch != 1 {
		t.Fatalf("final delta frame %+v, want totals 3/1/1/1", last)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Done != frames[i-1].Done+1 {
			t.Fatalf("delta frame Done not consecutive: %+v", frames)
		}
	}
}
