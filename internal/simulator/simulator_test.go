package simulator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/sched"
)

func mustRun(t *testing.T, d *graph.DAG, p *platform.Platform, s sched.Scheduler, opt Options) *Result {
	t.Helper()
	r, err := Run(d, p, s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(d, p, r); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSingleTask(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(1)
	r := mustRun(t, d, p, sched.NewDMDA(), Options{})
	want := p.FastestTime(graph.POTRF)
	if math.Abs(r.MakespanSec-want) > 1e-12 {
		t.Fatalf("makespan %g, want %g", r.MakespanSec, want)
	}
}

func TestDeterminism(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	a := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 1})
	b := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 1})
	if a.MakespanSec != b.MakespanSec {
		t.Fatal("simulation not deterministic")
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.Worker[i] != b.Worker[i] {
			t.Fatal("per-task results not deterministic")
		}
	}
}

func TestAllSchedulersValidOnMirage(t *testing.T) {
	p := platform.Mirage()
	for _, s := range []sched.Scheduler{
		sched.NewRandom(), sched.NewGreedy(), sched.NewDMDA(), sched.NewDMDAS(),
		sched.NewDMDANoComm(), sched.NewTriangleTRSM(4),
	} {
		for _, n := range []int{1, 2, 5, 10} {
			d := graph.Cholesky(n)
			r := mustRun(t, d, p, s, Options{Seed: 3})
			if r.MakespanSec <= 0 {
				t.Fatalf("%s n=%d: non-positive makespan", s.Name(), n)
			}
		}
	}
}

func TestMakespanAboveBounds(t *testing.T) {
	// The core soundness property: every simulated schedule respects every
	// lower bound (no communication, to match the bounds' model).
	p := platform.WithoutCommunication(platform.Mirage())
	for _, n := range []int{2, 4, 8, 12} {
		d := graph.Cholesky(n)
		all, err := bounds.Compute(n, platform.TileNB, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []sched.Scheduler{
			sched.NewRandom(), sched.NewDMDA(), sched.NewDMDAS(), sched.NewGreedy(),
		} {
			r := mustRun(t, d, p, s, Options{Seed: 11})
			if r.MakespanSec < all.Best()-1e-9 {
				t.Fatalf("%s n=%d: makespan %g below best bound %g",
					s.Name(), n, r.MakespanSec, all.Best())
			}
		}
	}
}

func TestMakespanAboveBoundsProperty(t *testing.T) {
	// Fuzz across seeds with the random scheduler on a communication-free
	// platform; bounds must always hold.
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(6)
	all, err := bounds.Compute(6, platform.TileNB, p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r, err := Run(d, p, sched.NewRandom(), Options{Seed: seed})
		if err != nil {
			return false
		}
		if Validate(d, p, r) != nil {
			return false
		}
		return r.MakespanSec >= all.Best()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDmdaBeatsRandomHeterogeneous(t *testing.T) {
	// Figure 5/7: random ≪ dmda on heterogeneous platforms.
	p := platform.Mirage()
	d := graph.Cholesky(16)
	rnd := mustRun(t, d, p, sched.NewRandom(), Options{Seed: 5})
	dm := mustRun(t, d, p, sched.NewDMDA(), Options{Seed: 5})
	if dm.MakespanSec >= rnd.MakespanSec {
		t.Fatalf("dmda %g not faster than random %g", dm.MakespanSec, rnd.MakespanSec)
	}
	if rnd.MakespanSec < 1.5*dm.MakespanSec {
		t.Fatalf("random should lose big: random %g vs dmda %g",
			rnd.MakespanSec, dm.MakespanSec)
	}
}

func TestHomogeneousSaturation(t *testing.T) {
	// Large homogeneous runs approach work/m (the area bound): within 25 %.
	p := platform.Homogeneous(9)
	d := graph.Cholesky(24)
	r := mustRun(t, d, p, sched.NewDMDAS(), Options{})
	area := d.TotalWeight(func(tk *graph.Task) float64 { return p.Time(0, tk.Kind) }) / 9
	if r.MakespanSec > 1.25*area {
		t.Fatalf("makespan %g too far above area %g", r.MakespanSec, area)
	}
}

func TestTransfersHappenAndCost(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	withComm := mustRun(t, d, p, sched.NewDMDA(), Options{})
	if withComm.TransferCount == 0 || withComm.TransferSec <= 0 {
		t.Fatal("expected PCI transfers on Mirage")
	}
	noComm := mustRun(t, d, platform.WithoutCommunication(p), sched.NewDMDA(), Options{})
	if noComm.TransferCount != 0 || noComm.TransferSec != 0 {
		t.Fatal("no-communication platform still transferred")
	}
	if withComm.MakespanSec < noComm.MakespanSec-1e-9 {
		t.Fatalf("communication made the run faster: %g vs %g",
			withComm.MakespanSec, noComm.MakespanSec)
	}
}

func TestOverheadSlowsExecution(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(8)
	pure := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 2})
	over := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 2, Overhead: true})
	if over.MakespanSec <= pure.MakespanSec*0.97 {
		t.Fatalf("overhead run %g markedly faster than pure %g",
			over.MakespanSec, pure.MakespanSec)
	}
}

func TestOverheadJitterVariesWithSeed(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(6)
	a := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 1, Overhead: true})
	b := mustRun(t, d, p, sched.NewDMDAS(), Options{Seed: 2, Overhead: true})
	if a.MakespanSec == b.MakespanSec {
		t.Fatal("jitter did not vary across seeds")
	}
}

func TestBusyPlusIdleEqualsMakespan(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(10)
	r := mustRun(t, d, p, sched.NewDMDA(), Options{})
	for w := range r.BusySec {
		if math.Abs(r.BusySec[w]+r.IdleSec[w]-r.MakespanSec) > 1e-9 {
			t.Fatalf("worker %d: busy+idle != makespan", w)
		}
	}
	// Total busy time ≥ sum of fastest execution times is not guaranteed,
	// but busy time must equal the sum of task durations.
	sum := 0.0
	for id := range r.Start {
		sum += r.End[id] - r.Start[id]
	}
	tot := 0.0
	for _, b := range r.BusySec {
		tot += b
	}
	if math.Abs(sum-tot) > 1e-9 {
		t.Fatal("busy accounting inconsistent")
	}
}

func TestEveryTaskRunsOnce(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(7)
	r := mustRun(t, d, p, sched.NewTriangleTRSM(2), Options{})
	for id, w := range r.Worker {
		if w < 0 {
			t.Fatalf("task %d never ran", id)
		}
	}
}

func TestTriangleHintForcesTrsmsOnCPU(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(12)
	k := 4
	r := mustRun(t, d, p, sched.NewTriangleTRSM(k), Options{})
	for _, tk := range d.Tasks {
		if tk.Kind == graph.TRSM && tk.I-tk.K >= k {
			if p.WorkerClass(r.Worker[tk.ID]) != 0 {
				t.Fatalf("TRSM %s ran on GPU despite hint", tk.Name())
			}
		}
	}
}

func TestStaticInjectionReproducesPlan(t *testing.T) {
	// Injecting a HEFT plan into a communication-free simulation must place
	// every task on its planned worker.
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(6)
	plan, err := sched.HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, d, p, plan.Scheduler("heft-inject"), Options{})
	for id, w := range r.Worker {
		if w != plan.Worker[id] {
			t.Fatalf("task %d ran on %d, plan %d", id, w, plan.Worker[id])
		}
	}
	// The simulated makespan should match the plan's estimate closely
	// (same model, possibly different but legal interleavings): within 1 %.
	if math.Abs(r.MakespanSec-plan.EstMakespan) > 0.01*plan.EstMakespan {
		t.Fatalf("simulated %g vs planned %g", r.MakespanSec, plan.EstMakespan)
	}
}

func TestLUAndQRSimulate(t *testing.T) {
	p := platform.Mirage()
	// Provide timings for the LU/QR kernels (derived from Cholesky ones).
	for cls := 0; cls <= 1; cls++ {
		ts := p.Classes[cls].Times
		ts[graph.GETRF] = ts[graph.POTRF] * 2
		ts[graph.GEQRT] = ts[graph.POTRF] * 2
		ts[graph.ORMQR] = ts[graph.TRSM]
		ts[graph.TSQRT] = ts[graph.TRSM] * 2
		ts[graph.TSMQR] = ts[graph.GEMM] * 2
	}
	for _, d := range []*graph.DAG{graph.LU(5), graph.QR(5)} {
		r := mustRun(t, d, p, sched.NewDMDAS(), Options{})
		if r.MakespanSec <= 0 {
			t.Fatalf("%s: bad makespan", d.Algorithm)
		}
	}
}

func TestRunRejectsInvalidPlatform(t *testing.T) {
	p := &platform.Platform{Classes: []platform.Class{{Name: "x", Count: 0}}}
	if _, err := Run(graph.Cholesky(2), p, sched.NewDMDA(), Options{}); err == nil {
		t.Fatal("expected platform validation error")
	}
}

func TestRunRejectsCyclicDAG(t *testing.T) {
	d := &graph.DAG{Algorithm: "x", Tasks: []*graph.Task{
		{ID: 0, Kind: graph.GEMM, Succ: []int{1}, Pred: []int{1}},
		{ID: 1, Kind: graph.GEMM, Succ: []int{0}, Pred: []int{0}},
	}}
	if _, err := Run(d, platform.Mirage(), sched.NewDMDA(), Options{}); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(3)
	r := mustRun(t, d, p, sched.NewDMDA(), Options{})

	bad := *r
	bad.Worker = append([]int{}, r.Worker...)
	bad.Worker[0] = -1
	if Validate(d, p, &bad) == nil {
		t.Fatal("invalid worker not caught")
	}

	bad2 := *r
	bad2.Start = append([]float64{}, r.Start...)
	// Make some dependent task start before its predecessor's end.
	last := len(d.Tasks) - 1
	bad2.Start[last] = -1
	if Validate(d, p, &bad2) == nil {
		t.Fatal("dependency violation not caught")
	}
}

func TestGFlopsConversion(t *testing.T) {
	r := &Result{MakespanSec: 2}
	if r.GFlops(4e9) != 2 {
		t.Fatal("GFlops conversion wrong")
	}
}

func TestRelatedPlatformEasierThanUnrelated(t *testing.T) {
	// Figure 8 vs 7: with related speeds, dmdas lands closer to its mixed
	// bound than in the unrelated case (relative gap smaller).
	n := 8
	d := graph.Cholesky(n)
	unrel := platform.WithoutCommunication(platform.Mirage())
	k := unrel.AccelerationFactor(d, 0, 1)
	rel := platform.WithoutCommunication(platform.Related(platform.Mirage(), k))

	mUn, err := bounds.MixedInt(d, unrel)
	if err != nil {
		t.Fatal(err)
	}
	mRel, err := bounds.MixedInt(d, rel)
	if err != nil {
		t.Fatal(err)
	}
	rUn := mustRun(t, d, unrel, sched.NewDMDAS(), Options{})
	rRel := mustRun(t, d, rel, sched.NewDMDAS(), Options{})
	gapUn := rUn.MakespanSec / mUn.MakespanSec
	gapRel := rRel.MakespanSec / mRel.MakespanSec
	if gapRel > gapUn+0.05 {
		t.Fatalf("related gap %.3f should not exceed unrelated gap %.3f", gapRel, gapUn)
	}
}

func TestRandomDAGFuzzAllSchedulers(t *testing.T) {
	// Fuzz: random layered DAGs under every scheduler produce valid
	// schedules whose makespans respect the area bound.
	for seed := int64(0); seed < 15; seed++ {
		d := graph.RandomLayered(5, 6, 0.35, seed)
		for _, variant := range []struct {
			p *platform.Platform
			s sched.Scheduler
		}{
			{platform.Mirage(), sched.NewRandom()},
			{platform.Mirage(), sched.NewDMDA()},
			{platform.WithoutCommunication(platform.Mirage()), sched.NewDMDAS()},
			{platform.Homogeneous(4), sched.NewGreedy()},
		} {
			r, err := Run(d, variant.p, variant.s, Options{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, variant.s.Name(), err)
			}
			if err := Validate(d, variant.p, r); err != nil {
				t.Fatalf("seed %d %s: %v", seed, variant.s.Name(), err)
			}
			a, err := bounds.Area(d, variant.p)
			if err != nil {
				t.Fatal(err)
			}
			if r.MakespanSec < a.MakespanSec-1e-9 {
				t.Fatalf("seed %d %s: makespan %g below area bound %g",
					seed, variant.s.Name(), r.MakespanSec, a.MakespanSec)
			}
		}
	}
}

func TestRandomDAGCriticalPathBound(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	for seed := int64(0); seed < 10; seed++ {
		d := graph.RandomLayered(6, 4, 0.5, seed)
		cp, err := bounds.CriticalPath(d, p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(d, p, sched.NewDMDAS(), Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r.MakespanSec < cp.MakespanSec-1e-9 {
			t.Fatalf("seed %d: makespan %g below critical path %g",
				seed, r.MakespanSec, cp.MakespanSec)
		}
	}
}

func TestHEFTInsertionInjectedValid(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(6)
	plan, err := sched.HEFTInsertion(d, p)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, d, p, plan.Scheduler("heft-ins"), Options{})
	for id, w := range r.Worker {
		if w != plan.Worker[id] {
			t.Fatalf("task %d deviated from insertion plan", id)
		}
	}
}

func TestWorkStealingValidAndHelpsRandom(t *testing.T) {
	// The random policy creates load imbalance; stealing should recover a
	// large part of it (StarPU's ws rationale) while staying valid.
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(12)
	plain := mustRun(t, d, p, sched.NewRandom(), Options{Seed: 9})
	ws := mustRun(t, d, p, sched.NewRandom(), Options{Seed: 9, WorkStealing: true})
	if ws.MakespanSec > plain.MakespanSec*1.001 {
		t.Fatalf("stealing hurt random: %g vs %g", ws.MakespanSec, plain.MakespanSec)
	}
	if ws.MakespanSec > 0.9*plain.MakespanSec {
		t.Logf("stealing gain modest: %g vs %g", ws.MakespanSec, plain.MakespanSec)
	}
}

func TestWorkStealingRespectsHints(t *testing.T) {
	p := platform.Mirage()
	d := graph.Cholesky(10)
	k := 3
	r := mustRun(t, d, p, sched.NewTriangleTRSM(k), Options{Seed: 2, WorkStealing: true})
	for _, tk := range d.Tasks {
		if tk.Kind == graph.TRSM && tk.I-tk.K >= k {
			if p.WorkerClass(r.Worker[tk.ID]) != 0 {
				t.Fatalf("stolen TRSM %s violated its CPU hint", tk.Name())
			}
		}
	}
}

func TestWorkStealingNeverOnStaticInjection(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	d := graph.Cholesky(6)
	plan, err := sched.HEFT(d, p)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, d, p, plan.Scheduler("heft"), Options{WorkStealing: true})
	for id, w := range r.Worker {
		if w != plan.Worker[id] {
			t.Fatal("static injection was stolen from")
		}
	}
}

func TestWorkStealingBoundsStillHold(t *testing.T) {
	p := platform.WithoutCommunication(platform.Mirage())
	for seed := int64(0); seed < 10; seed++ {
		d := graph.RandomLayered(5, 5, 0.4, seed)
		r := mustRun(t, d, p, sched.NewRandom(), Options{Seed: seed, WorkStealing: true})
		a, err := bounds.Area(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.MakespanSec < a.MakespanSec-1e-9 {
			t.Fatalf("seed %d: stolen schedule beats area bound", seed)
		}
	}
}

func limitedMirage(tiles int) *platform.Platform {
	p := platform.Mirage()
	p.Classes[1].MemoryBytes = float64(tiles) * p.TileBytes
	return p
}

func TestMemoryCapacityEvictions(t *testing.T) {
	d := graph.Cholesky(12) // 78 distinct tiles
	unlimited := mustRun(t, d, platform.Mirage(), sched.NewDMDA(), Options{})
	if unlimited.Evictions != 0 {
		t.Fatal("unlimited memory should not evict")
	}
	limited := mustRun(t, d, limitedMirage(10), sched.NewDMDA(), Options{})
	if limited.Evictions == 0 {
		t.Fatal("10-tile GPUs must evict on a 78-tile working set")
	}
	if limited.MakespanSec < unlimited.MakespanSec-1e-9 {
		t.Fatalf("limited memory made the run faster: %g vs %g",
			limited.MakespanSec, unlimited.MakespanSec)
	}
	if limited.Writebacks == 0 {
		t.Fatal("sole-copy evictions should cause writebacks")
	}
	if limited.Writebacks > limited.Evictions {
		t.Fatal("more writebacks than evictions")
	}
}

func TestMemoryCapacityResidencyInvariant(t *testing.T) {
	// With capacity C, at no point may more than C unpinned tiles stay
	// resident. We can't observe internals here, but a correct manager keeps
	// the run valid and all tasks complete across capacities.
	d := graph.Cholesky(10)
	for _, tiles := range []int{4, 8, 16, 64} {
		r := mustRun(t, d, limitedMirage(tiles), sched.NewDMDAS(), Options{Seed: 1})
		if r.MakespanSec <= 0 {
			t.Fatalf("capacity %d: bad makespan", tiles)
		}
	}
}

func TestMemoryCapacityMonotoneCost(t *testing.T) {
	// Smaller memory ⇒ at least as many evictions.
	d := graph.Cholesky(12)
	small := mustRun(t, d, limitedMirage(6), sched.NewDMDA(), Options{})
	big := mustRun(t, d, limitedMirage(24), sched.NewDMDA(), Options{})
	if small.Evictions < big.Evictions {
		t.Fatalf("6-tile memory evicted less (%d) than 24-tile (%d)",
			small.Evictions, big.Evictions)
	}
}

func TestMemoryCapacityNoCommStillWorks(t *testing.T) {
	p := platform.WithoutCommunication(limitedMirage(5))
	d := graph.Cholesky(8)
	r := mustRun(t, d, p, sched.NewDMDA(), Options{})
	if r.Writebacks != 0 {
		t.Fatal("free transfers cannot produce timed writebacks")
	}
}

func TestSolveDAGSimulation(t *testing.T) {
	// The triangular solve has a tight dependency chain: the simulator's
	// makespan must respect the critical-path bound, and with TRSV slower on
	// GPUs, dmda should keep TRSVs on CPUs.
	p := platform.WithoutCommunication(platform.MirageExtended())
	d := graph.ForwardSolve(8)
	r := mustRun(t, d, p, sched.NewDMDA(), Options{})
	cp, err := bounds.CriticalPath(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.MakespanSec < cp.MakespanSec-1e-12 {
		t.Fatalf("solve makespan %g below critical path %g", r.MakespanSec, cp.MakespanSec)
	}
	for _, tk := range d.Tasks {
		if tk.Kind == graph.TRSV && p.WorkerClass(r.Worker[tk.ID]) != 0 {
			t.Fatalf("TRSV %s placed on GPU where it is slower", tk.Name())
		}
	}
}

func TestDMDARValidAndCompetitive(t *testing.T) {
	p := platform.Mirage()
	for _, n := range []int{6, 12} {
		d := graph.Cholesky(n)
		r := mustRun(t, d, p, sched.NewDMDAR(), Options{Seed: 3})
		base := mustRun(t, d, p, sched.NewDMDA(), Options{Seed: 3})
		// dmdar reorders for locality; it must stay in dmda's ballpark
		// (within 25 % either way) and respect bounds.
		if r.MakespanSec > base.MakespanSec*1.25 {
			t.Fatalf("n=%d: dmdar %g far worse than dmda %g", n, r.MakespanSec, base.MakespanSec)
		}
		a, err := bounds.Area(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if r.MakespanSec < a.MakespanSec-1e-9 {
			t.Fatal("dmdar beat the area bound")
		}
	}
}

func TestThreeClassPlatformFullStack(t *testing.T) {
	// The Sirocco model exercises R=3 paths in bounds, schedulers and the
	// simulator's memory-node mapping. Every invariant must hold unchanged.
	p := platform.WithoutCommunication(platform.Sirocco())
	for _, n := range []int{4, 8, 16} {
		d := graph.Cholesky(n)
		all, err := bounds.Compute(n, platform.TileNB, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []sched.Scheduler{
			sched.NewRandom(), sched.NewDMDA(), sched.NewDMDAS(), sched.NewDMDAR(),
		} {
			r := mustRun(t, d, p, s, Options{Seed: 7})
			if r.MakespanSec < all.Best()-1e-9 {
				t.Fatalf("%s n=%d: makespan below bound on 3-class platform", s.Name(), n)
			}
		}
	}
	// With comm on: transfers route over per-accelerator links across both
	// GPU generations.
	pc := platform.Sirocco()
	r := mustRun(t, graph.Cholesky(10), pc, sched.NewDMDA(), Options{})
	if r.TransferCount == 0 {
		t.Fatal("expected transfers on Sirocco")
	}
	// All three classes get work on a large enough DAG.
	used := map[int]bool{}
	for _, w := range r.Worker {
		used[pc.WorkerClass(w)] = true
	}
	if len(used) != 3 {
		t.Fatalf("only %d of 3 classes used", len(used))
	}
}

func TestThreeClassCPSolve(t *testing.T) {
	p := platform.WithoutCommunication(platform.Sirocco())
	d := graph.Cholesky(4)
	r, err := cpsolveSolve(d, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := bounds.MixedInt(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if r < m.MakespanSec-1e-9 {
		t.Fatal("3-class CP schedule beats the mixed bound")
	}
}

// cpsolveSolve avoids an import cycle in the test file header.
func cpsolveSolve(d *graph.DAG, p *platform.Platform) (float64, error) {
	r, err := cpsolve.Solve(d, p, cpsolve.Options{NodeBudget: 5000})
	if err != nil {
		return 0, err
	}
	return r.Makespan, nil
}

func TestStallAccounting(t *testing.T) {
	d := graph.Cholesky(8)
	noComm := mustRun(t, d, platform.WithoutCommunication(platform.Mirage()), sched.NewDMDA(), Options{})
	if noComm.StallSec != 0 {
		t.Fatalf("no-comm run stalled %g s", noComm.StallSec)
	}
	withComm := mustRun(t, d, platform.Mirage(), sched.NewDMDA(), Options{})
	if withComm.StallSec < 0 {
		t.Fatal("negative stall")
	}
	if withComm.StallSec > withComm.MakespanSec*float64(platform.Mirage().Workers()) {
		t.Fatal("stall exceeds total worker time")
	}
}

// randomPlatform generates an arbitrary (but valid) heterogeneous platform:
// 1-3 classes with random counts and random per-kernel times.
func randomPlatform(seed int64) *platform.Platform {
	rng := rand.New(rand.NewSource(seed))
	nClasses := 1 + rng.Intn(3)
	p := &platform.Platform{Name: "fuzz", TileBytes: 1e6}
	for c := 0; c < nClasses; c++ {
		times := map[graph.Kind]float64{}
		for _, k := range graph.CholeskyKinds {
			times[k] = 1e-3 * (0.1 + rng.Float64()*10)
		}
		p.Classes = append(p.Classes, platform.Class{
			Name:  fmt.Sprintf("c%d", c),
			Count: 1 + rng.Intn(4),
			Times: times,
		})
	}
	if rng.Intn(2) == 0 {
		p.Bus = platform.Bus{Enabled: true, BandwidthBps: 1e9 * (0.5 + rng.Float64()*10), LatencySec: 1e-5}
	}
	return p
}

func TestFuzzRandomPlatformsBoundsAndValidity(t *testing.T) {
	// The grand property: for arbitrary platforms, DAGs and schedulers,
	// simulation is valid and never beats the (no-comm) bounds.
	for seed := int64(0); seed < 25; seed++ {
		p := randomPlatform(seed)
		pNoComm := platform.WithoutCommunication(p)
		var d *graph.DAG
		switch seed % 3 {
		case 0:
			d = graph.Cholesky(2 + int(seed%7))
		case 1:
			d = graph.RandomLayered(4, 5, 0.4, seed)
		default:
			d = graph.BandedCholesky(8, 1+int(seed%5))
		}
		for _, s := range []sched.Scheduler{sched.NewRandom(), sched.NewDMDA(), sched.NewDMDAS()} {
			r, err := Run(d, pNoComm, s, Options{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			if err := Validate(d, pNoComm, r); err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			a, err := bounds.Area(d, pNoComm)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := bounds.CriticalPath(d, pNoComm)
			if err != nil {
				t.Fatal(err)
			}
			lower := math.Max(a.MakespanSec, cp.MakespanSec)
			if r.MakespanSec < lower-1e-9 {
				t.Fatalf("seed %d %s: makespan %g below bound %g",
					seed, s.Name(), r.MakespanSec, lower)
			}
			// Comm-enabled runs are never faster than comm-free ones for
			// deterministic schedulers... not guaranteed (decisions differ),
			// but they must still satisfy the bounds.
			rc, err := Run(d, p, s, Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if rc.MakespanSec < lower-1e-9 {
				t.Fatalf("seed %d %s: comm makespan below bound", seed, s.Name())
			}
		}
	}
}
