// Package flow exercises ctxflow: fresh context roots where a live context
// is already in scope.
package flow

import (
	"context"
	"net/http"
)

func run(ctx context.Context) error { return ctx.Err() }

func freshRoot(ctx context.Context) error {
	return run(context.Background()) // want `context.Background in freshRoot, which already has ctx in scope`
}

func freshTODO(ctx context.Context) error {
	return run(context.TODO()) // want `context.TODO in freshTODO, which already has ctx in scope`
}

func threaded(ctx context.Context) error {
	return run(ctx) // correct plumbing
}

func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx) // deriving is correct too
	defer cancel()
	return run(sub)
}

func handler(w http.ResponseWriter, r *http.Request) {
	_ = run(context.Background()) // want `context.Background in handler, which already has r.Context\(\) in scope`
	_ = run(r.Context())
}

func noContextHere() error {
	return run(context.Background()) // fine: nothing in scope to thread
}

func blankParam(_ context.Context) error {
	return run(context.Background()) // fine: the context is unnamed, nothing usable in scope
}

func inClosure(ctx context.Context) func() error {
	return func() error {
		return run(context.Background()) // want `context.Background in inClosure`
	}
}

func deliberateDetach(ctx context.Context) error {
	// Shutdown work must outlive the triggering request.
	return run(context.Background()) //chollint:ctx detaches on purpose
}
