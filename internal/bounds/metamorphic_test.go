package bounds_test

// Metamorphic safety net for the bound computations: whatever the platform
// and tile count, the paper's chain of inequalities
//
//	AreaInt ≤ MixedInt ≤ best simulated makespan
//
// must hold — the mixed bound only *adds* a constraint to the area LP, and
// every simulated schedule is a feasible execution the bounds are sound
// against. The test runs against every platform in the core registry, so a
// newly registered model is covered automatically.

import (
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/simulator"
)

// paramDefaults supplies an argument for parameterized registry entries.
// A new parameterized platform must add a default here to stay covered.
var paramDefaults = map[string]string{
	"homogeneous": "8",
	"related":     "20",
}

func registeredPlatformNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, e := range core.Platforms() {
		if e.Param == "" {
			names = append(names, e.Name)
			continue
		}
		arg, ok := paramDefaults[e.Name]
		if !ok {
			t.Fatalf("registered platform %q takes a parameter but has no default in paramDefaults — add one", e.Name)
		}
		names = append(names, e.Name+":"+arg)
	}
	return names
}

const tol = 1e-9

// TestBoundChainAllPlatforms checks AreaInt ≤ MixedInt for every registered
// platform across the P = 4..24 range.
func TestBoundChainAllPlatforms(t *testing.T) {
	for _, name := range registeredPlatformNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			pf, err := core.NewPlatform(name)
			if err != nil {
				t.Fatal(err)
			}
			for p := 4; p <= 24; p++ {
				d := graph.Cholesky(p)
				area, err := bounds.AreaInt(d, pf)
				if err != nil {
					t.Fatalf("P=%d: AreaInt: %v", p, err)
				}
				mixed, err := bounds.MixedInt(d, pf)
				if err != nil {
					t.Fatalf("P=%d: MixedInt: %v", p, err)
				}
				if area.MakespanSec <= 0 || mixed.MakespanSec <= 0 {
					t.Fatalf("P=%d: non-positive bound (area=%g mixed=%g)", p, area.MakespanSec, mixed.MakespanSec)
				}
				if area.MakespanSec > mixed.MakespanSec*(1+tol)+tol {
					t.Errorf("P=%d: AreaInt %.12g > MixedInt %.12g — the mixed bound must dominate",
						p, area.MakespanSec, mixed.MakespanSec)
				}
			}
		})
	}
}

// TestBoundsBelowSimulatedMakespan checks the full chain against simulated
// schedules: no scheduler may beat a sound lower bound.
func TestBoundsBelowSimulatedMakespan(t *testing.T) {
	schedulers := []string{"dmda", "dmdas", "greedy"}
	for _, name := range registeredPlatformNames(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			pf, err := core.NewPlatform(name)
			if err != nil {
				t.Fatal(err)
			}
			for p := 4; p <= 24; p += 4 {
				d := graph.Cholesky(p)
				mixed, err := bounds.MixedInt(d, pf)
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				best := -1.0
				bestSched := ""
				for _, sn := range schedulers {
					s, err := core.NewScheduler(sn)
					if err != nil {
						t.Fatal(err)
					}
					r, err := simulator.Run(d, pf, s, simulator.Options{Seed: 1})
					if err != nil {
						t.Fatalf("P=%d %s: %v", p, sn, err)
					}
					if best < 0 || r.MakespanSec < best {
						best, bestSched = r.MakespanSec, sn
					}
				}
				if mixed.MakespanSec > best*(1+tol)+tol {
					t.Errorf("P=%d: MixedInt %.12g > simulated makespan %.12g (%s) — bound is unsound",
						p, mixed.MakespanSec, best, bestSched)
				}
			}
		})
	}
}

// TestMixedDominatesAreaRelaxed pins the same chain for the LP relaxations,
// and that each relaxation lower-bounds its integral version.
func TestMixedDominatesAreaRelaxed(t *testing.T) {
	pf, err := core.NewPlatform("mirage")
	if err != nil {
		t.Fatal(err)
	}
	for p := 4; p <= 24; p += 5 {
		d := graph.Cholesky(p)
		checks := []struct {
			lo, hi string
			loF    func(*graph.DAG) (bounds.Result, error)
			hiF    func(*graph.DAG) (bounds.Result, error)
		}{
			{"area", "area-int",
				func(d *graph.DAG) (bounds.Result, error) { return bounds.Area(d, pf) },
				func(d *graph.DAG) (bounds.Result, error) { return bounds.AreaInt(d, pf) }},
			{"mixed", "mixed-int",
				func(d *graph.DAG) (bounds.Result, error) { return bounds.Mixed(d, pf) },
				func(d *graph.DAG) (bounds.Result, error) { return bounds.MixedInt(d, pf) }},
			{"area", "mixed",
				func(d *graph.DAG) (bounds.Result, error) { return bounds.Area(d, pf) },
				func(d *graph.DAG) (bounds.Result, error) { return bounds.Mixed(d, pf) }},
		}
		for _, c := range checks {
			lo, err := c.loF(d)
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, c.lo, err)
			}
			hi, err := c.hiF(d)
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, c.hi, err)
			}
			if lo.MakespanSec > hi.MakespanSec*(1+tol)+tol {
				t.Errorf("P=%d: %s %.12g > %s %.12g", p, c.lo, lo.MakespanSec, c.hi, hi.MakespanSec)
			}
		}
	}
}
