package kernels

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// LU tile kernels for the "other dense factorizations" extension
// (conclusion of the paper): tiled LU without pivoting, right-looking.
// Safe for diagonally dominant matrices (matrix.DiagDominant).

// ErrZeroPivot is returned by Getrf on a (near-)zero pivot; LU without
// pivoting cannot proceed.
var ErrZeroPivot = errors.New("kernels: zero pivot in unpivoted LU")

// Getrf computes the in-place LU factorization (no pivoting) of a tile:
// unit-lower L below the diagonal, U on and above.
func Getrf(a *matrix.Tile) error {
	nb := a.NB
	d := a.Data
	for k := 0; k < nb; k++ {
		p := d[k*nb+k]
		if math.Abs(p) < 1e-300 || math.IsNaN(p) {
			return fmt.Errorf("%w: pivot %d is %g", ErrZeroPivot, k, p)
		}
		inv := 1 / p
		for i := k + 1; i < nb; i++ {
			d[i*nb+k] *= inv
		}
		for i := k + 1; i < nb; i++ {
			lik := d[i*nb+k]
			if lik == 0 {
				continue
			}
			for j := k + 1; j < nb; j++ {
				d[i*nb+j] -= lik * d[k*nb+j]
			}
		}
	}
	return nil
}

// TrsmLowerLeftUnit overwrites a with L⁻¹·a where l holds a *unit* lower
// triangular factor below its diagonal (a GETRF result). This is the LU row
// panel update A_kj ← L_kk⁻¹·A_kj.
func TrsmLowerLeftUnit(l, a *matrix.Tile) {
	nb := a.NB
	ld := l.Data
	ad := a.Data
	for i := 0; i < nb; i++ {
		rowI := ad[i*nb : (i+1)*nb]
		for j := 0; j < i; j++ {
			lij := ld[i*nb+j]
			if lij == 0 {
				continue
			}
			rowJ := ad[j*nb : (j+1)*nb]
			for c := range rowI {
				rowI[c] -= lij * rowJ[c]
			}
		}
	}
}

// TrsmUpperRight overwrites a with a·U⁻¹ where u holds an upper triangular
// factor (non-unit diagonal) on and above its diagonal. This is the LU
// column panel update A_ik ← A_ik·U_kk⁻¹.
func TrsmUpperRight(u, a *matrix.Tile) {
	nb := a.NB
	ud := u.Data
	ad := a.Data
	for r := 0; r < nb; r++ {
		row := ad[r*nb : (r+1)*nb]
		for j := 0; j < nb; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * ud[k*nb+j]
			}
			row[j] = s / ud[j*nb+j]
		}
	}
}

// GemmNN performs c ← c − a·b on full tiles (the LU trailing update; note
// the non-transposed b, unlike the Cholesky Gemm).
func GemmNN(a, b, c *matrix.Tile) {
	nb := a.NB
	ad := a.Data
	bd := b.Data
	cd := c.Data
	for i := 0; i < nb; i++ {
		ai := ad[i*nb : (i+1)*nb]
		ci := cd[i*nb : (i+1)*nb]
		for k := 0; k < nb; k++ {
			f := ai[k]
			if f == 0 {
				continue
			}
			bk := bd[k*nb : (k+1)*nb]
			for j := range ci {
				ci[j] -= f * bk[j]
			}
		}
	}
}

// TiledLU runs the tiled right-looking LU factorization (no pivoting)
// sequentially on a full tiled matrix, overwriting it with L (unit lower)
// and U.
func TiledLU(t *matrix.TiledFull) error {
	p := t.P
	for k := 0; k < p; k++ {
		if err := Getrf(t.Tile(k, k)); err != nil {
			return err
		}
		for j := k + 1; j < p; j++ {
			TrsmLowerLeftUnit(t.Tile(k, k), t.Tile(k, j))
		}
		for i := k + 1; i < p; i++ {
			TrsmUpperRight(t.Tile(k, k), t.Tile(i, k))
		}
		for i := k + 1; i < p; i++ {
			for j := k + 1; j < p; j++ {
				GemmNN(t.Tile(i, k), t.Tile(k, j), t.Tile(i, j))
			}
		}
	}
	return nil
}

// LUResidual returns ‖A − L·U‖_F / ‖A‖_F for a factorized full-tiled matrix.
func LUResidual(a *matrix.Dense, f *matrix.TiledFull) float64 {
	lu := f.ToDense()
	n := a.N
	// Reconstruct L·U: L unit lower, U upper, both stored in lu.
	r := matrix.NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				var lik float64
				if k == i {
					lik = 1
				} else {
					lik = lu.At(i, k)
				}
				if k <= j {
					s += lik * lu.At(k, j)
				}
			}
			r.Set(i, j, s)
		}
	}
	num := a.Sub(r).FrobeniusNorm()
	den := a.FrobeniusNorm()
	if den == 0 {
		return num
	}
	return num / den
}

// GetrfFlops returns the flop count of the unpivoted tile LU: 2nb³/3.
func GetrfFlops(nb int) float64 {
	n := float64(nb)
	return 2 * n * n * n / 3
}

// LUFlops returns the total flop count of an N×N LU factorization: 2N³/3.
func LUFlops(n int) float64 {
	x := float64(n)
	return 2 * x * x * x / 3
}
