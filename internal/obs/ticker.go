package obs

import (
	"fmt"
	"io"
)

// TickerSink returns a probe sink rendering frames as one overwriting
// terminal status line on w — the `-progress` stderr ticker of cholsim and
// choltune. Each frame redraws the line in place (carriage return, no
// newline); the Final frame ends it with a newline so subsequent output
// starts clean. The same frames feed the cholserved live stream, so the
// ticker is purely a renderer.
func TickerSink(w io.Writer, prefix string) func(Frame) {
	return func(f Frame) {
		switch f.Source {
		case SourceSimulate:
			fmt.Fprintf(w, "\r%s: sim %d/%d tasks  t=%.4fs  ready=%d   ",
				prefix, f.Done, f.Total, f.SimSec, f.ReadyDepth)
		case SourceCPSolve:
			fmt.Fprintf(w, "\r%s: cp %d/%d nodes  best=%.6fs  cut=%d   ",
				prefix, f.Done, f.Total, f.IncumbentSec, f.CutSubtrees)
		case SourceReplay:
			fmt.Fprintf(w, "\r%s: replay %d/%d jobs  dedup=%d resume=%d scratch=%d   ",
				prefix, f.Done, f.Total, f.DedupHits, f.DeltaResume, f.DeltaScratch)
		case SourceSweep:
			fmt.Fprintf(w, "\r%s: sweep %d/%d candidates   ", prefix, f.Done, f.Total)
		}
		if f.Final {
			fmt.Fprintln(w)
		}
	}
}
