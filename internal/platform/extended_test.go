package platform

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestMirageExtendedValidatesAllAlgorithms(t *testing.T) {
	p := MirageExtended()
	for _, d := range []*graph.DAG{graph.Cholesky(6), graph.LU(6), graph.QR(6)} {
		if err := p.Validate(d.Kinds()); err != nil {
			t.Fatalf("%s: %v", d.Algorithm, err)
		}
	}
}

func TestMirageExtendedPreservesCholeskyTimes(t *testing.T) {
	base := Mirage()
	ext := MirageExtended()
	for _, k := range graph.CholeskyKinds {
		for cls := 0; cls <= 1; cls++ {
			if ext.Time(cls, k) != base.Time(cls, k) {
				t.Fatalf("class %d kernel %v changed", cls, k)
			}
		}
	}
}

func TestExtendedSpeedups(t *testing.T) {
	p := MirageExtended()
	want := map[graph.Kind]float64{
		graph.GETRF: SpeedupGETRF,
		graph.GEQRT: SpeedupGEQRT,
		graph.ORMQR: SpeedupORMQR,
		graph.TSQRT: SpeedupTSQRT,
		graph.TSMQR: SpeedupTSMQR,
	}
	for k, w := range want {
		got := p.Time(0, k) / p.Time(1, k)
		if math.Abs(got-w) > 1e-9 {
			t.Fatalf("%v speedup %g, want %g", k, got, w)
		}
	}
}

func TestExtendedTimesPositive(t *testing.T) {
	for k, v := range ExtendedCPUKernelTimes(TileNB) {
		if v <= 0 {
			t.Fatalf("CPU %v time %g", k, v)
		}
	}
	for k, v := range ExtendedGPUKernelTimes(TileNB) {
		if v <= 0 {
			t.Fatalf("GPU %v time %g", k, v)
		}
	}
}

func TestVectorKernelTimes(t *testing.T) {
	p := MirageExtended()
	// TRSV is slower on GPU (latency-bound recurrence).
	if p.Time(1, graph.TRSV) <= p.Time(0, graph.TRSV) {
		t.Fatal("TRSV should be slower on GPU")
	}
	if p.Time(1, graph.GEMV) >= p.Time(0, graph.GEMV) {
		t.Fatal("GEMV should be faster on GPU")
	}
	if err := p.Validate(graph.ForwardSolve(4).Kinds()); err != nil {
		t.Fatal(err)
	}
}
