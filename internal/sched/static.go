package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
)

// StaticSchedule is a fully determined schedule: a worker and a planned
// start time per task. It is produced offline (by the HEFT list scheduler
// below or by the CP solver in internal/cpsolve) and can be injected into
// the runtime either completely (worker + order) or mapping-only.
type StaticSchedule struct {
	Worker      []int     // per task ID
	Start       []float64 // planned start times (defines per-worker order)
	EstMakespan float64
}

// Validate checks the schedule covers every task with a valid worker.
func (s *StaticSchedule) Validate(d *graph.DAG, p *platform.Platform) error {
	if len(s.Worker) != len(d.Tasks) || len(s.Start) != len(d.Tasks) {
		return fmt.Errorf("sched: static schedule covers %d tasks, DAG has %d",
			len(s.Worker), len(d.Tasks))
	}
	for id, w := range s.Worker {
		if w < 0 || w >= p.Workers() {
			return fmt.Errorf("sched: task %d on invalid worker %d", id, w)
		}
		if math.IsInf(p.Time(p.WorkerClass(w), d.Tasks[id].Kind), 1) {
			return fmt.Errorf("sched: task %d kind %v unrunnable on worker %d",
				id, d.Tasks[id].Kind, w)
		}
	}
	return nil
}

// ClassOf returns the task→class mapping of the schedule, the input of the
// mapping-only injection experiment.
func (s *StaticSchedule) ClassOf(p *platform.Platform) map[int]int {
	m := make(map[int]int, len(s.Worker))
	for id, w := range s.Worker {
		m[id] = p.WorkerClass(w)
	}
	return m
}

// Scheduler wraps the static schedule as a Scheduler: tasks go exactly to
// their planned worker and drain in planned start order ("injecting the
// exact schedule obtained from CP solution in the simulation").
func (s *StaticSchedule) Scheduler(name string) Scheduler {
	return &staticSched{name: name, plan: s}
}

type staticSched struct {
	name string
	plan *StaticSchedule
	prev []int // per task: the task planned immediately before it on the same worker (−1: none)
}

func (s *staticSched) Name() string  { return s.name }
func (s *staticSched) Ordered() bool { return true }
func (s *staticSched) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	if len(s.plan.Worker) != len(d.Tasks) {
		panic("sched: static schedule does not match DAG")
	}
	// Per-worker planned sequences, for exact-order gating. Indexed by
	// worker (not a map) so traversal order is deterministic.
	perWorker := make([][]int, p.Workers())
	for id, w := range s.plan.Worker {
		perWorker[w] = append(perWorker[w], id)
	}
	s.prev = make([]int, len(d.Tasks))
	for i := range s.prev {
		s.prev[i] = -1
	}
	for _, ids := range perWorker {
		sort.SliceStable(ids, func(a, b int) bool {
			// Tie-break on the exact stored plan times: both sides are the
			// same float64 slots, so bit-equality is the intended test.
			if s.plan.Start[ids[a]] != s.plan.Start[ids[b]] { //chollint:floateq
				return s.plan.Start[ids[a]] < s.plan.Start[ids[b]]
			}
			return ids[a] < ids[b]
		})
		for i := 1; i < len(ids); i++ {
			s.prev[ids[i]] = ids[i-1]
		}
	}
}

// MayStart enforces the planned per-worker order (sched.Gater).
func (s *staticSched) MayStart(t *graph.Task, completed func(int) bool) bool {
	p := s.prev[t.ID]
	return p == -1 || completed(p)
}
func (s *staticSched) Assign(v View, t *graph.Task) int { return s.plan.Worker[t.ID] }
func (s *staticSched) Priority(t *graph.Task) float64   { return -s.plan.Start[t.ID] }

// MappingScheduler returns a dmdas variant constrained to the schedule's
// CPU/GPU mapping but free to choose order and precise worker — the
// Section VI-B experiment showing that mapping alone is not enough.
func (s *StaticSchedule) MappingScheduler(p *platform.Platform) Scheduler {
	return NewDMDASWithHints("dmdas+cp-mapping", ClassMap(s.ClassOf(p)))
}

// OrderScheduler returns the complementary injection to MappingScheduler:
// the schedule's *ordering* (planned start times become queue priorities)
// with worker choice left to the dynamic minimum-completion-time rule.
// Together with full and mapping-only injection this completes the
// Section VI-B design space — it isolates how much of the CP solution's
// value lives in its "precise non-intuitive task ordering".
func (s *StaticSchedule) OrderScheduler() Scheduler {
	return &orderSched{plan: s, dm: dm{name: "dmda+cp-order", sorted: true, useComm: true}}
}

type orderSched struct {
	dm
	plan *StaticSchedule
}

func (s *orderSched) Init(d *graph.DAG, p *platform.Platform, seed int64) {
	if len(s.plan.Worker) != len(d.Tasks) {
		panic("sched: static schedule does not match DAG")
	}
}

func (s *orderSched) Priority(t *graph.Task) float64 { return -s.plan.Start[t.ID] }

// HEFT computes a classic static HEFT schedule (Topcuoglu et al.): tasks in
// decreasing upward rank (bottom level under platform-average execution
// times), each placed on the worker minimizing its earliest finish time.
// Communication is not modelled (matching the bounds' and CP's setting).
// It serves as the CP solver's warm start, as in the paper.
func HEFT(d *graph.DAG, p *platform.Platform) (*StaticSchedule, error) {
	bl, err := d.BottomLevels(func(t *graph.Task) float64 {
		return p.AverageTimeNB(t.Kind, t.NB)
	})
	if err != nil {
		return nil, err
	}
	order := make([]int, len(d.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return bl[order[a]] > bl[order[b]] })

	nW := p.Workers()
	workerFree := make([]float64, nW)
	start := make([]float64, len(d.Tasks))
	finish := make([]float64, len(d.Tasks))
	worker := make([]int, len(d.Tasks))
	scheduled := make([]bool, len(d.Tasks))

	for _, id := range order {
		t := d.Tasks[id]
		ready := 0.0
		for _, pr := range t.Pred {
			if !scheduled[pr] {
				// Upward-rank order is a topological order (rank strictly
				// decreases along edges), so this cannot happen.
				return nil, fmt.Errorf("sched: HEFT order violated dependency %d→%d", pr, id)
			}
			if finish[pr] > ready {
				ready = finish[pr]
			}
		}
		bestW, bestEFT := -1, math.Inf(1)
		for w := 0; w < nW; w++ {
			exec := p.TimeNB(p.WorkerClass(w), t.Kind, t.NB)
			if math.IsInf(exec, 1) {
				continue
			}
			eft := math.Max(workerFree[w], ready) + exec
			if eft < bestEFT {
				bestEFT, bestW = eft, w
			}
		}
		if bestW == -1 {
			return nil, fmt.Errorf("sched: task %s runnable nowhere", t.Name())
		}
		worker[id] = bestW
		start[id] = bestEFT - p.TimeNB(p.WorkerClass(bestW), t.Kind, t.NB)
		finish[id] = bestEFT
		workerFree[bestW] = bestEFT
		scheduled[id] = true
	}
	mk := 0.0
	for _, f := range finish {
		if f > mk {
			mk = f
		}
	}
	return &StaticSchedule{Worker: worker, Start: start, EstMakespan: mk}, nil
}
