package obs_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/simulator"
)

func run(t *testing.T, p *platform.Platform, s sched.Scheduler, tiles int, rec *obs.Recorder) (*graph.DAG, *simulator.Result) {
	t.Helper()
	d := graph.Cholesky(tiles)
	r, err := simulator.Run(d, p, s, simulator.Options{Seed: 42, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestRecorderCapturesEvents(t *testing.T) {
	p := platform.Mirage()
	rec := obs.NewRecorder()
	d, r := run(t, p, sched.NewDMDA(), 8, rec)

	if got, want := len(rec.Decisions), len(d.Tasks); got != want {
		t.Fatalf("decisions %d, want one per task (%d)", got, want)
	}
	if got, want := len(rec.Readies), len(d.Tasks); got != want {
		t.Fatalf("readies %d, want %d", got, want)
	}
	for i, dec := range rec.Decisions {
		if int(dec.Worker) != r.Worker[dec.Task] {
			t.Fatalf("decision %d chose worker %d, result ran task %d on %d",
				i, dec.Worker, dec.Task, r.Worker[dec.Task])
		}
		cands := rec.DecisionCandidates(dec)
		if len(cands) != p.Workers() {
			t.Fatalf("decision %d weighed %d candidates, want all %d workers", i, len(cands), p.Workers())
		}
		chosen := 0
		for _, c := range cands {
			if c.Chosen {
				chosen++
				if c.Worker != dec.Worker {
					t.Fatalf("decision %d: chosen flag on worker %d, decision says %d", i, c.Worker, dec.Worker)
				}
				if c.Infeasible {
					t.Fatalf("decision %d chose an infeasible worker", i)
				}
			}
			if !c.Infeasible && !c.HintExcluded && c.ECTSec < dec.TimeSec-1e-12 {
				t.Fatalf("decision %d: candidate ECT %g before decision time %g", i, c.ECTSec, dec.TimeSec)
			}
		}
		if chosen != 1 {
			t.Fatalf("decision %d: %d candidates marked chosen", i, chosen)
		}
	}
	if len(rec.Transfers) == 0 {
		t.Fatal("mirage run recorded no PCI transfers")
	}
	if r.TransferCount != len(rec.Transfers) {
		t.Fatalf("recorder saw %d transfers, result counted %d", len(rec.Transfers), r.TransferCount)
	}
	var transferSec float64
	for _, tr := range rec.Transfers {
		if tr.EndSec < tr.StartSec {
			t.Fatalf("transfer ends before it starts: %+v", tr)
		}
		transferSec += tr.EndSec - tr.StartSec
	}
	if math.Abs(transferSec-r.TransferSec) > 1e-9 {
		t.Fatalf("recorded transfer time %g, result %g", transferSec, r.TransferSec)
	}

	counts := rec.EventCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != rec.Events() {
		t.Fatalf("EventCounts sums to %d, Events() %d", total, rec.Events())
	}
	if depth := rec.MeanDecisionDepth(); depth != float64(p.Workers()) {
		t.Fatalf("mean decision depth %g, want %d", depth, p.Workers())
	}

	rec.Reset()
	if rec.Events() != 0 || len(rec.Candidates) != 0 {
		t.Fatalf("Reset left %d events, %d candidates", rec.Events(), len(rec.Candidates))
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *obs.Recorder
	if rec.Events() != 0 {
		t.Fatal("nil recorder reports events")
	}
	if rec.EventCounts() != nil {
		t.Fatal("nil recorder reports counts")
	}
	if rec.MeanDecisionDepth() != 0 {
		t.Fatal("nil recorder reports depth")
	}
}

// samplePlatformArgs supplies one concrete argument per parameterized
// registry entry, so the attribution identity is exercised on every
// registered platform shape.
var samplePlatformArgs = map[string]string{
	"homogeneous": "4",
	"related":     "20",
}

// TestAttributionSumsToGap is the acceptance identity: for every registered
// platform, the attribution components must sum to makespan − MixedBound
// within 1e-9.
func TestAttributionSumsToGap(t *testing.T) {
	for _, e := range core.Platforms() {
		name := e.Name
		if e.Param != "" {
			arg, ok := samplePlatformArgs[e.Name]
			if !ok {
				t.Fatalf("no sample argument for parameterized platform %q — add one", e.Name)
			}
			name = e.Name + ":" + arg
		}
		t.Run(name, func(t *testing.T) {
			p, err := core.NewPlatform(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, withRec := range []bool{false, true} {
				var rec *obs.Recorder
				if withRec {
					rec = obs.NewRecorder()
				}
				d, r := run(t, p, sched.NewDMDAS(), 10, rec)
				a, err := obs.AttributeGap(d, p, r.Worker, r.BusySec, r.Start, r.End,
					r.MakespanSec, r.TransferSec, rec)
				if err != nil {
					t.Fatal(err)
				}
				if diff := math.Abs(a.Sum() - a.GapSec); diff > 1e-9 {
					t.Fatalf("recorder=%v: components sum to %g, gap %g (off by %g)",
						withRec, a.Sum(), a.GapSec, diff)
				}
				if a.GapSec < -1e-9 {
					t.Fatalf("recorder=%v: negative gap %g — schedule beat the bound", withRec, a.GapSec)
				}
				if a.CriticalClass == "" {
					t.Fatal("no critical class named")
				}
			}
		})
	}
}

func TestAttributionRenderAndJSON(t *testing.T) {
	p := platform.Mirage()
	rec := obs.NewRecorder()
	d, r := run(t, p, sched.NewDMDA(), 8, rec)
	a, err := obs.AttributeGap(d, p, r.Worker, r.BusySec, r.Start, r.End,
		r.MakespanSec, r.TransferSec, rec)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{"gap attribution", "cp-wait", "pci-stall", "starvation", "drain", "miscast-work", "bound-slack", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("attribution must marshal (no ±Inf/NaN fields): %v", err)
	}
	var back obs.Attribution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.GapSec != a.GapSec || len(back.Components) != len(a.Components) {
		t.Fatal("attribution did not round-trip through JSON")
	}
}

func TestAttributionRejectsShortRecord(t *testing.T) {
	p := platform.Mirage()
	d, r := run(t, p, sched.NewDMDA(), 4, nil)
	_, err := obs.AttributeGap(d, p, r.Worker[:1], r.BusySec, r.Start, r.End,
		r.MakespanSec, r.TransferSec, nil)
	if err == nil {
		t.Fatal("truncated execution record accepted")
	}
}
