package simulator

import (
	"math"

	"repro/internal/sched"
)

// LaneBatch owns the mutable state of W seed-lanes advanced by one event
// loop, laid out structure-of-arrays: every lane's dense per-run arrays —
// worker clocks, tile locations, LRU stamps, pin counts, dependency counts
// and the precomputed jitter draws — are carved from four shared lane-major
// slabs (one backing allocation per element type), so lane i's state is one
// contiguous stripe and the whole batch costs four allocations instead of
// a dozen per lane. Queue rings, the event heap and the Result stay
// per-lane: they grow dynamically and escape, respectively.
//
// A zero LaneBatch is ready; Bind sizes it for a (Prep, lane-count) pair and
// may be called again to rebind the batch (slabs and per-lane backings are
// reused when their capacity suffices — the replay.Pool contract). A
// LaneBatch must not be shared by concurrent shards.
type LaneBatch struct {
	pp   *Prep
	runs []LaneRun

	f64   []float64
	bools []bool
	i32   []int32
	ints  []int
}

// LaneRun is one lane of a batch: a full simulation advanced event by event
// under the driver's control instead of a closed loop. The step sequence
// reuses the exact serial transition functions (processEvent/finalize), so a
// lane's Result is bit-identical to Prep.Run with the same scheduler,
// options and jitter draws — a structural property, not a tolerance.
type LaneRun struct {
	st       state
	pp       *Prep
	jitBuf   []float64
	startBuf []int32
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Bind sizes the batch for `lanes` lanes over pp and carves each lane's
// dense arrays from the lane-major slabs. Existing backing memory is reused
// whenever large enough.
func (lb *LaneBatch) Bind(pp *Prep, lanes int) {
	n, nW, nNodes, nTiles := pp.nTasks, pp.p.Workers(), pp.nNodes, pp.nTiles
	f64L := 2*nW + nNodes + 2*n        // workerFree, estFree, linkFree, dataReady, jitter row
	boolL := 2*nW + n + nTiles*nNodes  // executing, workerDirty, doneTask, loc
	i32L := nTiles + nNodes*nTiles + n // locCount, pins, indeg
	intL := nNodes * nTiles            // lastUse

	lb.pp = pp
	lb.f64 = growF64(lb.f64, lanes*f64L)
	lb.bools = growBools(lb.bools, lanes*boolL)
	lb.i32 = growI32(lb.i32, lanes*i32L)
	lb.ints = growInts(lb.ints, lanes*intL)
	if cap(lb.runs) < lanes {
		runs := make([]LaneRun, lanes)
		// Keep the old lanes' queue rings and event heaps: they are not
		// slab-carved and survive a rebind.
		copy(runs, lb.runs)
		lb.runs = runs
	}
	lb.runs = lb.runs[:lanes]

	for i := range lb.runs {
		lr := &lb.runs[i]
		lr.pp = pp
		st := &lr.st

		off := i * f64L
		st.workerFree = lb.f64[off : off+nW : off+nW]
		off += nW
		st.estFree = lb.f64[off : off+nW : off+nW]
		off += nW
		st.linkFree = lb.f64[off : off+nNodes : off+nNodes]
		off += nNodes
		st.dataReady = lb.f64[off : off+n : off+n]
		off += n
		lr.jitBuf = lb.f64[off : off+n : off+n]

		off = i * boolL
		st.executing = lb.bools[off : off+nW : off+nW]
		off += nW
		st.workerDirty = lb.bools[off : off+nW : off+nW]
		off += nW
		st.doneTask = lb.bools[off : off+n : off+n]
		off += n
		st.loc = lb.bools[off : off+nTiles*nNodes : off+nTiles*nNodes]

		off = i * i32L
		st.locCount = lb.i32[off : off+nTiles : off+nTiles]
		off += nTiles
		st.pins = lb.i32[off : off+nNodes*nTiles : off+nNodes*nTiles]
		off += nNodes * nTiles
		st.indeg = lb.i32[off : off+n : off+n]

		off = i * intL
		st.lastUse = lb.ints[off : off+intL : off+intL]
	}
}

// Lanes returns the bound lane count.
func (lb *LaneBatch) Lanes() int { return len(lb.runs) }

// Release drops every retained backing array, returning the batch to its
// zero state; the next Bind re-allocates right-sized slabs. replay.Pool
// calls it when a pooled batch exceeds its high-water cap.
func (lb *LaneBatch) Release() {
	*lb = LaneBatch{}
}

// Lane returns lane i's run handle, valid until the next Bind.
func (lb *LaneBatch) Lane(i int) *LaneRun { return &lb.runs[i] }

// Footprint approximates the batch's retained backing memory in bytes:
// the four slabs plus every lane's queue rings and event heap.
func (lb *LaneBatch) Footprint() int {
	b := 8*cap(lb.f64) + cap(lb.bools) + 4*cap(lb.i32) + 8*cap(lb.ints)
	for i := range lb.runs {
		st := &lb.runs[i].st
		b += 32 * cap(st.events) // sizeof(event)
		for w := range st.queues {
			b += 24 * cap(st.queues[w].items) // sizeof(queueEntry)
		}
		b += 4 * cap(lb.runs[i].startBuf)
	}
	return b
}

// Reset binds the lane to a (scheduler, options) run, reusing the carved
// arrays. With skipInit the scheduler is not re-Init'ed: legal only when the
// instance is shared across the batch under the proven
// SeedInvariant+PureAssign contracts (sched.Shareable) and was Init'ed once
// by the caller.
func (lr *LaneRun) Reset(s sched.Scheduler, opt Options, skipInit bool) {
	lr.st.reset(lr.pp, s, opt)
	if !skipInit {
		s.Init(lr.pp.d, lr.pp.p, opt.Seed)
	}
}

// PrimeJitter precomputes the lane's per-task jitter draws for the given run
// seed into the slab-carved row and switches the lane's jitter model onto
// it. The values are bit-identical to the serial per-task generator draws
// (jitter.go); must be called before Begin — root starts consume draws.
func (lr *LaneRun) PrimeJitter(seed int64) {
	JitterRow(seed, lr.jitBuf)
	lr.st.jitU = lr.jitBuf
}

// SetJitterRow primes the lane with caller-computed jitter draws (one per
// task ID), copied into the slab-carved row. The caller owns the source
// slice. Same contract as PrimeJitter; replay computes rows once up front
// for grouping and hands each representative its row through here.
func (lr *LaneRun) SetJitterRow(row []float64) {
	copy(lr.jitBuf, row)
	lr.st.jitU = lr.jitBuf
}

// JitterValues exposes the primed row (nil when unprimed) for replay's
// divergence and merge bookkeeping.
func (lr *LaneRun) JitterValues() []float64 { return lr.st.jitU }

// RecordStarts makes the lane record task IDs in start order, for
// divergence-point search against follower lanes' jitter rows.
func (lr *LaneRun) RecordStarts() {
	if cap(lr.startBuf) < lr.pp.nTasks {
		lr.startBuf = make([]int32, lr.pp.nTasks)
	}
	lr.st.startTrace = lr.startBuf[:lr.pp.nTasks]
}

// StartOrder returns the recorded task IDs in start order (length Started).
func (lr *LaneRun) StartOrder() []int32 { return lr.st.startTrace[:lr.st.started] }

// Begin performs the root assignments and first ready scan. Not used when
// resuming from a Snapshot — the snapshot already holds in-flight events.
func (lr *LaneRun) Begin() { lr.st.start() }

// Step advances the lane by one completion event and reports whether events
// remain. The advance is the serial loop body verbatim.
//
//chol:hotpath lane advance; one completion event of one lane per call
func (lr *LaneRun) Step() bool {
	st := &lr.st
	if len(st.events) == 0 {
		return false
	}
	st.processEvent()
	return len(st.events) > 0
}

// Pending reports whether the lane still has in-flight events.
func (lr *LaneRun) Pending() bool { return len(lr.st.events) > 0 }

// Done returns the number of completion events processed so far.
func (lr *LaneRun) Done() int { return lr.st.done }

// Started returns the number of task starts so far (jitter draws consumed).
func (lr *LaneRun) Started() int { return lr.st.started }

// TaskStarted reports whether the task has started (its jitter draw is
// consumed and its execution time fixed).
func (lr *LaneRun) TaskStarted(id int) bool { return lr.st.res.Worker[id] != -1 }

// Finalize completes the drained lane and returns its Result.
func (lr *LaneRun) Finalize() (*Result, error) { return lr.st.finalize() }

// Snapshot captures the lane's full mutable state at the current event
// boundary; Restore on any lane of the same Prep resumes from it bit-exactly.
func (lr *LaneRun) Snapshot() *Snapshot { return lr.st.captureSnapshot() }

// Restore loads a snapshot into a freshly Reset lane (same Prep). The lane's
// own jitter row is kept: restoring a representative's snapshot under a
// follower's row is exactly the lazy split — the shared prefix is adopted,
// the divergent suffix resimulated with the follower's draws.
func (lr *LaneRun) Restore(sn *Snapshot) { lr.st.restore(sn) }

// FutureJitterEqual reports whether b would consume bit-identical jitter
// draws for every task lr has not started yet. Callers pair it with
// StateDigest equality (same started set, same everything else) to prove two
// lanes share their entire future. Unprimed lanes (jitter off) trivially
// agree with each other.
func (lr *LaneRun) FutureJitterEqual(b *LaneRun) bool {
	ju, jv := lr.st.jitU, b.st.jitU
	if ju == nil || jv == nil {
		return ju == nil && jv == nil
	}
	for id := 0; id < lr.st.nTasks; id++ {
		if lr.st.res.Worker[id] == -1 && ju[id] != jv[id] { //chollint:floateq bit-identity gate
			return false
		}
	}
	return true
}

// laneDigest is an FNV-64a-style word folder for state digests.
type laneDigest struct{ h uint64 }

func (d *laneDigest) u64(v uint64) {
	d.h ^= v
	d.h *= 1099511628211
}

func (d *laneDigest) f64(v float64) { d.u64(math.Float64bits(v)) }
func (d *laneDigest) i(v int)       { d.u64(uint64(int64(v))) }
func (d *laneDigest) b(v bool) {
	if v {
		d.u64(1)
	} else {
		d.u64(0)
	}
}

// StateDigest folds every piece of mutable lane state — clocks, queues,
// events, tile locations, LRU stamps, pins, partial results — into one
// 64-bit value. Two live lanes of the same batch with equal digests are in
// bit-identical states: with a shared scheduler instance and
// FutureJitterEqual draws their remaining simulation cannot differ, which is
// the mid-run re-merge criterion replay.Lanes keys on. Heap and residency
// arrays are folded in layout order — conservative: a layout difference that
// happens to be behaviorally neutral reads as a mismatch, never the reverse.
func (lr *LaneRun) StateDigest() uint64 {
	st := &lr.st
	d := laneDigest{h: 14695981039346656037}
	d.i(st.done)
	d.i(st.decisions)
	d.i(st.started)
	d.i(st.seq)
	d.f64(st.now)
	for w := range st.queues {
		q := &st.queues[w]
		n := q.size()
		d.i(n)
		for i := 0; i < n; i++ {
			e := q.at(i)
			d.i(e.task.ID)
			d.f64(e.prio)
			d.i(e.seq)
		}
	}
	for _, v := range st.executing {
		d.b(v)
	}
	for _, v := range st.workerFree {
		d.f64(v)
	}
	for _, v := range st.estFree {
		d.f64(v)
	}
	for _, v := range st.workerDirty {
		d.b(v)
	}
	for _, v := range st.dataReady {
		d.f64(v)
	}
	for _, v := range st.doneTask {
		d.b(v)
	}
	for _, v := range st.linkFree {
		d.f64(v)
	}
	for _, v := range st.loc {
		d.b(v)
	}
	for _, v := range st.locCount {
		d.u64(uint64(uint32(v)))
	}
	for _, v := range st.lastUse {
		d.i(v)
	}
	for _, v := range st.pins {
		d.u64(uint64(uint32(v)))
	}
	for node := range st.residentTiles {
		rs := st.residentTiles[node]
		d.i(len(rs))
		for _, v := range rs {
			d.u64(uint64(uint32(v)))
		}
	}
	d.i(len(st.events))
	for i := range st.events {
		e := &st.events[i]
		d.f64(e.time)
		d.i(e.seq)
		d.i(e.worker)
		d.i(e.task.ID)
	}
	for _, v := range st.indeg {
		d.u64(uint64(uint32(v)))
	}
	r := st.res
	d.f64(r.TransferSec)
	d.i(r.TransferCount)
	d.i(r.Evictions)
	d.i(r.Writebacks)
	d.f64(r.StallSec)
	for id := range r.Start {
		d.f64(r.Start[id])
		d.f64(r.End[id])
		d.i(r.Worker[id])
	}
	for w := range r.BusySec {
		d.f64(r.BusySec[w])
	}
	return d.h
}
