package analysis_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestWriteJSONGolden pins the exact `chollint -json` wire format: one JSON
// object per line, fixed key order, escape hint present only for analyzers
// with a suppression word.
func TestWriteJSONGolden(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/sched/sched.go", Line: 42, Column: 7},
			Analyzer: "puremark",
			Message:  "dm claims SeedInvariant but the claim is unprovable: (*dm).Assign ranges-map-nondet: ranges over a map at sched.go:50",
		},
		{
			Pos:      token.Position{Filename: "internal/service/live.go", Line: 9, Column: 2},
			Analyzer: "leakguard",
			Message:  "goroutine may never exit: unconditional loop with no ctx.Done/ctx.Err check, close-gated range, or comma-ok receive on its exit path (annotate //chollint:leakok if joined externally)",
		},
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"file":"internal/sched/sched.go","line":42,"col":7,"analyzer":"puremark","message":"dm claims SeedInvariant but the claim is unprovable: (*dm).Assign ranges-map-nondet: ranges over a map at sched.go:50","escape":"//chollint:pure"}
{"file":"internal/service/live.go","line":9,"col":2,"analyzer":"leakguard","message":"goroutine may never exit: unconditional loop with no ctx.Done/ctx.Err check, close-gated range, or comma-ok receive on its exit path (annotate //chollint:leakok if joined externally)","escape":"//chollint:leakok"}
`
	if got := buf.String(); got != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", got, want)
	}

	// Every line must round-trip as standalone JSON (the jq contract).
	for i, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var jd analysis.JSONDiagnostic
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			t.Errorf("line %d is not standalone JSON: %v", i+1, err)
		}
	}
}

// TestEscapeHint checks the analyzer→directive table stays in sync with the
// registered suite.
func TestEscapeHint(t *testing.T) {
	cases := map[string]string{
		"detranged":    "//chollint:ordered",
		"noclock":      "//chollint:realtime",
		"hotpathalloc": "//chollint:alloc",
		"ctxflow":      "//chollint:ctx",
		"floateq":      "//chollint:floateq",
		"recnil":       "//chollint:unguarded",
		"puremark":     "//chollint:pure",
		"hotcall":      "//chollint:hotcall",
		"leakguard":    "//chollint:leakok",
		"nosuch":       "",
	}
	for name, want := range cases {
		if got := analysis.EscapeHint(name); got != want {
			t.Errorf("EscapeHint(%q) = %q, want %q", name, got, want)
		}
	}
}
