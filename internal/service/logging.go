package service

import (
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Structured request logging: every request gets a monotonic request ID
// (echoed in the X-Request-ID response header, so a client report can be
// joined against the server's log) and one log/slog record with method,
// path, status, response size and latency.

var reqSeq atomic.Uint64

// withLogging wraps a handler with request-ID assignment and one slog
// record per request.
func withLogging(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := "req-" + strconv.FormatUint(reqSeq.Add(1), 10)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Info("request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("dur", time.Since(start)),
		)
	})
}

// discardLogger is the default when Config.Logger is nil: the middleware
// stays on (request IDs are still assigned) but records go nowhere.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
