package lp

import (
	"math"
	"testing"
)

// fuzzReader decodes fuzz bytes into small bounded integers so the
// generated LPs stay well-conditioned (simplex on wild coefficients would
// only test float noise, not solver logic).
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// intIn returns a value in [lo, hi].
func (r *fuzzReader) intIn(lo, hi int) int {
	span := hi - lo + 1
	return lo + int(r.byte())%span
}

// decodeLP builds a feasible problem from fuzz bytes: coefficients and a
// non-negative witness point x0 are drawn first, then each row's RHS is set
// relative to A·x0 so that x0 satisfies it — the LP is feasible by
// construction, which lets the target assert on Solve's answer instead of
// merely checking it doesn't crash.
func decodeLP(data []byte) (p *Problem, x0 []float64) {
	r := &fuzzReader{data: data}
	n := r.intIn(1, 5)
	m := r.intIn(1, 7)
	c := make([]float64, n)
	for j := range c {
		c[j] = float64(r.intIn(-4, 6))
	}
	x0 = make([]float64, n)
	for j := range x0 {
		x0[j] = float64(r.intIn(0, 5))
	}
	p = NewProblem(c)
	for i := 0; i < m; i++ {
		coef := make([]float64, n)
		dot := 0.0
		for j := range coef {
			coef[j] = float64(r.intIn(-3, 4))
			dot += coef[j] * x0[j]
		}
		slack := float64(r.intIn(0, 8))
		switch r.intIn(0, 2) {
		case 0:
			p.AddConstraint(coef, LE, dot+slack)
		case 1:
			p.AddConstraint(coef, GE, dot-slack)
		default:
			p.AddConstraint(coef, EQ, dot)
		}
	}
	return p, x0
}

// FuzzLPSolve feeds Solve random feasible LPs and checks the invariants a
// correct simplex can never break: a feasible problem is never reported
// infeasible; an optimal solution is primal-feasible, non-negative,
// objective-consistent, and no worse than the known feasible witness.
func FuzzLPSolve(f *testing.F) {
	// Seeds shaped after the package's unit tests: a plain 2-var LE program,
	// an EQ+GE program needing phase 1, a degenerate tie, an unbounded ray,
	// and the area-LP shape (assignment rows + capacity rows).
	f.Add([]byte{2, 2, 10, 3, 2, 3, 1, 1, 0, 4, 1, 1, 0, 3})
	f.Add([]byte{3, 3, 1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 0, 1, 2, 3, 1, 4, 1})
	f.Add([]byte{1, 2, 5, 1, 1, 0, 0, 1, 0, 0})
	f.Add([]byte{4, 5, 0, 0, 0, 9, 5, 5, 5, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return // keep cases small and fast
		}
		p, x0 := decodeLP(data)
		sol := Solve(p)
		if sol.Status == Infeasible {
			t.Fatalf("feasible-by-construction LP reported infeasible (witness %v, rows %+v)", x0, p.Rows)
		}
		if sol.Status != Optimal {
			return // Unbounded is legal: the objective can be an open ray
		}
		const tol = 1e-6
		if len(sol.X) != len(p.C) {
			t.Fatalf("solution has %d vars, problem has %d", len(sol.X), len(p.C))
		}
		witness := 0.0
		for j, v := range sol.X {
			if v < -tol {
				t.Fatalf("negative variable x[%d] = %g", j, v)
			}
			witness += p.C[j] * x0[j]
		}
		for i, row := range p.Rows {
			dot := 0.0
			for j, a := range row.Coef {
				dot += a * sol.X[j]
			}
			switch row.Rel {
			case LE:
				if dot > row.RHS+tol {
					t.Fatalf("row %d violated: %g </= %g", i, dot, row.RHS)
				}
			case GE:
				if dot < row.RHS-tol {
					t.Fatalf("row %d violated: %g >/= %g", i, dot, row.RHS)
				}
			case EQ:
				if math.Abs(dot-row.RHS) > tol {
					t.Fatalf("row %d violated: %g != %g", i, dot, row.RHS)
				}
			}
		}
		obj := 0.0
		for j := range sol.X {
			obj += p.C[j] * sol.X[j]
		}
		if math.Abs(obj-sol.Obj) > tol*(1+math.Abs(obj)) {
			t.Fatalf("objective %g does not match C·X = %g", sol.Obj, obj)
		}
		if sol.Obj > witness+tol {
			t.Fatalf("claimed optimum %g is worse than feasible witness value %g", sol.Obj, witness)
		}
	})
}
