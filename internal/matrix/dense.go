// Package matrix provides dense and tiled symmetric matrix storage for the
// Cholesky reproduction: SPD test-matrix generators, norms, a reference
// (untiled) Cholesky factorization, and residual verification used to check
// the tiled kernels and the parallel runtime.
//
// All matrices are double precision (float64) and stored row-major, matching
// the paper's setting (dense, symmetric, positive-definite, double
// precision).
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major N×N dense matrix of float64.
type Dense struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewDense allocates a zero N×N matrix.
func NewDense(n int) *Dense {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// Equal reports whether m and o have the same shape and elements within tol.
func (m *Dense) Equal(o *Dense, tol float64) bool {
	if m.N != o.N {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max_{ij} |m_ij|.
func (m *Dense) MaxAbs() float64 {
	s := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·o as a new matrix.
func (m *Dense) Mul(o *Dense) *Dense {
	if m.N != o.N {
		panic("matrix: dimension mismatch in Mul")
	}
	n := m.N
	r := NewDense(n)
	for i := 0; i < n; i++ {
		ri := r.Data[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			ok := o.Data[k*n : (k+1)*n]
			for j := range ri {
				ri[j] += a * ok[j]
			}
		}
	}
	return r
}

// Sub returns m−o as a new matrix.
func (m *Dense) Sub(o *Dense) *Dense {
	if m.N != o.N {
		panic("matrix: dimension mismatch in Sub")
	}
	r := NewDense(m.N)
	for i := range r.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// LowerTimesTranspose returns L·Lᵀ where only the lower triangle (including
// the diagonal) of m is read; the strict upper triangle is ignored. This is
// the product used when verifying a Cholesky factor.
func (m *Dense) LowerTimesTranspose() *Dense {
	n := m.N
	r := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			kmax := j
			if i < j {
				kmax = i
			}
			for k := 0; k <= kmax; k++ {
				s += m.At(i, k) * m.At(j, k)
			}
			r.Set(i, j, s)
			r.Set(j, i, s)
		}
	}
	return r
}

// ErrNotPositiveDefinite is returned when a (reference or tiled) Cholesky
// factorization encounters a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("matrix: not positive definite")

// ReferenceCholesky factorizes m in place into its lower Cholesky factor L
// (classic untiled right-looking algorithm). The strict upper triangle is
// zeroed. It is the ground truth against which the tiled algorithm and the
// parallel runtime are verified.
func ReferenceCholesky(m *Dense) error {
	n := m.N
	for k := 0; k < n; k++ {
		d := m.At(k, k)
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, k, d)
		}
		d = math.Sqrt(d)
		m.Set(k, k, d)
		for i := k + 1; i < n; i++ {
			m.Set(i, k, m.At(i, k)/d)
		}
		for j := k + 1; j < n; j++ {
			ljk := m.At(j, k)
			if ljk == 0 {
				continue
			}
			for i := j; i < n; i++ {
				m.Set(i, j, m.At(i, j)-m.At(i, k)*ljk)
			}
		}
	}
	// Zero the strict upper triangle so the result is exactly L.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 0)
		}
	}
	return nil
}

// CholeskyResidual returns the relative residual ‖A − L·Lᵀ‖_F / ‖A‖_F, where
// l holds the factor in its lower triangle. Small (≈1e−14·N) residuals
// indicate a correct factorization.
func CholeskyResidual(a, l *Dense) float64 {
	if a.N != l.N {
		panic("matrix: dimension mismatch in CholeskyResidual")
	}
	llt := l.LowerTimesTranspose()
	num := a.Sub(llt).FrobeniusNorm()
	den := a.FrobeniusNorm()
	if den == 0 {
		return num
	}
	return num / den
}
