package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the interprocedural program model the v2 analyzers
// (puremark, hotcall, leakguard) run on: one node per function body in the
// loaded units, call edges classified by how the callee is named, and the
// bookkeeping (bindings, contract types, hot roots, suppressions) the
// bottom-up effect solver in summarize.go consumes.
//
// Cross-package references inside one Program deserve a note: each unit is
// type-checked from source, but its *imports* resolve through compiler
// export data, so the same function is represented by different
// types.Func objects in different units. Every cross-unit map is therefore
// keyed by types.Func.FullName() / package-qualified type name, which both
// universes render identically.

// A PackageUnit is one source-checked package participating in a Program.
type PackageUnit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Program is the whole-program view: all units, their function nodes, and
// the solved effect summaries.
type Program struct {
	Fset  *token.FileSet
	Units []*PackageUnit

	byName map[string]*FuncNode // FullName() → node, for declared funcs
	lits   map[*ast.FuncLit]*FuncNode
	all    []*FuncNode

	// binds maps a func-typed local/global object to the function values
	// observed flowing into it (closures, func refs, method values).
	binds map[types.Object][]boundTarget

	// contractTypes holds the package-qualified names of named func types
	// whose declaration carries //chol:pure: calls through values of these
	// types are trusted pure, and every acquisition site must prove it.
	contractTypes map[string]bool
	acquisitions  []acquisition

	// namedTypes: all package-scope named (non-alias) types across units,
	// the closed world for interface-dispatch widening (CHA).
	namedTypes []namedInfo

	sup    suppressions // merged across units: escape words by file:line
	solved bool

	implCache map[string][]implTarget // iface method FullName → impls
	hotReach  map[*FuncNode]hotPath
}

type namedInfo struct {
	named *types.Named
	unit  *PackageUnit
}

// A FuncNode is one function body: a declared function/method or a function
// literal. Literals inherit the enclosing declaration's receiver and
// parameters for effect rooting (a closure writing the method receiver is a
// receiver mutation), while ParamCalls indexes only the literal's own
// parameters.
type FuncNode struct {
	Fn   *types.Func   // nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Unit *PackageUnit
	Name string // display name: "(*dm).Assign", "Combine$1"

	Hot       bool // carries //chol:hotpath
	enclosing *FuncNode

	recv      types.Object
	params    []types.Object // inherited + own, for rooting
	ownParams []types.Object // this frame's own, for ParamCalls bits

	intrinsic  Effects
	Summary    Effects
	ParamCalls uint32

	edges []*callEdge
	wit   map[Effects]*Witness
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// A Witness explains why one effect bit is set: either an intrinsic cause
// ("ranges over a map") or a call through which the bit arrived, in which
// case Via points at the callee whose own witness continues the chain.
type Witness struct {
	Pos  token.Position
	What string
	Via  *FuncNode
}

type rootKind uint8

const (
	rootLocal rootKind = iota
	rootRecv
	rootParam
	rootCaptured
	rootGlobal
	rootUnknown
)

// A root classifies what storage an lvalue or receiver expression bottoms
// out in, in the frame of the enclosing FuncNode.
type root struct {
	kind rootKind
	idx  int // parameter index when kind == rootParam
}

type boundTarget struct {
	node     *FuncNode
	ext      *types.Func
	recvRoot root // for method values
	contract bool
	unknown  bool
}

// An acquisition is a site where a concrete function value meets a
// //chol:pure contract type; puremark proves each one.
type acquisition struct {
	unit     *PackageUnit
	pos      token.Pos
	typeName string // contract type's qualified name
	targets  []boundTarget
}

// A callEdge records one call site. Exactly one of the target fields is
// meaningful, selected by kind.
type callEdge struct {
	pos token.Pos

	callee   *FuncNode   // static call to a loaded function
	ext      *types.Func // static call to a function without a body
	ifaceKey string      // interface method FullName → CHA widening
	bindObj  types.Object
	paramIdx int  // call through own parameter (index), else -1
	contract bool // call through a //chol:pure contract-typed value
	unknown  bool // unresolvable function value

	recvRoot root
	args     []argVal
	noHot    bool // //chollint:hotcall at the call site: cut for hotcall
}

// An argVal describes one argument, as needed to substitute callee
// ParamCalls bits and to translate callee argument mutations.
type argVal struct {
	root     root
	isFunc   bool
	targets  []boundTarget // function values flowing in, when resolvable
	param    int           // caller's own param forwarded, else -1
	contract bool
	unknown  bool
}

type hotPath struct {
	rootNode *FuncNode // the //chol:hotpath declaration
	via      *FuncNode // immediate hot caller
	pos      token.Position
}

// NewProgram assembles and solves a Program over the given units.
func NewProgram(fset *token.FileSet, units []*PackageUnit) *Program {
	p := &Program{
		Fset:          fset,
		Units:         units,
		byName:        map[string]*FuncNode{},
		lits:          map[*ast.FuncLit]*FuncNode{},
		binds:         map[types.Object][]boundTarget{},
		contractTypes: map[string]bool{},
		sup:           suppressions{},
		implCache:     map[string][]implTarget{},
	}
	for _, u := range units {
		for f, lines := range collectSuppressions(u.Fset, u.Files) {
			p.sup[f] = lines
		}
		p.collectDecls(u)
	}
	for _, u := range units {
		p.scanUnit(u)
	}
	p.solve()
	p.computeHotReach()
	return p
}

func unitTestFile(u *PackageUnit, f *ast.File) bool {
	return strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go")
}

// collectDecls creates nodes for declared functions, records contract type
// declarations, and gathers the named types forming the CHA world.
func (p *Program) collectDecls(u *PackageUnit) {
	scope := u.Pkg.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
			if named, ok := tn.Type().(*types.Named); ok {
				p.namedTypes = append(p.namedTypes, namedInfo{named, u})
			}
		}
	}
	for _, f := range u.Files {
		if unitTestFile(u, f) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, _ := u.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &FuncNode{
					Fn:   fn,
					Decl: d,
					Unit: u,
					Name: displayName(fn),
					Hot:  funcDirective(d.Doc, HotpathDirective),
					wit:  map[Effects]*Witness{},
				}
				if d.Recv != nil && len(d.Recv.List) == 1 && len(d.Recv.List[0].Names) == 1 {
					n.recv = u.Info.Defs[d.Recv.List[0].Names[0]]
				}
				n.params = paramObjs(u.Info, d.Type.Params)
				n.ownParams = n.params
				p.byName[fn.FullName()] = n
				p.all = append(p.all, n)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if !funcDirective(doc, PureContractDirective) {
						continue
					}
					if tn, ok := u.Info.Defs[ts.Name].(*types.TypeName); ok {
						if _, isSig := tn.Type().Underlying().(*types.Signature); isSig {
							p.contractTypes[qualifiedTypeName(tn)] = true
						}
					}
				}
			}
		}
	}
}

// PureContractDirective marks a named func type whose values are, by
// contract, effect-free to call: the engine trusts calls through the type
// and puremark proves every site where a concrete function acquires it.
const PureContractDirective = "chol:pure"

func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func qualifiedTypeName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

func paramObjs(info *types.Info, fl *ast.FieldList) []types.Object {
	if fl == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fl.List {
		for _, name := range f.Names {
			if o := info.Defs[name]; o != nil {
				out = append(out, o)
			}
		}
	}
	return out
}

// scanUnit walks every declared body in the unit, creating literal nodes and
// intrinsic effects/edges as it goes.
func (p *Program) scanUnit(u *PackageUnit) {
	for _, f := range u.Files {
		if unitTestFile(u, f) {
			continue
		}
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fn, _ := u.Info.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := p.byName[fn.FullName()]
			if n != nil {
				p.scanBody(n, d.Body)
			}
		}
	}
}

// litNode creates (or returns) the node for a function literal nested in
// encl. Rooting state (receiver, parameters) is inherited so a closure's
// writes classify in the frame its effects will be folded into.
func (p *Program) litNode(encl *FuncNode, lit *ast.FuncLit) *FuncNode {
	if n, ok := p.lits[lit]; ok {
		return n
	}
	n := &FuncNode{
		Lit:       lit,
		Unit:      encl.Unit,
		Name:      encl.Name + "$lit",
		enclosing: encl,
		recv:      encl.recv,
		wit:       map[Effects]*Witness{},
	}
	own := paramObjs(encl.Unit.Info, lit.Type.Params)
	n.params = append(append([]types.Object{}, encl.params...), own...)
	n.ownParams = own
	p.lits[lit] = n
	p.all = append(p.all, n)
	return n
}

// scanBody computes n's intrinsic effects and call edges, recursing into
// nested literals as their own nodes. The traversal deliberately does not
// descend into a literal from its encloser: a closure's effects belong to
// whoever calls it, which the edge/binding machinery tracks.
func (p *Program) scanBody(n *FuncNode, body ast.Node) {
	u := n.Unit
	info := u.Info
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			child := p.litNode(n, x)
			p.scanBody(child, x.Body)
			n.intrinsic |= EffAllocates
			return false
		case *ast.AssignStmt:
			p.scanAssign(n, x)
		case *ast.ValueSpec:
			p.scanValueSpec(n, x)
		case *ast.IncDecStmt:
			p.addMutation(n, p.classify(n, x.X), x.Pos(), "writes "+render(u.Fset, x.X))
		case *ast.SendStmt:
			p.addIntrinsic(n, EffBlocks, x.Pos(), "sends on a channel")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.addIntrinsic(n, EffBlocks, x.Pos(), "receives from a channel")
			}
		case *ast.GoStmt:
			p.addIntrinsic(n, EffSpawnsGoroutine, x.Pos(), "spawns a goroutine")
			p.scanCall(n, x.Call)
			return false // the call itself became an edge; args were scanned there
		case *ast.DeferStmt:
			p.scanCall(n, x.Call)
			return false
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pos := u.Fset.Position(x.Pos())
					if !p.sup.matches(pos, "ordered") {
						p.addIntrinsic(n, EffRangesMap, x.Pos(), "ranges over a map")
					}
				case *types.Chan:
					p.addIntrinsic(n, EffBlocks, x.Pos(), "ranges over a channel")
				}
			}
			if x.Tok == token.ASSIGN {
				for _, lhs := range []ast.Expr{x.Key, x.Value} {
					if lhs != nil {
						p.addMutation(n, p.classify(n, lhs), x.Pos(), "writes "+render(u.Fset, lhs))
					}
				}
			}
		case *ast.CallExpr:
			p.scanCall(n, x)
			for _, a := range x.Args {
				ast.Inspect(a, walk)
			}
			// Fun operands (e.g. x in x.m()) may contain nested calls.
			ast.Inspect(x.Fun, walk)
			return false
		case *ast.ReturnStmt:
			p.scanReturn(n, x)
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isPkgLevelVar(v) {
				p.addIntrinsic(n, EffReadsGlobal, x.Pos(), "reads package variable "+v.Name())
			}
		case *ast.CompositeLit:
			n.intrinsic |= EffAllocates
			p.scanCompositeAcquisitions(n, x)
		}
		return true
	}
	ast.Inspect(body, walk)
}

func isPkgLevelVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (p *Program) addIntrinsic(n *FuncNode, bit Effects, pos token.Pos, what string) {
	n.intrinsic |= bit
	if _, ok := n.wit[bit]; !ok {
		n.wit[bit] = &Witness{Pos: n.Unit.Fset.Position(pos), What: what}
	}
}

// addMutation records a write through the given root in n's frame.
func (p *Program) addMutation(n *FuncNode, r root, pos token.Pos, what string) {
	switch r.kind {
	case rootRecv:
		p.addIntrinsic(n, EffMutatesReceiver, pos, what)
	case rootParam, rootCaptured, rootUnknown:
		p.addIntrinsic(n, EffMutatesArg, pos, what)
	case rootGlobal:
		p.addIntrinsic(n, EffMutatesGlobal, pos, what)
	}
}

func (p *Program) scanAssign(n *FuncNode, asg *ast.AssignStmt) {
	info := n.Unit.Info
	for _, lhs := range asg.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" || info.Defs[id] != nil {
				continue // definition or blank: no external write
			}
		}
		p.addMutation(n, p.classify(n, lhs), lhs.Pos(), "writes "+render(n.Unit.Fset, lhs))
	}
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, lhs := range asg.Lhs {
		// Any contract-typed destination (variable, field, element) is an
		// acquisition site for the value flowing in.
		if lt := info.TypeOf(lhs); lt != nil {
			p.recordAcquisition(n, lt, asg.Rhs[i])
		}
		// Track function values flowing into simple variables.
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if _, isSig := obj.Type().Underlying().(*types.Signature); !isSig {
			continue
		}
		p.binds[obj] = append(p.binds[obj], p.funcValueTargets(n, asg.Rhs[i])...)
	}
}

func (p *Program) scanValueSpec(n *FuncNode, vs *ast.ValueSpec) {
	info := n.Unit.Info
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		obj := info.Defs[name]
		if obj == nil {
			continue
		}
		if _, isSig := obj.Type().Underlying().(*types.Signature); !isSig {
			continue
		}
		p.binds[obj] = append(p.binds[obj], p.funcValueTargets(n, vs.Values[i])...)
		p.recordAcquisition(n, obj.Type(), vs.Values[i])
	}
}

// scanReturn records contract acquisitions at return sites: a plain function
// value returned as a contract-typed result is stored into the contract.
func (p *Program) scanReturn(n *FuncNode, ret *ast.ReturnStmt) {
	if len(p.contractTypes) == 0 {
		return
	}
	var sig *types.Signature
	switch {
	case n.Fn != nil:
		sig, _ = n.Fn.Type().(*types.Signature)
	case n.Lit != nil:
		if t := n.Unit.Info.TypeOf(n.Lit); t != nil {
			sig, _ = t.(*types.Signature)
		}
	}
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // bare return, or one multi-value call: nothing addressable
	}
	for i, res := range ret.Results {
		p.recordAcquisition(n, sig.Results().At(i).Type(), res)
	}
}

// scanCompositeAcquisitions records contract acquisitions for function values
// stored into composite-literal fields or elements.
func (p *Program) scanCompositeAcquisitions(n *FuncNode, cl *ast.CompositeLit) {
	if len(p.contractTypes) == 0 {
		return
	}
	t := n.Unit.Info.TypeOf(cl)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for f := 0; f < u.NumFields(); f++ {
					if u.Field(f).Name() == key.Name {
						p.recordAcquisition(n, u.Field(f).Type(), kv.Value)
						break
					}
				}
			} else if i < u.NumFields() {
				p.recordAcquisition(n, u.Field(i).Type(), elt)
			}
		}
	case *types.Slice:
		for _, elt := range cl.Elts {
			p.recordAcquisition(n, u.Elem(), eltValue(elt))
		}
	case *types.Array:
		for _, elt := range cl.Elts {
			p.recordAcquisition(n, u.Elem(), eltValue(elt))
		}
	case *types.Map:
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				p.recordAcquisition(n, u.Elem(), kv.Value)
			}
		}
	}
}

func eltValue(e ast.Expr) ast.Expr {
	if kv, ok := e.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return e
}

// funcValueTargets resolves a func-typed expression to the function values
// it may denote.
func (p *Program) funcValueTargets(n *FuncNode, e ast.Expr) []boundTarget {
	info := n.Unit.Info
	e = ast.Unparen(e)
	if p.isContractExpr(info, e) {
		return []boundTarget{{contract: true}}
	}
	switch x := e.(type) {
	case *ast.FuncLit:
		return []boundTarget{{node: p.litNode(n, x)}}
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Func:
			if tn := p.byName[obj.FullName()]; tn != nil {
				return []boundTarget{{node: tn}}
			}
			return []boundTarget{{ext: obj}}
		case *types.Var:
			if bs := p.binds[obj]; len(bs) > 0 {
				return bs
			}
		case nil:
			if x.Name == "nil" {
				return nil
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			bt := boundTarget{recvRoot: p.classify(n, x.X)}
			if tn := p.byName[fn.FullName()]; tn != nil {
				bt.node = tn
			} else {
				bt.ext = fn
			}
			return []boundTarget{bt}
		}
	case *ast.CallExpr:
		// A conversion to a contract type wraps its operand; a conversion to
		// any other func type is transparent.
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			if p.isContractType(tv.Type) {
				return []boundTarget{{contract: true}}
			}
			return p.funcValueTargets(n, x.Args[0])
		}
	}
	if t := info.TypeOf(e); t != nil {
		if _, isSig := t.Underlying().(*types.Signature); isSig {
			return []boundTarget{{unknown: true}}
		}
	}
	return nil
}

func (p *Program) isContractType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		return p.contractTypes[qualifiedTypeName(named.Obj())]
	}
	return false
}

func (p *Program) isContractExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(ast.Unparen(e))
	return t != nil && p.isContractType(t)
}

// recordAcquisition notes a site where a non-contract function value is
// stored into a contract-typed location; puremark proves each one.
func (p *Program) recordAcquisition(n *FuncNode, want types.Type, val ast.Expr) {
	if !p.isContractType(want) || p.isContractExpr(n.Unit.Info, val) {
		return
	}
	targets := p.funcValueTargets(n, val)
	if len(targets) == 0 {
		return // nil or non-func: nothing to prove
	}
	p.acquisitions = append(p.acquisitions, acquisition{
		unit:     n.Unit,
		pos:      val.Pos(),
		typeName: qualifiedTypeName(want.(*types.Named).Obj()),
		targets:  targets,
	})
}

// scanCall classifies one call site into an edge and scans its arguments
// for acquisitions.
func (p *Program) scanCall(n *FuncNode, call *ast.CallExpr) {
	info := n.Unit.Info
	fun := ast.Unparen(call.Fun)

	// Type conversions: not calls. A conversion to a contract type is an
	// acquisition of its operand.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			p.recordAcquisition(n, tv.Type, call.Args[0])
			if dst := tv.Type; isStringByteConv(dst, info.TypeOf(call.Args[0])) {
				n.intrinsic |= EffAllocates
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				n.intrinsic |= EffAllocates
			case "delete", "close":
				if len(call.Args) > 0 {
					p.addMutation(n, p.classify(n, call.Args[0]), call.Pos(), b.Name()+" of "+render(n.Unit.Fset, call.Args[0]))
				}
			case "print", "println":
				p.addIntrinsic(n, EffMutatesGlobal, call.Pos(), "calls "+b.Name())
			}
			return
		}
	}

	e := &callEdge{pos: call.Pos(), paramIdx: -1}
	pos := n.Unit.Fset.Position(call.Pos())
	// Either escape cuts hot propagation: //chollint:hotcall is the explicit
	// edge cut, and a line already excused from hot-path allocation
	// discipline (//chollint:alloc, e.g. a panic-formatting abort path)
	// excuses its callees by the same argument.
	e.noHot = p.sup.matches(pos, "hotcall") || p.sup.matches(pos, "alloc")

	// Argument values (for ParamCalls substitution / mutation translation)
	// and contract acquisitions at parameter positions.
	var sig *types.Signature
	if t := info.TypeOf(call.Fun); t != nil {
		sig, _ = t.Underlying().(*types.Signature)
	}
	for i, arg := range call.Args {
		av := argVal{root: p.classify(n, arg), param: -1}
		at := info.TypeOf(ast.Unparen(arg))
		if at != nil {
			_, av.isFunc = at.Underlying().(*types.Signature)
		}
		if av.isFunc {
			switch {
			case p.isContractExpr(info, arg):
				av.contract = true
			default:
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if k := indexOf(n.ownParams, obj); k >= 0 {
							av.param = k
						}
					}
				}
				if av.param < 0 {
					av.targets = p.funcValueTargets(n, arg)
					if len(av.targets) == 0 {
						av.unknown = true
					}
				}
			}
		}
		e.args = append(e.args, av)
		if sig != nil {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				if !call.Ellipsis.IsValid() {
					pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
				}
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			if pt != nil {
				p.recordAcquisition(n, pt, arg)
			}
		}
	}

	// Classify the callee.
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			p.finishStatic(n, e, obj)
			return
		case *types.Var:
			if p.isContractType(obj.Type()) {
				e.contract = true
				n.edges = append(n.edges, e)
				return
			}
			if k := indexOf(n.ownParams, obj); k >= 0 {
				e.paramIdx = k
				n.edges = append(n.edges, e)
				return
			}
			e.bindObj = obj
			n.edges = append(n.edges, e)
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
				e.recvRoot = p.classify(n, f.X)
				if types.IsInterface(sel.Recv().Underlying()) {
					e.ifaceKey = fn.FullName()
					n.edges = append(n.edges, e)
					return
				}
			}
			p.finishStatic(n, e, fn)
			return
		}
		// Field of func type.
		if p.isContractExpr(info, f) {
			e.contract = true
			n.edges = append(n.edges, e)
			return
		}
	}
	if p.isContractExpr(info, fun) {
		e.contract = true
		n.edges = append(n.edges, e)
		return
	}
	if fl, ok := fun.(*ast.FuncLit); ok {
		e.callee = p.litNode(n, fl)
		n.edges = append(n.edges, e)
		return
	}
	e.unknown = true
	n.edges = append(n.edges, e)
}

func (p *Program) finishStatic(n *FuncNode, e *callEdge, fn *types.Func) {
	if target := p.byName[fn.FullName()]; target != nil {
		e.callee = target
	} else {
		e.ext = fn
	}
	n.edges = append(n.edges, e)
}

func indexOf(objs []types.Object, obj types.Object) int {
	for i, o := range objs {
		if o == obj {
			return i
		}
	}
	return -1
}

// classify resolves an expression to the storage root it bottoms out in,
// in n's frame.
func (p *Program) classify(n *FuncNode, e ast.Expr) root {
	info := n.Unit.Info
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return p.classifyObj(n, obj)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return root{kind: rootGlobal}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return root{kind: rootUnknown}
		}
	}
}

func (p *Program) classifyObj(n *FuncNode, obj types.Object) root {
	if obj == nil {
		return root{kind: rootUnknown}
	}
	if n.recv != nil && obj == n.recv {
		return root{kind: rootRecv}
	}
	if i := indexOf(n.params, obj); i >= 0 {
		return root{kind: rootParam, idx: i}
	}
	if v, ok := obj.(*types.Var); ok {
		if isPkgLevelVar(v) {
			return root{kind: rootGlobal}
		}
		// A variable declared outside this literal's own body is captured
		// enclosing state: externally visible when the closure escapes.
		if n.Lit != nil && obj.Pos().IsValid() &&
			(obj.Pos() < n.Lit.Pos() || obj.Pos() > n.Lit.End()) {
			return root{kind: rootCaptured}
		}
		return root{kind: rootLocal}
	}
	return root{kind: rootUnknown}
}
