// Package feq exercises floateq: exact ==/!= between floats.
package feq

const zeroGFlops = 0.0

func computedEquality(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

func computedInequality(a, b float64) bool {
	return a != b // want `exact float comparison a != b`
}

func exactZeroGuardFine(den float64) float64 {
	if den == 0 { // constant-zero sentinel: exempt by design
		return 0
	}
	return 1 / den
}

func namedZeroConstFine(x float64) bool {
	return x == zeroGFlops // still a compile-time zero
}

func nonZeroConstFlagged(x float64) bool {
	return x == 1.5 // want `exact float comparison x == 1.5`
}

func intComparisonFine(a, b int) bool {
	return a == b // integers compare exactly
}

func orderingFine(a, b float64) bool {
	return a < b // only == and != are flagged
}

func float32Flagged(a, b float32) bool {
	return a == b // want `exact float comparison a == b`
}

func tieBreakEscaped(a, b float64) bool {
	return a != b //chollint:floateq tie-break on identical stored slots
}
