package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextCancelMidFlight cancels while jobs are still queued: the
// dispatcher must stop handing out work, drain in-flight jobs, and report
// how far it got.
func TestRunContextCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job[int], 64)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) {
			if started.Add(1) == 4 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i, nil
		}
	}
	_, err := RunContext(ctx, jobs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 64 {
		t.Fatalf("all %d jobs ran despite cancellation", n)
	}
}

func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapContext(ctx, []int{1, 2, 3, 4}, 2, func(v int) (int, error) {
		ran.Add(1)
		return v * v, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapContextCompletes(t *testing.T) {
	out, err := MapContext(context.Background(), []int{1, 2, 3}, 2, func(v int) (int, error) { return v + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 2 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
}
