package runtime

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

func TestFactorLUParallelCorrect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, pol := range []Policy{FIFO, Priority, Random} {
			a := matrix.DiagDominant(48, 3)
			tf, err := matrix.FromDenseFull(a, 8)
			if err != nil {
				t.Fatal(err)
			}
			r, err := FactorLU(tf, Options{Workers: workers, Policy: pol, Seed: 1})
			if err != nil {
				t.Fatalf("%v/%d: %v", pol, workers, err)
			}
			if res := kernels.LUResidual(a, tf); res > 1e-11 {
				t.Fatalf("%v/%d: LU residual %g", pol, workers, res)
			}
			if err := Validate(graph.LU(6), r); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestFactorLUMatchesSequential(t *testing.T) {
	a := matrix.DiagDominant(32, 9)
	seq, _ := matrix.FromDenseFull(a, 8)
	par, _ := matrix.FromDenseFull(a, 8)
	if err := kernels.TiledLU(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := FactorLU(par, Options{Workers: 4, Policy: Priority}); err != nil {
		t.Fatal(err)
	}
	// Dependencies order all conflicting accesses: results must be bitwise
	// identical to the sequential execution.
	for i := 0; i < seq.P; i++ {
		for j := 0; j < seq.P; j++ {
			s, p := seq.Tile(i, j), par.Tile(i, j)
			for k := range s.Data {
				if s.Data[k] != p.Data[k] {
					t.Fatalf("tile (%d,%d)[%d] differs", i, j, k)
				}
			}
		}
	}
}

func TestFactorLUZeroPivotPropagates(t *testing.T) {
	a := matrix.NewDense(16) // all zeros: first pivot is zero
	tf, _ := matrix.FromDenseFull(a, 4)
	_, err := FactorLU(tf, Options{Workers: 2})
	if !errors.Is(err, kernels.ErrZeroPivot) {
		t.Fatalf("expected ErrZeroPivot, got %v", err)
	}
}

func TestFactorQRParallelCorrect(t *testing.T) {
	for _, workers := range []int{1, 4} {
		a := matrix.RandSymmetric(40, 17)
		tf, err := matrix.FromDenseFull(a, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, r, err := FactorQR(tf, Options{Workers: workers, Policy: Priority})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res := kernels.QRResidual(a, tf); res > 1e-10 {
			t.Fatalf("workers=%d: QR residual %g", workers, res)
		}
		if err := Validate(graph.QR(5), r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFactorQRMatchesSequential(t *testing.T) {
	a := matrix.RandSymmetric(24, 5)
	seq, _ := matrix.FromDenseFull(a, 8)
	par, _ := matrix.FromDenseFull(a, 8)
	auxSeq := kernels.TiledQR(seq)
	auxPar, _, err := FactorQR(par, Options{Workers: 4, Policy: Random, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seq.P; i++ {
		for j := 0; j < seq.P; j++ {
			s, p := seq.Tile(i, j), par.Tile(i, j)
			for k := range s.Data {
				if s.Data[k] != p.Data[k] {
					t.Fatalf("tile (%d,%d)[%d] differs", i, j, k)
				}
			}
		}
	}
	for k := range auxSeq.TauGE {
		for c := range auxSeq.TauGE[k] {
			if auxSeq.TauGE[k][c] != auxPar.TauGE[k][c] {
				t.Fatal("GEQRT taus differ")
			}
		}
	}
}

func TestLUExecutorRejectsWrongKind(t *testing.T) {
	tf := matrix.NewTiledFull(2, 2)
	fn := LUExecutor(tf)
	if err := fn(&graph.Task{Kind: graph.POTRF}); err == nil {
		t.Fatal("expected error for POTRF in LU executor")
	}
	fnQ := QRExecutor(tf, kernels.NewQRAux(2, 2))
	if err := fnQ(&graph.Task{Kind: graph.GEMM}); err == nil {
		t.Fatal("expected error for GEMM in QR executor")
	}
}
