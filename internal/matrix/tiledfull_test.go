package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromDenseFullRoundTrip(t *testing.T) {
	a := RandSymmetric(12, 4)
	tf, err := FromDenseFull(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.ToDense().Equal(a, 0) {
		t.Fatal("round trip lost data")
	}
	if tf.N() != 12 || tf.P != 4 {
		t.Fatal("shape wrong")
	}
}

func TestFromDenseFullErrors(t *testing.T) {
	a := RandSymmetric(10, 1)
	if _, err := FromDenseFull(a, 3); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := FromDenseFull(a, 0); err == nil {
		t.Fatal("expected tile-size error")
	}
}

func TestTiledFullCloneIndependent(t *testing.T) {
	a := RandSymmetric(8, 2)
	tf, _ := FromDenseFull(a, 4)
	c := tf.Clone()
	c.Tile(1, 0).Set(0, 0, 999)
	if tf.Tile(1, 0).At(0, 0) == 999 {
		t.Fatal("Clone shares storage")
	}
}

func TestTiledFullRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandSymmetric(6, seed)
		tf, err := FromDenseFull(a, 2)
		if err != nil {
			return false
		}
		return tf.ToDense().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagDominantIsDominant(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := DiagDominant(12, seed)
		for i := 0; i < 12; i++ {
			off := 0.0
			for j := 0; j < 12; j++ {
				if i != j {
					off += math.Abs(a.At(i, j))
				}
			}
			if math.Abs(a.At(i, i)) <= off {
				t.Fatalf("row %d not dominant: |diag| %g vs off %g", i, a.At(i, i), off)
			}
		}
	}
}

func TestDiagDominantDeterministic(t *testing.T) {
	if !DiagDominant(8, 5).Equal(DiagDominant(8, 5), 0) {
		t.Fatal("not deterministic")
	}
}
