// Command cholbench runs the repository's pinned benchmark suite and emits
// a machine-readable BENCH_*.json perf record (see internal/benchio for the
// schema). Unlike `go test -bench`, iteration counts are fixed per
// configuration, so allocs/op is exact and two runs — before and after an
// optimisation, or two PRs apart — are directly comparable.
//
// The suite covers the hot paths of the reproduction:
//
//   - the discrete-event simulator at P ∈ {16, 64, 128} tiles under the
//     dmda, dmdas and random policies;
//   - the same event loop with the obs event recorder attached (sim-recorded/*),
//     pinning the cost of decision tracing against the nil-recorder fast path;
//   - the event loop with the live-progress probe attached at its default
//     interval (sim-probed/*), pinning the frame-emission overhead against
//     the nil-probe fast path — with bit-identical schedule digests enforced
//     probe-on versus probe-off;
//   - the AreaInt / MixedInt bound ILPs at P ∈ {32, 64, 128};
//   - one end-to-end sweep (sizes × schedulers on the parallel sweep pool);
//   - the batched replay paths (sweep/multi-seed/*, sweep/delta/*): N-seed
//     sweeps through internal/replay versus the serial loop, and delta
//     re-simulation of a knob sweep versus from-scratch runs — with
//     bit-identical digests enforced in passing;
//   - the event-level lane executor (sweep/jitter-lanes/*): a 32-seed
//     jitter sweep through replay.Lanes versus the PR7 run-level path, with
//     per-seed digests enforced and the speedup gated at >= 2x.
//
// Usage:
//
//	cholbench -out BENCH_PR3.json                 # full suite
//	cholbench -out BENCH_PR3.json -baseline-from BENCH_old.json
//	cholbench -smoke                              # <60s sanity run for CI
//	cholbench -gobench -out suite.json            # also print benchstat text
//	cholbench -smoke -cpuprofile cpu.pprof        # profile the suite itself
//	cholbench -smoke -memprofile mem.pprof        # heap profile at exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/benchio"
	"repro/internal/bounds"
	"repro/internal/cpsolve"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simulator"
	"repro/internal/sweep"

	"repro/internal/core"
)

type simCase struct {
	p     int
	sched string
	iters int
}

type boundCase struct {
	p     int
	name  string
	iters int
	run   func(*graph.DAG, *platform.Platform) (bounds.Result, error)
}

func fullSimCases() []simCase {
	var cs []simCase
	iters := map[int]int{16: 20, 64: 3, 128: 1}
	for _, p := range []int{16, 64, 128} {
		for _, s := range []string{"dmda", "dmdas", "random"} {
			cs = append(cs, simCase{p: p, sched: s, iters: iters[p]})
		}
	}
	return cs
}

func fullBoundCases() []boundCase {
	var cs []boundCase
	for _, p := range []int{32, 64, 128} {
		cs = append(cs,
			boundCase{p: p, name: "area-int", iters: 20, run: bounds.AreaInt},
			boundCase{p: p, name: "mixed-int", iters: 20, run: bounds.MixedInt},
		)
	}
	return cs
}

func main() {
	smoke := flag.Bool("smoke", false, "reduced <60s suite: run, sanity-check, write nothing")
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	baselineFrom := flag.String("baseline-from", "", "previous suite JSON whose results become this run's embedded baseline")
	note := flag.String("note", "", "free-form note stored in the suite")
	gobench := flag.Bool("gobench", false, "also print results in Go benchmark text format (for benchstat)")
	gobenchFrom := flag.String("gobench-from", "", "print a previously written suite JSON in Go benchmark text format and exit (benchstat's old side)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at suite completion to this file")
	flag.Parse()

	if *gobenchFrom != "" {
		prev, err := benchio.ReadFile(*gobenchFrom)
		if err != nil {
			fatal(err)
		}
		fmt.Print(benchio.FormatGoBench(prev.Results))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuProfileStop = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		defer cpuProfileStop()
	}
	defer writeMemProfile(*memprofile)

	simCases, boundCases := fullSimCases(), fullBoundCases()
	recCases := []simCase{
		{p: 16, sched: "dmda", iters: 20},
		{p: 64, sched: "dmda", iters: 3},
	}
	probedCases := []simCase{
		{p: 16, sched: "dmda", iters: 20},
		{p: 64, sched: "dmda", iters: 3},
	}
	if *smoke {
		simCases = []simCase{
			{p: 16, sched: "dmda", iters: 3},
			{p: 16, sched: "dmdas", iters: 3},
			{p: 16, sched: "random", iters: 3},
			{p: 64, sched: "dmdas", iters: 1},
		}
		boundCases = []boundCase{
			{p: 32, name: "area-int", iters: 3, run: bounds.AreaInt},
			{p: 32, name: "mixed-int", iters: 3, run: bounds.MixedInt},
		}
		recCases = []simCase{{p: 16, sched: "dmda", iters: 3}}
		probedCases = []simCase{{p: 16, sched: "dmda", iters: 3}}
	}

	suite := benchio.NewSuite("cholbench")
	suite.Note = *note
	if *baselineFrom != "" {
		prev, err := benchio.ReadFile(*baselineFrom)
		if err != nil {
			fatal(err)
		}
		// A previous run that itself carried a baseline passes the *original*
		// baseline through, so the trajectory always compares against the
		// oldest recorded numbers.
		suite.Baseline = prev.Results
		if len(prev.Baseline) > 0 {
			suite.Baseline = prev.Baseline
		}
	}

	pf := platform.Mirage()

	// Simulator hot path. DAG construction is hoisted out of the measured
	// function: the suite targets the event loop, not the builder. The plain
	// timings also serve as the denominator for sim-probed/*'s
	// overhead_vs_plain metric.
	simNs := map[string]float64{}
	for _, c := range simCases {
		d := graph.Cholesky(c.p)
		flops := kernels.CholeskyFlops(c.p * platform.TileNB)
		var last *simulator.Result
		r := benchio.Measure(fmt.Sprintf("sim/P=%d/%s", c.p, c.sched), c.iters, func() {
			s, err := core.NewScheduler(c.sched)
			if err != nil {
				fatal(err)
			}
			res, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42})
			if err != nil {
				fatal(err)
			}
			last = res
		})
		if last.MakespanSec <= 0 {
			fatal(fmt.Errorf("cholbench: sim P=%d/%s produced non-positive makespan", c.p, c.sched))
		}
		r = r.WithMetric("sim_gflops", last.GFlops(flops)).
			WithMetric("tasks_per_sec", float64(len(d.Tasks))/(r.NsPerOp/1e9))
		simNs[r.Name] = r.NsPerOp
		suite.Add(r)
		progress(r)
	}

	// The same event loop with the obs recorder attached. The sim/* cases
	// above pin the nil-recorder fast path (comparable against PR2 via
	// -baseline-from); these pin the recording overhead, with a reused
	// recorder so steady-state capacity is measured, not first-run growth.
	// The harness also enforces the observability contract: recording must
	// not move a single task.
	for _, c := range recCases {
		d := graph.Cholesky(c.p)
		s, err := core.NewScheduler(c.sched)
		if err != nil {
			fatal(err)
		}
		plain, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42})
		if err != nil {
			fatal(err)
		}
		rec := obs.NewRecorder()
		var last *simulator.Result
		r := benchio.Measure(fmt.Sprintf("sim-recorded/P=%d/%s", c.p, c.sched), c.iters, func() {
			rec.Reset()
			s, err := core.NewScheduler(c.sched)
			if err != nil {
				fatal(err)
			}
			res, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42, Recorder: rec})
			if err != nil {
				fatal(err)
			}
			last = res
		})
		for id := range d.Tasks {
			// Bit-equality is the point: recording must not perturb the
			// schedule by even one ulp.
			if last.Worker[id] != plain.Worker[id] || last.Start[id] != plain.Start[id] { //chollint:floateq
				fatal(fmt.Errorf("cholbench: recording perturbed the P=%d/%s schedule at task %d", c.p, c.sched, id))
			}
		}
		r = r.WithMetric("events", float64(rec.Events())).
			WithMetric("mean_decision_depth", rec.MeanDecisionDepth())
		suite.Add(r)
		progress(r)
	}

	// The event loop with the live-progress probe attached at its default
	// interval (PR8). The sim/* cases pin the nil-probe fast path (probe and
	// recorder share one disabled-cost budget: the allocs/op there must not
	// move); these pin the enabled cost — overhead_vs_plain is the
	// probed/plain ratio, gated at ≤1.05 for P=64. The ratio is measured as
	// two interleaved plain/probed pairs and gated on the better pair: a
	// genuine overhead regression inflates every pair, while transient host
	// load (the measured swing on shared runners is far above the 5% gate
	// margin) inflates only the pair it lands on. The adjacent baselines —
	// rather than the sim/* numbers from minutes earlier in the suite —
	// keep both sides of the division on the same machine state. The
	// harness also enforces the probe contract: emitting frames must not
	// move a single task, checked as bit-identical schedule digests.
	for _, c := range probedCases {
		d := graph.Cholesky(c.p)
		s, err := core.NewScheduler(c.sched)
		if err != nil {
			fatal(err)
		}
		plain, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42})
		if err != nil {
			fatal(err)
		}
		var frames int64
		probe := obs.NewProbe(0, func(obs.Frame) { frames++ })
		var last *simulator.Result
		measurePlain := func() benchio.Result {
			return benchio.Measure(fmt.Sprintf("sim-probed-baseline/P=%d/%s", c.p, c.sched), c.iters, func() {
				s, err := core.NewScheduler(c.sched)
				if err != nil {
					fatal(err)
				}
				if _, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42}); err != nil {
					fatal(err)
				}
			})
		}
		measureProbed := func() benchio.Result {
			return benchio.Measure(fmt.Sprintf("sim-probed/P=%d/%s", c.p, c.sched), c.iters, func() {
				probe.Reset()
				s, err := core.NewScheduler(c.sched)
				if err != nil {
					fatal(err)
				}
				res, err := simulator.Run(d, pf, s, simulator.Options{Seed: 42, Probe: probe})
				if err != nil {
					fatal(err)
				}
				last = res
			})
		}
		var r benchio.Result
		overhead := 0.0
		for pair := 0; pair < 2; pair++ {
			rPlain := measurePlain()
			rProbed := measureProbed()
			if ratio := rProbed.NsPerOp / rPlain.NsPerOp; pair == 0 || ratio < overhead {
				overhead = ratio
				r = rProbed
			}
		}
		if replay.Digest(last) != replay.Digest(plain) {
			fatal(fmt.Errorf("cholbench: probe perturbed the P=%d/%s schedule", c.p, c.sched))
		}
		if !*smoke && c.p == 64 && overhead > 1.05 {
			fatal(fmt.Errorf("cholbench: sim-probed P=%d/%s overhead %.3fx over plain, want <= 1.05x", c.p, c.sched, overhead))
		}
		r = r.WithMetric("frames", float64(probe.Frames())).
			WithMetric("overhead_vs_plain", overhead)
		suite.Add(r)
		progress(r)
	}

	// Bound LPs/ILPs.
	for _, c := range boundCases {
		d := graph.Cholesky(c.p)
		flops := kernels.CholeskyFlops(c.p * platform.TileNB)
		var last bounds.Result
		r := benchio.Measure(fmt.Sprintf("bounds/%s/P=%d", c.name, c.p), c.iters, func() {
			b, err := c.run(d, pf)
			if err != nil {
				fatal(err)
			}
			last = b
		})
		if last.MakespanSec <= 0 {
			fatal(fmt.Errorf("cholbench: bound %s P=%d produced non-positive makespan", c.name, c.p))
		}
		r = r.WithMetric("bound_gflops", last.GFlops(flops))
		suite.Add(r)
		progress(r)
	}

	// Mixed-tile pipeline: the HeSP-style variable-tile-size DAG through the
	// event loop and the per-(kind, size) bound LPs. These pin the cost of the
	// size-parametrised cost model — the grouped ILP has more variables than
	// the per-kind one, and the simulator prices every task through
	// CostModel.Time instead of a flat table.
	mixedSimCases := []struct {
		p, fromK, factor int
		sched            string
		iters            int
	}{
		{p: 16, fromK: 8, factor: 2, sched: "dmdas", iters: 10},
		{p: 16, fromK: 8, factor: 2, sched: "partition:0.5", iters: 10},
		{p: 32, fromK: 24, factor: 2, sched: "dmdas", iters: 3},
	}
	mixedBoundCases := []boundCase{
		{p: 16, name: "area-int", iters: 10, run: bounds.AreaInt},
		{p: 16, name: "mixed-int", iters: 10, run: bounds.MixedInt},
	}
	if *smoke {
		mixedSimCases = mixedSimCases[:1]
		mixedSimCases[0].iters = 3
		mixedBoundCases = []boundCase{
			{p: 16, name: "mixed-int", iters: 3, run: bounds.MixedInt},
		}
	}
	pfm := platform.MirageExtended()
	pfm.Model = platform.ModelScaled // price sub-reference tiles by scaling
	for _, c := range mixedSimCases {
		d := graph.CholeskySplit(c.p, c.fromK, c.factor, pfm.DefaultNB())
		flops := kernels.CholeskyFlops(c.p * pfm.DefaultNB())
		var last *simulator.Result
		r := benchio.Measure(fmt.Sprintf("sim-mixed-tile/P=%d/%d@%d/%s", c.p, c.factor, c.fromK, c.sched), c.iters, func() {
			s, err := core.NewScheduler(c.sched)
			if err != nil {
				fatal(err)
			}
			res, err := simulator.Run(d, pfm, s, simulator.Options{Seed: 42})
			if err != nil {
				fatal(err)
			}
			last = res
		})
		if last.MakespanSec <= 0 {
			fatal(fmt.Errorf("cholbench: sim-mixed-tile P=%d/%s produced non-positive makespan", c.p, c.sched))
		}
		r = r.WithMetric("sim_gflops", last.GFlops(flops)).
			WithMetric("tasks_per_sec", float64(len(d.Tasks))/(r.NsPerOp/1e9))
		suite.Add(r)
		progress(r)
	}
	for _, c := range mixedBoundCases {
		d := graph.CholeskySplit(c.p, c.p/2, 2, pfm.DefaultNB())
		flops := kernels.CholeskyFlops(c.p * pfm.DefaultNB())
		var last bounds.Result
		r := benchio.Measure(fmt.Sprintf("bounds-mixed-tile/%s/P=%d", c.name, c.p), c.iters, func() {
			b, err := c.run(d, pfm)
			if err != nil {
				fatal(err)
			}
			last = b
		})
		if last.MakespanSec <= 0 {
			fatal(fmt.Errorf("cholbench: bound %s mixed P=%d produced non-positive makespan", c.name, c.p))
		}
		r = r.WithMetric("bound_gflops", last.GFlops(flops))
		suite.Add(r)
		progress(r)
	}

	// CP branch-and-bound: node throughput and incumbent quality at a fixed
	// budget across worker counts. The search is deterministic in the worker
	// count, so makespan_at_budget must agree across the workers=… variants
	// of a size — only nodes_per_sec may move. On a single-core host
	// (GOMAXPROCS=1) the workers only interleave, so expect flat throughput
	// there; the scaling story needs real cores.
	cpCases := []struct{ p, budget, workers, iters int }{
		{p: 8, budget: 20000, workers: 1, iters: 5},
		{p: 8, budget: 20000, workers: 4, iters: 5},
		{p: 8, budget: 20000, workers: 8, iters: 5},
		{p: 16, budget: 20000, workers: 1, iters: 3},
		{p: 16, budget: 20000, workers: 4, iters: 3},
		{p: 16, budget: 20000, workers: 8, iters: 3},
	}
	if *smoke {
		cpCases = []struct{ p, budget, workers, iters int }{
			{p: 8, budget: 5000, workers: 4, iters: 2},
		}
	}
	for _, c := range cpCases {
		d := graph.Cholesky(c.p)
		var last *cpsolve.Result
		r := benchio.Measure(fmt.Sprintf("cpsolve/P=%d/workers=%d", c.p, c.workers), c.iters, func() {
			res, err := cpsolve.Solve(d, pf, cpsolve.Options{NodeBudget: c.budget, Beam: 3, Workers: c.workers})
			if err != nil {
				fatal(err)
			}
			last = res
		})
		if last.Makespan <= 0 {
			fatal(fmt.Errorf("cholbench: cpsolve P=%d/workers=%d produced non-positive makespan", c.p, c.workers))
		}
		r = r.WithMetric("nodes_per_sec", float64(last.Nodes)/(r.NsPerOp/1e9)).
			WithMetric("makespan_at_budget", last.Makespan)
		suite.Add(r)
		progress(r)
	}

	// End-to-end sweep: sizes × schedulers through the parallel pool — the
	// paper's "many simulations in parallel" workflow in one number.
	sizes := []int{8, 16, 24}
	iters := 2
	if *smoke {
		sizes = []int{4, 8}
		iters = 1
	}
	scheds := []string{"dmda", "dmdas", "random"}
	r := benchio.Measure("sweep/end-to-end", iters, func() {
		type cfg struct {
			p     int
			sched string
		}
		var cfgs []cfg
		for _, p := range sizes {
			for _, s := range scheds {
				cfgs = append(cfgs, cfg{p, s})
			}
		}
		mk, err := sweep.Map(cfgs, 0, func(c cfg) (float64, error) {
			s, err := core.NewScheduler(c.sched)
			if err != nil {
				return 0, err
			}
			res, err := simulator.Run(graph.Cholesky(c.p), pf, s, simulator.Options{Seed: 42})
			if err != nil {
				return 0, err
			}
			return res.MakespanSec, nil
		})
		if err != nil {
			fatal(err)
		}
		for _, m := range mk {
			if m <= 0 {
				fatal(fmt.Errorf("cholbench: sweep produced non-positive makespan"))
			}
		}
	})
	suite.Add(r)
	progress(r)

	// Batched replay (PR7): multi-seed sweeps through internal/replay. Each
	// case's workload is N seeds of one configuration; serial loops the plain
	// event loop, batch=N routes through replay.Seeds — shared preparation,
	// pooled arenas, and (with the jitter model off and a seed-invariant
	// scheduler) one simulation answering all N seeds with clones. The
	// harness enforces the replay contract in passing: batched digests must
	// equal serial digests bit for bit.
	{
		const p = 16
		ctx := context.Background()
		d := graph.Cholesky(p)
		rpool := &replay.Pool{}
		seedsOf := func(n int) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(i + 1)
			}
			return out
		}
		runSerial := func(seeds []int64, opt simulator.Options) []*simulator.Result {
			out := make([]*simulator.Result, len(seeds))
			for i, sd := range seeds {
				o := opt
				o.Seed = sd
				res, err := simulator.Run(d, pf, sched.NewDMDAS(), o)
				if err != nil {
					fatal(err)
				}
				out[i] = res
			}
			return out
		}
		runBatched := func(seeds []int64, opt simulator.Options) []*simulator.Result {
			rs, err := replay.Seeds(ctx, d, pf,
				func() sched.Scheduler { return sched.NewDMDAS() }, seeds, opt, 0, rpool)
			if err != nil {
				fatal(err)
			}
			return rs
		}
		checkDigests := func(name string, got, want []*simulator.Result) {
			for i := range want {
				if replay.Digest(got[i]) != replay.Digest(want[i]) {
					fatal(fmt.Errorf("cholbench: %s seed %d diverged from serial", name, i))
				}
			}
		}

		nBig, iterSerial, iterBatch := 32, 3, 3
		if *smoke {
			nBig, iterSerial, iterBatch = 8, 2, 2
		}
		serialRef := runSerial(seedsOf(nBig), simulator.Options{})
		rSerial := benchio.Measure(fmt.Sprintf("sweep/multi-seed/serial/n=%d", nBig), iterSerial, func() {
			runSerial(seedsOf(nBig), simulator.Options{})
		})
		rSerial = rSerial.WithMetric("seeds_per_sec", float64(nBig)/(rSerial.NsPerOp/1e9))
		suite.Add(rSerial)
		progress(rSerial)

		batchSizes := []int{1, 8, nBig}
		if nBig == 8 { // smoke: n=8 is already the big case
			batchSizes = []int{1, nBig}
		}
		for _, n := range batchSizes {
			var got []*simulator.Result
			r := benchio.Measure(fmt.Sprintf("sweep/multi-seed/batch=%d", n), iterBatch, func() {
				got = runBatched(seedsOf(n), simulator.Options{})
			})
			checkDigests(fmt.Sprintf("batch=%d", n), got, serialRef[:n])
			r = r.WithMetric("seeds_per_sec", float64(n)/(r.NsPerOp/1e9))
			if n == nBig {
				speedup := rSerial.NsPerOp / r.NsPerOp
				r = r.WithMetric("speedup_vs_serial", speedup)
				// dmdas is seed-invariant and jitter is off, so the batch is
				// one simulation plus clones — 3x over serial is the floor
				// the suite pins (measured ~20x; see BENCH_PR7.json).
				if !*smoke && speedup < 3 {
					fatal(fmt.Errorf("cholbench: multi-seed batch=%d speedup %.2fx, want >= 3x", n, speedup))
				}
			}
			suite.Add(r)
			progress(r)
		}

		// With overhead+jitter on, every seed genuinely simulates; the batch
		// only buys shared preparation and arena reuse. The measured ratio is
		// documented, not gated.
		nJit := 8
		if *smoke {
			nJit = 4
		}
		jitOpt := simulator.Options{Overhead: true}
		jitRef := runSerial(seedsOf(nJit), jitOpt)
		rJitSerial := benchio.Measure(fmt.Sprintf("sweep/multi-seed-jitter/serial/n=%d", nJit), iterSerial, func() {
			runSerial(seedsOf(nJit), jitOpt)
		})
		suite.Add(rJitSerial)
		progress(rJitSerial)
		var gotJit []*simulator.Result
		rJit := benchio.Measure(fmt.Sprintf("sweep/multi-seed-jitter/batch=%d", nJit), iterBatch, func() {
			gotJit = runBatched(seedsOf(nJit), jitOpt)
		})
		checkDigests("jitter batch", gotJit, jitRef)
		rJit = rJit.WithMetric("speedup_vs_serial", rJitSerial.NsPerOp/rJit.NsPerOp)
		suite.Add(rJit)
		progress(rJit)

		// Event-level lane executor (PR10): a jitter sweep where every seed
		// genuinely simulates. run-level is the PR7 path (one full event loop
		// per seed, fresh scheduler instances, one generator seeding per
		// task draw); lanes advances the whole batch through one loop over
		// SoA lane slabs with algebraic jitter rows and a single shared
		// scheduler Init. Digest equality is enforced per seed; the speedup
		// is the gate this PR pins.
		nLanes := 32
		if *smoke {
			nLanes = 8
		}
		laneSeeds := seedsOf(nLanes)
		laneOpt := simulator.Options{Overhead: true}
		mkLane := func() sched.Scheduler { return sched.NewDMDAS() }
		var laneRef []*simulator.Result
		rRunLevel := benchio.Measure(fmt.Sprintf("sweep/jitter-lanes/run-level/n=%d", nLanes), iterBatch, func() {
			rs, err := replay.RunLevelSeeds(ctx, d, pf, mkLane, laneSeeds, laneOpt, 0, rpool)
			if err != nil {
				fatal(err)
			}
			laneRef = rs
		})
		rRunLevel = rRunLevel.WithMetric("seeds_per_sec", float64(nLanes)/(rRunLevel.NsPerOp/1e9))
		suite.Add(rRunLevel)
		progress(rRunLevel)

		var gotLanes []*simulator.Result
		rLanes := benchio.Measure(fmt.Sprintf("sweep/jitter-lanes/lanes/n=%d", nLanes), iterBatch, func() {
			rs, err := replay.Lanes(ctx, d, pf, mkLane, laneSeeds, laneOpt, 0, rpool)
			if err != nil {
				fatal(err)
			}
			gotLanes = rs
		})
		checkDigests("jitter lanes", gotLanes, laneRef)
		laneSpeedup := rRunLevel.NsPerOp / rLanes.NsPerOp
		rLanes = rLanes.WithMetric("seeds_per_sec", float64(nLanes)/(rLanes.NsPerOp/1e9)).
			WithMetric("speedup_vs_run_level", laneSpeedup)
		if !*smoke && laneSpeedup < 2 {
			fatal(fmt.Errorf("cholbench: jitter-lanes n=%d speedup %.2fx over run-level, want >= 2x", nLanes, laneSpeedup))
		}
		suite.Add(rLanes)
		progress(rLanes)

		// Delta replay: sweeping a late split-point knob — BLAS-3 updates of
		// trailing panels k >= k0 pinned to the CPUs — against from-scratch
		// resimulation of every variant. The knob's affected tasks become
		// ready late, so the checkpointed prefix covers most of the run.
		ks := []int{10, 11, 12, 13, 14, 15}
		iterDelta := 3
		if *smoke {
			ks = []int{12, 14}
			iterDelta = 2
		}
		panelHint := func(k0 int) func() sched.Scheduler {
			return func() sched.Scheduler {
				return sched.NewDMDASWithHints(fmt.Sprintf("dmdas+panel(k0=%d)", k0),
					func(t *graph.Task) []int {
						if t.K >= k0 && (t.Kind == graph.TRSM || t.Kind == graph.SYRK || t.Kind == graph.GEMM) {
							return []int{0}
						}
						return nil
					})
			}
		}
		deltaOpt := simulator.Options{Seed: 42}
		scratchRef := make([]*simulator.Result, len(ks))
		rScratch := benchio.Measure("sweep/delta/scratch", iterDelta, func() {
			for i, k0 := range ks {
				res, err := simulator.Run(d, pf, panelHint(k0)(), deltaOpt)
				if err != nil {
					fatal(err)
				}
				scratchRef[i] = res
			}
		})
		rScratch = rScratch.WithMetric("variants", float64(len(ks)))
		suite.Add(rScratch)
		progress(rScratch)

		base, err := replay.Record(ctx, d, pf, sched.NewDMDAS(), deltaOpt, 0)
		if err != nil {
			fatal(err)
		}
		gotDelta := make([]*simulator.Result, len(ks))
		rDelta := benchio.Measure("sweep/delta/replay", iterDelta, func() {
			for i, k0 := range ks {
				res, err := base.Delta(ctx, panelHint(k0), deltaOpt, replay.PanelKnob(k0), rpool)
				if err != nil {
					fatal(err)
				}
				gotDelta[i] = res
			}
		})
		checkDigests("delta", gotDelta, scratchRef)
		rDelta = rDelta.WithMetric("variants", float64(len(ks))).
			WithMetric("speedup_vs_scratch", rScratch.NsPerOp/rDelta.NsPerOp)
		suite.Add(rDelta)
		progress(rDelta)
	}

	if *gobench {
		fmt.Print(benchio.FormatGoBench(suite.Results))
	}
	if *smoke {
		fmt.Printf("cholbench: smoke suite passed (%d benchmarks)\n", len(suite.Results))
		return
	}
	if err := suite.WriteFile(*out); err != nil {
		fatal(err)
	}
	for _, d := range suite.Compare() {
		if d.BaselineFound {
			fmt.Printf("%-28s ns/op %.2fx  allocs/op %.2fx of baseline\n", d.Name, d.NsRatio, d.AllocsRatio)
		}
	}
	fmt.Printf("cholbench: wrote %d benchmarks to %s\n", len(suite.Results), *out)
}

func progress(r benchio.Result) {
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %12.0f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
}

// cpuProfileStop flushes an in-flight -cpuprofile; fatal calls it so a
// failing suite still leaves a usable profile (os.Exit skips defers).
var cpuProfileStop func()

// writeMemProfile dumps the heap profile at suite completion (after a GC,
// so it reflects retained memory, not transient garbage).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	if cpuProfileStop != nil {
		cpuProfileStop()
	}
	os.Exit(1)
}
