package bounds

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/platform"
)

// Explain compares an executed schedule against the mixed bound's optimal
// LP assignment — the diagnostic behind the paper's Section V-C3 analysis
// ("We also analyzed the solution of the mixed bound and noticed that a
// significant portion of the TRSM kernels were mapped onto CPUs. Analyzing
// traces ... reveals that both policies allocate very few TRSMs on CPUs").
//
// For each resource class and kernel kind it reports how many tasks the
// schedule placed there versus how many the bound's witness would, plus the
// per-class busy fractions. Large deviations point at the static hints
// worth injecting.

// ClassKindCell is one (class, kind) comparison entry.
type ClassKindCell struct {
	Class     string
	Kind      graph.Kind
	Scheduled int     // tasks the schedule ran on this class
	LPOptimal float64 // tasks the mixed bound's witness assigns here
}

// Explanation is the full schedule-vs-bound comparison.
type Explanation struct {
	MakespanSec   float64
	BoundSec      float64
	EfficiencyPct float64
	Cells         []ClassKindCell
	BusyFrac      []float64 // per class: mean worker busy fraction
}

// Explain builds the comparison from an execution record: worker[id] is the
// worker each task ran on, busySec the per-worker busy time, makespan the
// schedule length (the fields any simulator or runtime result carries).
func Explain(d *graph.DAG, p *platform.Platform, worker []int, busySec []float64, makespan float64) (*Explanation, error) {
	if len(worker) != len(d.Tasks) {
		return nil, fmt.Errorf("bounds: worker array covers %d tasks, DAG has %d", len(worker), len(d.Tasks))
	}
	m, err := MixedInt(d, p)
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		MakespanSec: makespan,
		BoundSec:    m.MakespanSec,
	}
	if makespan > 0 {
		ex.EfficiencyPct = 100 * m.MakespanSec / makespan
	}
	// Scheduled counts per (class, kind).
	counts := map[int]map[graph.Kind]int{}
	for _, t := range d.Tasks {
		cls := p.WorkerClass(worker[t.ID])
		if counts[cls] == nil {
			counts[cls] = map[graph.Kind]int{}
		}
		counts[cls][t.Kind]++
	}
	kinds := d.Kinds()
	for cls := range p.Classes {
		for _, k := range kinds {
			ex.Cells = append(ex.Cells, ClassKindCell{
				Class:     p.Classes[cls].Name,
				Kind:      k,
				Scheduled: counts[cls][k],
				LPOptimal: m.Assignment[cls][k],
			})
		}
	}
	sort.Slice(ex.Cells, func(i, j int) bool {
		if ex.Cells[i].Class != ex.Cells[j].Class {
			return ex.Cells[i].Class < ex.Cells[j].Class
		}
		return ex.Cells[i].Kind < ex.Cells[j].Kind
	})
	// Busy fractions per class.
	ex.BusyFrac = make([]float64, len(p.Classes))
	for w := 0; w < p.Workers() && w < len(busySec); w++ {
		cls := p.WorkerClass(w)
		if makespan > 0 {
			ex.BusyFrac[cls] += busySec[w] / makespan / float64(p.Classes[cls].Count)
		}
	}
	return ex, nil
}

// Render formats the explanation as a fixed-width report.
func (ex *Explanation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4fs vs mixed bound %.4fs (%.1f%% of bound)\n",
		ex.MakespanSec, ex.BoundSec, ex.EfficiencyPct)
	fmt.Fprintf(&b, "%-10s %-8s %10s %12s %10s\n", "class", "kernel", "scheduled", "LP-optimal", "delta")
	for _, c := range ex.Cells {
		delta := float64(c.Scheduled) - c.LPOptimal
		mark := ""
		if delta > 0.5 || delta < -0.5 {
			mark = "  <-"
		}
		fmt.Fprintf(&b, "%-10s %-8s %10d %12.1f %+10.1f%s\n",
			c.Class, c.Kind, c.Scheduled, c.LPOptimal, delta, mark)
	}
	for i, f := range ex.BusyFrac {
		fmt.Fprintf(&b, "class %d busy fraction: %.1f%%\n", i, 100*f)
	}
	return b.String()
}

// BiggestDeviation returns the (class, kind) cell whose scheduled count
// differs most from the LP optimum — the first place to look for a hint.
func (ex *Explanation) BiggestDeviation() ClassKindCell {
	best, bd := ClassKindCell{}, -1.0
	for _, c := range ex.Cells {
		d := float64(c.Scheduled) - c.LPOptimal
		if d < 0 {
			d = -d
		}
		if d > bd {
			bd, best = d, c
		}
	}
	return best
}
