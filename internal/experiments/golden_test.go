package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file when
// -update-golden is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update-golden): %v", path, err)
	}
	if string(want) != got {
		t.Fatalf("%s drifted from its golden file (run with -update-golden if intended)\n--- got ---\n%.500s", name, got)
	}
}

func TestGoldenFig1DOT(t *testing.T) {
	checkGolden(t, "fig1.dot", Fig1(Quick()))
}

func TestGoldenFig9(t *testing.T) {
	checkGolden(t, "fig9.txt", Fig9(32, 6))
}
