// Package graph models task graphs (DAGs) of tiled dense linear algebra
// algorithms: tasks with kernel kinds, data footprints over matrix tiles, and
// the dependency structure induced by sequential-consistency dataflow
// analysis — exactly how StarPU derives the DAG from the task submission
// order in Algorithm 1 of the paper.
//
// Besides the Cholesky builder (the paper's subject), LU and QR builders are
// provided for the conclusion's "other dense factorizations" extension; all
// downstream machinery (bounds, schedulers, simulator) is DAG-generic.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Kind identifies a kernel subroutine. The timing tables of
// internal/platform are keyed by Kind.
type Kind int

// Kernel kinds across the supported factorizations. POTRF..GEMM are the four
// Cholesky kernels from the paper; GETRF is used by LU, GEQRT..TSMQR by QR.
const (
	POTRF Kind = iota
	TRSM
	SYRK
	GEMM
	GETRF
	GEQRT
	ORMQR
	TSQRT
	TSMQR
	TRSV     // triangular solve on a vector chunk (the Ly=b / Lᵀx=y pipeline)
	GEMV     // matrix-vector update on a vector chunk
	SPLIT    // tile-size conversion: repack one tile into finer subtiles
	MERGE    // tile-size conversion: repack finer subtiles into one tile
	NumKinds // sentinel: number of kernel kinds
)

var kindNames = [NumKinds]string{"POTRF", "TRSM", "SYRK", "GEMM", "GETRF", "GEQRT", "ORMQR", "TSQRT", "TSMQR", "TRSV", "GEMV", "SPLIT", "MERGE"}

// ConversionKinds lists the tile-size conversion pseudo-kernels introduced by
// the mixed-tile-size Cholesky builder (CholeskySplit). They move data rather
// than compute, so platform timing tables never list them; their cost comes
// from the platform cost model's repacking rate.
var ConversionKinds = []Kind{SPLIT, MERGE}

// IsConversion reports whether k is a tile-size conversion pseudo-kernel.
func (k Kind) IsConversion() bool { return k == SPLIT || k == MERGE }

// String returns the LAPACK-style kernel name.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// CholeskyKinds lists the kernel kinds of the tiled Cholesky factorization in
// the order used throughout the paper (Table I, the LP formulation, ...).
var CholeskyKinds = []Kind{POTRF, TRSM, SYRK, GEMM}

// Access is a data-access mode of a task on a tile.
type Access uint8

// Access modes. ReadWrite covers the in-place updates of Algorithm 1.
const (
	Read Access = iota
	ReadWrite
)

// String names the access mode.
func (a Access) String() string {
	if a == Read {
		return "R"
	}
	return "RW"
}

// TileRef is one entry of a task's data footprint: tile (I, J) accessed with
// the given mode. Footprints drive the simulator's data-transfer model.
type TileRef struct {
	I, J int
	Mode Access
}

// Task is a vertex of the DAG.
type Task struct {
	ID   int
	Kind Kind
	// I, J, K are the loop indices of Algorithm 1 identifying the task
	// (unused indices are −1): POTRF_k, TRSM_i_k, SYRK_j_k, GEMM_i_j_k.
	I, J, K   int
	Footprint []TileRef
	Succ      []int // successor task IDs
	Pred      []int // predecessor task IDs
	// NB is the tile size (in matrix elements) the task operates on. Zero —
	// the value for every task of the uniform builders — means the platform's
	// reference tile size; mixed-tile-size builders set it explicitly. For
	// conversion tasks (SPLIT/MERGE) it is the size of the tile being
	// converted, i.e. the coarse side.
	NB int
}

// Name renders the task in the paper's Figure-1 naming scheme
// (e.g. "GEMM_4_2_1").
func (t *Task) Name() string {
	switch t.Kind {
	case POTRF, GETRF, GEQRT, TRSV:
		return fmt.Sprintf("%s_%d", t.Kind, t.K)
	case SYRK:
		return fmt.Sprintf("%s_%d_%d", t.Kind, t.J, t.K)
	case TRSM, ORMQR, TSQRT, GEMV:
		if t.J >= 0 && t.I >= 0 { // LU/QR tasks carrying both indices
			return fmt.Sprintf("%s_%d_%d_%d", t.Kind, t.I, t.J, t.K)
		}
		if t.I < 0 {
			return fmt.Sprintf("%s_%d_%d", t.Kind, t.J, t.K)
		}
		return fmt.Sprintf("%s_%d_%d", t.Kind, t.I, t.K)
	default:
		return fmt.Sprintf("%s_%d_%d_%d", t.Kind, t.I, t.J, t.K)
	}
}

// DAG is a task graph over a P×P tiled matrix.
type DAG struct {
	Algorithm string // "cholesky", "lu", "qr"
	P         int    // tile count per dimension
	Tasks     []*Task

	// TileNB maps a tile coordinate to its size in elements for mixed-tile-
	// size DAGs; nil (the uniform builders) or a missing entry means the
	// platform reference size. Consumers must not range over the map in
	// deterministic code — look tiles up by coordinate instead.
	TileNB map[[2]int]int

	// Aggregates over Tasks (kind census) are computed once on first use:
	// the bound LPs and schedulers query them per call, and rescanning a
	// few-hundred-thousand-task DAG each time dominated their cost at large
	// P. Callers mutating Tasks after the first Kinds/CountByKind call must
	// work on a fresh DAG.
	aggOnce   sync.Once
	aggKinds  []Kind
	aggCounts map[Kind]int
}

// aggregates returns the cached kind census, computing it on first use.
//
//chol:hotpath queried per bound LP row and per scheduler init; steady state must not rescan
func (d *DAG) aggregates() ([]Kind, map[Kind]int) {
	d.aggOnce.Do(func() { //chollint:alloc one-time census build, amortized across all queries
		counts := make(map[Kind]int, NumKinds)
		for _, t := range d.Tasks {
			counts[t.Kind]++
		}
		kinds := make([]Kind, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		d.aggKinds, d.aggCounts = kinds, counts
	})
	return d.aggKinds, d.aggCounts
}

// Kinds returns the distinct kernel kinds present, in ascending order.
func (d *DAG) Kinds() []Kind {
	ks, _ := d.aggregates()
	return append([]Kind(nil), ks...)
}

// CountByKind returns the number of tasks of each kind.
func (d *DAG) CountByKind() map[Kind]int {
	_, counts := d.aggregates()
	c := make(map[Kind]int, len(counts))
	for k, n := range counts {
		c[k] = n
	}
	return c
}

// TileSize returns the size in elements of tile (i, j), or 0 if the tile is
// at the platform reference size (always the case for uniform DAGs).
func (d *DAG) TileSize(i, j int) int {
	if d.TileNB == nil {
		return 0
	}
	return d.TileNB[[2]int{i, j}]
}

// NBs returns the distinct Task.NB values present, in ascending order. A
// uniform DAG yields [0]; mixed-tile DAGs yield the sizes the cost model must
// price.
func (d *DAG) NBs() []int {
	seen := make(map[int]bool, 4)
	for _, t := range d.Tasks {
		seen[t.NB] = true
	}
	nbs := make([]int, 0, len(seen))
	for nb := range seen {
		nbs = append(nbs, nb)
	}
	sort.Ints(nbs)
	return nbs
}

// Roots returns the IDs of tasks with no predecessors.
func (d *DAG) Roots() []int {
	var r []int
	for _, t := range d.Tasks {
		if len(t.Pred) == 0 {
			r = append(r, t.ID)
		}
	}
	return r
}

// TopoOrder returns a topological order of task IDs (Kahn's algorithm,
// smallest-ID-first for determinism) or an error if the graph has a cycle.
func (d *DAG) TopoOrder() ([]int, error) {
	n := len(d.Tasks)
	indeg := make([]int, n)
	for _, t := range d.Tasks {
		indeg[t.ID] = len(t.Pred)
	}
	// Min-heap-free deterministic Kahn: scan with a sorted frontier.
	frontier := make([]int, 0, n)
	for id, deg := range indeg {
		if deg == 0 {
			frontier = append(frontier, id)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, s := range d.Tasks[id].Succ {
			indeg[s]--
			if indeg[s] == 0 {
				frontier = append(frontier, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d tasks ordered)", len(order), n)
	}
	return order, nil
}

// Validate checks structural invariants: IDs dense and matching slice index,
// symmetric Succ/Pred, no self-loops, acyclicity.
func (d *DAG) Validate() error {
	for i, t := range d.Tasks {
		if t.ID != i {
			return fmt.Errorf("graph: task at index %d has ID %d", i, t.ID)
		}
		for _, s := range t.Succ {
			if s == t.ID {
				return fmt.Errorf("graph: self-loop on task %d", t.ID)
			}
			if s < 0 || s >= len(d.Tasks) {
				return fmt.Errorf("graph: dangling successor %d of task %d", s, t.ID)
			}
			if !contains(d.Tasks[s].Pred, t.ID) {
				return fmt.Errorf("graph: edge %d→%d missing reverse link", t.ID, s)
			}
		}
		for _, p := range t.Pred {
			if !contains(d.Tasks[p].Succ, t.ID) {
				return fmt.Errorf("graph: edge %d→%d missing forward link", p, t.ID)
			}
		}
	}
	_, err := d.TopoOrder()
	return err
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// BottomLevels returns, for each task, the weight of the longest path from
// the task to an exit task, node weights given by weight (typically a kernel
// execution-time estimate). This is the HEFT priority used by dmdas.
func (d *DAG) BottomLevels(weight func(*Task) float64) ([]float64, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, len(d.Tasks))
	for i := len(order) - 1; i >= 0; i-- {
		t := d.Tasks[order[i]]
		best := 0.0
		for _, s := range t.Succ {
			if bl[s] > best {
				best = bl[s]
			}
		}
		bl[t.ID] = best + weight(t)
	}
	return bl, nil
}

// CriticalPath returns the length of the longest weighted path in the DAG and
// the task IDs along one such path (entry→exit). With weight = fastest
// execution time per task it is the paper's critical-path bound on makespan.
func (d *DAG) CriticalPath(weight func(*Task) float64) (float64, []int, error) {
	bl, err := d.BottomLevels(weight)
	if err != nil {
		return 0, nil, err
	}
	best, start := 0.0, -1
	for id, v := range bl {
		if v > best || start == -1 {
			best, start = v, id
		}
	}
	if start == -1 {
		return 0, nil, nil
	}
	// Walk down successors, always following the max bottom level.
	path := []int{start}
	cur := start
	for {
		t := d.Tasks[cur]
		next, nb := -1, -1.0
		for _, s := range t.Succ {
			if bl[s] > nb {
				nb, next = bl[s], s
			}
		}
		if next == -1 {
			break
		}
		path = append(path, next)
		cur = next
	}
	return best, path, nil
}

// TotalWeight sums weight over all tasks — the sequential-work term of the
// area bound.
func (d *DAG) TotalWeight(weight func(*Task) float64) float64 {
	s := 0.0
	for _, t := range d.Tasks {
		s += weight(t)
	}
	return s
}

// Stats summarizes a DAG's shape: size, span, and the average-parallelism
// ratio W/CP that decides whether a machine can be saturated (the quantity
// behind the paper's "for large matrices, the task-graph ... exhibits a
// sufficient amount of parallelism").
type Stats struct {
	Tasks            int
	Edges            int
	CriticalPathLen  int     // tasks on the longest unit-weight path
	AvgParallelism   float64 // tasks / critical-path length
	MaxWidth         int     // widest antichain layer (by longest-path depth)
	RootCount, Exits int
}

// ComputeStats derives the structural statistics of the DAG.
func (d *DAG) ComputeStats() (Stats, error) {
	st := Stats{Tasks: len(d.Tasks)}
	order, err := d.TopoOrder()
	if err != nil {
		return st, err
	}
	depth := make([]int, len(d.Tasks))
	maxDepth := 0
	for _, id := range order {
		t := d.Tasks[id]
		st.Edges += len(t.Succ)
		for _, p := range t.Pred {
			if depth[p]+1 > depth[id] {
				depth[id] = depth[p] + 1
			}
		}
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
		if len(t.Pred) == 0 {
			st.RootCount++
		}
		if len(t.Succ) == 0 {
			st.Exits++
		}
	}
	st.CriticalPathLen = maxDepth + 1
	if st.CriticalPathLen > 0 {
		st.AvgParallelism = float64(st.Tasks) / float64(st.CriticalPathLen)
	}
	width := make([]int, maxDepth+1)
	for _, dp := range depth {
		width[dp]++
		if width[dp] > st.MaxWidth {
			st.MaxWidth = width[dp]
		}
	}
	return st, nil
}
