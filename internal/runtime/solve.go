package runtime

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
)

// Parallel triangular solves — the second half of the paper's §II-A
// pipeline, executed on the same task runtime as the factorization.

// chunks splits a length-p·nb vector into p tile-sized views (no copies).
func chunks(b []float64, p, nb int) [][]float64 {
	out := make([][]float64, p)
	for k := 0; k < p; k++ {
		out[k] = b[k*nb : (k+1)*nb]
	}
	return out
}

// ForwardSolveExecutor maps forward-solve tasks onto the kernels.
func ForwardSolveExecutor(l *matrix.Tiled, b [][]float64) TaskFunc {
	return func(t *graph.Task) error {
		switch t.Kind {
		case graph.TRSV:
			kernels.Trsv(l.Tile(t.K, t.K), b[t.K])
		case graph.GEMV:
			kernels.Gemv(l.Tile(t.I, t.K), b[t.K], b[t.I])
		default:
			return fmt.Errorf("runtime: unexpected kind %v in forward solve", t.Kind)
		}
		return nil
	}
}

// BackwardSolveExecutor maps backward-solve tasks onto the kernels.
func BackwardSolveExecutor(l *matrix.Tiled, b [][]float64) TaskFunc {
	return func(t *graph.Task) error {
		switch t.Kind {
		case graph.TRSV:
			kernels.TrsvT(l.Tile(t.K, t.K), b[t.K])
		case graph.GEMV:
			kernels.GemvT(l.Tile(t.K, t.I), b[t.K], b[t.I])
		default:
			return fmt.Errorf("runtime: unexpected kind %v in backward solve", t.Kind)
		}
		return nil
	}
}

// Solve completes A·x = b given the tiled Cholesky factor l (from Factor):
// it runs the parallel forward and backward substitutions in place on b and
// returns it as x.
func Solve(l *matrix.Tiled, b []float64, opt Options) ([]float64, error) {
	n := l.N()
	if len(b) != n {
		return nil, fmt.Errorf("runtime: rhs length %d != matrix dimension %d", len(b), n)
	}
	ch := chunks(b, l.P, l.NB)
	if _, err := Run(graph.ForwardSolve(l.P), ForwardSolveExecutor(l, ch), opt); err != nil {
		return nil, err
	}
	if _, err := Run(graph.BackwardSolve(l.P), BackwardSolveExecutor(l, ch), opt); err != nil {
		return nil, err
	}
	return b, nil
}

// FactorAndSolve factorizes a tiled SPD matrix in place and solves for the
// given right-hand side — the complete §II-A pipeline in one call.
func FactorAndSolve(a *matrix.Tiled, b []float64, opt Options) ([]float64, error) {
	if _, err := Factor(a, opt); err != nil {
		return nil, err
	}
	return Solve(a, b, opt)
}

// SolveRefined solves A·x = b with one-step iterative refinement on top of
// the factored solve: after the triangular solves, the residual
// r = b − A·x is recomputed against the *original* matrix and a correction
// solve is applied, iters times. Classic LAPACK-style refinement — it
// recovers digits lost to an ill-conditioned factorization (e.g. Hilbert
// matrices) at the cost of one matrix-vector product per pass.
//
// a is the original matrix; l its tiled Cholesky factor (from Factor).
func SolveRefined(a *matrix.Dense, l *matrix.Tiled, b []float64, iters int, opt Options) ([]float64, error) {
	n := a.N
	if l.N() != n || len(b) != n {
		return nil, fmt.Errorf("runtime: dimension mismatch (A %d, L %d, b %d)", n, l.N(), len(b))
	}
	x := append([]float64{}, b...)
	if _, err := Solve(l, x, opt); err != nil {
		return nil, err
	}
	for it := 0; it < iters; it++ {
		// r = b − A·x (against the original, unfactored matrix).
		r := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			row := a.Data[i*n : (i+1)*n]
			for j, av := range row {
				s -= av * x[j]
			}
			r[i] = s
		}
		if _, err := Solve(l, r, opt); err != nil {
			return nil, err
		}
		for i := range x {
			x[i] += r[i]
		}
	}
	return x, nil
}
