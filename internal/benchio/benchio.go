// Package benchio is the measurement and serialization substrate of the
// pinned benchmark harness (cmd/cholbench): it runs a function for a *fixed*
// iteration count — unlike testing.B, which calibrates N per run and thereby
// makes allocs/op and ns/op incomparable across machines and revisions — and
// records ns/op, allocs/op, bytes/op plus free-form metrics (GFLOP/s,
// tasks/s) into a JSON document (BENCH_*.json) that every future PR can
// diff against.
//
// The schema is deliberately benchstat-friendly: FormatGoBench renders a
// suite in the standard `BenchmarkName  N  ns/op ...` text format, so
// `benchstat old.txt new.txt` works on two saved runs.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Result is one measured benchmark.
type Result struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Suite is a full harness run: environment fingerprint, the measured
// results, and (optionally) the pre-optimisation baseline the run is being
// compared against. Committing both halves in one file keeps the perf
// trajectory self-contained: the claim "2x fewer allocs" is re-checkable
// from the document alone.
type Suite struct {
	Name      string   `json:"name"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Note      string   `json:"note,omitempty"`
	Baseline  []Result `json:"baseline,omitempty"`
	Results   []Result `json:"results"`
}

// NewSuite returns an empty suite stamped with the current environment.
func NewSuite(name string) *Suite {
	return &Suite{
		Name:      name,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Measure runs fn for exactly iters iterations (after one untimed warm-up
// call) and returns the per-op cost. Allocation figures come from the
// runtime's monotonic malloc counters, so they are exact and deterministic
// for a deterministic fn; ns/op carries the usual wall-clock noise.
func Measure(name string, iters int, fn func()) Result {
	if iters < 1 {
		iters = 1
	}
	fn() // warm-up: pull code and data into caches, populate lazy state
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

// WithMetric attaches a named metric (e.g. "gflops") and returns the result
// for chaining.
func (r Result) WithMetric(name string, v float64) Result {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
	return r
}

// Add appends a result to the suite.
func (s *Suite) Add(r Result) { s.Results = append(s.Results, r) }

// Find returns the result with the given name from rs, or false.
func Find(rs []Result, name string) (Result, bool) {
	for _, r := range rs {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// WriteFile serializes the suite as indented JSON.
func (s *Suite) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses a suite document.
func ReadFile(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &Suite{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	return s, nil
}

// FormatGoBench renders results in the standard Go benchmark text format so
// two saved runs can be compared with benchstat.
func FormatGoBench(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "Benchmark%s %8d %14.0f ns/op %14.0f B/op %10.0f allocs/op",
			sanitize(r.Name), r.Iters, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		names := make([]string, 0, len(r.Metrics))
		for n := range r.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %12.3f %s", r.Metrics[n], n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	up := true
	for _, c := range name {
		switch c {
		case '/', ':':
			out = append(out, '/')
			up = true
		case ' ', '=':
			up = true
		default:
			if up {
				c = toUpper(c)
				up = false
			}
			out = append(out, c)
		}
	}
	return string(out)
}

func toUpper(c rune) rune {
	if 'a' <= c && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

// Delta describes one baseline→current comparison.
type Delta struct {
	Name          string
	NsRatio       float64 // current / baseline (lower is better)
	AllocsRatio   float64
	BaselineFound bool
}

// Compare pairs the suite's results with its embedded baseline by name.
func (s *Suite) Compare() []Delta {
	out := make([]Delta, 0, len(s.Results))
	for _, r := range s.Results {
		d := Delta{Name: r.Name}
		if b, ok := Find(s.Baseline, r.Name); ok {
			d.BaselineFound = true
			d.NsRatio = ratio(r.NsPerOp, b.NsPerOp)
			d.AllocsRatio = ratio(r.AllocsPerOp, b.AllocsPerOp)
		}
		out = append(out, d)
	}
	return out
}

func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return 0
	}
	return cur / base
}
