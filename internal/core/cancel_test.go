package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/simulator"
)

// TestPublicAPICancellationPropagates proves the context threads from the
// public core API all the way into the simulator event loop and the CP
// branch-and-bound — the plumbing the ctxflow analyzer front-runs: a
// context.Background() minted anywhere along this path would make these
// calls run to completion instead of failing with context.Canceled.
func TestPublicAPICancellationPropagates(t *testing.T) {
	p := platform.Mirage()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	s, err := core.NewScheduler("dmda")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Simulate(ctx, 16, p, s, simulator.Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("core.Simulate with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := core.OptimizeSchedule(ctx, 8, p, 50, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("core.OptimizeSchedule with cancelled ctx: err = %v, want context.Canceled", err)
	}
}
