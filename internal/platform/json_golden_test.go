package platform

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

var updateGolden = flag.Bool("update", false, "rewrite the JSON schema golden files")

// goldenV2Platform is a platform exercising every schema-v2 feature: a
// calibration size, an explicit cost model, and per-size table overrides.
func goldenV2Platform() *Platform {
	p := Mirage()
	p.Name = "mirage-v2"
	p.RefNB = 960
	p.Model = ModelScaled
	p.Classes[0].TimesByNB = map[int]map[graph.Kind]float64{
		480: {graph.GEMM: 0.024, graph.POTRF: 0.009},
	}
	p.Classes[1].TimesByNB = map[int]map[graph.Kind]float64{
		480: {graph.GEMM: 0.0011},
	}
	return p
}

// TestJSONSchemaGoldens pins the on-disk bytes of both schema versions: a v1
// (unversioned) file and a v2 file must load and re-marshal byte-exactly, so
// platform files in the wild never get rewritten by a round trip through the
// tools. Regenerate with `go test ./internal/platform -run JSONSchemaGoldens
// -update` after a deliberate format change.
func TestJSONSchemaGoldens(t *testing.T) {
	cases := []struct {
		file string
		p    *Platform
	}{
		{"golden_v1.json", Mirage()},
		{"golden_v2.json", goldenV2Platform()},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			want, err := json.Marshal(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(disk, want) {
				t.Fatalf("%s drifted from the in-code model (run with -update after a deliberate schema change)", tc.file)
			}
			// Byte-exact round trip: load the golden, marshal it again.
			loaded, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			again, err := json.Marshal(loaded)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(disk, again) {
				t.Fatalf("%s round trip not byte-exact:\n disk: %s\n back: %s", tc.file, disk, again)
			}
		})
	}
}

// TestJSONVersionGating pins the schema negotiation: v1 files must not smuggle
// in v2 fields, v2 metadata survives a round trip, and unknown versions or
// cost models are rejected.
func TestJSONVersionGating(t *testing.T) {
	if _, err := unmarshalPlatform(`{"name":"x","classes":[],"version":3}`); err == nil {
		t.Fatal("version 3 accepted")
	}
	if _, err := unmarshalPlatform(`{"name":"x","classes":[],"ref_nb":960}`); err == nil {
		t.Fatal("ref_nb without version 2 accepted")
	}
	if _, err := unmarshalPlatform(`{"name":"x","classes":[],"version":2,"cost_model":"magic"}`); err == nil {
		t.Fatal("unknown cost_model accepted")
	}
	if _, err := unmarshalPlatform(`{"name":"x","version":2,"classes":[{"name":"c","count":1,"times":{},"times_by_nb":{"zero":{}}}]}`); err == nil {
		t.Fatal("non-numeric tile size key accepted")
	}
	if _, err := unmarshalPlatform(`{"name":"x","classes":[{"name":"c","count":1,"times":{},"times_by_nb":{"480":{}}}]}`); err == nil {
		t.Fatal("times_by_nb without version 2 accepted")
	}
	p, err := unmarshalPlatform(`{"name":"x","version":2,"ref_nb":480,"cost_model":"scaled","classes":[]}`)
	if err != nil {
		t.Fatal(err)
	}
	if p.RefNB != 480 || p.Model != ModelScaled || p.DefaultNB() != 480 {
		t.Fatalf("v2 metadata lost: RefNB=%d Model=%q", p.RefNB, p.Model)
	}
	// A v1 platform must stay v1 on the wire: no version key in its output.
	data, err := json.Marshal(Mirage())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"version"`)) {
		t.Fatal("v1 platform marshals a version key")
	}
}

func unmarshalPlatform(s string) (*Platform, error) {
	p := &Platform{}
	if err := json.Unmarshal([]byte(s), p); err != nil {
		return nil, err
	}
	return p, nil
}
