package simulator

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
)

// TestProbeDoesNotPerturbSchedule is the live-telemetry contract, enforced
// over the full determinism grid (every registered platform family ×
// scheduler × size × seed): attaching a probe must leave the FNV-64a
// schedule digest bit-identical to the plain run.
func TestProbeDoesNotPerturbSchedule(t *testing.T) {
	for _, cfg := range detGrid() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			d := graph.Cholesky(cfg.p)
			plain, err := Run(d, cfg.pf(), cfg.sched(), cfg.opt)
			if err != nil {
				t.Fatal(err)
			}
			frames := 0
			opt := cfg.opt
			opt.Probe = obs.NewProbe(16, func(obs.Frame) { frames++ })
			probed, err := Run(d, cfg.pf(), cfg.sched(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if resultHash(plain) != resultHash(probed) {
				t.Fatalf("schedule digest changed under probing: %x vs %x",
					resultHash(plain), resultHash(probed))
			}
			if frames == 0 {
				t.Fatal("probe attached but emitted nothing")
			}
		})
	}
}

// TestProbeFramesMonotonic pins the frame stream shape: sequence numbers
// dense from 1, Done and SimSec non-decreasing, exactly one Final frame
// carrying Done == Total, and queue depth/busy time sane throughout.
func TestProbeFramesMonotonic(t *testing.T) {
	d := graph.Cholesky(16)
	p := platform.Mirage()
	var frames []obs.Frame
	probe := obs.NewProbe(32, func(f obs.Frame) { frames = append(frames, f.Clone()) })
	res, err := Run(d, p, sched.NewDMDA(), Options{Seed: 42, Probe: probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 {
		t.Fatalf("expected several frames for %d tasks at interval 32, got %d", len(d.Tasks), len(frames))
	}
	for i, f := range frames {
		if f.Source != obs.SourceSimulate {
			t.Fatalf("frame %d has source %q", i, f.Source)
		}
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d", i, f.Seq)
		}
		if f.Total != int64(len(d.Tasks)) {
			t.Fatalf("frame %d total = %d, want %d", i, f.Total, len(d.Tasks))
		}
		if f.ReadyDepth < 0 {
			t.Fatalf("frame %d negative queue depth", i)
		}
		if len(f.BusySec) != p.Workers() {
			t.Fatalf("frame %d has %d busy entries, want %d workers", i, len(f.BusySec), p.Workers())
		}
		if i == 0 {
			continue
		}
		if f.Done < frames[i-1].Done {
			t.Fatalf("Done regressed at frame %d: %d after %d", i, f.Done, frames[i-1].Done)
		}
		if f.SimSec < frames[i-1].SimSec {
			t.Fatalf("SimSec regressed at frame %d: %v after %v", i, f.SimSec, frames[i-1].SimSec)
		}
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Done != last.Total {
		t.Fatalf("last frame not a completed Final frame: %+v", last)
	}
	for _, f := range frames[:len(frames)-1] {
		if f.Final {
			t.Fatal("non-terminal frame marked Final")
		}
	}
	if last.SimSec != res.MakespanSec {
		t.Fatalf("final frame sim clock %v != makespan %v", last.SimSec, res.MakespanSec)
	}
}

// TestProbeDisabledStaysAllocationFree pins the off-switch cost at zero:
// steady-state arena-reuse runs allocate the same with the probe field
// untouched and with it explicitly nil — the Result is the only allocation
// either way. (cholbench sim/* pins the absolute numbers cross-PR.)
func TestProbeDisabledStaysAllocationFree(t *testing.T) {
	d := graph.Cholesky(8)
	p := platform.Mirage()
	pp, err := Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	var ar Arena
	s := sched.NewGreedy()
	ctx := context.Background()
	run := func() {
		if _, err := pp.Run(ctx, s, Options{Seed: 1}, &ar); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena
	base := testing.AllocsPerRun(10, run)
	withNil := testing.AllocsPerRun(10, func() {
		if _, err := pp.Run(ctx, s, Options{Seed: 1, Probe: nil}, &ar); err != nil {
			t.Fatal(err)
		}
	})
	if withNil > base {
		t.Fatalf("nil probe added allocations: %v vs %v per run", withNil, base)
	}
}

// TestProbeOnResumedRun checks the probe works across the checkpoint/resume
// split: a run resumed from a mid-point snapshot still reports progress up
// to Done == Total.
func TestProbeOnResumedRun(t *testing.T) {
	d := graph.Cholesky(8)
	p := platform.Mirage()
	pp, err := Prepare(d, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rec, err := pp.RunRecorded(ctx, sched.NewDMDAS(), Options{Seed: 5}, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snaps) == 0 {
		t.Fatal("no snapshots recorded")
	}
	var frames []obs.Frame
	probe := obs.NewProbe(16, func(f obs.Frame) { frames = append(frames, f.Clone()) })
	res, err := pp.Resume(ctx, sched.NewDMDAS(),
		Options{Seed: 5, Probe: probe}, rec.Snaps[len(rec.Snaps)-1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSec != rec.Result.MakespanSec {
		t.Fatalf("resumed makespan %v != recorded %v", res.MakespanSec, rec.Result.MakespanSec)
	}
	if len(frames) == 0 {
		t.Fatal("no frames from resumed run")
	}
	last := frames[len(frames)-1]
	if !last.Final || last.Done != int64(len(d.Tasks)) {
		t.Fatalf("resumed run final frame %+v, want Final at %d tasks", last, len(d.Tasks))
	}
}
