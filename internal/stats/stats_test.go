package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDevKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %g", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2) > 1e-12 {
		t.Fatalf("stddev %g", StdDev(xs))
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("empty/single sample handling")
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty MinMax")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "demo", XLabel: "n", YLabel: "gflops", Xs: []float64{4, 8}}
	tb.Add("dmda", []float64{100, 200}, nil)
	tb.Add("dmdas", []float64{110, 190}, []float64{1, 2})
	out := tb.Render()
	for _, want := range []string{"demo", "dmda", "dmdas", "110.00±1.00", "200.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	for _, want := range []string{"n,dmda,dmdas,dmdas_sigma", "4,100,110,1", "8,200,190,2"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q in:\n%s", want, csv)
		}
	}
}

func TestTableAddPadsShortSeries(t *testing.T) {
	tb := &Table{Xs: []float64{1, 2, 3}}
	tb.Add("short", []float64{9}, nil)
	if !math.IsNaN(tb.Series[0].Values[2]) {
		t.Fatal("missing values should be NaN")
	}
}

func TestPlotContainsLegend(t *testing.T) {
	tb := &Table{Title: "p", YLabel: "y", Xs: []float64{1, 2, 3, 4}}
	tb.Add("a", []float64{1, 2, 3, 4}, nil)
	tb.Add("b", []float64{4, 3, 2, 1}, nil)
	out := tb.Plot(10)
	if !strings.Contains(out, "A = a") || !strings.Contains(out, "B = b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 12 {
		t.Fatal("plot too short")
	}
}

func TestPlotAllZeros(t *testing.T) {
	tb := &Table{Title: "z", Xs: []float64{1}}
	tb.Add("zero", []float64{0}, nil)
	if out := tb.Plot(5); out == "" {
		t.Fatal("empty plot")
	}
}

func TestSummaryFormat(t *testing.T) {
	s := Summary([]float64{1, 2, 3})
	if !strings.Contains(s, "2") || !strings.Contains(s, "[1, 3]") {
		t.Fatalf("Summary = %q", s)
	}
}
