package simulator

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
)

// TestValidateDeterministicErrorSelection builds a schedule with overlapping
// intervals on several workers at once and checks Validate reports the same
// worker every time — the lowest-numbered offender. The per-worker interval
// groups used to live in a map, so with multiple offenders the reported
// worker followed map iteration order and differed run to run.
func TestValidateDeterministicErrorSelection(t *testing.T) {
	p := platform.Mirage()
	// Six independent tasks: the pairs on workers 7, 2 and 5 all overlap.
	tasks := make([]*graph.Task, 6)
	for i := range tasks {
		tasks[i] = &graph.Task{ID: i, Kind: graph.GEMM}
	}
	d := &graph.DAG{Tasks: tasks}
	r := &Result{
		Start:  []float64{0, 1, 0, 1, 0, 1},
		End:    []float64{2, 3, 2, 3, 2, 3},
		Worker: []int{7, 7, 2, 2, 5, 5},
	}
	var want string
	for i := 0; i < 100; i++ {
		err := Validate(d, p, r)
		if err == nil {
			t.Fatal("overlapping schedule passed Validate")
		}
		if i == 0 {
			want = err.Error()
			if !strings.Contains(want, "worker 2") {
				t.Fatalf("expected the lowest-numbered offender (worker 2) reported first, got %q", want)
			}
			continue
		}
		if got := err.Error(); got != want {
			t.Fatalf("iteration %d: error %q differs from first iteration's %q", i, got, want)
		}
	}
}
