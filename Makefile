.PHONY: build test verify bench bench-pinned serve

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate (ROADMAP.md): build + vet + race-enabled tests + cholbench smoke.
verify:
	./scripts/verify.sh

bench:
	go test -bench=. -benchmem

# Full pinned benchmark suite (see "Benchmarking & perf trajectory" in
# README.md). Compare against a previous PR's file with -baseline-from.
bench-pinned:
	go run ./cmd/cholbench -out BENCH_PR3.json -baseline-from BENCH_PR2.json

serve:
	go run ./cmd/cholserved
