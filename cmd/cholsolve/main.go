// Command cholsolve factorizes a real symmetric positive-definite matrix
// with the parallel task runtime and verifies the result — the "actual
// execution" path of the reproduction, running the pure-Go kernels on real
// goroutine workers.
//
// Usage:
//
//	cholsolve -n 512 -nb 64 -workers 8
//	cholsolve -matrix laplace -n 400 -nb 40 -policy priority
//	cholsolve -matrix hilbert -n 64 -nb 16       # ill-conditioned stress
//	cholsolve -n 512 -nb 64 -cp-hints -cp-workers 4   # CP-derived priorities
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	gort "runtime"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kernels"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/runtime"
	"repro/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 512, "matrix dimension")
		nb      = cliflags.NB(flag.CommandLine, 64, "the runtime tiles (must divide -n)")
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		policy  = flag.String("policy", "priority", "fifo | priority | random | random-per-worker | stealing-deques")
		kind    = flag.String("matrix", "rand", "rand | laplace | hilbert")
		seed    = flag.Int64("seed", 1, "matrix generator seed")
		showTr  = flag.Bool("trace", false, "print the ASCII Gantt of the real execution")
		solve   = flag.Bool("solve", false, "also solve A·x = b for a random b after factorizing")

		cpHints   = flag.Bool("cp-hints", false, "derive the Priority-policy task order from a CP branch-and-bound schedule (forces -policy priority)")
		cpBudget  = flag.Int("cp-budget", 50000, "CP search node budget for -cp-hints")
		cpWorkers = flag.Int("cp-workers", 1, "CP search worker goroutines for -cp-hints (any value yields identical hints)")
	)
	flag.Parse()

	var a *matrix.Dense
	switch *kind {
	case "rand":
		a = matrix.RandSPD(*n, *seed)
	case "laplace":
		k := 1
		for k*k < *n {
			k++
		}
		if k*k != *n {
			fatal(fmt.Errorf("-matrix laplace needs a square n, got %d", *n))
		}
		a = matrix.Laplacian2D(k)
	case "hilbert":
		a = matrix.Hilbert(*n)
	default:
		fatal(fmt.Errorf("unknown matrix kind %q", *kind))
	}

	var pol runtime.Policy
	switch *policy {
	case "fifo":
		pol = runtime.FIFO
	case "priority":
		pol = runtime.Priority
	case "random":
		pol = runtime.Random
	case "random-per-worker":
		pol = runtime.RandomPerWorker
	case "stealing-deques":
		pol = runtime.StealingDeques
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	tl, err := matrix.FromDense(a, *nb)
	if err != nil {
		fatal(err)
	}
	// CP-derived static hints: search a near-optimal schedule of the tile DAG
	// on a homogeneous model of the worker pool, then feed its start order to
	// the Priority policy (earlier planned start = higher priority) — the
	// paper's static-schedule injection, applied to the real runtime.
	var prios []float64
	if *cpHints {
		pol = runtime.Priority
		w := *workers
		if w <= 0 {
			w = gort.GOMAXPROCS(0)
		}
		r, err := core.OptimizeSchedule(context.Background(), tl.P, platform.Homogeneous(w), *cpBudget, *cpWorkers)
		if err != nil {
			fatal(err)
		}
		prios = make([]float64, len(r.Schedule.Start))
		for id, st := range r.Schedule.Start {
			prios[id] = r.Makespan - st
		}
		fmt.Printf("cp hints      %d nodes (%d workers), exhausted=%v, model makespan %.4f s\n",
			r.Nodes, *cpWorkers, r.Exhausted, r.Makespan)
	}

	res, err := runtime.Factor(tl, runtime.Options{Workers: *workers, Policy: pol, Seed: *seed, Priorities: prios})
	if err != nil {
		fatal(err)
	}
	l := tl.ToDense()
	rel := matrix.CholeskyResidual(a, l)
	flops := kernels.CholeskyFlops(*n)
	fmt.Printf("matrix        %s %d×%d, tiles %d×%d of %d\n", *kind, *n, *n, tl.P, tl.P, *nb)
	fmt.Printf("policy        %s, %d tasks\n", pol, len(res.Start))
	fmt.Printf("time          %.4f s\n", res.Seconds)
	fmt.Printf("performance   %.3f GFLOP/s\n", platform.GFlops(flops, res.Seconds))
	fmt.Printf("residual      ‖A−LLᵀ‖_F/‖A‖_F = %.3e\n", rel)
	if rel > 1e-8 {
		fatal(fmt.Errorf("residual too large: %g", rel))
	}
	fmt.Println("verification  OK")

	if *solve {
		rhs := make([]float64, *n)
		for i := range rhs {
			rhs[i] = float64(i%13) - 6
		}
		want := append([]float64{}, rhs...)
		x, err := runtime.Solve(tl, rhs, runtime.Options{Workers: *workers, Policy: pol})
		if err != nil {
			fatal(err)
		}
		// ‖A·x − b‖∞ against the original matrix.
		worst := 0.0
		for i := 0; i < *n; i++ {
			s := -want[i]
			for j := 0; j < *n; j++ {
				s += a.At(i, j) * x[j]
			}
			if s < 0 {
				s = -s
			}
			if s > worst {
				worst = s
			}
		}
		fmt.Printf("solve         ‖A·x−b‖∞ = %.3e\n", worst)
	}
	if *showTr {
		g := trace.FromRuntime(graph.Cholesky(tl.P), maxWorker(res.Worker)+1, res)
		fmt.Println()
		fmt.Print(g.ASCII(100, nil))
	}
}

func maxWorker(ws []int) int {
	m := 0
	for _, w := range ws {
		if w > m {
			m = w
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cholsolve:", err)
	os.Exit(1)
}
