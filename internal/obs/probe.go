package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultInterval is the probe cadence used when NewProbe is given a
// non-positive interval: one frame every 64 progress units (simulator
// events, cpsolve node commits, replay jobs). Chosen so a P=64 Cholesky
// simulation (~45k events) emits a few hundred frames — fine-grained
// enough for a live view, cheap enough to stay inside the ≤5% overhead
// budget pinned by cmd/cholbench (sim-probed/*).
const DefaultInterval = 64

// Frame source names, one per instrumented subsystem.
const (
	SourceSimulate = "simulate"
	SourceCPSolve  = "cpsolve"
	SourceReplay   = "replay"
	SourceSweep    = "sweep"
	SourceLanes    = "lanes"
)

// Frame is one in-run progress snapshot emitted through a Probe. Done/Total
// are in the emitting subsystem's own progress unit (simulator events,
// branch-and-bound nodes, replay jobs); the per-subsystem fields are only
// populated by the matching Source.
type Frame struct {
	Source string `json:"source"`
	Seq    uint64 `json:"seq"`
	Done   int64  `json:"done"`
	Total  int64  `json:"total"`
	Final  bool   `json:"final,omitempty"`

	// Simulator (Source == SourceSimulate).
	SimSec     float64   `json:"sim_sec,omitempty"`     // simulated clock
	ReadyDepth int       `json:"ready_depth,omitempty"` // queued tasks across all workers
	BusySec    []float64 `json:"busy_sec,omitempty"`    // per-worker busy time so far

	// CP solver (Source == SourceCPSolve).
	Nodes        int64   `json:"nodes,omitempty"`         // branch-and-bound nodes expanded
	IncumbentSec float64 `json:"incumbent_sec,omitempty"` // best makespan found so far
	CutSubtrees  int64   `json:"cut_subtrees,omitempty"`  // subtrees truncated by the node budget

	// Replay engine (Source == SourceReplay or SourceSweep).
	DedupHits    int64 `json:"dedup_hits,omitempty"`    // jobs satisfied by seed-invariance cloning
	DeltaResume  int64 `json:"delta_resume,omitempty"`  // delta re-simulations resumed from a checkpoint
	DeltaScratch int64 `json:"delta_scratch,omitempty"` // delta re-simulations that fell back to scratch

	// Lane executor (Source == SourceLanes): per-lane frames from the
	// event-level batched advance. Lane is the finishing lane's position in
	// its batch (seed order), LiveLanes the count still advancing after it,
	// LaneMerges the mid-run re-merges so far across the batch.
	Lane       int   `json:"lane,omitempty"`
	LiveLanes  int   `json:"live_lanes,omitempty"`
	LaneMerges int64 `json:"lane_merges,omitempty"`
}

// Clone returns a deep copy. Emitters may alias live arrays (BusySec points
// into the simulator arena); sinks that retain frames must clone first.
func (f Frame) Clone() Frame {
	c := f
	if f.BusySec != nil {
		c.BusySec = append([]float64(nil), f.BusySec...)
	}
	return c
}

// Probe is the live-progress tap. Like Recorder, a nil *Probe is the off
// switch: every instrumentation site is a single pointer check, so the
// disabled path stays allocation-free and bit-identical (pinned by
// cmd/cholbench sim-probed/* against the plain sim/* schedule digests).
//
// The hot-path contract is two-level: the emitting loop first checks the
// pointer, then calls Due(done) — a single atomic load — and only builds a
// Frame when a frame is actually owed. Emit stamps the sequence number,
// advances the next-due threshold, and hands the frame to the sink under
// the probe mutex, so delivery order matches emission order even when a
// probe is shared across goroutines.
type Probe struct {
	every int64
	next  atomic.Int64

	mu   sync.Mutex
	sink func(Frame)
	seq  uint64
}

// NewProbe returns a probe emitting to sink roughly every `every` progress
// units (DefaultInterval when every <= 0). The sink runs synchronously on
// the emitting goroutine and must not call back into the probe.
func NewProbe(every int, sink func(Frame)) *Probe {
	if every <= 0 {
		every = DefaultInterval
	}
	p := &Probe{every: int64(every), sink: sink}
	p.next.Store(p.every)
	return p
}

// Enabled reports whether the probe is attached. Nil-safe.
func (p *Probe) Enabled() bool { return p != nil }

// Interval returns the emission cadence in progress units. Nil-safe.
func (p *Probe) Interval() int64 {
	if p == nil {
		return 0
	}
	return p.every
}

// Due reports whether a frame is owed at progress point done. It is the
// per-iteration hot-path check and must only be called on a non-nil probe
// (guard with `p != nil`, the recnil-enforced fast path).
func (p *Probe) Due(done int64) bool { return done >= p.next.Load() }

// Emit stamps and delivers one frame. Callers emit when Due, plus one
// unconditional Final frame at completion. Safe for concurrent use; frames
// are delivered to the sink in emission order.
func (p *Probe) Emit(f Frame) {
	p.mu.Lock()
	p.seq++
	f.Seq = p.seq
	p.next.Store(f.Done + p.every)
	if p.sink != nil {
		p.sink(f)
	}
	p.mu.Unlock()
}

// Frames returns how many frames have been emitted so far. Nil-safe.
func (p *Probe) Frames() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	n := p.seq
	p.mu.Unlock()
	return n
}

// Reset rewinds the sequence and next-due threshold so a probe can be
// reused across runs (mirrors Recorder.Reset).
func (p *Probe) Reset() {
	p.mu.Lock()
	p.seq = 0
	p.next.Store(p.every)
	p.mu.Unlock()
}

// Canonical span phase names fed into the service phase histograms.
const (
	PhasePrep     = "prep"
	PhaseSimulate = "simulate"
	PhaseBounds   = "bounds"
	PhaseSolve    = "solve"
	PhaseSweep    = "sweep"
)

// SpanObserver receives one completed phase duration. The service layer
// installs one that feeds the cholserved_phase_seconds histogram.
type SpanObserver func(phase string, seconds float64)

// Span times one pipeline phase (prep/simulate/bounds/solve/sweep) on the
// wall clock. A zero Span (nil observer) is inert, so callers can thread an
// optional SpanObserver without branching. obs is deliberately outside the
// deterministic core — wall-clock use is confined here, where it cannot
// leak into schedules (chollint's noclock scope).
type Span struct {
	phase string
	start time.Time
	obs   SpanObserver
}

// StartSpan begins timing phase; End reports the duration to obs.
func StartSpan(phase string, obs SpanObserver) Span {
	if obs == nil {
		return Span{}
	}
	return Span{phase: phase, start: time.Now(), obs: obs}
}

// End stops the span and reports its duration. No-op for a zero Span.
func (s Span) End() {
	if s.obs == nil {
		return
	}
	s.obs(s.phase, time.Since(s.start).Seconds())
}
